"""Public facade: declarative Workload → compiled Plan → executed Session.

The canonical way every scenario enters the codebase::

    from repro.api import Session, scenario

    plan = scenario("finfet_iv").compile()   # validate + choose execution
    print(plan.describe())                   # inspect before spending flops
    with Session(plan) as session:           # pools closed deterministically
        sweep = session.run()                # reuses H, grid, boundaries
    sweep.save("iv_curve.json")

*Workload* (:mod:`repro.api.workload`) declares what is simulated —
device, physics, spectral grids, and sweeps as first-class axes, plus a
registry of named scenario presets.  *Plan* (:mod:`repro.api.plan`) is
the explicit compile step where the performance-engineering choices live:
Table-1 validation, engine/decomposition/cache policy, Table-3 cost
estimates.  *Session* (:mod:`repro.api.session`) executes the plan with
sweep-level reuse and deterministic resource lifetimes.
"""

from .plan import (
    Plan,
    PlanCost,
    PlanError,
    PlanGroup,
    STRUCTURAL_FIELDS,
    choose_engine,
    choose_rgf_kernel,
    compile_workload,
)
from .session import RunResult, Session, SweepResult
from .workload import (
    SWEEP_AXES,
    DeviceSpec,
    GridSpec,
    PhysicsSpec,
    SweepAxis,
    SweepPoint,
    Workload,
    WorkloadError,
    register_scenario,
    scenario,
    scenarios,
)

__all__ = [
    "Workload",
    "DeviceSpec",
    "GridSpec",
    "PhysicsSpec",
    "SweepAxis",
    "SweepPoint",
    "SWEEP_AXES",
    "WorkloadError",
    "register_scenario",
    "scenario",
    "scenarios",
    "Plan",
    "PlanCost",
    "PlanError",
    "PlanGroup",
    "STRUCTURAL_FIELDS",
    "choose_engine",
    "choose_rgf_kernel",
    "compile_workload",
    "Session",
    "RunResult",
    "SweepResult",
]
