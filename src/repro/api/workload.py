"""Declarative workloads: *what* a simulation computes, nothing else.

The paper's central idea is the separation between the physics of a
quantum-transport simulation and the data-movement/optimization decisions
that make it run fast (Ziogas et al., SC'19).  A :class:`Workload` is the
physics half of that contract: a device/material description
(:class:`DeviceSpec`), the transport physics (:class:`PhysicsSpec`), the
spectral discretization (:class:`GridSpec`), and — first-class, not a
Python ``for`` loop — the *sweeps* over bias, temperature, gate, or grid
resolution that production scenarios are made of (:class:`SweepAxis`).

A workload knows nothing about engines, decompositions, caches, or
process pools; those choices are made by the explicit compile step
(:func:`repro.api.compile_workload` → :class:`~repro.api.Plan`) and
executed by :class:`~repro.api.Session`.

Named scenario presets (the paper's 4,864/10,240-atom structures, the
FinFET I-V curve, the self-heating map) live in a registry:
``scenario("finfet_iv")`` returns a ready-to-compile workload.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import asdict, dataclass, field, fields, replace
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from ..config import PAPER_STRUCTURE_4864, PAPER_STRUCTURE_10240, SimulationParameters
from ..negf.hamiltonian import build_hamiltonian_model
from ..negf.scba import SCBASettings
from ..negf.structure import build_device

__all__ = [
    "WorkloadError",
    "DeviceSpec",
    "GridSpec",
    "PhysicsSpec",
    "SweepAxis",
    "SweepPoint",
    "Workload",
    "SWEEP_AXES",
    "register_scenario",
    "scenario",
    "scenarios",
]


class WorkloadError(ValueError):
    """A workload specification is inconsistent or unbuildable."""


@dataclass(frozen=True)
class DeviceSpec:
    """The synthetic device + basis: everything the operator builder needs.

    ``build()`` materializes the structure and the DFT-like operators
    (H, S, Φ, ∇H) exactly once; the result is shared by every sweep point
    of a session.
    """

    nx_cols: int = 12
    ny_rows: int = 4
    NB: int = 6
    slab_width: int = 2
    Norb: int = 2
    seed: int = 1234

    @property
    def NA(self) -> int:
        return self.nx_cols * self.ny_rows

    @property
    def bnum(self) -> int:
        return self.nx_cols // self.slab_width

    def build(self):
        """Materialize the :class:`~repro.negf.HamiltonianModel` (expensive)."""
        device = build_device(
            nx_cols=self.nx_cols,
            ny_rows=self.ny_rows,
            NB=self.NB,
            slab_width=self.slab_width,
        )
        return build_hamiltonian_model(device, Norb=self.Norb, seed=self.seed)


@dataclass(frozen=True)
class GridSpec:
    """The spectral discretization: energy window and momentum grids."""

    e_min: float = -2.0
    e_max: float = 2.0
    NE: int = 40
    Nkz: int = 3
    Nqz: int = 3
    Nw: int = 4
    eta: float = 1e-3


@dataclass(frozen=True)
class PhysicsSpec:
    """Transport physics: what is simulated, not how it is executed."""

    #: ``ballistic`` (one GF solve, no e-ph scattering) or ``scba`` (the
    #: full self-consistent Born GF ⇄ SSE loop)
    transport: str = "scba"
    mu_left: float = 0.3
    mu_right: float = -0.3
    kT_el: float = 0.05
    kT_ph: float = 0.05
    coupling: float = 0.1
    mixing: float = 0.5
    max_iterations: int = 20
    tolerance: float = 1e-5
    boundary_method: str = "sancho-rubio"
    sse_variant: str = "dace"

    def __post_init__(self):
        if self.transport not in ("ballistic", "scba"):
            raise WorkloadError(
                f"transport={self.transport!r}; expected 'ballistic' or 'scba'"
            )
        if self.sse_variant not in ("reference", "omen", "dace", "sdfg"):
            raise WorkloadError(
                f"sse_variant={self.sse_variant!r}; expected 'reference', "
                "'omen', 'dace' or 'sdfg'"
            )


# -- sweep axes ----------------------------------------------------------------
#
# An axis maps one swept value onto SCBASettings fields.  The named axes
# below are the physical sweeps of the ROADMAP scenarios; any plain
# SCBASettings field name is also a valid (generic) axis.

def _apply_bias(kw: Dict[str, Any], v: float) -> None:
    """Source-drain window: μ_{L,R} = center ± V/2.

    The window opens around the *current* mean potential, so a ``gate``
    axis (a rigid shift of that mean) composes with ``bias`` in either
    declaration order.
    """
    center = (kw["mu_left"] + kw["mu_right"]) / 2.0
    kw["mu_left"] = center + v / 2.0
    kw["mu_right"] = center - v / 2.0


def _apply_temperature(kw: Dict[str, Any], v: float) -> None:
    """Electron and lattice temperature together (kT units)."""
    kw["kT_el"] = v
    kw["kT_ph"] = v


def _apply_gate(kw: Dict[str, Any], v: float) -> None:
    """Gate control as a rigid shift of both chemical potentials."""
    kw["mu_left"] = kw["mu_left"] + v
    kw["mu_right"] = kw["mu_right"] + v


def _apply_grid(kw: Dict[str, Any], v: float) -> None:
    """Grid-resolution axis: number of energy points."""
    kw["NE"] = int(v)


SWEEP_AXES: Dict[str, Callable[[Dict[str, Any], float], None]] = {
    "bias": _apply_bias,
    "temperature": _apply_temperature,
    "gate": _apply_gate,
    "grid": _apply_grid,
}

#: numeric settings fields usable as generic sweep axes
_GENERIC_AXIS_FIELDS = {
    f.name
    for spec in (GridSpec, PhysicsSpec)
    for f in fields(spec)
    if f.type in ("int", "float")
} & {f.name for f in fields(SCBASettings)} | {"NE"}


@dataclass(frozen=True)
class SweepAxis:
    """One first-class sweep dimension: an axis name and its values.

    ``name`` is a named physical axis (``bias``, ``temperature``,
    ``gate``, ``grid``) or any numeric :class:`~repro.negf.SCBASettings`
    field (generic axis).  Multiple axes form the Cartesian product.
    """

    name: str
    values: Tuple[float, ...]

    def __post_init__(self):
        if self.name not in SWEEP_AXES and self.name not in _GENERIC_AXIS_FIELDS:
            raise WorkloadError(
                f"unknown sweep axis {self.name!r}; expected one of "
                f"{sorted(SWEEP_AXES)} or a numeric SCBASettings field"
            )
        vals = tuple(float(v) for v in np.asarray(self.values).ravel())
        if not vals:
            raise WorkloadError(f"sweep axis {self.name!r} has no values")
        object.__setattr__(self, "values", vals)

    def apply(self, kw: Dict[str, Any], v: float) -> None:
        if self.name in SWEEP_AXES:
            SWEEP_AXES[self.name](kw, v)
        else:
            # Generic axis: preserve the field's declared type (NE etc.).
            current = kw[self.name]
            kw[self.name] = type(current)(v) if current is not None else v


@dataclass(frozen=True)
class SweepPoint:
    """One resolved point of the sweep grid."""

    #: linear index in sweep order
    index: int
    #: {axis name: swept value} coordinates of this point
    coords: Dict[str, float]
    #: fully-resolved SCBASettings kwargs for this point
    settings: Dict[str, Any]


@dataclass(frozen=True)
class Workload:
    """A complete declarative simulation request.

    ``Workload`` → :meth:`compile` → :class:`~repro.api.Plan` →
    :class:`~repro.api.Session` is the canonical path for every scenario;
    the legacy ``SCBASettings``/``SCBASimulation`` constructors remain as
    thin shims over it.
    """

    device: DeviceSpec = field(default_factory=DeviceSpec)
    grid: GridSpec = field(default_factory=GridSpec)
    physics: PhysicsSpec = field(default_factory=PhysicsSpec)
    sweeps: Tuple[SweepAxis, ...] = ()
    name: str = "custom"
    #: optional Table-1 parameter override for planning/cost analysis when
    #: the synthetic builder cannot realize the real structure (e.g. the
    #: paper's NB=34 neighbor lists); execution still uses ``device``
    parameters: Optional[SimulationParameters] = None

    def __post_init__(self):
        sweeps = tuple(
            ax if isinstance(ax, SweepAxis) else SweepAxis(*ax)
            for ax in self.sweeps
        )
        object.__setattr__(self, "sweeps", sweeps)

    # -- sweep resolution ------------------------------------------------------
    @property
    def ballistic(self) -> bool:
        return self.physics.transport == "ballistic"

    @property
    def n_points(self) -> int:
        n = 1
        for ax in self.sweeps:
            n *= len(ax.values)
        return n

    def base_settings(self) -> Dict[str, Any]:
        """SCBASettings kwargs before any sweep axis is applied."""
        kw = asdict(self.grid)
        phys = asdict(self.physics)
        phys.pop("transport")
        kw.update(phys)
        return kw

    def sweep_points(self) -> List[SweepPoint]:
        """Resolve the Cartesian product of all axes, in axis-major order."""
        base = self.base_settings()
        points: List[SweepPoint] = []
        value_lists = [ax.values for ax in self.sweeps]
        for index, combo in enumerate(itertools.product(*value_lists)):
            kw = dict(base)
            coords: Dict[str, float] = {}
            for ax, v in zip(self.sweeps, combo):
                ax.apply(kw, v)
                coords[ax.name] = v
            points.append(SweepPoint(index=index, coords=coords, settings=kw))
        return points

    # -- construction helpers ----------------------------------------------------
    def with_sweep(self, name: str, values) -> "Workload":
        """A copy with one more sweep axis appended."""
        return replace(self, sweeps=self.sweeps + (SweepAxis(name, values),))

    def compile(self, **plan_kwargs):
        """Compile into an executable :class:`~repro.api.Plan`."""
        from .plan import compile_workload

        return compile_workload(self, **plan_kwargs)

    # -- serialization -----------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "device": asdict(self.device),
            "grid": asdict(self.grid),
            "physics": asdict(self.physics),
            "sweeps": [
                {"name": ax.name, "values": list(ax.values)}
                for ax in self.sweeps
            ],
            "parameters": (
                self.parameters.as_dict() if self.parameters is not None else None
            ),
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "Workload":
        params = d.get("parameters")
        return cls(
            name=d.get("name", "custom"),
            device=DeviceSpec(**d["device"]),
            grid=GridSpec(**d["grid"]),
            physics=PhysicsSpec(**d["physics"]),
            sweeps=tuple(
                SweepAxis(ax["name"], tuple(ax["values"]))
                for ax in d.get("sweeps", ())
            ),
            parameters=SimulationParameters(**params) if params else None,
        )

    def to_json(self, canonical: bool = False, **kwargs) -> str:
        """JSON encoding; ``canonical=True`` yields the hashing form.

        The canonical form is byte-stable for identical workloads however
        they were constructed: keys are sorted, separators are fixed, and
        every float passes through Python's shortest-round-trip ``repr``
        (the :mod:`json` default), so a dict-ordering permutation or a
        ``to_dict``/``from_dict`` round trip cannot change the bytes.
        """
        if canonical:
            return json.dumps(
                self.to_dict(), sort_keys=True, separators=(",", ":")
            )
        return json.dumps(self.to_dict(), **kwargs)

    @classmethod
    def from_json(cls, text: str) -> "Workload":
        return cls.from_dict(json.loads(text))

    def cache_key(self) -> str:
        """Content address of this workload's *results*: a sha256 hex digest.

        Hashes the canonical JSON with the purely descriptive ``name``
        field removed, so two tenants submitting physically identical
        workloads under different labels share one cache entry.  The
        planning-only ``parameters`` override *is* included — it never
        changes the numerics, but keeping it makes the key conservative
        (a spurious miss costs a re-run; a spurious hit would be wrong).
        """
        content = self.to_dict()
        content.pop("name")
        canonical = json.dumps(content, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()

    def submit(self, service, **job_kwargs):
        """Convenience: submit this workload to a scheduler service.

        Equivalent to ``service.submit(self, **job_kwargs)`` — accepts the
        same ``tenant``/``priority``/``deadline_s`` hints and returns the
        queued :class:`~repro.service.Job`.
        """
        return service.submit(self, **job_kwargs)


# -- scenario registry ----------------------------------------------------------

_SCENARIOS: Dict[str, Callable[[], Workload]] = {}


def register_scenario(name: str):
    """Decorator registering a named scenario preset factory."""

    def deco(factory: Callable[[], Workload]) -> Callable[[], Workload]:
        _SCENARIOS[name] = factory
        return factory

    return deco


def scenario(name: str) -> Workload:
    """Instantiate a registered scenario preset by name."""
    try:
        factory = _SCENARIOS[name]
    except KeyError:
        raise WorkloadError(
            f"unknown scenario {name!r}; registered: {scenarios()}"
        ) from None
    return factory()


def scenarios() -> Tuple[str, ...]:
    """Registered scenario names, sorted."""
    return tuple(sorted(_SCENARIOS))


@register_scenario("quickstart")
def _quickstart() -> Workload:
    """The README/quickstart dissipative FinFET slice."""
    return Workload(
        name="quickstart",
        device=DeviceSpec(nx_cols=12, ny_rows=4, NB=6, slab_width=2, Norb=2),
        grid=GridSpec(e_min=-1.5, e_max=1.5, NE=20, Nkz=2, Nqz=2, Nw=3),
        physics=PhysicsSpec(
            transport="scba", mu_left=+0.2, mu_right=-0.2,
            coupling=0.25, mixing=0.6, max_iterations=20, tolerance=1e-5,
        ),
    )


@register_scenario("finfet_iv")
def _finfet_iv() -> Workload:
    """Ballistic I-V: the bias window as a first-class sweep axis."""
    return Workload(
        name="finfet_iv",
        device=DeviceSpec(nx_cols=10, ny_rows=4, NB=6, slab_width=2, Norb=2),
        grid=GridSpec(e_min=-1.6, e_max=1.6, NE=30, Nkz=2, Nqz=2, Nw=2, eta=1e-6),
        physics=PhysicsSpec(transport="ballistic", kT_el=0.05),
        sweeps=(SweepAxis("bias", tuple(np.linspace(0.0, 0.6, 7))),),
    )


@register_scenario("self_heating")
def _self_heating() -> Workload:
    """Dissipative SCBA run resolving the Fig. 1d self-heating map."""
    return Workload(
        name="self_heating",
        device=DeviceSpec(nx_cols=12, ny_rows=4, NB=6, slab_width=2, Norb=2),
        grid=GridSpec(e_min=-1.4, e_max=1.4, NE=18, Nkz=2, Nqz=2, Nw=3),
        physics=PhysicsSpec(
            transport="scba", mu_left=+0.3, mu_right=-0.3,
            coupling=0.3, mixing=0.6, max_iterations=25, tolerance=1e-5,
        ),
    )


@register_scenario("paper_4864")
def _paper_4864() -> Workload:
    """The 4,864-atom §5 structure (Table-1 parameters for planning).

    The synthetic builder approximates the Si fin with a 304x16 lattice
    (NA=4864, bnum=19); the attached ``parameters`` carry the paper's
    exact Table-1 values (NB=34, Norb=12) for cost/volume analysis.
    """
    return Workload(
        name="paper_4864",
        device=DeviceSpec(nx_cols=304, ny_rows=16, NB=8, slab_width=16, Norb=12),
        grid=GridSpec(e_min=-2.0, e_max=2.0, NE=706, Nkz=7, Nqz=7, Nw=70),
        physics=PhysicsSpec(transport="scba"),
        parameters=PAPER_STRUCTURE_4864,
    )


@register_scenario("paper_10240")
def _paper_10240() -> Workload:
    """The 10,240-atom extreme-scale run of §5.2.1 (planning preset)."""
    return Workload(
        name="paper_10240",
        device=DeviceSpec(nx_cols=320, ny_rows=32, NB=8, slab_width=16, Norb=12),
        grid=GridSpec(e_min=-2.0, e_max=2.0, NE=1000, Nkz=21, Nqz=21, Nw=70),
        physics=PhysicsSpec(transport="scba"),
        parameters=PAPER_STRUCTURE_10240,
    )
