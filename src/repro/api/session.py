"""Session: context-managed execution of a compiled plan.

A :class:`Session` owns every expensive, sweep-invariant resource of a
planned workload and reuses it across sweep points:

* the :class:`~repro.negf.HamiltonianModel` (synthetic DFT operators)
  is built once per session;
* each :class:`~repro.api.PlanGroup` gets one
  :class:`~repro.negf.SCBASimulation` — hence one
  :class:`~repro.negf.SpectralGrid` (with its memoized H(kz)/S(kz)/Φ(qz)
  operator blocks), one execution engine (and its worker pool), and one
  :class:`~repro.negf.BoundaryCache` — shared by every point of the
  group, because bias, temperature, and gate never touch the grid, the
  operators, or the lead self-energies;
* worker pools are shut down deterministically on ``close()`` /
  ``with``-exit instead of relying on GC/atexit.

Results come back as structured :class:`RunResult`/:class:`SweepResult`
objects with JSON export built on :meth:`repro.negf.SCBAResult.to_dict`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

import numpy as np

from ..negf.scba import SCBAResult, SCBASettings, SCBASimulation
from ..telemetry import metrics as _metrics
from ..telemetry.spans import mode as _mode
from ..telemetry.spans import metrics_enabled, spans_enabled, trace
from ..telemetry.timing import timeit
from .plan import Plan
from .workload import Workload

__all__ = ["Session", "RunResult", "SweepResult"]


@dataclass
class RunResult:
    """One sweep point: its coordinates, scalar observables, and result.

    The scalar summary always survives serialization; the full
    :class:`~repro.negf.SCBAResult` tensors are attached in-memory and
    included in exports only on request (``include_arrays=True``).
    """

    index: int
    coords: Dict[str, float]
    current_left: float
    current_right: float
    iterations: int
    converged: bool
    total_dissipation: float
    elapsed_seconds: float
    result: Optional[SCBAResult] = None
    #: per-phase per-rank communication accounting of a distributed run
    #: ({"sse"/"residual"/"gather": CommStats dict}; None for serial runs)
    comm: Optional[Dict[str, Any]] = None
    #: RGF kernel the point's solves ran through (None for legacy results)
    rgf_kernel: Optional[str] = None
    #: per-point telemetry (:func:`repro.telemetry.telemetry_snapshot`
    #: shape: {"mode", "trace", "metrics"}); None unless REPRO_TELEMETRY
    #: was enabled for the run
    telemetry: Optional[Dict[str, Any]] = None

    @property
    def total_current_left(self) -> float:
        return self.current_left

    @property
    def total_current_right(self) -> float:
        return self.current_right

    @classmethod
    def from_scba(
        cls, index: int, coords: Dict[str, float], res: SCBAResult,
        elapsed: float, keep_arrays: bool = True,
        comm: Optional[Dict[str, Any]] = None,
        rgf_kernel: Optional[str] = None,
        telemetry: Optional[Dict[str, Any]] = None,
    ) -> "RunResult":
        return cls(
            index=index,
            coords=dict(coords),
            current_left=res.total_current_left,
            current_right=res.total_current_right,
            iterations=res.iterations,
            converged=res.converged,
            total_dissipation=float(res.dissipation.sum()),
            elapsed_seconds=elapsed,
            result=res if keep_arrays else None,
            comm=comm,
            rgf_kernel=rgf_kernel,
            telemetry=telemetry,
        )

    def to_dict(self, include_arrays: bool = False) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "index": self.index,
            "coords": dict(self.coords),
            "current_left": self.current_left,
            "current_right": self.current_right,
            "iterations": self.iterations,
            "converged": self.converged,
            "total_dissipation": self.total_dissipation,
            "elapsed_seconds": self.elapsed_seconds,
        }
        if self.rgf_kernel is not None:
            out["rgf_kernel"] = self.rgf_kernel
        if self.comm is not None:
            out["comm"] = {k: dict(v) for k, v in self.comm.items()}
        if self.telemetry is not None:
            out["telemetry"] = dict(self.telemetry)
        if include_arrays and self.result is not None:
            out["result"] = self.result.to_dict()
        return out

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "RunResult":
        res = d.get("result")
        return cls(
            index=d["index"],
            coords=dict(d["coords"]),
            current_left=d["current_left"],
            current_right=d["current_right"],
            iterations=d["iterations"],
            converged=d["converged"],
            total_dissipation=d["total_dissipation"],
            elapsed_seconds=d.get("elapsed_seconds", 0.0),
            result=SCBAResult.from_dict(res) if res is not None else None,
            comm=d.get("comm"),
            rgf_kernel=d.get("rgf_kernel"),
            telemetry=d.get("telemetry"),
        )


@dataclass
class SweepResult:
    """All sweep points of one session run, plus reuse accounting."""

    workload: Dict[str, Any]
    runs: List[RunResult]
    #: boundary-cache and operator-assembly counters accumulated over the
    #: whole sweep (:meth:`Session.reuse_counters`) — the evidence that
    #: sweep-invariant work ran once; always serialized by :meth:`to_dict`
    reuse: Dict[str, int] = field(default_factory=dict)
    engine: str = ""
    #: scheduler-service metadata (cache hit/miss, shared-pool savings,
    #: queue latency) attached by :class:`repro.service.SchedulerService`
    #: so the savings accounting serializes with the result; None for
    #: plain :meth:`Session.run` results
    service: Optional[Dict[str, Any]] = None
    #: sweep-wide telemetry snapshot ({"mode", "trace", "metrics"},
    #: :func:`repro.telemetry.telemetry_snapshot`) taken at the end of
    #: :meth:`Session.run`; None when REPRO_TELEMETRY is off
    telemetry: Optional[Dict[str, Any]] = None

    def __len__(self) -> int:
        return len(self.runs)

    def __iter__(self):
        return iter(self.runs)

    def __getitem__(self, i: int) -> RunResult:
        return self.runs[i]

    # -- columnar accessors ------------------------------------------------------
    def axis(self, name: str) -> np.ndarray:
        """The swept values of one axis across all runs, in sweep order."""
        return np.array([r.coords[name] for r in self.runs])

    @property
    def currents_left(self) -> np.ndarray:
        return np.array([r.current_left for r in self.runs])

    @property
    def currents_right(self) -> np.ndarray:
        return np.array([r.current_right for r in self.runs])

    # -- reuse accounting ---------------------------------------------------------
    @property
    def boundary_solves(self) -> int:
        """Total lead-self-energy solves (electron + phonon) of the sweep."""
        return self.reuse.get("boundary_el_solves", 0) + self.reuse.get(
            "boundary_ph_solves", 0
        )

    @property
    def boundary_hits(self) -> int:
        """Total boundary-cache hits (electron + phonon) of the sweep."""
        return self.reuse.get("boundary_el_hits", 0) + self.reuse.get(
            "boundary_ph_hits", 0
        )

    # -- persistence ------------------------------------------------------------
    def to_dict(self, include_arrays: bool = False) -> Dict[str, Any]:
        out = {
            "workload": dict(self.workload),
            "engine": self.engine,
            "reuse": dict(self.reuse),
            "runs": [r.to_dict(include_arrays) for r in self.runs],
        }
        if self.service is not None:
            out["service"] = dict(self.service)
        if self.telemetry is not None:
            out["telemetry"] = dict(self.telemetry)
        return out

    def to_json(self, include_arrays: bool = False, **kwargs) -> str:
        return json.dumps(self.to_dict(include_arrays), **kwargs)

    def save(self, path, include_arrays: bool = False) -> None:
        Path(path).write_text(self.to_json(include_arrays, indent=2) + "\n")

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "SweepResult":
        service = d.get("service")
        telemetry = d.get("telemetry")
        return cls(
            workload=dict(d["workload"]),
            runs=[RunResult.from_dict(r) for r in d["runs"]],
            reuse=dict(d.get("reuse", {})),
            engine=d.get("engine", ""),
            service=dict(service) if service is not None else None,
            telemetry=dict(telemetry) if telemetry is not None else None,
        )

    @classmethod
    def load(cls, path) -> "SweepResult":
        return cls.from_dict(json.loads(Path(path).read_text()))


class Session:
    """Run a compiled plan, reusing sweep-invariant state across points.

    Usage::

        plan = scenario("finfet_iv").compile()
        with Session(plan) as session:
            sweep = session.run()

    The context manager guarantees worker pools (multiprocess engine) are
    shut down on exit.  ``Session.from_workload`` compiles and opens in
    one step.
    """

    def __init__(self, plan: Plan):
        self.plan = plan
        self._model = None
        self._sims: Dict[int, SCBASimulation] = {}
        self._closed = False
        self._final_counters: Optional[Dict[str, int]] = None

    @classmethod
    def from_workload(cls, workload: Workload, **compile_kwargs) -> "Session":
        return cls(workload.compile(**compile_kwargs))

    # -- lifetime -----------------------------------------------------------------
    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def close(self) -> None:
        """Shut down every engine (worker pools included), idempotently.

        The reuse counters are snapshotted first, so
        :meth:`reuse_counters` keeps reporting the session's accounting
        after the ``with`` block ends.
        """
        if not self._closed:
            self._final_counters = self.reuse_counters()
        for sim in self._sims.values():
            sim.close()
        self._sims.clear()
        self._closed = True

    # -- lazily-built shared state -------------------------------------------------
    @property
    def model(self):
        """The session-wide Hamiltonian model (built on first access)."""
        if self._model is None:
            self._model = self.plan.workload.device.build()
        return self._model

    def simulation(self, group_index: int) -> SCBASimulation:
        """The (cached) simulation executing one plan group."""
        if self._closed:
            raise RuntimeError("session is closed")
        if group_index not in self._sims:
            group = self.plan.groups[group_index]
            self._sims[group_index] = SCBASimulation(
                self.model, SCBASettings(**group.base_settings)
            )
        return self._sims[group_index]

    # -- execution -----------------------------------------------------------------
    def run(self, progress=None, keep_arrays: bool = True) -> SweepResult:
        """Execute every sweep point of the plan, in sweep order.

        ``progress`` is an optional callable receiving each
        :class:`RunResult` as it completes.  ``keep_arrays=False`` drops
        each point's full tensor set once its scalar observables are
        extracted — sweep memory then stays O(1) in the number of points
        instead of pinning every ``SCBAResult`` until the sweep ends.
        Numerical results are identical (≤ 1e-10, pinned by
        ``tests/test_api.py``) to running each point through a fresh
        ``SCBASimulation`` — the session only removes re-computation of
        sweep-invariant state.
        """
        runs: List[RunResult] = []
        n_points = sum(len(g.points) for g in self.plan.groups)
        with trace("session.run", points=n_points, engine=self.plan.engine):
            for gi, group in enumerate(self.plan.groups):
                for j in range(len(group.points)):
                    rr = self._execute_point(gi, j, keep_arrays)
                    runs.append(rr)
                    if progress is not None:
                        progress(rr)
        runs.sort(key=lambda r: r.index)
        telemetry = None
        if spans_enabled():
            from ..telemetry.export import telemetry_snapshot

            telemetry = telemetry_snapshot()
        return SweepResult(
            workload=self.plan.workload.to_dict(),
            runs=runs,
            reuse=self.reuse_counters(),
            engine=self.plan.engine,
            telemetry=telemetry,
        )

    def run_point(self, index: int, keep_arrays: bool = True) -> RunResult:
        """Execute a single sweep point by its linear index."""
        for gi, group in enumerate(self.plan.groups):
            for j, (idx, _coords, _ov) in enumerate(group.points):
                if idx == index:
                    return self._execute_point(gi, j, keep_arrays)
        raise IndexError(f"no sweep point with index {index}")

    def _execute_point(
        self, group_index: int, j: int, keep_arrays: bool
    ) -> RunResult:
        """Apply one point's settings to the group's simulation and run it."""
        group = self.plan.groups[group_index]
        index, coords, _overrides = group.points[j]
        sim = self.simulation(group_index)
        for k, v in group.point_settings(j).items():
            setattr(sim.s, k, v)
        telemetry = None
        with trace("session.point", index=index, **coords):
            if metrics_enabled():
                before = _metrics.get_registry().snapshot()
                timing = timeit(
                    lambda: sim.run(ballistic=self.plan.ballistic), repeats=1
                )
                after = _metrics.get_registry().snapshot()
                telemetry = {
                    "mode": _mode(),
                    "metrics": {
                        k: after[k] - before.get(k, 0)
                        for k in after
                        if after[k] != before.get(k, 0)
                    },
                }
            else:
                timing = timeit(
                    lambda: sim.run(ballistic=self.plan.ballistic), repeats=1
                )
        res = timing.result
        comm = None
        if sim.last_comm:
            comm = {
                phase: stats.to_dict() for phase, stats in sim.last_comm.items()
            }
        return RunResult.from_scba(
            index, coords, res, timing.best, keep_arrays=keep_arrays,
            comm=comm, rgf_kernel=sim.s.rgf_kernel, telemetry=telemetry,
        )

    # -- verification --------------------------------------------------------------
    def cross_check_sse(
        self,
        dims: Optional[Dict[str, int]] = None,
        seed: int = 0,
        rtol: float = 1e-10,
        atol: float = 1e-10,
    ) -> float:
        """Cross-check every Σ≷ execution path pairwise on a small grid.

        Four evaluations of the same random inputs are compared, each
        against every other: the Fig. 8 → 12 pipeline compiled with the
        **numpy** (generated code) and **interpreter** backends, the
        hand-written ``negf/sse.py`` ``dace`` kernel, and the
        ``variant="sdfg"`` production path (the plan's own
        ``sse_backend``) that the SCBA loop dispatches to.

        The SDFG graphs treat the energy axis as periodic while the
        physical kernel zero-pads it; zeroing the top ``Nw - 1`` energy
        slots of G≷ makes every wrapped contribution vanish, so on such
        inputs all conventions are exactly equivalent and every pair
        must agree to float tolerance.  Returns the max pairwise abs
        error; raises ``AssertionError`` beyond tolerance.
        """
        if self.plan.sse_report is None:
            raise RuntimeError(
                "plan has no dace/sdfg SSE pipeline to cross-check "
                "(ballistic transport or baseline sse_variant)"
            )
        from ..core.recipe import compiled_sse_kernel
        from ..core.sse_sdfg import random_sse_inputs
        from ..negf.sse import sigma_sse

        dims = dict(
            dims or dict(Nkz=3, NE=6, Nqz=2, Nw=2, N3D=2, NA=5, NB=3, Norb=2)
        )
        arrays, tables = random_sse_inputs(dims, seed=seed)
        if dims["Nw"] > 1:
            arrays["G"][:, -(dims["Nw"] - 1):] = 0.0
        kernel_args = (
            arrays["G"], arrays["dH"], arrays["D"], tables["__neigh__"]
        )
        results = {
            "graph[numpy]": compiled_sse_kernel("numpy")(
                dims, arrays, tables
            ),
            "graph[interpreter]": compiled_sse_kernel("interpreter")(
                dims, arrays, tables
            ),
            "kernel[dace]": sigma_sse(*kernel_args, +1, "dace"),
            "kernel[sdfg]": sigma_sse(
                *kernel_args, +1, "sdfg", backend=self.plan.sse_backend
            ),
        }
        worst = 0.0
        names = list(results)
        for i, x in enumerate(names):
            for y in names[i + 1:]:
                err = float(np.max(np.abs(results[x] - results[y])))
                worst = max(worst, err)
                if not np.allclose(
                    results[x], results[y], rtol=rtol, atol=atol
                ):
                    raise AssertionError(
                        f"SSE backends disagree: {x} vs {y} "
                        f"max err {err:.3e}"
                    )
        return worst

    # -- accounting ----------------------------------------------------------------
    def reuse_counters(self) -> Dict[str, int]:
        """Aggregated boundary-solve/hit and operator-assembly counters.

        Boundary counters are exact for every backend (the multiprocess
        engine routes all solves through the parent's shared cache, and
        the distributed runtime sums its resident per-rank caches).  The
        assembly counters cover the parent process only: multiprocess
        pool workers and distributed rank workers additionally assemble
        operators on their own grids, which the parent's
        ``assembly_counts`` cannot observe.  After :meth:`close` the
        counters frozen at shutdown are returned.
        """
        if self._final_counters is not None:
            return dict(self._final_counters)
        out = {
            "boundary_el_solves": 0,
            "boundary_el_hits": 0,
            "boundary_ph_solves": 0,
            "boundary_ph_hits": 0,
        }
        for sim in self._sims.values():
            counters = sim.boundary_counters()
            out["boundary_el_solves"] += counters["el_solves"]
            out["boundary_el_hits"] += counters["el_hits"]
            out["boundary_ph_solves"] += counters["ph_solves"]
            out["boundary_ph_hits"] += counters["ph_hits"]
        if self._model is not None:
            out.update(
                {
                    f"assemblies_{k}": v
                    for k, v in self._model.assembly_counts.items()
                }
            )
        return out
