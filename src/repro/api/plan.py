"""Plan: the explicit compile step between a Workload and its execution.

This is where the "performance engineer" of the paper's §4.1 workflow
lives, apart from the physics: compiling a :class:`~repro.api.Workload`

* validates every sweep point against the Table-1 ``PARAMETER_RANGES``
  (through :class:`repro.config.SimulationParameters`),
* selects the spectral-grid execution backend, the boundary/operator
  cache policy, and — for the multiprocess backend — the
  ``(kz, E-chunk)`` rank decomposition,
* groups sweep points by their *structural* settings (grid shape, η,
  boundary method) so a :class:`~repro.api.Session` can reuse one
  Hamiltonian, one :class:`~repro.negf.SpectralGrid`, one engine, and one
  boundary cache across every point of a group (bias/temperature/gate
  never invalidate them),
* estimates cost with :mod:`repro.model.performance` (Table-3 flop
  models) and tensor footprints,
* models, for ``sse_variant="dace"``, the per-stage data movement of the
  Fig. 8 → 12 transformation pipeline at the *planned* dimensions
  (:func:`repro.core.recipe.sse_movement_report`, the paper's §4.1
  metric) — the recipe enters the plan as a measured
  :class:`~repro.sdfg.PipelineReport`, not as a static table,
* optionally *autotunes* the SSE pipeline (``autotune="greedy"`` /
  ``"beam"``): :func:`repro.core.recipe.tuned_sse_search` searches the
  transformation move space at the planned dimensions and the plan
  carries the searched pipeline's movement report beside the hand
  recipe's for comparison.

A plan is inspectable (:meth:`Plan.describe`) and serializable
(:meth:`Plan.to_json`), so execution choices can be reviewed, diffed, and
archived independently of any run.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..config import (
    AUTOTUNE_STRATEGIES,
    EXECUTION_BACKENDS,
    RUNTIMES,
    SSE_SCHEDULES,
    SimulationParameters,
    default_runtime,
    validate_parameters,
)
from ..model.communication import omen_comm_total_bytes
from ..model.distribution import search_tiling
from ..model.performance import iteration_flops
from ..parallel.decomposition import partition_spectral_grid
from ..sdfg.pipeline import PipelineReport
from .workload import Workload

__all__ = [
    "PlanError",
    "PlanCost",
    "PlanGroup",
    "Plan",
    "STRUCTURAL_FIELDS",
    "compile_workload",
    "choose_engine",
    "choose_rgf_kernel",
]


class PlanError(ValueError):
    """A workload cannot be compiled into a valid plan."""


#: Settings fields whose change invalidates the spectral grid, the
#: assembled operators, or the boundary cache.  Sweep points are grouped
#: by these; everything else (bias, temperatures, coupling, mixing,
#: tolerances) varies freely within a group without losing any reuse.
STRUCTURAL_FIELDS: Tuple[str, ...] = (
    "e_min",
    "e_max",
    "NE",
    "Nkz",
    "Nqz",
    "Nw",
    "eta",
    "boundary_method",
)

#: multiprocess pays off only when the grid offers enough rank batches
_MULTIPROCESS_MIN_POINTS = 2048


def choose_engine(Nkz: int, NE: int) -> str:
    """Deterministic backend heuristic used when nothing is specified.

    ``REPRO_ENGINE`` (validated) wins if set; otherwise the batched
    backend, escalating to multiprocess for grids with at least
    ``2048`` electron points on machines with ≥ 4 cores.
    """
    from ..config import default_engine

    if os.environ.get("REPRO_ENGINE", "").strip():
        return default_engine()
    if Nkz * NE >= _MULTIPROCESS_MIN_POINTS and (os.cpu_count() or 1) >= 4:
        return "multiprocess"
    return "batched"


#: csrmm pays off only for blocks at least this large with couplings at
#: most this dense (cf. repro.negf.sparse_kernels.select_strategy — the
#: plan-time thresholds are slightly conservative since the density here
#: is the analytic structural estimate, not the assembled blocks')
_CSRMM_MIN_BLOCK = 96
_CSRMM_MAX_DENSITY = 0.05


def choose_rgf_kernel(device) -> str:
    """Deterministic RGF-kernel heuristic used when nothing is specified.

    ``REPRO_RGF_KERNEL`` (validated) wins if set; otherwise the Table-6
    ``csrmm`` kernel when the device's RGF blocks are large and its
    coupling blocks sparse (per the analytic
    :func:`repro.negf.coupling_density_estimate` — no device build
    needed), and the factorization-reuse ``numpy`` kernel everywhere
    else.
    """
    from ..config import default_rgf_kernel
    from ..negf.structure import coupling_density_estimate

    if os.environ.get("REPRO_RGF_KERNEL", "").strip():
        return default_rgf_kernel()
    block = device.slab_width * device.ny_rows * device.Norb
    density = coupling_density_estimate(
        device.ny_rows, device.slab_width, device.NB
    )
    if block >= _CSRMM_MIN_BLOCK and density <= _CSRMM_MAX_DENSITY:
        return "csrmm"
    return "numpy"


@dataclass(frozen=True)
class PlanCost:
    """Cost estimate from the Table-3 flop models and tensor footprints.

    The per-iteration flop fields are summed over *all* sweep points
    (each group priced at its own grid size), so heterogeneous plans —
    e.g. a ``grid`` axis mixing NE values — are priced correctly; the
    byte fields are the peak single-group tensor footprints.
    """

    points: int
    iterations_per_point: int
    #: one Born iteration at every sweep point (summed across groups)
    gf_flops_per_iteration: float
    sse_flops_per_iteration: float
    #: peak per-group G≷ / D≷ footprint
    electron_gf_bytes: int
    phonon_gf_bytes: int

    @property
    def total_flops(self) -> float:
        return self.iterations_per_point * (
            self.gf_flops_per_iteration + self.sse_flops_per_iteration
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "points": self.points,
            "iterations_per_point": self.iterations_per_point,
            "gf_flops_per_iteration": self.gf_flops_per_iteration,
            "sse_flops_per_iteration": self.sse_flops_per_iteration,
            "electron_gf_bytes": self.electron_gf_bytes,
            "phonon_gf_bytes": self.phonon_gf_bytes,
            "total_flops": self.total_flops,
        }


@dataclass(frozen=True)
class PlanGroup:
    """Sweep points sharing one simulation (grid + engine + caches).

    ``base_settings`` are the full :class:`~repro.negf.SCBASettings`
    kwargs of the group; each point carries only the *overrides* of the
    non-structural fields its sweep coordinates set.
    """

    key: Tuple
    base_settings: Dict[str, Any]
    #: per point: (sweep index, {axis: value}, {settings overrides})
    points: Tuple[Tuple[int, Dict[str, float], Dict[str, Any]], ...]
    parameters: SimulationParameters

    def point_settings(self, j: int) -> Dict[str, Any]:
        """Fully-resolved settings kwargs of the group's j-th point."""
        kw = dict(self.base_settings)
        kw.update(self.points[j][2])
        return kw

    def to_dict(self) -> Dict[str, Any]:
        return {
            "base_settings": dict(self.base_settings),
            "points": [
                {"index": i, "coords": dict(c), "overrides": dict(o)}
                for i, c, o in self.points
            ],
            "parameters": self.parameters.as_dict(),
        }


@dataclass(frozen=True)
class Plan:
    """An executable, inspectable compilation of a workload."""

    workload: Workload
    engine: str
    #: RGF kernel of the batched solves (see :mod:`repro.negf.kernels`)
    rgf_kernel: str
    cache_boundary: bool
    cache_operators: bool
    ballistic: bool
    max_workers: Optional[int]
    groups: Tuple[PlanGroup, ...]
    cost: PlanCost
    #: per-group (P, chunk) rank decomposition for the multiprocess engine
    decomposition: Optional[Tuple[Dict[str, int], ...]] = None
    #: SCBA execution runtime: ``serial`` in-process loop, or ``sim`` /
    #: ``pipe`` for the rank-parallel distributed Born loop
    runtime: str = "serial"
    #: requested rank budget for the distributed runtime (None: auto)
    ranks: Optional[int] = None
    #: per-group distributed-runtime selection: rank decomposition
    #: (P = Nkz x E-chunks) and SSE schedule — for the ``dace`` schedule
    #: the (TE, TA) tiling found by the §4.1 exhaustive tile search
    runtime_plan: Optional[Tuple[Dict[str, Any], ...]] = None
    #: per-stage modeled data movement of the Fig. 8 → 12 dace/sdfg SSE
    #: pipeline, evaluated at the planned (peak-group) dimensions
    sse_report: Optional[PipelineReport] = None
    #: SDFG execution backend driving ``sse_variant="sdfg"`` runs
    #: (``"numpy"`` generated code / ``"interpreter"``; None follows
    #: ``REPRO_SDFG_BACKEND``)
    sse_backend: Optional[str] = None
    #: autotune strategy the SSE pipeline was searched with (None: the
    #: hand recipe only)
    autotune: Optional[str] = None
    #: movement report of the autotuned SSE pipeline, at the same
    #: (peak-group) dimensions as ``sse_report``
    tuned_sse_report: Optional[PipelineReport] = None

    @property
    def sse_recipe(self) -> Tuple[Tuple[str, str], ...]:
        """(stage, description) table, derived from the movement report."""
        if self.sse_report is None:
            return ()
        return tuple(
            (s.name, s.description) for s in self.sse_report.stages
        )

    @property
    def n_points(self) -> int:
        return sum(len(g.points) for g in self.groups)

    @property
    def n_groups(self) -> int:
        return len(self.groups)

    def session(self):
        """Open a :class:`~repro.api.Session` executing this plan."""
        from .session import Session

        return Session(self)

    # -- inspection --------------------------------------------------------------
    def describe(self) -> str:
        """Human-readable compilation report."""
        w = self.workload
        lines = [
            f"plan[{w.name}]: {self.n_points} sweep point(s) in "
            f"{self.n_groups} group(s), "
            f"{'ballistic' if self.ballistic else 'SCBA'} transport",
            f"  device : NA={w.device.NA} atoms, NB={w.device.NB}, "
            f"Norb={w.device.Norb}, bnum={w.device.bnum}",
            f"  engine : {self.engine} "
            f"(rgf_kernel={self.rgf_kernel}, "
            f"cache_boundary={self.cache_boundary}, "
            f"cache_operators={self.cache_operators})",
        ]
        if self.runtime != "serial":
            lines.append(
                f"  runtime: {self.runtime} (rank-parallel Born loop)"
            )
        for gi, g in enumerate(self.groups):
            p = g.parameters
            lines.append(
                f"  group {gi}: Nkz={p.Nkz} NE={p.NE} Nqz={p.Nqz} Nw={p.Nw} "
                f"x {len(g.points)} point(s)"
            )
            if self.decomposition is not None:
                d = self.decomposition[gi]
                lines.append(
                    f"    decomposition: P={d['P']} ranks, "
                    f"E-chunk={d['chunk']}"
                )
            if self.runtime_plan is not None:
                r = self.runtime_plan[gi]
                tiling = (
                    f", TE={r['TE']} TA={r['TA']}" if "TE" in r else ""
                )
                lines.append(
                    f"    runtime: P={r['P']} ranks, E-chunk={r['chunk']}, "
                    f"{r['schedule']} schedule{tiling}"
                )
        c = self.cost
        lines.append(
            f"  cost   : ~{c.total_flops:.3e} flop total "
            f"({c.iterations_per_point} iteration(s)/point; "
            f"GF {c.gf_flops_per_iteration:.2e} + "
            f"SSE {c.sse_flops_per_iteration:.2e} per sweep iteration), "
            f"G≷ {c.electron_gf_bytes / 2**20:.1f} MiB peak"
        )
        if self.sse_report is not None:
            from ..sdfg.backends import default_backend
            from ..sdfg.pipeline import format_bytes

            r = self.sse_report
            d = r.dims
            variant = self.workload.physics.sse_variant
            how = (
                f"compiled graph, backend="
                f"{self.sse_backend or default_backend()}"
                if variant == "sdfg"
                else "hand-vectorized kernel"
            )
            lines.append(
                f"  sse    : {variant} recipe ({how}), movement modeled at "
                f"Nkz={d['Nkz']} NE={d['NE']} Nqz={d['Nqz']} Nw={d['Nw']} "
                f"NA={d['NA']}"
            )
            first = r.stages[0].total_bytes
            for s in r.stages:
                lines.append(
                    f"    {s.name:8s} {format_bytes(s.total_bytes):>12s} moved "
                    f"({first / max(s.total_bytes, 1):6.1f}x less)  "
                    f"{s.description}"
                )
            lines.append(
                f"    net    : {r.total_reduction:.1f}x less data movement "
                f"({r.stages[0].name} -> {r.stages[-1].name})"
            )
        if self.tuned_sse_report is not None:
            t = self.tuned_sse_report
            hand = (
                self.sse_report.total_reduction
                if self.sse_report is not None
                else None
            )
            vs = f" (hand recipe: {hand:.1f}x)" if hand is not None else ""
            lines.append(
                f"  tuned  : autotune[{self.autotune}] found "
                f"{len(t.stages) - 1} moves, "
                f"{t.total_reduction:.1f}x less movement{vs}"
            )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "workload": self.workload.to_dict(),
            "engine": self.engine,
            "rgf_kernel": self.rgf_kernel,
            "sse_backend": self.sse_backend,
            "cache_boundary": self.cache_boundary,
            "cache_operators": self.cache_operators,
            "ballistic": self.ballistic,
            "max_workers": self.max_workers,
            "groups": [g.to_dict() for g in self.groups],
            "cost": self.cost.to_dict(),
            "decomposition": (
                [dict(d) for d in self.decomposition]
                if self.decomposition is not None
                else None
            ),
            "runtime": self.runtime,
            "ranks": self.ranks,
            "runtime_plan": (
                [dict(d) for d in self.runtime_plan]
                if self.runtime_plan is not None
                else None
            ),
            "sse_recipe": [list(s) for s in self.sse_recipe],
            "sse_movement": (
                self.sse_report.to_dict()
                if self.sse_report is not None
                else None
            ),
            "autotune": self.autotune,
            "tuned_sse_movement": (
                self.tuned_sse_report.to_dict()
                if self.tuned_sse_report is not None
                else None
            ),
        }

    def to_json(self, **kwargs) -> str:
        return json.dumps(self.to_dict(), **kwargs)


def _plan_runtime_group(
    exec_params: SimulationParameters,
    ranks: Optional[int],
    schedule: Optional[str],
) -> Dict[str, Any]:
    """Select one group's rank decomposition (and tiling) for the runtime.

    The GF layout is the largest ``P = Nkz x E-chunks`` within the rank
    budget; the schedule — when not forced — is chosen by comparing the
    §4.1 closed-form volumes at that P, with the DaCe tiling taken from
    the exhaustive :func:`~repro.model.distribution.search_tiling`
    (restricted to divisor tilings, which the executable decomposition
    requires).
    """
    if ranks is not None and ranks < exec_params.Nkz:
        raise ValueError(
            f"ranks={ranks} is below the minimum of one rank per momentum "
            f"point (Nkz={exec_params.Nkz})"
        )
    budget = ranks or min(8, os.cpu_count() or 1)
    gf = partition_spectral_grid(
        exec_params.Nkz, exec_params.NE, max(budget, exec_params.Nkz)
    )
    entry: Dict[str, Any] = {
        "P": gf.P, "chunk": gf.chunk, "n_chunks": gf.n_chunks,
    }
    tiling = None
    try:
        tiling = search_tiling(exec_params, gf.P, divisors_only=True)
    except ValueError:
        if schedule == "dace":
            raise PlanError(
                f"no divisor (TE, TA) tiling of P={gf.P} for the dace "
                f"schedule (NE={exec_params.NE}, NA={exec_params.NA})"
            ) from None
    if schedule is None:
        omen_vol = omen_comm_total_bytes(exec_params, gf.P)
        schedule = (
            "dace"
            if tiling is not None and tiling.total_bytes < omen_vol
            else "omen"
        )
    entry["schedule"] = schedule
    if schedule == "dace":
        entry["TE"], entry["TA"] = tiling.TE, tiling.TA
    return entry


def compile_workload(
    workload: Workload,
    engine: Optional[str] = None,
    rgf_kernel: Optional[str] = None,
    cache_boundary: bool = True,
    cache_operators: bool = True,
    max_workers: Optional[int] = None,
    sse_backend: Optional[str] = None,
    runtime: Optional[str] = None,
    ranks: Optional[int] = None,
    schedule: Optional[str] = None,
    autotune: Optional[str] = None,
) -> Plan:
    """Compile a workload: validate, select execution, group for reuse.

    ``rgf_kernel`` selects the RGF recursion of the batched solves
    (see :mod:`repro.negf.kernels`; ``None`` picks via
    :func:`choose_rgf_kernel`).  Unknown or unavailable names — e.g.
    ``"numba"`` without the optional numba package — raise a
    :class:`PlanError` at compile time, not mid-run.

    ``sse_backend`` selects the SDFG execution backend the sessions use
    when the workload's physics asks for ``sse_variant="sdfg"``
    (``"numpy"`` generated code / ``"interpreter"``; ``None`` follows
    ``REPRO_SDFG_BACKEND``).  Unknown names raise a :class:`PlanError`.

    ``runtime`` selects the SCBA execution tier: ``"serial"`` (the
    in-process Born loop) or the rank-parallel distributed runtime over
    ``"sim"``/``"pipe"`` transports (``None`` follows ``REPRO_RUNTIME``).
    For distributed runtimes, ``ranks`` bounds the rank count (largest
    valid ``Nkz x E-chunks`` decomposition is used) and ``schedule``
    forces the SSE communication schedule; ``schedule=None`` picks the
    volume-minimizing one per group via the §4.1 models and the
    exhaustive tile search.

    ``autotune`` runs the movement-model-guided search
    (:func:`repro.core.recipe.tuned_sse_search`) with the named strategy
    (``"greedy"`` / ``"beam"``) at the planned peak-group dimensions;
    the plan then carries the searched pipeline's movement report in
    ``tuned_sse_report`` beside the hand recipe's ``sse_report``.  It
    requires an SSE workload — requesting it for a ballistic run or a
    non-dace/sdfg ``sse_variant`` raises a :class:`PlanError`, as does
    an unknown strategy name.
    """
    points = workload.sweep_points()

    # -- backend selection -----------------------------------------------------
    if engine is not None:
        if engine not in EXECUTION_BACKENDS:
            raise PlanError(
                f"unknown engine {engine!r}; expected one of {EXECUTION_BACKENDS}"
            )
    else:
        engine = choose_engine(workload.grid.Nkz, workload.grid.NE)
    if rgf_kernel is not None:
        from ..negf.kernels import available_kernels

        if rgf_kernel not in available_kernels():
            hint = (
                " (the numba kernel requires the optional numba package)"
                if rgf_kernel == "numba"
                else ""
            )
            raise PlanError(
                f"unknown rgf_kernel {rgf_kernel!r}; expected one of "
                f"{available_kernels()}{hint}"
            )
    else:
        rgf_kernel = choose_rgf_kernel(workload.device)
    if sse_backend is not None:
        from ..sdfg.backends import BackendError, get_backend

        try:
            get_backend(sse_backend)  # respects custom registrations
        except BackendError as exc:
            raise PlanError(f"invalid sse_backend: {exc}") from exc

    # -- runtime selection ------------------------------------------------------
    if runtime is None:
        try:
            runtime = default_runtime()
        except ValueError as exc:
            raise PlanError(str(exc)) from exc
    if runtime not in RUNTIMES:
        raise PlanError(
            f"unknown runtime {runtime!r}; expected one of {RUNTIMES}"
        )
    if schedule is not None and schedule not in SSE_SCHEDULES:
        raise PlanError(
            f"unknown SSE schedule {schedule!r}; "
            f"expected one of {SSE_SCHEDULES}"
        )
    if ranks is not None and ranks < 1:
        raise PlanError(f"ranks={ranks} must be positive")
    sse_modeled = not workload.ballistic and workload.physics.sse_variant in (
        "dace", "sdfg",
    )
    if autotune is not None:
        if autotune not in AUTOTUNE_STRATEGIES:
            raise PlanError(
                f"unknown autotune strategy {autotune!r}; "
                f"expected one of {AUTOTUNE_STRATEGIES}"
            )
        if not sse_modeled:
            raise PlanError(
                "autotune requires an SSE workload "
                "(non-ballistic, sse_variant 'dace' or 'sdfg'); "
                f"got ballistic={workload.ballistic}, "
                f"sse_variant={workload.physics.sse_variant!r}"
            )

    # -- group sweep points by structural settings ------------------------------
    dev = workload.device
    grouped: Dict[Tuple, List] = {}
    for pt in points:
        key = tuple(pt.settings[f] for f in STRUCTURAL_FIELDS)
        grouped.setdefault(key, []).append(pt)

    groups: List[PlanGroup] = []
    runtime_plan: List[Dict[str, Any]] = []
    for key, members in grouped.items():
        base = dict(members[0].settings)
        base["engine"] = engine
        base["rgf_kernel"] = rgf_kernel
        base["cache_boundary"] = cache_boundary
        base["cache_operators"] = cache_operators
        base["max_workers"] = max_workers
        base["sse_backend"] = sse_backend
        grid_kw = dict(
            Nkz=base["Nkz"], Nqz=base["Nqz"], NE=base["NE"], Nw=base["Nw"]
        )
        try:
            if workload.parameters is not None:
                params = validate_parameters(workload.parameters, **grid_kw)
            else:
                params = validate_parameters(
                    NA=dev.NA, NB=dev.NB, Norb=dev.Norb, N3D=3,
                    bnum=dev.bnum, **grid_kw,
                )
        except ValueError as exc:
            raise PlanError(f"workload {workload.name!r}: {exc}") from exc
        base["runtime"] = runtime
        base["ranks"] = None
        base["schedule"] = schedule or "omen"
        if runtime != "serial":
            # The runtime executes the *device* structure, which may
            # differ from a paper-parameter planning override.
            try:
                exec_params = (
                    params
                    if workload.parameters is None
                    else validate_parameters(
                        NA=dev.NA, NB=dev.NB, Norb=dev.Norb, N3D=3,
                        bnum=dev.bnum, **grid_kw,
                    )
                )
                entry = _plan_runtime_group(exec_params, ranks, schedule)
            except ValueError as exc:
                raise PlanError(
                    f"workload {workload.name!r} runtime plan: {exc}"
                ) from exc
            base["ranks"] = entry["P"]
            base["schedule"] = entry["schedule"]
            runtime_plan.append(entry)
        groups.append(
            PlanGroup(
                key=key,
                base_settings=base,
                points=tuple(
                    (
                        pt.index,
                        pt.coords,
                        {
                            k: v
                            for k, v in pt.settings.items()
                            if base.get(k) != v
                        },
                    )
                    for pt in members
                ),
                parameters=params,
            )
        )

    # -- cost model (every group priced at its own grid size) -------------------
    iters = 1 if workload.ballistic else workload.physics.max_iterations
    gf = sse = 0.0
    el_bytes = ph_bytes = 0
    for g in groups:
        fl = iteration_flops(g.parameters)
        n = len(g.points)
        gf += n * (fl.contour_integral + fl.rgf)
        if not workload.ballistic:
            sse += n * fl.sse_dace
        el_bytes = max(el_bytes, g.parameters.electron_gf_bytes)
        ph_bytes = max(ph_bytes, g.parameters.phonon_gf_bytes)
    cost = PlanCost(
        points=len(points),
        iterations_per_point=iters,
        gf_flops_per_iteration=gf,
        sse_flops_per_iteration=sse,
        electron_gf_bytes=el_bytes,
        phonon_gf_bytes=ph_bytes,
    )

    # -- decomposition (multiprocess only) --------------------------------------
    decomposition = None
    if engine == "multiprocess":
        workers = max_workers or min(8, os.cpu_count() or 1)
        decomp = []
        for g in groups:
            d = partition_spectral_grid(
                g.parameters.Nkz, g.parameters.NE, max(workers, g.parameters.Nkz)
            )
            decomp.append({"P": d.P, "chunk": d.chunk, "n_chunks": d.n_chunks})
        decomposition = tuple(decomp)

    # -- SSE transformation pipeline, movement modeled at planned dims ----------
    sse_report: Optional[PipelineReport] = None
    tuned_sse_report: Optional[PipelineReport] = None
    if sse_modeled:
        from ..core.recipe import sse_movement_report

        peak = max(
            (g.parameters for g in groups),
            key=lambda p: p.Nkz * p.NE * p.Nqz * p.Nw,
        )
        peak_dims = dict(
            Nkz=peak.Nkz, NE=peak.NE, Nqz=peak.Nqz, Nw=peak.Nw,
            NA=peak.NA, NB=peak.NB, Norb=peak.Norb, N3D=peak.N3D,
        )
        sse_report = sse_movement_report(peak_dims)
        if autotune is not None:
            from ..autotune import AutotuneError
            from ..core.recipe import tuned_sse_search

            try:
                tuned = tuned_sse_search(peak_dims, strategy=autotune)
            except AutotuneError as exc:
                raise PlanError(f"autotune failed: {exc}") from exc
            tuned_sse_report = tuned.report

    return Plan(
        workload=workload,
        engine=engine,
        rgf_kernel=rgf_kernel,
        cache_boundary=cache_boundary,
        cache_operators=cache_operators,
        ballistic=workload.ballistic,
        max_workers=max_workers,
        groups=tuple(groups),
        cost=cost,
        decomposition=decomposition,
        sse_report=sse_report,
        sse_backend=sse_backend,
        autotune=autotune,
        tuned_sse_report=tuned_sse_report,
        runtime=runtime,
        ranks=ranks,
        runtime_plan=tuple(runtime_plan) if runtime_plan else None,
    )
