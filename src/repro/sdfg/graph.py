"""The Stateful Dataflow multiGraph (SDFG) and its states.

An :class:`SDFG` holds named array descriptors, free symbols, a set of
:class:`SDFGState` dataflow graphs and control-flow edges between them
(conditions + assignments), mirroring the intermediate representation of
Ben-Nun et al. that the paper builds on.

States are `networkx.MultiDiGraph`s whose nodes are
:class:`~repro.sdfg.nodes.Node` objects and whose edges carry
:class:`~repro.sdfg.memlet.Memlet` annotations.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from .memlet import Memlet
from .nodes import AccessNode, MapEntry, MapExit, NestedSDFG, Node, Tasklet
from .subsets import Range
from .symbolic import Expr, ExprLike, sympify

__all__ = ["ArrayDesc", "SDFGState", "InterstateEdge", "SDFG", "InvalidSDFGError"]


class InvalidSDFGError(ValueError):
    """Raised by :meth:`SDFG.validate` on structural errors."""


class ArrayDesc:
    """Descriptor of a data container: symbolic shape, dtype, transient flag."""

    __slots__ = ("name", "shape", "dtype", "transient")

    def __init__(
        self,
        name: str,
        shape: Sequence[ExprLike],
        dtype=np.complex128,
        transient: bool = False,
    ):
        self.name = name
        self.shape: Tuple[Expr, ...] = tuple(sympify(s) for s in shape)
        self.dtype = np.dtype(dtype)
        self.transient = transient

    @property
    def rank(self) -> int:
        return len(self.shape)

    def evaluate_shape(self, env) -> Tuple[int, ...]:
        return tuple(s.evaluate(env) for s in self.shape)

    def total_size(self) -> Expr:
        out: Expr = sympify(1)
        for s in self.shape:
            out = out * s
        return out

    def __repr__(self) -> str:
        dims = ", ".join(repr(s) for s in self.shape)
        t = ", transient" if self.transient else ""
        return f"{self.name}[{dims}] ({self.dtype}{t})"


class SDFGState:
    """A single dataflow state: an acyclic multigraph of nodes and memlets."""

    def __init__(self, label: str, sdfg: "SDFG"):
        self.label = label
        self.sdfg = sdfg
        self.graph = nx.MultiDiGraph()

    # -- construction ------------------------------------------------------
    def add_node(self, node: Node) -> Node:
        self.graph.add_node(node)
        return node

    def add_access(self, data: str) -> AccessNode:
        if data not in self.sdfg.arrays:
            raise KeyError(f"unknown array {data!r} in state {self.label!r}")
        return self.add_node(AccessNode(data))

    def add_edge(
        self,
        src: Node,
        dst: Node,
        memlet: Optional[Memlet],
        src_conn: Optional[str] = None,
        dst_conn: Optional[str] = None,
    ):
        self.graph.add_node(src)
        self.graph.add_node(dst)
        self.graph.add_edge(
            src, dst, memlet=memlet, src_conn=src_conn, dst_conn=dst_conn
        )

    def remove_node(self, node: Node):
        self.graph.remove_node(node)

    # -- queries -----------------------------------------------------------
    @property
    def nodes(self) -> List[Node]:
        return list(self.graph.nodes)

    def edges(self) -> List[Tuple[Node, Node, dict]]:
        return [(u, v, d) for u, v, d in self.graph.edges(data=True)]

    def in_edges(self, node: Node) -> List[Tuple[Node, Node, dict]]:
        return [(u, v, d) for u, v, d in self.graph.in_edges(node, data=True)]

    def out_edges(self, node: Node) -> List[Tuple[Node, Node, dict]]:
        return [(u, v, d) for u, v, d in self.graph.out_edges(node, data=True)]

    def topological_nodes(self) -> List[Node]:
        return list(nx.topological_sort(self.graph))

    def scope_children(self, entry: MapEntry) -> List[Node]:
        """Nodes strictly inside the scope of ``entry`` (excluding exit)."""
        exit_node = self.exit_node(entry)
        inside: List[Node] = []
        seen = {entry, exit_node}
        frontier = [v for _, v, _ in self.out_edges(entry)]
        while frontier:
            n = frontier.pop()
            if n in seen:
                continue
            seen.add(n)
            inside.append(n)
            for _, v, _ in self.out_edges(n):
                frontier.append(v)
        return inside

    def exit_node(self, entry: MapEntry) -> MapExit:
        for n in self.graph.nodes:
            if isinstance(n, MapExit) and n.map is entry.map:
                return n
        raise InvalidSDFGError(f"no MapExit for {entry!r} in state {self.label!r}")

    def entry_node(self, exit_node: MapExit) -> MapEntry:
        for n in self.graph.nodes:
            if isinstance(n, MapEntry) and n.map is exit_node.map:
                return n
        raise InvalidSDFGError(f"no MapEntry for {exit_node!r}")

    def scope_chain(self, node: Node) -> List[MapEntry]:
        """Map entries enclosing ``node``, innermost first.

        A map entry's own chain starts with its *parent* scope (a map is
        not inside itself); every other node's chain starts with the map
        whose scope immediately contains it.  Used by memlet propagation
        (innermost-to-outermost) and by shrink/movement analyses.
        """
        entries = [n for n in self.graph.nodes if isinstance(n, MapEntry)]
        sets = {e: self._scope_sets(e) for e in entries}
        chain = [e for e in entries if e is not node and node in sets[e]]
        # Innermost first == deepest nesting first: an entry nested inside
        # another appears in the other's scope, so sort by how many of the
        # chain's scopes contain each entry (more containers -> deeper).
        # The membership pool must be a snapshot: list.sort() empties the
        # list while running, so a key closing over ``chain`` itself would
        # see an empty pool and leave insertion order untouched.
        members = tuple(chain)
        chain.sort(
            key=lambda e: sum(
                1 for o in members if o is not e and e in sets[o]
            ),
            reverse=True,
        )
        return chain

    def _scope_sets(self, entry: MapEntry) -> set:
        children = set(self.scope_children(entry))
        children.add(self.exit_node(entry))
        return children

    def top_level_maps(self) -> List[MapEntry]:
        """Map entries not nested inside any other map."""
        entries = [n for n in self.graph.nodes if isinstance(n, MapEntry)]
        nested = set()
        for e in entries:
            for child in self.scope_children(e):
                if isinstance(child, MapEntry):
                    nested.add(child)
        return [e for e in entries if e not in nested]

    def tasklets(self) -> List[Tasklet]:
        return [n for n in self.graph.nodes if isinstance(n, Tasklet)]

    # -- validation ----------------------------------------------------------
    def validate(self):
        g = self.graph
        if not nx.is_directed_acyclic_graph(g):
            raise InvalidSDFGError(f"state {self.label!r} contains a cycle")
        for u, v, d in g.edges(data=True):
            mem: Optional[Memlet] = d.get("memlet")
            if mem is None:
                continue
            if mem.data not in self.sdfg.arrays:
                raise InvalidSDFGError(
                    f"memlet references unknown array {mem.data!r}"
                )
            desc = self.sdfg.arrays[mem.data]
            if len(mem.subset) != desc.rank:
                raise InvalidSDFGError(
                    f"memlet {mem!r} rank {len(mem.subset)} != array rank {desc.rank}"
                )
        for n in g.nodes:
            if isinstance(n, Tasklet):
                in_conns = {
                    d.get("dst_conn") for _, _, d in g.in_edges(n, data=True)
                }
                for conn in n.inputs:
                    if conn not in in_conns:
                        raise InvalidSDFGError(
                            f"tasklet {n.label!r}: input connector {conn!r} unconnected"
                        )
                out_conns = {
                    d.get("src_conn") for _, _, d in g.out_edges(n, data=True)
                }
                for conn in n.outputs:
                    if conn not in out_conns:
                        raise InvalidSDFGError(
                            f"tasklet {n.label!r}: output connector {conn!r} unconnected"
                        )
            if isinstance(n, MapEntry):
                self.exit_node(n)  # raises when missing

    def __repr__(self) -> str:
        return f"SDFGState({self.label}, {self.graph.number_of_nodes()} nodes)"


class InterstateEdge:
    """Control-flow edge: optional condition + symbol assignments."""

    __slots__ = ("condition", "assignments")

    def __init__(
        self,
        condition: Optional[Callable[[dict], bool]] = None,
        assignments: Optional[Dict[str, Callable[[dict], int]]] = None,
    ):
        self.condition = condition
        self.assignments = dict(assignments or {})

    def taken(self, ctx: dict) -> bool:
        return True if self.condition is None else bool(self.condition(ctx))


class SDFG:
    """A stateful dataflow multigraph: arrays + symbols + states + control flow."""

    def __init__(self, name: str):
        self.name = name
        self.arrays: Dict[str, ArrayDesc] = {}
        self.symbols: Dict[str, None] = {}
        self.states: List[SDFGState] = []
        self._istate_edges: List[Tuple[SDFGState, SDFGState, InterstateEdge]] = []
        self.start_state: Optional[SDFGState] = None

    # -- construction --------------------------------------------------------
    def add_symbol(self, name: str):
        self.symbols[name] = None
        return sympify(name)

    def add_array(
        self,
        name: str,
        shape: Sequence[ExprLike],
        dtype=np.complex128,
        transient: bool = False,
    ) -> ArrayDesc:
        if name in self.arrays:
            raise ValueError(f"array {name!r} already exists")
        desc = ArrayDesc(name, shape, dtype, transient)
        self.arrays[name] = desc
        return desc

    def add_transient(self, name: str, shape, dtype=np.complex128) -> ArrayDesc:
        return self.add_array(name, shape, dtype, transient=True)

    def remove_array(self, name: str):
        del self.arrays[name]

    def add_state(self, label: str, is_start: bool = False) -> SDFGState:
        st = SDFGState(label, self)
        self.states.append(st)
        if is_start or self.start_state is None:
            self.start_state = st
        return st

    def add_interstate_edge(
        self, src: SDFGState, dst: SDFGState, edge: Optional[InterstateEdge] = None
    ):
        self._istate_edges.append((src, dst, edge or InterstateEdge()))

    def out_edges_of(self, state: SDFGState):
        return [(d, e) for s, d, e in self._istate_edges if s is state]

    # -- queries --------------------------------------------------------------
    def state(self, label: str) -> SDFGState:
        for st in self.states:
            if st.label == label:
                return st
        raise KeyError(f"no state {label!r}")

    def transients(self) -> List[str]:
        return [n for n, d in self.arrays.items() if d.transient]

    def validate(self):
        if not self.states:
            raise InvalidSDFGError("SDFG has no states")
        for st in self.states:
            st.validate()
        for st in self.states:
            for n in st.graph.nodes:
                if isinstance(n, NestedSDFG):
                    n.sdfg.validate()
                    for inner, outer in n.array_mapping.items():
                        if outer not in self.arrays:
                            raise InvalidSDFGError(
                                f"nested SDFG maps {inner!r} to unknown {outer!r}"
                            )

    # -- analysis ---------------------------------------------------------------
    def total_movement(self, env: Dict[str, int]) -> Dict[str, int]:
        """Sum of memlet access volumes (in elements) per array, over all
        top-level memlets of all states.  A coarse data-movement metric used
        by tests and the communication model cross-checks."""
        out: Dict[str, int] = {}
        for st in self.states:
            for _, _, d in st.edges():
                mem: Optional[Memlet] = d.get("memlet")
                if mem is None:
                    continue
                out[mem.data] = out.get(mem.data, 0) + mem.accesses.evaluate(env)
        return out

    def __repr__(self) -> str:
        return f"SDFG({self.name}, {len(self.states)} states, {len(self.arrays)} arrays)"
