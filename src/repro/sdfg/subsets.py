"""Multi-dimensional symbolic index subsets (DaCe-style ``Range``).

A :class:`Range` is a list of per-dimension ``(begin, end, step)`` triples
with *inclusive* ends, mirroring DaCe's convention: ``A[0:M, k, 0:K]`` is
``Range([(0, M-1, 1), (k, k, 1), (0, K-1, 1)])``.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence, Tuple, Union

from .symbolic import Expr, ExprLike, Integer, Max, Min, Mul, sympify

__all__ = ["Range", "Indices"]

DimLike = Union[ExprLike, Tuple[ExprLike, ExprLike], Tuple[ExprLike, ExprLike, ExprLike]]


class Range:
    """An axis-aligned symbolic box with per-dimension strides."""

    __slots__ = ("dims",)

    def __init__(self, dims: Iterable[DimLike]):
        norm: List[Tuple[Expr, Expr, Expr]] = []
        for d in dims:
            if isinstance(d, tuple):
                if len(d) == 2:
                    b, e = d
                    s: ExprLike = 1
                elif len(d) == 3:
                    b, e, s = d
                else:
                    raise ValueError(f"range dimension must have 2-3 entries: {d!r}")
            else:
                b = e = d
                s = 1
            norm.append((sympify(b), sympify(e), sympify(s)))
        self.dims = tuple(norm)

    # -- constructors ----------------------------------------------------
    @staticmethod
    def from_shape(shape: Sequence[ExprLike]) -> "Range":
        """Full range covering an array of the given shape."""
        return Range([(0, sympify(s) - 1, 1) for s in shape])

    @staticmethod
    def from_indices(indices: Sequence[ExprLike]) -> "Range":
        """Degenerate (single-point) range at the given indices."""
        return Range([(i, i, 1) for i in (sympify(x) for x in indices)])

    # -- basic queries ----------------------------------------------------
    def __len__(self) -> int:
        return len(self.dims)

    def __iter__(self):
        return iter(self.dims)

    def __getitem__(self, i: int) -> Tuple[Expr, Expr, Expr]:
        return self.dims[i]

    def __eq__(self, other) -> bool:
        if not isinstance(other, Range):
            return NotImplemented
        return self.dims == other.dims

    def __hash__(self) -> int:
        return hash(self.dims)

    def dim_length(self, i: int) -> Expr:
        """Symbolic number of elements along dimension ``i``.

        The difference is expanded so tile expressions cancel:
        ``(tkz+1)*skz - tkz*skz`` simplifies to ``skz``.
        """
        b, e, s = self.dims[i]
        if s == Integer(1):
            return (e - b + 1).expand()
        return ((e - b).expand()) // s + 1

    def num_elements(self) -> Expr:
        """Symbolic total number of elements."""
        out: Expr = Integer(1)
        for i in range(len(self.dims)):
            out = Mul.make(out, self.dim_length(i))
        return out

    def is_point(self) -> bool:
        return all(b == e for b, e, _ in self.dims)

    @property
    def free_symbols(self) -> frozenset:
        out: frozenset = frozenset()
        for b, e, s in self.dims:
            out |= b.free_symbols | e.free_symbols | s.free_symbols
        return out

    # -- algebra -----------------------------------------------------------
    def subs(self, mapping: Mapping[str, ExprLike]) -> "Range":
        return Range(
            [
                (b.subs(mapping), e.subs(mapping), s.subs(mapping))
                for b, e, s in self.dims
            ]
        )

    def offset_by(self, offsets: Sequence[ExprLike]) -> "Range":
        """Shift every dimension: used when pushing subsets into views."""
        if len(offsets) != len(self.dims):
            raise ValueError("offset rank mismatch")
        return Range(
            [
                (b + sympify(o), e + sympify(o), s)
                for (b, e, s), o in zip(self.dims, offsets)
            ]
        )

    def cover_union(self, other: "Range") -> "Range":
        """Bounding box of two ranges (per-dimension min/max)."""
        if len(other) != len(self):
            raise ValueError("rank mismatch in cover_union")
        dims = []
        for (b1, e1, s1), (b2, e2, s2) in zip(self.dims, other.dims):
            step = s1 if s1 == s2 else Integer(1)
            dims.append((Min.make(b1, b2), Max.make(e1, e2), step))
        return Range(dims)

    def clamp_to_shape(self, shape: Sequence[ExprLike]) -> "Range":
        """Intersect with ``[0, shape)`` per dimension (symbolic min/max)."""
        if len(shape) != len(self.dims):
            raise ValueError("rank mismatch in clamp_to_shape")
        dims = []
        for (b, e, s), n in zip(self.dims, shape):
            n = sympify(n)
            dims.append((Max.make(b, 0), Min.make(e, n - 1), s))
        return Range(dims)

    def evaluate(self, env: Mapping[str, int]) -> Tuple[Tuple[int, int, int], ...]:
        """Concretize to integer triples."""
        return tuple(
            (b.evaluate(env), e.evaluate(env), s.evaluate(env))
            for b, e, s in self.dims
        )

    def to_slices(self, env: Mapping[str, int]) -> Tuple[slice, ...]:
        """Concretize to numpy slices (end-inclusive -> end-exclusive).

        Negative point indices denote periodic wraparound (momentum axes);
        ``slice(-1, 0)`` would be empty, so a ``-1`` end maps to ``None``.
        """
        out = []
        for b, e, s in self.evaluate(env):
            stop = e + 1 if e + 1 != 0 else None
            out.append(slice(b, stop, s))
        return tuple(out)

    def degenerate_axes(self, env: Mapping[str, int]) -> Tuple[int, ...]:
        """Axes with a single element under ``env`` (squeezed on tasklet I/O)."""
        return tuple(
            i
            for i, (b, e, _) in enumerate(self.evaluate(env))
            if b == e
        )

    def __repr__(self) -> str:
        parts = []
        for b, e, s in self.dims:
            if b == e:
                parts.append(repr(b))
            elif s == Integer(1):
                parts.append(f"{b!r}:{(e + 1)!r}")
            else:
                parts.append(f"{b!r}:{(e + 1)!r}:{s!r}")
        return "[" + ", ".join(parts) + "]"


class Indices:
    """Convenience constructor: ``Indices(i, j)`` == point range ``[i, j]``."""

    def __new__(cls, *indices: ExprLike) -> Range:  # type: ignore[misc]
        return Range.from_indices(indices)
