"""Transformation framework: pattern-checked graph rewrites.

Transformations mutate an SDFG in place, after ``can_apply`` verified the
pattern.  Each one corresponds to a rewrite used in §4 of the paper.
"""

from __future__ import annotations

from typing import Optional

from ..graph import SDFG, SDFGState

__all__ = ["Transformation", "TransformationError"]


class TransformationError(ValueError):
    """Raised when a transformation's pattern requirements are not met."""


class Transformation:
    """Base class: ``check`` then ``apply`` on a state of an SDFG."""

    name = "transformation"

    def can_apply(self, sdfg: SDFG, state: SDFGState) -> bool:
        try:
            self.check(sdfg, state)
            return True
        except TransformationError:
            return False

    def check(self, sdfg: SDFG, state: SDFGState) -> None:
        """Raise :class:`TransformationError` when not applicable."""

    def apply(self, sdfg: SDFG, state: SDFGState) -> None:
        raise NotImplementedError

    def apply_checked(self, sdfg: SDFG, state: SDFGState) -> None:
        self.check(sdfg, state)
        self.apply(sdfg, state)
        sdfg.validate()

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
