"""Transformation framework: pattern-checked graph rewrites.

Transformations mutate an SDFG in place, after ``can_apply`` verified the
pattern.  Each one corresponds to a rewrite used in §4 of the paper.

Two entry points:

* the *imperative* path — construct a transformation around explicit graph
  nodes and ``apply_checked`` it — used by unit tests and one-off rewrites;
* the *declarative* path — :meth:`Transformation.match` enumerates every
  candidate :class:`Site` in a state by structural pattern, and a
  :class:`~repro.sdfg.passes.Pass` selects among them by array/parameter
  names only, never by graph-node identity or map-label lookups.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..graph import SDFG, SDFGState

__all__ = ["Site", "Transformation", "TransformationError"]


class TransformationError(ValueError):
    """Raised when a transformation's pattern requirements are not met."""


@dataclass(frozen=True)
class Site:
    """A candidate application site found by :meth:`Transformation.match`.

    Sites carry both a declarative description (state label, map scope,
    arrays, parameters — everything needed to report or serialize the
    match) and the live graph anchors (``nodes``) needed to instantiate
    the transformation.  ``nodes`` is excluded from :meth:`to_dict`.
    """

    #: name of the matching :class:`Transformation` subclass
    transformation: str
    #: label of the state the site lives in
    state: str
    #: label of the anchoring map scope(s), when the pattern has one
    scope: Optional[str] = None
    #: data containers the rewrite touches (pattern-specific meaning:
    #: fission intermediates, batching outputs, the shrunk transient, ...)
    arrays: Tuple[str, ...] = ()
    #: candidate parameters (removable offsets, hoistable/batchable map
    #: params, shrink-dim indices' params, ...)
    params: Tuple[str, ...] = ()
    #: pattern-specific dimension positions (e.g. shrinkable dims)
    dims: Tuple[int, ...] = ()
    #: live graph anchors (map entries, in pattern-defined order)
    nodes: Tuple[Any, ...] = field(default=(), compare=False, repr=False)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "transformation": self.transformation,
            "state": self.state,
            "scope": self.scope,
            "arrays": list(self.arrays),
            "params": list(self.params),
            "dims": list(self.dims),
        }

    def describe(self) -> str:
        parts = [self.transformation]
        if self.scope:
            parts.append(f"@{self.scope}")
        if self.arrays:
            parts.append("on " + ",".join(self.arrays))
        if self.params:
            parts.append("[" + ",".join(self.params) + "]")
        return " ".join(parts)


class Transformation:
    """Base class: ``match`` sites, then ``check``/``apply`` on a state."""

    name = "transformation"

    @classmethod
    def match(cls, sdfg: SDFG, state: SDFGState) -> List[Site]:
        """Enumerate candidate application sites by structural pattern.

        Returns declarative :class:`Site` records; constructing the
        actual transformation from a site may need extra configuration
        (permutations, replacement tasklets) supplied by the caller.
        """
        raise NotImplementedError(
            f"{cls.__name__} does not implement site enumeration"
        )

    def can_apply(self, sdfg: SDFG, state: SDFGState) -> bool:
        try:
            self.check(sdfg, state)
            return True
        except TransformationError:
            return False

    def check(self, sdfg: SDFG, state: SDFGState) -> None:
        """Raise :class:`TransformationError` when not applicable."""

    def apply(self, sdfg: SDFG, state: SDFGState) -> None:
        raise NotImplementedError

    def apply_checked(self, sdfg: SDFG, state: SDFGState) -> None:
        self.check(sdfg, state)
        self.apply(sdfg, state)
        sdfg.validate()

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
