"""Graph transformations used by the paper's optimization recipe (§4)."""

from .array_shrink import ArrayShrink
from .base import Site, Transformation, TransformationError
from .batching import BatchedOperationSubstitution
from .data_layout import DataLayoutTransformation, apply_layout
from .map_expansion import MapExpansion
from .map_fission import MapFission
from .map_fusion import MapFusion
from .map_tiling import MapTiling
from .redundancy import RedundantComputationRemoval

__all__ = [
    "ArrayShrink",
    "Site",
    "Transformation",
    "TransformationError",
    "BatchedOperationSubstitution",
    "DataLayoutTransformation",
    "apply_layout",
    "MapExpansion",
    "MapFission",
    "MapFusion",
    "MapTiling",
    "RedundantComputationRemoval",
]
