"""Map fission / distribution (paper Fig. 9).

Splits a multi-tasklet map into one map per tasklet.  Each resulting map
iterates only over the parameters its tasklet actually uses (the paper:
"it automatically detects that the top-left and bottom maps are independent
of the j symbol, and removes it from them"), and in-scope per-iteration
temporaries are expanded into multi-dimensional transient tensors indexed
by those parameters.

Parameters listed in ``reduce`` for an intermediate are summed away during
production (write-conflict resolution ``sum``) instead of becoming a tensor
dimension — the rewrite the paper applies to ``∇HD≷``, valid because the
consumer is linear in the intermediate and the final output accumulates.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..graph import SDFG, ArrayDesc, SDFGState
from ..memlet import Memlet
from ..nodes import AccessNode, Map, MapEntry, MapExit, Tasklet
from ..subsets import Range
from ..symbolic import Symbol
from .base import Site, Transformation, TransformationError

__all__ = ["MapFission"]


class MapFission(Transformation):
    """Distribute a map over its member tasklets.

    Parameters
    ----------
    map_entry:
        The scope to fission.  Its body must be a DAG of tasklets whose
        intermediate values flow through in-scope transient access nodes.
    reduce:
        ``{intermediate_array: [params]}`` to sum away during production.
    """

    name = "MapFission"

    def __init__(self, map_entry: MapEntry, reduce: Optional[Dict[str, Sequence[str]]] = None):
        self.map_entry = map_entry
        self.reduce = {k: list(v) for k, v in (reduce or {}).items()}
        self.new_entries: List[MapEntry] = []

    # -- pattern ------------------------------------------------------------
    @classmethod
    def match(cls, sdfg: SDFG, state: SDFGState) -> List[Site]:
        """Fissionable scopes: top-level, >= 2 tasklets, no nested maps,
        transient intermediates only.  ``arrays`` lists the intermediates
        that will be expanded into tensors.  Nested scopes are excluded:
        the rewrite rebuilds the split maps at state top level, which
        would hoist the body out of any enclosing map's bindings."""
        sites: List[Site] = []
        for entry in state.graph.nodes:
            if not isinstance(entry, MapEntry):
                continue
            if state.scope_chain(entry):
                continue
            children = state.scope_children(entry)
            if any(isinstance(n, (MapEntry, MapExit)) for n in children):
                continue
            accesses = [n for n in children if isinstance(n, AccessNode)]
            if any(not sdfg.arrays[n.data].transient for n in accesses):
                continue
            tasklets = [n for n in children if isinstance(n, Tasklet)]
            if len(tasklets) < 2:
                continue
            sites.append(
                Site(
                    transformation=cls.__name__,
                    state=state.label,
                    scope=entry.map.label,
                    arrays=tuple(sorted({n.data for n in accesses})),
                    params=tuple(entry.map.params),
                    nodes=(entry,),
                )
            )
        return sites

    def check(self, sdfg: SDFG, state: SDFGState) -> None:
        if self.map_entry not in state.graph.nodes:
            raise TransformationError("map entry not in state")
        if state.scope_chain(self.map_entry):
            raise TransformationError(
                "fission of nested scopes not supported: the split maps "
                "are rebuilt at state top level"
            )
        children = state.scope_children(self.map_entry)
        for n in children:
            if isinstance(n, (MapEntry, MapExit)):
                raise TransformationError("nested maps not supported by fission")
            if isinstance(n, AccessNode):
                if not sdfg.arrays[n.data].transient:
                    raise TransformationError(
                        f"in-scope access node {n.data!r} must be transient"
                    )
        tasklets = [n for n in children if isinstance(n, Tasklet)]
        if len(tasklets) < 2:
            raise TransformationError("fission requires at least two tasklets")

    # -- rewrite --------------------------------------------------------------
    def apply(self, sdfg: SDFG, state: SDFGState) -> None:
        entry = self.map_entry
        exit_node = state.exit_node(entry)
        m = entry.map
        children = state.scope_children(entry)
        tasklets = [
            n for n in state.topological_nodes()
            if n in set(children) and isinstance(n, Tasklet)
        ]
        inner_accesses = [n for n in children if isinstance(n, AccessNode)]
        intermediates = {n.data for n in inner_accesses}

        # Producer/consumer structure of intermediates.
        producer: Dict[str, Tasklet] = {}
        consumers: Dict[str, List[Tasklet]] = {v: [] for v in intermediates}
        for an in inner_accesses:
            for u, _, d in state.in_edges(an):
                if isinstance(u, Tasklet):
                    if an.data in producer and producer[an.data] is not u:
                        raise TransformationError(
                            f"intermediate {an.data!r} has multiple producers"
                        )
                    producer[an.data] = u
            for _, v, d in state.out_edges(an):
                if isinstance(v, Tasklet):
                    consumers[an.data].append(v)

        # Record original tasklet connectivity before we cut edges.
        direct_in: Dict[Tasklet, list] = {t: [] for t in tasklets}
        direct_out: Dict[Tasklet, list] = {t: [] for t in tasklets}
        inter_in: Dict[Tasklet, list] = {t: [] for t in tasklets}
        inter_out: Dict[Tasklet, list] = {t: [] for t in tasklets}
        for t in tasklets:
            for u, _, d in state.in_edges(t):
                if u is entry:
                    direct_in[t].append(d)
                elif isinstance(u, AccessNode) and u.data in intermediates:
                    inter_in[t].append((u.data, d))
            for _, v, d in state.out_edges(t):
                if v is exit_node:
                    direct_out[t].append(d)
                elif isinstance(v, AccessNode) and v.data in intermediates:
                    inter_out[t].append((v.data, d))

        # Parameters used directly by each tasklet's external memlets.
        pset = set(m.params)

        def used_params(edges) -> set:
            out = set()
            for d in edges:
                mem: Memlet = d["memlet"] if isinstance(d, dict) else d[1]["memlet"]
                out |= mem.free_symbols & pset
            return out

        direct_params = {
            t: used_params(direct_in[t]) | used_params(direct_out[t])
            for t in tasklets
        }

        # Tensor dimensions of each expanded intermediate.
        dims_of: Dict[str, List[str]] = {}
        for v, p in producer.items():
            red = set(self.reduce.get(v, []))
            dims_of[v] = [q for q in m.params if q in direct_params[p] and q not in red]

        # Full parameter set of each new map.
        map_params: Dict[Tasklet, List[str]] = {}
        for t in tasklets:
            need = set(direct_params[t])
            for v, _ in inter_in[t]:
                need |= set(dims_of[v])
            for v, _ in inter_out[t]:
                need |= set(dims_of[v]) | set(self.reduce.get(v, []))
            map_params[t] = [q for q in m.params if q in need]

        # Expand intermediate array descriptors.
        for v, dims in dims_of.items():
            old = sdfg.arrays[v]
            ext = [
                m.range.dim_length(m.param_index(q)) for q in dims
            ]
            sdfg.arrays[v] = ArrayDesc(
                v, tuple(ext) + old.shape, old.dtype, transient=True
            )

        # Tear down the old scope.
        old_nodes = [entry, exit_node] + children
        for n in old_nodes:
            if isinstance(n, Tasklet):
                for u, _, _ in list(state.in_edges(n)):
                    state.graph.remove_edge(u, n)
                for _, v, _ in list(state.out_edges(n)):
                    state.graph.remove_edge(n, v)
        for n in old_nodes:
            if not isinstance(n, Tasklet):
                state.remove_node(n)

        # Build one scope per tasklet.
        inter_node: Dict[str, AccessNode] = {}
        self.new_entries = []
        for t in tasklets:
            params = map_params[t]
            rng = Range([m.range[m.param_index(q)] for q in params])
            nm = Map(f"{m.label}_{t.label}", params, rng)
            ne, nx = MapEntry(nm), MapExit(nm)
            self.new_entries.append(ne)

            for d in direct_in[t]:
                mem: Memlet = d["memlet"]
                src = state.add_access(mem.data)
                state.add_edge(src, ne, Memlet.full(mem.data, sdfg.arrays[mem.data].shape))
                state.add_edge(ne, t, mem, dst_conn=d.get("dst_conn"))
            for v, d in inter_in[t]:
                mem = _expanded_memlet(sdfg, v, dims_of[v], wcr=None)
                an = inter_node[v]
                state.add_edge(an, ne, Memlet.full(v, sdfg.arrays[v].shape))
                state.add_edge(ne, t, mem, dst_conn=d.get("dst_conn"))
            for d in direct_out[t]:
                mem = d["memlet"]
                dst = state.add_access(mem.data)
                state.add_edge(t, nx, mem, src_conn=d.get("src_conn"))
                state.add_edge(
                    nx, dst, Memlet.full(mem.data, sdfg.arrays[mem.data].shape, wcr=mem.wcr)
                )
            for v, d in inter_out[t]:
                wcr = "sum" if self.reduce.get(v) else None
                mem = _expanded_memlet(sdfg, v, dims_of[v], wcr=wcr)
                an = state.add_access(v)
                inter_node[v] = an
                state.add_edge(t, nx, mem, src_conn=d.get("src_conn"))
                state.add_edge(nx, an, Memlet.full(v, sdfg.arrays[v].shape, wcr=wcr))


def _expanded_memlet(sdfg: SDFG, v: str, dims: List[str], wcr: Optional[str]) -> Memlet:
    desc = sdfg.arrays[v]
    block_rank = desc.rank - len(dims)
    idx = [(Symbol(q), Symbol(q), 1) for q in dims]
    block = [(0, s - 1, 1) for s in desc.shape[len(dims):]]
    return Memlet(v, Range(idx + block), wcr=wcr)
