"""Redundant-computation removal (paper Fig. 10b).

In the fissioned ``∇HG≷`` map, the parameters ``(qz, w)`` appear only as
offsets ``kz - qz`` / ``E - w`` in the *input* index of a periodic axis:
the subspace ``[0, Nkz) x [0, NE)`` already covers all shifted points, so
iterating over ``(qz, w)`` recomputes identical values.  The transformation

* removes the offset parameters from the producer map,
* zeroes them out of the producer's input memlets,
* drops the corresponding dimensions of the produced tensor, and
* re-introduces the shift in every *consumer* memlet
  (``∇HG≷[kz, E, ...]`` becomes ``∇HG≷[kz - qz, E - w, ...]``).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..graph import SDFG, ArrayDesc, SDFGState
from ..memlet import Memlet
from ..nodes import AccessNode, MapEntry, Tasklet
from ..subsets import Range
from ..symbolic import Integer, NonAffineError, Symbol, affine_coefficients
from .base import Site, Transformation, TransformationError

__all__ = ["RedundantComputationRemoval"]


class RedundantComputationRemoval(Transformation):
    """Remove offset-only parameters from a producer map.

    Parameters
    ----------
    map_entry:
        The producer scope (single tasklet writing ``array``).
    array:
        The transient tensor whose dimensions carry the removed parameters.
    removed_params:
        Parameters appearing only as ``kept - removed`` input offsets.
    """

    name = "RedundantComputationRemoval"

    def __init__(self, map_entry: MapEntry, array: str, removed_params: List[str]):
        self.map_entry = map_entry
        self.array = array
        self.removed_params = list(removed_params)

    # -- pattern -------------------------------------------------------------
    @classmethod
    def match(cls, sdfg: SDFG, state: SDFGState) -> List[Site]:
        """Single-tasklet scopes with offset-only parameters.

        A parameter ``r`` is removable when every one of its appearances
        in the producer's *input* memlets has the form ``k ± r`` where the
        kept parameter ``k`` already spans the full accessed array axis
        (the shifted subspace is covered, so iterating over ``r`` only
        recomputes values), and ``r`` indexes a plain dimension of the
        produced tensor (so that dimension can be dropped).
        """
        sites: List[Site] = []
        for entry in state.graph.nodes:
            if not isinstance(entry, MapEntry):
                continue
            tasklets = [
                n
                for n in state.scope_children(entry)
                if isinstance(n, Tasklet)
            ]
            if len(tasklets) != 1:
                continue
            t = tasklets[0]
            m = entry.map
            pset = set(m.params)
            offsets: Dict[str, Tuple[str, int]] = {}
            plain_in: set = set()
            consistent = True
            for _, _, d in state.in_edges(t):
                mem = d.get("memlet")
                if mem is None:
                    continue
                desc = sdfg.arrays[mem.data]
                for dim_i, (b, e, _) in enumerate(mem.subset.dims):
                    if b != e:
                        continue
                    syms = b.free_symbols & pset
                    if not syms:
                        continue
                    try:
                        coeffs, _ = affine_coefficients(b, m.params)
                    except NonAffineError:
                        plain_in |= syms  # indirection etc.: keep them
                        continue
                    used = [p for p in coeffs]
                    if len(used) == 1:
                        plain_in |= syms
                        continue
                    if len(used) != 2:
                        plain_in |= syms
                        continue
                    # Which of the two is removable?  The kept one must
                    # span the full array axis: range (0, extent - 1).
                    for r, k in (used, reversed(used)):
                        cr = coeffs[r].maybe_int()
                        ck = coeffs[k].maybe_int()
                        if ck != 1 or cr not in (1, -1):
                            continue
                        kb, ke, _ = m.range[m.param_index(k)]
                        if kb != Integer(0) or ke != desc.shape[dim_i] - 1:
                            continue
                        if r in offsets and offsets[r] != (k, cr):
                            consistent = False
                        offsets.setdefault(r, (k, cr))
            if not consistent:
                continue
            out_arrays: Dict[str, Memlet] = {}
            for _, _, d in state.out_edges(t):
                mem = d.get("memlet")
                if mem is not None:
                    out_arrays[mem.data] = mem
            for array, out_mem in sorted(out_arrays.items()):
                out_plain = {
                    b.name
                    for b, e, _ in out_mem.subset.dims
                    if b == e and isinstance(b, Symbol)
                }
                removable = [
                    p
                    for p in m.params
                    if p in offsets and p not in plain_in and p in out_plain
                ]
                if removable:
                    sites.append(
                        Site(
                            transformation=cls.__name__,
                            state=state.label,
                            scope=m.label,
                            arrays=(array,),
                            params=tuple(removable),
                            nodes=(entry,),
                        )
                    )
        return sites

    def check(self, sdfg: SDFG, state: SDFGState) -> None:
        if self.map_entry not in state.graph.nodes:
            raise TransformationError("map entry not in state")
        m = self.map_entry.map
        for r in self.removed_params:
            if r not in m.params:
                raise TransformationError(f"{r!r} is not a parameter of the map")
        tasklets = [
            n
            for n in state.scope_children(self.map_entry)
            if isinstance(n, Tasklet)
        ]
        if len(tasklets) != 1:
            raise TransformationError("pattern requires a single-tasklet scope")
        self._shift_spec(state, tasklets[0])  # raises on mismatch

    def _shift_spec(
        self, state: SDFGState, tasklet: Tasklet
    ) -> Dict[str, Tuple[str, int]]:
        """For each removed param: the (kept param, sign) it offsets."""
        m = self.map_entry.map
        spec: Dict[str, Tuple[str, int]] = {}
        for _, _, d in state.in_edges(tasklet):
            mem = d.get("memlet")
            if mem is None:
                continue
            for b, e, _ in mem.subset.dims:
                if b != e:
                    continue
                syms = b.free_symbols & set(self.removed_params)
                if not syms:
                    continue
                try:
                    coeffs, _ = affine_coefficients(b, m.params)
                except NonAffineError as exc:
                    raise TransformationError(str(exc)) from exc
                removed = [p for p in coeffs if p in self.removed_params]
                kept = [p for p in coeffs if p not in self.removed_params]
                if len(removed) != 1 or len(kept) != 1:
                    raise TransformationError(
                        f"index {b!r} is not a simple kept±removed offset"
                    )
                r, k = removed[0], kept[0]
                cr = coeffs[r].maybe_int()
                ck = coeffs[k].maybe_int()
                if ck != 1 or cr not in (1, -1):
                    raise TransformationError(
                        f"index {b!r}: unsupported coefficients (need k ± r)"
                    )
                if r in spec and spec[r] != (k, cr):
                    raise TransformationError(
                        f"parameter {r!r} offsets multiple dimensions differently"
                    )
                spec[r] = (k, cr)
        for r in self.removed_params:
            if r not in spec:
                raise TransformationError(
                    f"removed parameter {r!r} does not appear as an offset"
                )
        return spec

    # -- rewrite ----------------------------------------------------------------
    def apply(self, sdfg: SDFG, state: SDFGState) -> None:
        entry = self.map_entry
        m = entry.map
        tasklet = [
            n for n in state.scope_children(entry) if isinstance(n, Tasklet)
        ][0]
        spec = self._shift_spec(state, tasklet)

        # Positions of removed dims in the produced tensor (indexed by plain
        # params after fission).
        out_mem = None
        for _, v, d in state.out_edges(tasklet):
            mem = d.get("memlet")
            if mem is not None and mem.data == self.array:
                out_mem = mem
        if out_mem is None:
            raise TransformationError(f"tasklet does not write {self.array!r}")

        removed_pos: Dict[int, str] = {}
        kept_pos: Dict[str, int] = {}
        for i, (b, e, _) in enumerate(out_mem.subset.dims):
            if b == e and isinstance(b, Symbol):
                if b.name in self.removed_params:
                    removed_pos[i] = b.name
                else:
                    kept_pos[b.name] = i

        # 1. Producer: zero removed params in input memlets.
        zero = {r: 0 for r in self.removed_params}
        for u, _, d in list(state.in_edges(tasklet)):
            mem = d.get("memlet")
            if mem is not None:
                d["memlet"] = mem.subs(zero)

        # 2. Producer map loses the removed params.
        keep_idx = [i for i, p in enumerate(m.params) if p not in self.removed_params]
        m.range = Range([m.range[i] for i in keep_idx])
        m.params = [m.params[i] for i in keep_idx]

        # 3. Tensor and all memlets on it lose the removed dims; consumers
        #    gain the shift on the kept dims.
        desc = sdfg.arrays[self.array]
        keep_dims = [i for i in range(desc.rank) if i not in removed_pos]
        sdfg.arrays[self.array] = ArrayDesc(
            self.array,
            tuple(desc.shape[i] for i in keep_dims),
            desc.dtype,
            transient=desc.transient,
        )

        old_full = Range.from_shape(desc.shape)
        new_desc = sdfg.arrays[self.array]
        producer_nodes = set(state.scope_children(entry)) | {entry, tasklet}
        for u, v, d in state.edges():
            mem = d.get("memlet")
            if mem is None or mem.data != self.array:
                continue
            if mem.subset == old_full:
                d["memlet"] = Memlet.full(self.array, new_desc.shape, wcr=mem.wcr)
                continue
            is_producer_side = u in producer_nodes or v in producer_nodes
            dims = list(mem.subset.dims)
            if not is_producer_side:
                # Consumer: shift kept dims by the removed-param indices.
                for r, (k, sign) in spec.items():
                    kpos = kept_pos[k]
                    rpos = [i for i, rr in removed_pos.items() if rr == r][0]
                    rb, re_, _ = dims[rpos]
                    kb, ke, ks = dims[kpos]
                    dims[kpos] = (kb + sign * rb, ke + sign * re_, ks)
            new_dims = [dims[i] for i in keep_dims]
            d["memlet"] = Memlet(self.array, Range(new_dims), wcr=mem.wcr)
