"""Data-layout transformation (paper Fig. 10c).

Permutes the dimensions of an array SDFG-wide: the descriptor shape and
every memlet subset referencing the array are reordered.  The paper applies
this to ``G≷`` ([kz, E, f, ...] -> [f, kz, E, ...]) so that the inner
dimensions are accessed contiguously over (kz, E), enabling the fusion of
``Nkz*NE`` small matrix multiplications into a single GEMM.

Input/output arrays change their physical layout, so callers must permute
the corresponding numpy arrays; :func:`apply_layout` does this.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..graph import SDFG, ArrayDesc, SDFGState
from ..memlet import Memlet
from ..subsets import Range
from .base import Site, Transformation, TransformationError

__all__ = ["DataLayoutTransformation", "apply_layout"]


class DataLayoutTransformation(Transformation):
    """Permute the dimensions of ``array`` by ``perm`` (new-from-old order)."""

    name = "DataLayout"

    def __init__(self, array: str, perm: Sequence[int]):
        self.array = array
        self.perm = tuple(perm)

    @classmethod
    def match(cls, sdfg: SDFG, state: SDFGState) -> List[Site]:
        """Every multi-dimensional array referenced by a memlet of the
        state is re-layoutable; the permutation is the pass's choice."""
        referenced = {
            d["memlet"].data
            for _, _, d in state.edges()
            if d.get("memlet") is not None
        }
        return [
            Site(
                transformation=cls.__name__,
                state=state.label,
                arrays=(name,),
            )
            for name in sorted(referenced)
            if sdfg.arrays[name].rank >= 2
        ]

    def check(self, sdfg: SDFG, state: SDFGState) -> None:
        if self.array not in sdfg.arrays:
            raise TransformationError(f"unknown array {self.array!r}")
        desc = sdfg.arrays[self.array]
        if sorted(self.perm) != list(range(desc.rank)):
            raise TransformationError(
                f"perm {self.perm} is not a permutation of rank {desc.rank}"
            )

    def apply(self, sdfg: SDFG, state: SDFGState) -> None:
        desc = sdfg.arrays[self.array]
        sdfg.arrays[self.array] = ArrayDesc(
            self.array,
            tuple(desc.shape[i] for i in self.perm),
            desc.dtype,
            transient=desc.transient,
        )
        for st in sdfg.states:
            for _, _, d in st.edges():
                mem = d.get("memlet")
                if mem is None or mem.data != self.array:
                    continue
                dims = [mem.subset.dims[i] for i in self.perm]
                d["memlet"] = Memlet(
                    self.array, Range(dims), accesses=mem.accesses, wcr=mem.wcr
                )


def apply_layout(
    arrays: Dict[str, np.ndarray], perms: Dict[str, Sequence[int]]
) -> Dict[str, np.ndarray]:
    """Physically permute numpy arrays to match layout transformations."""
    out = dict(arrays)
    for name, perm in perms.items():
        if name in out:
            out[name] = np.ascontiguousarray(np.transpose(out[name], perm))
    return out
