"""Map expansion (paper Fig. 11b and §4.2 footprint reduction).

Splits an N-dimensional map into an outer map over the selected parameters
and a nested inner map over the rest.  Used twice by the recipe: to isolate
the ``ω`` accumulation before GEMM substitution, and to hoist ``(a, b)``
outermost in each SSE sub-map so that Map Fusion can merge the scopes and
shrink the transient tensors (Fig. 12).
"""

from __future__ import annotations

from typing import List, Optional

from ..graph import SDFG, SDFGState
from ..memlet import Memlet
from ..nodes import Map, MapEntry, MapExit
from ..subsets import Range
from .base import Site, Transformation, TransformationError

__all__ = ["MapExpansion"]


class MapExpansion(Transformation):
    """Hoist ``outer_params`` into an enclosing map scope."""

    name = "MapExpansion"

    def __init__(self, map_entry: MapEntry, outer_params: List[str]):
        self.map_entry = map_entry
        self.outer_params = list(outer_params)
        self.inner_entry: Optional[MapEntry] = None

    @classmethod
    def match(cls, sdfg: SDFG, state: SDFGState) -> List[Site]:
        """Any map with >= 2 parameters can hoist a proper subset."""
        return [
            Site(
                transformation=cls.__name__,
                state=state.label,
                scope=n.map.label,
                params=tuple(n.map.params),
                nodes=(n,),
            )
            for n in state.graph.nodes
            if isinstance(n, MapEntry) and len(n.map.params) >= 2
        ]

    def check(self, sdfg: SDFG, state: SDFGState) -> None:
        if self.map_entry not in state.graph.nodes:
            raise TransformationError("map entry not in state")
        m = self.map_entry.map
        for p in self.outer_params:
            if p not in m.params:
                raise TransformationError(f"{p!r} not a parameter of the map")
        if len(self.outer_params) >= len(m.params):
            raise TransformationError("expansion must leave a non-empty inner map")

    def apply(self, sdfg: SDFG, state: SDFGState) -> None:
        entry = self.map_entry
        exit_node = state.exit_node(entry)
        m = entry.map

        inner_params = [p for p in m.params if p not in self.outer_params]
        inner_rng = Range([m.range[m.param_index(p)] for p in inner_params])
        outer_rng = Range([m.range[m.param_index(p)] for p in self.outer_params])

        inner = Map(f"{m.label}_inner", inner_params, inner_rng)
        ientry, iexit = MapEntry(inner), MapExit(inner)
        self.inner_entry = ientry

        # The original map becomes the outer scope.
        m.params = list(self.outer_params)
        m.range = outer_rng

        for _, v, d in list(state.out_edges(entry)):
            state.graph.remove_edge(entry, v)
            state.add_edge(ientry, v, d.get("memlet"), d.get("src_conn"), d.get("dst_conn"))
            state.add_edge(entry, ientry, _copy(d.get("memlet")))
        for u, _, d in list(state.in_edges(exit_node)):
            state.graph.remove_edge(u, exit_node)
            state.add_edge(u, iexit, d.get("memlet"), d.get("src_conn"), d.get("dst_conn"))
            state.add_edge(iexit, exit_node, _copy(d.get("memlet")))


def _copy(mem: Optional[Memlet]) -> Optional[Memlet]:
    if mem is None:
        return None
    return Memlet(mem.data, mem.subset, accesses=mem.accesses, wcr=mem.wcr)
