"""Map fusion (paper Fig. 12, §4.2 memory-footprint reduction).

Merges several top-level map scopes with *identical* parameters and ranges
into a single scope whose body executes the original bodies in sequence.
Intermediate tensors flowing between the scopes become interior access
nodes: after :class:`~repro.sdfg.transformations.array_shrink.ArrayShrink`
removes the fused dimensions, they shrink from 7-D/5-D tensors to the
3-D per-(a, b) blocks shown in Fig. 12.

Intermediates written through ``CR: Sum`` are re-zeroed at every fused
iteration by an automatically inserted initialization tasklet (DaCe
allocates such transients per scope iteration; our interpreter allocates
globally, so the initialization must be explicit in the graph).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..graph import SDFG, SDFGState
from ..memlet import Memlet
from ..nodes import AccessNode, Map, MapEntry, MapExit, Node, Tasklet
from ..subsets import Range
from ..symbolic import Symbol
from .base import Site, Transformation, TransformationError

__all__ = ["MapFusion"]


class MapFusion(Transformation):
    """Fuse top-level scopes (in the given order) into one map."""

    name = "MapFusion"

    def __init__(self, map_entries: List[MapEntry], label: str = "fused"):
        self.map_entries = list(map_entries)
        self.label = label
        self.fused_entry: Optional[MapEntry] = None

    @classmethod
    def match(cls, sdfg: SDFG, state: SDFGState) -> List[Site]:
        """Groups of >= 2 top-level scopes with identical parameters and
        ranges.  One site per group; ``nodes`` is ordered topologically
        (writers before readers), the order fusion applies them in."""
        order = {n: i for i, n in enumerate(state.topological_nodes())}
        groups: Dict[tuple, List[MapEntry]] = {}
        for entry in state.top_level_maps():
            key = (tuple(entry.map.params), entry.map.range)
            groups.setdefault(key, []).append(entry)
        sites: List[Site] = []
        for (params, _), entries in groups.items():
            if len(entries) < 2:
                continue
            entries.sort(key=lambda e: order[e])
            sites.append(
                Site(
                    transformation=cls.__name__,
                    state=state.label,
                    scope=" + ".join(e.map.label for e in entries),
                    params=params,
                    nodes=tuple(entries),
                )
            )
        return sites

    def check(self, sdfg: SDFG, state: SDFGState) -> None:
        if len(self.map_entries) < 2:
            raise TransformationError("fusion needs at least two scopes")
        ref = self.map_entries[0].map
        for me in self.map_entries:
            if me not in state.graph.nodes:
                raise TransformationError("map entry not in state")
            if me.map.params != ref.params or me.map.range != ref.range:
                raise TransformationError(
                    f"scope {me.label!r} differs in params/range from {ref.label!r}"
                )
        top = set(state.top_level_maps())
        for me in self.map_entries:
            if me not in top:
                raise TransformationError(f"{me.label!r} is not a top-level scope")

    def apply(self, sdfg: SDFG, state: SDFGState) -> None:
        entries = self.map_entries
        exits = [state.exit_node(e) for e in entries]
        ref = entries[0].map

        fused = Map(self.label, list(ref.params), ref.range)
        fentry, fexit = MapEntry(fused), MapExit(fused)
        self.fused_entry = fentry
        state.add_node(fentry)
        state.add_node(fexit)

        # Arrays written by one scope and read by a later one.
        written: Dict[str, int] = {}
        read: Dict[str, List[int]] = {}
        writer_mem: Dict[str, Memlet] = {}
        writer_node: Dict[str, Node] = {}
        for i, (en, ex) in enumerate(zip(entries, exits)):
            for u, _, d in state.in_edges(ex):
                mem = d.get("memlet")
                if mem is not None:
                    written[mem.data] = i
                    writer_mem[mem.data] = mem
                    writer_node[mem.data] = u
            for _, v, d in state.out_edges(en):
                mem = d.get("memlet")
                if mem is not None:
                    read.setdefault(mem.data, []).append(i)
        intermediates = {
            a
            for a, i in written.items()
            if any(j > i for j in read.get(a, []))
        }

        an_current: Dict[str, AccessNode] = {}
        for i, (en, ex) in enumerate(zip(entries, exits)):
            # Writer side first would be wrong: readers in this scope consume
            # the *previous* scope's AN, so handle inputs before outputs.
            for _, v, d in list(state.out_edges(en)):
                state.graph.remove_edge(en, v)
                mem = d.get("memlet")
                if mem is not None and mem.data in intermediates:
                    src = an_current.get(mem.data)
                    if src is None:
                        raise TransformationError(
                            f"reader of {mem.data!r} precedes its writer"
                        )
                    state.add_edge(src, v, mem, d.get("src_conn"), d.get("dst_conn"))
                elif mem is not None:
                    state.add_edge(fentry, v, mem, d.get("src_conn"), d.get("dst_conn"))
            for u, _, d in list(state.in_edges(en)):
                state.graph.remove_edge(u, en)
                mem = d.get("memlet")
                if (
                    isinstance(u, AccessNode)
                    and mem is not None
                    and mem.data not in intermediates
                ):
                    state.add_edge(u, fentry, mem, d.get("src_conn"), d.get("dst_conn"))
            for u, _, d in list(state.in_edges(ex)):
                state.graph.remove_edge(u, ex)
                mem = d.get("memlet")
                if mem is not None and mem.data in intermediates:
                    an = AccessNode(mem.data)
                    state.add_node(an)
                    state.add_edge(u, an, mem, d.get("src_conn"), d.get("dst_conn"))
                    an_current[mem.data] = an
                    writer_node[mem.data] = u
                elif mem is not None:
                    state.add_edge(u, fexit, mem, d.get("src_conn"), d.get("dst_conn"))
            for _, v, d in list(state.out_edges(ex)):
                state.graph.remove_edge(ex, v)
                mem = d.get("memlet")
                if mem is not None and mem.data in intermediates:
                    if state.graph.degree(v) == 0:
                        state.remove_node(v)
                elif mem is not None:
                    state.add_edge(fexit, v, mem, d.get("src_conn"), d.get("dst_conn"))

        # Drop the old scope delimiters and orphaned intermediate nodes.
        for en, ex in zip(entries, exits):
            state.remove_node(en)
            state.remove_node(ex)
        for n in list(state.graph.nodes):
            if (
                isinstance(n, AccessNode)
                and n.data in intermediates
                and state.graph.degree(n) == 0
            ):
                state.remove_node(n)

        # Zero-initialize WCR'd intermediates at each fused iteration.
        for a in sorted(intermediates):
            mem = writer_mem[a]
            if mem.wcr is None:
                continue
            init_mem = _init_memlet(sdfg, a, mem, fused.params)
            t = Tasklet(f"init_{a}", [], ["out"], lambda: {"out": 0}, op="zero")
            an_pre = AccessNode(a)
            state.add_node(t)
            state.add_node(an_pre)
            state.add_edge(fentry, t, None)
            state.add_edge(t, an_pre, init_mem, src_conn="out")
            # Anchor before the *entry* of the writer's nested scope so the
            # zeroing precedes the accumulation in topological order.
            anchor = writer_node[a]
            if isinstance(anchor, MapExit):
                anchor = state.entry_node(anchor)
            state.add_edge(an_pre, anchor, None)

        # Ensure every interior source is anchored to the fused entry.
        fused_interior = state.scope_children(fentry)
        for n in fused_interior:
            if not list(state.in_edges(n)):
                state.add_edge(fentry, n, None)


def _init_memlet(sdfg: SDFG, array: str, writer: Memlet, fused_params) -> Memlet:
    """Full-range memlet except on dimensions indexed by fused parameters."""
    desc = sdfg.arrays[array]
    pset = set(fused_params)
    dims = []
    for (b, e, s), n in zip(writer.subset.dims, desc.shape):
        if (b.free_symbols | e.free_symbols) & pset:
            dims.append((b, e, s))
        else:
            dims.append((0, n - 1, 1))
    return Memlet(array, Range(dims))
