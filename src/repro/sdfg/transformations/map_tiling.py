"""Map tiling (paper Fig. 7, left).

Splits a map into an outer map over tile indices and an inner map over the
elements of each tile: parameter ``kz`` with range ``[0, Nkz)`` and tile
size ``skz`` becomes ``tkz in [0, Nkz//skz)`` outside and
``kz in [tkz*skz, (tkz+1)*skz)`` inside.  The subsequent memlet propagation
through the tiled scope yields the per-tile data footprints that drive the
communication-avoiding distribution (§4.1).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..graph import SDFG, SDFGState
from ..memlet import Memlet
from ..nodes import Map, MapEntry, MapExit
from ..subsets import Range
from ..symbolic import ExprLike, Min, sympify
from .base import Site, Transformation, TransformationError

__all__ = ["MapTiling"]


class MapTiling(Transformation):
    """Tile the given parameters of a map scope.

    Parameters
    ----------
    map_entry:
        Scope to tile.
    tile_sizes:
        ``{param: tile_size}``; parameters not listed stay untiled.
    divides_evenly:
        When True (default), tile ranges are exact (`Nkz % skz == 0`
        assumed, as in the paper's decompositions); otherwise inner ranges
        are clamped with a symbolic ``Min``.
    prefix:
        Naming prefix for tile parameters (``tkz`` for ``kz``).
    """

    name = "MapTiling"

    def __init__(
        self,
        map_entry: MapEntry,
        tile_sizes: Dict[str, ExprLike],
        divides_evenly: bool = True,
        prefix: str = "t",
    ):
        self.map_entry = map_entry
        self.tile_sizes = {k: sympify(v) for k, v in tile_sizes.items()}
        self.divides_evenly = divides_evenly
        self.prefix = prefix
        self.outer_map: Optional[Map] = None

    @classmethod
    def match(cls, sdfg: SDFG, state: SDFGState):
        """Every map scope is tileable; ``params`` lists the candidates
        (those whose ``t``-prefixed tile name is still free)."""
        sites = []
        for n in state.graph.nodes:
            if not isinstance(n, MapEntry):
                continue
            candidates = tuple(
                p for p in n.map.params if f"t{p}" not in n.map.params
            )
            if candidates:
                sites.append(
                    Site(
                        transformation=cls.__name__,
                        state=state.label,
                        scope=n.map.label,
                        params=candidates,
                        nodes=(n,),
                    )
                )
        return sites

    def check(self, sdfg: SDFG, state: SDFGState) -> None:
        if self.map_entry not in state.graph.nodes:
            raise TransformationError("map entry not in state")
        m = self.map_entry.map
        for p in self.tile_sizes:
            if p not in m.params:
                raise TransformationError(f"unknown map parameter {p!r}")
            if f"{self.prefix}{p}" in m.params:
                raise TransformationError(f"tile name {self.prefix}{p} collides")

    def apply(self, sdfg: SDFG, state: SDFGState) -> None:
        entry = self.map_entry
        exit_node = state.exit_node(entry)
        m = entry.map

        outer_params = []
        outer_dims = []
        new_inner_dims = list(m.range.dims)
        for i, p in enumerate(m.params):
            if p not in self.tile_sizes:
                continue
            s = self.tile_sizes[p]
            b, e, st = m.range[i]
            length = e - b + 1
            tp = f"{self.prefix}{p}"
            outer_params.append(tp)
            outer_dims.append((0, length // s - 1, 1))
            t = sympify(tp)
            inner_b = b + t * s
            inner_e = b + (t + 1) * s - 1
            if not self.divides_evenly:
                inner_e = Min.make(inner_e, e)
            new_inner_dims[i] = (inner_b, inner_e, st)

        m.range = Range(new_inner_dims)

        outer = Map(f"{m.label}_tiles", outer_params, Range(outer_dims))
        oentry, oexit = MapEntry(outer), MapExit(outer)
        self.outer_map = outer

        # Re-route incoming edges through the outer scope.
        for u, _, d in list(state.in_edges(entry)):
            state.graph.remove_edge(u, entry)
            state.add_edge(u, oentry, d.get("memlet"), d.get("src_conn"), d.get("dst_conn"))
            state.add_edge(oentry, entry, _copy_memlet(d.get("memlet")))
        for _, v, d in list(state.out_edges(exit_node)):
            state.graph.remove_edge(exit_node, v)
            state.add_edge(oexit, v, d.get("memlet"), d.get("src_conn"), d.get("dst_conn"))
            state.add_edge(exit_node, oexit, _copy_memlet(d.get("memlet")))
        # Keep the scope connected even without data edges.
        if not list(state.in_edges(entry)):
            state.add_edge(oentry, entry, None)
        if not list(state.out_edges(exit_node)):
            state.add_edge(exit_node, oexit, None)


def _copy_memlet(mem: Optional[Memlet]) -> Optional[Memlet]:
    if mem is None:
        return None
    return Memlet(mem.data, mem.subset, accesses=mem.accesses, wcr=mem.wcr)
