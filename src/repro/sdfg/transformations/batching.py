"""Batched-operation substitution (paper Figs. 10d and 11c).

Removes parameters from a map and replaces its tasklet with one that
processes the whole removed subspace at once — e.g. fusing ``Nkz*NE``
``Norb x Norb x Norb`` multiplications into a single
``Norb x Norb x Nkz*NE*Norb`` GEMM, or substituting the nested ``ω``
accumulation map with one ``Norb x Norb*Nω x Norb`` GEMM.

The replacement tasklet and its memlets are supplied explicitly by the
performance engineer (the recipe), because the rewrite relies on the
algebraic identity being substituted (batching / sum-of-products as GEMM),
which is beyond structural graph analysis.
"""

from __future__ import annotations

from typing import Dict, List

from ..graph import SDFG, SDFGState
from ..memlet import Memlet
from ..nodes import MapEntry, Tasklet
from ..subsets import Range
from .base import Site, Transformation, TransformationError

__all__ = ["BatchedOperationSubstitution"]


class BatchedOperationSubstitution(Transformation):
    """Shrink a single-tasklet map and swap in a batched tasklet.

    Parameters
    ----------
    map_entry:
        Single-tasklet scope to rewrite.
    batch_params:
        Map parameters to remove (the batched subspace).
    new_tasklet:
        Replacement tasklet.
    in_memlets / out_memlets:
        ``{connector: Memlet}`` for the replacement tasklet.
    """

    name = "BatchedOperationSubstitution"

    def __init__(
        self,
        map_entry: MapEntry,
        batch_params: List[str],
        new_tasklet: Tasklet,
        in_memlets: Dict[str, Memlet],
        out_memlets: Dict[str, Memlet],
    ):
        self.map_entry = map_entry
        self.batch_params = list(batch_params)
        self.new_tasklet = new_tasklet
        self.in_memlets = dict(in_memlets)
        self.out_memlets = dict(out_memlets)

    @classmethod
    def match(cls, sdfg: SDFG, state: SDFGState) -> List[Site]:
        """Single-tasklet scopes with >= 2 parameters.

        ``arrays`` lists the arrays the scope's tasklet *writes* — the
        natural selection key for a pass ("batch the producer of X"); the
        replacement tasklet and memlets remain the pass's configuration,
        since the rewrite encodes an algebraic identity.
        """
        sites: List[Site] = []
        for entry in state.graph.nodes:
            if not isinstance(entry, MapEntry):
                continue
            if len(entry.map.params) < 2:
                continue
            tasklets = [
                n
                for n in state.scope_children(entry)
                if isinstance(n, Tasklet)
            ]
            if len(tasklets) != 1:
                continue
            written = {
                d["memlet"].data
                for _, _, d in state.out_edges(tasklets[0])
                if d.get("memlet") is not None
            }
            sites.append(
                Site(
                    transformation=cls.__name__,
                    state=state.label,
                    scope=entry.map.label,
                    arrays=tuple(sorted(written)),
                    params=tuple(entry.map.params),
                    nodes=(entry,),
                )
            )
        return sites

    def check(self, sdfg: SDFG, state: SDFGState) -> None:
        if self.map_entry not in state.graph.nodes:
            raise TransformationError("map entry not in state")
        m = self.map_entry.map
        for p in self.batch_params:
            if p not in m.params:
                raise TransformationError(f"{p!r} not a parameter of the map")
        tasklets = [
            n for n in state.scope_children(self.map_entry) if isinstance(n, Tasklet)
        ]
        if len(tasklets) != 1:
            raise TransformationError("pattern requires a single-tasklet scope")
        remaining = set(m.params) - set(self.batch_params)
        for conn, mem in {**self.in_memlets, **self.out_memlets}.items():
            for p in self.batch_params:
                if p in mem.free_symbols:
                    raise TransformationError(
                        f"memlet for {conn!r} still references batched param {p!r}"
                    )
        for conn in self.new_tasklet.inputs:
            if conn not in self.in_memlets:
                raise TransformationError(f"no memlet for input {conn!r}")
        for conn in self.new_tasklet.outputs:
            if conn not in self.out_memlets:
                raise TransformationError(f"no memlet for output {conn!r}")

    def apply(self, sdfg: SDFG, state: SDFGState) -> None:
        entry = self.map_entry
        exit_node = state.exit_node(entry)
        m = entry.map
        old = [
            n for n in state.scope_children(entry) if isinstance(n, Tasklet)
        ][0]

        keep = [i for i, p in enumerate(m.params) if p not in self.batch_params]
        m.range = Range([m.range[i] for i in keep])
        m.params = [m.params[i] for i in keep]

        state.remove_node(old)
        t = self.new_tasklet
        for conn, mem in self.in_memlets.items():
            state.add_edge(entry, t, mem, dst_conn=conn)
        for conn, mem in self.out_memlets.items():
            state.add_edge(t, exit_node, mem, src_conn=conn)
