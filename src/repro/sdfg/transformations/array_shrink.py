"""Transient-array shrinking (paper §4.2, final step of Fig. 12).

After Map Fusion, the transient tensors ``∇HG≷`` and ``∇HD≷`` are produced
and consumed entirely within one iteration of the fused ``(a, b)`` map, so
their ``(a, b)`` dimensions are dead storage.  This transformation removes
dimensions that every memlet indexes with exactly the fused map parameters,
"reducing the size of the transient arrays to only three dimensions, which
are accessed for each iteration (a, b)".
"""

from __future__ import annotations

from typing import List, Sequence

from ..graph import SDFG, ArrayDesc, SDFGState
from ..memlet import Memlet
from ..subsets import Range
from ..symbolic import Symbol
from .base import Transformation, TransformationError

__all__ = ["ArrayShrink"]


class ArrayShrink(Transformation):
    """Drop dimensions of a transient indexed only by scope parameters.

    Parameters
    ----------
    array:
        The transient tensor to shrink.
    drop_dims:
        Dimension positions to remove.
    params:
        The enclosing map parameters each dropped dimension must be
        indexed by (one per dropped dimension, in order).
    """

    name = "ArrayShrink"

    def __init__(self, array: str, drop_dims: Sequence[int], params: Sequence[str]):
        if len(drop_dims) != len(params):
            raise ValueError("drop_dims and params must align")
        self.array = array
        self.drop_dims = list(drop_dims)
        self.params = list(params)

    def check(self, sdfg: SDFG, state: SDFGState) -> None:
        if self.array not in sdfg.arrays:
            raise TransformationError(f"unknown array {self.array!r}")
        desc = sdfg.arrays[self.array]
        if not desc.transient:
            raise TransformationError(f"{self.array!r} is not transient")
        for pos, p in zip(self.drop_dims, self.params):
            if pos >= desc.rank:
                raise TransformationError(f"dimension {pos} out of range")
        for st in sdfg.states:
            for _, _, d in st.edges():
                mem = d.get("memlet")
                if mem is None or mem.data != self.array:
                    continue
                for pos, p in zip(self.drop_dims, self.params):
                    b, e, _ = mem.subset.dims[pos]
                    if b != e or b != Symbol(p):
                        raise TransformationError(
                            f"memlet {mem!r} dim {pos} is not the point index {p!r}"
                        )

    def apply(self, sdfg: SDFG, state: SDFGState) -> None:
        desc = sdfg.arrays[self.array]
        keep = [i for i in range(desc.rank) if i not in set(self.drop_dims)]
        sdfg.arrays[self.array] = ArrayDesc(
            self.array,
            tuple(desc.shape[i] for i in keep),
            desc.dtype,
            transient=True,
        )
        for st in sdfg.states:
            for _, _, d in st.edges():
                mem = d.get("memlet")
                if mem is None or mem.data != self.array:
                    continue
                dims = [mem.subset.dims[i] for i in keep]
                d["memlet"] = Memlet(self.array, Range(dims), wcr=mem.wcr)
