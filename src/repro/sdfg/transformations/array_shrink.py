"""Transient-array shrinking (paper §4.2, final step of Fig. 12).

After Map Fusion, the transient tensors ``∇HG≷`` and ``∇HD≷`` are produced
and consumed entirely within one iteration of the fused ``(a, b)`` map, so
their ``(a, b)`` dimensions are dead storage.  This transformation removes
dimensions that every memlet indexes with exactly the fused map parameters,
"reducing the size of the transient arrays to only three dimensions, which
are accessed for each iteration (a, b)".
"""

from __future__ import annotations

from typing import List, Sequence

from ..graph import SDFG, ArrayDesc, SDFGState
from ..memlet import Memlet
from ..nodes import MapEntry
from ..subsets import Range
from ..symbolic import Symbol
from .base import Site, Transformation, TransformationError

__all__ = ["ArrayShrink"]


class ArrayShrink(Transformation):
    """Drop dimensions of a transient indexed only by scope parameters.

    Parameters
    ----------
    array:
        The transient tensor to shrink.
    drop_dims:
        Dimension positions to remove.
    params:
        The enclosing map parameters each dropped dimension must be
        indexed by (one per dropped dimension, in order).
    """

    name = "ArrayShrink"

    def __init__(self, array: str, drop_dims: Sequence[int], params: Sequence[str]):
        if len(drop_dims) != len(params):
            raise ValueError("drop_dims and params must align")
        self.array = array
        self.drop_dims = list(drop_dims)
        self.params = list(params)

    @classmethod
    def match(cls, sdfg: SDFG, state: SDFGState) -> List[Site]:
        """Transient dimensions indexed by one shared scope parameter.

        A dimension is shrinkable only when every memlet on the array
        indexes it with the *same* plain parameter ``p`` **and** ``p`` is
        bound by one common enclosing map for all of those memlets (the
        array then lives entirely within a single iteration of that map).
        A parameter bound by different inner scopes at the producer and
        the consumer — e.g. the ``i`` dimension of ``∇HG≷`` after fusion,
        written by one inner map and re-read in full by another — must
        stay materialized.
        """
        sites: List[Site] = []
        for name in sorted(sdfg.transients()):
            desc = sdfg.arrays[name]
            edges = [
                (u, v, d["memlet"])
                for u, v, d in state.edges()
                if d.get("memlet") is not None and d["memlet"].data == name
            ]
            if not edges:
                continue
            drop: List[int] = []
            params: List[str] = []
            for pos in range(desc.rank):
                symbols = set()
                point = True
                for _, _, mem in edges:
                    b, e, _ = mem.subset.dims[pos]
                    if b != e or not isinstance(b, Symbol):
                        point = False
                        break
                    symbols.add(b.name)
                if not point or len(symbols) != 1:
                    continue
                p = symbols.pop()
                if cls._common_binding(state, edges, p):
                    drop.append(pos)
                    params.append(p)
            if drop:
                sites.append(
                    Site(
                        transformation=cls.__name__,
                        state=state.label,
                        arrays=(name,),
                        params=tuple(params),
                        dims=tuple(drop),
                    )
                )
        return sites

    @staticmethod
    def _common_binding(state: SDFGState, edges, param: str) -> bool:
        """True when one map binds ``param`` for every given edge."""
        binding: List[MapEntry] = []
        for u, v, _ in edges:
            # The edge executes within the deeper endpoint's scope.
            cu, cv = state.scope_chain(u), state.scope_chain(v)
            chain = cu if len(cu) >= len(cv) else cv
            inner = next(
                (e for e in chain if param in e.map.params), None
            )
            if inner is None:
                return False
            binding.append(inner)
        return all(b is binding[0] for b in binding)

    def check(self, sdfg: SDFG, state: SDFGState) -> None:
        if self.array not in sdfg.arrays:
            raise TransformationError(f"unknown array {self.array!r}")
        desc = sdfg.arrays[self.array]
        if not desc.transient:
            raise TransformationError(f"{self.array!r} is not transient")
        for pos, p in zip(self.drop_dims, self.params):
            if pos >= desc.rank:
                raise TransformationError(f"dimension {pos} out of range")
        for st in sdfg.states:
            for _, _, d in st.edges():
                mem = d.get("memlet")
                if mem is None or mem.data != self.array:
                    continue
                for pos, p in zip(self.drop_dims, self.params):
                    b, e, _ = mem.subset.dims[pos]
                    if b != e or b != Symbol(p):
                        raise TransformationError(
                            f"memlet {mem!r} dim {pos} is not the point index {p!r}"
                        )

    def apply(self, sdfg: SDFG, state: SDFGState) -> None:
        desc = sdfg.arrays[self.array]
        keep = [i for i in range(desc.rank) if i not in set(self.drop_dims)]
        sdfg.arrays[self.array] = ArrayDesc(
            self.array,
            tuple(desc.shape[i] for i in keep),
            desc.dtype,
            transient=True,
        )
        for st in sdfg.states:
            for _, _, d in st.edges():
                mem = d.get("memlet")
                if mem is None or mem.data != self.array:
                    continue
                dims = [mem.subset.dims[i] for i in keep]
                d["memlet"] = Memlet(self.array, Range(dims), wcr=mem.wcr)
