"""Symbolic integer expressions for SDFG memlets and array shapes.

A small, self-contained computer-algebra layer: enough to express memlet
subsets such as ``tkz*skz - (tqz+1)*sqz + 1`` and array shapes such as
``NA*Norb``, to substitute and evaluate them, and to extract affine
coefficients for memlet propagation (see :mod:`repro.sdfg.propagation`).

Expressions are immutable and hashable.  Construction performs light
canonicalization (constant folding, flattening of nested sums/products,
collection of like terms), which keeps propagated expressions readable
without implementing a full CAS.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Tuple, Union

__all__ = [
    "Expr",
    "Integer",
    "Symbol",
    "Add",
    "Mul",
    "FloorDiv",
    "Mod",
    "Min",
    "Max",
    "IndirectAccess",
    "NonAffineError",
    "sympify",
    "symbols",
    "affine_coefficients",
]

ExprLike = Union["Expr", int, str]


class NonAffineError(ValueError):
    """Raised when affine coefficient extraction meets a non-affine term."""


def sympify(value: ExprLike) -> "Expr":
    """Coerce an int, symbol name, or expression into an :class:`Expr`."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, (int,)):
        return Integer(int(value))
    if isinstance(value, str):
        return Symbol(value)
    raise TypeError(f"cannot sympify {value!r} of type {type(value).__name__}")


def symbols(names: str) -> Tuple["Symbol", ...]:
    """Create several symbols at once: ``Nkz, NE = symbols("Nkz NE")``."""
    return tuple(Symbol(n) for n in names.replace(",", " ").split())


class Expr:
    """Base class for symbolic integer expressions."""

    __slots__ = ()

    # Expressions are immutable: copying can share them.
    def __copy__(self) -> "Expr":
        return self

    def __deepcopy__(self, memo) -> "Expr":
        return self

    # -- interface -------------------------------------------------------
    @property
    def free_symbols(self) -> frozenset:
        raise NotImplementedError

    def subs(self, mapping: Mapping[str, ExprLike]) -> "Expr":
        """Substitute symbols by name; values are sympified."""
        raise NotImplementedError

    def evaluate(self, env: Mapping[str, int]) -> int:
        """Evaluate to an integer given bindings for all free symbols."""
        raise NotImplementedError

    def sort_key(self) -> str:
        return repr(self)

    # -- python protocol -------------------------------------------------
    def __add__(self, other: ExprLike) -> "Expr":
        return Add.make(self, sympify(other))

    def __radd__(self, other: ExprLike) -> "Expr":
        return Add.make(sympify(other), self)

    def __sub__(self, other: ExprLike) -> "Expr":
        return Add.make(self, Mul.make(Integer(-1), sympify(other)))

    def __rsub__(self, other: ExprLike) -> "Expr":
        return Add.make(sympify(other), Mul.make(Integer(-1), self))

    def __mul__(self, other: ExprLike) -> "Expr":
        return Mul.make(self, sympify(other))

    def __rmul__(self, other: ExprLike) -> "Expr":
        return Mul.make(sympify(other), self)

    def __floordiv__(self, other: ExprLike) -> "Expr":
        return FloorDiv.make(self, sympify(other))

    def __rfloordiv__(self, other: ExprLike) -> "Expr":
        return FloorDiv.make(sympify(other), self)

    def __mod__(self, other: ExprLike) -> "Expr":
        return Mod.make(self, sympify(other))

    def __neg__(self) -> "Expr":
        return Mul.make(Integer(-1), self)

    def __eq__(self, other) -> bool:
        if isinstance(other, (int, str)):
            other = sympify(other)
        if not isinstance(other, Expr):
            return NotImplemented
        return repr(self) == repr(other)

    def __hash__(self) -> int:
        return hash(repr(self))

    # -- helpers ---------------------------------------------------------
    def is_constant(self) -> bool:
        return not self.free_symbols

    def maybe_int(self):
        """Return the integer value if constant, else ``None``."""
        if isinstance(self, Integer):
            return self.value
        return None

    def expand(self) -> "Expr":
        """Distribute products over sums (used for affine analysis)."""
        return self


class Integer(Expr):
    """A literal integer."""

    __slots__ = ("value",)

    def __init__(self, value: int):
        object.__setattr__(self, "value", int(value))

    def __setattr__(self, *a):  # immutability
        raise AttributeError("Integer is immutable")

    @property
    def free_symbols(self) -> frozenset:
        return frozenset()

    def subs(self, mapping) -> Expr:
        return self

    def evaluate(self, env) -> int:
        return self.value

    def __repr__(self) -> str:
        return str(self.value)


ZERO = Integer(0)
ONE = Integer(1)


class Symbol(Expr):
    """A named integer symbol (e.g. ``Nkz`` or a map parameter ``kz``)."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        if not name or not isinstance(name, str):
            raise ValueError(f"invalid symbol name: {name!r}")
        object.__setattr__(self, "name", name)

    def __setattr__(self, *a):
        raise AttributeError("Symbol is immutable")

    @property
    def free_symbols(self) -> frozenset:
        return frozenset({self.name})

    def subs(self, mapping) -> Expr:
        if self.name in mapping:
            return sympify(mapping[self.name])
        return self

    def evaluate(self, env) -> int:
        try:
            return int(env[self.name])
        except KeyError:
            raise KeyError(f"unbound symbol {self.name!r}") from None

    def __repr__(self) -> str:
        return self.name


def _flatten(cls, args: Iterable[Expr]):
    out = []
    for a in args:
        if isinstance(a, cls):
            out.extend(a.args)
        else:
            out.append(a)
    return out


class Add(Expr):
    """Canonicalized sum of terms."""

    __slots__ = ("args",)

    def __init__(self, args: Tuple[Expr, ...]):
        object.__setattr__(self, "args", tuple(args))

    def __setattr__(self, *a):
        raise AttributeError("Add is immutable")

    @staticmethod
    def make(*args: Expr) -> Expr:
        terms = _flatten(Add, [sympify(a) for a in args])
        # Collect like terms: key = canonical non-constant part.
        const = 0
        coeffs: Dict[str, Tuple[int, Expr]] = {}
        for t in terms:
            if isinstance(t, Integer):
                const += t.value
                continue
            c, base = _split_coefficient(t)
            key = repr(base)
            if key in coeffs:
                coeffs[key] = (coeffs[key][0] + c, base)
            else:
                coeffs[key] = (c, base)
        new_terms = []
        for _, (c, base) in sorted(coeffs.items()):
            if c == 0:
                continue
            if c == 1:
                new_terms.append(base)
            else:
                new_terms.append(Mul.make(Integer(c), base))
        if const != 0:
            new_terms.append(Integer(const))
        if not new_terms:
            return ZERO
        if len(new_terms) == 1:
            return new_terms[0]
        return Add(tuple(new_terms))

    @property
    def free_symbols(self) -> frozenset:
        out: frozenset = frozenset()
        for a in self.args:
            out |= a.free_symbols
        return out

    def subs(self, mapping) -> Expr:
        return Add.make(*(a.subs(mapping) for a in self.args))

    def evaluate(self, env) -> int:
        return sum(a.evaluate(env) for a in self.args)

    def expand(self) -> Expr:
        return Add.make(*(a.expand() for a in self.args))

    def __repr__(self) -> str:
        parts = []
        for i, a in enumerate(self.args):
            s = repr(a)
            if i > 0 and not s.startswith("-"):
                parts.append("+")
            parts.append(s)
        return " ".join(parts).replace("+ -", "- ")


def _split_coefficient(expr: Expr) -> Tuple[int, Expr]:
    """Split ``expr`` into (integer coefficient, remaining factor)."""
    if isinstance(expr, Mul):
        const = 1
        rest = []
        for f in expr.args:
            if isinstance(f, Integer):
                const *= f.value
            else:
                rest.append(f)
        if not rest:
            return const, ONE
        if len(rest) == 1:
            return const, rest[0]
        return const, Mul(tuple(rest))
    return 1, expr


class Mul(Expr):
    """Canonicalized product of factors."""

    __slots__ = ("args",)

    def __init__(self, args: Tuple[Expr, ...]):
        object.__setattr__(self, "args", tuple(args))

    def __setattr__(self, *a):
        raise AttributeError("Mul is immutable")

    @staticmethod
    def make(*args: Expr) -> Expr:
        factors = _flatten(Mul, [sympify(a) for a in args])
        const = 1
        rest = []
        for f in factors:
            if isinstance(f, Integer):
                const *= f.value
            else:
                rest.append(f)
        if const == 0:
            return ZERO
        rest.sort(key=lambda e: e.sort_key())
        if not rest:
            return Integer(const)
        if const != 1:
            rest = [Integer(const)] + rest
        if len(rest) == 1:
            return rest[0]
        return Mul(tuple(rest))

    @property
    def free_symbols(self) -> frozenset:
        out: frozenset = frozenset()
        for a in self.args:
            out |= a.free_symbols
        return out

    def subs(self, mapping) -> Expr:
        return Mul.make(*(a.subs(mapping) for a in self.args))

    def evaluate(self, env) -> int:
        out = 1
        for a in self.args:
            out *= a.evaluate(env)
        return out

    def expand(self) -> Expr:
        factors = [a.expand() for a in self.args]
        # Distribute over the first Add found, recursively.
        for i, f in enumerate(factors):
            if isinstance(f, Add):
                others = factors[:i] + factors[i + 1 :]
                return Add.make(
                    *(Mul.make(t, *others).expand() for t in f.args)
                )
        return Mul.make(*factors)

    def __repr__(self) -> str:
        parts = []
        for a in self.args:
            s = repr(a)
            if isinstance(a, (Add,)):
                s = f"({s})"
            parts.append(s)
        # "-1*x" prints as "-x"
        if parts and parts[0] == "-1":
            rest = "*".join(parts[1:])
            return f"-{rest}"
        return "*".join(parts)


class FloorDiv(Expr):
    """Integer (floor) division."""

    __slots__ = ("num", "den")

    def __init__(self, num: Expr, den: Expr):
        object.__setattr__(self, "num", num)
        object.__setattr__(self, "den", den)

    def __setattr__(self, *a):
        raise AttributeError("FloorDiv is immutable")

    @staticmethod
    def make(num: Expr, den: Expr) -> Expr:
        num, den = sympify(num), sympify(den)
        if isinstance(den, Integer):
            if den.value == 0:
                raise ZeroDivisionError("symbolic division by zero")
            if den.value == 1:
                return num
            if isinstance(num, Integer):
                return Integer(num.value // den.value)
        return FloorDiv(num, den)

    @property
    def free_symbols(self) -> frozenset:
        return self.num.free_symbols | self.den.free_symbols

    def subs(self, mapping) -> Expr:
        return FloorDiv.make(self.num.subs(mapping), self.den.subs(mapping))

    def evaluate(self, env) -> int:
        return self.num.evaluate(env) // self.den.evaluate(env)

    def __repr__(self) -> str:
        def wrap(e):
            s = repr(e)
            return f"({s})" if isinstance(e, (Add, Mul)) else s

        return f"{wrap(self.num)}//{wrap(self.den)}"


class Mod(Expr):
    """Modulo (Python semantics: result has the sign of the divisor)."""

    __slots__ = ("num", "den")

    def __init__(self, num: Expr, den: Expr):
        object.__setattr__(self, "num", num)
        object.__setattr__(self, "den", den)

    def __setattr__(self, *a):
        raise AttributeError("Mod is immutable")

    @staticmethod
    def make(num: Expr, den: Expr) -> Expr:
        num, den = sympify(num), sympify(den)
        if isinstance(den, Integer):
            if den.value == 0:
                raise ZeroDivisionError("symbolic modulo by zero")
            if isinstance(num, Integer):
                return Integer(num.value % den.value)
        return Mod(num, den)

    @property
    def free_symbols(self) -> frozenset:
        return self.num.free_symbols | self.den.free_symbols

    def subs(self, mapping) -> Expr:
        return Mod.make(self.num.subs(mapping), self.den.subs(mapping))

    def evaluate(self, env) -> int:
        return self.num.evaluate(env) % self.den.evaluate(env)

    def __repr__(self) -> str:
        def wrap(e):
            s = repr(e)
            return f"({s})" if isinstance(e, (Add, Mul)) else s

        return f"{wrap(self.num)}%{wrap(self.den)}"


class _MinMax(Expr):
    __slots__ = ("args",)
    _fold = None
    _name = ""

    def __init__(self, args: Tuple[Expr, ...]):
        object.__setattr__(self, "args", tuple(args))

    def __setattr__(self, *a):
        raise AttributeError(f"{self._name} is immutable")

    @classmethod
    def make(cls, *args: ExprLike) -> Expr:
        exprs = _flatten(cls, [sympify(a) for a in args])
        # Deduplicate and fold constants.
        fold = cls._fold
        const = None
        seen = {}
        for e in exprs:
            if isinstance(e, Integer):
                const = e.value if const is None else fold(const, e.value)
            else:
                seen.setdefault(repr(e), e)
        rest = [seen[k] for k in sorted(seen)]
        if const is not None:
            rest.append(Integer(const))
        if len(rest) == 1:
            return rest[0]
        return cls(tuple(rest))

    @property
    def free_symbols(self) -> frozenset:
        out: frozenset = frozenset()
        for a in self.args:
            out |= a.free_symbols
        return out

    def subs(self, mapping) -> Expr:
        return type(self).make(*(a.subs(mapping) for a in self.args))

    def evaluate(self, env) -> int:
        fold = type(self)._fold
        return fold(a.evaluate(env) for a in self.args)

    def __repr__(self) -> str:
        inner = ", ".join(repr(a) for a in self.args)
        return f"{self._name}({inner})"


class Min(_MinMax):
    __slots__ = ()
    _fold = staticmethod(min)
    _name = "Min"


class Max(_MinMax):
    __slots__ = ()
    _fold = staticmethod(max)
    _name = "Max"


class IndirectAccess(Expr):
    """An index obtained through a lookup table, e.g. ``f = neigh_idx[a, b]``.

    The paper (§4.1) notes that DaCe cannot propagate such indices
    automatically; a performance engineer supplies an approximation.  We
    model the indirection explicitly: evaluation reads the table from the
    environment (``env["__tables__"][table]``), while propagation consults a
    user-provided hook (see :mod:`repro.sdfg.propagation`).
    """

    __slots__ = ("table", "indices")

    def __init__(self, table: str, indices: Tuple[Expr, ...]):
        object.__setattr__(self, "table", table)
        object.__setattr__(
            self, "indices", tuple(sympify(i) for i in indices)
        )

    def __setattr__(self, *a):
        raise AttributeError("IndirectAccess is immutable")

    @property
    def free_symbols(self) -> frozenset:
        out = frozenset()
        for i in self.indices:
            out |= i.free_symbols
        return out

    def subs(self, mapping) -> Expr:
        return IndirectAccess(
            self.table, tuple(i.subs(mapping) for i in self.indices)
        )

    def evaluate(self, env) -> int:
        tables = env.get("__tables__", {})
        if self.table not in tables:
            raise KeyError(f"indirection table {self.table!r} not bound")
        idx = tuple(i.evaluate(env) for i in self.indices)
        return int(tables[self.table][idx])

    def __repr__(self) -> str:
        inner = ", ".join(repr(i) for i in self.indices)
        return f"{self.table}[{inner}]"


def affine_coefficients(
    expr: ExprLike, params: Iterable[str]
) -> Tuple[Dict[str, Expr], Expr]:
    """Decompose ``expr`` as ``sum(coeff[p] * p) + const`` over ``params``.

    Raises :class:`NonAffineError` if any param appears nonlinearly, inside
    a floor division / modulo / min / max, or through an indirection.
    """
    expr = sympify(expr).expand()
    params = set(params)
    coeffs: Dict[str, Expr] = {}
    const_terms = []

    terms = expr.args if isinstance(expr, Add) else (expr,)
    for term in terms:
        hit = term.free_symbols & params
        if not hit:
            const_terms.append(term)
            continue
        if len(hit) > 1:
            raise NonAffineError(f"term {term!r} mixes parameters {hit}")
        (p,) = hit
        # term must be coeff * p with coeff free of params
        if isinstance(term, Symbol):
            coeff: Expr = ONE
        elif isinstance(term, Mul):
            coeff_factors = []
            p_count = 0
            for f in term.args:
                if isinstance(f, Symbol) and f.name == p:
                    p_count += 1
                elif p in f.free_symbols:
                    raise NonAffineError(f"nonlinear use of {p} in {term!r}")
                else:
                    coeff_factors.append(f)
            if p_count != 1:
                raise NonAffineError(f"nonlinear use of {p} in {term!r}")
            coeff = Mul.make(*coeff_factors) if coeff_factors else ONE
        else:
            raise NonAffineError(f"non-affine term {term!r}")
        coeffs[p] = Add.make(coeffs.get(p, ZERO), coeff)
        if p in coeffs and coeffs[p] == ZERO:
            del coeffs[p]
    const = Add.make(*const_terms) if const_terms else ZERO
    return coeffs, const
