"""Passes: declarative pipeline stages over SDFG transformations.

A :class:`Pass` is one named step of an optimization
:class:`~repro.sdfg.pipeline.Pipeline`.  Where a raw
:class:`~repro.sdfg.transformations.Transformation` is constructed around
explicit graph nodes, a pass is *pure configuration*: it stores only array
names, parameter names, permutations and replacement-tasklet prototypes,
and selects its application sites at run time through the transformation's
:meth:`~repro.sdfg.transformations.Transformation.match` enumeration.
That makes a pipeline a piece of data that can be reported, serialized and
re-applied to freshly built graphs — the paper's Fig. 8 → 12 recipe
becomes one such declaration (:mod:`repro.core.recipe`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from .graph import SDFG, SDFGState
from .memlet import Memlet
from .nodes import Tasklet
from .transformations import (
    ArrayShrink,
    BatchedOperationSubstitution,
    DataLayoutTransformation,
    MapExpansion,
    MapFission,
    MapFusion,
    MapTiling,
    Site,
    Transformation,
)
from .transformations.redundancy import RedundantComputationRemoval

__all__ = [
    "PassError",
    "PassOutcome",
    "Pass",
    "FissionPass",
    "RedundancyPass",
    "LayoutPass",
    "BatchPass",
    "ExpandPass",
    "FusePass",
    "ShrinkPass",
    "TilePass",
]


class PassError(ValueError):
    """A pass found no (or ambiguously many) matching sites."""


def _describe_sites(
    state: Optional[SDFGState], sites: Sequence[Site]
) -> str:
    """Render candidate sites as indented lines for failure messages.

    Each line shows the site's own description (transformation, scope,
    arrays, params) plus the labels of the scope chain enclosing its
    anchor node, so a failing selection names concrete graph locations.
    """
    if not sites:
        return ""
    lines = []
    for site in sites:
        text = site.describe()
        if state is not None and site.nodes:
            try:
                chain = state.scope_chain(site.nodes[0])
            except Exception:
                chain = []
            if chain:
                text += (
                    " (scope chain: "
                    + " < ".join(e.map.label for e in chain)
                    + ")"
                )
        lines.append(f"  - {text}")
    return "; candidate sites:\n" + "\n".join(lines)


@dataclass(frozen=True)
class PassOutcome:
    """What one pass did to the graph: the sites it selected and the
    transformations it applied (by description)."""

    stage: str
    description: str
    transformation: str
    applied: Tuple[str, ...]
    sites: Tuple[Dict[str, Any], ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "stage": self.stage,
            "description": self.description,
            "transformation": self.transformation,
            "applied": list(self.applied),
            "sites": [dict(s) for s in self.sites],
        }


class Pass:
    """One declarative pipeline stage.

    Subclasses set ``transformation`` (the transformation class whose
    :meth:`match` enumerates candidates) and implement :meth:`select`,
    turning matched sites into configured transformation instances using
    only the pass's declarative configuration.
    """

    transformation: type = Transformation

    def __init__(self, stage: str, description: str):
        self.stage = stage
        self.description = description

    # -- declarative surface -------------------------------------------------
    def config(self) -> Dict[str, Any]:
        """The pass's configuration as plain data (for reports)."""
        return {}

    def to_dict(self) -> Dict[str, Any]:
        return {
            "stage": self.stage,
            "description": self.description,
            "transformation": self.transformation.__name__,
            **self.config(),
        }

    #: permutations this pass imposes on array layouts ({} for most)
    @property
    def perms(self) -> Dict[str, Tuple[int, ...]]:
        return {}

    # -- application ---------------------------------------------------------
    def select(
        self, sdfg: SDFG, state: SDFGState, sites: List[Site]
    ) -> List[Tuple[Site, Transformation]]:
        raise NotImplementedError

    def run(self, sdfg: SDFG, state: SDFGState) -> PassOutcome:
        sites = self.transformation.match(sdfg, state)
        chosen = self.select(sdfg, state, sites)
        if not chosen:
            raise PassError(
                f"pass {self.stage!r}: no matching site for "
                f"{self.transformation.__name__} in state {state.label!r}"
                + _describe_sites(state, sites)
            )
        for _, tx in chosen:
            tx.apply_checked(sdfg, state)
        return PassOutcome(
            stage=self.stage,
            description=self.description,
            transformation=self.transformation.__name__,
            applied=tuple(repr(tx) for _, tx in chosen),
            sites=tuple(site.to_dict() for site, _ in chosen),
        )

    # -- selection helpers -----------------------------------------------------
    def _unique(
        self,
        sites: List[Site],
        what: str,
        state: Optional[SDFGState] = None,
        candidates: Optional[List[Site]] = None,
    ) -> Site:
        """The single site matching the pass's configuration.

        On failure the error lists the candidate sites — the ones that
        matched the pass's filter when it is over-matched, the full
        ``match()`` enumeration when nothing matched — with node labels
        and scope chains, so search- and user-surfaced errors are
        actionable rather than a bare count.
        """
        if len(sites) != 1:
            shown = sites if sites else (candidates or [])
            raise PassError(
                f"pass {self.stage!r}: expected exactly one site {what}, "
                f"found {len(sites)}" + _describe_sites(state, shown)
            )
        return sites[0]

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.stage!r})"


class FissionPass(Pass):
    """Distribute the (unique) multi-tasklet map over its tasklets.

    ``scope`` optionally pins the pass to the map with that label —
    the autotuner uses this to address one of several fission sites.
    """

    transformation = MapFission

    def __init__(
        self,
        stage: str,
        description: str,
        reduce: Optional[Mapping[str, Sequence[str]]] = None,
        scope: Optional[str] = None,
    ):
        super().__init__(stage, description)
        self.reduce = {k: tuple(v) for k, v in (reduce or {}).items()}
        self.scope = scope

    def config(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "reduce": {k: list(v) for k, v in self.reduce.items()}
        }
        if self.scope is not None:
            out["scope"] = self.scope
        return out

    def select(self, sdfg, state, sites):
        hits = [
            s for s in sites if self.scope is None or s.scope == self.scope
        ]
        site = self._unique(hits, "to fission", state, sites)
        tx = MapFission(
            site.nodes[0], reduce={k: list(v) for k, v in self.reduce.items()}
        )
        return [(site, tx)]


class RedundancyPass(Pass):
    """Remove offset-only parameters from the producer of ``array``."""

    transformation = RedundantComputationRemoval

    def __init__(
        self, stage: str, description: str, array: str, params: Sequence[str]
    ):
        super().__init__(stage, description)
        self.array = array
        self.params = tuple(params)

    def config(self) -> Dict[str, Any]:
        return {"array": self.array, "params": list(self.params)}

    def select(self, sdfg, state, sites):
        hits = [
            s
            for s in sites
            if self.array in s.arrays and set(self.params) <= set(s.params)
        ]
        site = self._unique(hits, f"producing {self.array!r}", state, sites)
        return [
            (site, RedundantComputationRemoval(
                site.nodes[0], self.array, list(self.params)
            ))
        ]


class LayoutPass(Pass):
    """Permute the dimensions of the given arrays SDFG-wide."""

    transformation = DataLayoutTransformation

    def __init__(
        self,
        stage: str,
        description: str,
        perms: Mapping[str, Sequence[int]],
    ):
        super().__init__(stage, description)
        self._perms = {k: tuple(v) for k, v in perms.items()}

    @property
    def perms(self) -> Dict[str, Tuple[int, ...]]:
        return dict(self._perms)

    def config(self) -> Dict[str, Any]:
        return {"perms": {k: list(v) for k, v in self._perms.items()}}

    def select(self, sdfg, state, sites):
        matched = {a for s in sites for a in s.arrays}
        out = []
        for array, perm in self._perms.items():
            hits = [s for s in sites if array in s.arrays]
            if array not in matched or not hits:
                raise PassError(
                    f"pass {self.stage!r}: array {array!r} not referenced "
                    f"in state {state.label!r}"
                    + _describe_sites(state, sites)
                )
            out.append((hits[0], DataLayoutTransformation(array, perm)))
        return out


class BatchPass(Pass):
    """Swap the single-tasklet producer of ``array`` for a batched tasklet.

    ``tasklet`` is a prototype :class:`~repro.sdfg.nodes.Tasklet`; a fresh
    node is instantiated per application so the pass can be re-applied to
    independently built graphs.
    """

    transformation = BatchedOperationSubstitution

    def __init__(
        self,
        stage: str,
        description: str,
        array: str,
        batch_params: Sequence[str],
        tasklet: Tasklet,
        in_memlets: Mapping[str, Memlet],
        out_memlets: Mapping[str, Memlet],
    ):
        super().__init__(stage, description)
        self.array = array
        self.batch_params = tuple(batch_params)
        self.tasklet = tasklet
        self.in_memlets = dict(in_memlets)
        self.out_memlets = dict(out_memlets)

    def config(self) -> Dict[str, Any]:
        return {
            "array": self.array,
            "batch_params": list(self.batch_params),
            "tasklet": self.tasklet.label,
            "in_memlets": {k: repr(v) for k, v in self.in_memlets.items()},
            "out_memlets": {k: repr(v) for k, v in self.out_memlets.items()},
        }

    def select(self, sdfg, state, sites):
        hits = [
            s
            for s in sites
            if self.array in s.arrays
            and set(self.batch_params) <= set(s.params)
        ]
        site = self._unique(hits, f"writing {self.array!r}", state, sites)
        # Fresh node and memlet instances per application: the pass is a
        # reusable declaration, the graph owns what it attaches.
        proto = self.tasklet
        fresh = Tasklet(
            proto.label, proto.inputs, proto.outputs, proto.code,
            proto.flops, op=proto.op,
        )

        def clone(m: Memlet) -> Memlet:
            return Memlet(m.data, m.subset, accesses=m.accesses, wcr=m.wcr)

        tx = BatchedOperationSubstitution(
            site.nodes[0],
            list(self.batch_params),
            fresh,
            in_memlets={k: clone(m) for k, m in self.in_memlets.items()},
            out_memlets={k: clone(m) for k, m in self.out_memlets.items()},
        )
        return [(site, tx)]


class ExpandPass(Pass):
    """Hoist ``outer`` params out of every top-level map carrying them."""

    transformation = MapExpansion

    def __init__(self, stage: str, description: str, outer: Sequence[str]):
        super().__init__(stage, description)
        self.outer = tuple(outer)

    def config(self) -> Dict[str, Any]:
        return {"outer": list(self.outer)}

    def select(self, sdfg, state, sites):
        top = set(state.top_level_maps())
        out = []
        for site in sites:
            if site.nodes[0] not in top:
                continue
            if not set(self.outer) < set(site.params):
                continue  # must leave a non-empty inner map
            out.append(
                (site, MapExpansion(site.nodes[0], list(self.outer)))
            )
        return out


class FusePass(Pass):
    """Fuse the (unique) group of identically-ranged top-level scopes."""

    transformation = MapFusion

    def __init__(
        self,
        stage: str,
        description: str,
        label: str = "fused",
        params: Optional[Sequence[str]] = None,
    ):
        super().__init__(stage, description)
        self.label = label
        self.params = tuple(params) if params is not None else None

    def config(self) -> Dict[str, Any]:
        return {"label": self.label, "params": list(self.params or [])}

    def select(self, sdfg, state, sites):
        hits = [
            s
            for s in sites
            if self.params is None or s.params == self.params
        ]
        site = self._unique(hits, "of fusable scopes", state, sites)
        return [(site, MapFusion(list(site.nodes), label=self.label))]


class ShrinkPass(Pass):
    """Drop the ``params``-indexed dimensions of the given transients."""

    transformation = ArrayShrink

    def __init__(
        self,
        stage: str,
        description: str,
        arrays: Sequence[str],
        params: Sequence[str],
    ):
        super().__init__(stage, description)
        self.arrays = tuple(arrays)
        self.params = tuple(params)

    def config(self) -> Dict[str, Any]:
        return {"arrays": list(self.arrays), "params": list(self.params)}

    def select(self, sdfg, state, sites):
        out = []
        for array in self.arrays:
            hits = [s for s in sites if array in s.arrays]
            site = self._unique(hits, f"shrinking {array!r}", state, sites)
            keep = [
                (pos, p)
                for pos, p in zip(site.dims, site.params)
                if p in self.params
            ]
            if not keep:
                raise PassError(
                    f"pass {self.stage!r}: no shrinkable dims of {array!r} "
                    f"indexed by {self.params}"
                    + _describe_sites(state, sites)
                )
            dims = [pos for pos, _ in keep]
            params = [p for _, p in keep]
            out.append((site, ArrayShrink(array, dims, params)))
        return out


class TilePass(Pass):
    """Tile the (unique) map scope carrying all tiled parameters.

    ``scope`` optionally pins the pass to the map with that label —
    the autotuner uses this to address one of several tileable scopes.
    """

    transformation = MapTiling

    def __init__(
        self,
        stage: str,
        description: str,
        tile_sizes: Mapping[str, Any],
        divides_evenly: bool = True,
        scope: Optional[str] = None,
    ):
        super().__init__(stage, description)
        self.tile_sizes = dict(tile_sizes)
        self.divides_evenly = divides_evenly
        self.scope = scope

    def config(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "tile_sizes": {k: repr(v) for k, v in self.tile_sizes.items()},
            "divides_evenly": self.divides_evenly,
        }
        if self.scope is not None:
            out["scope"] = self.scope
        return out

    def select(self, sdfg, state, sites):
        hits = [
            s
            for s in sites
            if set(self.tile_sizes) <= set(s.params)
            and (self.scope is None or s.scope == self.scope)
        ]
        site = self._unique(hits, "to tile", state, sites)
        tx = MapTiling(
            site.nodes[0], self.tile_sizes, divides_evenly=self.divides_evenly
        )
        return [(site, tx)]
