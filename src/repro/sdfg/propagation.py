"""Memlet propagation through map scopes (paper §4.1).

Propagation pushes the data-access expressions of tasklet memlets outward
through map scopes: an inner access ``G[kz - qz, E - w, f]`` inside a map
over ``kz in [tkz*skz, (tkz+1)*skz)`` and ``qz in [tqz*sqz, (tqz+1)*sqz)``
becomes the outer range
``[tkz*skz - (tqz+1)*sqz + 1, (tkz+1)*skz - tqz*sqz)`` with
``skz + sqz - 1`` accesses — exactly the derivation in the paper's Fig. 7.

Irregular accesses (the neighbor indirection ``f(a, b)``) cannot be
propagated automatically; as in the paper, the performance engineer supplies
an :class:`IndirectionHook` with the over-approximation
``[max(0, ta*sa - NB/2), min(NA, (ta+1)*sa + NB/2))``.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Mapping, Optional, Sequence, Tuple

from .memlet import Memlet
from .nodes import Map
from .subsets import Range
from .symbolic import (
    Expr,
    IndirectAccess,
    Integer,
    Max,
    Min,
    NonAffineError,
    affine_coefficients,
    sympify,
)

__all__ = [
    "IndirectionHook",
    "neighbor_indirection_hook",
    "propagate_memlet",
    "propagate_through_maps",
]


class IndirectionHook:
    """Manual propagation rule for an indirection table (paper §4.1).

    ``bounds`` receives the map being propagated through and returns the
    over-approximated ``(begin, end)`` (inclusive) of the accessed range,
    plus the access-count multiplier contributed by the indirect dimension.
    """

    def __init__(
        self,
        table: str,
        bounds: Callable[[Map], Tuple[Expr, Expr, Expr]],
    ):
        self.table = table
        self.bounds = bounds


def neighbor_indirection_hook(NA, NB, atom_param: str = "a", sa=None) -> IndirectionHook:
    """The paper's approximation for ``f(a, b)`` = index of b-th neighbor of
    atom ``a``: atoms with neighboring indices are usually neighbors in the
    coupling matrix, so propagating over ``a in [ta*sa, (ta+1)*sa)`` and all
    ``NB`` neighbors covers ``[max(0, ta*sa - NB/2), min(NA, (ta+1)*sa + NB/2))``
    with ``sa * NB`` total accesses.
    """
    NA = sympify(NA)
    NB = sympify(NB)

    def bounds(m: Map):
        if atom_param in m.params:
            i = m.param_index(atom_param)
            b, e, _ = m.range[i]
            lo = Max.make(0, b - NB // 2)
            hi = Min.make(NA - 1, e + NB // 2)
            length = e - b + 1
        else:
            # Atom dimension not part of this map: full over-approximation.
            lo, hi, length = Integer(0), NA - 1, Integer(1)
        mult = length * NB if "b" in m.params else length
        return lo, hi, mult

    return IndirectionHook("__neigh__", bounds)


def _contains_indirection(expr: Expr) -> Optional[IndirectAccess]:
    if isinstance(expr, IndirectAccess):
        return expr
    for attr in ("args",):
        if hasattr(expr, attr):
            for a in getattr(expr, attr):
                found = _contains_indirection(a)
                if found is not None:
                    return found
    for attr in ("num", "den"):
        if hasattr(expr, attr):
            found = _contains_indirection(getattr(expr, attr))
            if found is not None:
                return found
    return None


def _coeff_sign(coeff: Expr, assume_positive: frozenset) -> Optional[int]:
    """Determine the sign of a symbolic coefficient, if possible."""
    v = coeff.maybe_int()
    if v is not None:
        return (v > 0) - (v < 0)
    # Tile-size and problem-size symbols are positive by construction, so
    # the sign is that of the integer prefactor of the product.
    if coeff.free_symbols and coeff.free_symbols <= assume_positive:
        from .symbolic import _split_coefficient

        c, _ = _split_coefficient(coeff)
        return (c > 0) - (c < 0)
    return None


def _propagate_expr(
    expr: Expr,
    m: Map,
    endpoint: str,
    assume_positive: frozenset,
) -> Expr:
    """Minimize (endpoint="begin") or maximize (endpoint="end") ``expr`` over
    the map's parameter box."""
    params = [p for p in m.params if p in expr.free_symbols]
    if not params:
        return expr
    try:
        coeffs, _ = affine_coefficients(expr, params)
    except NonAffineError:
        raise
    out = expr
    for p in params:
        i = m.param_index(p)
        b, e, _ = m.range[i]
        sign = _coeff_sign(coeffs.get(p, Integer(0)), assume_positive)
        if sign is None:
            lo = Min.make(out.subs({p: b}), out.subs({p: e}))
            hi = Max.make(out.subs({p: b}), out.subs({p: e}))
            out = lo if endpoint == "begin" else hi
            continue
        if endpoint == "begin":
            out = out.subs({p: b if sign > 0 else e})
        else:
            out = out.subs({p: e if sign > 0 else b})
    return out


def propagate_memlet(
    memlet: Memlet,
    m: Map,
    array_shape: Optional[Sequence] = None,
    hooks: Optional[Iterable[IndirectionHook]] = None,
    assume_positive: Optional[Iterable[str]] = None,
) -> Memlet:
    """Propagate a memlet outward through one map scope.

    Returns a new memlet whose subset covers every element the scope can
    access and whose ``accesses`` is the inner access count multiplied by
    the number of map iterations.  When ``array_shape`` is given, the subset
    is clamped to the array domain — yielding the paper's
    ``min(Nkz, skz + sqz - 1)`` unique-element counts.
    """
    hooks = {h.table: h for h in (hooks or [])}
    pos = frozenset(assume_positive or []) | _default_positive(memlet, m)

    new_dims = []
    access_mult: Expr = Integer(1)
    handled_params: set = set()
    for dim_i, (b, e, s) in enumerate(memlet.subset.dims):
        ind = _contains_indirection(b) or _contains_indirection(e)
        if ind is not None:
            hook = hooks.get(ind.table) or hooks.get("__neigh__")
            if hook is None:
                raise NonAffineError(
                    f"indirection {ind!r} requires an IndirectionHook"
                )
            lo, hi, mult = hook.bounds(m)
            new_dims.append((lo, hi, Integer(1)))
            handled_params |= b.free_symbols & set(m.params)
            continue
        used = (b.free_symbols | e.free_symbols) & set(m.params)
        if not used:
            new_dims.append((b, e, s))
            continue
        nb = _propagate_expr(b, m, "begin", pos)
        ne = _propagate_expr(e, m, "end", pos)
        new_dims.append((nb, ne, s))
        handled_params |= used

    new_subset = Range(new_dims)
    if array_shape is not None:
        new_subset = new_subset.clamp_to_shape(array_shape)
    total = memlet.accesses * m.range.num_elements()
    return Memlet(memlet.data, new_subset, accesses=total, wcr=memlet.wcr)


def _default_positive(memlet: Memlet, m: Map) -> frozenset:
    """All non-parameter free symbols are sizes/tiles, assumed positive."""
    syms = memlet.subset.free_symbols | m.range.free_symbols
    return frozenset(syms - set(m.params))


def propagate_through_maps(
    memlet: Memlet,
    maps: Sequence[Map],
    array_shape: Optional[Sequence] = None,
    hooks: Optional[Iterable[IndirectionHook]] = None,
) -> Memlet:
    """Propagate through nested maps, innermost first.

    The array clamp is applied only after the final scope so intermediate
    ranges stay exact (mirrors DaCe's outward propagation order).
    """
    out = memlet
    for i, m in enumerate(maps):
        shape = array_shape if i == len(maps) - 1 else None
        out = propagate_memlet(out, m, array_shape=shape, hooks=hooks)
    return out
