"""A compact data-centric (DaCe-style) intermediate representation.

This package reimplements the subset of the Stateful Dataflow multiGraph
(SDFG) model that the paper's optimization workflow relies on:

* symbolic expressions and multi-dimensional subsets,
* states, tasklets, map scopes and memlets with conflict resolution,
* a reference interpreter defining execution semantics,
* memlet propagation through (tiled) map scopes, and
* the graph transformations used in §4 of the paper.
"""

from .backends import (
    Backend,
    BackendError,
    SDFG_BACKENDS,
    StageRunner,
    default_backend,
    get_backend,
    register_backend,
)
from .graph import SDFG, ArrayDesc, InterstateEdge, InvalidSDFGError, SDFGState
from .interpreter import ExecutionReport, Interpreter, execute
from .memlet import Memlet
from .nodes import AccessNode, Map, MapEntry, MapExit, NestedSDFG, Tasklet
from .passes import (
    BatchPass,
    ExpandPass,
    FissionPass,
    FusePass,
    LayoutPass,
    Pass,
    PassError,
    PassOutcome,
    RedundancyPass,
    ShrinkPass,
    TilePass,
)
from .pipeline import (
    CompiledPipeline,
    Pipeline,
    PipelineReport,
    Stage,
    StageMovement,
    measure_movement,
)
from .propagation import (
    IndirectionHook,
    neighbor_indirection_hook,
    propagate_memlet,
    propagate_through_maps,
)
from .subsets import Indices, Range
from .transformations import Site
from .symbolic import (
    Add,
    Expr,
    FloorDiv,
    IndirectAccess,
    Integer,
    Max,
    Min,
    Mod,
    Mul,
    NonAffineError,
    Symbol,
    affine_coefficients,
    symbols,
    sympify,
)

__all__ = [
    "Backend",
    "BackendError",
    "SDFG_BACKENDS",
    "StageRunner",
    "default_backend",
    "get_backend",
    "register_backend",
    "SDFG",
    "ArrayDesc",
    "InterstateEdge",
    "InvalidSDFGError",
    "SDFGState",
    "ExecutionReport",
    "Interpreter",
    "execute",
    "Memlet",
    "AccessNode",
    "Map",
    "MapEntry",
    "MapExit",
    "NestedSDFG",
    "Tasklet",
    "Pass",
    "PassError",
    "PassOutcome",
    "FissionPass",
    "RedundancyPass",
    "LayoutPass",
    "BatchPass",
    "ExpandPass",
    "FusePass",
    "ShrinkPass",
    "TilePass",
    "Pipeline",
    "CompiledPipeline",
    "PipelineReport",
    "Stage",
    "StageMovement",
    "Site",
    "measure_movement",
    "IndirectionHook",
    "neighbor_indirection_hook",
    "propagate_memlet",
    "propagate_through_maps",
    "Indices",
    "Range",
    "Add",
    "Expr",
    "FloorDiv",
    "IndirectAccess",
    "Integer",
    "Max",
    "Min",
    "Mod",
    "Mul",
    "NonAffineError",
    "Symbol",
    "affine_coefficients",
    "symbols",
    "sympify",
]
