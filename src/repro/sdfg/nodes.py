"""SDFG node types: access nodes, tasklets, map scopes, nested SDFGs.

The dataflow model follows the paper's Fig. 3: *Data* nodes are array
containers, *Tasklets* are fine-grained computations, *Maps* are parametric
parallelism scopes delimited by entry/exit nodes, and *Memlets* (edges)
carry data-movement annotations.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .subsets import Range

__all__ = ["Node", "AccessNode", "Tasklet", "Map", "MapEntry", "MapExit", "NestedSDFG"]

_counter = itertools.count()


class Node:
    """Base class for SDFG state nodes (identity-hashable)."""

    __slots__ = ("label", "_uid")

    def __init__(self, label: str):
        self.label = label
        self._uid = next(_counter)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.label})"

    def __hash__(self) -> int:
        return self._uid

    def __eq__(self, other) -> bool:
        return self is other


class AccessNode(Node):
    """A read/write point for a named data container."""

    __slots__ = ("data",)

    def __init__(self, data: str):
        super().__init__(data)
        self.data = data


class Tasklet(Node):
    """A fine-grained computation.

    ``code`` is a Python callable receiving keyword arguments named after
    the input connectors and returning a dict keyed by output connectors.
    Inputs arrive as numpy views (point subsets squeezed to scalars/blocks);
    outputs are written back through the output memlets.

    ``op`` is an optional *declarative* description of what ``code``
    computes, consumed by code-generating execution backends
    (:mod:`repro.sdfg.backends.codegen`); the interpreter ignores it.
    Two forms are understood:

    * an einsum-style equation over the memlets' **slice** (non-point)
      dimensions, one subscript group per input connector in declaration
      order, e.g. ``"xy,yz->xz"`` for a block matmul or ``"xy,->xy"``
      for a scale-by-scalar — backends extend the equation with the
      enclosing map parameters to vectorize whole scopes;
    * the string ``"zero"`` for a no-input tasklet writing zeros.

    A tasklet without ``op`` is still executable by every backend; code
    generation simply falls back to a loop nest invoking ``code``.
    """

    __slots__ = ("inputs", "outputs", "code", "flops", "op")

    def __init__(
        self,
        label: str,
        inputs: Sequence[str],
        outputs: Sequence[str],
        code: Callable[..., Dict[str, object]],
        flops: Optional[Callable[..., int]] = None,
        op: Optional[str] = None,
    ):
        super().__init__(label)
        self.inputs = tuple(inputs)
        self.outputs = tuple(outputs)
        self.code = code
        # Optional flop-count model: callable(shapes dict) -> int
        self.flops = flops
        self.op = op

    def __call__(self, **kwargs):
        return self.code(**kwargs)


class Map:
    """A parametric parallel scope over a multi-dimensional index range."""

    __slots__ = ("label", "params", "range")

    def __init__(self, label: str, params: Sequence[str], rng: Range):
        if len(params) != len(rng):
            raise ValueError(
                f"map {label!r}: {len(params)} params but range rank {len(rng)}"
            )
        if len(set(params)) != len(params):
            raise ValueError(f"map {label!r}: duplicate parameters")
        self.label = label
        self.params = list(params)
        self.range = rng

    def param_index(self, name: str) -> int:
        return self.params.index(name)

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{p}={b!r}:{(e + 1)!r}" for p, (b, e, _) in zip(self.params, self.range)
        )
        return f"Map[{inner}]"


class MapEntry(Node):
    __slots__ = ("map",)

    def __init__(self, m: Map):
        super().__init__(f"{m.label}[entry]")
        self.map = m


class MapExit(Node):
    __slots__ = ("map",)

    def __init__(self, m: Map):
        super().__init__(f"{m.label}[exit]")
        self.map = m


class NestedSDFG(Node):
    """An SDFG embedded as a node, with array and symbol mappings.

    ``array_mapping`` maps inner array names to outer array names;
    ``symbol_mapping`` maps inner symbols to outer symbolic expressions.
    """

    __slots__ = ("sdfg", "array_mapping", "symbol_mapping")

    def __init__(
        self,
        label: str,
        sdfg,
        array_mapping: Dict[str, str],
        symbol_mapping: Optional[Dict[str, object]] = None,
    ):
        super().__init__(label)
        self.sdfg = sdfg
        self.array_mapping = dict(array_mapping)
        self.symbol_mapping = dict(symbol_mapping or {})


def make_map(label: str, spec: Dict[str, Tuple]) -> Tuple[MapEntry, MapExit]:
    """Create a paired entry/exit for ``Map`` from ``{param: (b, e[, s])}``."""
    m = Map(label, list(spec.keys()), Range(list(spec.values())))
    return MapEntry(m), MapExit(m)
