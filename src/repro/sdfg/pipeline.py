"""Pipeline: ordered passes with snapshots, movement accounting, compile.

The executable form of the paper's optimization workflow (§4):

* a :class:`Pipeline` is an ordered, declarative list of
  :class:`~repro.sdfg.passes.Pass` objects applied to a freshly built
  SDFG, snapshotting a :class:`Stage` after every pass;
* :func:`measure_movement` models the paper's §4.1 data-movement metric:
  every tasklet memlet is propagated outward through its enclosing map
  scopes (:func:`~repro.sdfg.propagation.propagate_through_maps`, the
  Fig. 7 derivation) and its access volume evaluated in bytes under
  concrete symbol bindings — :meth:`Pipeline.report` tabulates this per
  stage as a serializable :class:`PipelineReport`;
* :meth:`Pipeline.compile` lowers every stage through a pluggable
  execution backend (:mod:`repro.sdfg.backends`: ``numpy`` code
  generation by default, ``interpreter`` as the oracle; selectable via
  the ``backend`` argument or ``REPRO_SDFG_BACKEND``), verifies each
  stage against a reference kernel on concrete inputs, and yields a
  :class:`CompiledPipeline` — a callable executing the final (optimized)
  graph, with generated source attached for inspection.
"""

from __future__ import annotations

import copy
import json
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from ..telemetry.spans import trace
from .backends import StageRunner, get_backend
from .backends.common import written_arrays as _written_arrays
from .graph import SDFG
from .memlet import Memlet
from .nodes import Tasklet
from .passes import Pass, PassOutcome
from .propagation import IndirectionHook, propagate_through_maps
from .symbolic import Expr

__all__ = [
    "Stage",
    "StageMovement",
    "PipelineReport",
    "Pipeline",
    "CompiledPipeline",
    "measure_movement",
    "format_bytes",
    "run_stage",
    "verify_stage",
]


@dataclass
class Stage:
    """A snapshot of the SDFG after one pipeline pass.

    ``input_perms``/``output_perm`` record the physical-layout
    permutations accumulated by layout passes: callers permute the
    corresponding input arrays before interpretation and invert the
    output permutation afterwards (:func:`run_stage` does both).
    """

    name: str
    description: str
    sdfg: SDFG
    input_perms: Dict[str, Tuple[int, ...]] = field(default_factory=dict)
    output_perm: Optional[Tuple[int, ...]] = None
    #: transformations the producing pass applied (reprs; () for initial)
    applied: Tuple[str, ...] = ()

    def __repr__(self) -> str:
        return f"Stage({self.name}: {self.description})"


# -- data-movement accounting ---------------------------------------------------


def measure_movement(
    sdfg: SDFG,
    env: Mapping[str, int],
    hooks: Iterable[IndirectionHook] = (),
) -> Dict[str, int]:
    """Modeled bytes moved per array, summed over all tasklet memlets.

    Each memlet attached to a tasklet is propagated outward through the
    tasklet's enclosing map scopes (innermost first, the paper's Fig. 7
    derivation), multiplying its access count by every scope's iteration
    volume; the symbolic totals are then evaluated under ``env`` and
    scaled by the array element size.  Non-tasklet edges (the full-array
    memlets decorating scope boundaries) are not movement — they restate
    the same traffic one level out — and are skipped.
    """
    hooks = list(hooks)
    volumes: Dict[str, Expr] = {}
    for st in sdfg.states:
        chains: Dict[Tasklet, list] = {}
        for u, v, d in st.edges():
            mem: Optional[Memlet] = d.get("memlet")
            if mem is None:
                continue
            if isinstance(u, Tasklet):
                node = u
            elif isinstance(v, Tasklet):
                node = v
            else:
                continue
            if node not in chains:
                chains[node] = st.scope_chain(node)
            chain = chains[node]
            desc = sdfg.arrays[mem.data]
            if chain:
                prop = propagate_through_maps(
                    mem,
                    [e.map for e in chain],
                    array_shape=desc.shape,
                    hooks=hooks,
                )
            else:
                prop = mem
            prev = volumes.get(mem.data)
            volumes[mem.data] = (
                prop.accesses if prev is None else prev + prop.accesses
            )
    return {
        name: int(expr.evaluate(env)) * sdfg.arrays[name].dtype.itemsize
        for name, expr in volumes.items()
    }


@dataclass(frozen=True)
class StageMovement:
    """One pipeline stage's modeled data movement and transient footprint."""

    name: str
    description: str
    #: modeled bytes moved, per array
    per_array: Dict[str, int]
    #: total bytes of transient (scratch) storage the stage allocates —
    #: the metric array shrinking improves (§4.2 footprint reduction)
    transient_bytes: int = 0
    #: transformations the stage's pass applied
    applied: Tuple[str, ...] = ()

    @property
    def total_bytes(self) -> int:
        return sum(self.per_array.values())

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "description": self.description,
            "per_array": dict(self.per_array),
            "total_bytes": self.total_bytes,
            "transient_bytes": self.transient_bytes,
            "applied": list(self.applied),
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "StageMovement":
        return cls(
            name=d["name"],
            description=d["description"],
            per_array={k: int(v) for k, v in d["per_array"].items()},
            transient_bytes=int(d.get("transient_bytes", 0)),
            applied=tuple(d.get("applied", ())),
        )


@dataclass(frozen=True)
class PipelineReport:
    """Per-stage data-movement accounting of one pipeline, serializable."""

    pipeline: str
    dims: Dict[str, int]
    stages: Tuple[StageMovement, ...]

    def stage(self, name: str) -> StageMovement:
        for s in self.stages:
            if s.name == name:
                return s
        raise KeyError(f"no stage {name!r} in report")

    @property
    def total_reduction(self) -> float:
        """Bytes-moved ratio of the first stage over the last."""
        return self.stages[0].total_bytes / max(
            self.stages[-1].total_bytes, 1
        )

    def reduction_vs_previous(self, index: int) -> float:
        """Bytes-moved ratio of stage ``index - 1`` over stage ``index``
        (1.0 for the initial stage: nothing precedes it)."""
        if index == 0:
            return 1.0
        prev = self.stages[index - 1].total_bytes
        return prev / max(self.stages[index].total_bytes, 1)

    def to_dict(self) -> Dict[str, Any]:
        stages = []
        for i, s in enumerate(self.stages):
            d = s.to_dict()
            # Derived per-stage fields (recomputed by from_dict round
            # trips): the position in the pipeline — stage order is
            # meaningful and must survive serialization consumers that
            # re-sort — and the reduction relative to the previous stage.
            d["index"] = i
            d["reduction_vs_previous"] = self.reduction_vs_previous(i)
            stages.append(d)
        return {
            "pipeline": self.pipeline,
            "dims": dict(self.dims),
            "stages": stages,
            "total_reduction": self.total_reduction,
        }

    def to_json(self, **kwargs) -> str:
        return json.dumps(self.to_dict(), **kwargs)

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "PipelineReport":
        return cls(
            pipeline=d["pipeline"],
            dims={k: int(v) for k, v in d["dims"].items()},
            stages=tuple(StageMovement.from_dict(s) for s in d["stages"]),
        )

    @classmethod
    def from_json(cls, text: str) -> "PipelineReport":
        return cls.from_dict(json.loads(text))

    def describe(self) -> str:
        lines = [f"pipeline[{self.pipeline}] modeled data movement:"]
        first = self.stages[0].total_bytes
        for i, s in enumerate(self.stages):
            lines.append(
                f"  {i:2d} {s.name:8s} {format_bytes(s.total_bytes):>12s} "
                f"moved ({first / max(s.total_bytes, 1):6.1f}x less, "
                f"{self.reduction_vs_previous(i):6.1f}x vs prev), "
                f"{format_bytes(s.transient_bytes):>12s} scratch  "
                f"{s.description}"
            )
        return "\n".join(lines)


def _compose_perm(
    prev: Optional[Tuple[int, ...]], perm: Tuple[int, ...]
) -> Tuple[int, ...]:
    """Permutation applying ``prev`` then ``perm`` (new-from-old order)."""
    if prev is None:
        return tuple(perm)
    return tuple(prev[i] for i in perm)


def _transient_bytes(sdfg: SDFG, env: Mapping[str, int]) -> int:
    """Total allocated transient (scratch) storage under ``env``."""
    return sum(
        int(sdfg.arrays[name].total_size().evaluate(env))
        * sdfg.arrays[name].dtype.itemsize
        for name in sdfg.transients()
    )


def format_bytes(n: int) -> str:
    for unit in ("B", "KiB", "MiB", "GiB", "TiB", "PiB"):
        if abs(n) < 1024 or unit == "PiB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{n} B"
        n /= 1024
    return f"{n:.1f} PiB"


# -- stage execution -------------------------------------------------------------


def run_stage(
    stage: Stage,
    dims: Mapping[str, int],
    arrays: Mapping[str, np.ndarray],
    tables: Optional[Mapping[str, np.ndarray]] = None,
    backend: str = "interpreter",
):
    """Execute one stage; returns ``(output, executed)``.

    The output comes back in the *original* layout (inputs are permuted
    per the stage's accumulated layout transformations, the output
    permutation is inverted), and ``executed.report`` carries the
    :class:`~repro.sdfg.interpreter.ExecutionReport` — the interpreter
    instance itself for ``backend="interpreter"`` (the default here, for
    oracle runs), an analytic report for generated backends.
    """
    return get_backend(backend).compile_stage(stage)(dims, arrays, tables)


def verify_stage(
    stage: Stage,
    dims: Mapping[str, int],
    arrays: Mapping[str, np.ndarray],
    tables: Mapping[str, np.ndarray],
    reference: np.ndarray,
    rtol: float = 1e-10,
    atol: float = 1e-10,
    runner: Optional[StageRunner] = None,
) -> float:
    """Compare a stage against a reference result; returns the max error."""
    if runner is None:
        result, _ = run_stage(stage, dims, arrays, tables)
    else:
        result, _ = runner(dims, arrays, tables)
    err = float(np.max(np.abs(result - reference)))
    if not np.allclose(result, reference, rtol=rtol, atol=atol):
        raise AssertionError(
            f"stage {stage.name!r} deviates: max err {err:.3e}"
        )
    return err


# -- the pipeline ----------------------------------------------------------------


class Pipeline:
    """An ordered, declarative optimization recipe.

    Parameters
    ----------
    name:
        Pipeline identifier (used in reports).
    passes:
        The ordered :class:`~repro.sdfg.passes.Pass` list.
    graph_factory:
        Builds the initial SDFG the pipeline optimizes.
    initial:
        ``(stage_name, description)`` of the untransformed graph.
    hooks:
        :class:`~repro.sdfg.propagation.IndirectionHook` list (or factory
        returning one) for the movement model's irregular accesses.
    make_inputs:
        ``(dims, seed) -> (arrays, tables)`` factory of random concrete
        inputs, used by :meth:`compile` for stage verification.
    reference:
        ``(arrays, tables) -> ndarray`` ground-truth kernel the compiled
        pipeline is verified against.
    """

    def __init__(
        self,
        name: str,
        passes: Sequence[Pass],
        graph_factory: Callable[[], SDFG],
        initial: Tuple[str, str] = ("initial", "initial dataflow"),
        hooks: Any = (),
        make_inputs: Optional[Callable[..., tuple]] = None,
        reference: Optional[Callable[..., np.ndarray]] = None,
    ):
        self.name = name
        self.passes: Tuple[Pass, ...] = tuple(passes)
        self.graph_factory = graph_factory
        self.initial = (str(initial[0]), str(initial[1]))
        self._hooks = hooks
        self.make_inputs = make_inputs
        self.reference = reference
        self._cached_stages: Optional[List[Stage]] = None
        names = [self.initial[0]] + [p.stage for p in self.passes]
        if len(set(names)) != len(names):
            raise ValueError(f"pipeline {name!r}: duplicate stage names")

    # -- declarative surface ---------------------------------------------------
    @property
    def summary(self) -> Tuple[Tuple[str, str], ...]:
        """(stage, description) table, initial stage included — the
        single source for ``RECIPE_SUMMARY``-style listings."""
        return (self.initial,) + tuple(
            (p.stage, p.description) for p in self.passes
        )

    @property
    def stage_names(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self.summary)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "initial": {
                "stage": self.initial[0],
                "description": self.initial[1],
            },
            "passes": [p.to_dict() for p in self.passes],
        }

    def hooks(self) -> List[IndirectionHook]:
        h = self._hooks() if callable(self._hooks) else self._hooks
        return list(h)

    # -- application -----------------------------------------------------------
    def apply(self, sdfg: SDFG) -> Tuple[List[Stage], List[PassOutcome]]:
        """Run every pass on ``sdfg`` in place, snapshotting per stage."""
        if len(sdfg.states) != 1:
            raise ValueError(
                f"pipeline {self.name!r}: passes transform a single-state "
                f"SDFG; got {len(sdfg.states)} states"
            )
        input_perms: Dict[str, Tuple[int, ...]] = {}
        output_perm: Optional[Tuple[int, ...]] = None
        stages = [
            Stage(self.initial[0], self.initial[1], copy.deepcopy(sdfg))
        ]
        outcomes: List[PassOutcome] = []
        for p in self.passes:
            state = sdfg.states[0]
            outcome = p.run(sdfg, state)
            outcomes.append(outcome)
            if p.perms:
                written = set(_written_arrays(sdfg))
                for array, perm in p.perms.items():
                    desc = sdfg.arrays[array]
                    if desc.transient:
                        continue  # interior layout: no caller-visible effect
                    if array in written:
                        output_perm = _compose_perm(output_perm, perm)
                    else:
                        input_perms[array] = _compose_perm(
                            input_perms.get(array), perm
                        )
            stages.append(
                Stage(
                    p.stage,
                    p.description,
                    copy.deepcopy(sdfg),
                    dict(input_perms),
                    output_perm,
                    applied=outcome.applied,
                )
            )
        return stages, outcomes

    def build(self) -> List[Stage]:
        """Build a fresh graph and apply the full pipeline to it."""
        return self.apply(self.graph_factory())[0]

    def stages(self) -> List[Stage]:
        """Cached stage snapshots (build once, reuse for reports)."""
        if self._cached_stages is None:
            self._cached_stages = self.build()
        return self._cached_stages

    # -- analysis ----------------------------------------------------------------
    def required_symbols(
        self, stages: Optional[Sequence[Stage]] = None
    ) -> Tuple[str, ...]:
        """Symbol names :meth:`report` needs bound in its ``dims``:
        the union of every stage graph's declared SDFG symbols."""
        stages = self.stages() if stages is None else stages
        out: Dict[str, None] = {}
        for s in stages:
            out.update(s.sdfg.symbols)
        return tuple(out)

    def report(
        self,
        dims: Mapping[str, int],
        stages: Optional[Sequence[Stage]] = None,
    ) -> PipelineReport:
        """Per-stage modeled data movement at the given dimensions.

        ``dims`` must bind every symbol of :meth:`required_symbols`
        (for the SSE recipe: ``Nkz NE Nqz Nw N3D NA NB Norb``); missing
        bindings raise a :class:`ValueError` naming them up front
        instead of surfacing as a ``KeyError`` deep in the volume
        evaluation.  :meth:`CompiledPipeline.report` accepts the same
        spellings.
        """
        stages = self.stages() if stages is None else stages
        missing = [s for s in self.required_symbols(stages) if s not in dims]
        if missing:
            raise ValueError(
                f"pipeline {self.name!r}: report dims missing symbol "
                f"bindings {missing}; required: "
                f"{list(self.required_symbols(stages))}"
            )
        hooks = self.hooks()
        movements = tuple(
            StageMovement(
                name=s.name,
                description=s.description,
                per_array=measure_movement(s.sdfg, dims, hooks),
                transient_bytes=_transient_bytes(s.sdfg, dims),
                applied=s.applied,
            )
            for s in stages
        )
        return PipelineReport(
            pipeline=self.name, dims=dict(dims), stages=movements
        )

    # -- compilation -------------------------------------------------------------
    def compile(
        self,
        verify_dims: Optional[Mapping[str, int]] = None,
        seed: int = 0,
        rtol: float = 1e-10,
        atol: float = 1e-10,
        backend: Optional[str] = None,
    ) -> "CompiledPipeline":
        """Lower every stage through an execution backend and wrap the
        final stage as a callable.

        ``backend`` names a registered execution backend
        (:data:`repro.sdfg.backends.SDFG_BACKENDS`: ``"numpy"`` generates
        vectorized source, ``"interpreter"`` wraps the reference
        interpreter); ``None`` defers to
        :func:`repro.sdfg.backends.default_backend` — the
        ``REPRO_SDFG_BACKEND`` environment variable, or ``numpy``.
        Unknown names raise a
        :class:`~repro.sdfg.backends.BackendError`.

        With ``verify_dims``, every stage (initial included) is executed
        *through the selected backend* on random inputs of those
        dimensions and checked against the pipeline's ``reference``
        kernel to the given tolerances, recording per-stage max errors.

        The compiled pipeline shares the cached stage snapshots
        (execution never mutates the graphs); use :meth:`build` for
        snapshots you intend to modify.
        """
        be = get_backend(backend)
        with trace(
            "pipeline.compile", pipeline=self.name, backend=be.name,
            verify=verify_dims is not None,
        ):
            stages = self.stages()
            runners = {s.name: be.compile_stage(s) for s in stages}
            verification: Optional[Dict[str, float]] = None
            if verify_dims is not None:
                if self.make_inputs is None or self.reference is None:
                    raise ValueError(
                        f"pipeline {self.name!r}: verification requires "
                        "make_inputs and reference"
                    )
                arrays, tables = self.make_inputs(dict(verify_dims), seed=seed)
                ref = self.reference(arrays, tables)
                verification = {}
                for s in stages:
                    with trace("pipeline.verify_stage", stage=s.name):
                        verification[s.name] = verify_stage(
                            s, dict(verify_dims), arrays, tables, ref,
                            rtol=rtol, atol=atol, runner=runners[s.name],
                        )
        return CompiledPipeline(self, stages, verification, be.name, runners)


class CompiledPipeline:
    """The executable product of :meth:`Pipeline.compile`.

    Calling it runs the *final* (fully optimized) stage through the
    backend the pipeline was compiled with; individual stages remain
    addressable for ablations.  For code-generating backends the lowered
    Python source is attached (:attr:`source`, :meth:`save_code`).
    """

    def __init__(
        self,
        pipeline: Pipeline,
        stages: Sequence[Stage],
        verification: Optional[Dict[str, float]] = None,
        backend: str = "interpreter",
        runners: Optional[Dict[str, StageRunner]] = None,
    ):
        self.pipeline = pipeline
        self.stages = list(stages)
        self.by_name = {s.name: s for s in self.stages}
        #: per-stage max error vs the reference kernel (None: not verified)
        self.verification = verification
        #: name of the execution backend every stage was lowered with
        self.backend = backend
        if runners is None:
            be = get_backend(backend)
            runners = {s.name: be.compile_stage(s) for s in self.stages}
        self.runners = runners

    @property
    def final(self) -> Stage:
        return self.stages[-1]

    @property
    def verified(self) -> bool:
        return self.verification is not None

    @property
    def source(self) -> Optional[str]:
        """Generated Python source of the final (optimized) stage, or
        ``None`` for backends that interpret the graph directly."""
        return self.runners[self.final.name].source

    def save_code(self, path, stage: Optional[str] = None) -> str:
        """Write a stage's generated source to ``path`` (default: final
        stage); returns the text.  Raises for source-less backends."""
        name = stage or self.final.name
        text = self.runners[name].source
        if text is None:
            raise ValueError(
                f"backend {self.backend!r} generates no source to save"
            )
        from pathlib import Path

        Path(path).write_text(text)
        return text

    def __call__(
        self,
        dims: Mapping[str, int],
        arrays: Mapping[str, np.ndarray],
        tables: Optional[Mapping[str, np.ndarray]] = None,
    ) -> np.ndarray:
        result, _ = self.runners[self.final.name](dims, arrays, tables)
        return result

    def run_stage(
        self,
        name: str,
        dims: Mapping[str, int],
        arrays: Mapping[str, np.ndarray],
        tables: Optional[Mapping[str, np.ndarray]] = None,
    ):
        """Execute one stage; returns ``(output, executed)`` where
        ``executed.report`` is the stage's execution statistics."""
        return self.runners[name](dims, arrays, tables)

    def report(self, dims: Mapping[str, int]) -> PipelineReport:
        """Modeled data movement; same ``dims`` contract as
        :meth:`Pipeline.report` (all stage symbols must be bound)."""
        return self.pipeline.report(dims, stages=self.stages)

    def __repr__(self) -> str:
        v = "verified" if self.verified else "unverified"
        return (
            f"CompiledPipeline({self.pipeline.name}, "
            f"{len(self.stages)} stages, backend={self.backend}, {v})"
        )
