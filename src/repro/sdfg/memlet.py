"""Memlets: explicit units of data movement between SDFG nodes.

A memlet names the data container it moves, the subset of that container,
the (symbolic) number of accesses it performs, and an optional
write-conflict resolution (``wcr``) such as ``"sum"`` for the ``CR: Sum``
accumulations in the paper's figures.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from .subsets import Range
from .symbolic import Expr, ExprLike, sympify

__all__ = ["Memlet"]

_WCR_FUNCS = {
    "sum": lambda old, new: old + new,
    "max": lambda old, new: __import__("numpy").maximum(old, new),
    "min": lambda old, new: __import__("numpy").minimum(old, new),
}


class Memlet:
    """Data movement descriptor attached to an SDFG edge.

    Parameters
    ----------
    data:
        Name of the array container being accessed.
    subset:
        The accessed :class:`~repro.sdfg.subsets.Range` of that container.
    accesses:
        Symbolic number of elements moved.  Defaults to the subset volume;
        propagation may set it to a larger value than the number of *unique*
        elements (e.g. ``skz + sqz - 1`` accesses over a ``Min(Nkz, ...)``
        long range, §4.1).
    wcr:
        Optional write-conflict resolution: ``"sum"``, ``"min"`` or
        ``"max"``.  Writes through a wcr memlet combine with existing data.
    """

    __slots__ = ("data", "subset", "accesses", "wcr")

    def __init__(
        self,
        data: str,
        subset: Range,
        accesses: Optional[ExprLike] = None,
        wcr: Optional[str] = None,
    ):
        if not isinstance(subset, Range):
            subset = Range(subset)
        if wcr is not None and wcr not in _WCR_FUNCS:
            raise ValueError(f"unknown write-conflict resolution {wcr!r}")
        self.data = data
        self.subset = subset
        self.accesses: Expr = (
            subset.num_elements() if accesses is None else sympify(accesses)
        )
        self.wcr = wcr

    # -- helpers -----------------------------------------------------------
    @staticmethod
    def simple(data: str, *indices: ExprLike, wcr: Optional[str] = None) -> "Memlet":
        """Point memlet at the given indices: ``Memlet.simple("A", i, j)``."""
        return Memlet(data, Range.from_indices(indices), wcr=wcr)

    @staticmethod
    def full(data: str, shape: Sequence[ExprLike], wcr: Optional[str] = None) -> "Memlet":
        """Memlet covering an entire array of the given shape."""
        return Memlet(data, Range.from_shape(shape), wcr=wcr)

    def subs(self, mapping: Mapping[str, ExprLike]) -> "Memlet":
        return Memlet(
            self.data,
            self.subset.subs(mapping),
            accesses=self.accesses.subs(mapping),
            wcr=self.wcr,
        )

    def wcr_function(self):
        return _WCR_FUNCS[self.wcr] if self.wcr else None

    @property
    def free_symbols(self) -> frozenset:
        return self.subset.free_symbols | self.accesses.free_symbols

    def volume_bytes(self, env: Mapping[str, int], itemsize: int) -> int:
        """Concrete moved-data volume in bytes under symbol bindings."""
        return self.accesses.evaluate(env) * itemsize

    def __repr__(self) -> str:
        wcr = f" (CR: {self.wcr.capitalize()})" if self.wcr else ""
        return f"{self.data}{self.subset!r}{wcr}"
