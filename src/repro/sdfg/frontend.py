"""A restricted Python frontend for SDFGs (the paper's Fig. 5 interface).

The domain scientist writes numpy-style code with an explicit parallel
iteration space; the ``@program`` decorator parses a *restricted* subset of
Python into an SDFG:

.. code-block:: python

    Nkz, NE, NA, Norb = symbols("Nkz NE NA Norb")

    @program
    def outer_product(
        x: Annot((NA,)), y: Annot((Norb,)), out: Annot((NA, Norb))
    ):
        for a, o in pmap[0:NA, 0:Norb]:
            out[a, o] = x[a] * y[o]

Supported statements inside a ``pmap`` loop:

* assignments whose right-hand side combines subscripted reads with the
  operators ``+ - * @``,
* augmented assignment ``+=`` (lowered to a ``CR: Sum`` memlet),
* index expressions that are affine in map parameters and symbols.

This is intentionally a fraction of DaCe's Python frontend — enough to
express the paper's kernels and to demonstrate that the IR of this package
can be targeted from readable scientific Python.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from .graph import SDFG
from .memlet import Memlet
from .nodes import Map, MapEntry, MapExit, Tasklet
from .subsets import Range
from .symbolic import Expr, Integer, Symbol, sympify

__all__ = ["Annot", "pmap", "program", "FrontendError"]


class FrontendError(ValueError):
    """Raised when the function uses unsupported constructs."""


class Annot:
    """Array type annotation: ``Annot((M, N))`` or ``Annot((M,), np.float64)``."""

    def __init__(self, shape: Sequence, dtype=np.complex128):
        self.shape = tuple(sympify(s) for s in shape)
        self.dtype = np.dtype(dtype)


class _PMap:
    """Marker object: ``for i, j in pmap[0:M, 0:N]`` declares a map scope."""

    def __getitem__(self, item):  # pragma: no cover - parsed, never run
        raise RuntimeError("pmap is a declaration, not an executable iterator")


pmap = _PMap()


def program(func: Callable) -> SDFG:
    """Parse a restricted Python function into an SDFG."""
    hints = func.__annotations__
    source = textwrap.dedent(inspect.getsource(func))
    tree = ast.parse(source)
    fdef = tree.body[0]
    if not isinstance(fdef, ast.FunctionDef):
        raise FrontendError("@program expects a plain function")

    sd = SDFG(func.__name__)
    closure = _closure_symbols(func)
    for arg in fdef.args.args:
        ann = hints.get(arg.arg)
        if not isinstance(ann, Annot):
            raise FrontendError(
                f"argument {arg.arg!r} needs an Annot(shape) annotation"
            )
        sd.add_array(arg.arg, ann.shape, ann.dtype)
        for s in ann.shape:
            for name in s.free_symbols:
                sd.add_symbol(name)

    state = sd.add_state("main", is_start=True)
    for i, stmt in enumerate(fdef.body):
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring
        if not isinstance(stmt, ast.For):
            raise FrontendError("the function body must be pmap for-loops")
        _lower_map(sd, state, stmt, closure, label=f"{func.__name__}_{i}")
    sd.validate()
    return sd


def _closure_symbols(func: Callable) -> Dict[str, Expr]:
    out: Dict[str, Expr] = {}
    if func.__closure__:
        for name, cell in zip(func.__code__.co_freevars, func.__closure__):
            if isinstance(cell.cell_contents, Expr):
                out[name] = cell.cell_contents
    for name, val in func.__globals__.items():
        if isinstance(val, Expr):
            out.setdefault(name, val)
    return out


def _lower_map(sd: SDFG, state, node: ast.For, closure, label: str):
    # -- header: for i, j in pmap[a:b, c:d] --------------------------------
    it = node.iter
    if not (
        isinstance(it, ast.Subscript)
        and isinstance(it.value, ast.Name)
        and it.value.id == "pmap"
    ):
        raise FrontendError("loops must iterate over pmap[...]")
    if isinstance(node.target, ast.Tuple):
        params = [t.id for t in node.target.elts]
    else:
        params = [node.target.id]
    dims = _parse_slices(it.slice, params, closure)
    if len(dims) != len(params):
        raise FrontendError("loop targets must match the pmap rank")
    m = Map(label, params, Range(dims))
    entry, exit_node = MapEntry(m), MapExit(m)

    param_syms = {p: Symbol(p) for p in params}
    env = dict(closure)
    env.update(param_syms)

    read_arrays: Dict[str, None] = {}
    written: List[Tuple[str, Memlet]] = []

    # -- body: single assignment / augmented assignment ----------------------
    if len(node.body) != 1:
        raise FrontendError("pmap bodies must contain exactly one statement")
    stmt = node.body[0]
    if isinstance(stmt, ast.AugAssign):
        if not isinstance(stmt.op, ast.Add):
            raise FrontendError("only += accumulation is supported")
        target, value, wcr = stmt.target, stmt.value, "sum"
    elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
        target, value, wcr = stmt.targets[0], stmt.value, None
    else:
        raise FrontendError("unsupported statement inside pmap")
    if not isinstance(target, ast.Subscript):
        raise FrontendError("assignment target must be an array subscript")

    reads: List[Tuple[str, Memlet]] = []
    expr_code = _lower_expr(value, sd, env, reads)
    out_name, out_memlet = _subscript_memlet(target, sd, env, wcr)

    conns = [f"__in{i}" for i in range(len(reads))]
    namespace = {"np": np}
    fn_src = "def _tasklet({}):\n    return {{'__out': {}}}".format(
        ", ".join(conns), expr_code
    )
    exec(fn_src, namespace)  # noqa: S102 - generated from a parsed AST only
    tasklet = Tasklet(f"{label}_t", conns, ["__out"], namespace["_tasklet"])

    for name, _ in reads:
        read_arrays.setdefault(name)
    for name in read_arrays:
        state.add_edge(
            state.add_access(name), entry, Memlet.full(name, sd.arrays[name].shape)
        )
    if not read_arrays:
        state.add_edge(state.add_access(out_name), entry, None)
    for conn, (name, mem) in zip(conns, reads):
        state.add_edge(entry, tasklet, mem, dst_conn=conn)
    state.add_edge(tasklet, exit_node, out_memlet, src_conn="__out")
    state.add_edge(
        exit_node,
        state.add_access(out_name),
        Memlet.full(out_name, sd.arrays[out_name].shape, wcr=wcr),
    )


def _parse_slices(node, params, closure) -> List[Tuple[Expr, Expr, Expr]]:
    items = node.elts if isinstance(node, ast.Tuple) else [node]
    dims = []
    for s in items:
        if not isinstance(s, ast.Slice) or s.step is not None:
            raise FrontendError("pmap dimensions must be start:stop slices")
        lo = _const_expr(s.lower, closure)
        hi = _const_expr(s.upper, closure)
        dims.append((lo, hi - 1, Integer(1)))
    return dims


def _const_expr(node, env) -> Expr:
    """Evaluate an index/bound expression to a symbolic Expr."""
    if node is None:
        return Integer(0)
    if isinstance(node, ast.Constant):
        return sympify(int(node.value))
    if isinstance(node, ast.Name):
        if node.id in env:
            return sympify(env[node.id])
        return Symbol(node.id)
    if isinstance(node, ast.BinOp):
        lhs, rhs = _const_expr(node.left, env), _const_expr(node.right, env)
        if isinstance(node.op, ast.Add):
            return lhs + rhs
        if isinstance(node.op, ast.Sub):
            return lhs - rhs
        if isinstance(node.op, ast.Mult):
            return lhs * rhs
        if isinstance(node.op, ast.FloorDiv):
            return lhs // rhs
        if isinstance(node.op, ast.Mod):
            return lhs % rhs
        raise FrontendError(f"unsupported index operator {ast.dump(node.op)}")
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        return -_const_expr(node.operand, env)
    raise FrontendError(f"unsupported index expression: {ast.dump(node)}")


def _subscript_memlet(node: ast.Subscript, sd: SDFG, env, wcr) -> Tuple[str, Memlet]:
    if not isinstance(node.value, ast.Name):
        raise FrontendError("subscripts must target named arrays")
    name = node.value.id
    if name not in sd.arrays:
        raise FrontendError(f"unknown array {name!r}")
    idx = node.slice.elts if isinstance(node.slice, ast.Tuple) else [node.slice]
    exprs = [_const_expr(i, env) for i in idx]
    desc = sd.arrays[name]
    if len(exprs) > desc.rank:
        raise FrontendError(f"too many indices for {name!r}")
    # Trailing unsubscripted dimensions stay full (block accesses).
    dims: List = [(e, e, Integer(1)) for e in exprs]
    for s in desc.shape[len(exprs):]:
        dims.append((Integer(0), s - 1, Integer(1)))
    return name, Memlet(name, Range(dims), wcr=wcr)


def _lower_expr(node, sd: SDFG, env, reads: List[Tuple[str, Memlet]]) -> str:
    """Lower an expression AST to tasklet code, collecting read memlets."""
    if isinstance(node, ast.Subscript):
        name, mem = _subscript_memlet(node, sd, env, None)
        reads.append((name, mem))
        return f"__in{len(reads) - 1}"
    if isinstance(node, ast.Name):
        # whole-array read
        name = node.id
        if name not in sd.arrays:
            raise FrontendError(f"unknown array {name!r}")
        mem = Memlet.full(name, sd.arrays[name].shape)
        reads.append((name, mem))
        return f"__in{len(reads) - 1}"
    if isinstance(node, ast.Constant):
        return repr(node.value)
    if isinstance(node, ast.BinOp):
        lhs = _lower_expr(node.left, sd, env, reads)
        rhs = _lower_expr(node.right, sd, env, reads)
        ops = {
            ast.Add: "+",
            ast.Sub: "-",
            ast.Mult: "*",
            ast.MatMult: "@",
            ast.Div: "/",
        }
        for t, sym in ops.items():
            if isinstance(node.op, t):
                return f"({lhs} {sym} {rhs})"
        raise FrontendError(f"unsupported operator {ast.dump(node.op)}")
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        return f"(-{_lower_expr(node.operand, sd, env, reads)})"
    raise FrontendError(f"unsupported expression: {ast.dump(node)}")
