"""Reference interpreter for SDFGs.

Executes an SDFG on numpy arrays with sequential-loop semantics: maps expand
to nested loops over their (evaluated) index ranges, tasklets run their
Python code on views selected by the incoming memlets, and writes through
``wcr`` memlets combine with the existing array contents (``CR: Sum``).

This interpreter defines the *semantics* that every graph transformation
must preserve — the equivalence tests in ``tests/test_recipe.py`` execute
the SSE SDFG after each transformation step and compare results against the
untransformed graph.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Mapping, Optional

import numpy as np

from .graph import SDFG, InterstateEdge, SDFGState
from .memlet import Memlet
from .nodes import AccessNode, MapEntry, MapExit, NestedSDFG, Node, Tasklet

__all__ = ["Interpreter", "ExecutionReport", "execute"]

_MAX_STATE_TRANSITIONS = 100_000


class ExecutionReport:
    """Statistics gathered during interpretation."""

    __slots__ = ("tasklet_invocations", "flops", "element_reads", "element_writes")

    def __init__(self):
        self.tasklet_invocations = 0
        self.flops = 0
        self.element_reads = 0
        self.element_writes = 0

    def __repr__(self) -> str:
        return (
            f"ExecutionReport(tasklets={self.tasklet_invocations}, "
            f"flops={self.flops}, reads={self.element_reads}, "
            f"writes={self.element_writes})"
        )


class Interpreter:
    """Executes an :class:`~repro.sdfg.graph.SDFG` on concrete data."""

    def __init__(self, sdfg: SDFG):
        self.sdfg = sdfg
        self.report = ExecutionReport()

    # -- public API ----------------------------------------------------------
    def run(
        self,
        symbols: Mapping[str, int],
        arrays: Mapping[str, np.ndarray],
        tables: Optional[Mapping[str, np.ndarray]] = None,
        zero_transients: bool = True,
    ) -> Dict[str, np.ndarray]:
        """Execute and return the full array store (inputs + transients)."""
        env: Dict[str, object] = dict(symbols)
        env["__tables__"] = dict(tables or {})
        store: Dict[str, np.ndarray] = {}
        for name, desc in self.sdfg.arrays.items():
            if name in arrays:
                store[name] = np.asarray(arrays[name])
                continue
            shape = desc.evaluate_shape(env)
            if desc.transient or zero_transients:
                store[name] = np.zeros(shape, dtype=desc.dtype)
            else:
                raise KeyError(f"missing non-transient input array {name!r}")

        state = self.sdfg.start_state
        transitions = 0
        ctx: Dict[str, object] = dict(env)
        while state is not None:
            self._run_state(state, env, store)
            transitions += 1
            if transitions > _MAX_STATE_TRANSITIONS:
                raise RuntimeError("state machine exceeded transition limit")
            nxt = None
            for dst, edge in self.sdfg.out_edges_of(state):
                ctx["__arrays__"] = store
                if edge.taken(ctx):
                    for sym, fn in edge.assignments.items():
                        ctx[sym] = fn(ctx)
                        env[sym] = ctx[sym]
                    nxt = dst
                    break
            state = nxt
        return store

    # -- state / scope execution -------------------------------------------
    def _run_state(self, state: SDFGState, env: Dict, store: Dict):
        interior: set = set()
        for entry in state.top_level_maps():
            interior.update(state.scope_children(entry))
            interior.add(state.exit_node(entry))
        for node in state.topological_nodes():
            if node in interior:
                continue
            self._run_node(state, node, env, store)

    def _run_node(self, state: SDFGState, node: Node, env: Dict, store: Dict):
        if isinstance(node, AccessNode):
            return
        if isinstance(node, Tasklet):
            self._run_tasklet(state, node, env, store)
        elif isinstance(node, MapEntry):
            self._run_scope(state, node, env, store)
        elif isinstance(node, MapExit):
            return
        elif isinstance(node, NestedSDFG):
            self._run_nested(node, env, store)
        else:
            raise TypeError(f"cannot interpret node {node!r}")

    def _run_scope(self, state: SDFGState, entry: MapEntry, env: Dict, store: Dict):
        m = entry.map
        ranges = m.range.evaluate(env)
        interior = state.scope_children(entry)
        interior_set = set(interior)
        # Nested scopes are executed by their own entries.
        nested_interior: set = set()
        for n in interior:
            if isinstance(n, MapEntry):
                nested_interior.update(state.scope_children(n))
        order = [
            n
            for n in state.topological_nodes()
            if n in interior_set and n not in nested_interior
        ]
        iter_spaces = [
            range(b, e + 1, s) if s > 0 else range(b, e - 1, s)
            for (b, e, s) in ranges
        ]
        local_env = dict(env)
        for combo in itertools.product(*iter_spaces):
            for p, v in zip(m.params, combo):
                local_env[p] = v
            for node in order:
                self._run_node(state, node, local_env, store)

    def _run_nested(self, node: NestedSDFG, env: Dict, store: Dict):
        inner_syms = {
            k: (v.evaluate(env) if hasattr(v, "evaluate") else env.get(v, v))
            for k, v in node.symbol_mapping.items()
        }
        # Pass through all outer symbols too (cheap and convenient).
        merged = {k: v for k, v in env.items() if isinstance(v, int)}
        merged.update(inner_syms)
        inner_arrays = {
            inner: store[outer] for inner, outer in node.array_mapping.items()
        }
        sub = Interpreter(node.sdfg)
        result = sub.run(merged, inner_arrays, tables=env.get("__tables__"))
        self.report.flops += sub.report.flops
        self.report.tasklet_invocations += sub.report.tasklet_invocations
        for inner, outer in node.array_mapping.items():
            store[outer] = result[inner]

    # -- tasklet execution ----------------------------------------------------
    def _run_tasklet(self, state: SDFGState, node: Tasklet, env: Dict, store: Dict):
        inputs: Dict[str, object] = {}
        for u, _, d in state.in_edges(node):
            mem: Optional[Memlet] = d.get("memlet")
            conn = d.get("dst_conn")
            if mem is None or conn is None:
                continue
            inputs[conn] = self._read(mem, env, store)
        missing = [c for c in node.inputs if c not in inputs]
        if missing:
            raise RuntimeError(
                f"tasklet {node.label!r}: unbound input connectors {missing}"
            )
        outputs = node.code(**inputs)
        if outputs is None:
            outputs = {}
        if node.flops is not None:
            self.report.flops += int(node.flops(**inputs))
        self.report.tasklet_invocations += 1
        for _, v, d in state.out_edges(node):
            mem = d.get("memlet")
            conn = d.get("src_conn")
            if mem is None or conn is None:
                continue
            if conn not in outputs:
                raise RuntimeError(
                    f"tasklet {node.label!r} did not produce output {conn!r}"
                )
            self._write(mem, env, store, outputs[conn])

    def _read(self, mem: Memlet, env: Dict, store: Dict):
        arr = store[mem.data]
        slices = mem.subset.to_slices(env)
        view = arr[slices]
        squeeze_axes = mem.subset.degenerate_axes(env)
        # Squeeze only symbolically-degenerate (point) dimensions.
        sym_points = tuple(
            i for i, (b, e, _) in enumerate(mem.subset.dims) if b == e
        )
        axes = tuple(i for i in squeeze_axes if i in sym_points)
        if axes:
            view = np.squeeze(view, axis=axes)
        self.report.element_reads += view.size if hasattr(view, "size") else 1
        if isinstance(view, np.ndarray) and view.ndim == 0:
            return view[()]
        if isinstance(view, np.ndarray):
            view = view.view()
            view.flags.writeable = False
        return view

    def _write(self, mem: Memlet, env: Dict, store: Dict, value):
        arr = store[mem.data]
        slices = mem.subset.to_slices(env)
        target_shape = arr[slices].shape
        value = np.asarray(value)
        sym_points = tuple(
            i for i, (b, e, _) in enumerate(mem.subset.dims) if b == e
        )
        if sym_points and value.ndim < len(target_shape):
            # Re-insert squeezed point dimensions for broadcasting.
            value = np.expand_dims(value, axis=sym_points)
        self.report.element_writes += int(np.prod(target_shape)) if target_shape else 1
        if mem.wcr is None:
            arr[slices] = value
        else:
            arr[slices] = mem.wcr_function()(arr[slices], value)


def execute(
    sdfg: SDFG,
    symbols: Mapping[str, int],
    arrays: Mapping[str, np.ndarray],
    tables: Optional[Mapping[str, np.ndarray]] = None,
) -> Dict[str, np.ndarray]:
    """One-shot convenience wrapper around :class:`Interpreter`."""
    return Interpreter(sdfg).run(symbols, arrays, tables)
