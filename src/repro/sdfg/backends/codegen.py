"""Numpy code generation from SDFGs (the ``numpy`` execution backend).

Lowers a single-state SDFG to a vectorized Python module — the
reproduction's analogue of DaCe emitting fast code from the optimized
graph (paper §5).  The generated ``run(dims, arrays, tables)`` function
mirrors :meth:`repro.sdfg.interpreter.Interpreter.run`: it allocates the
array store, executes every map scope, and returns the store.

Lowering strategy, per map scope (innermost decision wins):

* **vectorized** — when every tasklet in the scope carries a declarative
  :attr:`~repro.sdfg.nodes.Tasklet.op` annotation (an einsum-style
  equation over its memlets' slice dimensions, or ``"zero"``) and all
  memlet subsets are regular enough, the whole scope collapses into
  broadcast slice assignments and ``np.einsum`` contractions.  Map
  parameters become einsum subscripts; parameters absent from a
  ``CR: Sum`` output are contracted; affine/indirect point indices
  become gathered index grids; scattered ``CR: Sum`` writes lower to
  ``np.add.at``.  Scope-local scratch transients are propagated as
  expanded einsum temporaries instead of materialized per iteration.
* **loop nest** — any scope that resists vectorization (no ``op``,
  irregular subsets) is emitted as explicit ``for`` loops whose bodies
  index arrays directly and invoke the tasklet's Python ``code`` — still
  far faster than interpretation, which re-evaluates symbolic subsets at
  every iteration.

Semantics parity with the interpreter is exact by construction where it
matters (same index arithmetic, numpy's negative-index wraparound for
periodic accesses, identical iteration order in loop fallbacks) and
verified to 1e-10 by the pipeline's per-stage compile checks and the
backend-equivalence tests.  :func:`analytic_execution_report` derives
the interpreter's :class:`~repro.sdfg.interpreter.ExecutionReport`
counters (tasklet invocations, flops, element reads/writes) in closed
form from the map ranges, so generated runs report the same statistics
without paying for instrumentation.
"""

from __future__ import annotations

import io
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..graph import SDFG, SDFGState
from ..interpreter import ExecutionReport
from ..memlet import Memlet
from ..nodes import AccessNode, MapEntry, MapExit, NestedSDFG, Tasklet
from ..symbolic import (
    Add,
    Expr,
    FloorDiv,
    IndirectAccess,
    Integer,
    Max,
    Min,
    Mod,
    Mul,
    Symbol,
)
from . import Backend, BackendError, StageRunner
from .common import restore_output, select_stage_inputs, stage_output

__all__ = [
    "NumpyBackend",
    "NumpyStageRunner",
    "generate_source",
    "compile_sdfg",
    "analytic_execution_report",
    "required_symbols",
]

_LETTERS = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"


class _Fallback(Exception):
    """Internal: the current scope cannot be vectorized; emit loops."""


def _is_same(a: Expr, b) -> bool:
    """Symbolic equality up to distribution: ``a - b`` expands to 0."""
    try:
        return (a - b).expand() == Integer(0)
    except Exception:
        return False


# -- symbolic expression -> python source ----------------------------------------


def _end_code(e: Expr, scope: Mapping[str, str]) -> str:
    """Code for an inclusive end turned exclusive: ``(e + 1)`` expanded,
    so ``0:Norb`` is emitted instead of ``0:(Norb + -1) + 1``."""
    return _expr_code((e + Integer(1)).expand(), scope)


def _expr_code(expr: Expr, scope: Mapping[str, str]) -> str:
    """Emit python source for ``expr``; ``scope`` maps symbol names (and
    ``"__table__:<name>"`` entries) to code fragments."""
    if isinstance(expr, Integer):
        return str(expr.value)
    if isinstance(expr, Symbol):
        if expr.name not in scope:
            raise _Fallback(f"unbound symbol {expr.name!r}")
        return scope[expr.name]
    if isinstance(expr, Add):
        return "(" + " + ".join(_expr_code(a, scope) for a in expr.args) + ")"
    if isinstance(expr, Mul):
        return "(" + "*".join(_expr_code(a, scope) for a in expr.args) + ")"
    if isinstance(expr, FloorDiv):
        return f"({_expr_code(expr.num, scope)} // {_expr_code(expr.den, scope)})"
    if isinstance(expr, Mod):
        return f"({_expr_code(expr.num, scope)} % {_expr_code(expr.den, scope)})"
    if isinstance(expr, (Min, Max)):
        fn = "np.minimum" if isinstance(expr, Min) else "np.maximum"
        out = _expr_code(expr.args[0], scope)
        for a in expr.args[1:]:
            out = f"{fn}({out}, {_expr_code(a, scope)})"
        return out
    if isinstance(expr, IndirectAccess):
        key = f"__table__:{expr.table}"
        if key not in scope:
            raise _Fallback(f"unbound indirection table {expr.table!r}")
        idx = ", ".join(_expr_code(i, scope) for i in expr.indices)
        return f"{scope[key]}[{idx}]"
    raise _Fallback(f"cannot lower expression {expr!r}")


# -- emitter ----------------------------------------------------------------------


class _Emitter:
    """Accumulates generated source lines with indentation."""

    def __init__(self):
        self.lines: List[str] = []
        self.depth = 1
        self._fresh = 0

    def emit(self, text: str = ""):
        self.lines.append("    " * self.depth + text if text else "")

    def fresh(self, prefix: str) -> str:
        self._fresh += 1
        return f"_{prefix}{self._fresh}"

    def absorb(self, other: "_Emitter"):
        self.lines.extend(other.lines)
        self._fresh = other._fresh


class _Codegen:
    """Generates one module for a single-state SDFG."""

    def __init__(self, sdfg: SDFG, func_name: str = "run"):
        if len(sdfg.states) != 1:
            raise BackendError(
                f"numpy backend lowers single-state SDFGs; "
                f"{sdfg.name!r} has {len(sdfg.states)}"
            )
        self.sdfg = sdfg
        self.state: SDFGState = sdfg.states[0]
        for n in self.state.graph.nodes:
            if isinstance(n, NestedSDFG):
                raise BackendError(
                    "numpy backend does not lower nested SDFGs; "
                    "use the interpreter backend"
                )
        self.func_name = func_name
        self.tasklet_codes: Dict[str, object] = {}
        # Base name scope: SDFG symbols, map parameters, array/table aliases.
        params = {
            p
            for n in self.state.graph.nodes
            if isinstance(n, MapEntry)
            for p in n.map.params
        }
        reserved = set(sdfg.symbols) | params | {"dims", "arrays", "tables", "np"}
        self.array_var: Dict[str, str] = {}
        for name in sdfg.arrays:
            safe = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
            var = safe if safe.isidentifier() else f"A_{safe}"
            while var in reserved:
                var = f"A_{var}"
            self.array_var[name] = var
            reserved.add(var)
        self.scope0: Dict[str, str] = {s: s for s in sdfg.symbols}
        self.table_var: Dict[str, str] = {}

    # -- naming -----------------------------------------------------------------
    def _table(self, name: str) -> str:
        if name not in self.table_var:
            safe = "".join(c if c.isalnum() else "_" for c in name)
            self.table_var[name] = f"_T_{safe}"
        return self.table_var[name]

    def _tasklet_key(self, t: Tasklet) -> str:
        key = f"{t.label}#{t._uid}"
        self.tasklet_codes[key] = t.code
        return key

    def _scope_with_tables(self, scope: Mapping[str, str], mem_or_expr) -> Dict[str, str]:
        """Extend ``scope`` with table aliases for indirections in use."""
        out = dict(scope)
        for name in self.table_var:
            out[f"__table__:{name}"] = self.table_var[name]
        return out

    def _register_tables(self, expr: Expr):
        """Pre-register table aliases appearing in ``expr``."""
        if isinstance(expr, IndirectAccess):
            self._table(expr.table)
            for i in expr.indices:
                self._register_tables(i)
        for attr in ("args",):
            for sub in getattr(expr, attr, ()):  # Add/Mul/Min/Max
                self._register_tables(sub)
        for attr in ("num", "den"):
            sub = getattr(expr, attr, None)
            if sub is not None:
                self._register_tables(sub)

    # -- structure helpers -------------------------------------------------------
    def _immediate_children(self, entry: Optional[MapEntry]) -> List:
        """Nodes directly inside a scope (or at state top level), in
        topological order; nested scopes appear as their entry node."""
        st = self.state
        if entry is None:
            interior = set()
            for top in st.top_level_maps():
                interior.update(st.scope_children(top))
                interior.add(st.exit_node(top))
            pool = [n for n in st.topological_nodes() if n not in interior]
        else:
            inside = st.scope_children(entry)
            nested_interior = set()
            for n in inside:
                if isinstance(n, MapEntry):
                    nested_interior.update(st.scope_children(n))
            pool = [
                n
                for n in st.topological_nodes()
                if n in set(inside) and n not in nested_interior
            ]
        return pool

    def _scope_tasklets(self, entry: MapEntry) -> List[Tuple[Tasklet, List[str]]]:
        """All tasklets inside ``entry`` (any depth) in topological order,
        each with the map parameters binding it, outermost first."""
        st = self.state
        out = []
        for n in st.topological_nodes():
            if not isinstance(n, Tasklet):
                continue
            chain = st.scope_chain(n)
            if entry not in chain:
                continue
            cut = chain[: chain.index(entry) + 1]
            params: List[str] = []
            for e in reversed(cut):
                params.extend(e.map.params)
            out.append((n, params))
        return out

    def _in_edges(self, t: Tasklet) -> Dict[str, Memlet]:
        out = {}
        for u, _, d in self.state.in_edges(t):
            if d.get("memlet") is not None and d.get("dst_conn") is not None:
                out[d["dst_conn"]] = (d["memlet"], u)
        return out

    def _out_edges(self, t: Tasklet) -> Dict[str, Tuple[Memlet, object]]:
        out = {}
        for _, v, d in self.state.out_edges(t):
            if d.get("memlet") is not None and d.get("src_conn") is not None:
                out[d["src_conn"]] = (d["memlet"], v)
        return out

    def _scope_local_transients(self, entry: MapEntry) -> set:
        """Transients whose every access node / memlet lives inside
        ``entry``'s scope: per-iteration scratch storage."""
        st = self.state
        inside = set(st.scope_children(entry))
        inside.add(entry)
        inside.add(st.exit_node(entry))
        local = set()
        for name, desc in self.sdfg.arrays.items():
            if not desc.transient:
                continue
            nodes = [
                n
                for n in st.graph.nodes
                if isinstance(n, AccessNode) and n.data == name
            ]
            edges = [
                (u, v)
                for u, v, d in st.edges()
                if d.get("memlet") is not None and d["memlet"].data == name
            ]
            if not nodes and not edges:
                continue
            if all(n in inside for n in nodes) and all(
                u in inside and v in inside for u, v in edges
            ):
                local.add(name)
        return local

    # -- module skeleton ---------------------------------------------------------
    def generate(self) -> str:
        em = _Emitter()
        self._emit_prologue(em)
        self._emit_scope_body(em, None, dict(self.scope0))
        store = ", ".join(
            f"'{name}': {var}" for name, var in self.array_var.items()
        )
        em.emit(f"return {{{store}}}")

        head = io.StringIO()
        head.write('"""Generated by repro.sdfg.backends.codegen (numpy backend).\n\n')
        head.write(f"source SDFG: {self.sdfg.name}\n")
        head.write(
            "Injected at exec time: np (numpy) and _tasklets, a dict of the\n"
            "graph's opaque tasklet callables keyed by label#uid.\n"
        )
        if self.tasklet_codes:
            for key in self.tasklet_codes:
                head.write(f"  _tasklets[{key!r}]\n")
        head.write('"""\n\n')
        head.write(f"def {self.func_name}(dims, arrays, tables=None):\n")
        return head.getvalue() + "\n".join(em.lines) + "\n"

    def _emit_prologue(self, em: _Emitter):
        em.emit("tables = tables or {}")
        for s in self.sdfg.symbols:
            em.emit(f"{s} = dims[{s!r}]")
        # Tables referenced anywhere in the graph.
        for _, _, d in self.state.edges():
            mem = d.get("memlet")
            if mem is None:
                continue
            for b, e, s in mem.subset.dims:
                for expr in (b, e, s):
                    self._register_tables(expr)
        for name, var in sorted(self.table_var.items()):
            em.emit(f"{var} = tables[{name!r}]")
        for name, desc in self.sdfg.arrays.items():
            var = self.array_var[name]
            shape = ", ".join(
                _expr_code(s, self.scope0) for s in desc.shape
            )
            zeros = f"np.zeros(({shape},), dtype=np.dtype({desc.dtype.str!r}))"
            if desc.transient:
                em.emit(f"{var} = {zeros}")
            else:
                em.emit(
                    f"{var} = arrays[{name!r}] if {name!r} in arrays else {zeros}"
                )
        em.emit()

    # -- scope walk --------------------------------------------------------------
    def _emit_scope_body(self, em: _Emitter, entry: Optional[MapEntry], scope):
        for node in self._immediate_children(entry):
            if isinstance(node, (AccessNode, MapExit)):
                continue
            if isinstance(node, Tasklet):
                self._emit_direct_tasklet(em, node, scope)
            elif isinstance(node, MapEntry):
                self._emit_map(em, node, scope)

    def _emit_map(self, em: _Emitter, entry: MapEntry, scope):
        trial = _Emitter()
        trial.depth = em.depth
        trial._fresh = em._fresh
        try:
            self._emit_vectorized_scope(trial, entry, scope)
        except _Fallback:
            self._emit_loop(em, entry, scope)
            return
        em.absorb(trial)

    def _emit_loop(self, em: _Emitter, entry: MapEntry, scope):
        m = entry.map
        em.emit(f"# map {m.label}[{', '.join(m.params)}]: loop nest")
        inner = dict(scope)
        for p, (b, e, s) in zip(m.params, m.range):
            b_c = _expr_code(b, self._scope_with_tables(inner, b))
            e_c = _expr_code(e, self._scope_with_tables(inner, e))
            if s == Integer(1):
                rng = f"range({b_c}, {_end_code(e, self._scope_with_tables(inner, e))})"
            else:
                s_c = _expr_code(s, self._scope_with_tables(inner, s))
                rng = f"range({b_c}, ({e_c}) + (1 if ({s_c}) > 0 else -1), {s_c})"
            em.emit(f"for {p} in {rng}:")
            em.depth += 1
            inner[p] = p
        self._emit_scope_body(em, entry, inner)
        em.depth -= len(m.params)

    # -- direct (fully bound) tasklet emission -----------------------------------
    def _memlet_parts(self, mem: Memlet, scope) -> List[str]:
        """Scalar-context index parts: scalars for points, slices else."""
        sc = self._scope_with_tables(scope, mem)
        desc = self.sdfg.arrays[mem.data]
        parts = []
        for (b, e, s), n in zip(mem.subset.dims, desc.shape):
            if b == e:
                parts.append(_expr_code(b, sc))
            elif _is_same(b, Integer(0)) and _is_same(e, n - 1) and s == Integer(1):
                parts.append(":")
            elif s == Integer(1):
                parts.append(f"{_expr_code(b, sc)}:{_end_code(e, sc)}")
            else:
                parts.append(
                    f"{_expr_code(b, sc)}:{_end_code(e, sc)}:{_expr_code(s, sc)}"
                )
        return parts

    def _memlet_ref(self, mem: Memlet, scope) -> str:
        parts = self._memlet_parts(mem, scope)
        var = self.array_var[mem.data]
        if all(p == ":" for p in parts):
            return var
        return f"{var}[{', '.join(parts)}]"

    def _emit_direct_tasklet(self, em: _Emitter, t: Tasklet, scope):
        ins = self._in_edges(t)
        outs = self._out_edges(t)
        if t.op == "zero":
            for conn in t.outputs:
                mem, _ = outs[conn]
                em.emit(f"{self.array_var[mem.data]}"
                        f"[{', '.join(self._memlet_parts(mem, scope))}] = 0")
            return
        if t.op is not None and len(t.outputs) == 1:
            mem, _ = outs[t.outputs[0]]
            try:
                if mem.wcr not in (None, "sum"):
                    raise _Fallback("non-sum wcr")
                in_specs, out_spec = _parse_op(t)
                n_slices = [
                    sum(1 for b, e, _ in ins[c][0].subset.dims if b != e)
                    for c in t.inputs
                ]
                if len(in_specs) != len(t.inputs) or any(
                    n != len(s) for n, s in zip(n_slices, in_specs)
                ):
                    raise _Fallback("op arity mismatch")
                operands = [
                    self._memlet_ref(ins[c][0], scope) for c in t.inputs
                ]
            except _Fallback:
                pass  # opaque call below
            else:
                eq = ",".join(in_specs) + "->" + out_spec
                target = (
                    f"{self.array_var[mem.data]}"
                    f"[{', '.join(self._memlet_parts(mem, scope))}]"
                )
                assign = "+=" if mem.wcr == "sum" else "="
                em.emit(
                    f"{target} {assign} np.einsum({eq!r}, "
                    f"{', '.join(operands)}, optimize=True)"
                )
                return
        # Opaque tasklet: call its code object directly.
        key = self._tasklet_key(t)
        args = ", ".join(
            f"{c}={self._memlet_ref(ins[c][0], scope)}" for c in t.inputs
        )
        r = em.fresh("r")
        em.emit(f"{r} = _tasklets[{key!r}]({args})")
        for conn in t.outputs:
            mem, _ = outs[conn]
            target = (
                f"{self.array_var[mem.data]}"
                f"[{', '.join(self._memlet_parts(mem, scope))}]"
            )
            assign = "+=" if mem.wcr == "sum" else "="
            if mem.wcr not in (None, "sum"):
                fn = "np.minimum" if mem.wcr == "min" else "np.maximum"
                em.emit(f"{target} = {fn}({target}, {r}[{conn!r}])")
            else:
                em.emit(f"{target} {assign} {r}[{conn!r}]")

    # -- vectorized scope emission -------------------------------------------------
    def _emit_vectorized_scope(self, em: _Emitter, entry: MapEntry, scope):
        """Collapse a whole map scope (nested maps included) into einsum /
        broadcast statements; raises :class:`_Fallback` when impossible."""
        st = self.state
        tasklets = self._scope_tasklets(entry)
        if not tasklets:
            raise _Fallback("empty scope")
        # Every involved map must have dims-only, unit-stride ranges.
        seen_params: List[Tuple[str, Tuple[Expr, Expr]]] = []
        for t, params in tasklets:
            chain = st.scope_chain(t)
            chain = chain[: chain.index(entry) + 1]
            for e in reversed(chain):
                for p, (b, ee, s) in zip(e.map.params, e.map.range):
                    if s != Integer(1):
                        raise _Fallback("non-unit map stride")
                    free = b.free_symbols | ee.free_symbols
                    if not free <= set(self.sdfg.symbols) | set(scope):
                        raise _Fallback("map range depends on map params")
                    prev = next(
                        (r for q, r in seen_params if q == p), None
                    )
                    if prev is None:
                        seen_params.append((p, (b, ee)))
                    elif not (
                        _is_same(prev[0], b) and _is_same(prev[1], ee)
                    ):
                        # Two maps in this scope reuse one parameter name
                        # over different ranges; one shared arange would
                        # be silently wrong for one of them.
                        raise _Fallback(
                            f"parameter {p!r} has conflicting ranges"
                        )
        letters = iter(_LETTERS)
        used_letters = set()

        def take_letter() -> str:
            for c in letters:
                if c not in used_letters:
                    used_letters.add(c)
                    return c
            raise _Fallback("subscript letters exhausted")

        param_letter: Dict[str, str] = {}
        param_range: Dict[str, Tuple[Expr, Expr]] = {}
        for p, rng in seen_params:
            param_letter[p] = take_letter()
            param_range[p] = rng
        locals_ = self._scope_local_transients(entry)
        # temp storage: array -> (var, axes) where axes entries are
        # ('param', name) for expanded map axes or ('dim', d) for the
        # transient's own dimensions.
        temps: Dict[str, Tuple[str, List[Tuple[str, object]]]] = {}
        zeroed: set = set()

        em.emit(
            f"# map {entry.map.label}"
            f"[{', '.join(p for p, _ in seen_params)}]: vectorized"
        )
        for t, params in tasklets:
            self._emit_vectorized_tasklet(
                em, t, params, scope, param_letter, param_range,
                take_letter, locals_, temps, zeroed,
            )

    def _arange(self, p: str, param_range, scope) -> str:
        b, e = param_range[p]
        sc = self._scope_with_tables(scope, b)
        return f"np.arange({_expr_code(b, sc)}, {_end_code(e, sc)})"

    def _grid_code(
        self,
        em: _Emitter,
        expr: Expr,
        grid_params: Sequence[str],
        axis_of: Mapping[str, int],
        ndim: int,
        param_range,
        scope,
    ) -> str:
        """Emit an index grid for ``expr`` broadcast over ``ndim`` axes,
        each involved parameter occupying axis ``axis_of[p]``."""
        sub = dict(scope)
        for p in grid_params:
            ix = ["None"] * ndim
            ix[axis_of[p]] = ":"
            ar = em.fresh("ix")
            em.emit(f"{ar} = {self._arange(p, param_range, scope)}[{', '.join(ix)}]")
            sub[p] = ar
        return _expr_code(expr, self._scope_with_tables(sub, expr))

    def _vector_operand(
        self, em, mem: Memlet, block_letters: List[str],
        vec_params: List[str], param_letter, param_range, scope,
    ) -> str:
        """Emit a gathered operand for an input memlet; returns its
        einsum subscript string (assignments go through ``em``)."""
        desc = self.sdfg.arrays[mem.data]
        sc = self._scope_with_tables(scope, mem)
        basic: List[str] = []
        axes: List[Tuple[str, object]] = []  # ('sub', letter) | ('hard', ...)
        blocks = iter(block_letters)
        for (b, e, s), n in zip(mem.subset.dims, desc.shape):
            if b != e:  # slice dim -> block subscript
                if s != Integer(1):
                    raise _Fallback("strided memlet slice")
                full = _is_same(b, Integer(0)) and _is_same(e, n - 1)
                basic.append(
                    ":" if full else f"{_expr_code(b, sc)}:{_end_code(e, sc)}"
                )
                axes.append(("sub", next(blocks)))
                continue
            involved = [p for p in vec_params if p in b.free_symbols]
            if not involved:
                basic.append(_expr_code(b, sc))  # scalar: axis dropped
            elif (
                isinstance(b, Symbol)
                and _is_same(param_range[b.name][0], Integer(0))
                and _is_same(param_range[b.name][1], n - 1)
            ):
                basic.append(":")
                axes.append(("sub", param_letter[b.name]))
            else:
                basic.append(":")
                axes.append(("hard", (involved, b)))
        cur = self.array_var[mem.data]
        if any(p != ":" for p in basic):
            cur = f"{cur}[{', '.join(basic)}]"
        # Apply index grids one hard dimension at a time (stepwise gather:
        # a single advanced index keeps its broadcast axes in place).
        while any(kind == "hard" for kind, _ in axes):
            pos = next(i for i, (k, _) in enumerate(axes) if k == "hard")
            involved, expr = axes[pos][1]
            axis_of = {p: i for i, p in enumerate(involved)}
            grid = self._grid_code(
                em, expr, involved, axis_of, len(involved), param_range, scope
            )
            v = em.fresh("g")
            head = [":"] * pos + [grid]
            em.emit(f"{v} = {cur}[{', '.join(head)}]")
            cur = v
            axes[pos: pos + 1] = [("sub", param_letter[p]) for p in involved]
        subs = "".join(s for _, s in axes)
        self._operand_code = cur
        return subs

    def _emit_vectorized_tasklet(
        self, em, t: Tasklet, vec_params: List[str], scope,
        param_letter, param_range, take_letter, locals_, temps, zeroed,
    ):
        ins = self._in_edges(t)
        outs = self._out_edges(t)
        if t.op is None:
            raise _Fallback(f"tasklet {t.label!r} has no op annotation")
        if t.op == "zero":
            for conn in t.outputs:
                mem, _ = outs[conn]
                if mem.data in locals_:
                    zeroed.add(mem.data)  # expanded temp: implicit zeros
                    continue
                n_slice = sum(1 for b, e, _ in mem.subset.dims if b != e)
                target, _subs, scatter = self._vector_write_region(
                    mem, vec_params, param_letter, param_range, scope,
                    out_blocks=["?"] * n_slice,
                )
                if scatter is not None:
                    raise _Fallback("computed zero-fill indices")
                em.emit(f"{target} = 0")
            return
        if len(t.outputs) != 1:
            raise _Fallback("vectorization requires a single output")
        in_specs, out_spec = _parse_op(t)
        if len(in_specs) != len(t.inputs):
            raise _Fallback(f"op arity mismatch on {t.label!r}")
        op_letter: Dict[str, str] = {}
        for c in "".join(in_specs) + out_spec:
            if c not in op_letter:
                op_letter[c] = take_letter()

        operands: List[str] = []
        op_subs: List[str] = []
        applied_params: set = set()
        for conn, spec in zip(t.inputs, in_specs):
            if conn not in ins:
                raise _Fallback(f"unbound input connector {conn!r}")
            mem, src = ins[conn]
            n_slice = sum(1 for b, e, _ in mem.subset.dims if b != e)
            if n_slice != len(spec):
                raise _Fallback(
                    f"op spec {spec!r} does not match memlet rank on {t.label!r}"
                )
            block_letters = [op_letter[c] for c in spec]
            if mem.data in locals_:
                code, subs = self._consume_temp(
                    em, mem, block_letters, vec_params, param_letter, temps, scope
                )
            else:
                subs = self._vector_operand(
                    em, mem, block_letters, vec_params,
                    param_letter, param_range, scope,
                )
                code = self._operand_code
            operands.append(code)
            op_subs.append(subs)
            applied_params.update(
                p for p, l in param_letter.items() if l in subs
            )

        mem, _dst = outs[t.outputs[0]]
        out_blocks = [op_letter[c] for c in out_spec]
        if mem.data in locals_:
            self._produce_temp(
                em, t, mem, out_blocks, operands, op_subs,
                vec_params, param_letter, param_range, applied_params,
                temps, zeroed,
            )
            return
        target, out_subs, scatter = self._vector_write_region(
            mem, vec_params, param_letter, param_range, scope,
            out_blocks=out_blocks,
        )
        if len(set(out_subs)) != len(out_subs):
            raise _Fallback("repeated output subscript")
        if scatter is not None:
            if mem.wcr != "sum":
                raise _Fallback("scattered write without CR: Sum")
            self._emit_scatter(
                em, mem, scatter, operands, op_subs, out_blocks,
                vec_params, param_letter, param_range, scope,
            )
            return
        if mem.wcr is None:
            missing = applied_params - {
                p for p, l in param_letter.items() if l in out_subs
            }
            if missing:
                raise _Fallback(
                    f"non-wcr write drops parameters {sorted(missing)}"
                )
            assign = "="
        elif mem.wcr == "sum":
            assign = "+="
        else:
            raise _Fallback(f"unsupported wcr {mem.wcr!r}")
        eq = ",".join(op_subs) + "->" + out_subs
        em.emit(
            f"{target} {assign} np.einsum({eq!r}, "
            f"{', '.join(operands)}, optimize=True)"
        )

    def _vector_write_region(
        self, mem: Memlet, vec_params, param_letter, param_range, scope,
        out_blocks: Optional[List[str]] = None,
    ):
        """Target slice expression + einsum output subscripts for a write.

        Returns ``(target, out_subs, scatter)``; ``scatter`` is None for
        a plain sliced write, else the list of per-dimension point
        expressions needing an ``np.add.at`` index grid.
        """
        desc = self.sdfg.arrays[mem.data]
        sc = self._scope_with_tables(scope, mem)
        parts: List[str] = []
        out_subs = ""
        blocks = iter(out_blocks or [])
        needs_scatter = False
        point_exprs: List[Optional[Expr]] = []
        for (b, e, s), n in zip(mem.subset.dims, desc.shape):
            if b != e:
                if s != Integer(1):
                    raise _Fallback("strided write slice")
                full = _is_same(b, Integer(0)) and _is_same(e, n - 1)
                parts.append(
                    ":" if full else f"{_expr_code(b, sc)}:{_end_code(e, sc)}"
                )
                out_subs += next(blocks)
                point_exprs.append(None)
                continue
            involved = [p for p in vec_params if p in b.free_symbols]
            if not involved:
                parts.append(_expr_code(b, sc))
                point_exprs.append(None)
            elif isinstance(b, Symbol):
                p = b.name
                pb, pe = param_range[p]
                full = _is_same(pb, Integer(0)) and _is_same(pe, n - 1)
                parts.append(
                    ":" if full
                    else f"{_expr_code(pb, sc)}:{_end_code(pe, sc)}"
                )
                out_subs += param_letter[p]
                point_exprs.append(None)
            else:
                needs_scatter = True
                point_exprs.append(b)
                parts.append(":")  # placeholder, unused for scatter
                out_subs += ""  # filled by the scatter path
        target = f"{self.array_var[mem.data]}[{', '.join(parts)}]"
        if needs_scatter:
            return target, out_subs, point_exprs
        return target, out_subs, None

    def _emit_scatter(
        self, em, mem, point_exprs, operands, op_subs, out_blocks,
        vec_params, param_letter, param_range, scope,
    ):
        """Lower a ``CR: Sum`` write with computed indices to np.add.at."""
        desc = self.sdfg.arrays[mem.data]
        sc = self._scope_with_tables(scope, mem)
        # Parameters appearing in any output point expression, in scope order.
        out_params: List[str] = []
        for (b, e, s) in mem.subset.dims:
            if b == e:
                for p in vec_params:
                    if p in b.free_symbols and p not in out_params:
                        out_params.append(p)
        ndim = len(out_params) + len(out_blocks)
        axis_of = {p: i for i, p in enumerate(out_params)}
        idx_parts: List[str] = []
        block_axis = len(out_params)
        bi = 0
        for dim_i, ((b, e, s), n) in enumerate(zip(mem.subset.dims, desc.shape)):
            if b != e:
                ar = em.fresh("ix")
                ix = ["None"] * ndim
                ix[block_axis + bi] = ":"
                em.emit(
                    f"{ar} = np.arange({_expr_code(b, sc)}, "
                    f"{_end_code(e, sc)})[{', '.join(ix)}]"
                )
                idx_parts.append(ar)
                bi += 1
                continue
            involved = [p for p in vec_params if p in b.free_symbols]
            if not involved:
                idx_parts.append(_expr_code(b, sc))
            else:
                grid = self._grid_code(
                    em, b, involved, axis_of, ndim, param_range, scope
                )
                idx_parts.append(grid)
        out_subs = "".join(param_letter[p] for p in out_params) + "".join(out_blocks)
        eq = ",".join(op_subs) + "->" + out_subs
        v = em.fresh("acc")
        em.emit(
            f"{v} = np.einsum({eq!r}, {', '.join(operands)}, optimize=True)"
        )
        em.emit(
            f"np.add.at({self.array_var[mem.data]}, "
            f"({', '.join(idx_parts)}), {v})"
        )

    # -- expanded scope-local temporaries ----------------------------------------
    def _produce_temp(
        self, em, t, mem, out_blocks, operands, op_subs,
        vec_params, param_letter, param_range, applied_params, temps, zeroed,
    ):
        if mem.wcr is not None:
            raise _Fallback("CR write onto scope-local scratch")
        if mem.data in temps:
            raise _Fallback(f"multiple writers of scratch {mem.data!r}")
        zeroed.discard(mem.data)  # dead zero-init: overwritten below
        desc = self.sdfg.arrays[mem.data]
        axes: List[Tuple[str, object]] = []
        out_subs = ""
        blocks = iter(out_blocks)
        dim_params: set = set()
        for dim_i, ((b, e, s), n) in enumerate(zip(mem.subset.dims, desc.shape)):
            if b != e:
                full = _is_same(b, Integer(0)) and _is_same(e, n - 1)
                if not full or s != Integer(1):
                    raise _Fallback("partial scratch write")
                axes.append(("dim", dim_i))
                out_subs += next(blocks)
                continue
            if isinstance(b, Symbol) and b.name in vec_params:
                pb, pe = param_range[b.name]
                if not (_is_same(pb, Integer(0)) and _is_same(pe, n - 1)):
                    raise _Fallback("partial-range scratch index")
                axes.append(("dim", dim_i))
                out_subs += param_letter[b.name]
                dim_params.add(b.name)
            elif not (b.free_symbols & set(vec_params)):
                raise _Fallback("scalar-indexed scratch write")
            else:
                raise _Fallback("computed scratch index")
        extra = [
            p for p in vec_params
            if p in applied_params and p not in dim_params
        ]
        axes = [("param", p) for p in extra] + axes
        out_subs = "".join(param_letter[p] for p in extra) + out_subs
        var = em.fresh("t")
        eq = ",".join(op_subs) + "->" + out_subs
        em.emit(
            f"{var} = np.einsum({eq!r}, {', '.join(operands)}, optimize=True)"
            f"  # scratch {mem.data!r} expanded over map axes"
        )
        temps[mem.data] = (var, axes)

    def _consume_temp(
        self, em, mem, block_letters, vec_params, param_letter, temps, scope,
    ) -> Tuple[str, str]:
        if mem.data not in temps:
            raise _Fallback(f"scratch {mem.data!r} read before written")
        var, axes = temps[mem.data]
        desc = self.sdfg.arrays[mem.data]
        # Per-array-dimension subscripts from the consumer's memlet.
        dim_sub: Dict[int, str] = {}
        blocks = iter(block_letters)
        for dim_i, ((b, e, s), n) in enumerate(zip(mem.subset.dims, desc.shape)):
            if b != e:
                full = _is_same(b, Integer(0)) and _is_same(e, n - 1)
                if not full or s != Integer(1):
                    raise _Fallback("partial scratch read")
                dim_sub[dim_i] = next(blocks)
            elif isinstance(b, Symbol) and b.name in vec_params:
                dim_sub[dim_i] = param_letter[b.name]
            else:
                raise _Fallback("computed scratch read index")
        subs = ""
        for kind, val in axes:
            subs += param_letter[val] if kind == "param" else dim_sub[val]
        return var, subs


def _parse_op(t: Tasklet) -> Tuple[List[str], str]:
    op = t.op or ""
    if "->" not in op:
        raise _Fallback(f"malformed op {op!r} on {t.label!r}")
    ins, out = op.split("->")
    return ins.split(","), out


# -- analytic execution statistics -----------------------------------------------


def _range_volume(rng, env) -> int:
    total = 1
    for b, e, s in rng:
        bb, ee, ss = b.evaluate(env), e.evaluate(env), s.evaluate(env)
        n = len(range(bb, ee + 1, ss)) if ss > 0 else len(range(bb, ee - 1, ss))
        total *= n
    return total


def _memlet_volume(mem: Memlet, env) -> int:
    vol = 1
    for i, (b, e, s) in enumerate(mem.subset.dims):
        if b == e:
            continue  # symbolic point: one element
        vol *= int(mem.subset.dim_length(i).evaluate(env))
    return vol


def _memlet_view_shape(mem: Memlet, env) -> Tuple[int, ...]:
    """Shape a tasklet sees for this memlet (symbolic points squeezed)."""
    return tuple(
        int(mem.subset.dim_length(i).evaluate(env))
        for i, (b, e, s) in enumerate(mem.subset.dims)
        if b != e
    )


def analytic_execution_report(
    sdfg: SDFG, env: Mapping[str, int]
) -> ExecutionReport:
    """The interpreter's :class:`ExecutionReport` counters, derived in
    closed form from the map ranges instead of by instrumented execution.

    Exact for single-pass state machines whose map ranges are functions
    of the SDFG symbols alone (every pipeline stage graph qualifies);
    unbound symbols raise a :class:`BackendError` naming them.
    """
    rep = ExecutionReport()
    env = dict(env)
    try:
        for state in sdfg.states:
            for node in state.graph.nodes:
                if isinstance(node, NestedSDFG):
                    raise BackendError(
                        "analytic report does not cover nested SDFGs"
                    )
                if not isinstance(node, Tasklet):
                    continue
                inv = 1
                for entry in state.scope_chain(node):
                    inv *= _range_volume(entry.map.range.dims, env)
                rep.tasklet_invocations += inv
                dummies = {}
                for u, _, d in state.in_edges(node):
                    mem, conn = d.get("memlet"), d.get("dst_conn")
                    if mem is None or conn is None:
                        continue
                    rep.element_reads += _memlet_volume(mem, env) * inv
                    dummies[conn] = np.broadcast_to(
                        np.complex128(0), _memlet_view_shape(mem, env)
                    )
                for _, v, d in state.out_edges(node):
                    mem = d.get("memlet")
                    if mem is None or d.get("src_conn") is None:
                        continue
                    rep.element_writes += _memlet_volume(mem, env) * inv
                if node.flops is not None:
                    rep.flops += int(node.flops(**dummies)) * inv
    except KeyError as exc:
        raise BackendError(
            f"analytic execution report needs a binding for {exc.args[0]}"
        ) from exc
    return rep


def required_symbols(sdfg: SDFG) -> Tuple[str, ...]:
    """The symbol bindings a generated module's ``run`` expects."""
    return tuple(sdfg.symbols)


# -- public compile surface -------------------------------------------------------


def generate_source(sdfg: SDFG, func_name: str = "run") -> str:
    """Lower a single-state SDFG to Python source (without executing)."""
    return _Codegen(sdfg, func_name).generate()


class _Executed:
    """Post-run carrier mirroring the interpreter's ``.report`` surface."""

    __slots__ = ("report",)

    def __init__(self, report: ExecutionReport):
        self.report = report


class CompiledSDFG:
    """A generated module for one SDFG: callable like ``Interpreter.run``."""

    def __init__(self, sdfg: SDFG, func_name: str = "run"):
        self.sdfg = sdfg
        gen = _Codegen(sdfg, func_name)
        self.source = gen.generate()
        namespace = {"np": np, "_tasklets": dict(gen.tasklet_codes)}
        exec(compile(self.source, f"<sdfg:{sdfg.name}>", "exec"), namespace)
        self._fn = namespace[func_name]

    def __call__(self, symbols, arrays, tables=None) -> Dict[str, np.ndarray]:
        missing = [s for s in self.sdfg.symbols if s not in symbols]
        if missing:
            raise BackendError(
                f"missing symbol bindings {missing}; the generated kernel "
                f"for {self.sdfg.name!r} requires {sorted(self.sdfg.symbols)}"
            )
        return self._fn(symbols, arrays, tables)

    def report(self, symbols) -> ExecutionReport:
        return analytic_execution_report(self.sdfg, symbols)


def compile_sdfg(sdfg: SDFG, func_name: str = "run") -> CompiledSDFG:
    """Generate and exec a numpy module for ``sdfg``."""
    return CompiledSDFG(sdfg, func_name)


class NumpyStageRunner(StageRunner):
    """One stage lowered to a generated numpy module."""

    def __init__(self, stage):
        self.stage = stage
        self.output = stage_output(stage)
        self.compiled = compile_sdfg(stage.sdfg)
        self.source = self.compiled.source

    def __call__(
        self,
        dims: Mapping[str, int],
        arrays: Mapping[str, np.ndarray],
        tables: Optional[Mapping[str, np.ndarray]] = None,
    ):
        stage = self.stage
        inputs = select_stage_inputs(stage, arrays, self.output)
        store = self.compiled(dims, inputs, tables)
        executed = _Executed(self.compiled.report(dims))
        return restore_output(stage, store[self.output]), executed

    def __repr__(self) -> str:
        return f"NumpyStageRunner({self.stage.name})"


class NumpyBackend(Backend):
    name = "numpy"

    def compile_stage(self, stage) -> NumpyStageRunner:
        return NumpyStageRunner(stage)
