"""Stage-execution helpers shared by every backend.

A :class:`~repro.sdfg.pipeline.Stage` carries the layout permutations
its pipeline accumulated (``input_perms``/``output_perm``); every
backend presents the *original* layout to callers by permuting inputs on
the way in and inverting the output permutation on the way out.  The
helpers here implement that contract once.
"""

from __future__ import annotations

from typing import Dict, List, Mapping

import numpy as np

from ..graph import SDFG
from ..nodes import AccessNode
from ..transformations import apply_layout

__all__ = ["written_arrays", "stage_output", "select_stage_inputs", "restore_output"]


def written_arrays(sdfg: SDFG) -> List[str]:
    """Non-transient arrays written in any state (the graph's outputs)."""
    out: List[str] = []
    for st in sdfg.states:
        for _, v, d in st.edges():
            if (
                isinstance(v, AccessNode)
                and d.get("memlet") is not None
                and not sdfg.arrays[v.data].transient
                and v.data not in out
            ):
                out.append(v.data)
    return sorted(out)


def stage_output(stage) -> str:
    """The single written non-transient array of a stage (or raise)."""
    outputs = written_arrays(stage.sdfg)
    if len(outputs) != 1:
        raise ValueError(
            f"stage {stage.name!r} writes {outputs}; expected one output"
        )
    return outputs[0]


def select_stage_inputs(
    stage, arrays: Mapping[str, np.ndarray], output: str
) -> Dict[str, np.ndarray]:
    """Input arrays of a stage, permuted into the stage's layout."""
    inputs = {
        k: v
        for k, v in arrays.items()
        if k in stage.sdfg.arrays
        and not stage.sdfg.arrays[k].transient
        and k != output
    }
    return apply_layout(inputs, stage.input_perms)


def restore_output(stage, result: np.ndarray) -> np.ndarray:
    """Invert the stage's output permutation (back to original layout)."""
    if stage.output_perm is not None:
        result = np.transpose(result, np.argsort(stage.output_perm))
    return result
