"""Execution backends: pluggable lowering of SDFG stages to callables.

The paper's pipeline ends with DaCe *generating fast code* from the
optimized graph (§5); this package is the corresponding seam in our
reproduction.  A :class:`Backend` turns one pipeline
:class:`~repro.sdfg.pipeline.Stage` into a :class:`StageRunner` — a
callable executing the stage's SDFG on concrete numpy arrays, in the
caller's *original* data layout (the stage's accumulated layout
permutations are applied on the way in and inverted on the way out).

Two backends are registered:

``interpreter``
    Wraps the reference :class:`~repro.sdfg.interpreter.Interpreter`
    (sequential-loop semantics, the executable specification).
``numpy``
    Generates vectorized Python/numpy source from the graph
    (:mod:`repro.sdfg.backends.codegen`): map scopes whose tasklets carry
    declarative ``op`` annotations collapse into broadcast slice
    assignments, ``np.einsum`` contractions and ``np.add.at`` scatters;
    residual scopes become generated loop nests.  Orders of magnitude
    faster than interpretation, with an analytically derived
    :class:`~repro.sdfg.interpreter.ExecutionReport`.

Backend selection mirrors the spectral-grid engine convention
(``REPRO_ENGINE``): :func:`default_backend` honors the
``REPRO_SDFG_BACKEND`` environment variable and raises on invalid
values; the built-in default is ``numpy``.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Mapping, Optional, Tuple

import numpy as np

__all__ = [
    "Backend",
    "BackendError",
    "StageRunner",
    "SDFG_BACKENDS",
    "available_backends",
    "default_backend",
    "get_backend",
    "register_backend",
]


class BackendError(ValueError):
    """A stage cannot be lowered or executed by the requested backend."""


class StageRunner:
    """One stage compiled by a backend: a layout-aware callable.

    Calling a runner executes the stage on concrete inputs and returns
    ``(output, executed)`` where ``output`` is the single written
    non-transient array in the caller's original layout and ``executed``
    exposes an ``ExecutionReport`` as ``executed.report`` (the
    interpreter instance itself, or an analytic report for generated
    code).  ``source`` is the generated Python module text, or ``None``
    for backends that do not generate code.
    """

    #: generated source text (None when the backend interprets directly)
    source: Optional[str] = None

    def __call__(
        self,
        dims: Mapping[str, int],
        arrays: Mapping[str, np.ndarray],
        tables: Optional[Mapping[str, np.ndarray]] = None,
    ):
        raise NotImplementedError


class Backend:
    """A stage-lowering strategy.  Subclasses implement
    :meth:`compile_stage` and set :attr:`name`."""

    name: str = ""

    def compile_stage(self, stage) -> StageRunner:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


_REGISTRY: Dict[str, Callable[[], Backend]] = {}


def register_backend(name: str, factory: Callable[[], Backend]) -> None:
    """Register a backend factory under ``name`` (last wins)."""
    _REGISTRY[name] = factory


def available_backends() -> Tuple[str, ...]:
    """Names of all currently registered backends (built-in + custom)."""
    return tuple(_REGISTRY)


def get_backend(name: Optional[str] = None) -> Backend:
    """Instantiate a backend by name (``None`` → :func:`default_backend`)."""
    if name is None:
        name = default_backend()
    if name not in _REGISTRY:
        raise BackendError(
            f"unknown SDFG backend {name!r}; expected one of "
            f"{available_backends()}"
        )
    return _REGISTRY[name]()


def default_backend() -> str:
    """Backend used when none is requested explicitly.

    Overridable through the ``REPRO_SDFG_BACKEND`` environment variable
    (an explicitly set but unknown value raises, mirroring
    ``REPRO_ENGINE``); the built-in default is ``numpy``, which every
    pipeline compilation verifies against the reference kernel.
    """
    env = os.environ.get("REPRO_SDFG_BACKEND", "").strip().lower()
    if not env:
        return "numpy"
    if env not in _REGISTRY:
        raise BackendError(
            f"REPRO_SDFG_BACKEND={env!r} is not a valid backend; "
            f"expected one of {available_backends()}"
        )
    return env


from .interpreter import InterpreterBackend  # noqa: E402
from .codegen import NumpyBackend  # noqa: E402

register_backend("interpreter", InterpreterBackend)
register_backend("numpy", NumpyBackend)

#: The built-in execution backends of the SDFG layer (custom backends
#: added via :func:`register_backend` show up in :func:`available_backends`).
SDFG_BACKENDS: Tuple[str, ...] = ("interpreter", "numpy")
