"""The interpreter execution backend.

Wraps the reference :class:`~repro.sdfg.interpreter.Interpreter` behind
the :class:`~repro.sdfg.backends.Backend` protocol: sequential-loop
semantics, exact but slow — the oracle every generated backend is
checked against.
"""

from __future__ import annotations

from typing import Mapping, Optional

import numpy as np

from ..interpreter import Interpreter
from . import Backend, StageRunner
from .common import restore_output, select_stage_inputs, stage_output

__all__ = ["InterpreterBackend", "InterpreterStageRunner"]


class InterpreterStageRunner(StageRunner):
    """Executes one stage through a fresh :class:`Interpreter` per call."""

    source = None

    def __init__(self, stage):
        self.stage = stage
        self.output = stage_output(stage)

    def __call__(
        self,
        dims: Mapping[str, int],
        arrays: Mapping[str, np.ndarray],
        tables: Optional[Mapping[str, np.ndarray]] = None,
    ):
        stage = self.stage
        inputs = select_stage_inputs(stage, arrays, self.output)
        interp = Interpreter(stage.sdfg)
        store = interp.run(dims, inputs, tables=tables)
        return restore_output(stage, store[self.output]), interp

    def __repr__(self) -> str:
        return f"InterpreterStageRunner({self.stage.name})"


class InterpreterBackend(Backend):
    name = "interpreter"

    def compile_stage(self, stage) -> InterpreterStageRunner:
        return InterpreterStageRunner(stage)
