"""Data-centric quantum transport simulation.

A from-scratch Python reproduction of

    A. N. Ziogas, T. Ben-Nun, G. Indalecio Fernández, T. Schneider,
    M. Luisier, T. Hoefler: "Optimizing the Data Movement in Quantum
    Transport Simulations via Data-Centric Parallel Programming", SC'19.

Packages
--------
``repro.sdfg``
    Mini-DaCe: symbolic IR, interpreter, memlet propagation, transformations.
``repro.core``
    The paper's contribution: the SSE SDFG, the Fig. 9-12 transformation
    recipe, and the communication-avoiding distribution.
``repro.negf``
    The quantum-transport substrate: device structures, Hamiltonians,
    open boundaries, the recursive Green's function solver, scattering
    self-energies, and the self-consistent Born (GF <-> SSE) loop.
``repro.parallel``
    Simulated MPI, data decompositions, and the OMEN/DaCe SSE
    communication schedules as resident exchange objects.
``repro.runtime``
    The distributed SCBA runtime: a rank-parallel Born loop executing the
    SSE schedules in-loop over pluggable transports (in-process ``sim``
    with bit-exact byte accounting, forked-process ``pipe``).
``repro.model``
    Machine, performance (flop), communication-volume, and scaling models
    reproducing the paper's Tables 3-5, 8 and Fig. 13.
``repro.api``
    The public facade: declarative ``Workload`` → compiled ``Plan`` →
    executed ``Session`` (with sweeps as first-class axes and named
    scenario presets) — the canonical entry point for every scenario.
``repro.service``
    The multi-tenant scheduler above the facade: a cost-model-priced job
    queue, structural-affinity bin-packing onto shared rank pools, and a
    content-addressed result cache — many tenants, one machine.
``repro.analysis``
    Experiment drivers that regenerate every table/figure of the paper.
"""

__version__ = "1.1.0"

#: facade names re-exported lazily from :mod:`repro.api` (PEP 562), so
#: ``import repro`` stays cheap for the analysis-only modules
_API_EXPORTS = (
    "Workload",
    "DeviceSpec",
    "GridSpec",
    "PhysicsSpec",
    "SweepAxis",
    "Plan",
    "Session",
    "RunResult",
    "SweepResult",
    "compile_workload",
    "register_scenario",
    "scenario",
    "scenarios",
)

__all__ = ["__version__", *_API_EXPORTS]


def __getattr__(name):
    if name in _API_EXPORTS:
        from . import api

        return getattr(api, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
