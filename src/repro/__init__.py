"""Data-centric quantum transport simulation.

A from-scratch Python reproduction of

    A. N. Ziogas, T. Ben-Nun, G. Indalecio Fernández, T. Schneider,
    M. Luisier, T. Hoefler: "Optimizing the Data Movement in Quantum
    Transport Simulations via Data-Centric Parallel Programming", SC'19.

Packages
--------
``repro.sdfg``
    Mini-DaCe: symbolic IR, interpreter, memlet propagation, transformations.
``repro.core``
    The paper's contribution: the SSE SDFG, the Fig. 9-12 transformation
    recipe, and the communication-avoiding distribution.
``repro.negf``
    The quantum-transport substrate: device structures, Hamiltonians,
    open boundaries, the recursive Green's function solver, scattering
    self-energies, and the self-consistent Born (GF <-> SSE) loop.
``repro.parallel``
    A simulated-MPI runtime with the OMEN and DaCe communication schedules.
``repro.model``
    Machine, performance (flop), communication-volume, and scaling models
    reproducing the paper's Tables 3-5, 8 and Fig. 13.
``repro.analysis``
    Experiment drivers that regenerate every table/figure of the paper.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
