"""Simulated-MPI runtime, data decompositions, and SSE schedules."""

from .decomposition import (
    DaceDecomposition,
    OmenDecomposition,
    partition_spectral_grid,
)
from .schedules import DistributedSSEResult, dace_sse_phase, omen_sse_phase
from .simmpi import CommStats, SimComm

__all__ = [
    "DaceDecomposition",
    "OmenDecomposition",
    "partition_spectral_grid",
    "DistributedSSEResult",
    "dace_sse_phase",
    "omen_sse_phase",
    "CommStats",
    "SimComm",
]
