"""Simulated-MPI runtime, data decompositions, and SSE schedules."""

from .decomposition import (
    DaceDecomposition,
    OmenDecomposition,
    partition_spectral_grid,
)
from .schedules import (
    DaceExchange,
    DistributedSSEResult,
    LocalTransport,
    OmenExchange,
    RankSSEStore,
    dace_sse_phase,
    default_round_owner,
    omen_sse_phase,
)
from .simmpi import CommStats, SimComm

__all__ = [
    "DaceDecomposition",
    "OmenDecomposition",
    "partition_spectral_grid",
    "DistributedSSEResult",
    "RankSSEStore",
    "LocalTransport",
    "OmenExchange",
    "DaceExchange",
    "default_round_owner",
    "dace_sse_phase",
    "omen_sse_phase",
    "CommStats",
    "SimComm",
]
