"""A simulated MPI layer: in-process ranks with byte-accurate accounting.

The paper's communication schedules are executed on real machines with
MPI; here they run inside one process, but with the *actual data* moving
between per-rank stores and every transfer metered.  This makes the
distributed SSE results bit-comparable to the serial kernels while the
measured per-rank byte counts can be checked against the closed-form
volume models of §4.1 (see ``tests/test_parallel.py`` for the one-shot
schedules and ``tests/test_runtime.py`` for the distributed SCBA loop).

Supported operations mirror what the schedules and the distributed
runtime need: ``bcast``, ``sendrecv`` (point-to-point), ``alltoallv``,
``gather``, and ``reduce``/``allreduce`` (sum).  Counting conventions
match the paper's accounting: a broadcast charges every receiving rank
with the payload size; a reduction charges each contributing rank once;
an allreduce is charged as reduce + broadcast.  Transports that move the
data themselves (``repro.runtime.transport``) meter through the public
:meth:`SimComm.charge` entry point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from ..telemetry.metrics import meter_transfer

__all__ = ["CommStats", "SimComm"]


@dataclass
class CommStats:
    """Per-rank communication accounting."""

    sent_bytes: np.ndarray
    recv_bytes: np.ndarray
    messages: np.ndarray

    @property
    def P(self) -> int:
        return len(self.sent_bytes)

    @property
    def total_bytes(self) -> int:
        """Total volume: every byte is counted once at the receiver."""
        return int(self.recv_bytes.sum())

    @property
    def total_exchanged(self) -> int:
        """Paper-style accounting: sent + received."""
        return int(self.sent_bytes.sum() + self.recv_bytes.sum())

    def max_per_rank(self) -> int:
        return int((self.sent_bytes + self.recv_bytes).max())

    # -- arithmetic --------------------------------------------------------------
    def __add__(self, other: "CommStats") -> "CommStats":
        return CommStats(
            sent_bytes=self.sent_bytes + other.sent_bytes,
            recv_bytes=self.recv_bytes + other.recv_bytes,
            messages=self.messages + other.messages,
        )

    def scaled(self, n: int) -> "CommStats":
        """The stats of ``n`` identical repetitions (e.g. Born iterations)."""
        return CommStats(
            sent_bytes=n * self.sent_bytes,
            recv_bytes=n * self.recv_bytes,
            messages=n * self.messages,
        )

    def matches(self, other: "CommStats") -> bool:
        """Exact per-rank equality of byte and message counts."""
        return (
            np.array_equal(self.sent_bytes, other.sent_bytes)
            and np.array_equal(self.recv_bytes, other.recv_bytes)
            and np.array_equal(self.messages, other.messages)
        )

    # -- persistence (mirrors SCBAResult.to_dict/from_dict) ----------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict of exact per-rank integer counters.

        Round-trips exactly through :meth:`from_dict`, so runtime results
        and benchmark records (``BENCH_runtime.json``) can persist their
        per-rank byte accounting.
        """
        return {
            "sent_bytes": [int(v) for v in self.sent_bytes],
            "recv_bytes": [int(v) for v in self.recv_bytes],
            "messages": [int(v) for v in self.messages],
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "CommStats":
        return cls(
            sent_bytes=np.asarray(d["sent_bytes"], dtype=np.int64),
            recv_bytes=np.asarray(d["recv_bytes"], dtype=np.int64),
            messages=np.asarray(d["messages"], dtype=np.int64),
        )

    @classmethod
    def zeros(cls, P: int) -> "CommStats":
        return cls(
            sent_bytes=np.zeros(P, dtype=np.int64),
            recv_bytes=np.zeros(P, dtype=np.int64),
            messages=np.zeros(P, dtype=np.int64),
        )


class SimComm:
    """A communicator over ``P`` simulated ranks."""

    def __init__(self, P: int):
        if P < 1:
            raise ValueError("communicator needs at least one rank")
        self.P = P
        self.stats = CommStats.zeros(P)

    # -- accounting ----------------------------------------------------------
    def charge(self, src: int, dst: int, nbytes: int):
        """Meter one ``src -> dst`` transfer (self-sends are free).

        Public so transports that move the payloads themselves (the
        distributed runtime's sim/pipe transports) share one accounting
        convention with the collective operations below.  The actual
        bookkeeping lives in the single shared helper
        :func:`repro.telemetry.metrics.meter_transfer`, which also
        publishes the aggregate bytes to the metrics registry under
        ``REPRO_TELEMETRY=full``.
        """
        meter_transfer(self.stats, src, dst, nbytes)

    def reset(self):
        self.stats.sent_bytes[:] = 0
        self.stats.recv_bytes[:] = 0
        self.stats.messages[:] = 0

    def snapshot(self) -> CommStats:
        """A frozen copy of the current counters (for phase deltas)."""
        return CommStats(
            sent_bytes=self.stats.sent_bytes.copy(),
            recv_bytes=self.stats.recv_bytes.copy(),
            messages=self.stats.messages.copy(),
        )

    # -- operations ------------------------------------------------------------
    def bcast(self, root: int, value: np.ndarray) -> List[np.ndarray]:
        """Broadcast: every non-root rank receives a copy."""
        out: List[np.ndarray] = []
        for r in range(self.P):
            if r == root:
                out.append(value)
            else:
                self.charge(root, r, value.nbytes)
                out.append(value.copy())
        return out

    def sendrecv(self, src: int, dst: int, value: np.ndarray) -> np.ndarray:
        """Point-to-point transfer of a numpy array."""
        self.charge(src, dst, value.nbytes)
        return value.copy() if src != dst else value

    def alltoallv(
        self, sendbufs: Sequence[Sequence[Optional[np.ndarray]]]
    ) -> List[List[Optional[np.ndarray]]]:
        """``recv[j][i] = send[i][j]``; ``None`` entries move nothing."""
        if len(sendbufs) != self.P:
            raise ValueError("alltoallv needs one send list per rank")
        recv: List[List[Optional[np.ndarray]]] = [
            [None] * self.P for _ in range(self.P)
        ]
        for i, row in enumerate(sendbufs):
            if len(row) != self.P:
                raise ValueError(f"rank {i} send list has wrong length")
            for j, buf in enumerate(row):
                if buf is None:
                    continue
                self.charge(i, j, buf.nbytes)
                recv[j][i] = buf.copy() if i != j else buf
        return recv

    def gather(self, root: int, values: Sequence[np.ndarray]) -> List[np.ndarray]:
        """Collect one array per rank at the root (each contributor charged)."""
        if len(values) != self.P:
            raise ValueError("gather needs one contribution per rank")
        out: List[np.ndarray] = []
        for r, v in enumerate(values):
            self.charge(r, root, v.nbytes)
            out.append(v.copy() if r != root else v)
        return out

    def reduce_sum(
        self, root: int, contributions: Sequence[np.ndarray]
    ) -> np.ndarray:
        """Sum per-rank arrays onto the root (each contributor charged)."""
        if len(contributions) != self.P:
            raise ValueError("reduce needs one contribution per rank")
        total = np.zeros_like(contributions[root])
        for r, c in enumerate(contributions):
            self.charge(r, root, c.nbytes)
            total = total + c
        return total

    def allreduce_sum(self, contributions: Sequence[np.ndarray]) -> np.ndarray:
        """Reduce-sum visible on all ranks (charged as reduce + bcast)."""
        total = self.reduce_sum(0, contributions)
        self.bcast(0, total)
        return total
