"""A simulated MPI layer: in-process ranks with byte-accurate accounting.

The paper's communication schedules are executed on real machines with
MPI; here they run inside one process, but with the *actual data* moving
between per-rank stores and every transfer metered.  This makes the
distributed SSE results bit-comparable to the serial kernels while the
measured per-rank byte counts can be checked against the closed-form
volume models of §4.1 (see ``tests/test_schedules.py``).

Supported operations mirror what the two schedules need: ``bcast``,
``sendrecv`` (point-to-point), ``alltoallv``, and ``reduce`` (sum).
Counting conventions match the paper's accounting: a broadcast charges
every receiving rank with the payload size; a reduction charges each
contributing rank once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

__all__ = ["CommStats", "SimComm"]


@dataclass
class CommStats:
    """Per-rank communication accounting."""

    sent_bytes: np.ndarray
    recv_bytes: np.ndarray
    messages: np.ndarray

    @property
    def total_bytes(self) -> int:
        """Total volume: every byte is counted once at the receiver."""
        return int(self.recv_bytes.sum())

    @property
    def total_exchanged(self) -> int:
        """Paper-style accounting: sent + received."""
        return int(self.sent_bytes.sum() + self.recv_bytes.sum())

    def max_per_rank(self) -> int:
        return int((self.sent_bytes + self.recv_bytes).max())


class SimComm:
    """A communicator over ``P`` simulated ranks."""

    def __init__(self, P: int):
        if P < 1:
            raise ValueError("communicator needs at least one rank")
        self.P = P
        self.stats = CommStats(
            sent_bytes=np.zeros(P, dtype=np.int64),
            recv_bytes=np.zeros(P, dtype=np.int64),
            messages=np.zeros(P, dtype=np.int64),
        )

    # -- accounting ----------------------------------------------------------
    def _charge(self, src: int, dst: int, nbytes: int):
        if src == dst:
            return  # local copies are free (no network)
        self.stats.sent_bytes[src] += nbytes
        self.stats.recv_bytes[dst] += nbytes
        self.stats.messages[src] += 1

    def reset(self):
        self.stats.sent_bytes[:] = 0
        self.stats.recv_bytes[:] = 0
        self.stats.messages[:] = 0

    # -- operations ------------------------------------------------------------
    def bcast(self, root: int, value: np.ndarray) -> List[np.ndarray]:
        """Broadcast: every non-root rank receives a copy."""
        out: List[np.ndarray] = []
        for r in range(self.P):
            if r == root:
                out.append(value)
            else:
                self._charge(root, r, value.nbytes)
                out.append(value.copy())
        return out

    def sendrecv(self, src: int, dst: int, value: np.ndarray) -> np.ndarray:
        """Point-to-point transfer of a numpy array."""
        self._charge(src, dst, value.nbytes)
        return value.copy() if src != dst else value

    def alltoallv(
        self, sendbufs: Sequence[Sequence[Optional[np.ndarray]]]
    ) -> List[List[Optional[np.ndarray]]]:
        """``recv[j][i] = send[i][j]``; ``None`` entries move nothing."""
        if len(sendbufs) != self.P:
            raise ValueError("alltoallv needs one send list per rank")
        recv: List[List[Optional[np.ndarray]]] = [
            [None] * self.P for _ in range(self.P)
        ]
        for i, row in enumerate(sendbufs):
            if len(row) != self.P:
                raise ValueError(f"rank {i} send list has wrong length")
            for j, buf in enumerate(row):
                if buf is None:
                    continue
                self._charge(i, j, buf.nbytes)
                recv[j][i] = buf.copy() if i != j else buf
        return recv

    def reduce_sum(
        self, root: int, contributions: Sequence[np.ndarray]
    ) -> np.ndarray:
        """Sum per-rank arrays onto the root (each contributor charged)."""
        if len(contributions) != self.P:
            raise ValueError("reduce needs one contribution per rank")
        total = np.zeros_like(contributions[root])
        for r, c in enumerate(contributions):
            self._charge(r, root, c.nbytes)
            total = total + c
        return total

    def allreduce_sum(self, contributions: Sequence[np.ndarray]) -> np.ndarray:
        """Reduce-sum visible on all ranks (charged as reduce + bcast)."""
        total = self.reduce_sum(0, contributions)
        self.bcast(0, total)
        return total
