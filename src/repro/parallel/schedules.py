"""Executable SSE communication schedules (paper §4.1) on simulated MPI.

Both schedules move the *actual* Green's-function data between per-rank
stores and compute the *actual* scattering self-energies, so their results
are directly comparable (bit-level, up to float summation order) with the
serial kernels of :mod:`repro.negf.sse` while
:class:`~repro.parallel.simmpi.SimComm` meters every transferred byte.

**OMEN schedule** — ``Nqz*Nw`` rounds; in each round the phonon GF
``D≷(qz, ω)`` is broadcast, every rank receives the shifted electron GF
windows ``G≷(E∓ω, kz-qz)`` it needs (4 windows: lesser/greater x
emission/absorption — the paper's "replicated 2·Nqz·Nω times"), computes
its Σ contribution locally, and the partial ``Π≷(qz, ω)`` are reduced to
their owner.

**DaCe schedule** — a single ``alltoallv`` redistributes ``G≷`` from the
GF layout (momentum x energy) into ``TE x TA`` tiles with ``±Nω`` energy
halo and neighbor-closure atom halo; each rank runs the transformed
(∇H·G-reuse) kernel on its tile; Σ≷ tiles return with a second
``alltoallv`` and Π≷ partials are reduced.

Physics conventions follow :func:`repro.negf.sse.sigma_sse`: zero-padded
energy axis, periodic momentum, emission+absorption pairing
(Σ< ~ G<(E-ω)D< + G<(E+ω)D>).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from .decomposition import DaceDecomposition, OmenDecomposition
from .simmpi import CommStats, SimComm

__all__ = ["DistributedSSEResult", "omen_sse_phase", "dace_sse_phase"]


@dataclass
class DistributedSSEResult:
    """Assembled self-energies plus communication statistics."""

    Sigma_l: np.ndarray
    Sigma_g: np.ndarray
    Pi_l: np.ndarray
    Pi_g: np.ndarray
    stats: CommStats


def _hd(Dc_qw: np.ndarray, dH: np.ndarray) -> np.ndarray:
    """``Σ_j dH[a,b,j] * Dcomb[a,b,i,j]`` for one (qz, ω) -> [a,b,i,x,y]."""
    return np.einsum("abij,abjxy->abixy", Dc_qw, dH, optimize=True)


def _sigma_contrib(
    G_rows: np.ndarray, hd_rows: np.ndarray, dH: np.ndarray, neigh: np.ndarray
) -> np.ndarray:
    """Σ contribution for aligned source rows: [E, a, x, z].

    ``G_rows``: shifted GF ``[E, NA_src, No, No]`` (already at kz-qz and
    E∓ω); ``hd_rows``: ``[a, b, i, No, No]``.
    """
    gh = np.einsum(
        "Eabxy,abiyz->Eabixz", G_rows[:, neigh], dH, optimize=True
    )
    return np.einsum("Eabixy,abiyz->Eaxz", gh, hd_rows, optimize=True)


def _pi_contrib(
    G_own_rows: np.ndarray,
    G_recv_rows: np.ndarray,
    dH: np.ndarray,
    dH_ba: np.ndarray,
    neigh: np.ndarray,
) -> np.ndarray:
    """Bond-resolved Π contribution ``[a, b, i, j]`` for aligned rows.

    ``G_own_rows``: ``G≷`` at ``(kz+qz, E+ω)`` (the rank's own rows play
    the shifted role); ``G_recv_rows``: ``G≶`` at ``(kz, E)``.
    """
    return np.einsum(
        "abixy,Eayz,abjzu,Eabux->abij",
        dH_ba,
        G_own_rows,
        dH,
        G_recv_rows[:, neigh],
        optimize=True,
    )


# --------------------------------------------------------------------------
# OMEN schedule
# --------------------------------------------------------------------------
def omen_sse_phase(
    comm: SimComm,
    decomp: OmenDecomposition,
    Gl: np.ndarray,
    Gg: np.ndarray,
    dH: np.ndarray,
    Dcl: np.ndarray,
    Dcg: np.ndarray,
    neigh: np.ndarray,
    rev: np.ndarray,
) -> DistributedSSEResult:
    """The momentum x energy decomposition with per-(qz, ω) rounds."""
    Nkz, NE, NA, No, _ = Gl.shape
    Nqz, Nw, _, NB = Dcl.shape[:4]
    P = comm.P

    Sigma_l = np.zeros_like(Gl)
    Sigma_g = np.zeros_like(Gg)
    Pi_shape = (Nqz, Nw, NA, NB + 1, dH.shape[2], dH.shape[2])
    Pi_l = np.zeros(Pi_shape, dtype=np.complex128)
    Pi_g = np.zeros(Pi_shape, dtype=np.complex128)
    dH_ba = dH[neigh, rev]

    for q in range(Nqz):
        for w in range(Nw):
            round_idx = q * Nw + w
            d_owner = round_idx % P
            # Broadcast the phonon GF of this round (both ≷ components).
            d_pack = np.stack([Dcl[q, w], Dcg[q, w]])
            d_copies = comm.bcast(d_owner, d_pack)

            pi_l_parts: List[np.ndarray] = []
            pi_g_parts: List[np.ndarray] = []
            for rank in range(P):
                k, _ = decomp.coords(rank)
                esl = decomp.energy_slice(rank)
                ks = (k - q) % Nkz
                hd_l = _hd(d_copies[rank][0], dH)
                hd_g = _hd(d_copies[rank][1], dH)

                # Emission window: G(E-ω) for E in the chunk.
                em_lo, em_hi = max(0, esl.start - w), max(0, esl.stop - w)
                dst_em = slice(esl.stop - (em_hi - em_lo), esl.stop)
                # Absorption window: G(E+ω).
                ab_lo, ab_hi = min(NE, esl.start + w), min(NE, esl.stop + w)
                dst_ab = slice(esl.start, esl.start + (ab_hi - ab_lo))

                G_em_l = _gather_window(comm, decomp, Gl, ks, em_lo, em_hi, rank)
                G_em_g = _gather_window(comm, decomp, Gg, ks, em_lo, em_hi, rank)
                G_ab_l = _gather_window(comm, decomp, Gl, ks, ab_lo, ab_hi, rank)
                G_ab_g = _gather_window(comm, decomp, Gg, ks, ab_lo, ab_hi, rank)

                if em_hi > em_lo:
                    Sigma_l[k, dst_em] += _sigma_contrib(G_em_l, hd_l, dH, neigh)
                    Sigma_g[k, dst_em] += _sigma_contrib(G_em_g, hd_g, dH, neigh)
                if ab_hi > ab_lo:
                    Sigma_l[k, dst_ab] += _sigma_contrib(G_ab_l, hd_g, dH, neigh)
                    Sigma_g[k, dst_ab] += _sigma_contrib(G_ab_g, hd_l, dH, neigh)

                # Π partials: own rows are the shifted (E+ω, kz+qz) points,
                # paired with the emission-window data already received.
                own = slice(dst_em.start, dst_em.stop)
                pl = np.zeros(Pi_shape[2:], dtype=np.complex128)
                pg = np.zeros(Pi_shape[2:], dtype=np.complex128)
                if em_hi > em_lo:
                    off_l = _pi_contrib(Gl[k, own], G_em_g, dH, dH_ba, neigh)
                    off_g = _pi_contrib(Gg[k, own], G_em_l, dH, dH_ba, neigh)
                    pl[:, 1:] += off_l
                    pl[:, 0] -= off_l.sum(axis=1)
                    pg[:, 1:] += off_g
                    pg[:, 0] -= off_g.sum(axis=1)
                pi_l_parts.append(pl)
                pi_g_parts.append(pg)

            Pi_l[q, w] = comm.reduce_sum(d_owner, pi_l_parts)
            Pi_g[q, w] = comm.reduce_sum(d_owner, pi_g_parts)

    return DistributedSSEResult(Sigma_l, Sigma_g, Pi_l, Pi_g, comm.stats)


def _gather_window(
    comm: SimComm,
    decomp: OmenDecomposition,
    G: np.ndarray,
    ks: int,
    lo: int,
    hi: int,
    dst_rank: int,
) -> np.ndarray:
    """Receive ``G[ks, lo:hi]`` from its owners via point-to-point sends."""
    if hi <= lo:
        return G[ks, 0:0]
    pieces = []
    e = lo
    while e < hi:
        owner = decomp.owner_of_energy(ks, e)
        stop = min(hi, (e // decomp.chunk + 1) * decomp.chunk)
        pieces.append(comm.sendrecv(owner, dst_rank, G[ks, e:stop]))
        e = stop
    return np.concatenate(pieces, axis=0) if len(pieces) > 1 else pieces[0]


# --------------------------------------------------------------------------
# DaCe schedule
# --------------------------------------------------------------------------
def dace_sse_phase(
    comm: SimComm,
    gf_decomp: OmenDecomposition,
    sse_decomp: DaceDecomposition,
    Gl: np.ndarray,
    Gg: np.ndarray,
    dH: np.ndarray,
    Dcl: np.ndarray,
    Dcg: np.ndarray,
    neigh: np.ndarray,
    rev: np.ndarray,
) -> DistributedSSEResult:
    """The communication-avoiding TE x TA tile schedule."""
    if comm.P != gf_decomp.P or comm.P != sse_decomp.P:
        raise ValueError("communicator and decompositions disagree on P")
    Nkz, NE, NA, No, _ = Gl.shape
    Nqz, Nw, _, NB = Dcl.shape[:4]
    P = comm.P
    N3D = dH.shape[2]
    dH_ba = dH[neigh, rev]

    # ---- Phase A: GF layout -> SSE tiles (one alltoallv) --------------------
    windows = [sse_decomp.energy_window(j) for j in range(P)]
    closures = [sse_decomp.atom_closure(j, neigh) for j in range(P)]
    sendbufs: List[List[Optional[np.ndarray]]] = [
        [None] * P for _ in range(P)
    ]
    for i in range(P):
        k, _ = gf_decomp.coords(i)
        esl = gf_decomp.energy_slice(i)
        for j in range(P):
            win = windows[j]
            lo, hi = max(esl.start, win.start), min(esl.stop, win.stop)
            if hi <= lo:
                continue
            ext = closures[j]
            # Both ≷ tensors travel together.
            sendbufs[i][j] = np.stack(
                [Gl[k, lo:hi][:, ext], Gg[k, lo:hi][:, ext]]
            )
    recv = comm.alltoallv(sendbufs)

    # Each SSE rank assembles G_ext[2, Nkz, win, ext, No, No].
    G_ext: List[np.ndarray] = []
    for j in range(P):
        win, ext = windows[j], closures[j]
        buf = np.zeros(
            (2, Nkz, win.stop - win.start, len(ext), No, No), dtype=np.complex128
        )
        for i in range(P):
            if recv[j][i] is None:
                continue
            k, _ = gf_decomp.coords(i)
            esl = gf_decomp.energy_slice(i)
            lo = max(esl.start, win.start)
            hi = min(esl.stop, win.stop)
            buf[:, k, lo - win.start : hi - win.start] = recv[j][i]
        G_ext.append(buf)

    # The phonon GFs reach each tile from their owner (rank 0 store).
    d_tiles: List[np.ndarray] = []
    for j in range(P):
        tile = sse_decomp.atom_tile(j)
        pack = np.stack([Dcl[:, :, tile], Dcg[:, :, tile]])
        d_tiles.append(comm.sendrecv(0, j, pack))

    # ---- Phase B: local transformed kernel ------------------------------------
    sigma_tiles: List[np.ndarray] = []
    pi_parts_l: List[np.ndarray] = []
    pi_parts_g: List[np.ndarray] = []
    pi_shape = (Nqz, Nw, NA, NB + 1, N3D, N3D)
    for j in range(P):
        win, ext = windows[j], closures[j]
        lookup = sse_decomp.local_index(ext)
        tile = sse_decomp.atom_tile(j)
        etile = sse_decomp.energy_tile(j)
        tl = lookup[tile]  # tile atoms in local coords
        f_local = lookup[neigh[tile]]  # (a_tile, NB) local neighbor idx
        Gle, Gge = G_ext[j][0], G_ext[j][1]
        Dcl_t, Dcg_t = d_tiles[j][0], d_tiles[j][1]
        dH_t, dH_ba_t = dH[tile], dH_ba[tile]
        neigh_loc = f_local

        # ∇H·G computed ONCE per tile over the whole halo window (the
        # transformed algorithm's reuse; contrast with the OMEN rounds).
        gh_l = np.einsum(
            "kEabxy,abiyz->kEabixz", Gle[:, :, neigh_loc], dH_t, optimize=True
        )
        gh_g = np.einsum(
            "kEabxy,abiyz->kEabixz", Gge[:, :, neigh_loc], dH_t, optimize=True
        )

        n_et = etile.stop - etile.start
        sig = np.zeros((2, Nkz, n_et, len(tile), No, No), dtype=np.complex128)
        pl = np.zeros(pi_shape, dtype=np.complex128)
        pg = np.zeros(pi_shape, dtype=np.complex128)
        for q in range(Nqz):
            ghq_l = np.roll(gh_l, q, axis=0)
            ghq_g = np.roll(gh_g, q, axis=0)
            Glq = np.roll(Gle, q, axis=0)
            Ggq = np.roll(Gge, q, axis=0)
            for w in range(Nw):
                hd_l = _hd(Dcl_t[q, w], dH_t)
                hd_g = _hd(Dcg_t[q, w], dH_t)
                # Emission: rows E-w for E in the tile (zero-padded).
                em_lo = max(0, etile.start - w)
                em_hi = max(0, etile.stop - w)
                dst_em = slice(n_et - (em_hi - em_lo), n_et)
                src_em = slice(em_lo - win.start, em_hi - win.start)
                # Absorption: rows E+w.
                ab_lo = min(NE, etile.start + w)
                ab_hi = min(NE, etile.stop + w)
                dst_ab = slice(0, ab_hi - ab_lo)
                src_ab = slice(ab_lo - win.start, ab_hi - win.start)

                if em_hi > em_lo:
                    sig[0, :, dst_em] += np.einsum(
                        "kEabixy,abiyz->kEaxz", ghq_l[:, src_em], hd_l, optimize=True
                    )
                    sig[1, :, dst_em] += np.einsum(
                        "kEabixy,abiyz->kEaxz", ghq_g[:, src_em], hd_g, optimize=True
                    )
                if ab_hi > ab_lo:
                    sig[0, :, dst_ab] += np.einsum(
                        "kEabixy,abiyz->kEaxz", ghq_l[:, src_ab], hd_g, optimize=True
                    )
                    sig[1, :, dst_ab] += np.einsum(
                        "kEabixy,abiyz->kEaxz", ghq_g[:, src_ab], hd_l, optimize=True
                    )

                # Π partials over (tile atoms, own E rows E''=E+w).
                own = slice(
                    etile.start - win.start + (n_et - (em_hi - em_lo)),
                    etile.stop - win.start,
                )
                if em_hi > em_lo:
                    for k in range(Nkz):
                        off_l = _pi_contrib(
                            Gle[k, own][:, tl],
                            Ggq[k, src_em],
                            dH_t,
                            dH_ba_t,
                            neigh_loc,
                        )
                        off_g = _pi_contrib(
                            Gge[k, own][:, tl],
                            Glq[k, src_em],
                            dH_t,
                            dH_ba_t,
                            neigh_loc,
                        )
                        pl[q, w, tile, 1:] += off_l
                        pl[q, w, tile, 0] -= off_l.sum(axis=1)
                        pg[q, w, tile, 1:] += off_g
                        pg[q, w, tile, 0] -= off_g.sum(axis=1)
        sigma_tiles.append(sig)
        pi_parts_l.append(pl)
        pi_parts_g.append(pg)

    # ---- Phase C: Σ tiles back to the GF layout, Π reduced --------------------
    sendbufs2: List[List[Optional[np.ndarray]]] = [
        [None] * P for _ in range(P)
    ]
    for j in range(P):
        etile = sse_decomp.energy_tile(j)
        for i in range(P):
            esl = gf_decomp.energy_slice(i)
            k, _ = gf_decomp.coords(i)
            lo, hi = max(esl.start, etile.start), min(esl.stop, etile.stop)
            if hi <= lo:
                continue
            sendbufs2[j][i] = sigma_tiles[j][
                :, k, lo - etile.start : hi - etile.start
            ]
    recv2 = comm.alltoallv(sendbufs2)

    Sigma_l = np.zeros_like(Gl)
    Sigma_g = np.zeros_like(Gg)
    for i in range(P):
        k, _ = gf_decomp.coords(i)
        esl = gf_decomp.energy_slice(i)
        for j in range(P):
            if recv2[i][j] is None:
                continue
            etile = sse_decomp.energy_tile(j)
            tile = sse_decomp.atom_tile(j)
            lo, hi = max(esl.start, etile.start), min(esl.stop, etile.stop)
            piece = recv2[i][j]  # (2, nE, n_tile, No, No)
            Sigma_l[k, lo:hi][:, tile] += piece[0]
            Sigma_g[k, lo:hi][:, tile] += piece[1]

    Pi_l = comm.reduce_sum(0, pi_parts_l)
    Pi_g = comm.reduce_sum(0, pi_parts_g)
    return DistributedSSEResult(Sigma_l, Sigma_g, Pi_l, Pi_g, comm.stats)
