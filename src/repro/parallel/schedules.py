"""Executable SSE communication schedules (paper §4.1) on simulated MPI.

Both schedules move the *actual* Green's-function data between per-rank
stores and compute the *actual* scattering self-energies, so their results
are directly comparable (bit-level, up to float summation order) with the
serial kernels of :mod:`repro.negf.sse` while every transferred byte is
metered (see ``tests/test_parallel.py``).

The schedules are *resident exchange objects* — :class:`OmenExchange` and
:class:`DaceExchange` hold the decomposition, the communication plan, and
the phonon-row ownership map, and execute one Σ≷/Π≷ exchange per call
against per-rank :class:`RankSSEStore` stores reached through a transport
(``call``/``call_all``/``charge``).  This is what lets the distributed
SCBA runtime (:mod:`repro.runtime`) run the exchange *inside* the Born
loop, including the Π≷/D≷ feedback path: Π≷ rows are reduced to their
(qz, ω) owners, which solve the phonon Green's functions feeding the next
iteration's rounds.  The one-shot :func:`omen_sse_phase` /
:func:`dace_sse_phase` entry points are thin wrappers instantiating the
exchange over array-backed stores.

**OMEN schedule** — ``Nqz*Nw`` rounds; in each round the phonon GF
``D≷(qz, ω)`` is broadcast from its owner, every rank receives the
shifted electron GF windows ``G≷(E∓ω, kz-qz)`` it needs (lesser/greater x
emission/absorption — the paper's "replicated 2·Nqz·Nω times"), computes
its Σ contribution locally, and the partial ``Π≷(qz, ω)`` are reduced to
their owner.

**DaCe schedule** — a single ``alltoallv`` redistributes ``G≷`` from the
GF layout (momentum x energy) into ``TE x TA`` tiles with ``±Nω`` energy
halo and neighbor-closure atom halo; each rank runs the transformed
(∇H·G-reuse) kernel on its tile; Σ≷ tiles return with a second
``alltoallv`` and Π≷ partials (restricted to each rank's atom tile) are
reduced to the row owners.

Physics conventions follow :func:`repro.negf.sse.sigma_sse`: zero-padded
energy axis, periodic momentum, emission+absorption pairing
(Σ< ~ G<(E-ω)D< + G<(E+ω)D>).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .decomposition import DaceDecomposition, OmenDecomposition
from .simmpi import CommStats, SimComm

__all__ = [
    "DistributedSSEResult",
    "RankSSEStore",
    "LocalTransport",
    "OmenExchange",
    "DaceExchange",
    "default_round_owner",
    "omen_sse_phase",
    "dace_sse_phase",
]


@dataclass
class DistributedSSEResult:
    """Assembled self-energies plus communication statistics."""

    Sigma_l: np.ndarray
    Sigma_g: np.ndarray
    Pi_l: np.ndarray
    Pi_g: np.ndarray
    stats: CommStats


def default_round_owner(Nw: int, P: int) -> Callable[[int, int], int]:
    """Round-robin ownership of the (qz, ω) phonon rows: ``(q*Nw + w) % P``.

    The owner broadcasts ``D≷(qz, ω)`` in its OMEN round, receives the
    reduced ``Π≷(qz, ω)``, and — in the distributed runtime — solves that
    row's phonon Green's function for the next Born iteration.
    """
    return lambda q, w: (q * Nw + w) % P


def _hd(Dc_qw: np.ndarray, dH: np.ndarray) -> np.ndarray:
    """``Σ_j dH[a,b,j] * Dcomb[a,b,i,j]`` for one (qz, ω) -> [a,b,i,x,y]."""
    return np.einsum("abij,abjxy->abixy", Dc_qw, dH, optimize=True)


def _sigma_contrib(
    G_rows: np.ndarray, hd_rows: np.ndarray, dH: np.ndarray, neigh: np.ndarray
) -> np.ndarray:
    """Σ contribution for aligned source rows: [E, a, x, z].

    ``G_rows``: shifted GF ``[E, NA_src, No, No]`` (already at kz-qz and
    E∓ω); ``hd_rows``: ``[a, b, i, No, No]``.
    """
    gh = np.einsum(
        "Eabxy,abiyz->Eabixz", G_rows[:, neigh], dH, optimize=True
    )
    return np.einsum("Eabixy,abiyz->Eaxz", gh, hd_rows, optimize=True)


def _pi_contrib(
    G_own_rows: np.ndarray,
    G_recv_rows: np.ndarray,
    dH: np.ndarray,
    dH_ba: np.ndarray,
    neigh: np.ndarray,
) -> np.ndarray:
    """Bond-resolved Π contribution ``[a, b, i, j]`` for aligned rows.

    ``G_own_rows``: ``G≷`` at ``(kz+qz, E+ω)`` (the rank's own rows play
    the shifted role); ``G_recv_rows``: ``G≶`` at ``(kz, E)``.
    """
    return np.einsum(
        "abixy,Eayz,abjzu,Eabux->abij",
        dH_ba,
        G_own_rows,
        dH,
        G_recv_rows[:, neigh],
        optimize=True,
    )


# --------------------------------------------------------------------------
# Per-rank store: shard state + the rank-local SSE compute steps
# --------------------------------------------------------------------------
class RankSSEStore:
    """One rank's G≷/D≷ shard plus the SSE compute steps of the schedules.

    The exchange objects talk to ranks exclusively through this protocol
    (via a transport's ``call``), so the same schedule logic drives both
    the one-shot array-backed stores below and the resident
    :class:`repro.runtime.RankWorker` processes of the distributed SCBA
    loop.

    Shard layout: the rank owns the ``(k, esl)`` electron rows of an
    :class:`~repro.parallel.decomposition.OmenDecomposition`
    (``Gl``/``Gg`` of shape ``[nE_local, NA, No, No]``) and the combined
    phonon rows ``Dc[(q, w)] = [2, NA, NB, N3D, N3D]`` assigned by the
    round-owner map.
    """

    def __init__(
        self,
        rank: int,
        k: int,
        esl: slice,
        NE: int,
        dH: np.ndarray,
        neigh: np.ndarray,
        rev: np.ndarray,
    ):
        self.rank = rank
        self.k = k
        self.esl = esl
        self.NE = NE
        self.dH = dH
        self.neigh = neigh
        self.rev = rev
        self.dH_ba = dH[neigh, rev]
        self.NA, self.NB = neigh.shape
        self.N3D = dH.shape[2]
        self.Norb = dH.shape[-1]
        #: electron shard [nE_local, NA, No, No] (set by owner code)
        self.Gl: Optional[np.ndarray] = None
        self.Gg: Optional[np.ndarray] = None
        #: combined phonon rows this rank owns: {(q, w): [2, NA, NB, N3D, N3D]}
        self.Dc: Dict[Tuple[int, int], np.ndarray] = {}
        #: raw (unscaled) Σ≷ accumulators of the running exchange
        self._acc_Sl: Optional[np.ndarray] = None
        self._acc_Sg: Optional[np.ndarray] = None
        #: raw reduced Π≷ rows of the running exchange (owned rows only)
        self.pi_raw: Dict[Tuple[int, int], Tuple[np.ndarray, np.ndarray]] = {}

    @property
    def n_local(self) -> int:
        return self.esl.stop - self.esl.start

    def sse_begin(self) -> None:
        """Zero the Σ accumulators and Π rows for a fresh exchange."""
        shape = (self.n_local, self.NA, self.Norb, self.Norb)
        self._acc_Sl = np.zeros(shape, dtype=np.complex128)
        self._acc_Sg = np.zeros(shape, dtype=np.complex128)
        self.pi_raw = {}

    # -- shard access (both ≷ components travel together) ----------------------
    def g_rows(self, lo: int, hi: int) -> np.ndarray:
        """``[2, hi-lo, NA, No, No]`` stacked G≶/G≷ rows (global energies)."""
        sl = slice(lo - self.esl.start, hi - self.esl.start)
        return np.stack([self.Gl[sl], self.Gg[sl]])

    # -- OMEN steps ------------------------------------------------------------
    def omen_d_round(self, q: int, w: int) -> np.ndarray:
        """The owned combined phonon row of one round."""
        return self.Dc[(q, w)]

    def omen_apply_round(
        self,
        q: int,
        w: int,
        d_pack: np.ndarray,
        G_em: Optional[np.ndarray],
        G_ab: Optional[np.ndarray],
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Consume one round's windows: accumulate Σ, return Π partials."""
        esl, NE, n = self.esl, self.NE, self.n_local
        hd_l = _hd(d_pack[0], self.dH)
        hd_g = _hd(d_pack[1], self.dH)

        # Emission window: G(E-ω) for E in the chunk.
        em_lo, em_hi = max(0, esl.start - w), max(0, esl.stop - w)
        dst_em = slice(n - (em_hi - em_lo), n)
        # Absorption window: G(E+ω).
        ab_lo, ab_hi = min(NE, esl.start + w), min(NE, esl.stop + w)
        dst_ab = slice(0, ab_hi - ab_lo)

        if em_hi > em_lo:
            self._acc_Sl[dst_em] += _sigma_contrib(
                G_em[0], hd_l, self.dH, self.neigh
            )
            self._acc_Sg[dst_em] += _sigma_contrib(
                G_em[1], hd_g, self.dH, self.neigh
            )
        if ab_hi > ab_lo:
            self._acc_Sl[dst_ab] += _sigma_contrib(
                G_ab[0], hd_g, self.dH, self.neigh
            )
            self._acc_Sg[dst_ab] += _sigma_contrib(
                G_ab[1], hd_l, self.dH, self.neigh
            )

        # Π partials: own rows are the shifted (E+ω, kz+qz) points, paired
        # with the emission-window data already received.
        shape = (self.NA, self.NB + 1, self.N3D, self.N3D)
        pl = np.zeros(shape, dtype=np.complex128)
        pg = np.zeros(shape, dtype=np.complex128)
        if em_hi > em_lo:
            off_l = _pi_contrib(
                self.Gl[dst_em], G_em[1], self.dH, self.dH_ba, self.neigh
            )
            off_g = _pi_contrib(
                self.Gg[dst_em], G_em[0], self.dH, self.dH_ba, self.neigh
            )
            pl[:, 1:] += off_l
            pl[:, 0] -= off_l.sum(axis=1)
            pg[:, 1:] += off_g
            pg[:, 0] -= off_g.sum(axis=1)
        return pl, pg

    def store_pi_round(self, q: int, w: int, pl: np.ndarray, pg: np.ndarray):
        """Owner-side: keep the reduced raw Π≷ row of one round."""
        self.pi_raw[(q, w)] = (pl, pg)

    # -- DaCe steps --------------------------------------------------------------
    def dace_g_blocks(
        self, plan: Sequence[Tuple[int, int, np.ndarray]]
    ) -> List[np.ndarray]:
        """Slice the own shard for the first alltoallv: one block per target.

        ``plan`` entries are ``(lo, hi, ext)``: global energy overlap with
        the target's halo window and its atom closure.
        """
        out = []
        for lo, hi, ext in plan:
            sl = slice(lo - self.esl.start, hi - self.esl.start)
            out.append(np.stack([self.Gl[sl][:, ext], self.Gg[sl][:, ext]]))
        return out

    def dace_d_rows(
        self, rows: Sequence[Tuple[int, int]], tiles: Sequence[np.ndarray]
    ) -> List[np.ndarray]:
        """Owned combined phonon rows sliced to every rank's atom tile."""
        return [
            np.stack([self.Dc[(q, w)][:, tile] for (q, w) in rows], axis=1)
            for tile in tiles
        ]

    def dace_compute(
        self,
        spec: Dict,
        g_blocks: Sequence[Tuple[int, int, int, np.ndarray]],
        d_pack: np.ndarray,
    ):
        """Run the transformed (∇H·G-reuse) kernel on this rank's tile.

        ``spec`` carries the tile geometry; ``g_blocks`` are
        ``(k_src, lo, hi, block)`` pieces of the halo window; ``d_pack``
        is the assembled ``[2, Nqz, Nw, a_tile, NB, N3D, N3D]`` combined
        phonon tensor of the tile.  Returns per-destination Σ blocks and
        the tile-restricted Π≷ partials.
        """
        win_lo, win_hi = spec["win"]
        et_lo, et_hi = spec["etile"]
        ext = np.asarray(spec["ext"])
        tile = np.asarray(spec["tile"])
        Nkz, NE = spec["Nkz"], spec["NE"]
        Nqz, Nw = spec["Nqz"], spec["Nw"]
        No, N3D = self.Norb, self.N3D

        G_ext = np.zeros(
            (2, Nkz, win_hi - win_lo, len(ext), No, No), dtype=np.complex128
        )
        for k_src, lo, hi, blk in g_blocks:
            G_ext[:, k_src, lo - win_lo : hi - win_lo] = blk

        lookup = -np.ones(int(ext.max()) + 1, dtype=np.int64)
        lookup[ext] = np.arange(len(ext))
        tl = lookup[tile]  # tile atoms in local coords
        neigh_loc = lookup[self.neigh[tile]]  # (a_tile, NB) local neighbor idx
        Gle, Gge = G_ext[0], G_ext[1]
        Dcl_t, Dcg_t = d_pack[0], d_pack[1]
        dH_t, dH_ba_t = self.dH[tile], self.dH_ba[tile]

        # ∇H·G computed ONCE per tile over the whole halo window (the
        # transformed algorithm's reuse; contrast with the OMEN rounds).
        gh_l = np.einsum(
            "kEabxy,abiyz->kEabixz", Gle[:, :, neigh_loc], dH_t, optimize=True
        )
        gh_g = np.einsum(
            "kEabxy,abiyz->kEabixz", Gge[:, :, neigh_loc], dH_t, optimize=True
        )

        n_et = et_hi - et_lo
        sig = np.zeros((2, Nkz, n_et, len(tile), No, No), dtype=np.complex128)
        pl = np.zeros(
            (Nqz, Nw, len(tile), self.NB + 1, N3D, N3D), dtype=np.complex128
        )
        pg = np.zeros_like(pl)
        for q in range(Nqz):
            ghq_l = np.roll(gh_l, q, axis=0)
            ghq_g = np.roll(gh_g, q, axis=0)
            Glq = np.roll(Gle, q, axis=0)
            Ggq = np.roll(Gge, q, axis=0)
            for w in range(Nw):
                hd_l = _hd(Dcl_t[q, w], dH_t)
                hd_g = _hd(Dcg_t[q, w], dH_t)
                # Emission: rows E-w for E in the tile (zero-padded).
                em_lo = max(0, et_lo - w)
                em_hi = max(0, et_hi - w)
                dst_em = slice(n_et - (em_hi - em_lo), n_et)
                src_em = slice(em_lo - win_lo, em_hi - win_lo)
                # Absorption: rows E+w.
                ab_lo = min(NE, et_lo + w)
                ab_hi = min(NE, et_hi + w)
                dst_ab = slice(0, ab_hi - ab_lo)
                src_ab = slice(ab_lo - win_lo, ab_hi - win_lo)

                if em_hi > em_lo:
                    sig[0, :, dst_em] += np.einsum(
                        "kEabixy,abiyz->kEaxz", ghq_l[:, src_em], hd_l,
                        optimize=True,
                    )
                    sig[1, :, dst_em] += np.einsum(
                        "kEabixy,abiyz->kEaxz", ghq_g[:, src_em], hd_g,
                        optimize=True,
                    )
                if ab_hi > ab_lo:
                    sig[0, :, dst_ab] += np.einsum(
                        "kEabixy,abiyz->kEaxz", ghq_l[:, src_ab], hd_g,
                        optimize=True,
                    )
                    sig[1, :, dst_ab] += np.einsum(
                        "kEabixy,abiyz->kEaxz", ghq_g[:, src_ab], hd_l,
                        optimize=True,
                    )

                # Π partials over (tile atoms, own E rows E''=E+w).
                own = slice(
                    et_lo - win_lo + (n_et - (em_hi - em_lo)),
                    et_hi - win_lo,
                )
                if em_hi > em_lo:
                    for k in range(Nkz):
                        off_l = _pi_contrib(
                            Gle[k, own][:, tl],
                            Ggq[k, src_em],
                            dH_t,
                            dH_ba_t,
                            neigh_loc,
                        )
                        off_g = _pi_contrib(
                            Gge[k, own][:, tl],
                            Glq[k, src_em],
                            dH_t,
                            dH_ba_t,
                            neigh_loc,
                        )
                        pl[q, w, :, 1:] += off_l
                        pl[q, w, :, 0] -= off_l.sum(axis=1)
                        pg[q, w, :, 1:] += off_g
                        pg[q, w, :, 0] -= off_g.sum(axis=1)

        dest_blocks = {
            i: sig[:, k_i, lo - et_lo : hi - et_lo]
            for i, k_i, lo, hi in spec["dests"]
        }
        return dest_blocks, pl, pg

    def dace_accum_sigma(
        self, pieces: Sequence[Tuple[np.ndarray, int, int, np.ndarray]]
    ) -> None:
        """Accumulate returned Σ tile blocks into the own shard."""
        for tile, lo, hi, blk in pieces:
            sl = slice(lo - self.esl.start, hi - self.esl.start)
            self._acc_Sl[sl][:, tile] += blk[0]
            self._acc_Sg[sl][:, tile] += blk[1]

    def dace_store_pi(self, entries) -> None:
        """Owner-side: assemble reduced Π rows from per-tile partials."""
        shape = (self.NA, self.NB + 1, self.N3D, self.N3D)
        for q, w, pieces in entries:
            Pl = np.zeros(shape, dtype=np.complex128)
            Pg = np.zeros(shape, dtype=np.complex128)
            for tile, pl, pg in pieces:
                Pl[tile] += pl
                Pg[tile] += pg
            self.pi_raw[(q, w)] = (Pl, Pg)


class LocalTransport:
    """Minimal in-process transport: direct store calls + SimComm metering."""

    def __init__(self, comm: SimComm, stores: Sequence[RankSSEStore]):
        if len(stores) != comm.P:
            raise ValueError("one store per communicator rank required")
        self.comm = comm
        self.stores = list(stores)

    @property
    def P(self) -> int:
        return self.comm.P

    @property
    def stats(self) -> CommStats:
        return self.comm.stats

    def call(self, rank: int, method: str, *args):
        return getattr(self.stores[rank], method)(*args)

    def call_all(self, method: str, args_list):
        return [
            self.call(r, method, *args) for r, args in enumerate(args_list)
        ]

    def charge(self, src: int, dst: int, nbytes: int):
        # one metering convention: telemetry.metrics.meter_transfer via SimComm
        self.comm.charge(src, dst, int(nbytes))


# --------------------------------------------------------------------------
# OMEN schedule
# --------------------------------------------------------------------------
class OmenExchange:
    """Resident OMEN exchange: per-(qz, ω) broadcast + window rounds.

    One instance holds the momentum x energy decomposition and the
    phonon-row owner map; :meth:`run_iteration` executes one full Σ≷/Π≷
    exchange against the rank stores behind ``transport`` — callable every
    Born iteration on refreshed shards (the in-loop generalization of the
    one-shot :func:`omen_sse_phase`).
    """

    def __init__(
        self,
        decomp: OmenDecomposition,
        Nqz: int,
        Nw: int,
        owner_of: Optional[Callable[[int, int], int]] = None,
    ):
        self.decomp = decomp
        self.Nqz = Nqz
        self.Nw = Nw
        self.owner_of = owner_of or default_round_owner(Nw, decomp.P)

    def run_iteration(self, t) -> None:
        d = self.decomp
        P, NE = d.P, d.NE
        for q in range(self.Nqz):
            for w in range(self.Nw):
                owner = self.owner_of(q, w)
                # Broadcast the phonon GF of this round (both ≷ components).
                d_pack = t.call(owner, "omen_d_round", q, w)
                for r in range(P):
                    t.charge(owner, r, d_pack.nbytes)

                pi_l_sum: Optional[np.ndarray] = None
                pi_g_sum: Optional[np.ndarray] = None
                for rank in range(P):
                    k, _ = d.coords(rank)
                    esl = d.energy_slice(rank)
                    ks = (k - q) % d.Nkz
                    em_lo, em_hi = max(0, esl.start - w), max(0, esl.stop - w)
                    ab_lo, ab_hi = min(NE, esl.start + w), min(NE, esl.stop + w)
                    G_em = self._fetch_window(t, ks, em_lo, em_hi, rank)
                    G_ab = self._fetch_window(t, ks, ab_lo, ab_hi, rank)
                    pl, pg = t.call(
                        rank, "omen_apply_round", q, w, d_pack, G_em, G_ab
                    )
                    t.charge(rank, owner, pl.nbytes)
                    t.charge(rank, owner, pg.nbytes)
                    pi_l_sum = pl if pi_l_sum is None else pi_l_sum + pl
                    pi_g_sum = pg if pi_g_sum is None else pi_g_sum + pg
                t.call(owner, "store_pi_round", q, w, pi_l_sum, pi_g_sum)

    def _fetch_window(
        self, t, ks: int, lo: int, hi: int, dst: int
    ) -> Optional[np.ndarray]:
        """Receive ``G≷[ks, lo:hi]`` from its owners, piece by piece."""
        if hi <= lo:
            return None
        d = self.decomp
        pieces = []
        e = lo
        while e < hi:
            owner = d.owner_of_energy(ks, e)
            stop = min(hi, (e // d.chunk + 1) * d.chunk)
            piece = t.call(owner, "g_rows", e, stop)
            t.charge(owner, dst, piece.nbytes)
            pieces.append(piece)
            e = stop
        return (
            pieces[0] if len(pieces) == 1 else np.concatenate(pieces, axis=1)
        )


# --------------------------------------------------------------------------
# DaCe schedule
# --------------------------------------------------------------------------
class DaceExchange:
    """Resident DaCe exchange: the communication-avoiding TE x TA tiles.

    The halo windows, atom closures, and both alltoallv plans are derived
    once from the decompositions; every :meth:`run_iteration` then only
    moves the current shards (the in-loop generalization of
    :func:`dace_sse_phase`).  Π≷ partials travel tile-restricted to the
    (qz, ω) row owners given by ``owner_of``.
    """

    def __init__(
        self,
        gf_decomp: OmenDecomposition,
        sse_decomp: DaceDecomposition,
        neigh: np.ndarray,
        Nqz: int,
        Nw: int,
        owner_of: Optional[Callable[[int, int], int]] = None,
    ):
        if gf_decomp.P != sse_decomp.P:
            raise ValueError("communicator and decompositions disagree on P")
        self.gf_decomp = gf_decomp
        self.sse_decomp = sse_decomp
        self.Nqz = Nqz
        self.Nw = Nw
        P = gf_decomp.P
        self.owner_of = owner_of or default_round_owner(Nw, P)
        self.rows = [(q, w) for q in range(Nqz) for w in range(Nw)]
        self.rows_by_owner: Dict[int, List[Tuple[int, int]]] = {}
        for row in self.rows:
            self.rows_by_owner.setdefault(self.owner_of(*row), []).append(row)

        # -- static geometry -------------------------------------------------
        self.k_of = [gf_decomp.coords(i)[0] for i in range(P)]
        self.esl = [gf_decomp.energy_slice(i) for i in range(P)]
        self.windows = [sse_decomp.energy_window(j) for j in range(P)]
        self.etiles = [sse_decomp.energy_tile(j) for j in range(P)]
        self.closures = [sse_decomp.atom_closure(j, neigh) for j in range(P)]
        self.tiles = [sse_decomp.atom_tile(j) for j in range(P)]

        # -- communication plans ---------------------------------------------
        #: first alltoallv (GF layout -> tiles): per source i, (j, lo, hi)
        self.a_plan: List[List[Tuple[int, int, int]]] = []
        for i in range(P):
            esl = self.esl[i]
            plan = []
            for j in range(P):
                win = self.windows[j]
                lo, hi = max(esl.start, win.start), min(esl.stop, win.stop)
                if hi > lo:
                    plan.append((j, lo, hi))
            self.a_plan.append(plan)
        #: second alltoallv (Σ tiles -> GF layout): per tile j, (i, k_i, lo, hi)
        self.c_plan: List[List[Tuple[int, int, int, int]]] = []
        for j in range(P):
            et = self.etiles[j]
            plan = []
            for i in range(P):
                esl = self.esl[i]
                lo, hi = max(esl.start, et.start), min(esl.stop, et.stop)
                if hi > lo:
                    plan.append((i, self.k_of[i], lo, hi))
            self.c_plan.append(plan)

    def compute_spec(self, j: int, Nkz: int, NE: int) -> Dict:
        """The :meth:`RankSSEStore.dace_compute` geometry of tile ``j``."""
        win, et = self.windows[j], self.etiles[j]
        return {
            "win": (win.start, win.stop),
            "etile": (et.start, et.stop),
            "ext": self.closures[j],
            "tile": self.tiles[j],
            "Nkz": Nkz,
            "NE": NE,
            "Nqz": self.Nqz,
            "Nw": self.Nw,
            "dests": self.c_plan[j],
        }

    def run_iteration(self, t) -> None:
        P = self.gf_decomp.P
        Nkz, NE = self.gf_decomp.Nkz, self.gf_decomp.NE

        # ---- Phase A: GF layout -> SSE tiles (one alltoallv) ----------------
        blocks_for: Dict[int, List[Tuple[int, int, int, np.ndarray]]] = {
            j: [] for j in range(P)
        }
        for i in range(P):
            plan = self.a_plan[i]
            out = t.call(
                i,
                "dace_g_blocks",
                [(lo, hi, self.closures[j]) for j, lo, hi in plan],
            )
            for (j, lo, hi), blk in zip(plan, out):
                t.charge(i, j, blk.nbytes)
                blocks_for[j].append((self.k_of[i], lo, hi, blk))

        # The phonon rows reach each tile from their owners.
        d_packs: List[Optional[np.ndarray]] = [None] * P
        for o in sorted(self.rows_by_owner):
            rows = self.rows_by_owner[o]
            out = t.call(o, "dace_d_rows", rows, self.tiles)
            for j, blk in enumerate(out):
                t.charge(o, j, blk.nbytes)
                if d_packs[j] is None:
                    d_packs[j] = np.zeros(
                        (2, self.Nqz, self.Nw) + blk.shape[2:],
                        dtype=np.complex128,
                    )
                for idx, (q, w) in enumerate(rows):
                    d_packs[j][:, q, w] = blk[:, idx]

        # ---- Phase B: local transformed kernel ------------------------------
        args = [
            (self.compute_spec(j, Nkz, NE), blocks_for[j], d_packs[j])
            for j in range(P)
        ]
        results = t.call_all("dace_compute", args)

        # ---- Phase C: Σ tiles back to the GF layout -------------------------
        pieces_for: Dict[int, List] = {i: [] for i in range(P)}
        for j in range(P):
            dest_blocks = results[j][0]
            for i, _k_i, lo, hi in self.c_plan[j]:
                blk = dest_blocks[i]
                t.charge(j, i, blk.nbytes)
                pieces_for[i].append((self.tiles[j], lo, hi, blk))
        for i in range(P):
            if pieces_for[i]:
                t.call(i, "dace_accum_sigma", pieces_for[i])

        # ---- Π partials reduced to the row owners ---------------------------
        entries_for: Dict[int, Dict[Tuple[int, int], List]] = {}
        for j in range(P):
            pl_rows, pg_rows = results[j][1], results[j][2]
            for q, w in self.rows:
                o = self.owner_of(q, w)
                pl, pg = pl_rows[q, w], pg_rows[q, w]
                t.charge(j, o, pl.nbytes)
                t.charge(j, o, pg.nbytes)
                entries_for.setdefault(o, {}).setdefault((q, w), []).append(
                    (self.tiles[j], pl, pg)
                )
        for o, rowmap in entries_for.items():
            t.call(
                o,
                "dace_store_pi",
                [(q, w, pieces) for (q, w), pieces in rowmap.items()],
            )


# --------------------------------------------------------------------------
# One-shot phases (wrappers over the resident exchanges)
# --------------------------------------------------------------------------
class _ArrayStore(RankSSEStore):
    """Adapter presenting slices of global arrays as one rank's store."""

    def __init__(self, rank, decomp, Gl, Gg, Dc_rows, dH, neigh, rev):
        k, _ = decomp.coords(rank)
        esl = decomp.energy_slice(rank)
        super().__init__(rank, k, esl, decomp.NE, dH, neigh, rev)
        self.Gl = Gl[k, esl]
        self.Gg = Gg[k, esl]
        self.Dc = Dc_rows
        self.sse_begin()


def _one_shot(
    comm: SimComm,
    decomp: OmenDecomposition,
    exchange,
    owner_of,
    Gl,
    Gg,
    dH,
    Dcl,
    Dcg,
    neigh,
    rev,
) -> DistributedSSEResult:
    """Run one exchange over array-backed stores and reassemble globally."""
    Nqz, Nw = Dcl.shape[:2]
    P = comm.P
    stores = []
    for r in range(P):
        rows = {
            (q, w): np.stack([Dcl[q, w], Dcg[q, w]])
            for q in range(Nqz)
            for w in range(Nw)
            if owner_of(q, w) == r
        }
        stores.append(_ArrayStore(r, decomp, Gl, Gg, rows, dH, neigh, rev))
    exchange.run_iteration(LocalTransport(comm, stores))

    Sigma_l = np.zeros_like(Gl)
    Sigma_g = np.zeros_like(Gg)
    NA, NB = neigh.shape
    Pi_shape = (Nqz, Nw, NA, NB + 1, dH.shape[2], dH.shape[2])
    Pi_l = np.zeros(Pi_shape, dtype=np.complex128)
    Pi_g = np.zeros(Pi_shape, dtype=np.complex128)
    for st in stores:
        Sigma_l[st.k, st.esl] = st._acc_Sl
        Sigma_g[st.k, st.esl] = st._acc_Sg
        for (q, w), (pl, pg) in st.pi_raw.items():
            Pi_l[q, w] = pl
            Pi_g[q, w] = pg
    return DistributedSSEResult(Sigma_l, Sigma_g, Pi_l, Pi_g, comm.stats)


def omen_sse_phase(
    comm: SimComm,
    decomp: OmenDecomposition,
    Gl: np.ndarray,
    Gg: np.ndarray,
    dH: np.ndarray,
    Dcl: np.ndarray,
    Dcg: np.ndarray,
    neigh: np.ndarray,
    rev: np.ndarray,
) -> DistributedSSEResult:
    """One-shot momentum x energy schedule with per-(qz, ω) rounds."""
    Nqz, Nw = Dcl.shape[:2]
    owner_of = default_round_owner(Nw, comm.P)
    exchange = OmenExchange(decomp, Nqz, Nw, owner_of)
    return _one_shot(
        comm, decomp, exchange, owner_of, Gl, Gg, dH, Dcl, Dcg, neigh, rev
    )


def dace_sse_phase(
    comm: SimComm,
    gf_decomp: OmenDecomposition,
    sse_decomp: DaceDecomposition,
    Gl: np.ndarray,
    Gg: np.ndarray,
    dH: np.ndarray,
    Dcl: np.ndarray,
    Dcg: np.ndarray,
    neigh: np.ndarray,
    rev: np.ndarray,
) -> DistributedSSEResult:
    """One-shot communication-avoiding TE x TA tile schedule.

    The one-shot phase keeps the legacy convention that rank 0 is the
    phonon store: all D≷ rows ship from (and all Π≷ rows reduce to) rank
    0; the distributed runtime instead spreads row ownership round-robin
    (:func:`default_round_owner`).
    """
    if comm.P != gf_decomp.P or comm.P != sse_decomp.P:
        raise ValueError("communicator and decompositions disagree on P")
    Nqz, Nw = Dcl.shape[:2]
    owner_of = lambda q, w: 0  # noqa: E731 - legacy one-shot convention
    exchange = DaceExchange(gf_decomp, sse_decomp, neigh, Nqz, Nw, owner_of)
    return _one_shot(
        comm, gf_decomp, exchange, owner_of, Gl, Gg, dH, Dcl, Dcg, neigh, rev
    )
