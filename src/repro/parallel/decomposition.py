"""Data decompositions of the Green's-function tensors (paper §4.1).

Two layouts:

* :class:`OmenDecomposition` — the "natural" momentum x energy grid the
  domain scientists chose: rank ``(kz, c)`` owns ``G≷[kz, chunk_c, :]``
  for all atoms.
* :class:`DaceDecomposition` — the communication-avoiding ``TE x TA``
  tiling over energies and atoms derived from the tiled-map memlet
  propagation: rank ``(te, ta)`` owns all momenta for its energy tile and
  atom tile, and *needs* the ``±Nω`` energy halo plus the neighbor-closure
  atom halo.

Halos are computed from the actual neighbor table (exact data
requirements); for banded neighbor structures the atom halo has at most
``NB`` atoms, recovering the closed-form ``NA/TA + NB`` footprint of the
paper's model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

__all__ = ["OmenDecomposition", "DaceDecomposition", "partition_spectral_grid"]


@dataclass(frozen=True)
class OmenDecomposition:
    """Momentum x energy ownership: ``P = Nkz * n_chunks``."""

    Nkz: int
    NE: int
    P: int

    def __post_init__(self):
        if self.P % self.Nkz != 0:
            raise ValueError(f"P={self.P} must be a multiple of Nkz={self.Nkz}")
        if self.NE % self.n_chunks != 0:
            raise ValueError(
                f"NE={self.NE} must be divisible by {self.n_chunks} chunks"
            )

    @property
    def n_chunks(self) -> int:
        return self.P // self.Nkz

    @property
    def chunk(self) -> int:
        return self.NE // self.n_chunks

    def rank_of(self, kz: int, chunk_index: int) -> int:
        return kz * self.n_chunks + chunk_index

    def coords(self, rank: int) -> Tuple[int, int]:
        return rank // self.n_chunks, rank % self.n_chunks

    def energy_slice(self, rank: int) -> slice:
        _, c = self.coords(rank)
        return slice(c * self.chunk, (c + 1) * self.chunk)

    def owner_of_energy(self, kz: int, E: int) -> int:
        return self.rank_of(kz % self.Nkz, E // self.chunk)


@dataclass(frozen=True)
class DaceDecomposition:
    """Energy x atom tiles (all momenta local): ``P = TE * TA``."""

    NE: int
    NA: int
    TE: int
    TA: int
    Nw: int

    def __post_init__(self):
        if self.NE % self.TE != 0:
            raise ValueError(f"TE={self.TE} must divide NE={self.NE}")
        if self.NA % self.TA != 0:
            raise ValueError(f"TA={self.TA} must divide NA={self.NA}")

    @property
    def P(self) -> int:
        return self.TE * self.TA

    @property
    def e_tile(self) -> int:
        return self.NE // self.TE

    @property
    def a_tile(self) -> int:
        return self.NA // self.TA

    def coords(self, rank: int) -> Tuple[int, int]:
        return rank // self.TA, rank % self.TA

    def rank_of(self, te: int, ta: int) -> int:
        return te * self.TA + ta

    def energy_tile(self, rank: int) -> slice:
        te, _ = self.coords(rank)
        return slice(te * self.e_tile, (te + 1) * self.e_tile)

    def energy_window(self, rank: int) -> slice:
        """Tile plus the ±Nω halo, clamped to the grid (zero padding)."""
        t = self.energy_tile(rank)
        return slice(max(0, t.start - self.Nw), min(self.NE, t.stop + self.Nw))

    def atom_tile(self, rank: int) -> np.ndarray:
        _, ta = self.coords(rank)
        return np.arange(ta * self.a_tile, (ta + 1) * self.a_tile)

    def atom_closure(self, rank: int, neighbors: np.ndarray) -> np.ndarray:
        """Tile atoms plus every neighbor they couple to (sorted, unique)."""
        tile = self.atom_tile(rank)
        ext = np.unique(np.concatenate([tile, neighbors[tile].ravel()]))
        return ext

    def local_index(self, ext: np.ndarray) -> np.ndarray:
        """Map global atom index -> position in the closure array."""
        lookup = -np.ones(int(ext.max()) + 1, dtype=np.int64)
        lookup[ext] = np.arange(len(ext))
        return lookup


def partition_spectral_grid(
    Nkz: int, NE: int, max_ranks: int
) -> OmenDecomposition:
    """The largest momentum x energy-chunk decomposition within a budget.

    Used by the spectral-grid engine (``repro.negf.engine``) to map
    per-``(kz, E-chunk)`` batches onto execution ranks: picks the largest
    ``P = Nkz * n_chunks <= max_ranks`` with ``n_chunks`` dividing ``NE``,
    falling back to one chunk per momentum (``P = Nkz``, always valid).
    """
    best = OmenDecomposition(Nkz=Nkz, NE=NE, P=Nkz)
    for n_chunks in range(2, NE + 1):
        if Nkz * n_chunks > max_ranks:
            break
        if NE % n_chunks:
            continue
        best = OmenDecomposition(Nkz=Nkz, NE=NE, P=Nkz * n_chunks)
    return best
