"""Cost-aware bin-packing of priced jobs onto shared rank pools.

Every job is priced by the models the compile step already evaluates:
the Table-3 flop counts summed over all sweep points
(:attr:`repro.api.PlanCost.total_flops`), the §4.1 inter-rank
communication volumes of the plan's runtime schedule (OMEN broadcast
rounds or the DaCe ``TE x TA`` tile exchange), and the modeled per-stage
SSE data movement at the planned dimensions.  Flops are the capacity
currency; the byte figures ride along for inspection and stats.

Placement is first-fit-decreasing with a greedy *structural-affinity*
bonus: among the pools with room, a job prefers the one already hosting
(or already assigned) its structural group — the
:func:`~repro.service.pool.structural_key` that makes executor sharing
legal — with the largest key overlap winning.  Co-scheduling jobs that
share a group onto the same pool is what makes cross-tenant
operator/boundary reuse happen *by construction* rather than by luck.

Jobs larger than a whole pool either get a dedicated oversized pool
(``allow_oversize=True``, the default) or come back rejected with a
clear reason; a rejection never aborts the rest of the batch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from ..api.plan import Plan
from ..model.communication import dace_comm_total_bytes, omen_comm_total_bytes
from .pool import structural_key

__all__ = [
    "PackingError",
    "JobPrice",
    "price_plan",
    "PoolAssignment",
    "PackingResult",
    "pack_jobs",
]


class PackingError(ValueError):
    """A job cannot be placed under the current packing policy."""


@dataclass(frozen=True)
class JobPrice:
    """Modeled cost of one job, from the compile-step cost models."""

    #: Table-3 flops over all sweep points and Born iterations
    flops: float
    #: §4.1 inter-rank exchange bytes of the runtime schedule (0 = serial)
    comm_bytes: float
    #: modeled SSE data movement (Fig. 8 → 12 final stage) over the run
    movement_bytes: float
    points: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "flops": self.flops,
            "comm_bytes": self.comm_bytes,
            "movement_bytes": self.movement_bytes,
            "points": self.points,
        }


def price_plan(plan: Plan) -> JobPrice:
    """Price a compiled plan with the Table-3 + §4.1 models."""
    iters = plan.cost.iterations_per_point
    comm = 0.0
    if plan.runtime_plan is not None:
        for group, entry in zip(plan.groups, plan.runtime_plan):
            n = len(group.points)
            if entry["schedule"] == "dace":
                vol = dace_comm_total_bytes(
                    group.parameters, entry["TE"], entry["TA"]
                )
            else:
                vol = omen_comm_total_bytes(group.parameters, entry["P"])
            comm += iters * n * vol
    movement = 0.0
    if plan.sse_report is not None:
        movement = (
            iters * plan.n_points * plan.sse_report.stages[-1].total_bytes
        )
    return JobPrice(
        flops=plan.cost.total_flops,
        comm_bytes=comm,
        movement_bytes=movement,
        points=plan.n_points,
    )


@dataclass
class PoolAssignment:
    """One pool's share of a packing: which jobs landed on it and why."""

    pool_id: str
    #: False for a pool that already existed before this packing
    new: bool
    #: True when the pool was opened for a single over-capacity job
    oversize: bool
    job_ids: List[str] = field(default_factory=list)
    #: flops this packing committed to the pool
    flops: float = 0.0
    #: structural groups the assigned jobs bring
    keys: Set[Tuple] = field(default_factory=set)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "pool_id": self.pool_id,
            "new": self.new,
            "oversize": self.oversize,
            "job_ids": list(self.job_ids),
            "flops": self.flops,
        }


@dataclass
class PackingResult:
    """The full outcome of one packing pass."""

    assignments: List[PoolAssignment]
    #: {job_id: reason} for jobs the policy refused to place
    rejected: Dict[str, str] = field(default_factory=dict)

    def assignment_of(self, job_id: str) -> Optional[PoolAssignment]:
        for a in self.assignments:
            if job_id in a.job_ids:
                return a
        return None


@dataclass
class _Bin:
    """Mutable packing state of one (existing or opened) pool."""

    pool_id: str
    capacity: float
    committed: float
    keys: Set[Tuple]
    assignment: PoolAssignment

    @property
    def remaining(self) -> float:
        return self.capacity - self.committed


def _job_keys(job) -> Set[Tuple]:
    device = job.plan.workload.device
    return {structural_key(device, g) for g in job.plan.groups}


def pack_jobs(
    jobs,
    capacity_flops: float,
    pools: Tuple = (),
    allow_oversize: bool = True,
    start_index: int = 0,
) -> PackingResult:
    """Place priced jobs (``job.plan``/``job.price`` set) onto pools.

    ``pools`` are existing :class:`~repro.service.RankPool` instances
    whose residual capacity and resident structural groups join the
    packing — warm pools attract their returning tenants.  New pools are
    named ``pool-<n>`` starting at ``start_index``.
    """
    if capacity_flops <= 0:
        raise PackingError(f"capacity_flops={capacity_flops} must be positive")
    bins: List[_Bin] = [
        _Bin(
            pool_id=p.pool_id,
            capacity=p.capacity_flops,
            committed=p.committed_flops,
            keys=set(p.keys),
            assignment=PoolAssignment(p.pool_id, new=False, oversize=False),
        )
        for p in pools
    ]
    result = PackingResult(assignments=[b.assignment for b in bins])
    next_index = start_index

    # first-fit-decreasing: biggest jobs choose first (stable on ties)
    ordered = sorted(jobs, key=lambda j: (-j.price.flops, j.seq))
    for job in ordered:
        flops = job.price.flops
        keys = _job_keys(job)
        candidates = [b for b in bins if b.remaining >= flops]
        chosen: Optional[_Bin] = None
        if candidates:
            # greedy affinity bonus: most shared structural groups wins,
            # first fit breaks the tie
            overlap = [(len(keys & b.keys), b) for b in candidates]
            best = max(o for o, _ in overlap)
            if best > 0:
                chosen = next(b for o, b in overlap if o == best)
            else:
                chosen = candidates[0]
        elif flops > capacity_flops:
            if not allow_oversize:
                result.rejected[job.job_id] = (
                    f"job {job.job_id} needs {flops:.3e} modeled flops, more "
                    f"than a whole pool's capacity of {capacity_flops:.3e}; "
                    "resubmit with a larger capacity or allow_oversize=True"
                )
                continue
            chosen = _open_bin(bins, result, f"pool-{next_index}", flops, True)
            next_index += 1
        if chosen is None:
            chosen = _open_bin(
                bins, result, f"pool-{next_index}", capacity_flops, False
            )
            next_index += 1
        chosen.committed += flops
        chosen.keys |= keys
        chosen.assignment.job_ids.append(job.job_id)
        chosen.assignment.flops += flops
        chosen.assignment.keys |= keys

    result.assignments = [
        a for a in result.assignments if a.job_ids or not a.new
    ]
    return result


def _open_bin(
    bins: List[_Bin], result: PackingResult, pool_id: str,
    capacity: float, oversize: bool,
) -> _Bin:
    assignment = PoolAssignment(pool_id, new=True, oversize=oversize)
    b = _Bin(
        pool_id=pool_id, capacity=capacity, committed=0.0,
        keys=set(), assignment=assignment,
    )
    bins.append(b)
    result.assignments.append(assignment)
    return b
