"""SchedulerService: the multi-tenant front door of the repository.

``submit()`` queues a :class:`~repro.service.Job`; processing a batch
then walks each job through the lifecycle:

1. **PLANNING** — ``workload.compile()`` validates against Table 1 and
   prices the job (:func:`~repro.service.packer.price_plan`: Table-3
   flops + §4.1 volumes).  A content-addressed cache probe happens here:
   a hit short-circuits straight to **CACHED** without touching a rank.
2. **ADMITTED** — :func:`~repro.service.packer.pack_jobs` places the
   batch onto the persistent :class:`~repro.service.RankPool` fleet
   (first-fit-decreasing, structural-affinity bonus, warm pools
   included), opening new pools as capacity demands.
3. **RUNNING → DONE** — admitted jobs execute in strict priority order
   (priority desc, deadline asc, submit order asc — priority inversion
   is structurally impossible within a batch) on their pool's shared
   executors; results enter the cache, and a duplicate admitted in the
   same batch resolves from the cache at this point with zero additional
   boundary solves.

Two modes (``REPRO_SERVICE_MODE``): ``sync`` — jobs run inside explicit
:meth:`drain` calls (or a :meth:`wait` that triggers one); fully
deterministic, the mode every test uses — and ``thread`` — a background
worker drains the queue as it fills, with :meth:`wait` blocking on the
job's terminal state.

Per-job metrics (queue latency, cache hit/miss, flops priced vs
executed, boundary-solve savings attributable to sharing) live on
:attr:`Job.metrics`, are attached to each result's
:attr:`~repro.api.SweepResult.service` block, and aggregate in
:meth:`stats`.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import replace
from typing import Any, Dict, List, Optional, Union

import numpy as np

from ..api import PlanError, Workload, WorkloadError
from ..api.session import SweepResult
from ..config import (
    SERVICE_MODES,
    default_service_capacity,
    default_service_mode,
)
from ..telemetry import metrics as _metrics
from ..telemetry.spans import metrics_enabled, trace
from .cache import ResultCache
from .jobs import Job
from .packer import pack_jobs, price_plan
from .pool import RankPool

__all__ = ["SchedulerError", "SchedulerService"]

#: queue-latency samples retained for percentile reporting — a bounded
#: recent-window reservoir, so ``stats()`` never depends on the full job
#: history (jobs may number far beyond this over a service's lifetime)
LATENCY_RESERVOIR = 256


def _jsonify(value: Any) -> Any:
    """Coerce numpy scalars/arrays so ``stats()`` JSON-round-trips."""
    if isinstance(value, dict):
        return {k: _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    return value


class SchedulerError(RuntimeError):
    """The service cannot accept, run, or return a job."""


class SchedulerService:
    """Queue, price, pack, and execute many tenants' workloads."""

    def __init__(
        self,
        capacity_flops: Optional[float] = None,
        cache: Optional[ResultCache] = None,
        mode: Optional[str] = None,
        allow_oversize: bool = True,
        keep_arrays: bool = True,
    ):
        self.capacity_flops = (
            default_service_capacity() if capacity_flops is None else capacity_flops
        )
        if self.capacity_flops <= 0:
            raise SchedulerError(
                f"capacity_flops={self.capacity_flops} must be positive"
            )
        self.mode = default_service_mode() if mode is None else mode
        if self.mode not in SERVICE_MODES:
            raise SchedulerError(
                f"unknown scheduler mode {self.mode!r}; "
                f"expected one of {SERVICE_MODES}"
            )
        self.cache = ResultCache() if cache is None else cache
        self.allow_oversize = allow_oversize
        self.keep_arrays = keep_arrays
        self._jobs: Dict[str, Job] = {}
        self._queue: List[Job] = []
        #: bounded recent-window queue-latency samples + lifetime count
        self._latencies: deque = deque(maxlen=LATENCY_RESERVOIR)
        self._latency_count = 0
        self._pools: Dict[str, RankPool] = {}
        self._pool_counter = 0
        self._exec_counter = 0
        self._cond = threading.Condition()
        self._stop = False
        self._worker: Optional[threading.Thread] = None
        self._closed = False
        if self.mode == "thread":
            self._worker = threading.Thread(
                target=self._worker_loop, name="repro-scheduler", daemon=True
            )
            self._worker.start()

    # -- submission ---------------------------------------------------------------
    def submit(
        self,
        workload: Workload,
        tenant: str = "default",
        priority: int = 0,
        deadline_s: Optional[float] = None,
    ) -> Job:
        """Queue one workload; returns its :class:`Job` handle immediately."""
        if self._closed:
            raise SchedulerError("scheduler is closed")
        job = Job(
            workload=workload, tenant=tenant, priority=priority,
            deadline_s=deadline_s,
        )
        with self._cond:
            self._jobs[job.job_id] = job
            self._queue.append(job)
            self._cond.notify_all()
        return job

    def job(self, job_id: str) -> Job:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise SchedulerError(f"unknown job {job_id!r}") from None

    # -- draining -----------------------------------------------------------------
    def drain(self) -> List[Job]:
        """Process every queued job now; returns the batch in run order.

        In ``thread`` mode the background worker owns execution — drain
        just blocks until the current queue has emptied through it.
        """
        if self.mode == "thread":
            with self._cond:
                while any(not j.terminal for j in self._jobs.values()):
                    self._cond.wait(0.05)
            return []
        with self._cond:
            batch, self._queue = self._queue, []
        return self._process(batch)

    def wait(
        self, job: Union[Job, str], timeout: Optional[float] = None
    ) -> SweepResult:
        """Block until a job is terminal; returns its SweepResult.

        ``sync`` mode triggers a :meth:`drain` if the job is still
        pending; ``thread`` mode waits on the worker.  A FAILED job
        re-raises its recorded reason as a :class:`SchedulerError`.
        """
        if isinstance(job, str):
            job = self.job(job)
        if not job.terminal and self.mode == "sync":
            self.drain()
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while not job.terminal:
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    raise SchedulerError(
                        f"timed out waiting for {job.job_id} "
                        f"(state {job.state})"
                    )
                self._cond.wait(
                    0.05 if remaining is None else min(remaining, 0.05)
                )
        if job.state == "FAILED":
            raise SchedulerError(f"{job.job_id} failed: {job.error}")
        return job.result

    def _worker_loop(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._stop:
                    self._cond.wait(0.05)
                if self._stop and not self._queue:
                    return
                batch, self._queue = self._queue, []
            self._process(batch)

    # -- the batch pipeline -------------------------------------------------------
    def _process(self, batch: List[Job]) -> List[Job]:
        """Plan, cache-probe, pack, and execute one batch of jobs."""
        planned: List[Job] = []
        for job in sorted(batch, key=Job.order_key):
            job.transition("PLANNING")
            with trace("service.plan", job_id=job.job_id, tenant=job.tenant):
                try:
                    job.plan = job.workload.compile()
                    job.price = price_plan(job.plan)
                except (PlanError, WorkloadError) as exc:
                    job.fail(f"planning failed: {exc}")
                    _metrics.add("service.jobs_failed")
                    continue
            job.metrics["flops_priced"] = job.price.flops
            cached = self.cache.get(job.cache_key)
            if cached is not None:
                self._finish_cached(job, cached, "hit at planning")
                continue
            job.metrics["cache"] = "miss"
            planned.append(job)

        with trace("service.pack", jobs=len(planned)):
            packing = pack_jobs(
                planned,
                self.capacity_flops,
                pools=tuple(self._pools.values()),
                allow_oversize=self.allow_oversize,
                start_index=self._pool_counter,
            )
        for job in planned:
            if job.job_id in packing.rejected:
                job.fail(packing.rejected[job.job_id])
                _metrics.add("service.jobs_failed")
        admitted: List[Job] = []
        for assignment in packing.assignments:
            if assignment.new and assignment.job_ids:
                capacity = (
                    max(self.capacity_flops, assignment.flops)
                    if assignment.oversize
                    else self.capacity_flops
                )
                self._pools[assignment.pool_id] = RankPool(
                    assignment.pool_id, capacity
                )
                self._pool_counter += 1
            pool = self._pools.get(assignment.pool_id)
            for job_id in assignment.job_ids:
                job = self._jobs[job_id]
                with trace(
                    "service.admit", job_id=job.job_id, pool=pool.pool_id
                ):
                    pool.admit(job)
                    job.transition("ADMITTED", f"packed onto {pool.pool_id}")
                admitted.append(job)

        # strict priority order across all pools: no priority inversion
        for job in sorted(admitted, key=Job.order_key):
            self._execute(job)
        with self._cond:
            self._cond.notify_all()
        return sorted(batch, key=Job.order_key)

    def _execute(self, job: Job) -> None:
        """Run one admitted job (or resolve a same-batch duplicate)."""
        cached = self.cache.get(job.cache_key)
        if cached is not None:
            self._finish_cached(job, cached, "hit at execution")
            return
        job.transition("RUNNING")
        self._exec_counter += 1
        job.metrics["exec_order"] = self._exec_counter
        pool = self._pools[job.pool_id]
        before = (
            _metrics.get_registry().snapshot() if metrics_enabled() else None
        )
        with trace(
            "service.execute", job_id=job.job_id, tenant=job.tenant,
            pool=job.pool_id,
        ):
            try:
                result = pool.execute(job, keep_arrays=self.keep_arrays)
            except Exception as exc:  # surface, don't kill the batch
                job.fail(f"execution failed: {exc}")
                _metrics.add("service.jobs_failed")
                return
        if before is not None:
            after = _metrics.get_registry().snapshot()
            job.metrics["telemetry"] = {
                k: after[k] - before.get(k, 0)
                for k in after
                if after[k] != before.get(k, 0)
            }
        job.metrics["flops_executed"] = job.price.flops
        job.metrics["queue_latency_s"] = job.queue_latency_s
        self._record_latency(job.queue_latency_s)
        result.service = self._service_block(job)
        job.result = result
        self.cache.put(job.cache_key, result)
        job.transition("DONE")
        _metrics.add("service.jobs_done")

    def _finish_cached(self, job: Job, cached: SweepResult, note: str) -> None:
        """Terminal CACHED: attach the hit's own metadata, zero execution."""
        job.metrics.update(
            cache="hit",
            flops_executed=0.0,
            boundary_solves=0,
            boundary_hits=0,
            boundary_solves_saved=0,
            queue_latency_s=job.queue_latency_s,
        )
        job.result = replace(cached, service=self._service_block(job))
        self._record_latency(job.queue_latency_s)
        job.transition("CACHED", note)
        _metrics.add("service.jobs_cached")

    def _service_block(self, job: Job) -> Dict[str, Any]:
        """The metrics block serialized with the result (satellite 2)."""
        return {
            "job_id": job.job_id,
            "tenant": job.tenant,
            "priority": job.priority,
            "pool_id": job.pool_id,
            "cache": job.metrics.get("cache", "miss"),
            "flops_priced": job.metrics.get("flops_priced", 0.0),
            "flops_executed": job.metrics.get("flops_executed", 0.0),
            "boundary_solves": job.metrics.get("boundary_solves", 0),
            "boundary_hits": job.metrics.get("boundary_hits", 0),
            "boundary_solves_saved": job.metrics.get(
                "boundary_solves_saved", 0
            ),
            "queue_latency_s": job.metrics.get("queue_latency_s"),
        }

    # -- accounting ---------------------------------------------------------------
    def _record_latency(self, latency_s: Optional[float]) -> None:
        """Sample one job's queue latency into the bounded reservoir."""
        if latency_s is None:
            return
        self._latencies.append(float(latency_s))
        self._latency_count += 1

    def _latency_stats(self) -> Dict[str, Any]:
        """p50/p95/max/mean over the recent-window reservoir (bounded)."""
        samples = sorted(self._latencies)
        if not samples:
            return {
                "count": self._latency_count, "window": 0,
                "p50": None, "p95": None, "max": None, "mean": None,
            }

        def pct(q: float) -> float:
            return samples[min(int(q * len(samples)), len(samples) - 1)]

        return {
            "count": self._latency_count,
            "window": len(samples),
            "p50": pct(0.50),
            "p95": pct(0.95),
            "max": samples[-1],
            "mean": sum(samples) / len(samples),
        }

    def stats(self) -> Dict[str, Any]:
        """Aggregated service metrics across all jobs, pools, and tiers.

        JSON-serializable end-to-end (numpy scalars coerced), so the dict
        can be dumped for out-of-process health checks
        (:func:`repro.observe.health.service_health`).
        """
        states: Dict[str, int] = {}
        tenants: Dict[str, Dict[str, int]] = {}
        priced = executed = 0.0
        solves = hits = saved = 0
        latencies: List[float] = []
        for job in self._jobs.values():
            states[job.state] = states.get(job.state, 0) + 1
            t = tenants.setdefault(
                job.tenant, {"jobs": 0, "done": 0, "cached": 0, "failed": 0}
            )
            t["jobs"] += 1
            if job.state == "DONE":
                t["done"] += 1
            elif job.state == "CACHED":
                t["cached"] += 1
            elif job.state == "FAILED":
                t["failed"] += 1
            priced += job.metrics.get("flops_priced", 0.0)
            executed += job.metrics.get("flops_executed", 0.0)
            solves += job.metrics.get("boundary_solves", 0)
            hits += job.metrics.get("boundary_hits", 0)
            saved += job.metrics.get("boundary_solves_saved", 0)
            if job.queue_latency_s is not None:
                latencies.append(job.queue_latency_s)
        return _jsonify({
            "mode": self.mode,
            "capacity_flops": self.capacity_flops,
            "jobs": states,
            "tenants": tenants,
            "queued": len(self._queue),
            "flops_priced": priced,
            "flops_executed": executed,
            "boundary_solves": solves,
            "boundary_hits": hits,
            "boundary_solves_saved": saved,
            "mean_queue_latency_s": (
                sum(latencies) / len(latencies) if latencies else None
            ),
            "queue_latency_s": self._latency_stats(),
            "cache": self.cache.stats(),
            "pools": [p.stats() for p in self._pools.values()],
        })

    def jobs(self) -> List[Job]:
        """Every job the service has seen, in submit order."""
        return sorted(self._jobs.values(), key=lambda j: j.seq)

    # -- lifetime -----------------------------------------------------------------
    def close(self) -> None:
        """Stop the worker (thread mode) and shut every pool down."""
        if self._closed:
            return
        with self._cond:
            self._stop = True
            self._cond.notify_all()
        if self._worker is not None:
            self._worker.join(timeout=30)
        for pool in self._pools.values():
            pool.close()
        self._pools.clear()
        self._closed = True

    def __enter__(self) -> "SchedulerService":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False
