"""Content-addressed result cache: repeat traffic never touches a rank.

Results are keyed by :meth:`repro.api.Workload.cache_key` — the sha256 of
the workload's canonical JSON with the descriptive ``name`` stripped — so
two tenants submitting physically identical workloads share one entry no
matter how their specs were constructed or labeled.

Two tiers:

* an in-memory LRU (entry budget from ``REPRO_SERVICE_CACHE``; ``0``
  disables caching entirely) holding live
  :class:`~repro.api.SweepResult` objects, full tensors included — a hit
  returns the exact object payload a fresh run would have produced;
* an optional on-disk store (``directory=...``): each entry is persisted
  as ``<key>.json`` through :meth:`SweepResult.to_json`, surviving
  process restarts.  Disk hits are promoted back into the LRU.  Arrays
  are included on disk only with ``persist_arrays=True`` — the scalar
  summary is the default, matching :meth:`SweepResult.save`.

Hit/miss/eviction counters feed the scheduler's :meth:`stats`.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from pathlib import Path
from typing import Any, Dict, Optional

from ..api.session import SweepResult
from ..config import default_service_cache_entries

__all__ = ["ResultCache"]


class ResultCache:
    """Two-tier (memory LRU + optional disk) content-addressed cache."""

    def __init__(
        self,
        max_entries: Optional[int] = None,
        directory: Optional[str] = None,
        persist_arrays: bool = False,
    ):
        self.max_entries = (
            default_service_cache_entries() if max_entries is None else max_entries
        )
        if self.max_entries < 0:
            raise ValueError(f"max_entries={self.max_entries} must be >= 0")
        self.directory = Path(directory) if directory is not None else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self.persist_arrays = persist_arrays
        self._entries: "OrderedDict[str, SweepResult]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.evictions = 0

    @property
    def enabled(self) -> bool:
        return self.max_entries > 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries or self._disk_path(key) is not None

    # -- lookup -------------------------------------------------------------------
    def get(self, key: str) -> Optional[SweepResult]:
        """The cached result for ``key``, or None (counted as a miss)."""
        if not self.enabled:
            self.misses += 1
            return None
        if key in self._entries:
            self._entries.move_to_end(key)
            self.hits += 1
            return self._entries[key]
        path = self._disk_path(key)
        if path is not None:
            result = SweepResult.from_dict(json.loads(path.read_text()))
            self._insert(key, result)  # promote to the LRU tier
            self.hits += 1
            return result
        self.misses += 1
        return None

    # -- store --------------------------------------------------------------------
    def put(self, key: str, result: SweepResult) -> None:
        """Store ``result`` under ``key`` (no-op when caching is disabled)."""
        if not self.enabled:
            return
        self._insert(key, result)
        self.puts += 1
        if self.directory is not None:
            path = self.directory / f"{key}.json"
            path.write_text(
                result.to_json(include_arrays=self.persist_arrays) + "\n"
            )

    def _insert(self, key: str, result: SweepResult) -> None:
        self._entries[key] = result
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1

    def _disk_path(self, key: str) -> Optional[Path]:
        if self.directory is None:
            return None
        path = self.directory / f"{key}.json"
        return path if path.exists() else None

    # -- accounting ---------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        return {
            "entries": len(self._entries),
            "max_entries": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
            "disk": str(self.directory) if self.directory is not None else None,
        }
