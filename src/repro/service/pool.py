"""Rank pools: persistent executors shared across tenants.

A :class:`RankPool` is the service-side analogue of what one
:class:`~repro.api.Session` does for one sweep: it owns the expensive,
structure-invariant resources — the built
:class:`~repro.negf.HamiltonianModel` (one per
:class:`~repro.api.DeviceSpec`) and one :class:`~repro.negf.SCBASimulation`
(hence one :class:`~repro.negf.engine.SpectralGrid` with memoized
operators, one execution engine with its ranks/worker pools, and one
:class:`~repro.negf.engine.BoundaryCache`) per *structural group* — and
keeps them resident across **jobs**, not just across the sweep points of
one workload.  Two tenants whose workloads share a structural group hit
the same warm boundary cache and the same assembled operator blocks by
construction; the second tenant's lead self-energies are all cache hits.

The structural group extends the Session/Plan notion
(:data:`repro.api.STRUCTURAL_FIELDS`) with everything else that is fixed
at simulation construction: the device spec and the engine/kernel/runtime
selection.  Jobs in the same group differ only in fields the executor
syncs per point (bias, temperatures, coupling, tolerances, ...), exactly
like sweep points within a Session group — so pool execution is
bit-identical to a per-workload ``Session.run()`` (pinned by
``tests/test_service.py``).

Capacity is *modeled*: each pool admits jobs up to ``capacity_flops`` of
Table-3-priced work (:attr:`repro.api.PlanCost.total_flops`), the same
cost model the packer uses to place jobs.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Any, Dict, List, Optional, Tuple

from ..api.plan import Plan, PlanGroup
from ..api.session import RunResult, SweepResult
from ..api.workload import DeviceSpec
from ..negf.scba import SCBASettings, SCBASimulation
from ..telemetry.spans import trace
from ..telemetry.timing import timeit

__all__ = ["PoolError", "structural_key", "RankPool"]


class PoolError(RuntimeError):
    """A job was routed to a pool that cannot execute it."""


#: base-settings fields fixed at SCBASimulation construction — a shared
#: simulation cannot be re-pointed at a different engine, kernel, cache
#: policy, or runtime after the fact, so they join the structural key
_CONSTRUCTION_FIELDS: Tuple[str, ...] = (
    "engine",
    "rgf_kernel",
    "cache_boundary",
    "cache_operators",
    "max_workers",
    "sse_backend",
    "runtime",
    "ranks",
    "schedule",
)


def structural_key(device: DeviceSpec, group: PlanGroup) -> Tuple:
    """The sharing key: jobs with equal keys may share one simulation.

    Combines the device spec (operators), the plan group's structural
    settings (grid shape, η, boundary method — ``PlanGroup.key``), and
    the construction-time execution selection.  Everything *not* in the
    key is synced per point by :meth:`RankPool.execute`, mirroring
    ``Session._execute_point``.
    """
    return (
        tuple(sorted(asdict(device).items())),
        tuple(group.key),
        tuple(group.base_settings.get(f) for f in _CONSTRUCTION_FIELDS),
    )


class RankPool:
    """One shared capacity bin with resident per-group executors."""

    def __init__(self, pool_id: str, capacity_flops: float):
        if capacity_flops <= 0:
            raise PoolError(f"capacity_flops={capacity_flops} must be positive")
        self.pool_id = pool_id
        self.capacity_flops = capacity_flops
        self.committed_flops = 0.0
        #: job ids admitted over the pool's lifetime, in admission order
        self.job_ids: List[str] = []
        #: structural groups this pool hosts (affinity targets)
        self._models: Dict[DeviceSpec, Any] = {}
        self._sims: Dict[Tuple, SCBASimulation] = {}
        #: per-group boundary solves of the group's *first* job — the
        #: isolated cost every later job of the group avoids paying
        self._first_solves: Dict[Tuple, int] = {}
        self._closed = False

    # -- admission ----------------------------------------------------------------
    @property
    def keys(self) -> Tuple[Tuple, ...]:
        return tuple(self._sims)

    @property
    def remaining_flops(self) -> float:
        return self.capacity_flops - self.committed_flops

    def fits(self, flops: float) -> bool:
        return flops <= self.remaining_flops

    def admit(self, job) -> None:
        """Commit a planned job's modeled flops against the capacity."""
        flops = job.price.flops
        if not self.fits(flops) and self.job_ids:
            raise PoolError(
                f"{self.pool_id}: job {job.job_id} needs {flops:.3e} modeled "
                f"flops but only {self.remaining_flops:.3e} of "
                f"{self.capacity_flops:.3e} remain"
            )
        self.committed_flops += flops
        self.job_ids.append(job.job_id)
        job.pool_id = self.pool_id

    # -- executors ----------------------------------------------------------------
    def _model(self, device: DeviceSpec):
        if device not in self._models:
            self._models[device] = device.build()
        return self._models[device]

    def simulation(self, device: DeviceSpec, group: PlanGroup) -> SCBASimulation:
        """The resident simulation of one structural group (built once)."""
        if self._closed:
            raise PoolError(f"{self.pool_id} is closed")
        key = structural_key(device, group)
        if key not in self._sims:
            self._sims[key] = SCBASimulation(
                self._model(device), SCBASettings(**group.base_settings)
            )
        return self._sims[key]

    # -- execution ----------------------------------------------------------------
    def execute(self, job, keep_arrays: bool = True) -> SweepResult:
        """Run every sweep point of a job on the pool's shared executors.

        Point execution mirrors ``Session._execute_point`` exactly — the
        full per-point settings are applied to the group's simulation
        before each ``run()`` — so results match a per-workload Session
        to the bit while the boundary cache and assembled operators stay
        warm across every job the group has ever hosted.
        """
        plan: Plan = job.plan
        device = plan.workload.device
        before = self.boundary_counters()
        runs: List[RunResult] = []
        for group in plan.groups:
            sim = self.simulation(device, group)
            for j in range(len(group.points)):
                index, coords, _overrides = group.points[j]
                for k, v in group.point_settings(j).items():
                    setattr(sim.s, k, v)
                with trace(
                    "service.point", job_id=job.job_id, index=index,
                    pool=self.pool_id,
                ):
                    timing = timeit(
                        lambda: sim.run(ballistic=plan.ballistic), repeats=1
                    )
                res = timing.result
                comm = None
                if sim.last_comm:
                    comm = {
                        phase: stats.to_dict()
                        for phase, stats in sim.last_comm.items()
                    }
                runs.append(
                    RunResult.from_scba(
                        index, coords, res, timing.best,
                        keep_arrays=keep_arrays, comm=comm,
                        rgf_kernel=sim.s.rgf_kernel,
                    )
                )
        runs.sort(key=lambda r: r.index)
        delta = self._counter_delta(before)
        job.metrics.update(self._savings(job, plan, device, delta))
        return SweepResult(
            workload=plan.workload.to_dict(),
            runs=runs,
            reuse=delta,
            engine=plan.engine,
        )

    def _savings(
        self, job, plan: Plan, device: DeviceSpec, delta: Dict[str, int]
    ) -> Dict[str, int]:
        """Boundary-solve accounting of one executed job.

        The first job of each structural group pays the group's full
        isolated solve bill; its measured delta is recorded as the
        baseline.  Every later job's saving is the baseline minus what it
        actually solved — a measured quantity, not a model.
        """
        solves = delta["boundary_el_solves"] + delta["boundary_ph_solves"]
        hits = delta["boundary_el_hits"] + delta["boundary_ph_hits"]
        saved = 0
        for group in plan.groups:
            key = structural_key(device, group)
            if key not in self._first_solves:
                self._first_solves[key] = solves
            else:
                saved += max(self._first_solves[key] - solves, 0)
        return {
            "boundary_solves": solves,
            "boundary_hits": hits,
            "boundary_solves_saved": saved,
        }

    # -- accounting ---------------------------------------------------------------
    def boundary_counters(self) -> Dict[str, int]:
        """Aggregated boundary solve/hit counters across resident sims."""
        out = {
            "boundary_el_solves": 0,
            "boundary_el_hits": 0,
            "boundary_ph_solves": 0,
            "boundary_ph_hits": 0,
        }
        for sim in self._sims.values():
            counters = sim.boundary_counters()
            out["boundary_el_solves"] += counters["el_solves"]
            out["boundary_el_hits"] += counters["el_hits"]
            out["boundary_ph_solves"] += counters["ph_solves"]
            out["boundary_ph_hits"] += counters["ph_hits"]
        return out

    def _counter_delta(self, before: Dict[str, int]) -> Dict[str, int]:
        after = self.boundary_counters()
        return {k: after[k] - before[k] for k in after}

    def stats(self) -> Dict[str, Any]:
        return {
            "pool_id": self.pool_id,
            "capacity_flops": float(self.capacity_flops),
            "committed_flops": float(self.committed_flops),
            "utilization": (
                float(self.committed_flops) / float(self.capacity_flops)
            ),
            "jobs": list(self.job_ids),
            "groups": len(self._sims),
            "reuse": self.boundary_counters(),
        }

    # -- lifetime -----------------------------------------------------------------
    def close(self) -> None:
        """Shut every resident simulation down (worker pools included)."""
        for sim in self._sims.values():
            sim.close()
        self._sims.clear()
        self._models.clear()
        self._closed = True

    def __enter__(self) -> "RankPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False
