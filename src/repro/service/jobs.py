"""Jobs: one tenant's workload moving through the scheduler state machine.

A :class:`Job` wraps a declarative :class:`~repro.api.Workload` with the
multi-tenant context the scheduler needs — tenant label, priority,
deadline hint — and an explicit state machine::

    QUEUED → PLANNING → ADMITTED → RUNNING → DONE
                 │           │                 │
                 └─► CACHED ◄┘                 └─► FAILED

``PLANNING`` is the compile step (:func:`repro.api.compile_workload`
validates and prices the job), ``ADMITTED`` means the packer placed it on
a :class:`~repro.service.RankPool`, and ``CACHED`` is the short-circuit
taken when the content-addressed result cache already holds the
workload's :class:`~repro.api.SweepResult` — a cached job never touches a
rank.  Every transition is validated (illegal moves raise
:class:`JobError`) and appended to a JSON-serializable
:class:`JobRecord` history, so a job's full lifecycle can be audited
after the fact (:meth:`Job.to_dict`).
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..api import Plan, Workload

__all__ = [
    "JOB_STATES",
    "TERMINAL_STATES",
    "JobError",
    "JobRecord",
    "Job",
]


#: every state of the job lifecycle, in nominal order
JOB_STATES: Tuple[str, ...] = (
    "QUEUED", "PLANNING", "ADMITTED", "RUNNING", "DONE", "FAILED", "CACHED",
)

#: states a job never leaves
TERMINAL_STATES: Tuple[str, ...] = ("DONE", "FAILED", "CACHED")

#: legal transitions of the state machine (terminal states map to ())
_TRANSITIONS: Dict[str, Tuple[str, ...]] = {
    "QUEUED": ("PLANNING", "FAILED"),
    "PLANNING": ("ADMITTED", "CACHED", "FAILED"),
    # an admitted duplicate resolves from the cache at execution time,
    # after an earlier job of the same batch populated the entry
    "ADMITTED": ("RUNNING", "CACHED", "FAILED"),
    "RUNNING": ("DONE", "FAILED"),
    "DONE": (),
    "FAILED": (),
    "CACHED": (),
}

_JOB_IDS = itertools.count()


class JobError(RuntimeError):
    """An illegal state transition or an invalid job specification."""


@dataclass(frozen=True)
class JobRecord:
    """One audited state transition of a job's history."""

    state: str
    timestamp: float
    note: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "state": self.state,
            "timestamp": self.timestamp,
            "note": self.note,
        }


@dataclass
class Job:
    """A scheduled workload: tenant context, lifecycle, and accounting."""

    workload: Workload
    tenant: str = "default"
    #: larger runs first; ties broken by deadline hint, then submit order
    priority: int = 0
    #: optional latency hint in seconds (earliest-deadline-first tiebreak)
    deadline_s: Optional[float] = None
    job_id: str = ""
    #: monotonically increasing submit sequence (set by the scheduler)
    seq: int = field(default_factory=lambda: next(_JOB_IDS))
    state: str = "QUEUED"
    history: List[JobRecord] = field(default_factory=list)
    #: compile artifacts, filled during PLANNING
    plan: Optional[Plan] = None
    price: Optional[Any] = None  # JobPrice (packer.py layers above jobs.py)
    #: pool placement, filled on ADMITTED
    pool_id: Optional[str] = None
    #: outcome: the SweepResult (DONE/CACHED) or the failure reason
    result: Optional[Any] = None
    error: Optional[str] = None
    #: per-job scheduler metrics (queue latency, cache hit/miss, flops
    #: priced vs executed, boundary-solve deltas and savings)
    metrics: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        if not isinstance(self.workload, Workload):
            raise JobError(
                f"job wraps a {type(self.workload).__name__}, "
                "expected a repro.api.Workload"
            )
        if not self.job_id:
            self.job_id = f"job-{self.seq}"
        if not self.history:
            self.history.append(JobRecord("QUEUED", time.time(), "submitted"))

    # -- state machine ----------------------------------------------------------
    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def transition(self, state: str, note: str = "") -> None:
        """Move to ``state``, validating against the lifecycle graph."""
        if state not in JOB_STATES:
            raise JobError(f"unknown job state {state!r}; known: {JOB_STATES}")
        if state not in _TRANSITIONS[self.state]:
            raise JobError(
                f"{self.job_id}: illegal transition {self.state} -> {state}"
            )
        self.state = state
        self.history.append(JobRecord(state, time.time(), note))

    def fail(self, reason: str) -> None:
        """Record a failure from any non-terminal state."""
        self.error = reason
        self.transition("FAILED", reason)

    # -- ordering ----------------------------------------------------------------
    def order_key(self) -> Tuple:
        """Execution order: priority desc, deadline asc, submit order asc."""
        deadline = self.deadline_s if self.deadline_s is not None else float("inf")
        return (-self.priority, deadline, self.seq)

    # -- accounting ---------------------------------------------------------------
    @property
    def cache_key(self) -> str:
        return self.workload.cache_key()

    @property
    def queue_latency_s(self) -> Optional[float]:
        """Seconds from submission to leaving the queue (first transition)."""
        if len(self.history) < 2:
            return None
        return self.history[1].timestamp - self.history[0].timestamp

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable audit record of the job's lifecycle."""
        return {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "priority": self.priority,
            "deadline_s": self.deadline_s,
            "seq": self.seq,
            "state": self.state,
            "workload": self.workload.to_dict(),
            "cache_key": self.cache_key,
            "pool_id": self.pool_id,
            "price": self.price.to_dict() if self.price is not None else None,
            "error": self.error,
            "metrics": dict(self.metrics),
            "history": [r.to_dict() for r in self.history],
        }
