"""Multi-tenant scheduler service: the repo as a servable system.

One :class:`~repro.api.Session` owns its engine and ranks end to end;
this package is the layer above, where many tenants' workloads queue,
share hardware, and reuse each other's results:

``jobs``
    :class:`Job` — a :class:`~repro.api.Workload` with tenant, priority,
    and deadline context moving through the audited state machine
    ``QUEUED → PLANNING → ADMITTED → RUNNING → DONE/FAILED/CACHED``.
``cache``
    :class:`ResultCache` — content-addressed results keyed by
    :meth:`Workload.cache_key` (sha256 of canonical JSON); in-memory LRU
    plus an optional on-disk tier.  Repeat traffic never touches a rank.
``pool``
    :class:`RankPool` — persistent executors with modeled-flop capacity,
    holding one engine + boundary cache + assembled operators per
    structural group, kept warm *across tenants*.
``packer``
    :func:`price_plan` (Table-3 flops + §4.1 volumes) and
    :func:`pack_jobs` — first-fit-decreasing with a greedy
    structural-affinity bonus, so jobs that can share executors land on
    the same pool by construction.
``scheduler``
    :class:`SchedulerService` — ``submit``/``wait``/``drain``/``stats``,
    deterministic ``sync`` mode plus a threaded worker, per-job metrics.

Quick start::

    from repro.api import scenario
    from repro.service import SchedulerService

    with SchedulerService() as svc:
        job = scenario("finfet_iv").submit(svc, tenant="alice")
        sweep = svc.wait(job)          # drains the queue in sync mode
        print(svc.stats()["boundary_solves_saved"])

Knobs: ``REPRO_SERVICE_MODE`` (sync/thread), ``REPRO_SERVICE_CAPACITY``
(modeled flops per pool), ``REPRO_SERVICE_CACHE`` (LRU entries, 0
disables) — invalid values raise, mirroring ``REPRO_ENGINE``.
"""

from .cache import ResultCache
from .jobs import JOB_STATES, TERMINAL_STATES, Job, JobError, JobRecord
from .packer import (
    JobPrice,
    PackingError,
    PackingResult,
    PoolAssignment,
    pack_jobs,
    price_plan,
)
from .pool import PoolError, RankPool, structural_key
from .scheduler import SchedulerError, SchedulerService

__all__ = [
    "JOB_STATES",
    "TERMINAL_STATES",
    "Job",
    "JobError",
    "JobRecord",
    "ResultCache",
    "JobPrice",
    "PackingError",
    "PackingResult",
    "PoolAssignment",
    "pack_jobs",
    "price_plan",
    "PoolError",
    "RankPool",
    "structural_key",
    "SchedulerError",
    "SchedulerService",
]
