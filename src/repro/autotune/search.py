"""Greedy and beam search over the transformation move space.

Both strategies minimize the paper's §4.1 modeled data movement
(:func:`~repro.sdfg.pipeline.measure_movement`, evaluated at the *target*
symbol bindings) lexicographically with the transient footprint
(:func:`~repro.sdfg.pipeline._transient_bytes`) as tiebreaker:

* **greedy** commits the best strictly-improving move per step; on a
  plateau it runs a bounded breadth-first probe over byte-neutral
  *enabler* moves (template layouts, expansions, fusions) and commits
  the shortest enabler chain ending in an improvement — this is how the
  layout -> batch and expand -> fuse -> shrink sequences are found
  without domain hints;
* **beam** keeps the ``beam_width`` best states per depth, with a
  dominance pruning rule (a state is dropped when another state of the
  same depth moves no more bytes, allocates no more scratch, and is
  strictly better in one of the two) and signature-based deduplication.

Searches are deterministic and seedless: move enumeration, scoring and
every tiebreak are fully ordered, so the same graph, library and config
always produce the same pipeline.  Progress is checkpointed to a JSON
trace after every commitment; rerunning with the same ``trace_path``
replays the committed prefix (validating state signatures step by step)
and continues — or just rebuilds the result when the trace is complete.

Configuration knobs follow the ``REPRO_ENGINE`` idiom (explicitly set
but invalid values raise): ``REPRO_AUTOTUNE_STRATEGY``,
``REPRO_AUTOTUNE_BEAM_WIDTH``, ``REPRO_AUTOTUNE_MAX_MOVES``,
``REPRO_AUTOTUNE_ESCAPE_DEPTH``.
"""

from __future__ import annotations

import copy
import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..config import (
    AUTOTUNE_STRATEGIES,
    default_autotune_beam_width,
    default_autotune_escape_depth,
    default_autotune_max_moves,
    default_autotune_strategy,
)
from ..sdfg import Pipeline, PipelineReport
from ..sdfg.pipeline import _transient_bytes, measure_movement
from ..telemetry import metrics as _metrics
from ..telemetry.spans import trace
from .space import (
    KIND_PRIORITY,
    AutotuneError,
    Move,
    MoveLibrary,
    apply_move,
    enumerate_moves,
    move_from_dict,
    state_signature,
)

__all__ = [
    "SearchConfig",
    "SearchTrace",
    "SearchResult",
    "autotune",
]

#: (modeled bytes moved, transient bytes) — compared lexicographically
Score = Tuple[int, int]


@dataclass(frozen=True)
class SearchConfig:
    """Autotune search configuration; ``None`` fields resolve from the
    ``REPRO_AUTOTUNE_*`` environment knobs (invalid values raise)."""

    strategy: Optional[str] = None
    beam_width: Optional[int] = None
    max_moves: Optional[int] = None
    escape_depth: Optional[int] = None
    #: verify every stage of the winning pipeline against the base
    #: pipeline's reference kernel (requires ``verify_dims``)
    verify: bool = True
    verify_dims: Optional[Dict[str, int]] = None
    verify_backend: str = "interpreter"
    rtol: float = 1e-10
    atol: float = 1e-10
    seed: int = 0

    def resolved(self) -> "SearchConfig":
        strategy = self.strategy or default_autotune_strategy()
        if strategy not in AUTOTUNE_STRATEGIES:
            raise AutotuneError(
                f"strategy {strategy!r} is not a valid autotune strategy; "
                f"expected one of {AUTOTUNE_STRATEGIES}"
            )
        return replace(
            self,
            strategy=strategy,
            beam_width=self.beam_width or default_autotune_beam_width(),
            max_moves=self.max_moves or default_autotune_max_moves(),
            escape_depth=self.escape_depth
            or default_autotune_escape_depth(),
        )


@dataclass
class SearchTrace:
    """The resumable JSON record of one search run."""

    pipeline: str
    strategy: str
    dims: Dict[str, int]
    steps: List[Dict[str, Any]] = field(default_factory=list)
    evaluations: int = 0
    completed: bool = False
    version: int = 1

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": self.version,
            "pipeline": self.pipeline,
            "strategy": self.strategy,
            "dims": dict(self.dims),
            "steps": list(self.steps),
            "evaluations": self.evaluations,
            "completed": self.completed,
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "SearchTrace":
        return cls(
            pipeline=d["pipeline"],
            strategy=d["strategy"],
            dims={k: int(v) for k, v in d["dims"].items()},
            steps=list(d["steps"]),
            evaluations=int(d.get("evaluations", 0)),
            completed=bool(d.get("completed", False)),
            version=int(d.get("version", 1)),
        )

    def save(self, path) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=1))

    @classmethod
    def load(cls, path) -> "SearchTrace":
        return cls.from_dict(json.loads(Path(path).read_text()))


@dataclass
class SearchResult:
    """The winning pipeline with its movement report and provenance."""

    pipeline: Pipeline
    report: PipelineReport
    moves: Tuple[Move, ...]
    strategy: str
    dims: Dict[str, int]
    evaluations: int
    trace: SearchTrace
    #: per-stage max error vs the reference kernel (None: not verified)
    verification: Optional[Dict[str, float]] = None

    @property
    def total_reduction(self) -> float:
        return self.report.total_reduction

    def describe(self) -> str:
        lines = [
            f"autotune[{self.strategy}] over {self.pipeline.name}: "
            f"{len(self.moves)} moves, {self.evaluations} evaluated, "
            f"{self.total_reduction:.1f}x less movement"
        ]
        for i, move in enumerate(self.moves):
            lines.append(f"  {i:2d} [{move.kind:10s}] {move.describe()}")
        return "\n".join(lines)


# -- search nodes -------------------------------------------------------------


@dataclass(frozen=True)
class _Node:
    sdfg: Any
    score: Score
    signature: str
    #: committed (move, pass) pairs from the base state, in order
    moves: Tuple[Move, ...] = ()
    passes: Tuple[Any, ...] = ()
    #: serialized step records (one per move), for the trace
    history: Tuple[Dict[str, Any], ...] = ()

    @property
    def depth(self) -> int:
        return len(self.moves)


def _score(sdfg, dims, hooks) -> Score:
    moved = measure_movement(sdfg, dims, hooks)
    return (sum(moved.values()), _transient_bytes(sdfg, dims))


def _rank(node: _Node) -> tuple:
    last = node.moves[-1]
    return (
        node.score,
        last.priority,
        "|".join(m.key for m in node.moves),
    )


def _is_enabler(move: Move) -> bool:
    if move.kind in ("expand", "fuse"):
        return True
    return move.kind == "layout" and bool(move.spec.get("template"))


class _Search:
    """Shared expansion/bookkeeping for both strategies."""

    def __init__(self, library: MoveLibrary, dims, hooks):
        self.library = library
        self.dims = dict(dims)
        self.hooks = hooks
        self.evaluations = 0

    def child(self, node: _Node, move: Move) -> Optional[_Node]:
        stage = f"t{node.depth:02d}_{move.kind}"
        try:
            with trace(
                "autotune.candidate", stage=stage, kind=move.kind,
                depth=node.depth,
            ):
                sdfg, p = apply_move(node.sdfg, move, stage, self.library)
                score = _score(sdfg, self.dims, self.hooks)
        except (ValueError, KeyError):
            return None  # not legal from here: not a child
        self.evaluations += 1
        _metrics.add("autotune.candidates")
        sig = state_signature(sdfg)
        step = {
            "index": node.depth,
            "stage": stage,
            "kind": move.kind,
            "spec": move.to_dict()["spec"],
            "description": move.describe(),
            "score": list(score),
            "signature": sig,
        }
        return _Node(
            sdfg=sdfg,
            score=score,
            signature=sig,
            moves=node.moves + (move,),
            passes=node.passes + (p,),
            history=node.history + (step,),
        )

    def children(self, node: _Node, probe: bool = False) -> List[_Node]:
        """All legal scored successors.  With ``probe`` (escape levels
        past the first), tile and generic layout rotations are skipped:
        both are byte-neutral-or-worse under the §4.1 model and neither
        is an enabler, so scoring them cannot change the outcome."""
        state = node.sdfg.states[0]
        out = []
        for move in enumerate_moves(node.sdfg, state, self.library):
            if probe and move.priority >= KIND_PRIORITY["tile"]:
                continue
            c = self.child(node, move)
            if c is not None:
                out.append(c)
        return out


def _prune_dominated(pool: List[_Node]) -> List[_Node]:
    """Drop states dominated by a same-depth sibling: no fewer bytes
    moved, no less scratch, and strictly worse in one of the two."""
    keep: List[_Node] = []
    for n in sorted(pool, key=lambda n: n.score):
        if any(
            k.score[0] <= n.score[0]
            and k.score[1] <= n.score[1]
            and k.score != n.score
            for k in keep
        ):
            continue
        keep.append(n)
    return keep


def _greedy(search: _Search, root: _Node, cfg: SearchConfig, on_commit):
    cur = root
    while cur.depth < cfg.max_moves:
        kids = search.children(cur)
        improving = [c for c in kids if c.score < cur.score]
        if improving:
            cur = min(improving, key=_rank)
            on_commit(cur)
            continue
        # Plateau: breadth-first probe over byte-neutral enabler chains,
        # committing the first (shortest) chain that ends in a strictly
        # better state.  Signature dedup prunes re-converging chains.
        winner = _escape(search, cur, cfg, kids)
        if winner is None:
            break
        cur = winner
        on_commit(cur)
    return cur


def _escape(
    search: _Search,
    origin: _Node,
    cfg: SearchConfig,
    first_level: List[_Node],
) -> Optional[_Node]:
    """Shortest enabler chain from ``origin`` ending strictly better.

    ``first_level`` is the already-scored set of origin's children (the
    greedy step just evaluated them), so level 1 costs nothing extra."""
    seen = {origin.signature}
    level = list(first_level)
    for depth in range(1, cfg.escape_depth + 1):
        winners = [c for c in level if c.score < origin.score]
        if winners:
            return min(winners, key=_rank)
        if depth == cfg.escape_depth:
            return None
        frontier: List[_Node] = []
        for c in level:
            if (
                c.score == origin.score
                and _is_enabler(c.moves[-1])
                and c.signature not in seen
            ):
                seen.add(c.signature)
                frontier.append(c)
        if not frontier:
            return None
        level = [
            c for node in frontier for c in search.children(node, probe=True)
        ]
    return None


def _beam(search: _Search, root: _Node, cfg: SearchConfig, on_depth):
    frontier = [root]
    visited = {root.signature}
    best = root
    stall = 0
    stall_limit = cfg.escape_depth + 2
    for _ in range(root.depth, cfg.max_moves):
        pool: List[_Node] = []
        for node in frontier:
            for c in search.children(node):
                if c.signature in visited:
                    continue
                pool.append(c)
        if not pool:
            break
        pool = _prune_dominated(pool)
        pool.sort(key=_rank)
        frontier = pool[: cfg.beam_width]
        visited.update(n.signature for n in frontier)
        leader = min(frontier, key=lambda n: n.score)
        if leader.score < best.score:
            best = leader
            stall = 0
        else:
            stall += 1
            if stall >= stall_limit:
                break
        on_depth(best)
    return best


# -- the entry point ----------------------------------------------------------


def autotune(
    base: Pipeline,
    library: MoveLibrary,
    dims: Mapping[str, int],
    config: Optional[SearchConfig] = None,
    trace_path=None,
) -> SearchResult:
    """Search for a transformation pipeline minimizing modeled movement.

    ``base`` carries the problem — graph factory, indirection hooks,
    input factory and reference kernel (its own passes, usually none,
    are applied first and kept as a prefix).  ``dims`` are the *target*
    symbol bindings the byte model is evaluated at; the search itself is
    purely symbolic/structural, so paper-scale dims cost the same as toy
    dims.  With ``config.verify`` (default), every stage of the winning
    pipeline is executed against the reference kernel at
    ``config.verify_dims`` before the result is returned — a searched
    sequence that fails verification raises :class:`AutotuneError`.

    ``trace_path`` makes the search resumable: progress is saved after
    every commitment, and an existing trace's committed prefix is
    replayed (signatures validated) instead of searched again.
    """
    cfg = (config or SearchConfig()).resolved()
    hooks = base.hooks()
    sdfg = base.graph_factory()
    for p in base.passes:
        p.run(sdfg, sdfg.states[0])
    root = _Node(
        sdfg=sdfg,
        score=_score(sdfg, dims, hooks),
        signature=state_signature(sdfg),
    )

    search = _Search(library, dims, hooks)
    trace = SearchTrace(
        pipeline=base.name, strategy=cfg.strategy, dims=dict(dims)
    )
    start = root
    completed = False
    if trace_path is not None and Path(trace_path).exists():
        prior = SearchTrace.load(trace_path)
        if prior.strategy != cfg.strategy or prior.dims != dict(dims):
            raise AutotuneError(
                f"trace {str(trace_path)!r} records a "
                f"{prior.strategy!r} search at {prior.dims}; "
                f"requested {cfg.strategy!r} at {dict(dims)}"
            )
        start = _replay(search, root, prior.steps)
        trace = prior
        trace.steps = list(start.history)
        completed = prior.completed

    def checkpoint(node: _Node, done: bool = False) -> None:
        trace.steps = list(node.history)
        trace.evaluations = search.evaluations
        trace.completed = done
        if trace_path is not None:
            trace.save(trace_path)

    if completed:
        final = start
    elif cfg.strategy == "greedy":
        final = _greedy(search, start, cfg, on_commit=checkpoint)
    else:
        final = _beam(search, start, cfg, on_depth=checkpoint)
    checkpoint(final, done=True)

    tuned = Pipeline(
        name=f"{base.name}_{cfg.strategy}",
        passes=list(base.passes) + list(final.passes),
        graph_factory=base.graph_factory,
        initial=base.initial,
        hooks=hooks,
        make_inputs=base.make_inputs,
        reference=base.reference,
    )
    verification = None
    if (
        cfg.verify
        and cfg.verify_dims
        and base.make_inputs is not None
        and base.reference is not None
    ):
        try:
            compiled = tuned.compile(
                verify_dims=cfg.verify_dims,
                seed=cfg.seed,
                rtol=cfg.rtol,
                atol=cfg.atol,
                backend=cfg.verify_backend,
            )
        except AssertionError as exc:
            raise AutotuneError(
                f"searched pipeline failed stage verification: {exc}"
            ) from exc
        verification = compiled.verification
    return SearchResult(
        pipeline=tuned,
        report=tuned.report(dims),
        moves=final.moves,
        strategy=cfg.strategy,
        dims=dict(dims),
        evaluations=search.evaluations,
        trace=trace,
        verification=verification,
    )


def _replay(search: _Search, root: _Node, steps: List[Dict]) -> _Node:
    """Re-apply a trace's committed moves, validating state signatures."""
    node = root
    for step in steps:
        move = move_from_dict(step)
        child = search.child(node, move)
        if child is None:
            raise AutotuneError(
                f"trace step {step['index']} ({step['kind']}) no longer "
                f"applies — the move space or graph factory changed"
            )
        if child.signature != step["signature"]:
            raise AutotuneError(
                f"trace step {step['index']} ({step['kind']}) reached "
                f"signature {child.signature}, trace records "
                f"{step['signature']} — refusing to resume a diverged trace"
            )
        node = child
    return node
