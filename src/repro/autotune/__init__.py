"""Autotuner: movement-model-guided search over transformation pipelines.

The hand-written SSE recipe (:data:`repro.core.recipe.SSE_PIPELINE`)
encodes the paper's Fig. 8 -> Fig. 12 sequence as domain knowledge.
This package rediscovers such sequences mechanically:

* :mod:`~repro.autotune.space` enumerates the legal next moves from any
  SDFG state by instantiating each pass type over its transformation's
  ``match()`` sites — candidate pipeline extensions are legal by
  construction;
* :mod:`~repro.autotune.search` runs greedy (with plateau escape) or
  beam search over that space, minimizing the §4.1 modeled bytes at
  target symbol bindings with transient footprint as tiebreaker —
  deterministic, seedless, and resumable via a JSON trace;
* :mod:`~repro.autotune.roofline` validates winners measured-vs-modeled
  per stage: §4.1 bytes and analytic flops beside wall-clock seconds
  and backend-counted flops through real execution.

The SSE-specific move library (batched-GEMM templates) lives in
:func:`repro.core.recipe.sse_move_library`; the searched pipeline is
exposed as :func:`repro.core.recipe.tuned_sse_pipeline` and through
:func:`repro.api.compile_workload` via its ``autotune=`` option.
"""

from .roofline import RooflineReport, RooflineStage, roofline_report
from .search import SearchConfig, SearchResult, SearchTrace, autotune
from .space import (
    AutotuneError,
    BatchTemplate,
    Move,
    MoveLibrary,
    apply_move,
    discover_reductions,
    enumerate_moves,
    move_from_dict,
    state_signature,
)

__all__ = [
    "AutotuneError",
    "BatchTemplate",
    "Move",
    "MoveLibrary",
    "RooflineReport",
    "RooflineStage",
    "SearchConfig",
    "SearchResult",
    "SearchTrace",
    "apply_move",
    "autotune",
    "discover_reductions",
    "enumerate_moves",
    "move_from_dict",
    "roofline_report",
    "state_signature",
]
