"""Move-space enumeration: legal next steps from any SDFG state.

The autotuner treats optimization recipes as data: a :class:`Move` is a
serializable description of one :class:`~repro.sdfg.passes.Pass`
application, and :func:`enumerate_moves` lists every move that is legal
from the current graph by instantiating each pass type over its
transformation's ``match()`` site enumeration —

* **fission** sites with parameter reductions discovered structurally
  (:func:`discover_reductions`),
* **redundancy** removal sites as matched,
* **batch** substitutions driven by a :class:`BatchTemplate` library
  (the only domain knowledge the search receives: which replacement
  tasklets exist, *not* when to apply them),
* **layout** moves — permutations that establish a template's required
  array layouts, plus generic bring-dimension-to-front rotations
  (the ``LayoutPass`` permutation axis of the space),
* **expansion** subsets shared by top-level scopes, **fusion** groups
  and **shrink** sites as matched, and
* **tile** moves over a size menu (the ``TilePass`` parameter axis).

Every move re-selects its site through a fresh ``match()`` when applied,
so a candidate that no longer matches fails loudly instead of silently
transforming the wrong scope; :func:`apply_move` filters such failures
during expansion, making the enumerated frontier legal by construction.
"""

from __future__ import annotations

import copy
import hashlib
from dataclasses import dataclass, field
from itertools import combinations
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..sdfg import SDFG, SDFGState, Memlet, Tasklet
from ..sdfg.nodes import AccessNode, MapEntry, MapExit
from ..sdfg.passes import (
    BatchPass,
    ExpandPass,
    FissionPass,
    FusePass,
    LayoutPass,
    Pass,
    RedundancyPass,
    ShrinkPass,
    TilePass,
)
from ..sdfg.transformations import (
    ArrayShrink,
    BatchedOperationSubstitution,
    MapFission,
    MapFusion,
    MapTiling,
)
from ..sdfg.transformations.redundancy import RedundantComputationRemoval

__all__ = [
    "AutotuneError",
    "BatchTemplate",
    "MoveLibrary",
    "Move",
    "KIND_PRIORITY",
    "ENABLER_KINDS",
    "discover_reductions",
    "enumerate_moves",
    "apply_move",
    "move_from_dict",
    "state_signature",
]


class AutotuneError(ValueError):
    """The search was misconfigured or produced an invalid result."""


#: deterministic tiebreak order between move kinds: structural wins
#: (fission/redundancy) first, then the payoff moves, then byte-neutral
#: enablers, generic layout rotations and tiling last.
KIND_PRIORITY: Dict[str, int] = {
    "fission": 0,
    "redundancy": 1,
    "batch": 2,
    "shrink": 3,
    "layout": 4,       # template-directed (spec carries "template")
    "expand": 5,
    "fuse": 6,
    "tile": 7,
    "layout*": 8,      # generic rotation (no template)
}

#: byte-neutral kinds the greedy plateau escape is allowed to chain
ENABLER_KINDS = ("layout", "expand", "fuse")


@dataclass(frozen=True)
class BatchTemplate:
    """A reusable batched-tasklet substitution the search may instantiate.

    Templates are the library's physical-operator vocabulary (which
    batched kernels exist — e.g. "the per-(kz, E) multiplications form
    one GEMM"); *when* a template applies is decided structurally:
    every array in ``required_layouts`` must currently have exactly the
    required symbolic shape (rank gates included), and a matching
    :class:`BatchedOperationSubstitution` site must exist.  When the
    shapes differ only by a permutation, :func:`enumerate_moves` offers
    the layout move establishing them instead.
    """

    name: str
    description: str
    #: the array whose single-tasklet producer is substituted
    array: str
    #: map parameters absorbed into the batched tasklet
    batch_params: Tuple[str, ...]
    #: prototype replacement tasklet (fresh nodes are cloned per use)
    tasklet: Tasklet
    in_memlets: Mapping[str, Memlet]
    out_memlets: Mapping[str, Memlet]
    #: array name -> symbolic shape the template's memlets assume
    required_layouts: Mapping[str, Tuple[Any, ...]]

    def make_pass(self, stage: str) -> BatchPass:
        return BatchPass(
            stage,
            self.description,
            array=self.array,
            batch_params=self.batch_params,
            tasklet=self.tasklet,
            in_memlets=self.in_memlets,
            out_memlets=self.out_memlets,
        )


@dataclass(frozen=True)
class MoveLibrary:
    """Everything :func:`enumerate_moves` needs beyond the graph itself."""

    templates: Tuple[BatchTemplate, ...] = ()
    #: tile-size menu for the ``TilePass`` axis of the space
    tile_sizes: Tuple[int, ...] = (2,)
    #: offer generic bring-dim-to-front layout rotations
    generic_layouts: bool = True

    def template(self, name: str) -> BatchTemplate:
        for t in self.templates:
            if t.name == name:
                return t
        raise AutotuneError(
            f"no batch template {name!r} in library "
            f"({[t.name for t in self.templates]})"
        )


@dataclass(frozen=True)
class Move:
    """One serializable candidate step: a pass kind plus its config."""

    kind: str
    spec: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        # Canonical spec: sequences become tuples, so a move's ``key``
        # is stable across the JSON round trip (lists) and whatever
        # container the enumerator happened to build.
        object.__setattr__(self, "spec", _canon(self.spec))

    @property
    def priority(self) -> int:
        if self.kind == "layout" and not self.spec.get("template"):
            return KIND_PRIORITY["layout*"]
        return KIND_PRIORITY[self.kind]

    @property
    def key(self) -> str:
        """Deterministic identity/ordering key."""
        items = sorted((k, repr(v)) for k, v in self.spec.items())
        return f"{self.kind}:{items!r}"

    def describe(self) -> str:
        s = self.spec
        if self.kind == "fission":
            red = s.get("reduce") or {}
            extra = f", reducing {red}" if red else ""
            return f"fission of {s['scope']!r}{extra}"
        if self.kind == "redundancy":
            return f"remove {list(s['params'])} offsets from {s['array']!r}"
        if self.kind == "layout":
            t = s.get("template")
            why = f" (enables {t!r})" if t else ""
            return f"permute {sorted(s['perms'])}{why}"
        if self.kind == "batch":
            return f"batch substitution {s['template']!r}"
        if self.kind == "expand":
            return f"hoist {list(s['outer'])} to outer maps"
        if self.kind == "fuse":
            return f"fuse scopes over {list(s['params'])}"
        if self.kind == "shrink":
            return f"shrink {s['array']!r} over {list(s['params'])}"
        if self.kind == "tile":
            return f"tile {s['scope']!r} by {s['tile_sizes']}"
        return f"{self.kind} {s}"

    def build_pass(
        self, stage: str, library: Optional[MoveLibrary] = None
    ) -> Pass:
        """A fresh configured pass applying this move as pipeline stage
        ``stage`` (batch moves resolve their template via ``library``)."""
        s = self.spec
        if self.kind == "fission":
            return FissionPass(
                stage, self.describe(),
                reduce=s.get("reduce") or {}, scope=s.get("scope"),
            )
        if self.kind == "redundancy":
            return RedundancyPass(
                stage, self.describe(), array=s["array"], params=s["params"]
            )
        if self.kind == "layout":
            return LayoutPass(stage, self.describe(), perms=s["perms"])
        if self.kind == "batch":
            if library is None:
                raise AutotuneError(
                    f"batch move {s['template']!r} needs a MoveLibrary"
                )
            return library.template(s["template"]).make_pass(stage)
        if self.kind == "expand":
            return ExpandPass(stage, self.describe(), outer=s["outer"])
        if self.kind == "fuse":
            return FusePass(
                stage, self.describe(), label=s["label"], params=s["params"]
            )
        if self.kind == "shrink":
            return ShrinkPass(
                stage, self.describe(),
                arrays=(s["array"],), params=s["params"],
            )
        if self.kind == "tile":
            return TilePass(
                stage, self.describe(),
                tile_sizes=s["tile_sizes"],
                divides_evenly=s.get("divides_evenly", False),
                scope=s.get("scope"),
            )
        raise AutotuneError(f"unknown move kind {self.kind!r}")

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "spec": _plain(self.spec)}


def _plain(value):
    """JSON-serializable copy (tuples -> lists, nested dicts kept)."""
    if isinstance(value, dict):
        return {k: _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    return value


def _canon(value):
    """Canonical in-memory form: every sequence a tuple."""
    if isinstance(value, dict):
        return {k: _canon(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return tuple(_canon(v) for v in value)
    return value


def move_from_dict(d: Mapping[str, Any]) -> Move:
    """Rebuild a move from its :meth:`Move.to_dict` form (trace resume).
    ``Move`` canonicalizes the spec, so the JSON lists are harmless."""
    return Move(kind=d["kind"], spec=dict(d["spec"]))


# -- structural discovery -----------------------------------------------------


def _direct_params(state: SDFGState, tasklet: Tasklet, params) -> set:
    """Map parameters appearing in the tasklet's own memlet subsets."""
    out = set()
    for u, v, d in state.edges():
        mem = d.get("memlet")
        if mem is None or (u is not tasklet and v is not tasklet):
            continue
        out |= set(mem.subset.free_symbols) & set(params)
    return out


def discover_reductions(
    sdfg: SDFG, state: SDFGState, site
) -> Dict[str, List[str]]:
    """Parameters that fission can sum away per intermediate (Fig. 9's
    ``j``-reduction), found structurally:

    a parameter ``p`` is reducible into intermediate ``v`` iff it indexes
    only ``v``'s producer (no other tasklet in the scope touches it),
    every non-transient write of the scope accumulates with ``wcr=sum``
    (so summing early commutes with the final accumulation), and every
    transitive consumer of ``v`` carries a declarative multilinear ``op``
    annotation (the linearity witness that justifies pushing the sum
    through).  On the paper's Fig. 8 kernel this recovers exactly
    ``{"dHD": ["j"]}``.
    """
    entry: MapEntry = site.nodes[0]
    children = state.scope_children(entry)
    tasklets = [n for n in children if isinstance(n, Tasklet)]
    params = list(entry.map.params)
    directs = {t: _direct_params(state, t, params) for t in tasklets}

    # Every final (non-transient) write must be a sum accumulation.
    for t in tasklets:
        for u, v, d in state.out_edges(t):
            mem = d.get("memlet")
            if mem is None:
                continue
            if not sdfg.arrays[mem.data].transient and mem.wcr != "sum":
                return {}

    # Producer / consumers per intermediate; transitive consumer closure.
    producer: Dict[str, Tasklet] = {}
    consumers: Dict[str, List[Tasklet]] = {}
    for u, v, d in state.edges():
        mem = d.get("memlet")
        if mem is None or mem.data not in site.arrays:
            continue
        if isinstance(u, Tasklet) and isinstance(v, AccessNode):
            producer[mem.data] = u
        if isinstance(v, Tasklet) and isinstance(u, AccessNode):
            consumers.setdefault(mem.data, []).append(v)

    def transitive_consumers(array: str) -> List[Tasklet]:
        out, todo = [], list(consumers.get(array, []))
        while todo:
            t = todo.pop()
            if t in out:
                continue
            out.append(t)
            for u, v, d in state.out_edges(t):
                mem = d.get("memlet")
                if mem is not None and mem.data in site.arrays:
                    todo.extend(consumers.get(mem.data, []))
        return out

    found: Dict[str, List[str]] = {}
    for array in site.arrays:
        prod = producer.get(array)
        if prod is None:
            continue
        downstream = transitive_consumers(array)
        if not downstream or any(t.op is None for t in downstream):
            continue
        reducible = [
            p
            for p in params
            if p in directs[prod]
            and all(p not in directs[t] for t in tasklets if t is not prod)
        ]
        if reducible:
            found[array] = reducible
    return found


# -- per-kind move generators -------------------------------------------------


def _fission_moves(sdfg: SDFG, state: SDFGState) -> List[Move]:
    moves = []
    for site in MapFission.match(sdfg, state):
        reduce = discover_reductions(sdfg, state, site)
        variants = [reduce, {}] if reduce else [{}]
        for red in variants:
            moves.append(
                Move(
                    "fission",
                    {
                        "scope": site.scope,
                        # tuples: the JSON round trip through
                        # move_from_dict must preserve the move key
                        "reduce": {k: tuple(v) for k, v in red.items()},
                    },
                )
            )
    return moves


def _redundancy_moves(sdfg: SDFG, state: SDFGState) -> List[Move]:
    return [
        Move(
            "redundancy",
            {"array": site.arrays[0], "params": tuple(site.params)},
        )
        for site in RedundantComputationRemoval.match(sdfg, state)
    ]


def _layout_perm(current, required) -> Optional[Tuple[int, ...]]:
    """A new-from-old permutation mapping ``current`` onto ``required``
    by greedy positional matching of symbolically equal extents (handles
    duplicated extents such as the two Norb axes), or ``None`` when the
    shapes are not a permutation of each other (rank gate included)."""
    if len(current) != len(required):
        return None
    used: set = set()
    perm = []
    for req in required:
        for j, cur in enumerate(current):
            if j not in used and cur == req:
                used.add(j)
                perm.append(j)
                break
        else:
            return None
    return tuple(perm)


def _template_moves(
    sdfg: SDFG, state: SDFGState, library: MoveLibrary
) -> List[Move]:
    """Batch moves whose template is applicable now, or the layout move
    establishing a template's required layouts when only those differ."""
    sites = BatchedOperationSubstitution.match(sdfg, state)
    moves = []
    for t in library.templates:
        perms: Dict[str, Tuple[int, ...]] = {}
        applicable = True
        for array, required in t.required_layouts.items():
            desc = sdfg.arrays.get(array)
            if desc is None:
                applicable = False
                break
            current = tuple(desc.shape)
            if current == tuple(required):
                continue
            perm = _layout_perm(current, tuple(required))
            if perm is None:
                applicable = False
                break
            perms[array] = perm
        if not applicable:
            continue
        if not any(
            t.array in s.arrays and set(t.batch_params) <= set(s.params)
            for s in sites
        ):
            continue
        if perms:
            moves.append(
                Move(
                    "layout",
                    {
                        "perms": {a: list(p) for a, p in sorted(perms.items())},
                        "template": t.name,
                    },
                )
            )
        else:
            moves.append(Move("batch", {"template": t.name}))
    return moves


def _generic_layout_moves(sdfg: SDFG, state: SDFGState) -> List[Move]:
    """Bring-dimension-to-front rotations of every referenced array —
    the unguided ``LayoutPass`` axis of the space (byte-neutral under
    the movement model, so only a tiebreak or enabler by accident)."""
    referenced = set()
    for u, v, d in state.edges():
        mem = d.get("memlet")
        if mem is not None:
            referenced.add(mem.data)
    moves = []
    for name in sorted(referenced):
        rank = sdfg.arrays[name].rank
        for dim in range(1, rank):
            perm = (dim,) + tuple(i for i in range(rank) if i != dim)
            moves.append(
                Move("layout", {"perms": {name: list(perm)}})
            )
    return moves


def _expansion_moves(state: SDFGState) -> List[Move]:
    """Hoistable parameter subsets shared (name and range) by at least
    two top-level scopes, each leaving a non-empty inner map."""
    tops = state.top_level_maps()
    if len(tops) < 2:
        return []

    def binding(entry, p):
        m = entry.map
        return m.range.dims[m.params.index(p)]

    common_sets = []
    for e1, e2 in combinations(tops, 2):
        shared = tuple(
            p
            for p in e1.map.params
            if p in e2.map.params and binding(e1, p) == binding(e2, p)
        )
        if shared and shared not in common_sets:
            common_sets.append(shared)

    seen: set = set()
    moves = []
    for shared in common_sets:
        for size in range(1, min(len(shared), 4) + 1):
            for subset in combinations(shared, size):
                if subset in seen:
                    continue
                seen.add(subset)
                # Expansion must act on >= 2 scopes (else no fusion can
                # follow it; hoisting one scope alone is pure noise) and
                # leave every affected scope a non-empty inner map —
                # ExpandPass enforces the latter per map.
                eligible = [
                    e for e in tops if set(subset) < set(e.map.params)
                ]
                if len(eligible) < 2:
                    continue
                moves.append(Move("expand", {"outer": subset}))
    return moves


def _fuse_moves(sdfg: SDFG, state: SDFGState) -> List[Move]:
    return [
        Move(
            "fuse",
            {
                "params": tuple(site.params),
                "label": "fused_" + "_".join(site.params),
            },
        )
        for site in MapFusion.match(sdfg, state)
    ]


def _shrink_moves(sdfg: SDFG, state: SDFGState) -> List[Move]:
    return [
        Move(
            "shrink",
            {"array": site.arrays[0], "params": tuple(site.params)},
        )
        for site in ArrayShrink.match(sdfg, state)
    ]


def _tile_moves(
    sdfg: SDFG, state: SDFGState, library: MoveLibrary
) -> List[Move]:
    moves = []
    for site in MapTiling.match(sdfg, state):
        for p in site.params:
            for size in library.tile_sizes:
                moves.append(
                    Move(
                        "tile",
                        {
                            "scope": site.scope,
                            "tile_sizes": {p: size},
                            "divides_evenly": False,
                        },
                    )
                )
    return moves


def enumerate_moves(
    sdfg: SDFG, state: SDFGState, library: MoveLibrary
) -> List[Move]:
    """Every candidate next move from the current graph, in deterministic
    kind-priority order.  Legality is structural (each generator reads a
    fresh ``match()`` enumeration); moves that still fail to apply —
    e.g. a tile size incompatible with a bound — are discarded by
    :func:`apply_move` during search expansion."""
    moves: List[Move] = []
    moves += _fission_moves(sdfg, state)
    moves += _redundancy_moves(sdfg, state)
    moves += _template_moves(sdfg, state, library)
    moves += _shrink_moves(sdfg, state)
    moves += _expansion_moves(state)
    moves += _fuse_moves(sdfg, state)
    moves += _tile_moves(sdfg, state, library)
    if library.generic_layouts:
        moves += _generic_layout_moves(sdfg, state)
    moves.sort(key=lambda m: (m.priority, m.key))
    return moves


def apply_move(
    sdfg: SDFG,
    move: Move,
    stage: str,
    library: Optional[MoveLibrary] = None,
) -> Tuple[SDFG, Pass]:
    """Apply ``move`` to a deep copy of ``sdfg`` (validated), returning
    the new graph and the configured pass.  Raises ``ValueError``
    subclasses (``PassError``/``TransformationError``/...) when the move
    does not apply — search expansion treats that as 'not a child'."""
    out = copy.deepcopy(sdfg)
    p = move.build_pass(stage, library)
    p.run(out, out.states[0])
    out.validate()
    return out, p


# -- state identity -----------------------------------------------------------


def state_signature(sdfg: SDFG) -> str:
    """A deterministic structural fingerprint for search deduplication.

    Covers array descriptors (name, symbolic shape, transience) and, per
    state, the topologically ordered nodes with their full configuration
    plus every edge's memlet.  Graphs reached by replaying the same move
    sequence produce identical signatures (the basis of trace resume);
    distinct build histories of isomorphic graphs may differ — the
    conservative direction for deduplication.
    """
    parts: List[str] = []
    for name in sorted(sdfg.arrays):
        d = sdfg.arrays[name]
        parts.append(f"A|{name}|{tuple(d.shape)!r}|{int(d.transient)}")
    for st in sdfg.states:
        ids: Dict[Any, int] = {}
        for n in st.topological_nodes():
            ids[n] = len(ids)
            if isinstance(n, Tasklet):
                parts.append(
                    f"T|{ids[n]}|{n.label}|{list(n.inputs)}|"
                    f"{list(n.outputs)}|{n.op}"
                )
            elif isinstance(n, MapEntry):
                parts.append(
                    f"ME|{ids[n]}|{n.map.label}|{list(n.map.params)}|"
                    f"{n.map.range!r}"
                )
            elif isinstance(n, MapExit):
                parts.append(f"MX|{ids[n]}|{n.map.label}")
            elif isinstance(n, AccessNode):
                parts.append(f"AN|{ids[n]}|{n.data}")
            else:
                parts.append(f"N|{ids[n]}|{type(n).__name__}")
        edges = sorted(
            f"E|{ids[u]}|{ids[v]}|{d.get('memlet')!r}|"
            f"{d.get('src_conn')}|{d.get('dst_conn')}"
            for u, v, d in st.edges()
        )
        parts.extend(edges)
    return hashlib.sha1("\n".join(parts).encode()).hexdigest()[:16]
