"""Roofline validation of searched (or hand-written) pipelines.

Every autotuner candidate is judged by the §4.1 byte model; this module
closes the loop by checking the model against reality, per stage:

* **modeled bytes** — :meth:`Pipeline.report` at the *model* dims (the
  bindings the search optimized for, e.g. the paper's 4864-atom
  structure);
* **modeled flops** — the analytic per-stage count
  (:func:`repro.model.performance.stage_flops`), from each tasklet's
  declarative ``op`` einsum or its ``flops`` callable;
* **measured** — the stage executed through a real backend
  (``numpy`` codegen by default) at small *measure* dims: wall-clock
  seconds (best of ``repeats``), the backend's own flop count, and the
  max error against the pipeline's reference kernel.

The analytic and executed flop counts must agree exactly (both charge 8
real flops per contraction point, 6 per complex multiply), so
``flops_agreement == 1.0`` is the expected value and any drift flags a
stage whose movement model no longer describes what actually runs.
With ``peak_flops``/``mem_bandwidth`` a classical roofline bound
``max(flops/peak, bytes/bandwidth)`` is attached at the model dims.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

import numpy as np

from ..model.performance import stage_flops
from ..sdfg import Pipeline
from ..sdfg.pipeline import format_bytes
from ..telemetry.timing import timeit

__all__ = ["RooflineStage", "RooflineReport", "roofline_report"]


@dataclass(frozen=True)
class RooflineStage:
    """One pipeline stage's modeled-vs-measured record."""

    name: str
    description: str
    #: §4.1 modeled bytes moved at the model dims
    modeled_bytes: int
    #: analytic flops at the model dims
    modeled_flops: int
    #: wall-clock seconds at the measure dims (best of ``repeats``)
    measured_seconds: float
    #: flops the execution backend itself counted at the measure dims
    measured_flops: int
    #: analytic flops at the measure dims (should equal measured_flops)
    modeled_measure_flops: int
    #: max |error| vs the reference kernel at the measure dims
    verify_error: float
    #: roofline-bound seconds at the model dims (machine model supplied)
    roofline_seconds: Optional[float] = None

    @property
    def intensity(self) -> float:
        """Arithmetic intensity (flop/byte) at the model dims."""
        return self.modeled_flops / max(self.modeled_bytes, 1)

    @property
    def flops_agreement(self) -> float:
        """measured/modeled flop ratio at the measure dims (expect 1.0)."""
        return self.measured_flops / max(self.modeled_measure_flops, 1)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "description": self.description,
            "modeled_bytes": self.modeled_bytes,
            "modeled_flops": self.modeled_flops,
            "intensity": self.intensity,
            "measured_seconds": self.measured_seconds,
            "measured_flops": self.measured_flops,
            "modeled_measure_flops": self.modeled_measure_flops,
            "flops_agreement": self.flops_agreement,
            "verify_error": self.verify_error,
            "roofline_seconds": self.roofline_seconds,
        }


@dataclass(frozen=True)
class RooflineReport:
    """Per-stage roofline validation of one pipeline."""

    pipeline: str
    backend: str
    model_dims: Dict[str, int]
    measure_dims: Dict[str, int]
    stages: Tuple[RooflineStage, ...]

    def stage(self, name: str) -> RooflineStage:
        for s in self.stages:
            if s.name == name:
                return s
        raise KeyError(f"no stage {name!r} in roofline report")

    @property
    def agreement(self) -> float:
        """Worst-stage |flops_agreement - 1| (0.0 = perfect model)."""
        return max(abs(s.flops_agreement - 1.0) for s in self.stages)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "pipeline": self.pipeline,
            "backend": self.backend,
            "model_dims": dict(self.model_dims),
            "measure_dims": dict(self.measure_dims),
            "agreement": self.agreement,
            "stages": [s.to_dict() for s in self.stages],
        }

    def to_json(self, **kwargs) -> str:
        return json.dumps(self.to_dict(), **kwargs)

    def describe(self) -> str:
        lines = [
            f"roofline[{self.pipeline}] backend={self.backend} "
            f"(bytes/flops modeled at {self.model_dims}, "
            f"measured at {self.measure_dims}):"
        ]
        for i, s in enumerate(self.stages):
            lines.append(
                f"  {i:2d} {s.name:10s} "
                f"{format_bytes(s.modeled_bytes):>12s} moved, "
                f"{s.modeled_flops:.3e} flop "
                f"({s.intensity:8.2f} flop/B), "
                f"{s.measured_seconds * 1e3:9.3f} ms measured, "
                f"flops agreement {s.flops_agreement:.3f}, "
                f"err {s.verify_error:.1e}"
            )
        return "\n".join(lines)


def roofline_report(
    pipeline: Pipeline,
    model_dims: Mapping[str, int],
    measure_dims: Mapping[str, int],
    backend: str = "numpy",
    seed: int = 0,
    repeats: int = 3,
    rtol: float = 1e-10,
    atol: float = 1e-10,
    peak_flops: Optional[float] = None,
    mem_bandwidth: Optional[float] = None,
) -> RooflineReport:
    """Model-vs-measurement report for every stage of ``pipeline``.

    Compiles the pipeline through ``backend`` with full stage
    verification at ``measure_dims`` (so a wrong candidate can never be
    reported as validated), times each stage on the same concrete
    inputs, and pairs the measurements with the byte/flop models at
    ``model_dims``.
    """
    compiled = pipeline.compile(
        verify_dims=measure_dims,
        seed=seed,
        rtol=rtol,
        atol=atol,
        backend=backend,
    )
    movement = pipeline.report(model_dims)
    arrays, tables = pipeline.make_inputs(dict(measure_dims), seed=seed)
    stages = []
    for i, stage in enumerate(compiled.stages):
        runner = compiled.runners[stage.name]
        timing = timeit(
            lambda: runner(dict(measure_dims), arrays, tables),
            repeats=max(repeats, 1),
        )
        _, executed = timing.result
        modeled_bytes = movement.stages[i].total_bytes
        modeled_flops = stage_flops(stage.sdfg, model_dims)
        roofline_seconds = None
        if peak_flops or mem_bandwidth:
            bounds = [0.0]
            if peak_flops:
                bounds.append(modeled_flops / peak_flops)
            if mem_bandwidth:
                bounds.append(modeled_bytes / mem_bandwidth)
            roofline_seconds = max(bounds)
        stages.append(
            RooflineStage(
                name=stage.name,
                description=stage.description,
                modeled_bytes=modeled_bytes,
                modeled_flops=modeled_flops,
                measured_seconds=timing.best,
                measured_flops=int(np.rint(executed.report.flops)),
                modeled_measure_flops=stage_flops(
                    stage.sdfg, measure_dims
                ),
                verify_error=compiled.verification[stage.name],
                roofline_seconds=roofline_seconds,
            )
        )
    return RooflineReport(
        pipeline=pipeline.name,
        backend=compiled.backend,
        model_dims=dict(model_dims),
        measure_dims=dict(measure_dims),
        stages=tuple(stages),
    )
