"""Model-vs-measured drift reports: the paper's claims as invariants.

The repo carries analytic models of everything it executes — §4.1
communication volumes (:mod:`repro.model.communication`), Table-3 flop
counts (:func:`repro.model.performance.stage_flops` /
``tasklet_flops``), and per-stage movement bytes
(:func:`repro.sdfg.pipeline.measure_movement`).  This module joins the
*measured* side (transport ``CommStats``, backend ``ExecutionReport``)
against those models and flags any divergence, turning the scattered
bench-only assertions into an always-available check:

* :func:`comm_drift` — per-phase comm bytes of a distributed SCBA run
  vs :func:`~repro.model.communication.omen_exchange_stats` /
  ``dace_exchange_stats`` (scaled by the executed Born iterations) and
  ``residual_allreduce_stats`` — equal **to the byte**, per rank;
* :func:`sse_flops_drift` — per-stage executed flops and element-access
  bytes of the (compiled) SSE pipeline vs the analytic models — equal
  **exactly** (both charge 8 real flops per contraction point, 6 per
  complex multiply; movement bytes are element accesses x 16);
* :func:`drift_report` — both joined for one simulation, the bundle the
  CI telemetry smoke step asserts ``clean`` on.

Heavyweight imports (``core.recipe``, the SDFG stack) happen inside the
functions so that ``repro.telemetry`` stays importable from the lowest
layers (``parallel.simmpi`` routes its metering through
:mod:`repro.telemetry.metrics`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

__all__ = [
    "DriftRecord",
    "DriftReport",
    "comm_drift",
    "sse_flops_drift",
    "drift_report",
]


@dataclass(frozen=True)
class DriftRecord:
    """One measured-vs-modeled reconciliation line."""

    name: str
    unit: str
    measured: float
    modeled: Optional[float]
    #: exact agreement (per-rank / per-element where applicable); an
    #: unmodeled measurement (``modeled is None``) is recorded as matched
    matched: bool
    note: str = ""

    @property
    def delta(self) -> float:
        if self.modeled is None:
            return 0.0
        return self.measured - self.modeled

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "unit": self.unit,
            "measured": self.measured,
            "modeled": self.modeled,
            "matched": self.matched,
            "delta": self.delta,
            "note": self.note,
        }


@dataclass(frozen=True)
class DriftReport:
    """A set of reconciliation records; ``clean`` iff all matched."""

    title: str
    records: Tuple[DriftRecord, ...]

    @property
    def clean(self) -> bool:
        return all(r.matched for r in self.records)

    def record(self, name: str) -> DriftRecord:
        for r in self.records:
            if r.name == name:
                return r
        raise KeyError(f"no drift record {name!r} in {self.title!r}")

    def __add__(self, other: "DriftReport") -> "DriftReport":
        return DriftReport(
            title=f"{self.title}+{other.title}",
            records=self.records + other.records,
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "title": self.title,
            "clean": self.clean,
            "records": [r.to_dict() for r in self.records],
        }

    def to_json(self, **kwargs) -> str:
        return json.dumps(self.to_dict(), **kwargs)

    def describe(self) -> str:
        lines = [f"drift[{self.title}] {'CLEAN' if self.clean else 'DRIFT'}:"]
        for r in self.records:
            modeled = "unmodeled" if r.modeled is None else f"{r.modeled:.0f}"
            status = "ok" if r.matched else f"DRIFT (delta {r.delta:+.0f})"
            note = f"  [{r.note}]" if r.note else ""
            lines.append(
                f"  {r.name:24s} measured {r.measured:.0f} {r.unit}, "
                f"modeled {modeled}: {status}{note}"
            )
        return "\n".join(lines)


def _comm_record(name: str, measured, modeled, note: str = "") -> DriftRecord:
    """Reconcile two per-rank :class:`CommStats` to the byte."""
    return DriftRecord(
        name=name,
        unit="bytes",
        measured=float(measured.sent_bytes.sum()),
        modeled=float(modeled.sent_bytes.sum()),
        matched=bool(measured.matches(modeled)),
        note=note or "per-rank sent/recv/messages exact",
    )


def _resolve_runtime(sim):
    """Accept an :class:`SCBASimulation` or a runtime, return the runtime."""
    rt = getattr(sim, "_runtime", None)
    if rt is None and hasattr(sim, "gf_decomp"):
        rt = sim
    if rt is None or not hasattr(rt, "gf_decomp"):
        raise ValueError(
            "comm drift needs a distributed run: pass the SCBASimulation "
            "(after run()) or the DistributedSCBARuntime itself"
        )
    return rt


def comm_drift(sim, last_comm=None) -> DriftReport:
    """Reconcile a distributed run's measured bytes against §4.1 models.

    ``sim`` is a :class:`~repro.negf.SCBASimulation` whose last
    :meth:`run` went through the distributed runtime, or the
    :class:`~repro.runtime.DistributedSCBARuntime` itself.  The measured
    per-phase :class:`~repro.parallel.CommStats` must equal the exchange
    model scaled by the executed Born iterations — to the byte, per
    rank — and the residual allreduce must equal
    :func:`~repro.model.communication.residual_allreduce_stats`.

    ``last_comm`` overrides the runtime's own per-phase stats with an
    independently re-derived set (e.g. the byte counts a
    :class:`~repro.observe.timeline.TimelineAnalysis` reads back out of
    the exported phase spans) while keeping the same models — the
    trace-vs-model closure check of the performance observatory.
    """
    from ..model.communication import (
        dace_exchange_stats,
        omen_exchange_stats,
        residual_allreduce_stats,
    )

    rt = _resolve_runtime(sim)
    model, s = rt.model, rt.s
    dev = model.structure
    last = rt.last_comm if last_comm is None else last_comm
    records = []

    if "sse" in last:
        if rt.schedule == "dace":
            per_iter = dace_exchange_stats(
                rt.gf_decomp, rt.sse_decomp, dev.neighbors,
                s.Nqz, s.Nw, model.Norb, model.N3D, rt.owner_of,
            )
        else:
            per_iter = omen_exchange_stats(
                rt.gf_decomp, s.Nqz, s.Nw,
                dev.NA, dev.NB, model.Norb, model.N3D, rt.owner_of,
            )
        records.append(
            _comm_record(
                f"sse.{rt.schedule}",
                last["sse"],
                per_iter.scaled(rt.n_sse_iterations),
                note=f"{rt.n_sse_iterations} exchange iterations",
            )
        )
    if "residual" in last:
        records.append(
            _comm_record(
                "residual.allreduce",
                last["residual"],
                residual_allreduce_stats(rt.P, rt.n_residual_checks),
                note=f"{rt.n_residual_checks} convergence checks",
            )
        )
    if "gather" in last:
        records.append(
            DriftRecord(
                name="gather",
                unit="bytes",
                measured=float(last["gather"].sent_bytes.sum()),
                modeled=None,
                matched=True,
                note="final shard collection (unmodeled, informational)",
            )
        )
    return DriftReport(title="comm", records=tuple(records))


def sse_flops_drift(
    pipeline=None,
    dims: Optional[Mapping[str, int]] = None,
    backend: Optional[str] = None,
    seed: int = 0,
) -> DriftReport:
    """Execute every stage of the SSE pipeline and reconcile the
    backend's :class:`~repro.sdfg.interpreter.ExecutionReport` against
    the Table-3 analytic flops and the §4.1 movement bytes — exactly.

    Defaults to the hand recipe (``SSE_PIPELINE``) at the toy
    ``VERIFY_DIMS``; ``backend=None`` follows ``REPRO_SDFG_BACKEND``.
    """
    import numpy as np

    from ..core import recipe
    from ..model.performance import stage_flops

    pipeline = pipeline if pipeline is not None else recipe.SSE_PIPELINE
    dims = dict(dims or recipe.VERIFY_DIMS)
    compiled = pipeline.compile(verify_dims=dims, seed=seed, backend=backend)
    arrays, tables = pipeline.make_inputs(dims, seed=seed)
    movement = pipeline.report(dims)

    records = []
    for i, stage in enumerate(compiled.stages):
        _, executed = compiled.runners[stage.name](dims, arrays, tables)
        report = executed.report
        measured_flops = int(np.rint(report.flops))
        modeled_flops = int(stage_flops(stage.sdfg, dims))
        records.append(
            DriftRecord(
                name=f"{stage.name}.flops",
                unit="flops",
                measured=float(measured_flops),
                modeled=float(modeled_flops),
                matched=measured_flops == modeled_flops,
                note="Table-3 / tasklet_flops analytic count",
            )
        )
        measured_bytes = 16 * int(report.element_reads + report.element_writes)
        modeled_bytes = int(movement.stages[i].total_bytes)
        records.append(
            DriftRecord(
                name=f"{stage.name}.bytes",
                unit="bytes",
                measured=float(measured_bytes),
                modeled=float(modeled_bytes),
                matched=measured_bytes == modeled_bytes,
                note="element accesses x 16 vs measure_movement",
            )
        )
    return DriftReport(
        title=f"sse_flops[{compiled.backend}]", records=tuple(records)
    )


def drift_report(
    sim=None,
    dims: Optional[Mapping[str, int]] = None,
    backend: Optional[str] = None,
) -> DriftReport:
    """The combined reconciliation: comm bytes (when ``sim`` ran
    distributed) plus SSE pipeline flops/bytes."""
    report = sse_flops_drift(dims=dims, backend=backend)
    if sim is not None:
        report = comm_drift(sim) + report
    return report
