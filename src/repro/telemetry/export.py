"""Chrome-trace/Perfetto export of span trees plus JSON metrics snapshots.

:func:`chrome_trace_events` flattens a :class:`~.spans.Tracer`'s
completed span trees into the Chrome trace-event JSON array format —
complete (``"ph": "X"``) events with microsecond timestamps, one *pid*
per track (``main``, ``rank 0``, …) and one *tid* per recording thread,
named through ``process_name``/``thread_name`` metadata events.  The
resulting file opens directly in https://ui.perfetto.dev or
``chrome://tracing``.

:func:`telemetry_snapshot` bundles the trace with a metrics-registry
snapshot into one JSON-serializable dict, the form carried by
``RunResult.telemetry`` / ``SweepResult.telemetry`` / ``Job.metrics``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from . import metrics as _metrics
from . import spans as _spans

__all__ = [
    "walk_span_tree",
    "iter_spans",
    "chrome_trace_events",
    "trace_json",
    "save_trace",
    "telemetry_snapshot",
]


def walk_span_tree(span: Dict[str, Any], depth: int = 0):
    """Yield ``(depth, span_dict)`` over one root's subtree, pre-order.

    The one span-tree walker shared by the Chrome export and the
    observatory's timeline analysis (:mod:`repro.observe.timeline`)."""
    yield depth, span
    for child in span.get("children", ()):
        yield from walk_span_tree(child, depth + 1)


def iter_spans(tracer: Optional[_spans.Tracer] = None):
    """Yield ``(track, depth, span_dict)`` over every completed span."""
    tracer = tracer or _spans.get_tracer()
    for track, root in tracer.roots():
        for depth, span in walk_span_tree(root):
            yield track, depth, span


def _walk(
    span: Dict[str, Any],
    pid: int,
    tid: int,
    t0_ns: int,
    events: List[Dict[str, Any]],
) -> None:
    for _, node in walk_span_tree(span):
        end_ns = (
            node["end_ns"] if node["end_ns"] is not None else node["start_ns"]
        )
        events.append(
            {
                "name": node["name"],
                "ph": "X",
                "ts": (node["start_ns"] - t0_ns) / 1000.0,
                "dur": (end_ns - node["start_ns"]) / 1000.0,
                "pid": pid,
                "tid": tid,
                "args": node.get("attrs", {}),
            }
        )


def _earliest_start(roots) -> int:
    starts = [d["start_ns"] for _, d in roots]
    return min(starts) if starts else 0


def chrome_trace_events(
    tracer: Optional[_spans.Tracer] = None,
) -> List[Dict[str, Any]]:
    """Flatten completed spans into a Chrome trace-event array.

    Timestamps are microseconds relative to the earliest recorded span;
    tracks share the monotonic clock, so merged rank spans line up with
    the driver's phases.
    """
    tracer = tracer or _spans.get_tracer()
    roots = tracer.roots()
    t0_ns = _earliest_start(roots)

    events: List[Dict[str, Any]] = []
    pids: Dict[str, int] = {}
    tids: Dict[tuple, int] = {}
    for track, span in roots:
        if track not in pids:
            pids[track] = len(pids)
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pids[track],
                    "tid": 0,
                    "args": {"name": track},
                }
            )
        thread = span.get("thread", "MainThread")
        key = (track, thread)
        if key not in tids:
            tids[key] = len([k for k in tids if k[0] == track])
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pids[track],
                    "tid": tids[key],
                    "args": {"name": thread},
                }
            )
        _walk(span, pids[track], tids[key], t0_ns, events)
    return events


def trace_json(tracer: Optional[_spans.Tracer] = None) -> str:
    """The Chrome trace as a JSON string (an event array)."""
    return json.dumps(chrome_trace_events(tracer))


def save_trace(path, tracer: Optional[_spans.Tracer] = None) -> None:
    """Write a ``.trace.json`` that Perfetto/chrome://tracing opens."""
    with open(path, "w") as fh:
        fh.write(trace_json(tracer))


def telemetry_snapshot(
    tracer: Optional[_spans.Tracer] = None,
    registry: Optional[_metrics.MetricsRegistry] = None,
) -> Dict[str, Any]:
    """The JSON-serializable bundle carried by results and job metrics."""
    registry = registry or _metrics.get_registry()
    return {
        "mode": _spans.mode(),
        "trace": chrome_trace_events(tracer),
        "metrics": registry.snapshot(),
    }
