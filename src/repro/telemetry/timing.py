"""Shared wall-clock timing: the min-of-repeats ``perf_counter`` idiom.

Before the telemetry subsystem this pattern was copy-pasted across
``autotune/roofline.py``, ``analysis/experiments.py``, ``service/pool.py``
and ``api/session.py``; :func:`timeit` is the single implementation they
now share.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, List

__all__ = ["Timing", "timeit"]


@dataclass(frozen=True)
class Timing:
    """Outcome of :func:`timeit`: per-repeat seconds plus the last result."""

    seconds: List[float]
    #: return value of the final timed call
    result: Any

    @property
    def best(self) -> float:
        """Minimum over repeats — the standard noise-rejecting estimate."""
        return min(self.seconds)

    @property
    def mean(self) -> float:
        return sum(self.seconds) / len(self.seconds)


def timeit(fn: Callable[[], Any], repeats: int = 3, warmup: int = 0) -> Timing:
    """Call ``fn`` ``repeats`` times (after ``warmup`` untimed calls) and
    return the per-call wall times plus the last call's return value.

    ``repeats=1`` is the plain elapsed-wall-clock case (sessions, pools);
    ``repeats>1`` with :attr:`Timing.best` is the benchmark idiom.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    for _ in range(warmup):
        fn()
    seconds = []
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        seconds.append(time.perf_counter() - t0)
    return Timing(seconds=seconds, result=result)
