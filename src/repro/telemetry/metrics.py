"""Process-wide metrics registry: counters, gauges, byte/flop accumulators.

One flat, thread-safe namespace that the previously ad-hoc counters
publish into when the telemetry mode is ``full``: :class:`BoundaryCache`
solves/hits, every transport ``charge()`` (through
:func:`meter_transfer`, the single metering helper shared by
``SimComm.charge`` and the transports that delegate to it), engine batch
sizes, backend ``ExecutionReport`` flops, and service job outcomes.

The registry is purely *additive* observability — the functional
counters (``CommStats`` byte accounting, boundary-cache hit counters)
keep updating in every mode, because correctness checks and the drift
reports depend on them.  ``counter`` names accumulate; ``gauge`` names
overwrite.

Rank workers route their counts into a private registry via the scope
stack (:func:`repro.telemetry.spans.use_scope`); the distributed runtime
merges drained worker registries back with :meth:`MetricsRegistry.merge`.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Mapping, Optional, Union

from . import spans as _spans

__all__ = [
    "MetricsRegistry",
    "get_registry",
    "add",
    "gauge",
    "snapshot",
    "reset",
    "meter_transfer",
]

Number = Union[int, float]


class MetricsRegistry:
    """A flat name → number map with counter and gauge semantics."""

    def __init__(self):
        self._lock = threading.Lock()
        self._values: Dict[str, Number] = {}

    def add(self, name: str, value: Number = 1) -> None:
        """Accumulate ``value`` into the counter ``name``."""
        with self._lock:
            self._values[name] = self._values.get(name, 0) + value

    def gauge(self, name: str, value: Number) -> None:
        """Overwrite the gauge ``name`` with ``value``."""
        with self._lock:
            self._values[name] = value

    def merge(self, other: Mapping[str, Number]) -> None:
        """Accumulate a snapshot (e.g. a drained rank registry)."""
        with self._lock:
            for name, value in other.items():
                self._values[name] = self._values.get(name, 0) + value

    def snapshot(self) -> Dict[str, Number]:
        with self._lock:
            return dict(self._values)

    def drain(self) -> Dict[str, Number]:
        """Snapshot and reset atomically (rank-worker shipping)."""
        with self._lock:
            values = self._values
            self._values = {}
        return values

    def reset(self) -> None:
        with self._lock:
            self._values = {}

    def __len__(self) -> int:
        with self._lock:
            return len(self._values)


#: the process-global registry (driver-side metrics land here)
_GLOBAL_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global metrics registry."""
    return _GLOBAL_REGISTRY


def _active_registry() -> MetricsRegistry:
    scoped = _spans.current_registry()
    return scoped if scoped is not None else _GLOBAL_REGISTRY


def add(name: str, value: Number = 1) -> None:
    """Accumulate into the active registry iff the mode is ``full``."""
    if _spans.metrics_enabled():
        _active_registry().add(name, value)


def gauge(name: str, value: Number) -> None:
    """Set a gauge in the active registry iff the mode is ``full``."""
    if _spans.metrics_enabled():
        _active_registry().gauge(name, value)


def snapshot() -> Dict[str, Number]:
    return _GLOBAL_REGISTRY.snapshot()


def reset() -> None:
    _GLOBAL_REGISTRY.reset()


def meter_transfer(stats: Any, src: int, dst: int, nbytes: int) -> None:
    """The one point-to-point metering helper (paper §4.1 byte accounting).

    Updates the functional per-rank ``CommStats`` (always — the drift
    reports and ``matches()`` assertions depend on it) and, in ``full``
    telemetry mode, publishes the aggregate into the metrics registry.
    Every transport ``charge()`` — ``SimComm``, ``runtime.Transport``,
    ``schedules.LocalTransport`` — funnels through here.

    Local copies (``src == dst``) are free, as in the paper's model.
    """
    if src == dst:
        return
    stats.sent_bytes[src] += nbytes
    stats.recv_bytes[dst] += nbytes
    stats.messages[src] += 1
    if _spans.metrics_enabled():
        registry = _active_registry()
        registry.add("comm.bytes", nbytes)
        registry.add("comm.messages", 1)
