"""Unified observability: tracing spans, a metrics registry, Chrome-trace
export, and model-vs-measured drift validation.

The telemetry layer measures what the rest of the repo executes and
reconciles it against what the paper's analytic models predict:

``repro.telemetry.spans``
    Hierarchical tracing (:func:`trace` / :func:`traced`), thread-safe
    span stacks, per-rank tracers merged as rank-tagged tracks.
``repro.telemetry.metrics``
    The process-wide counter/gauge registry, plus
    :func:`~repro.telemetry.metrics.meter_transfer` — the single
    point-to-point byte-metering helper every transport ``charge()``
    shares.
``repro.telemetry.timing``
    :func:`timeit`, the shared min-of-repeats wall-clock idiom.
``repro.telemetry.export``
    Chrome-trace/Perfetto JSON of the span tree and metrics snapshots
    (``RunResult.telemetry`` / ``SweepResult.telemetry`` /
    ``Job.metrics``).
``repro.telemetry.drift``
    Reconciliation reports: measured comm bytes == §4.1 exchange models
    to the byte, executed flops == Table-3 analytic counts exactly
    (imported lazily — it pulls in the SDFG stack).

Everything is gated on ``REPRO_TELEMETRY`` (``off`` | ``spans`` |
``full``; invalid values raise, mirroring ``REPRO_ENGINE``), with
near-zero overhead when off.  The quickest way in::

    from repro import telemetry
    with telemetry.capture("full") as cap:
        ...  # any run: Session, SCBASimulation, service
    cap.save("run.trace.json")      # open in https://ui.perfetto.dev
    cap.metrics                     # the registry snapshot
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from typing import Any, Dict, List, Optional

from .export import (
    chrome_trace_events,
    save_trace,
    telemetry_snapshot,
    trace_json,
)
from .metrics import MetricsRegistry, get_registry, meter_transfer
from .spans import (
    Span,
    Tracer,
    configure,
    get_tracer,
    metrics_enabled,
    mode,
    scoped_span,
    spans_enabled,
    trace,
    traced,
    use_scope,
)
from .timing import Timing, timeit
from . import metrics

__all__ = [
    "Span",
    "Tracer",
    "trace",
    "traced",
    "configure",
    "mode",
    "spans_enabled",
    "metrics_enabled",
    "get_tracer",
    "scoped_span",
    "use_scope",
    "MetricsRegistry",
    "get_registry",
    "meter_transfer",
    "metrics",
    "Timing",
    "timeit",
    "chrome_trace_events",
    "trace_json",
    "save_trace",
    "telemetry_snapshot",
    "Capture",
    "capture",
    # lazy (PEP 562): the drift module pulls in the SDFG stack
    "drift",
    "DriftReport",
    "DriftRecord",
    "comm_drift",
    "sse_flops_drift",
    "drift_report",
]

_DRIFT_EXPORTS = (
    "DriftReport",
    "DriftRecord",
    "comm_drift",
    "sse_flops_drift",
    "drift_report",
)


def __getattr__(name):
    if name == "drift" or name in _DRIFT_EXPORTS:
        import importlib

        _drift = importlib.import_module(".drift", __name__)
        return _drift if name == "drift" else getattr(_drift, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


class Capture:
    """The outcome of one :func:`capture` block."""

    def __init__(self):
        self.mode: str = "off"
        self.events: List[Dict[str, Any]] = []
        self.metrics: Dict[str, Any] = {}

    def snapshot(self) -> Dict[str, Any]:
        return {"mode": self.mode, "trace": self.events, "metrics": self.metrics}

    def save(self, path) -> None:
        """Write the captured Chrome trace (open in Perfetto)."""
        with open(path, "w") as fh:
            fh.write(json.dumps(self.events))


@contextmanager
def capture(capture_mode: str = "full"):
    """Scope a telemetry recording: activate ``capture_mode``, clear the
    global tracer and registry, and on exit populate the yielded
    :class:`Capture` and restore the previous mode."""
    previous = configure(capture_mode)
    get_tracer().clear()
    get_registry().reset()
    cap = Capture()
    try:
        yield cap
    finally:
        cap.mode = mode()
        cap.events = chrome_trace_events()
        cap.metrics = get_registry().snapshot()
        configure(previous)
