"""Hierarchical tracing spans: the measurement half of the telemetry layer.

A :class:`Span` is one timed region (monotonic ``perf_counter_ns``
timestamps) with attributes and children; spans nest through a
thread-local stack, so a Born-iteration span naturally contains the
engine-row spans it triggered, which contain the RGF batch spans, and so
on.  The :func:`trace` context manager is the single user-facing probe:

    with trace("scba.iteration", iteration=3):
        ...

Everything is gated on the ``REPRO_TELEMETRY`` mode (``off``/``spans``/
``full``; see :func:`repro.config.default_telemetry_mode`).  When
tracing is off, :func:`trace` returns a shared no-op context — no span
object, no dictionary, no lock — so instrumented hot paths stay within
noise of the uninstrumented code.

Rank workers of the distributed runtime record into their *own*
:class:`Tracer` (activated with :func:`scoped_span`) so their spans stay
separate from the driver's even under the in-process ``sim`` transport;
the drained span dictionaries are shipped back through the transport and
merged as rank-tagged tracks (:meth:`Tracer.add_track`).
"""

from __future__ import annotations

import functools
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..config import TELEMETRY_MODES, default_telemetry_mode

__all__ = [
    "Span",
    "Tracer",
    "trace",
    "traced",
    "record_span",
    "configure",
    "mode",
    "spans_enabled",
    "metrics_enabled",
    "get_tracer",
    "scoped_span",
    "use_scope",
    "current_registry",
]


# --------------------------------------------------------------------------
# Mode handling
# --------------------------------------------------------------------------
#: module-level fast-path flags; ``trace()``/``metrics.add()`` check these
#: booleans before doing any work, which is the entire "off" cost.
_MODE: str = "unset"
_SPANS_ON: bool = False
_METRICS_ON: bool = False

_mode_lock = threading.Lock()


def configure(new_mode: Optional[str] = None) -> str:
    """Activate a telemetry mode, returning the previously active one.

    ``None`` re-reads ``REPRO_TELEMETRY`` from the environment (an
    explicitly set but unknown value raises, mirroring ``REPRO_ENGINE``).
    Forked worker processes (``pipe`` transport ranks, multiprocess
    engine pools) inherit the configured mode at fork time.
    """
    global _MODE, _SPANS_ON, _METRICS_ON
    if new_mode is None:
        new_mode = default_telemetry_mode()
    if new_mode not in TELEMETRY_MODES:
        raise ValueError(
            f"telemetry mode {new_mode!r} is not valid; "
            f"expected one of {TELEMETRY_MODES}"
        )
    with _mode_lock:
        previous = _MODE if _MODE != "unset" else default_telemetry_mode()
        _MODE = new_mode
        _SPANS_ON = new_mode in ("spans", "full")
        _METRICS_ON = new_mode == "full"
    return previous


def mode() -> str:
    """The active telemetry mode (resolving ``REPRO_TELEMETRY`` lazily)."""
    if _MODE == "unset":
        configure(None)
    return _MODE


def spans_enabled() -> bool:
    if _MODE == "unset":
        configure(None)
    return _SPANS_ON


def metrics_enabled() -> bool:
    if _MODE == "unset":
        configure(None)
    return _METRICS_ON


# --------------------------------------------------------------------------
# Spans and tracers
# --------------------------------------------------------------------------
class Span:
    """One timed region: name, attributes, children, monotonic ns stamps."""

    __slots__ = ("name", "attrs", "start_ns", "end_ns", "children", "thread")

    def __init__(self, name: str, attrs: Dict[str, Any]):
        self.name = name
        self.attrs = attrs
        self.start_ns = time.perf_counter_ns()
        self.end_ns: Optional[int] = None
        self.children: List["Span"] = []
        self.thread = threading.current_thread().name

    @property
    def duration_s(self) -> float:
        end = self.end_ns if self.end_ns is not None else time.perf_counter_ns()
        return (end - self.start_ns) / 1e9

    def to_dict(self) -> Dict[str, Any]:
        """A picklable/JSON-serializable snapshot of the subtree."""
        return {
            "name": self.name,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns
            if self.end_ns is not None
            else time.perf_counter_ns(),
            "thread": self.thread,
            "attrs": dict(self.attrs),
            "children": [c.to_dict() for c in self.children],
        }


class Tracer:
    """A span sink: per-thread open-span stacks plus completed root spans.

    On Linux ``perf_counter_ns`` is ``CLOCK_MONOTONIC``, which is shared
    across (forked) processes — rank-worker spans merged back into the
    driver's tracer therefore line up on a common timeline.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._local = threading.local()
        #: completed root span dicts, each tagged with a track label
        self._roots: List[Tuple[str, Dict[str, Any]]] = []

    # -- span stack (one per thread) ---------------------------------------
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def start(self, name: str, attrs: Dict[str, Any]) -> Span:
        span = Span(name, attrs)
        self._stack().append(span)
        return span

    def finish(self, span: Span) -> None:
        span.end_ns = time.perf_counter_ns()
        stack = self._stack()
        # tolerate out-of-order exits (generator close etc.): unwind to span
        while stack and stack[-1] is not span:
            stack.pop()
        if stack:
            stack.pop()
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                self._roots.append(("main", span.to_dict()))

    def open_depth(self) -> int:
        """Open spans on the calling thread (testing aid)."""
        return len(self._stack())

    # -- completed spans ---------------------------------------------------
    def add_track(self, track: str, span_dicts: List[Dict[str, Any]]) -> None:
        """Merge foreign root-span dicts (e.g. a drained rank) as ``track``."""
        with self._lock:
            for d in span_dicts:
                self._roots.append((track, d))

    def roots(self) -> List[Tuple[str, Dict[str, Any]]]:
        with self._lock:
            return list(self._roots)

    def drain(self) -> List[Dict[str, Any]]:
        """Pop all completed root spans as dicts (picklable, track-less)."""
        with self._lock:
            roots = [d for _, d in self._roots]
            self._roots = []
        return roots

    def clear(self) -> None:
        with self._lock:
            self._roots = []
        self._local = threading.local()


#: the process-global tracer (driver-side spans land here)
_GLOBAL_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-global tracer."""
    return _GLOBAL_TRACER


# --------------------------------------------------------------------------
# Scopes: thread-local (tracer, registry) redirection for rank workers
# --------------------------------------------------------------------------
_scope_local = threading.local()


def _scope_stack() -> List[Tuple[Tracer, Any]]:
    stack = getattr(_scope_local, "stack", None)
    if stack is None:
        stack = _scope_local.stack = []
    return stack


def current_tracer() -> Tracer:
    stack = _scope_stack()
    return stack[-1][0] if stack else _GLOBAL_TRACER


def current_registry() -> Any:
    """The registry of the innermost active scope (None → process global)."""
    stack = _scope_stack()
    return stack[-1][1] if stack else None


@contextmanager
def use_scope(tracer: Optional[Tracer], registry: Any = None) -> Iterator[None]:
    """Route spans (and metrics, when ``registry`` is given) into private
    sinks for the duration — how rank workers keep their telemetry
    separate from the driver's under the in-process ``sim`` transport."""
    stack = _scope_stack()
    stack.append((tracer or _GLOBAL_TRACER, registry))
    try:
        yield
    finally:
        stack.pop()


# --------------------------------------------------------------------------
# The probe: trace() / traced()
# --------------------------------------------------------------------------
class _NullContext:
    """Shared no-op context returned by :func:`trace` when spans are off."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


_NULL = _NullContext()


class _SpanContext:
    __slots__ = ("name", "attrs", "tracer", "span")

    def __init__(self, name: str, attrs: Dict[str, Any]):
        self.name = name
        self.attrs = attrs
        self.tracer = current_tracer()
        self.span: Optional[Span] = None

    def __enter__(self) -> Span:
        self.span = self.tracer.start(self.name, self.attrs)
        return self.span

    def __exit__(self, *exc) -> bool:
        if self.span is not None:
            self.tracer.finish(self.span)
        return False


def trace(name: str, **attrs: Any):
    """Open a span named ``name`` for the duration of a ``with`` block.

    Yields the live :class:`Span` (``None`` when tracing is off), so the
    body may attach late attributes via ``span.attrs[...] = ...``.
    """
    if not _SPANS_ON:
        if _MODE == "unset":
            configure(None)
            if _SPANS_ON:
                return _SpanContext(name, attrs)
        return _NULL
    return _SpanContext(name, attrs)


def record_span(
    name: str,
    start_ns: int,
    end_ns: int,
    tracer: Optional[Tracer] = None,
    **attrs: Any,
) -> None:
    """Record an already-measured interval as a completed root span.

    The probe for blocking points whose duration is known only after the
    fact — transport receive waits, gap-inferred idle time — where a
    ``with trace(...)`` block cannot wrap the interval.  The span lands
    directly in ``tracer`` (default: the current scope's) as a root, so
    it never nests under whatever happens to be open on this thread.
    No-op when spans are off; zero/negative intervals are dropped.
    """
    if not spans_enabled() or end_ns <= start_ns:
        return
    span = Span(name, attrs)
    span.start_ns = int(start_ns)
    span.end_ns = int(end_ns)
    target = tracer if tracer is not None else current_tracer()
    target.add_track("main", [span.to_dict()])


def traced(name: Optional[str] = None, **attrs: Any):
    """Decorator twin of :func:`trace`; the mode is checked per call, so
    decorating at import time is safe."""

    def decorate(fn):
        span_name = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with trace(span_name, **attrs):
                return fn(*args, **kwargs)

        return wrapper

    return decorate


@contextmanager
def scoped_span(
    tracer: Tracer, name: str, registry: Any = None, **attrs: Any
) -> Iterator[Optional[Span]]:
    """Activate ``tracer`` (and optionally ``registry``) and open a span
    in it — the rank-worker entry-point probe.  No-op when spans are off
    (metrics still redirect when enabled so worker counts stay local)."""
    if not spans_enabled():
        if metrics_enabled() and registry is not None:
            with use_scope(None, registry):
                yield None
        else:
            yield None
        return
    with use_scope(tracer, registry):
        with trace(name, **attrs) as span:
            yield span
