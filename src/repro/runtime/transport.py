"""Pluggable rank transports for the distributed SCBA runtime.

A transport hosts the per-rank workers and carries every payload the
communication schedules move between them, metering each logical
``src -> dst`` transfer through a :class:`~repro.parallel.simmpi.SimComm`
(the paper's per-rank byte accounting):

* :class:`SimTransport` — all ranks live in this process.  Calls are
  direct method invocations, so results and byte counts are exactly
  reproducible (the bit-exact accounting reference).
* :class:`PipeTransport` — each rank is a forked worker process holding
  its own resident state; commands and payloads physically cross
  ``multiprocessing`` pipes.  ``call_all`` dispatches to every rank
  before collecting, so the compute-heavy steps (the per-rank RGF rows
  and the DaCe tile kernels) genuinely run in parallel.

Both meter the same logical rank-to-rank bytes, so measured volumes are
transport-independent and comparable against the closed-form §4.1 models
(:func:`repro.model.communication.omen_exchange_stats` /
:func:`~repro.model.communication.dace_exchange_stats`).
"""

from __future__ import annotations

import multiprocessing as mp
import time
import traceback
import weakref
from typing import Callable, Dict, Optional, Sequence, Tuple

from ..config import RUNTIMES
from ..parallel.schedules import LocalTransport
from ..parallel.simmpi import CommStats, SimComm
from ..telemetry.spans import record_span, scoped_span, spans_enabled

__all__ = [
    "TransportError",
    "Transport",
    "SimTransport",
    "PipeTransport",
    "TRANSPORTS",
    "make_transport",
]


class TransportError(RuntimeError):
    """A transport could not be created or a worker failed irrecoverably."""


class Transport:
    """Base class: worker lifecycle + metered data movement."""

    name = "base"

    def __init__(self, P: int):
        self.comm = SimComm(P)

    @property
    def P(self) -> int:
        return self.comm.P

    @property
    def stats(self) -> CommStats:
        return self.comm.stats

    def charge(self, src: int, dst: int, nbytes: int) -> None:
        """Meter one logical rank-to-rank transfer (self-sends free).

        Delegates to :meth:`SimComm.charge` and through it to the one
        shared :func:`repro.telemetry.metrics.meter_transfer` helper.
        """
        self.comm.charge(src, dst, int(nbytes))

    # -- lifecycle --------------------------------------------------------------
    def start(self, factory: Callable[[int], object]) -> None:
        """Create the ``P`` rank workers from ``factory(rank)``."""
        raise NotImplementedError

    def call(self, rank: int, method: str, *args):
        """Invoke ``method(*args)`` on one rank's worker."""
        raise NotImplementedError

    def call_all(self, method: str, args_list: Sequence[Tuple]):
        """Invoke ``method`` on every rank (parallel where possible)."""
        raise NotImplementedError

    # -- wait accounting --------------------------------------------------------
    def mark_epoch(self) -> None:
        """Start measuring per-rank wait time (no-op when spans are off).

        Called by the runtime right after the ``runtime.run`` span opens;
        from here until :meth:`flush_waits` every gap between a rank's
        activities is recorded as a ``runtime.wait`` span on its track.
        """

    def flush_waits(self) -> None:
        """Close the wait-accounting window: record each rank's tail wait
        (last activity → now) and stop measuring."""

    def close(self) -> None:
        """Release workers (idempotent)."""

    def __enter__(self) -> "Transport":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


class SimTransport(Transport):
    """In-process ranks: sequential execution, bit-exact accounting.

    Dispatch and metering are the schedules' own
    :class:`~repro.parallel.schedules.LocalTransport` (one shared
    implementation for the one-shot phases and the resident runtime);
    this class only adds the worker lifecycle.
    """

    name = "sim"

    def __init__(self, P: int):
        super().__init__(P)
        self._local: Optional[LocalTransport] = None
        #: per-rank end of the last activity inside the wait window
        #: (``None`` outside a :meth:`mark_epoch`/:meth:`flush_waits` pair)
        self._last_end_ns: Optional[Dict[int, int]] = None

    def start(self, factory: Callable[[int], object]) -> None:
        self._local = LocalTransport(
            self.comm, [factory(rank) for rank in range(self.P)]
        )

    def _rank_tracer(self, rank: int):
        return getattr(self._local.stores[rank], "tracer", None)

    def call(self, rank: int, method: str, *args):
        if not spans_enabled():
            return self._local.call(rank, method, *args)
        tracer = self._rank_tracer(rank)
        if tracer is None or method == "drain_telemetry":
            return self._local.call(rank, method, *args)
        with scoped_span(
            tracer, "runtime.exec", rank=rank, method=method
        ) as span:
            result = self._local.call(rank, method, *args)
        if self._last_end_ns is not None and span is not None:
            # anchor the wait on the exec span's own stamps so the
            # rank's wait+exec intervals tile the window gap-free
            last = self._last_end_ns.get(rank)
            if last is not None:
                record_span(
                    "runtime.wait", last, span.start_ns, tracer=tracer,
                    rank=rank, cause="serialized",
                )
            self._last_end_ns[rank] = span.end_ns
        return result

    def call_all(self, method: str, args_list: Sequence[Tuple]):
        if not spans_enabled():
            return self._local.call_all(method, args_list)
        return [
            self.call(r, method, *args) for r, args in enumerate(args_list)
        ]

    def mark_epoch(self) -> None:
        if not spans_enabled():
            return
        now = time.perf_counter_ns()
        self._last_end_ns = {rank: now for rank in range(self.P)}

    def flush_waits(self) -> None:
        if self._last_end_ns is None:
            return
        now = time.perf_counter_ns()
        for rank, last in self._last_end_ns.items():
            tracer = self._rank_tracer(rank)
            if tracer is not None:
                record_span(
                    "runtime.wait", last, now, tracer=tracer,
                    rank=rank, cause="serialized",
                )
        self._last_end_ns = None

    def close(self) -> None:
        self._local = None
        self._last_end_ns = None


def _pipe_worker_main(factory, rank: int, conn) -> None:
    """Worker loop: build the resident rank state, serve commands.

    Between :data:`_MARK_EPOCH` and :data:`_FLUSH_WAITS` control messages
    the loop measures its own ``conn.recv()`` blocking time — genuine
    rank idle, recorded as ``runtime.wait`` spans in the worker's tracer
    — and wraps each served method in a ``runtime.exec`` span, so the
    drained rank track carries measured wait *and* busy intervals.
    """
    try:
        worker = factory(rank)
    except BaseException:  # noqa: BLE001 - report construction failures too
        conn.send((False, traceback.format_exc()))
        conn.close()
        return
    conn.send((True, None))  # construction handshake
    tracer = getattr(worker, "tracer", None)
    last_end_ns: Optional[int] = None  # wait-window state (None = inactive)
    while True:
        msg = conn.recv()
        recv_ns = time.perf_counter_ns()
        if msg is None:
            break
        method, args = msg
        if method == _MARK_EPOCH:
            last_end_ns = time.perf_counter_ns()
            conn.send((True, None))
            continue
        if method == _FLUSH_WAITS:
            if last_end_ns is not None and tracer is not None:
                record_span(
                    "runtime.wait", last_end_ns, recv_ns, tracer=tracer,
                    rank=rank, cause="recv",
                )
            last_end_ns = None
            conn.send((True, None))
            continue
        instrument = (
            tracer is not None
            and method != "drain_telemetry"
            and spans_enabled()
        )
        try:
            if instrument:
                with scoped_span(
                    tracer, "runtime.exec", rank=rank, method=method
                ) as span:
                    result = getattr(worker, method)(*args)
                if last_end_ns is not None and span is not None:
                    # wait = recv blocking + dispatch, anchored on the
                    # exec span's stamps so wait+exec tile gap-free
                    record_span(
                        "runtime.wait", last_end_ns, span.start_ns,
                        tracer=tracer, rank=rank, cause="recv",
                    )
                    last_end_ns = span.end_ns
            else:
                result = getattr(worker, method)(*args)
                if last_end_ns is not None:
                    last_end_ns = time.perf_counter_ns()
            conn.send((True, result))
        except BaseException:  # noqa: BLE001 - ship the traceback upward
            conn.send((False, traceback.format_exc()))
    conn.close()


#: control messages of the pipe worker loop (never worker method names)
_MARK_EPOCH = "__mark_epoch__"
_FLUSH_WAITS = "__flush_waits__"


def _terminate_procs(procs):
    for proc in procs:
        if proc.is_alive():
            proc.terminate()


class PipeTransport(Transport):
    """Forked rank processes connected through multiprocessing pipes.

    Every command and payload is pickled across a pipe, so the schedule
    exchanges move real bytes between address spaces; ``call_all``
    overlaps the ranks' compute.  Requires the ``fork`` start method (the
    model and decompositions are inherited, never pickled); platforms
    without it raise a :class:`TransportError` — use ``sim`` there.
    """

    name = "pipe"

    def __init__(self, P: int):
        super().__init__(P)
        self._conns = None
        self._procs = None

    def start(self, factory: Callable[[int], object]) -> None:
        try:
            ctx = mp.get_context("fork")
        except ValueError as exc:  # pragma: no cover - non-POSIX platforms
            raise TransportError(
                "the pipe transport needs the fork start method; "
                "use runtime='sim' on this platform"
            ) from exc
        conns, procs = [], []
        for rank in range(self.P):
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=_pipe_worker_main,
                args=(factory, rank, child),
                daemon=True,
            )
            proc.start()
            child.close()
            conns.append(parent)
            procs.append(proc)
        self._conns, self._procs = conns, procs
        weakref.finalize(self, _terminate_procs, procs)
        for rank, conn in enumerate(conns):
            ok, err = conn.recv()
            if not ok:
                self.close()
                raise TransportError(f"rank {rank} failed to start:\n{err}")

    def _recv(self, rank: int):
        ok, payload = self._conns[rank].recv()
        if not ok:
            raise TransportError(f"rank {rank} worker failed:\n{payload}")
        return payload

    def call(self, rank: int, method: str, *args):
        self._conns[rank].send((method, args))
        return self._recv(rank)

    def call_all(self, method: str, args_list: Sequence[Tuple]):
        for rank, args in enumerate(args_list):
            self._conns[rank].send((method, args))
        return [self._recv(rank) for rank in range(self.P)]

    def mark_epoch(self) -> None:
        if spans_enabled():
            self.call_all(_MARK_EPOCH, [()] * self.P)

    def flush_waits(self) -> None:
        if spans_enabled():
            self.call_all(_FLUSH_WAITS, [()] * self.P)

    def close(self) -> None:
        if self._conns is None:
            return
        for conn in self._conns:
            try:
                conn.send(None)
                conn.close()
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
        self._conns = self._procs = None


TRANSPORTS = {
    SimTransport.name: SimTransport,
    PipeTransport.name: PipeTransport,
}


def make_transport(name: str, P: int) -> Transport:
    """Instantiate the transport behind runtime ``name`` for ``P`` ranks."""
    try:
        cls = TRANSPORTS[name]
    except KeyError:
        raise ValueError(
            f"unknown runtime transport {name!r}; expected one of "
            f"{tuple(TRANSPORTS)} (RUNTIMES={RUNTIMES})"
        ) from None
    return cls(P)
