"""The rank-parallel SCBA runtime: a distributed Born loop (Fig. 2/6).

:class:`DistributedSCBARuntime` executes the full self-consistent Born
iteration over ``P`` ranks, the execution tier the paper's §4.1 scaling
results run on (Fig. 13, Tables 4-5):

* each rank owns its ``(kz, E-chunk)`` shard of an
  :class:`~repro.parallel.decomposition.OmenDecomposition` plus a
  round-robin set of ``(qz, ω)`` phonon rows, and solves them with the
  existing batched RGF engine behind a per-rank boundary cache
  (:class:`~repro.runtime.rank.RankWorker`);
* every iteration, G≷ is exchanged through a resident SSE schedule —
  :class:`~repro.parallel.schedules.OmenExchange` (per-round broadcasts)
  or :class:`~repro.parallel.schedules.DaceExchange` (TE x TA tiles from
  the :func:`~repro.model.distribution.search_tiling` tile search) —
  including the Π≷/D≷ feedback path: reduced Π≷ rows drive the owners'
  phonon solves of the next iteration;
* convergence is a metered allreduce of the per-rank ``|ΔG<|²``
  contributions, reproducing the serial residual;
* everything runs over a pluggable transport
  (:mod:`repro.runtime.transport`): ``sim`` in-process ranks with
  bit-exact byte accounting, or ``pipe`` forked rank processes moving
  real bytes.

The per-phase per-rank byte counts land in :attr:`last_comm`
(``{"sse", "residual", "gather"}`` → :class:`~repro.parallel.CommStats`)
and are asserted equal to the closed-form §4.1 exchange models in
``benchmarks/bench_runtime_scaling.py`` / ``tests/test_runtime.py``.
Results match the serial :class:`~repro.negf.SCBASimulation` to ≤ 1e-10.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..config import SSE_SCHEDULES, validate_parameters
from ..model.distribution import search_tiling
from ..parallel.decomposition import DaceDecomposition, OmenDecomposition
from ..parallel.schedules import (
    DaceExchange,
    OmenExchange,
    default_round_owner,
)
from ..parallel.simmpi import CommStats
from ..telemetry import metrics as _metrics
from ..telemetry.spans import (
    get_tracer,
    metrics_enabled,
    spans_enabled,
    trace,
)
from .rank import RankWorker
from .transport import Transport, make_transport

__all__ = ["DistributedSCBARuntime"]


class DistributedSCBARuntime:
    """Run the Born loop rank-parallel over an SSE communication schedule.

    Parameters are taken from ``settings`` (``runtime``/``ranks``/
    ``schedule``) unless overridden explicitly.  The runtime is resident:
    workers (and their boundary caches) survive across :meth:`run` calls,
    so a :class:`~repro.api.Session` sweep reuses them point to point.
    """

    def __init__(
        self,
        model,
        settings,
        ranks: Optional[int] = None,
        schedule: Optional[str] = None,
        transport: Optional[str] = None,
    ):
        self.model = model
        self.s = settings
        s = settings
        runtime = getattr(s, "runtime", "serial")
        self.transport_name = transport or (
            runtime if runtime != "serial" else "sim"
        )
        self.schedule = schedule or getattr(s, "schedule", "omen")
        if self.schedule not in SSE_SCHEDULES:
            raise ValueError(
                f"unknown SSE schedule {self.schedule!r}; "
                f"expected one of {SSE_SCHEDULES}"
            )

        P = ranks if ranks is not None else (getattr(s, "ranks", None) or s.Nkz)
        try:
            self.gf_decomp = OmenDecomposition(Nkz=s.Nkz, NE=s.NE, P=P)
        except ValueError as exc:
            raise ValueError(
                f"ranks={P} cannot decompose the (Nkz={s.Nkz}, NE={s.NE}) "
                f"grid: {exc}"
            ) from exc
        self.owner_of = default_round_owner(s.Nw, P)
        rounds = [(q, w) for q in range(s.Nqz) for w in range(s.Nw)]
        self.phonon_rows: List[List[Tuple[int, int]]] = [
            [row for row in rounds if self.owner_of(*row) == r]
            for r in range(P)
        ]

        dev = model.structure
        self.sse_decomp: Optional[DaceDecomposition] = None
        if self.schedule == "dace":
            params = validate_parameters(
                Nkz=s.Nkz, Nqz=s.Nqz, NE=s.NE, Nw=s.Nw,
                NA=dev.NA, NB=dev.NB, Norb=model.Norb, N3D=model.N3D,
                bnum=dev.bnum,
            )
            tiling = search_tiling(params, P, divisors_only=True)
            self.sse_decomp = DaceDecomposition(
                NE=s.NE, NA=dev.NA, TE=tiling.TE, TA=tiling.TA, Nw=s.Nw
            )
            self.exchange = DaceExchange(
                self.gf_decomp, self.sse_decomp, dev.neighbors,
                s.Nqz, s.Nw, self.owner_of,
            )
        else:
            self.exchange = OmenExchange(
                self.gf_decomp, s.Nqz, s.Nw, self.owner_of
            )

        self._transport: Optional[Transport] = None
        #: per-phase per-rank accounting of the last :meth:`run`
        self.last_comm: Dict[str, CommStats] = {}
        #: SSE exchanges executed by the last :meth:`run`
        self.n_sse_iterations = 0
        #: residual allreduces executed by the last :meth:`run` (the
        #: ``n_checks`` of the drift model — equals ``len(history)``)
        self.n_residual_checks = 0

    # -- lifecycle ----------------------------------------------------------------
    @property
    def P(self) -> int:
        return self.gf_decomp.P

    def _ensure_transport(self) -> Transport:
        if self._transport is None:
            t = make_transport(self.transport_name, self.P)
            model = self.model
            state = dict(vars(self.s))
            decomp = self.gf_decomp
            rows = self.phonon_rows

            def factory(rank: int) -> RankWorker:
                return RankWorker(rank, model, state, decomp, rows[rank])

            t.start(factory)
            self._transport = t
        return self._transport

    def close(self) -> None:
        """Shut the transport (worker processes included) down."""
        if self._transport is not None:
            self._transport.close()
            self._transport = None

    def __enter__(self) -> "DistributedSCBARuntime":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    @contextmanager
    def _meter(self, phase: str, span=None):
        """Accumulate the transport-byte delta of a block under ``phase``.

        When the block's phase ``span`` is live, the per-rank delta is
        also attached to it (``attrs["comm"]``), so exported timelines
        carry the exact §4.1-comparable byte counts alongside the timing
        (consumed by :mod:`repro.observe.timeline`).
        """
        t = self._transport
        before = t.comm.snapshot()
        try:
            yield
        finally:
            after = t.comm.snapshot()
            delta = CommStats(
                sent_bytes=after.sent_bytes - before.sent_bytes,
                recv_bytes=after.recv_bytes - before.recv_bytes,
                messages=after.messages - before.messages,
            )
            if phase in self.last_comm:
                self.last_comm[phase] = self.last_comm[phase] + delta
            else:
                self.last_comm[phase] = delta
            if span is not None:
                span.attrs["comm"] = delta.to_dict()

    # -- driver ------------------------------------------------------------------
    def run(self, ballistic: bool = False):
        """Iterate GF ⇄ SSE to self-consistency, distributed over P ranks.

        Follows the serial :meth:`~repro.negf.SCBASimulation.run` state
        machine exactly (same residual, same mixing, same break points),
        so the returned :class:`~repro.negf.SCBAResult` matches the
        serial one to ≤ 1e-10.
        """
        from ..negf.scba import SCBAResult  # scba layers on the runtime

        t = self._ensure_transport()
        s = self.s
        P = self.P
        t.call_all("begin_run", [(dict(vars(s)),)] * P)
        t.comm.reset()
        self.last_comm = {}
        self.n_sse_iterations = 0
        self.n_residual_checks = 0

        history: List[float] = []
        converged = False
        iterations = 0
        max_iter = 1 if ballistic else s.max_iterations
        with trace(
            "runtime.run", ranks=P, schedule=self.schedule,
            transport=self.transport_name,
        ):
            t.mark_epoch()
            for it in range(max_iter):
                iterations = it + 1
                with trace("runtime.solve_gf", iteration=it):
                    parts = t.call_all("solve_gf", [()] * P)
                if parts[0][0]:  # every rank saw a previous iteration
                    with trace(
                        "runtime.residual_allreduce", iteration=it
                    ) as span, self._meter("residual", span):
                        # allreduce of the 2-float residual contribution
                        for r in range(1, P):
                            t.charge(r, 0, 16)
                        for r in range(1, P):
                            t.charge(0, r, 16)
                    self.n_residual_checks += 1
                    num = float(np.sqrt(sum(p[1] for p in parts)))
                    den = max(
                        float(np.sqrt(sum(p[2] for p in parts))), 1e-300
                    )
                    history.append(num / den)
                    if history[-1] < s.tolerance:
                        converged = True
                        break
                if ballistic:
                    converged = True
                    break
                with trace(
                    "runtime.sse_exchange", iteration=it
                ) as span, self._meter("sse", span):
                    t.call_all("sse_begin", [()] * P)
                    self.exchange.run_iteration(t)
                    t.call_all("finish_iteration", [()] * P)
                self.n_sse_iterations += 1

            with trace("runtime.gather") as span, \
                    self._meter("gather", span):
                tensors = self._gather(t)
            t.flush_waits()
        self._drain_rank_telemetry(t)

        from ..negf.scba import density_observable, dissipation_observable

        Gl, Gg, I_L, I_R, Sl, Sg, Dl, Dg, Pl, Pg = tensors
        grid_energies = np.linspace(s.e_min, s.e_max, s.NE)
        dE = grid_energies[1] - grid_energies[0] if s.NE > 1 else 1.0
        zero_sig = np.zeros_like(Gl)
        zero_pi = np.zeros_like(Dl)
        return SCBAResult(
            Gl=Gl,
            Gg=Gg,
            Dl=Dl,
            Dg=Dg,
            Sigma_l=Sl if Sl is not None else zero_sig,
            Sigma_g=Sg if Sg is not None else zero_sig,
            Pi_l=Pl if Pl is not None else zero_pi,
            Pi_g=Pg if Pg is not None else zero_pi,
            iterations=iterations,
            converged=converged,
            history=history,
            current_left=I_L,
            current_right=I_R,
            density=density_observable(Gl, dE, s.Nkz),
            dissipation=dissipation_observable(
                Gl, Gg, Sl, Sg, grid_energies, dE, s.Nkz
            ),
        )

    # -- final assembly -----------------------------------------------------------
    def _gather(self, t: Transport):
        """Collect every shard at rank 0 and assemble the global tensors."""
        s, model = self.s, self.model
        P = self.P
        NA, Norb = model.structure.NA, model.Norb
        NB, N3D = model.structure.NB, model.N3D

        Gl = np.zeros((s.Nkz, s.NE, NA, Norb, Norb), dtype=np.complex128)
        Gg = np.zeros_like(Gl)
        I_L = np.zeros((s.Nkz, s.NE))
        I_R = np.zeros_like(I_L)
        Sl = np.zeros_like(Gl)
        Sg = np.zeros_like(Gl)
        have_sigma = True
        for r in range(P):
            shard = t.call(r, "result_shard")
            for value in shard.values():
                if value is not None:
                    t.charge(r, 0, value.nbytes)
            k, _ = self.gf_decomp.coords(r)
            esl = self.gf_decomp.energy_slice(r)
            Gl[k, esl] = shard["Gl"]
            Gg[k, esl] = shard["Gg"]
            I_L[k, esl] = shard["I_L"]
            I_R[k, esl] = shard["I_R"]
            if shard["Sl"] is None:
                have_sigma = False
            else:
                Sl[k, esl] = shard["Sl"]
                Sg[k, esl] = shard["Sg"]

        Dl = np.zeros((s.Nqz, s.Nw, NA, NB + 1, N3D, N3D), dtype=np.complex128)
        Dg = np.zeros_like(Dl)
        Pl = np.zeros_like(Dl)
        Pg = np.zeros_like(Dl)
        have_pi = True
        for r in range(P):
            rows = t.call(r, "phonon_shard")
            for (q, w), (dl, dg, pl, pg) in rows.items():
                for value in (dl, dg, pl, pg):
                    if value is not None:
                        t.charge(r, 0, value.nbytes)
                Dl[q, w] = dl
                Dg[q, w] = dg
                if pl is None:
                    have_pi = False
                else:
                    Pl[q, w] = pl
                    Pg[q, w] = pg
        return (
            Gl, Gg, I_L, I_R,
            Sl if have_sigma else None,
            Sg if have_sigma else None,
            Dl, Dg,
            Pl if have_pi else None,
            Pg if have_pi else None,
        )

    # -- accounting ---------------------------------------------------------------
    def _drain_rank_telemetry(self, t: Transport) -> None:
        """Ship per-rank spans/metrics back and merge them driver-side.

        Spans become rank-tagged tracks of the driver's tracer (aligned
        timelines: ``perf_counter_ns`` is process-shared CLOCK_MONOTONIC
        on Linux); rank metrics accumulate into the global registry.
        """
        if not (spans_enabled() or metrics_enabled()):
            return
        tracer = get_tracer()
        registry = _metrics.get_registry()
        for r, tele in enumerate(
            t.call_all("drain_telemetry", [()] * self.P)
        ):
            if tele["spans"]:
                tracer.add_track(f"rank {r}", tele["spans"])
            if tele["metrics"]:
                registry.merge(tele["metrics"])

    def comm_stats(self) -> Dict[str, CommStats]:
        """Per-phase per-rank stats of the last run (copy-safe view)."""
        return dict(self.last_comm)

    def boundary_counters(self) -> Dict[str, int]:
        """Summed per-rank boundary-cache counters (0 before any run)."""
        out = {"el_solves": 0, "el_hits": 0, "ph_solves": 0, "ph_hits": 0}
        if self._transport is not None:
            for counters in self._transport.call_all("counters", [()] * self.P):
                for key, value in counters.items():
                    out[key] += value
        return out
