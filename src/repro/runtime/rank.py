"""The resident per-rank state of the distributed SCBA loop.

A :class:`RankWorker` extends the schedule-facing
:class:`~repro.parallel.schedules.RankSSEStore` protocol with everything
one rank needs to run whole Born iterations:

* a rank-local :class:`~repro.negf.engine.BatchedEngine` over its own
  :class:`~repro.negf.engine.SpectralGrid`, hence a *per-rank*
  :class:`~repro.negf.engine.BoundaryCache` — lead self-energies for the
  rank's grid points are solved once and reused across Born iterations
  and sweep points (counters exposed through :meth:`counters`);
* the electron shard ``G≷[k, esl]`` and the owned phonon rows
  ``D≷(q, w)``, refreshed by :meth:`solve_gf` each iteration (with the
  Π≷ feedback from the previous exchange applied to the phonon systems);
* the Σ≷/Π≷ mixing state of the Born loop, updated rank-locally by
  :meth:`finish_iteration` after each exchange.

Workers are constructed once per runtime (inside the rank process for
the pipe transport) and survive across runs; :meth:`begin_run` syncs the
sweep-mutable settings fields and resets the loop state while keeping
the boundary cache warm.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..negf.engine import BatchedEngine, SpectralGrid
from ..negf.sse import preprocess_phonon_green, retarded_from_lesser_greater
from ..parallel.decomposition import OmenDecomposition
from ..parallel.schedules import RankSSEStore
from ..telemetry.metrics import MetricsRegistry
from ..telemetry.spans import Tracer, scoped_span

__all__ = ["RankWorker"]


class RankWorker(RankSSEStore):
    """One rank of the distributed Born loop (see module docstring)."""

    def __init__(
        self,
        rank: int,
        model,
        settings_state: Dict,
        gf_decomp: OmenDecomposition,
        phonon_rows: List[Tuple[int, int]],
    ):
        from ..negf.scba import SCBASettings  # scba layers on the runtime

        s = SCBASettings(**settings_state)
        grid = SpectralGrid(model, s)
        self.grid = grid
        self.engine = BatchedEngine(grid)
        k, _ = gf_decomp.coords(rank)
        super().__init__(
            rank,
            k,
            gf_decomp.energy_slice(rank),
            s.NE,
            model.dH,
            model.structure.neighbors,
            grid.rev,
        )
        self.phonon_rows = list(phonon_rows)
        self.rows_by_q: Dict[int, List[int]] = {}
        for q, w in self.phonon_rows:
            self.rows_by_q.setdefault(q, []).append(w)
        #: rank-private telemetry sinks — kept separate from the driver's
        #: even under the in-process ``sim`` transport, drained through
        #: :meth:`drain_telemetry` and merged rank-tagged by the runtime
        self.tracer = Tracer()
        self.registry = MetricsRegistry()
        self._reset_state()

    # -- run lifecycle ----------------------------------------------------------
    def _reset_state(self) -> None:
        self.Gl = self.Gg = None
        self.I_L = self.I_R = None
        self.Sl = self.Sg = self.Sr = None
        #: raw phonon rows from the last GF phase: {(q, w): [2, NA, NB+1, ...]}
        self.D: Dict[Tuple[int, int], np.ndarray] = {}
        self.Dc = {}
        #: mixed Π≷ / retarded Π rows (owned rows only)
        self.Pi: Dict[Tuple[int, int], Tuple[np.ndarray, np.ndarray]] = {}
        self.Pi_r: Dict[Tuple[int, int], np.ndarray] = {}
        self.pi_raw = {}
        self._acc_Sl = self._acc_Sg = None

    def begin_run(self, state: Dict) -> None:
        """Sync sweep-mutable settings and reset the Born-loop state.

        Mirrors the multiprocess engine's worker settings sync: only
        non-structural fields (bias, temperatures, coupling, …) ever
        change while a runtime lives, so plain setattr is sufficient and
        the boundary cache stays valid (and warm) across sweep points.
        """
        for key, value in state.items():
            setattr(self.grid.s, key, value)
        self._reset_state()

    # -- GF phase ---------------------------------------------------------------
    def solve_gf(self) -> Tuple[bool, float, float]:
        """One GF phase: refresh the electron shard and owned phonon rows.

        Returns ``(had_previous, |ΔG<|², |G<|²)`` — the rank's residual
        contributions, allreduced by the driver into the global Born
        convergence criterion.  Engine/boundary telemetry recorded inside
        lands in this rank's private tracer/registry.
        """
        with scoped_span(
            self.tracer, "rank.solve_gf", registry=self.registry,
            rank=self.rank,
        ):
            return self._solve_gf()

    def _solve_gf(self) -> Tuple[bool, float, float]:
        e_idx = np.arange(self.esl.start, self.esl.stop)
        Gl_prev = self.Gl
        Gl, Gg, I_L, I_R = self.engine.electron_row(
            self.k, e_idx, self.Sr, self.Sl
        )
        num2 = (
            float(np.sum(np.abs(Gl - Gl_prev) ** 2))
            if Gl_prev is not None
            else 0.0
        )
        den2 = float(np.sum(np.abs(Gl) ** 2))
        self.Gl, self.Gg = Gl, Gg
        self.I_L, self.I_R = I_L, I_R

        for q, ws in self.rows_by_q.items():
            w_idx = np.asarray(ws)
            pr = pl = None
            if self.Pi_r:
                pr = np.stack([self.Pi_r[(q, w)] for w in ws])
                pl = np.stack([self.Pi[(q, w)][0] for w in ws])
            Dl_rows, Dg_rows = self.engine.phonon_row(q, w_idx, pr, pl)
            for j, w in enumerate(ws):
                self.D[(q, w)] = np.stack([Dl_rows[j], Dg_rows[j]])
        return Gl_prev is not None, num2, den2

    # -- SSE phase ---------------------------------------------------------------
    def sse_begin(self) -> None:
        """Combine the owned phonon rows (Eq. 3) and zero the accumulators."""
        with scoped_span(
            self.tracer, "rank.sse_prepare", registry=self.registry,
            rank=self.rank,
        ):
            super().sse_begin()
            self.Dc = {}
            for (q, w), d in self.D.items():
                Dcl = preprocess_phonon_green(
                    d[0][None, None], self.neigh, self.rev
                )[0, 0]
                Dcg = preprocess_phonon_green(
                    d[1][None, None], self.neigh, self.rev
                )[0, 0]
                self.Dc[(q, w)] = np.stack([Dcl, Dcg])

    def finish_iteration(self) -> None:
        """Scale, mix, and close the Born feedback loop rank-locally.

        Applies the Eq. 3-5 grid prefactors to the exchanged raw Σ≷/Π≷,
        mixes them into the running self-energies, and derives the
        retarded components (``Σᴿ ≈ (Σ> - Σ<)/2``) that the next
        :meth:`solve_gf` inserts into the linear systems.
        """
        s, g = self.grid.s, self.grid
        pre_sigma = s.coupling**2 * g.dE / (2 * np.pi) / max(s.Nqz, 1)
        pre_pi = s.coupling**2 * g.dE / (2 * np.pi) / max(s.Nkz, 1)
        mix = s.mixing

        Sl_new = pre_sigma * self._acc_Sl
        Sg_new = pre_sigma * self._acc_Sg
        self.Sl = (
            Sl_new if self.Sl is None else (1 - mix) * self.Sl + mix * Sl_new
        )
        self.Sg = (
            Sg_new if self.Sg is None else (1 - mix) * self.Sg + mix * Sg_new
        )
        self.Sr = retarded_from_lesser_greater(self.Sl, self.Sg)

        for (q, w), (pl_raw, pg_raw) in self.pi_raw.items():
            Pl_new, Pg_new = pre_pi * pl_raw, pre_pi * pg_raw
            if (q, w) in self.Pi:
                Pl_old, Pg_old = self.Pi[(q, w)]
                Pl_new = (1 - mix) * Pl_old + mix * Pl_new
                Pg_new = (1 - mix) * Pg_old + mix * Pg_new
            self.Pi[(q, w)] = (Pl_new, Pg_new)
            self.Pi_r[(q, w)] = retarded_from_lesser_greater(Pl_new, Pg_new)

    # -- result collection --------------------------------------------------------
    def result_shard(self) -> Dict[str, Optional[np.ndarray]]:
        """The rank's electron-side tensors for the final gather."""
        return {
            "Gl": self.Gl,
            "Gg": self.Gg,
            "I_L": self.I_L,
            "I_R": self.I_R,
            "Sl": self.Sl,
            "Sg": self.Sg,
        }

    def phonon_shard(self) -> Dict[Tuple[int, int], Tuple]:
        """The rank's owned phonon rows (D≷ and mixed Π≷) for the gather."""
        out = {}
        for row in self.phonon_rows:
            d = self.D[row]
            pi = self.Pi.get(row)
            out[row] = (
                d[0],
                d[1],
                pi[0] if pi is not None else None,
                pi[1] if pi is not None else None,
            )
        return out

    def counters(self) -> Dict[str, int]:
        """Boundary-cache solve/hit counters of this rank."""
        b = self.engine.boundary
        return {
            "el_solves": b.el_solves,
            "el_hits": b.el_hits,
            "ph_solves": b.ph_solves,
            "ph_hits": b.ph_hits,
        }

    def drain_telemetry(self) -> Dict[str, object]:
        """Pop this rank's recorded spans and metrics (picklable dicts).

        Works identically over both transports: in-process ``sim`` reads
        the sinks directly, ``pipe`` ships the dicts through the worker
        pipe like any other method result.
        """
        return {
            "spans": self.tracer.drain(),
            "metrics": self.registry.drain(),
        }
