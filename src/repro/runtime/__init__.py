"""Distributed SCBA runtime: rank-parallel Born loop over SSE schedules.

The execution tier between the spectral-grid engine and the ``repro.api``
facade: :class:`DistributedSCBARuntime` shards the Born loop over ``P``
ranks (:class:`~repro.runtime.rank.RankWorker`), exchanges G≷/Σ≷/Π≷/D≷
through the resident OMEN or DaCe communication schedule each iteration,
and meters every byte per rank and per phase.  Transports:
``sim`` (in-process, bit-exact accounting) and ``pipe`` (forked rank
processes over multiprocessing pipes).  Select with
``SCBASettings(runtime=..., ranks=..., schedule=...)`` or the
``REPRO_RUNTIME`` environment variable.
"""

from .rank import RankWorker
from .scba import DistributedSCBARuntime
from .transport import (
    TRANSPORTS,
    PipeTransport,
    SimTransport,
    Transport,
    TransportError,
    make_transport,
)

__all__ = [
    "DistributedSCBARuntime",
    "RankWorker",
    "Transport",
    "SimTransport",
    "PipeTransport",
    "TransportError",
    "TRANSPORTS",
    "make_transport",
]
