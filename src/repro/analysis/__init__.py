"""Experiment drivers and table rendering for the paper's evaluation."""

from .experiments import (
    PAPER_TABLE3,
    PAPER_TABLE4,
    PAPER_TABLE5,
    PAPER_TABLE8,
    fig13_series,
    table3_rows,
    table4_rows,
    table5_rows,
    table7_rows,
    table8_rows,
)
from .state_of_the_art import STATE_OF_THE_ART, SimulatorCapability
from .tables import fmt, render_table

__all__ = [
    "PAPER_TABLE3",
    "PAPER_TABLE4",
    "PAPER_TABLE5",
    "PAPER_TABLE8",
    "fig13_series",
    "table3_rows",
    "table4_rows",
    "table5_rows",
    "table7_rows",
    "table8_rows",
    "STATE_OF_THE_ART",
    "SimulatorCapability",
    "fmt",
    "render_table",
]
