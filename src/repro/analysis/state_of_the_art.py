"""Table 2: the quantum-transport simulator landscape (static data).

Maximum computed atoms (orders of magnitude) per physical model, and
scalability, as surveyed by the paper.  ``None`` marks capabilities a tool
does not provide ("—" in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

__all__ = ["SimulatorCapability", "STATE_OF_THE_ART"]


@dataclass(frozen=True)
class SimulatorCapability:
    name: str
    tb_gf_e: Optional[int]  # tight-binding, ballistic electrons
    tb_gf_ph: Optional[int]  # tight-binding, ballistic phonons
    tb_gf_sse: Optional[int]  # tight-binding, GF + SSE
    dft_gf_e: Optional[int]
    dft_gf_ph: Optional[int]
    dft_gf_sse: Optional[int]
    max_cores: Optional[int]
    gpus: bool
    note: str = ""


STATE_OF_THE_ART: List[SimulatorCapability] = [
    SimulatorCapability("GOLLUM", 1_000, 1_000, None, 100, 100, None, None, False),
    SimulatorCapability("Kwant", 10_000, None, None, None, None, None, None, False),
    SimulatorCapability(
        "NanoTCAD ViDES", 10_000, None, None, None, None, None, None, False
    ),
    SimulatorCapability(
        "QuantumATK", 10_000, 10_000, None, 1_000, 1_000, None, 1_000, False
    ),
    SimulatorCapability(
        "TB_sim", 100_000, None, 10_000, 1_000, None, None, 10_000, True,
        note="simplified SSE",
    ),
    SimulatorCapability(
        "NEMO5", 100_000, 100_000, 10_000, None, None, None, 100_000, True,
        note="simplified SSE",
    ),
    SimulatorCapability(
        "OMEN", 100_000, 100_000, 10_000, 10_000, 10_000, 1_000, 100_000, True,
        note="1.44 Pflop/s TB (SC11), 15 Pflop/s DFT GF (SC15), 0.16 Pflop/s DFT SSE",
    ),
    SimulatorCapability(
        "This work", None, None, None, 10_000, 10_000, 10_000, 1_000_000, True,
        note="19.71 Pflop/s DFT GF+SSE",
    ),
]
