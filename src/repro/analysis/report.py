"""Buffered reporting: tables printed by benchmarks survive pytest capture.

Benchmarks call :func:`report`, which prints immediately (visible with
``-s``) and also buffers the text; the benchmark ``conftest`` drains the
buffer into the terminal summary so the paper-comparison tables always
appear in ``pytest benchmarks/ --benchmark-only`` output.
"""

from __future__ import annotations

from typing import List

__all__ = ["report", "drain"]

_BUFFER: List[str] = []


def report(text: str) -> None:
    print(text)
    _BUFFER.append(text)


def drain() -> List[str]:
    out = list(_BUFFER)
    _BUFFER.clear()
    return out
