"""Plain-text table rendering for the benchmark harness output."""

from __future__ import annotations

from typing import Dict, List, Sequence

__all__ = ["render_table", "fmt"]


def fmt(x, digits: int = 2) -> str:
    """Compact numeric formatting."""
    if x is None:
        return "—"
    if isinstance(x, str):
        return x
    if isinstance(x, int):
        return str(x)
    ax = abs(x)
    if ax != 0 and (ax >= 1e5 or ax < 10 ** (-digits)):
        return f"{x:.{digits}e}"
    return f"{x:,.{digits}f}"


def render_table(
    title: str, headers: Sequence[str], rows: List[Sequence], digits: int = 2
) -> str:
    """Render an aligned ASCII table with a title rule."""
    srows = [[fmt(c, digits) for c in r] for r in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in srows)) if srows else len(h)
        for i, h in enumerate(headers)
    ]
    def line(cells):
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

    rule = "-" * (sum(widths) + 2 * (len(widths) - 1))
    out = [title, rule, line(headers), rule]
    out.extend(line(r) for r in srows)
    out.append(rule)
    return "\n".join(out)
