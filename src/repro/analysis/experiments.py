"""Experiment drivers: one entry per paper table/figure.

Each function returns structured rows (lists of dicts) that the benchmark
harness prints in the paper's layout and ``EXPERIMENTS.md`` records.
Paper values are embedded for side-by-side comparison.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..config import PAPER_STRUCTURE_10240, SimulationParameters
from ..telemetry.timing import timeit
from ..model import (
    PIZ_DAINT,
    SUMMIT,
    TIB,
    comm_volumes,
    gf_phase_flops,
    iteration_flops,
    paper_tiling,
    predict_times,
    search_tiling,
    sse_flops_dace,
    strong_scaling,
    weak_scaling,
)

__all__ = [
    "table3_rows",
    "table4_rows",
    "table5_rows",
    "table7_rows",
    "table8_rows",
    "fig13_series",
    "PAPER_TABLE3",
    "PAPER_TABLE4",
    "PAPER_TABLE5",
    "PAPER_TABLE8",
]

# Paper-reported values for side-by-side comparison -------------------------
PAPER_TABLE3 = {
    3: dict(ci=8.45, rgf=52.95, omen=24.41, dace=12.38),
    5: dict(ci=14.12, rgf=88.25, omen=67.80, dace=34.19),
    7: dict(ci=19.77, rgf=123.55, omen=132.89, dace=66.85),
    9: dict(ci=25.42, rgf=158.85, omen=219.67, dace=110.36),
    11: dict(ci=31.06, rgf=194.15, omen=328.15, dace=164.71),
}

PAPER_TABLE4 = {
    3: dict(P=768, omen=32.11, dace=0.54),
    5: dict(P=1280, omen=89.18, dace=1.22),
    7: dict(P=1792, omen=174.80, dace=2.17),
    9: dict(P=2304, omen=288.95, dace=3.38),
    11: dict(P=2816, omen=431.65, dace=4.86),
}

PAPER_TABLE5 = {
    224: dict(omen=108.24, dace=0.95),
    448: dict(omen=117.75, dace=1.13),
    896: dict(omen=136.76, dace=1.48),
    1792: dict(omen=174.80, dace=2.17),
    2688: dict(omen=212.84, dace=2.87),
}

PAPER_TABLE8 = [
    dict(nkz=11, nodes=1852, gf_pflop=2922, gf_t=75.84, sse_pflop=490, sse_t=95.46, comm_t=44.02),
    dict(nkz=15, nodes=2580, gf_pflop=3985, gf_t=75.90, sse_pflop=910, sse_t=116.67, comm_t=43.93),
    dict(nkz=21, nodes=1763, gf_pflop=5579, gf_t=150.38, sse_pflop=1784, sse_t=346.56, comm_t=121.91),
    dict(nkz=21, nodes=3525, gf_pflop=5579, gf_t=76.09, sse_pflop=1784, sse_t=175.15, comm_t=122.35),
]

_EVAL_BASE = SimulationParameters(
    Nkz=3, Nqz=3, NE=706, Nw=70, NA=4864, NB=34, Norb=12, N3D=3, bnum=19
)


def table3_rows() -> List[Dict]:
    """Single-iteration Pflop per kernel (paper Table 3)."""
    rows = []
    for nkz, paper in PAPER_TABLE3.items():
        p = _EVAL_BASE.replace(Nkz=nkz, Nqz=nkz)
        f = iteration_flops(p)
        rows.append(
            dict(
                nkz=nkz,
                ci=f.contour_integral / 1e15,
                rgf=f.rgf / 1e15,
                sse_omen=f.sse_omen / 1e15,
                sse_dace=f.sse_dace / 1e15,
                paper=paper,
            )
        )
    return rows


def table4_rows() -> List[Dict]:
    """Weak-scaling SSE communication volume in TiB (paper Table 4)."""
    rows = []
    for nkz, paper in PAPER_TABLE4.items():
        P = paper["P"]
        p = _EVAL_BASE.replace(Nkz=nkz, Nqz=nkz)
        t = paper_tiling(p, P, TE=nkz)
        v = comm_volumes(p, P, t.TE, t.TA)
        s = search_tiling(p, P)
        rows.append(
            dict(
                nkz=nkz,
                P=P,
                omen_tib=v.omen_tib,
                dace_tib=v.dace_tib,
                search_TE=s.TE,
                search_TA=s.TA,
                search_tib=s.total_bytes / TIB,
                paper=paper,
            )
        )
    return rows


def table5_rows() -> List[Dict]:
    """Strong-scaling SSE communication volume in TiB (paper Table 5)."""
    p = _EVAL_BASE.replace(Nkz=7, Nqz=7)
    rows = []
    for P, paper in PAPER_TABLE5.items():
        t = paper_tiling(p, P, TE=7)
        v = comm_volumes(p, P, t.TE, t.TA)
        rows.append(
            dict(P=P, omen_tib=v.omen_tib, dace_tib=v.dace_tib, paper=paper)
        )
    return rows


def table7_rows(
    nx_cols: int = 8,
    ny_rows: int = 4,
    NB: int = 6,
    Norb: int = 3,
    Nkz: int = 3,
    NE: int = 24,
    Nw: int = 4,
    repeats: int = 1,
) -> List[Dict]:
    """Single-node GF/SSE runtimes of the three variants (measured).

    A scaled-down analogue of Table 7: the same three implementations
    (naive Python loops, OMEN-structured, DaCe-transformed) run the same
    workload on one node; absolute times differ from the paper's (different
    hardware and problem size) but the ordering and the SSE gap reproduce.
    """
    from ..negf import (
        SCBASettings,
        SCBASimulation,
        build_device,
        build_hamiltonian_model,
        preprocess_phonon_green,
        sigma_sse,
    )

    dev = build_device(nx_cols=nx_cols, ny_rows=ny_rows, NB=NB, slab_width=2)
    model = build_hamiltonian_model(dev, Norb=Norb)
    st = SCBASettings(
        NE=NE, Nkz=Nkz, Nqz=Nkz, Nw=Nw, e_min=-1.5, e_max=1.5, eta=1e-3
    )
    sim = SCBASimulation(model, st)

    # GF phase (shared by all variants; the paper's GF column varies only
    # mildly across implementations).
    def _gf_phase():
        Gl, Gg, _, _ = sim.solve_electrons(None, None, None)
        Dl, Dg = sim.solve_phonons(None, None)
        return Gl, Dl

    gf = timeit(_gf_phase, repeats=1)
    Gl, Dl = gf.result

    rev = dev.reverse_neighbor()
    Dcl = preprocess_phonon_green(Dl, dev.neighbors, rev)
    rows = []
    for variant in ("reference", "omen", "dace"):
        timing = timeit(
            lambda: sigma_sse(Gl, model.dH, Dcl, dev.neighbors, +1, variant),
            repeats=max(repeats, 1),
        )
        label = {"reference": "Python", "omen": "OMEN", "dace": "DaCe"}[variant]
        rows.append(
            dict(variant=label, gf_time=gf.best, sse_time=timing.best)
        )
    return rows


def table8_rows() -> List[Dict]:
    """Summit extreme-run prediction vs paper (Table 8)."""
    rows = []
    for paper in PAPER_TABLE8:
        p = PAPER_STRUCTURE_10240.replace(Nkz=paper["nkz"], Nqz=paper["nkz"])
        P = paper["nodes"] * SUMMIT.procs_per_node
        t = predict_times(SUMMIT, p, P, "dace")
        rows.append(
            dict(
                nkz=paper["nkz"],
                nodes=paper["nodes"],
                gf_pflop=gf_phase_flops(p) / 1e15,
                gf_t=t.gf,
                sse_pflop=sse_flops_dace(p) / 1e15,
                sse_t=t.sse,
                comm_t=t.comm,
                paper=paper,
            )
        )
    return rows


def fig13_series(machine_name: str = "both") -> Dict[str, List[Dict]]:
    """Strong/weak scaling series for Fig. 13 (a: Piz Daint, b: Summit)."""
    out: Dict[str, List[Dict]] = {}
    machines = {
        "piz-daint": (PIZ_DAINT, [224, 448, 896, 1792, 2688, 5400], 256),
        "summit": (SUMMIT, [114, 228, 456, 912, 1368], 132),
    }
    for name, (m, strong_P, weak_ppk) in machines.items():
        if machine_name not in ("both", name):
            continue
        p7 = _EVAL_BASE.replace(Nkz=7, Nqz=7)
        strong = [
            dict(
                P=pt.processes,
                gpus=pt.gpus,
                dace_comp=pt.dace.compute,
                dace_comm=pt.dace.comm,
                dace_total=pt.dace.total,
                omen_comp=pt.omen.compute,
                omen_comm=pt.omen.comm,
                omen_total=pt.omen.total,
                speedup=pt.speedup,
                comm_speedup=pt.comm_speedup,
            )
            for pt in strong_scaling(m, p7, strong_P)
        ]
        weak = [
            dict(
                nkz=pt.nkz,
                P=pt.processes,
                gpus=pt.gpus,
                dace_comp=pt.dace.compute,
                dace_comm=pt.dace.comm,
                dace_total=pt.dace.total,
                omen_comp=pt.omen.compute,
                omen_comm=pt.omen.comm,
                omen_total=pt.omen.total,
                speedup=pt.speedup,
            )
            for pt in weak_scaling(m, _EVAL_BASE, [3, 5, 7, 9, 11], weak_ppk)
        ]
        # Strong-scaling efficiency of the DaCe variant (paper annotates
        # 99.8%..74% on Piz Daint).
        base = strong[0]
        for row in strong:
            ideal = base["dace_total"] * base["P"] / row["P"]
            row["dace_efficiency"] = ideal / row["dace_total"]
        out[name] = dict(strong=strong, weak=weak)  # type: ignore[assignment]
    return out
