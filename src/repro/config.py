"""Simulation parameters (paper Table 1) with range validation.

The paper's Table 1 lists the typical ranges of every quantum-transport
simulation parameter; :class:`SimulationParameters` encodes them and the
derived quantities used throughout the models (tensor sizes, flop counts,
communication volumes).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Tuple

__all__ = [
    "PARAMETER_RANGES",
    "EXECUTION_BACKENDS",
    "RGF_KERNELS",
    "RUNTIMES",
    "SSE_SCHEDULES",
    "SERVICE_MODES",
    "AUTOTUNE_STRATEGIES",
    "TELEMETRY_MODES",
    "default_telemetry_mode",
    "default_autotune_strategy",
    "default_autotune_beam_width",
    "default_autotune_max_moves",
    "default_autotune_escape_depth",
    "default_engine",
    "default_rgf_kernel",
    "default_runtime",
    "default_service_mode",
    "default_service_capacity",
    "default_service_cache_entries",
    "validate_parameters",
    "SimulationParameters",
    "PAPER_STRUCTURE_4864",
    "PAPER_STRUCTURE_10240",
]

#: Execution backends of the spectral-grid engine (``repro.negf.engine``):
#: ``serial`` is the per-point reference loop (bit-exactness oracle),
#: ``batched`` solves stacked block-tridiagonal systems per momentum row,
#: ``multiprocess`` fans the batched rows out over a process pool.
EXECUTION_BACKENDS: Tuple[str, ...] = ("serial", "batched", "multiprocess")


def default_engine() -> str:
    """Engine backend used when ``SCBASettings.engine`` is not set.

    Overridable through the ``REPRO_ENGINE`` environment variable (an
    explicitly set but unknown value raises); the built-in default is
    ``batched`` (validated against ``serial`` to 1e-10 in
    ``tests/test_engine.py``).
    """
    env = os.environ.get("REPRO_ENGINE", "").strip().lower()
    if not env:
        return "batched"
    if env not in EXECUTION_BACKENDS:
        raise ValueError(
            f"REPRO_ENGINE={env!r} is not a valid backend; "
            f"expected one of {EXECUTION_BACKENDS}"
        )
    return env


#: RGF solver kernels (``repro.negf.kernels``): ``reference`` is the
#: seed recursion with per-block ``solve(A, I)`` inverses (bit-exactness
#: oracle), ``numpy`` factorizes each diagonal block once and reuses the
#: explicit factor product across the forward/backward passes, ``csrmm``
#: additionally routes the sparse coupling-block foldings through the
#: Table-6 CSRMM strategy, and ``numba`` JIT-compiles the batched
#: recursion (registered only when numba is importable).
RGF_KERNELS: Tuple[str, ...] = ("reference", "numpy", "csrmm", "numba")


def default_rgf_kernel() -> str:
    """RGF kernel used when ``SCBASettings.rgf_kernel`` is not set.

    Overridable through the ``REPRO_RGF_KERNEL`` environment variable (an
    explicitly set but unknown value raises, mirroring ``REPRO_ENGINE``);
    the built-in default is ``numpy`` (validated against ``reference`` to
    1e-10 in ``tests/test_kernels.py``).
    """
    env = os.environ.get("REPRO_RGF_KERNEL", "").strip().lower()
    if not env:
        return "numpy"
    if env not in RGF_KERNELS:
        raise ValueError(
            f"REPRO_RGF_KERNEL={env!r} is not a valid RGF kernel; "
            f"expected one of {RGF_KERNELS}"
        )
    return env


#: SCBA execution runtimes (``repro.runtime``): ``serial`` runs the
#: in-process Born loop of ``SCBASimulation``; ``sim`` distributes it over
#: simulated ranks (in-process, byte-exact communication accounting);
#: ``pipe`` hosts each rank in a forked worker process connected through
#: ``multiprocessing`` pipes (real inter-process data movement).
RUNTIMES: Tuple[str, ...] = ("serial", "sim", "pipe")

#: SSE communication schedules the distributed runtime can execute
#: (paper §4.1): OMEN's per-(qz, ω) broadcast rounds or the
#: communication-avoiding DaCe ``TE x TA`` tile exchange.
SSE_SCHEDULES: Tuple[str, ...] = ("omen", "dace")


def default_runtime() -> str:
    """Runtime used when ``SCBASettings.runtime`` is not set.

    Overridable through the ``REPRO_RUNTIME`` environment variable (an
    explicitly set but unknown value raises, mirroring ``REPRO_ENGINE``);
    the built-in default is ``serial``.
    """
    env = os.environ.get("REPRO_RUNTIME", "").strip().lower()
    if not env:
        return "serial"
    if env not in RUNTIMES:
        raise ValueError(
            f"REPRO_RUNTIME={env!r} is not a valid runtime; "
            f"expected one of {RUNTIMES}"
        )
    return env

#: Execution modes of the multi-tenant scheduler (``repro.service``):
#: ``sync`` runs jobs inside explicit ``drain()`` calls (deterministic,
#: the testing mode); ``thread`` drains the queue on a background worker.
SERVICE_MODES: Tuple[str, ...] = ("sync", "thread")


def default_service_mode() -> str:
    """Scheduler mode used when ``SchedulerService(mode=...)`` is not set.

    Overridable through the ``REPRO_SERVICE_MODE`` environment variable
    (an explicitly set but unknown value raises, mirroring
    ``REPRO_ENGINE``); the built-in default is ``sync``.
    """
    env = os.environ.get("REPRO_SERVICE_MODE", "").strip().lower()
    if not env:
        return "sync"
    if env not in SERVICE_MODES:
        raise ValueError(
            f"REPRO_SERVICE_MODE={env!r} is not a valid scheduler mode; "
            f"expected one of {SERVICE_MODES}"
        )
    return env


def default_service_capacity() -> float:
    """Per-pool capacity (modeled flops) of the scheduler's rank pools.

    Overridable through ``REPRO_SERVICE_CAPACITY`` (a positive float;
    invalid or non-positive values raise).  The built-in default of
    ``1e13`` modeled flops comfortably fits several Table-3-priced small
    workloads per pool while still splitting heavy mixed-tenant batches.
    """
    env = os.environ.get("REPRO_SERVICE_CAPACITY", "").strip()
    if not env:
        return 1e13
    try:
        capacity = float(env)
    except ValueError:
        raise ValueError(
            f"REPRO_SERVICE_CAPACITY={env!r} is not a valid pool capacity; "
            "expected a positive float (modeled flops)"
        ) from None
    if capacity <= 0:
        raise ValueError(
            f"REPRO_SERVICE_CAPACITY={env!r} must be positive (modeled flops)"
        )
    return capacity


def default_service_cache_entries() -> int:
    """Entry budget of the scheduler's in-memory result cache.

    Overridable through ``REPRO_SERVICE_CACHE`` (a non-negative int;
    ``0`` disables result caching; invalid values raise).  The built-in
    default keeps the 128 most recently used results.
    """
    env = os.environ.get("REPRO_SERVICE_CACHE", "").strip()
    if not env:
        return 128
    try:
        entries = int(env)
    except ValueError:
        raise ValueError(
            f"REPRO_SERVICE_CACHE={env!r} is not a valid cache size; "
            "expected a non-negative integer entry count"
        ) from None
    if entries < 0:
        raise ValueError(
            f"REPRO_SERVICE_CACHE={env!r} must be non-negative "
            "(0 disables result caching)"
        )
    return entries


#: Observability modes of the telemetry subsystem (``repro.telemetry``):
#: ``off`` disables every probe (the default; near-zero overhead),
#: ``spans`` records the hierarchical span tree only, ``full``
#: additionally accumulates the process-wide metrics registry (bytes,
#: flops, cache counters) that the drift reports reconcile against the
#: analytic models.
TELEMETRY_MODES: Tuple[str, ...] = ("off", "spans", "full")


def default_telemetry_mode() -> str:
    """Telemetry mode used when :func:`repro.telemetry.configure` is not
    called explicitly.

    Overridable through the ``REPRO_TELEMETRY`` environment variable (an
    explicitly set but unknown value raises, mirroring ``REPRO_ENGINE``);
    the built-in default is ``off``.
    """
    env = os.environ.get("REPRO_TELEMETRY", "").strip().lower()
    if not env:
        return "off"
    if env not in TELEMETRY_MODES:
        raise ValueError(
            f"REPRO_TELEMETRY={env!r} is not a valid telemetry mode; "
            f"expected one of {TELEMETRY_MODES}"
        )
    return env


#: Search strategies of the transformation autotuner (``repro.autotune``):
#: ``greedy`` commits the best byte-reducing move per step and escapes
#: plateaus with a bounded breadth-first probe over enabler moves;
#: ``beam`` keeps the best-``width`` frontier per depth with dominated
#: states pruned.
AUTOTUNE_STRATEGIES: Tuple[str, ...] = ("greedy", "beam")


def default_autotune_strategy() -> str:
    """Search strategy used when the autotuner is invoked without one.

    Overridable through the ``REPRO_AUTOTUNE_STRATEGY`` environment
    variable (an explicitly set but unknown value raises, mirroring
    ``REPRO_ENGINE``); the built-in default is ``greedy``.
    """
    env = os.environ.get("REPRO_AUTOTUNE_STRATEGY", "").strip().lower()
    if not env:
        return "greedy"
    if env not in AUTOTUNE_STRATEGIES:
        raise ValueError(
            f"REPRO_AUTOTUNE_STRATEGY={env!r} is not a valid autotune "
            f"strategy; expected one of {AUTOTUNE_STRATEGIES}"
        )
    return env


def _autotune_positive_int(var: str, default: int, what: str) -> int:
    env = os.environ.get(var, "").strip()
    if not env:
        return default
    try:
        value = int(env)
    except ValueError:
        raise ValueError(
            f"{var}={env!r} is not a valid {what}; "
            "expected a positive integer"
        ) from None
    if value < 1:
        raise ValueError(f"{var}={env!r} must be a positive integer")
    return value


def default_autotune_beam_width() -> int:
    """Beam width of the autotuner's ``beam`` strategy.

    Overridable through ``REPRO_AUTOTUNE_BEAM_WIDTH`` (a positive int;
    invalid values raise).  The default of 4 keeps enough byte-neutral
    enabler states alive to thread layout -> batch -> fuse sequences.
    """
    return _autotune_positive_int("REPRO_AUTOTUNE_BEAM_WIDTH", 4, "beam width")


def default_autotune_max_moves() -> int:
    """Maximum committed moves (pipeline depth) of one autotune search.

    Overridable through ``REPRO_AUTOTUNE_MAX_MOVES`` (a positive int;
    invalid values raise).  The default of 24 is ~2.5x the hand recipe's
    depth — a termination backstop, not a tuning dial.
    """
    return _autotune_positive_int("REPRO_AUTOTUNE_MAX_MOVES", 24, "move budget")


def default_autotune_escape_depth() -> int:
    """Plateau-escape probe depth of the autotuner's ``greedy`` strategy.

    Overridable through ``REPRO_AUTOTUNE_ESCAPE_DEPTH`` (a positive int;
    invalid values raise).  The default of 4 covers the longest
    byte-neutral chain the move space produces before a payoff
    (expand -> fuse -> shrink, plus one layout move).
    """
    return _autotune_positive_int(
        "REPRO_AUTOTUNE_ESCAPE_DEPTH", 4, "escape depth"
    )


def validate_parameters(base=None, **overrides) -> "SimulationParameters":
    """Construct (or refine) a :class:`SimulationParameters`, with context.

    ``base`` is an existing parameter set to refine (``overrides`` replace
    individual fields); without it a fresh set is built from ``overrides``
    alone.  Any Table-1 range violation re-raises as a :class:`ValueError`
    prefixed with the offending configuration, which the ``repro.api``
    planner surfaces as a :class:`~repro.api.PlanError`.
    """
    try:
        if base is not None:
            return base.replace(**overrides)
        return SimulationParameters(**overrides)
    except (TypeError, ValueError) as exc:
        raise ValueError(f"invalid simulation parameters: {exc}") from exc


#: Valid ranges from Table 1 (inclusive).  ``NA`` is structure-dependent.
PARAMETER_RANGES: Dict[str, Tuple[int, int]] = {
    "Nkz": (1, 21),
    "Nqz": (1, 21),
    "NE": (1, 1500),       # paper's typical range is [700, 1500]
    "Nw": (1, 100),        # paper's typical range is [10, 100]
    "NA": (1, 1_000_000),
    "NB": (1, 50),
    "Norb": (1, 30),
    "N3D": (3, 3),
    "bnum": (1, 10_000),
}

_COMPLEX_BYTES = 16  # complex128


@dataclass(frozen=True)
class SimulationParameters:
    """A complete QT simulation configuration.

    Attributes mirror Table 1 of the paper:

    * ``Nkz`` / ``Nqz``: electron/phonon momentum points,
    * ``NE`` / ``Nw``: energy points / phonon frequencies,
    * ``NA``: atoms, ``NB``: neighbors per atom,
    * ``Norb``: orbitals per atom, ``N3D``: crystal vibration directions,
    * ``bnum``: number of block-tridiagonal blocks used by RGF.
    """

    Nkz: int = 3
    Nqz: int = 3
    NE: int = 706
    Nw: int = 70
    NA: int = 4864
    NB: int = 34
    Norb: int = 12
    N3D: int = 3
    bnum: int = 19

    def __post_init__(self):
        for name, (lo, hi) in PARAMETER_RANGES.items():
            v = getattr(self, name)
            if not isinstance(v, int):
                raise TypeError(f"{name} must be an int, got {type(v).__name__}")
            if not lo <= v <= hi:
                raise ValueError(f"{name}={v} outside Table-1 range [{lo}, {hi}]")
        if self.Nqz > self.Nkz:
            raise ValueError(
                f"Nqz={self.Nqz} may not exceed Nkz={self.Nkz} "
                "(phonon momenta are exchanged between electron momenta)"
            )
        if self.Nw > self.NE:
            raise ValueError(f"Nw={self.Nw} may not exceed NE={self.NE}")
        if self.NB >= self.NA:
            raise ValueError(f"NB={self.NB} must be smaller than NA={self.NA}")
        if self.bnum > self.NA:
            raise ValueError(f"bnum={self.bnum} may not exceed NA={self.NA}")

    # -- derived tensor sizes (elements) ------------------------------------
    @property
    def block_size(self) -> float:
        """RGF block dimension ``NA*Norb/bnum`` (matrix rows per block)."""
        return self.NA * self.Norb / self.bnum

    @property
    def electron_gf_elements(self) -> int:
        """Elements of one G≷ tensor: [Nkz, NE, NA, Norb, Norb]."""
        return self.Nkz * self.NE * self.NA * self.Norb**2

    @property
    def phonon_gf_elements(self) -> int:
        """Elements of one D≷ tensor: [Nqz, Nw, NA, NB+1, N3D, N3D]."""
        return self.Nqz * self.Nw * self.NA * (self.NB + 1) * self.N3D**2

    @property
    def electron_gf_bytes(self) -> int:
        return self.electron_gf_elements * _COMPLEX_BYTES

    @property
    def phonon_gf_bytes(self) -> int:
        return self.phonon_gf_elements * _COMPLEX_BYTES

    def replace(self, **kwargs) -> "SimulationParameters":
        from dataclasses import replace as _replace

        return _replace(self, **kwargs)

    def as_dict(self) -> Dict[str, int]:
        return {
            "Nkz": self.Nkz,
            "Nqz": self.Nqz,
            "NE": self.NE,
            "Nw": self.Nw,
            "NA": self.NA,
            "NB": self.NB,
            "Norb": self.Norb,
            "N3D": self.N3D,
            "bnum": self.bnum,
        }


#: The 4,864-atom Silicon structure of §5 (W = 2.1 nm, L = 35 nm).
PAPER_STRUCTURE_4864 = SimulationParameters(
    Nkz=7, Nqz=7, NE=706, Nw=70, NA=4864, NB=34, Norb=12, N3D=3, bnum=19
)

#: The 10,240-atom extreme run of §5.2.1 (W = 4.8 nm, L = 35 nm).
PAPER_STRUCTURE_10240 = SimulationParameters(
    Nkz=21, Nqz=21, NE=1000, Nw=70, NA=10240, NB=34, Norb=12, N3D=3, bnum=19
)
