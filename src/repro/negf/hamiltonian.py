"""Synthetic DFT-like operator construction (stand-in for CP2K/SIESTA).

The paper obtains ``H(kz)``, ``S(kz)`` (electrons), ``Φ(qz)`` (phonons) and
``∇H`` from a DFT package with a localized (Gaussian) basis.  All algorithms
downstream depend only on the operators' *structure* — Hermitian block
tridiagonal with ``Norb x Norb`` (or ``N3D x N3D``) atom blocks and
``NB``-neighbor sparsity — so we generate deterministic synthetic operators
with exactly those properties:

* hopping decays with bond length; on-site blocks dominate (diagonally
  dominant -> well-conditioned RGF);
* ``H(kz) = H_plane + Hz e^{i kz} + Hz† e^{-i kz}`` captures the periodic
  z direction of the fin (momentum dependence);
* ``S(kz)`` is an identity-plus-small-overlap matrix (positive definite);
* ``Φ`` is a spring-constant model obeying the acoustic sum rule
  ``Φ_aa = -Σ_b Φ_ab`` at ``qz = 0``;
* ``∇H[a, b, i]`` scales the hopping block by the bond direction, matching
  the ``∇_i H_ab`` derivative blocks of Eqs. (3-5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from .structure import DeviceStructure

__all__ = ["HamiltonianModel", "BlockTridiagonal", "build_hamiltonian_model"]


@dataclass
class BlockTridiagonal:
    """A Hermitian block-tridiagonal operator.

    ``diag[i]`` are the ``(ni, ni)`` diagonal blocks and ``upper[i]`` the
    ``(ni, n_{i+1})`` super-diagonal blocks; the sub-diagonal is implied by
    Hermiticity (``lower[i] = upper[i]†``).
    """

    diag: List[np.ndarray]
    upper: List[np.ndarray]

    @property
    def bnum(self) -> int:
        return len(self.diag)

    @property
    def n(self) -> int:
        return sum(b.shape[0] for b in self.diag)

    def lower(self, i: int) -> np.ndarray:
        return self.upper[i].conj().T

    def upper_densities(self) -> np.ndarray:
        """Exact nonzero fraction of each super-diagonal block.

        The coupling blocks carry only the bonds crossing a slab
        interface, so they are far sparser than the diagonal blocks —
        the metadata the ``csrmm`` RGF kernel and the Plan layer's
        kernel choice feed on (cf.
        :meth:`repro.negf.DeviceStructure.coupling_block_density`).
        """
        return np.array(
            [np.count_nonzero(u) / u.size for u in self.upper]
        )

    def to_dense(self) -> np.ndarray:
        sizes = [b.shape[0] for b in self.diag]
        offs = np.concatenate(([0], np.cumsum(sizes)))
        n = offs[-1]
        out = np.zeros((n, n), dtype=np.complex128)
        for i, b in enumerate(self.diag):
            out[offs[i] : offs[i + 1], offs[i] : offs[i + 1]] = b
        for i, u in enumerate(self.upper):
            out[offs[i] : offs[i + 1], offs[i + 1] : offs[i + 2]] = u
            out[offs[i + 1] : offs[i + 2], offs[i] : offs[i + 1]] = u.conj().T
        return out


def _orbital_block(rng: np.random.Generator, n: int, scale: float) -> np.ndarray:
    """A deterministic dense coupling block with decaying magnitude."""
    m = rng.standard_normal((n, n)) + 1j * rng.standard_normal((n, n))
    return scale * m / np.sqrt(n)


@dataclass
class HamiltonianModel:
    """All per-structure operators needed by one QT simulation."""

    structure: DeviceStructure
    Norb: int
    #: on-site orbital energies (NA, Norb, Norb) — Hermitian blocks
    onsite: np.ndarray
    #: hopping blocks per bond (NA, NB, Norb, Norb): H_{a, neigh[a,b]}
    hopping: np.ndarray
    #: z-direction coupling per atom (NA, Norb, Norb)
    z_coupling: np.ndarray
    #: overlap per bond (NA, NB, Norb, Norb)
    overlap: np.ndarray
    #: Hamiltonian derivative (NA, NB, N3D, Norb, Norb)
    dH: np.ndarray
    #: spring constants per bond (NA, NB)
    springs: np.ndarray
    #: phonon z-direction spring (scalar)
    z_spring: float
    N3D: int = 3
    #: operator assembly counters ``{"H", "S", "Phi"}`` — sweeps and
    #: benchmarks read these to prove (kz/qz-resolved) operators are
    #: assembled once per momentum point, not once per solve
    assembly_counts: Dict[str, int] = field(
        default_factory=lambda: {"H": 0, "S": 0, "Phi": 0}
    )

    @property
    def total_assemblies(self) -> int:
        return sum(self.assembly_counts.values())

    # -- electrons ---------------------------------------------------------
    def hamiltonian_blocks(self, kz: float) -> BlockTridiagonal:
        """Assemble H(kz) in block-tridiagonal form."""
        self.assembly_counts["H"] += 1
        return self._assemble(
            self.onsite
            + self.z_coupling * np.exp(1j * kz)
            + np.transpose(self.z_coupling, (0, 2, 1)).conj() * np.exp(-1j * kz),
            self.hopping,
            self.Norb,
        )

    def overlap_blocks(self, kz: float) -> BlockTridiagonal:
        """Assemble S(kz): identity + small bond overlaps."""
        self.assembly_counts["S"] += 1
        NA = self.structure.NA
        eye = np.broadcast_to(np.eye(self.Norb), (NA, self.Norb, self.Norb)).copy()
        return self._assemble(eye.astype(np.complex128), self.overlap, self.Norb)

    # -- phonons --------------------------------------------------------------
    def dynamical_blocks(self, qz: float) -> BlockTridiagonal:
        """Assemble Φ(qz): spring-constant dynamical matrix.

        Bond (a, b) contributes ``-k_ab (d̂ d̂ᵀ + 0.25 I)`` off-diagonal and
        the acoustic-sum-rule counterpart on the diagonal; the periodic z
        bond adds ``2 kz_spring (1 - cos qz)`` to the diagonal.
        """
        self.assembly_counts["Phi"] += 1
        s = self.structure
        NA, NB = s.neighbors.shape
        onsite = np.zeros((NA, self.N3D, self.N3D), dtype=np.complex128)
        offdiag = np.zeros((NA, NB, self.N3D, self.N3D), dtype=np.complex128)
        # Iterate over *unique* bonds only (neighbor lists of edge atoms are
        # padded with duplicates) so the acoustic sum rule matches the
        # assembled off-diagonal blocks exactly and Φ(0) stays PSD.
        seen = set()
        for a in range(NA):
            for b in range(NB):
                c = int(s.neighbors[a, b])
                key = (min(a, c), max(a, c))
                if key in seen or c == a:
                    continue
                seen.add(key)
                v = s.neighbor_vectors[a, b]
                norm = np.linalg.norm(v)
                if norm == 0:
                    continue
                d = v / norm
                k = self.springs[a, b]
                block = k * (np.outer(d, d) + 0.25 * np.eye(self.N3D))
                offdiag[a, b] = -block
                onsite[a] += block
                onsite[c] += block
        for a in range(NA):
            onsite[a] += (
                2.0 * self.z_spring * (1.0 - np.cos(qz)) * np.eye(self.N3D)
            )
        return self._assemble(onsite, offdiag, self.N3D)

    # -- assembly helper ---------------------------------------------------------
    def _assemble(
        self, onsite: np.ndarray, bonds: np.ndarray, nb_orb: int
    ) -> BlockTridiagonal:
        s = self.structure
        bnum = s.bnum
        sizes = s.block_sizes * nb_orb
        offs = np.concatenate(([0], np.cumsum(sizes)))
        # Local index of each atom inside its block.
        local = np.zeros(s.NA, dtype=np.int64)
        counters = {}
        for a in range(s.NA):
            blk = int(s.block_of[a])
            local[a] = counters.get(blk, 0)
            counters[blk] = local[a] + 1

        diag = [
            np.zeros((sizes[i], sizes[i]), dtype=np.complex128) for i in range(bnum)
        ]
        upper = [
            np.zeros((sizes[i], sizes[i + 1]), dtype=np.complex128)
            for i in range(bnum - 1)
        ]

        def put_bond(a: int, c: int, block: np.ndarray):
            """Insert H_{ac} = block (and implicitly H_{ca} = block†)."""
            ba, bc = int(s.block_of[a]), int(s.block_of[c])
            ia, ic = local[a] * nb_orb, local[c] * nb_orb
            if ba == bc:
                diag[ba][ia : ia + nb_orb, ic : ic + nb_orb] += block
                diag[ba][ic : ic + nb_orb, ia : ia + nb_orb] += block.conj().T
            elif bc == ba + 1:
                # The sub-diagonal is implied by Hermiticity.
                upper[ba][ia : ia + nb_orb, ic : ic + nb_orb] += block
            elif bc == ba - 1:
                upper[bc][ic : ic + nb_orb, ia : ia + nb_orb] += block.conj().T
            else:  # pragma: no cover - excluded by structure validation
                raise ValueError("bond spans non-adjacent blocks")

        for a in range(s.NA):
            blk = int(s.block_of[a])
            ia = local[a] * nb_orb
            diag[blk][ia : ia + nb_orb, ia : ia + nb_orb] += onsite[a]
        seen = set()
        for a in range(s.NA):
            for b in range(s.NB):
                c = int(s.neighbors[a, b])
                key = (min(a, c), max(a, c))
                if key in seen or c == a:
                    continue
                seen.add(key)
                put_bond(a, c, bonds[a, b])
        return BlockTridiagonal(diag, upper)


def build_hamiltonian_model(
    structure: DeviceStructure,
    Norb: int = 2,
    N3D: int = 3,
    hopping_scale: float = 0.5,
    onsite_center: float = 0.0,
    seed: int = 1234,
) -> HamiltonianModel:
    """Deterministic synthetic operators for a device structure."""
    rng = np.random.default_rng(seed)
    s = structure
    NA, NB = s.neighbors.shape

    onsite = np.zeros((NA, Norb, Norb), dtype=np.complex128)
    for a in range(NA):
        levels = onsite_center + np.linspace(-0.5, 0.5, Norb)
        block = np.diag(levels).astype(np.complex128)
        mix = _orbital_block(rng, Norb, 0.05)
        onsite[a] = block + mix + mix.conj().T

    hopping = np.zeros((NA, NB, Norb, Norb), dtype=np.complex128)
    overlap = np.zeros((NA, NB, Norb, Norb), dtype=np.complex128)
    dH = np.zeros((NA, NB, N3D, Norb, Norb), dtype=np.complex128)
    springs = np.zeros((NA, NB))
    for a in range(NA):
        for b in range(NB):
            v = s.neighbor_vectors[a, b]
            dist = max(np.linalg.norm(v), 1.0)
            decay = np.exp(-(dist - 1.0))
            t = _orbital_block(rng, Norb, hopping_scale * decay)
            hopping[a, b] = t
            overlap[a, b] = 0.05 * decay * np.eye(Norb)
            springs[a, b] = decay
            for i in range(N3D):
                # ∇_i H_ab: hopping modulated by the bond direction.
                dH[a, b, i] = t * (v[i] / dist if i < len(v) else 0.0)

    z_coupling = np.zeros((NA, Norb, Norb), dtype=np.complex128)
    for a in range(NA):
        z_coupling[a] = _orbital_block(rng, Norb, 0.15)

    model = HamiltonianModel(
        structure=structure,
        Norb=Norb,
        onsite=onsite,
        hopping=hopping,
        z_coupling=z_coupling,
        overlap=overlap,
        dH=dH,
        springs=springs,
        z_spring=0.3,
        N3D=N3D,
    )
    # Edge atoms pad their neighbor lists with duplicate bonds; duplicated
    # slots must carry identical operator blocks both before and after the
    # Hermitian symmetrization so that every (a, b) entry is consistent.
    _deduplicate_bonds(model)
    _symmetrize_bonds(model)
    _deduplicate_bonds(model)
    return model


def _deduplicate_bonds(model: HamiltonianModel) -> None:
    """Copy each atom's first-occurrence bond blocks onto duplicate slots."""
    s = model.structure
    for a in range(s.NA):
        first: dict = {}
        for b in range(s.NB):
            c = int(s.neighbors[a, b])
            if c in first:
                src = first[c]
                model.hopping[a, b] = model.hopping[a, src]
                model.overlap[a, b] = model.overlap[a, src]
                model.springs[a, b] = model.springs[a, src]
                model.dH[a, b] = model.dH[a, src]
            else:
                first[c] = b


def _symmetrize_bonds(model: HamiltonianModel) -> None:
    """Enforce H_{ba} = H_{ab}† consistency on shared bonds.

    Bonds are stored per atom; both endpoints must agree on the block for
    the assembled operator to be Hermitian.  The (a < c) endpoint's block
    is canonical.
    """
    s = model.structure
    rev = s.reverse_neighbor()
    for a in range(s.NA):
        for b in range(s.NB):
            c = int(s.neighbors[a, b])
            r = int(rev[a, b])
            if c <= a or r < 0:
                continue
            model.hopping[c, r] = model.hopping[a, b].conj().T
            model.overlap[c, r] = model.overlap[a, b].conj().T
            model.springs[c, r] = model.springs[a, b]
            for i in range(model.N3D):
                # ∇H_{ba} = (∇H_{ab})† with the opposite bond direction.
                model.dH[c, r, i] = -model.dH[a, b, i].conj().T
