"""Self-consistent Born cycle: the GF ⇄ SSE iteration of Fig. 2/6.

One iteration solves the electron and phonon Green's functions for every
``(E, kz)`` / ``(ω, qz)`` point with RGF under the current scattering
self-energies, then evaluates the scattering self-energies (Eq. 3-5) from
the new Green's functions, mixes, and repeats until the Green's-function
update drops below tolerance — exactly the outer state machine of the
paper's top-level SDFG (Fig. 6).

The grid sweeps themselves are delegated to a pluggable spectral-grid
execution engine (:mod:`repro.negf.engine`): ``serial`` (the per-point
reference loop), ``batched`` (stacked tensor systems, the default), or
``multiprocess`` (batched rows over a process pool), selected with
:attr:`SCBASettings.engine`.  All backends memoize the iteration-invariant
lead self-energies across Born iterations.

This module is the per-point executor; the public entry point for new
scenarios is the :mod:`repro.api` facade (Workload → Plan → Session),
which reuses the model, grid, and boundary cache across whole sweeps and
owns engine lifetimes.  ``SCBASettings``/``SCBASimulation`` remain as
thin shims (see :meth:`SCBASimulation.from_workload`).

Physical conventions (dimensionless units, ħ = e = 1):

* electron boundary occupation: Fermi-Dirac with per-lead chemical
  potentials (bias window drives current);
* phonon boundary occupation: Bose-Einstein at the lattice temperature;
* ``Σᴿ ≈ (Σ> - Σ<)/2`` (paper's Lake-et-al. approximation), likewise Πᴿ;
* only diagonal (per-atom) Σ blocks are retained; Π keeps the ``NB``
  bond blocks (§2) — bond blocks crossing RGF slab boundaries are
  dropped from the phonon linear system (documented approximation, exact
  for ``slab_width`` ≥ neighbor range + 1 with intra-slab bonds only).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Dict, List, Literal, Optional

import numpy as np

from ..config import default_engine, default_rgf_kernel, default_runtime
from ..telemetry import metrics as _metrics
from ..telemetry.spans import trace
from .engine import SpectralGrid, bose, fermi, make_engine
from .hamiltonian import HamiltonianModel
from .sse import pi_sse, preprocess_phonon_green, retarded_from_lesser_greater, sigma_sse

__all__ = [
    "SCBASettings",
    "SCBAResult",
    "SCBASimulation",
    "fermi",
    "bose",
    "encode_array",
    "decode_array",
    "density_observable",
    "dissipation_observable",
]


@dataclass
class SCBASettings:
    """Numerical controls of the self-consistent Born loop."""

    #: energy window [E_min, E_max] discretized into NE points
    e_min: float = -2.0
    e_max: float = 2.0
    NE: int = 40
    Nkz: int = 3
    Nqz: int = 3
    #: number of phonon frequencies (ω_m = (m+1)·dE, matching the SSE
    #: index-shift convention)
    Nw: int = 4
    eta: float = 1e-3
    kT_el: float = 0.05
    kT_ph: float = 0.05
    mu_left: float = 0.3
    mu_right: float = -0.3
    #: electron-phonon coupling strength (scales Eq. 3-5)
    coupling: float = 0.1
    mixing: float = 0.5
    max_iterations: int = 20
    tolerance: float = 1e-5
    boundary_method: Literal["sancho-rubio", "transfer-matrix"] = "sancho-rubio"
    #: Σ≷ kernel: ``dace`` is the hand-vectorized transformed algorithm;
    #: ``sdfg`` executes the compiled Fig. 8 → 12 pipeline graph itself
    #: (backend per :attr:`sse_backend`); ``omen``/``reference`` are the
    #: recompute-heavy and loop-nest baselines
    sse_variant: Literal["reference", "omen", "dace", "sdfg"] = "dace"
    #: SDFG execution backend for ``sse_variant="sdfg"`` (``"numpy"``
    #: generated code / ``"interpreter"``; None follows
    #: ``REPRO_SDFG_BACKEND``)
    sse_backend: Optional[str] = None
    #: spectral-grid execution backend (see :mod:`repro.negf.engine`):
    #: ``serial`` per-point oracle, ``batched`` stacked tensors,
    #: ``multiprocess`` batched rows over a process pool
    engine: Literal["serial", "batched", "multiprocess"] = field(
        default_factory=default_engine
    )
    #: RGF kernel of the batched backends (see :mod:`repro.negf.kernels`):
    #: ``reference`` seed recursion, ``numpy`` factorization reuse,
    #: ``csrmm`` Table-6 sparse foldings, ``numba`` compiled (optional).
    #: The serial engine stays pinned to ``reference`` — it is the oracle.
    #: Default follows ``REPRO_RGF_KERNEL`` (invalid values raise).
    rgf_kernel: str = field(default_factory=default_rgf_kernel)
    #: memoize lead self-energies across Born iterations; ``False``
    #: restores the seed's per-iteration recomputation (benchmarks only)
    cache_boundary: bool = True
    #: memoize the assembled H(kz)/S(kz)/Φ(qz) operator blocks per
    #: momentum point; ``False`` restores per-solve reassembly
    cache_operators: bool = True
    #: worker-pool size cap for the multiprocess engine (None: min(8, cores))
    max_workers: Optional[int] = None
    #: SCBA execution runtime (see :mod:`repro.runtime`): ``serial`` is
    #: the in-process Born loop below; ``sim``/``pipe`` distribute it over
    #: ranks exchanging G≷/Π≷ through an SSE schedule (default follows
    #: ``REPRO_RUNTIME``, invalid values raise)
    runtime: Literal["serial", "sim", "pipe"] = field(
        default_factory=default_runtime
    )
    #: rank count of the distributed runtime (None: one rank per kz);
    #: must decompose the (Nkz, NE) grid (P = Nkz x E-chunks)
    ranks: Optional[int] = None
    #: SSE communication schedule of the distributed runtime (§4.1)
    schedule: Literal["omen", "dace"] = "omen"


@dataclass
class SCBAResult:
    """Converged Green's functions, self-energies, and observables."""

    Gl: np.ndarray
    Gg: np.ndarray
    Dl: np.ndarray
    Dg: np.ndarray
    Sigma_l: np.ndarray
    Sigma_g: np.ndarray
    Pi_l: np.ndarray
    Pi_g: np.ndarray
    iterations: int
    converged: bool
    history: List[float]
    #: per-(kz, E) left/right contact currents (Meir-Wingreen integrand)
    current_left: np.ndarray
    current_right: np.ndarray
    #: per-atom electron density
    density: np.ndarray
    #: per-atom dissipated power (electron -> phonon energy transfer)
    dissipation: np.ndarray

    @property
    def total_current_left(self) -> float:
        return float(np.sum(self.current_left))

    @property
    def total_current_right(self) -> float:
        return float(np.sum(self.current_right))

    # -- persistence ------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict: every tensor field array-encoded, scalars plain.

        Round-trips exactly through :meth:`from_dict` (complex tensors are
        stored as separate real/imag lists), so converged results can be
        persisted and compared across runs; ``repro.api.SweepResult``
        reuses this encoding for its JSON export.
        """
        out: Dict[str, Any] = {}
        for f in fields(self):
            v = getattr(self, f.name)
            out[f.name] = encode_array(v) if isinstance(v, np.ndarray) else v
        return out

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "SCBAResult":
        kwargs = {}
        for f in fields(cls):
            v = d[f.name]
            kwargs[f.name] = (
                decode_array(v) if isinstance(v, dict) and "shape" in v else v
            )
        return cls(**kwargs)


def density_observable(Gl: np.ndarray, dE: float, Nkz: int) -> np.ndarray:
    """Per-atom electron density: -i ∫ tr G< dE / 2π (summed over kz).

    Shared by the serial simulation and the distributed runtime so both
    paths evaluate the observable identically on the assembled tensors.
    """
    tr = np.trace(Gl, axis1=-2, axis2=-1)  # [Nkz, NE, NA]
    return (-1j * tr.sum(axis=(0, 1)) * dE / (2 * np.pi)).real / max(Nkz, 1)


def dissipation_observable(
    Gl: np.ndarray,
    Gg: np.ndarray,
    Sl: Optional[np.ndarray],
    Sg: Optional[np.ndarray],
    energies: np.ndarray,
    dE: float,
    Nkz: int,
) -> np.ndarray:
    """Per-atom electron->phonon power: ∫ E tr[Σ< G> - Σ> G<] dE."""
    if Sl is None:
        return np.zeros(Gl.shape[2])
    x = np.einsum(
        "kEaij,kEaji->kEa", Sl, Gg, optimize=True
    ) - np.einsum("kEaij,kEaji->kEa", Sg, Gl, optimize=True)
    w = energies[None, :, None]
    return (x * w).sum(axis=(0, 1)).real * dE / (2 * np.pi) / max(Nkz, 1)


def encode_array(a: np.ndarray) -> Dict[str, Any]:
    """Encode an ndarray as a JSON-safe dict (complex -> real/imag lists)."""
    a = np.asarray(a)
    enc: Dict[str, Any] = {"dtype": str(a.dtype), "shape": list(a.shape)}
    if np.iscomplexobj(a):
        enc["real"] = a.real.ravel().tolist()
        enc["imag"] = a.imag.ravel().tolist()
    else:
        enc["data"] = a.ravel().tolist()
    return enc


def decode_array(enc: Dict[str, Any]) -> np.ndarray:
    """Invert :func:`encode_array` (exact bit pattern for float64 data)."""
    shape = tuple(enc["shape"])
    dtype = np.dtype(enc["dtype"])
    if "real" in enc:
        a = np.asarray(enc["real"], dtype=float) + 1j * np.asarray(
            enc["imag"], dtype=float
        )
    else:
        a = np.asarray(enc["data"], dtype=float)
    return a.reshape(shape).astype(dtype)


class SCBASimulation:
    """Dissipative quantum transport on a synthetic device.

    The Born iteration, SSE evaluation, and observables live here; the
    grid sweeps are executed by the backend named in ``settings.engine``
    (see :mod:`repro.negf.engine`).
    """

    def __init__(self, model: HamiltonianModel, settings: SCBASettings):
        self.model = model
        self.s = settings
        self.grid = SpectralGrid(model, settings)
        self.engine = make_engine(settings.engine, self.grid)
        g = self.grid
        self.NA, self.NB = g.NA, g.NB
        self.Norb, self.N3D = g.Norb, g.N3D
        self.energies, self.dE = g.energies, g.dE
        self.kz_grid, self.qz_grid = g.kz_grid, g.qz_grid
        self.omegas = g.omegas
        self.rev = g.rev
        self._atom_slices = g.atom_slices
        #: what ``run()`` does when ``ballistic`` is not passed; set from
        #: the workload's ``PhysicsSpec.transport`` by :meth:`from_workload`
        self.default_ballistic = False
        #: resident distributed runtime (built lazily when
        #: ``settings.runtime != "serial"``; reused across sweep points)
        self._runtime = None
        #: per-phase :class:`~repro.parallel.CommStats` of the last
        #: distributed run (None for serial runs)
        self.last_comm = None
        #: runtime rank-cache counters frozen at :meth:`close`
        self._final_runtime_counters: Optional[Dict[str, int]] = None

    # -- lifetime -----------------------------------------------------------------
    def close(self):
        """Release engine resources (worker pools) deterministically.

        The distributed runtime's per-rank boundary counters are
        snapshotted first, so :meth:`boundary_counters` keeps reporting
        them after the workers are gone.
        """
        self.engine.close()
        if self._runtime is not None:
            self._final_runtime_counters = self._runtime.boundary_counters()
            self._runtime.close()
            self._runtime = None

    def __enter__(self) -> "SCBASimulation":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    @classmethod
    def from_workload(cls, workload) -> "SCBASimulation":
        """Legacy shim: one simulation for a sweep-free ``repro.api.Workload``.

        Sweeps must go through :class:`repro.api.Session`, which reuses the
        Hamiltonian, spectral grid, and boundary cache across points.
        """
        from ..api import compile_workload  # api layers on top of negf

        plan = compile_workload(workload)
        if plan.n_points != 1:
            raise ValueError(
                f"workload has {plan.n_points} sweep points; "
                "use repro.api.Session for sweeps"
            )
        model = workload.device.build()
        sim = cls(model, SCBASettings(**plan.groups[0].point_settings(0)))
        sim.default_ballistic = plan.ballistic
        return sim

    # -- distributed execution -----------------------------------------------------
    def _run_distributed(self, ballistic: bool) -> "SCBAResult":
        """Delegate the Born loop to the rank-parallel runtime.

        The runtime (and its resident rank workers with their per-rank
        boundary caches) is built on first use and reused by every later
        ``run()`` — a Session sweep mutating bias/temperature fields
        between points keeps all rank-local caches warm.
        """
        if self._runtime is None:
            from ..runtime import DistributedSCBARuntime  # layered above negf

            self._runtime = DistributedSCBARuntime(self.model, self.s)
        result = self._runtime.run(ballistic=ballistic)
        self.last_comm = self._runtime.comm_stats()
        return result

    def boundary_counters(self) -> Dict[str, int]:
        """Boundary solve/hit counters across every execution path.

        Serial/batched/multiprocess engines count in the in-process
        :class:`~repro.negf.engine.BoundaryCache`; the distributed
        runtime additionally sums its per-rank caches.
        """
        cache = self.engine.boundary
        out = {
            "el_solves": cache.el_solves,
            "el_hits": cache.el_hits,
            "ph_solves": cache.ph_solves,
            "ph_hits": cache.ph_hits,
        }
        runtime_counters = (
            self._runtime.boundary_counters()
            if self._runtime is not None
            else self._final_runtime_counters
        )
        if runtime_counters is not None:
            for key, value in runtime_counters.items():
                out[key] += value
        return out

    # -- GF phases (delegated to the execution engine) ---------------------------
    def solve_electrons(
        self, sigma_r: Optional[np.ndarray], sigma_l: Optional[np.ndarray],
        sigma_g: Optional[np.ndarray],
    ):
        """RGF over the (kz, E) grid.

        ``sigma_*`` are per-atom scattering self-energy tensors
        ``[Nkz, NE, NA, Norb, Norb]`` (or None in the ballistic limit).
        Returns ``(Gl, Gg, I_left, I_right)``.
        """
        return self.engine.solve_electrons(sigma_r, sigma_l, sigma_g)

    def solve_phonons(
        self, pi_r: Optional[np.ndarray], pi_l: Optional[np.ndarray]
    ):
        """RGF over the (qz, ω) grid; returns (Dl, Dg) bond tensors.

        The returned tensors have shape ``[Nqz, Nw, NA, NB+1, N3D, N3D]``
        (block 0 = on-site).  Bond blocks crossing slab boundaries are not
        produced by the diagonal-block RGF and are left zero.
        """
        return self.engine.solve_phonons(pi_r, pi_l)

    # -- SSE phase -----------------------------------------------------------------
    def scattering_self_energies(self, Gl, Gg, Dl, Dg):
        """Evaluate Eq. 3-5 with emission+absorption combinations.

        The frequency integral ``∫ dω/2π`` and momentum averages
        ``(1/Nqz) Σ_qz`` / ``(1/Nkz) Σ_kz`` of Eqs. (3-5) become the grid
        prefactors below (``dω = dE`` by the index-shift convention).
        """
        s = self.s
        dev = self.model.structure
        pre_sigma = s.coupling**2 * self.dE / (2 * np.pi) / max(s.Nqz, 1)
        pre_pi = s.coupling**2 * self.dE / (2 * np.pi) / max(s.Nkz, 1)
        Dcl = preprocess_phonon_green(Dl, dev.neighbors, self.rev)
        Dcg = preprocess_phonon_green(Dg, dev.neighbors, self.rev)
        v = s.sse_variant
        be = s.sse_backend
        dH = self.model.dH
        # Σ<(E) ~ G<(E-ω) D<(ω) + G<(E+ω) D>(ω)
        Sl = pre_sigma * (
            sigma_sse(Gl, dH, Dcl, dev.neighbors, +1, v, backend=be)
            + sigma_sse(Gl, dH, Dcg, dev.neighbors, -1, v, backend=be)
        )
        # Σ>(E) ~ G>(E-ω) D>(ω) + G>(E+ω) D<(ω)
        Sg = pre_sigma * (
            sigma_sse(Gg, dH, Dcg, dev.neighbors, +1, v, backend=be)
            + sigma_sse(Gg, dH, Dcl, dev.neighbors, -1, v, backend=be)
        )
        Pl = pre_pi * pi_sse(Gl, Gg, dH, dev.neighbors, self.rev, s.Nqz, s.Nw, v)
        Pg = pre_pi * pi_sse(Gg, Gl, dH, dev.neighbors, self.rev, s.Nqz, s.Nw, v)
        return Sl, Sg, Pl, Pg

    # -- observables --------------------------------------------------------------
    def _density(self, Gl) -> np.ndarray:
        return density_observable(Gl, self.dE, self.s.Nkz)

    def _dissipation(self, Gl, Gg, Sl, Sg) -> np.ndarray:
        return dissipation_observable(
            Gl, Gg, Sl, Sg, self.energies, self.dE, self.s.Nkz
        )

    # -- driver ------------------------------------------------------------------
    def run(self, ballistic: Optional[bool] = None) -> SCBAResult:
        """Iterate GF ⇄ SSE to self-consistency (Fig. 2).

        ``ballistic=None`` follows :attr:`default_ballistic` (False unless
        the simulation came from a ballistic workload); passing a bool
        overrides it explicitly.
        """
        if ballistic is None:
            ballistic = self.default_ballistic
        if getattr(self.s, "runtime", "serial") != "serial":
            return self._run_distributed(ballistic)
        s = self.s
        Sl = Sg = Sr = None
        Pl = Pg = Pr = None
        history: List[float] = []
        Gl_prev = None
        converged = False
        iterations = 0

        max_iter = 1 if ballistic else s.max_iterations
        for it in range(max_iter):
            iterations = it + 1
            _metrics.add("scba.iterations")
            with trace("scba.iteration", iteration=it):
                Gl, Gg, I_L, I_R = self.solve_electrons(Sr, Sl, Sg)
                Dl, Dg = self.solve_phonons(Pr, Pl)
                if Gl_prev is not None:
                    num = np.linalg.norm(Gl - Gl_prev)
                    den = max(np.linalg.norm(Gl), 1e-300)
                    history.append(num / den)
                    if history[-1] < s.tolerance:
                        converged = True
                        Gl_prev = Gl
                        break
                Gl_prev = Gl
                if ballistic:
                    converged = True
                    break

                with trace("scba.sse", iteration=it):
                    Sl_new, Sg_new, Pl_new, Pg_new = (
                        self.scattering_self_energies(Gl, Gg, Dl, Dg)
                    )
                mix = s.mixing
                Sl = Sl_new if Sl is None else (1 - mix) * Sl + mix * Sl_new
                Sg = Sg_new if Sg is None else (1 - mix) * Sg + mix * Sg_new
                Pl = Pl_new if Pl is None else (1 - mix) * Pl + mix * Pl_new
                Pg = Pg_new if Pg is None else (1 - mix) * Pg + mix * Pg_new
                Sr = retarded_from_lesser_greater(Sl, Sg)
                Pr = retarded_from_lesser_greater(Pl, Pg)

        zero_sig = np.zeros_like(Gl)
        zero_pi = np.zeros_like(Dl)
        return SCBAResult(
            Gl=Gl,
            Gg=Gg,
            Dl=Dl,
            Dg=Dg,
            Sigma_l=Sl if Sl is not None else zero_sig,
            Sigma_g=Sg if Sg is not None else zero_sig,
            Pi_l=Pl if Pl is not None else zero_pi,
            Pi_g=Pg if Pg is not None else zero_pi,
            iterations=iterations,
            converged=converged,
            history=history,
            current_left=I_L,
            current_right=I_R,
            density=self._density(Gl),
            dissipation=self._dissipation(Gl, Gg, Sl, Sg),
        )
