"""Self-consistent Born cycle: the GF ⇄ SSE iteration of Fig. 2/6.

One iteration solves the electron and phonon Green's functions for every
``(E, kz)`` / ``(ω, qz)`` point with RGF under the current scattering
self-energies, then evaluates the scattering self-energies (Eq. 3-5) from
the new Green's functions, mixes, and repeats until the Green's-function
update drops below tolerance — exactly the outer state machine of the
paper's top-level SDFG (Fig. 6).

Physical conventions (dimensionless units, ħ = e = 1):

* electron boundary occupation: Fermi-Dirac with per-lead chemical
  potentials (bias window drives current);
* phonon boundary occupation: Bose-Einstein at the lattice temperature;
* ``Σᴿ ≈ (Σ> - Σ<)/2`` (paper's Lake-et-al. approximation), likewise Πᴿ;
* only diagonal (per-atom) Σ blocks are retained; Π keeps the ``NB``
  bond blocks (§2) — bond blocks crossing RGF slab boundaries are
  dropped from the phonon linear system (documented approximation, exact
  for ``slab_width`` ≥ neighbor range + 1 with intra-slab bonds only).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Literal, Optional, Tuple

import numpy as np

from .boundary import lead_self_energy
from .hamiltonian import BlockTridiagonal, HamiltonianModel
from .rgf import rgf_solve
from .sse import pi_sse, preprocess_phonon_green, retarded_from_lesser_greater, sigma_sse

__all__ = ["SCBASettings", "SCBAResult", "SCBASimulation", "fermi", "bose"]


def fermi(E: np.ndarray, mu: float, kT: float) -> np.ndarray:
    """Fermi-Dirac occupation (numerically safe for large arguments)."""
    x = np.clip((np.asarray(E, dtype=float) - mu) / max(kT, 1e-12), -700, 700)
    return 1.0 / (1.0 + np.exp(x))


def bose(w: np.ndarray, kT: float) -> np.ndarray:
    """Bose-Einstein occupation; ω -> 0 regularized."""
    w = np.maximum(np.asarray(w, dtype=float), 1e-9)
    x = np.clip(w / max(kT, 1e-12), 1e-9, 700)
    return 1.0 / np.expm1(x)


@dataclass
class SCBASettings:
    """Numerical controls of the self-consistent Born loop."""

    #: energy window [E_min, E_max] discretized into NE points
    e_min: float = -2.0
    e_max: float = 2.0
    NE: int = 40
    Nkz: int = 3
    Nqz: int = 3
    #: number of phonon frequencies (ω_m = (m+1)·dE, matching the SSE
    #: index-shift convention)
    Nw: int = 4
    eta: float = 1e-3
    kT_el: float = 0.05
    kT_ph: float = 0.05
    mu_left: float = 0.3
    mu_right: float = -0.3
    #: electron-phonon coupling strength (scales Eq. 3-5)
    coupling: float = 0.1
    mixing: float = 0.5
    max_iterations: int = 20
    tolerance: float = 1e-5
    boundary_method: Literal["sancho-rubio", "transfer-matrix"] = "sancho-rubio"
    sse_variant: Literal["reference", "omen", "dace"] = "dace"


@dataclass
class SCBAResult:
    """Converged Green's functions, self-energies, and observables."""

    Gl: np.ndarray
    Gg: np.ndarray
    Dl: np.ndarray
    Dg: np.ndarray
    Sigma_l: np.ndarray
    Sigma_g: np.ndarray
    Pi_l: np.ndarray
    Pi_g: np.ndarray
    iterations: int
    converged: bool
    history: List[float]
    #: per-(kz, E) left/right contact currents (Meir-Wingreen integrand)
    current_left: np.ndarray
    current_right: np.ndarray
    #: per-atom electron density
    density: np.ndarray
    #: per-atom dissipated power (electron -> phonon energy transfer)
    dissipation: np.ndarray

    @property
    def total_current_left(self) -> float:
        return float(np.sum(self.current_left))

    @property
    def total_current_right(self) -> float:
        return float(np.sum(self.current_right))


class SCBASimulation:
    """Dissipative quantum transport on a synthetic device."""

    def __init__(self, model: HamiltonianModel, settings: SCBASettings):
        self.model = model
        self.s = settings
        dev = model.structure
        self.NA = dev.NA
        self.NB = dev.NB
        self.Norb = model.Norb
        self.N3D = model.N3D
        self.energies = np.linspace(settings.e_min, settings.e_max, settings.NE)
        self.dE = self.energies[1] - self.energies[0] if settings.NE > 1 else 1.0
        self.kz_grid = 2.0 * np.pi * np.arange(settings.Nkz) / settings.Nkz - np.pi
        self.qz_grid = self.kz_grid[: settings.Nqz]
        #: phonon frequencies aligned with energy-grid shifts: ω_m = (m+1) dE
        self.omegas = (np.arange(settings.Nw) + 1) * self.dE
        self.rev = dev.reverse_neighbor()
        self._atom_slices = self._build_atom_slices()

    # -- helpers -------------------------------------------------------------
    def _build_atom_slices(self) -> List[Tuple[int, slice, slice]]:
        """Per atom: (block index, orbital slice in block, N3D slice)."""
        dev = self.model.structure
        local = {}
        counters: Dict[int, int] = {}
        for a in range(self.NA):
            blk = int(dev.block_of[a])
            i = counters.get(blk, 0)
            counters[blk] = i + 1
            local[a] = (blk, i)
        out = []
        for a in range(self.NA):
            blk, i = local[a]
            out.append(
                (
                    blk,
                    slice(i * self.Norb, (i + 1) * self.Norb),
                    slice(i * self.N3D, (i + 1) * self.N3D),
                )
            )
        return out

    # -- electron GF phase ------------------------------------------------------
    def solve_electrons(
        self, sigma_r: Optional[np.ndarray], sigma_l: Optional[np.ndarray],
        sigma_g: Optional[np.ndarray],
    ):
        """RGF over the (kz, E) grid.

        ``sigma_*`` are per-atom scattering self-energy tensors
        ``[Nkz, NE, NA, Norb, Norb]`` (or None in the ballistic limit).
        Returns ``(Gl, Gg, I_left, I_right)``.
        """
        s = self.s
        shape = (s.Nkz, s.NE, self.NA, self.Norb, self.Norb)
        Gl = np.zeros(shape, dtype=np.complex128)
        Gg = np.zeros(shape, dtype=np.complex128)
        I_L = np.zeros((s.Nkz, s.NE))
        I_R = np.zeros((s.Nkz, s.NE))
        for ik, kz in enumerate(self.kz_grid):
            H = self.model.hamiltonian_blocks(kz)
            S = self.model.overlap_blocks(kz)
            for iE, E in enumerate(self.energies):
                diag, upper, sless, extras = self._electron_system(
                    H, S, E, ik, iE, sigma_r, sigma_l, sigma_g
                )
                res = rgf_solve(diag, upper, sless)
                self._scatter_to_atoms(res, Gl, Gg, ik, iE)
                I_L[ik, iE], I_R[ik, iE] = self._contact_currents(res, extras)
        return Gl, Gg, I_L, I_R

    def _electron_system(self, H, S, E, ik, iE, sigma_r, sigma_l, sigma_g):
        s = self.s
        diag = []
        for i, (h, sv) in enumerate(zip(H.diag, S.diag)):
            diag.append((E + 1j * s.eta) * sv - h)
        upper = [E * u_s - u_h for u_h, u_s in zip(H.upper, S.upper)]

        sig_L = lead_self_energy(
            E, H.diag[0], H.upper[0], "left", S.diag[0], S.upper[0],
            eta=s.eta, method=s.boundary_method,
        )
        sig_R = lead_self_energy(
            E, H.diag[-1], H.upper[-1], "right", S.diag[-1], S.upper[-1],
            eta=s.eta, method=s.boundary_method,
        )
        diag[0] = diag[0] - sig_L
        diag[-1] = diag[-1] - sig_R

        gam_L = 1j * (sig_L - sig_L.conj().T)
        gam_R = 1j * (sig_R - sig_R.conj().T)
        fL = fermi(E, s.mu_left, s.kT_el)
        fR = fermi(E, s.mu_right, s.kT_el)
        sless = [np.zeros_like(b) for b in diag]
        sgreater_bdry = [np.zeros_like(b) for b in diag]
        sless[0] = sless[0] + 1j * fL * gam_L
        sless[-1] = sless[-1] + 1j * fR * gam_R
        sgreater_bdry[0] = sgreater_bdry[0] - 1j * (1 - fL) * gam_L
        sgreater_bdry[-1] = sgreater_bdry[-1] - 1j * (1 - fR) * gam_R

        if sigma_r is not None:
            for a, (blk, orb, _) in enumerate(self._atom_slices):
                diag[blk][orb, orb] -= sigma_r[ik, iE, a]
                sless[blk][orb, orb] += sigma_l[ik, iE, a]
        extras = dict(gam_L=gam_L, gam_R=gam_R, fL=fL, fR=fR)
        return diag, upper, sless, extras

    def _scatter_to_atoms(self, res, Gl, Gg, ik, iE):
        for a, (blk, orb, _) in enumerate(self._atom_slices):
            Gl[ik, iE, a] = res.Gl[blk][orb, orb]
            Gg[ik, iE, a] = res.Gg[blk][orb, orb]

    def _contact_currents(self, res, extras) -> Tuple[float, float]:
        """Meir-Wingreen integrand at both contacts.

        ``I = Tr[Σ< G> - Σ> G<]`` with the *boundary* self-energies; in the
        ballistic limit ``I_L = -I_R`` (flux conservation).
        """
        gl0, gg0 = res.Gl[0], res.Gg[0]
        glN, ggN = res.Gl[-1], res.Gg[-1]
        gam_L, gam_R = extras["gam_L"], extras["gam_R"]
        fL, fR = extras["fL"], extras["fR"]
        sl_L, sg_L = 1j * fL * gam_L, -1j * (1 - fL) * gam_L
        sl_R, sg_R = 1j * fR * gam_R, -1j * (1 - fR) * gam_R
        i_l = np.trace(sl_L @ gg0 - sg_L @ gl0)
        i_r = np.trace(sl_R @ ggN - sg_R @ glN)
        return float(i_l.real), float(i_r.real)

    # -- phonon GF phase --------------------------------------------------------
    def solve_phonons(
        self, pi_r: Optional[np.ndarray], pi_l: Optional[np.ndarray]
    ):
        """RGF over the (qz, ω) grid; returns (Dl, Dg) bond tensors.

        The returned tensors have shape ``[Nqz, Nw, NA, NB+1, N3D, N3D]``
        (block 0 = on-site).  Bond blocks crossing slab boundaries are not
        produced by the diagonal-block RGF and are left zero.
        """
        s = self.s
        shape = (s.Nqz, s.Nw, self.NA, self.NB + 1, self.N3D, self.N3D)
        Dl = np.zeros(shape, dtype=np.complex128)
        Dg = np.zeros(shape, dtype=np.complex128)
        dev = self.model.structure
        for iq, qz in enumerate(self.qz_grid):
            Phi = self.model.dynamical_blocks(qz)
            for iw, w in enumerate(self.omegas):
                z = (w + 1j * s.eta) ** 2
                diag = [z * np.eye(b.shape[0]) - b for b in Phi.diag]
                upper = [-u for u in Phi.upper]

                pi_L = lead_self_energy(
                    z.real, Phi.diag[0], Phi.upper[0], "left",
                    eta=max(s.eta, 2 * w * s.eta), method=s.boundary_method,
                )
                pi_R = lead_self_energy(
                    z.real, Phi.diag[-1], Phi.upper[-1], "right",
                    eta=max(s.eta, 2 * w * s.eta), method=s.boundary_method,
                )
                diag[0] = diag[0] - pi_L
                diag[-1] = diag[-1] - pi_R

                nb = bose(w, s.kT_ph)
                gam_L = 1j * (pi_L - pi_L.conj().T)
                gam_R = 1j * (pi_R - pi_R.conj().T)
                pless = [np.zeros_like(b) for b in diag]
                pless[0] = pless[0] + 1j * nb * gam_L
                pless[-1] = pless[-1] + 1j * nb * gam_R

                if pi_r is not None:
                    self._add_phonon_scattering(diag, pless, pi_r, pi_l, iq, iw)

                res = rgf_solve(diag, upper, pless)
                self._scatter_phonons(res, Dl, Dg, iq, iw, dev)
        return Dl, Dg

    def _add_phonon_scattering(self, diag, pless, pi_r, pi_l, iq, iw):
        """Insert Π self-energy blocks (on-site + intra-slab bonds)."""
        dev = self.model.structure
        for a, (blk, _, vib) in enumerate(self._atom_slices):
            diag[blk][vib, vib] -= pi_r[iq, iw, a, 0]
            pless[blk][vib, vib] += pi_l[iq, iw, a, 0]
            for b in range(self.NB):
                c = int(dev.neighbors[a, b])
                blk_c, _, vib_c = self._atom_slices[c]
                if blk_c != blk:
                    continue  # cross-slab bond blocks dropped (see module doc)
                diag[blk][vib, vib_c] -= pi_r[iq, iw, a, 1 + b]
                pless[blk][vib, vib_c] += pi_l[iq, iw, a, 1 + b]

    def _scatter_phonons(self, res, Dl, Dg, iq, iw, dev):
        for a, (blk, _, vib) in enumerate(self._atom_slices):
            Dl[iq, iw, a, 0] = res.Gl[blk][vib, vib]
            Dg[iq, iw, a, 0] = res.Gg[blk][vib, vib]
            for b in range(self.NB):
                c = int(dev.neighbors[a, b])
                blk_c, _, vib_c = self._atom_slices[c]
                if blk_c != blk:
                    continue
                Dl[iq, iw, a, 1 + b] = res.Gl[blk][vib, vib_c]
                Dg[iq, iw, a, 1 + b] = res.Gg[blk][vib, vib_c]

    # -- SSE phase -----------------------------------------------------------------
    def scattering_self_energies(self, Gl, Gg, Dl, Dg):
        """Evaluate Eq. 3-5 with emission+absorption combinations.

        The frequency integral ``∫ dω/2π`` and momentum averages
        ``(1/Nqz) Σ_qz`` / ``(1/Nkz) Σ_kz`` of Eqs. (3-5) become the grid
        prefactors below (``dω = dE`` by the index-shift convention).
        """
        s = self.s
        dev = self.model.structure
        pre_sigma = s.coupling**2 * self.dE / (2 * np.pi) / max(s.Nqz, 1)
        pre_pi = s.coupling**2 * self.dE / (2 * np.pi) / max(s.Nkz, 1)
        Dcl = preprocess_phonon_green(Dl, dev.neighbors, self.rev)
        Dcg = preprocess_phonon_green(Dg, dev.neighbors, self.rev)
        v = s.sse_variant
        dH = self.model.dH
        # Σ<(E) ~ G<(E-ω) D<(ω) + G<(E+ω) D>(ω)
        Sl = pre_sigma * (
            sigma_sse(Gl, dH, Dcl, dev.neighbors, +1, v)
            + sigma_sse(Gl, dH, Dcg, dev.neighbors, -1, v)
        )
        # Σ>(E) ~ G>(E-ω) D>(ω) + G>(E+ω) D<(ω)
        Sg = pre_sigma * (
            sigma_sse(Gg, dH, Dcg, dev.neighbors, +1, v)
            + sigma_sse(Gg, dH, Dcl, dev.neighbors, -1, v)
        )
        Pl = pre_pi * pi_sse(Gl, Gg, dH, dev.neighbors, self.rev, s.Nqz, s.Nw, v)
        Pg = pre_pi * pi_sse(Gg, Gl, dH, dev.neighbors, self.rev, s.Nqz, s.Nw, v)
        return Sl, Sg, Pl, Pg

    # -- observables --------------------------------------------------------------
    def _density(self, Gl) -> np.ndarray:
        """Per-atom electron density: -i ∫ tr G< dE / 2π (summed over kz)."""
        tr = np.trace(Gl, axis1=-2, axis2=-1)  # [Nkz, NE, NA]
        return (-1j * tr.sum(axis=(0, 1)) * self.dE / (2 * np.pi)).real / max(
            self.s.Nkz, 1
        )

    def _dissipation(self, Gl, Gg, Sl, Sg) -> np.ndarray:
        """Per-atom electron->phonon power: ∫ E tr[Σ< G> - Σ> G<] dE."""
        if Sl is None:
            return np.zeros(self.NA)
        x = np.einsum(
            "kEaij,kEaji->kEa", Sl, Gg, optimize=True
        ) - np.einsum("kEaij,kEaji->kEa", Sg, Gl, optimize=True)
        w = self.energies[None, :, None]
        return (
            (x * w).sum(axis=(0, 1)).real * self.dE / (2 * np.pi) / max(self.s.Nkz, 1)
        )

    # -- driver ------------------------------------------------------------------
    def run(self, ballistic: bool = False) -> SCBAResult:
        """Iterate GF ⇄ SSE to self-consistency (Fig. 2)."""
        s = self.s
        Sl = Sg = Sr = None
        Pl = Pg = Pr = None
        history: List[float] = []
        Gl_prev = None
        converged = False
        iterations = 0

        max_iter = 1 if ballistic else s.max_iterations
        for it in range(max_iter):
            iterations = it + 1
            Gl, Gg, I_L, I_R = self.solve_electrons(Sr, Sl, Sg)
            Dl, Dg = self.solve_phonons(Pr, Pl)
            if Gl_prev is not None:
                num = np.linalg.norm(Gl - Gl_prev)
                den = max(np.linalg.norm(Gl), 1e-300)
                history.append(num / den)
                if history[-1] < s.tolerance:
                    converged = True
                    Gl_prev = Gl
                    break
            Gl_prev = Gl
            if ballistic:
                converged = True
                break

            Sl_new, Sg_new, Pl_new, Pg_new = self.scattering_self_energies(
                Gl, Gg, Dl, Dg
            )
            mix = s.mixing
            Sl = Sl_new if Sl is None else (1 - mix) * Sl + mix * Sl_new
            Sg = Sg_new if Sg is None else (1 - mix) * Sg + mix * Sg_new
            Pl = Pl_new if Pl is None else (1 - mix) * Pl + mix * Pl_new
            Pg = Pg_new if Pg is None else (1 - mix) * Pg + mix * Pg_new
            Sr = retarded_from_lesser_greater(Sl, Sg)
            Pr = retarded_from_lesser_greater(Pl, Pg)

        zero_sig = np.zeros_like(Gl)
        zero_pi = np.zeros_like(Dl)
        return SCBAResult(
            Gl=Gl,
            Gg=Gg,
            Dl=Dl,
            Dg=Dg,
            Sigma_l=Sl if Sl is not None else zero_sig,
            Sigma_g=Sg if Sg is not None else zero_sig,
            Pi_l=Pl if Pl is not None else zero_pi,
            Pi_g=Pg if Pg is not None else zero_pi,
            iterations=iterations,
            converged=converged,
            history=history,
            current_left=I_L,
            current_right=I_R,
            density=self._density(Gl),
            dissipation=self._dissipation(Gl, Gg, Sl, Sg),
        )
