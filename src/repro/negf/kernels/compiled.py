"""Compiled (numba) RGF kernel — optional, gated on importability.

When numba is present, the batched recursion is JIT-compiled once and
the batch loop runs under ``prange``: each of the B independent
(E, k_z) / (ω, q_z) points walks the full forward/backward recursion on
its own thread, with the per-point block chain living in thread-local
contiguous scratch.  That inverts the vectorization axis of the numpy
kernels (which batch each *recursion step* across points through one
big LAPACK/BLAS call) and pays off when blocks are small enough that
per-call overhead, not flops, dominates.

When numba is absent (the supported no-extra-deps configuration),
``HAVE_NUMBA`` is False, the kernel is *not* registered, and
constructing :class:`NumbaKernel` directly raises
:class:`repro.negf.kernels.KernelError` with an actionable message.
Nothing in the import path requires numba.

Mixed block sizes cannot be packed into one rectangular scratch array,
so those systems delegate to the :class:`~.numpy_opt.NumpyKernel`
recursion — the compiled path covers the uniform-block case that every
generated device grid produces.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..rgf import _H
from .numpy_opt import NumpyKernel

__all__ = ["HAVE_NUMBA", "NumbaKernel"]

try:
    import numba
    from numba import njit, prange

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover - exercised when numba installed
    numba = None
    HAVE_NUMBA = False


if HAVE_NUMBA:

    @njit(cache=True)
    def _ct(a):
        """Conjugate transpose, materialized contiguous for matmul."""
        return np.ascontiguousarray(np.conj(a).T)

    @njit(parallel=True, cache=True)
    def _rgf_uniform(diag, upper, sless, want_lesser):
        """Batched RGF on packed ``[N, B, n, n]`` arrays, ``prange`` over B.

        ``upper`` is ``[N-1, B, n, n]`` (2-D couplings pre-broadcast by
        the caller); ``sless`` is zeros when ``want_lesser`` is False.
        Returns packed ``(GR, Gl)`` with ``Gl`` zeros when not wanted.
        """
        N, B, n, _ = diag.shape
        GR = np.empty((N, B, n, n), dtype=np.complex128)
        Gl = np.zeros((N, B, n, n), dtype=np.complex128)
        for b in prange(B):
            gR = np.empty((N, n, n), dtype=np.complex128)
            gl = np.zeros((N, n, n), dtype=np.complex128)
            # Forward pass: left-connected Green's functions.
            gR[0] = np.linalg.inv(np.ascontiguousarray(diag[0, b]))
            if want_lesser:
                g0 = np.ascontiguousarray(gR[0])
                gl[0] = g0 @ np.ascontiguousarray(sless[0, b]) @ _ct(g0)
            for k in range(1, N):
                Vd = np.ascontiguousarray(upper[k - 1, b])
                Vl = _ct(Vd)
                gprev = np.ascontiguousarray(gR[k - 1])
                gR[k] = np.linalg.inv(
                    np.ascontiguousarray(diag[k, b]) - Vl @ gprev @ Vd
                )
                if want_lesser:
                    gk = np.ascontiguousarray(gR[k])
                    S = (
                        np.ascontiguousarray(sless[k, b])
                        + Vl @ np.ascontiguousarray(gl[k - 1]) @ Vd
                    )
                    gl[k] = gk @ S @ _ct(gk)
            # Backward pass: fully-connected diagonal blocks.
            GR[N - 1, b] = gR[N - 1]
            if want_lesser:
                Gl[N - 1, b] = gl[N - 1]
            for k in range(N - 2, -1, -1):
                Vd = np.ascontiguousarray(upper[k, b])
                Vl = _ct(Vd)
                gk = np.ascontiguousarray(gR[k])
                P = gk @ Vd
                X = P @ np.ascontiguousarray(GR[k + 1, b]) @ Vl
                GR[k, b] = gk + X @ gk
                if want_lesser:
                    glk = np.ascontiguousarray(gl[k])
                    t1 = P @ np.ascontiguousarray(Gl[k + 1, b]) @ _ct(P)
                    t2 = X @ glk
                    t3 = _ct(X @ _ct(glk))
                    Gl[k, b] = glk + t1 + t2 + t3
        return GR, Gl


class NumbaKernel(NumpyKernel):
    """JIT-compiled uniform-block recursion (see module docstring)."""

    name = "numba"

    def __init__(self):
        if not HAVE_NUMBA:
            from . import KernelError

            raise KernelError(
                "the 'numba' RGF kernel requires the optional numba "
                "package, which is not installed; use the 'numpy' or "
                "'csrmm' kernel instead"
            )

    def _solve(
        self,
        diag: List[np.ndarray],
        upper: List[np.ndarray],
        sigma_lesser: Optional[Sequence[np.ndarray]],
    ) -> Tuple[List[np.ndarray], List[np.ndarray]]:
        n = diag[0].shape[-1]
        if any(d.shape[-1] != n for d in diag):
            # Mixed block sizes: no rectangular packing — use the
            # factorization-reuse numpy recursion instead.
            return super()._solve(diag, upper, sigma_lesser)
        N = len(diag)
        B = diag[0].shape[0]
        want_lesser = sigma_lesser is not None
        d = np.ascontiguousarray(np.stack(diag))
        u = np.empty((max(N - 1, 1), B, n, n), dtype=np.complex128)
        for k in range(N - 1):
            u[k] = np.broadcast_to(upper[k], (B, n, n))
        if want_lesser:
            s = np.ascontiguousarray(np.stack(sigma_lesser))
        else:
            s = np.zeros_like(d)
        GR, Gl = _rgf_uniform(d, u, s, want_lesser)
        return (
            [GR[k] for k in range(N)],
            [Gl[k] for k in range(N)] if want_lesser else [],
        )
