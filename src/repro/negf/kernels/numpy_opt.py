"""Factorization-reuse numpy kernel: the optimized dense RGF recursion.

Two structural inefficiencies of the reference recursion are removed
while producing the same diagonal blocks to ≤ 1e-10:

* **Factorize once, reuse everywhere.**  The reference forms every
  left-connected inverse with a fresh ``gesv`` against the identity
  (``np.linalg.solve(A, I)``, ≈ 8/3 n³ flops) and then re-multiplies it
  into each downstream product.  Here each diagonal block is factorized
  once per solve with a single batched ``getrf`` + ``getri``
  (``np.linalg.inv``, ≈ 2 n³) — the batched equivalent of
  ``lu_factor``/``lu_solve``, which LAPACK does not expose in batched
  form — and the explicit factor product is reused across the forward
  *and* backward passes through shared intermediates.

* **Shared backward intermediates.**  With ``P = gᴿ V``, ``W = P Gᴿ₊``
  and ``X = W V†`` the four backward updates collapse to

  ===========  ==================================  =====
  quantity     expression                          gemms
  ===========  ==================================  =====
  ``Gᴿ``       ``gᴿ + X gᴿ``                       4
  ``t1``       ``(P G<₊) P†``                      2
  ``t2``       ``X g<``                            1
  ``t3``       ``(X (g<)†)†``                      1
  ===========  ==================================  =====

  8 gemms per block instead of the reference's 16 (each ``t`` term and
  the ``Gᴿ`` update are written as independent 4-gemm chains there).

Matmul workspaces are preallocated per (role, shape) and reused across
the recursion steps, and ω-independent 2-D coupling blocks stay 2-D so
their products broadcast (one ``V†`` conjugation per block, not per
batch element).  Coupling products go through the overridable
``_prepare_couplings`` hook — the seam the Table-6 ``csrmm`` kernel
plugs into.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..rgf import _H
from . import RGFKernel

__all__ = ["NumpyKernel", "DenseCoupling"]


class DenseCoupling:
    """One super-diagonal block ``V = M_{n,n+1}`` with its dense products.

    ``V†`` is materialized once (2-D couplings stay 2-D and broadcast
    across the batch); the three product shapes the recursion needs are
    methods so sparse couplings can substitute CSR strategies.
    """

    kind = "dense"

    def __init__(self, Vd: np.ndarray):
        self.Vd = Vd
        self.Vl = np.ascontiguousarray(_H(Vd))

    def fold(self, g: np.ndarray) -> np.ndarray:
        """``V† g V`` — the forward-pass folding product."""
        return self.Vl @ g @ self.Vd

    def gv(self, g: np.ndarray) -> np.ndarray:
        """``g V`` — the backward-pass ``P`` intermediate."""
        return g @ self.Vd

    def wv(self, w: np.ndarray) -> np.ndarray:
        """``w V†`` — the backward-pass ``X`` intermediate."""
        return w @ self.Vl


class NumpyKernel(RGFKernel):
    """Optimized dense recursion (see module docstring)."""

    name = "numpy"

    # -- coupling preparation (overridden by the csrmm kernel) ---------------
    def _prepare_couplings(
        self, upper: Sequence[np.ndarray], batch: int
    ) -> List[DenseCoupling]:
        return [DenseCoupling(u) for u in upper]

    # -- factorization --------------------------------------------------------
    @staticmethod
    def _factorize(a: np.ndarray) -> np.ndarray:
        """One batched ``getrf`` + ``getri`` per block; the explicit
        factor product is what both passes multiply against."""
        return np.linalg.inv(a)

    # -- the recursions -------------------------------------------------------
    def _solve(
        self,
        diag: List[np.ndarray],
        upper: List[np.ndarray],
        sigma_lesser: Optional[Sequence[np.ndarray]],
    ) -> Tuple[List[np.ndarray], List[np.ndarray]]:
        N = len(diag)
        B = diag[0].shape[0]
        want_lesser = sigma_lesser is not None
        V = self._prepare_couplings(upper, B)

        # Preallocated matmul workspaces, keyed by (role, shape).  Each
        # role's buffer is fully consumed before the role recurs, so one
        # buffer per (role, shape) is safe across all recursion steps.
        ws: Dict[Tuple, np.ndarray] = {}

        def mm(role: str, a: np.ndarray, b: np.ndarray) -> np.ndarray:
            shape = np.broadcast_shapes(a.shape[:-2], b.shape[:-2]) + (
                a.shape[-2],
                b.shape[-1],
            )
            key = (role, shape)
            buf = ws.get(key)
            if buf is None:
                buf = ws[key] = np.empty(shape, dtype=np.complex128)
            return np.matmul(a, b, out=buf)

        # Forward pass: left-connected Green's functions.
        gR: List[np.ndarray] = [self._factorize(diag[0])]
        gl: List[np.ndarray] = []
        if want_lesser:
            gl.append(mm("gS", gR[0], sigma_lesser[0]) @ _H(gR[0]))
        for n in range(1, N):
            c = V[n - 1]
            gR.append(self._factorize(diag[n] - c.fold(gR[n - 1])))
            if want_lesser:
                S = sigma_lesser[n] + c.fold(gl[n - 1])
                gl.append(mm("gS", gR[n], S) @ _H(gR[n]))

        # Backward pass: fully-connected diagonal blocks through the
        # shared P/W/X intermediates (see module docstring).
        GR: List[Optional[np.ndarray]] = [None] * N
        Gl: List[Optional[np.ndarray]] = [None] * N
        GR[N - 1] = gR[N - 1]
        if want_lesser:
            Gl[N - 1] = gl[N - 1]
        for n in range(N - 2, -1, -1):
            c = V[n]
            gRn = gR[n]
            if getattr(c, "projected", False):
                # Interface-support projection (csrmm kernel): V is
                # nonzero only on rsup x csup, so P = gᴿV has column
                # support csup and X = PGᴿ₊V† has column support rsup.
                # Every backward product then contracts over the thin
                # support dimension instead of the full block:
                #   X̃  = P̃ Gᴿ₊[c,c] V†[c,r]          (n·c² + n·c·r)
                #   Gᴿ  = gᴿ + X̃ gᴿ[r,:]              (n²·r)
                #   t1  = (P̃ G<₊[c,c]) P̃†            (n·c² + n²·c)
                #   t2  = X̃ g<[r,:],  t3 = -like      (n²·r each)
                r, ci = c.rsup, c.csup
                Pt = c.pv(gRn)  # [B, n, |c|]
                Gc = GR[n + 1][:, ci[:, None], ci[None, :]]
                Xt = mm("Xt", mm("PGc", Pt, Gc), c.vl_sub)
                GR[n] = gRn + mm("XG", Xt, gRn[:, r, :])
                if want_lesser:
                    gln = gl[n]
                    Glc = Gl[n + 1][:, ci[:, None], ci[None, :]]
                    t1 = mm("t1", mm("PG", Pt, Glc), _H(Pt))
                    t2 = mm("t2", Xt, gln[:, r, :])
                    t3 = _H(mm("t3", Xt, _H(gln[:, :, r])))
                    Gl[n] = gln + t1 + t2 + t3
                continue
            P = c.gv(gRn)  # gᴿ V
            W = mm("W", P, GR[n + 1])  # gᴿ V Gᴿ₊
            X = c.wv(W)  # gᴿ V Gᴿ₊ V†
            GR[n] = gRn + mm("XG", X, gRn)
            if want_lesser:
                gln = gl[n]
                t1 = mm("t1", mm("PG", P, Gl[n + 1]), _H(P))
                t2 = mm("t2", X, gln)
                t3 = _H(mm("t3", X, _H(gln)))
                Gl[n] = gln + t1 + t2 + t3

        return list(GR), (list(Gl) if want_lesser else [])
