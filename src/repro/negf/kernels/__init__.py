"""Pluggable RGF solver kernels: the hot path behind every engine tier.

Every Born iteration spends its time in the RGF forward/backward
recursions of :mod:`repro.negf.rgf` and in the batched boundary
decimation of :mod:`repro.negf.boundary`.  This package makes that hot
path a pluggable *kernel* — the unit that the engine, the distributed
runtime, and the scheduler all amortize (the extreme-scale follow-up of
the paper treats the RGF kernel exactly this way):

``reference``
    The seed recursion, verbatim: per-block inverses via
    ``np.linalg.solve(A, I)``.  The bit-exactness oracle —
    :func:`repro.negf.rgf.rgf_solve` is a batch-of-1 view of it.
``numpy``
    Factorizes each diagonal block once (one batched ``getrf`` +
    ``getri`` per block instead of a fresh ``gesv`` against the identity)
    and reuses the explicit factor product across the forward *and*
    backward passes through shared intermediates, with preallocated
    matmul workspaces and ω-independent 2-D coupling blocks kept
    broadcast.  The built-in default.
``csrmm``
    The ``numpy`` kernel plus sparsity detection on the coupling blocks:
    sparse ``V† g V`` foldings run through the paper's §5.1.2 / Table 6
    :func:`repro.negf.sparse_kernels.three_matrix_product` strategies
    (CSRMM keeps ``gR`` dense throughout — the Table-6 winner).
``numba``
    JIT-compiles the batched recursion over a ``prange`` batch loop.
    Registered only when numba is importable; requesting it otherwise
    raises with a clear message (no hard dependency).

Kernel selection mirrors the engine/backend conventions:
``SCBASettings.rgf_kernel``, overridable through ``REPRO_RGF_KERNEL``
(invalid values raise), default from
:func:`repro.config.default_rgf_kernel`.  Every registered kernel is
validated against the serial oracle to ≤ 1e-10 in
``tests/test_kernels.py``; ``benchmarks/bench_rgf_kernels.py`` records
the Table-6 ordering inside the solver and the end-to-end SCBA speedup
in ``BENCH_rgf.json``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ...config import RGF_KERNELS, default_rgf_kernel
from ..rgf import BatchedRGFResult, _H

__all__ = [
    "RGFKernel",
    "KernelError",
    "RGF_KERNELS",
    "available_kernels",
    "default_rgf_kernel",
    "get_kernel",
    "register_kernel",
]


class KernelError(ValueError):
    """An RGF kernel cannot be constructed or selected."""


class RGFKernel:
    """One strategy for the batched block-tridiagonal RGF recursion.

    Subclasses implement :meth:`_solve` (the recursions proper) and set
    :attr:`name`; shape validation and the ``G> = G< + Gᴿ - Gᴬ``
    bookkeeping are shared here so all kernels accept exactly the same
    systems and report errors identically.

    :meth:`invert` is the second seam: the batched boundary decimation
    (:func:`repro.negf.boundary.sancho_rubio_batched`) routes its stacked
    inverses through it.  The base implementation keeps the seed's
    ``solve(A, I)`` — each decimation inverse is consumed once, so there
    is no factor reuse to exploit there — but custom kernels (e.g. an
    accelerator offload) can override it.
    """

    name: str = "base"

    # -- public API -----------------------------------------------------------
    def solve(
        self,
        diag: Sequence[np.ndarray],
        upper: Sequence[np.ndarray],
        sigma_lesser: Optional[Sequence[np.ndarray]] = None,
    ) -> BatchedRGFResult:
        """Run the RGF recursions over one stack of systems."""
        want_lesser = sigma_lesser is not None
        self._validate(diag, upper, sigma_lesser)
        GR, Gl = self._solve(list(diag), list(upper), sigma_lesser)
        if not want_lesser:
            return BatchedRGFResult(GR=GR, Gl=[], Gg=[])
        # G> - G< = GR - GA  (fluctuation-dissipation bookkeeping identity).
        Gg = [Gl[n] + GR[n] - _H(GR[n]) for n in range(len(GR))]
        return BatchedRGFResult(GR=GR, Gl=Gl, Gg=Gg)

    def invert(self, a: np.ndarray) -> np.ndarray:
        """Stacked inverse ``a^{-1}`` of ``[..., n, n]`` systems."""
        a = np.asarray(a)
        eye = np.broadcast_to(np.eye(a.shape[-1], dtype=np.complex128), a.shape)
        return np.linalg.solve(a, eye)

    # -- subclass hooks -------------------------------------------------------
    def _solve(
        self,
        diag: List[np.ndarray],
        upper: List[np.ndarray],
        sigma_lesser: Optional[Sequence[np.ndarray]],
    ) -> Tuple[List[np.ndarray], List[np.ndarray]]:
        """Return the ``(GR, Gl)`` diagonal-block lists (``Gl`` empty when
        ``sigma_lesser`` is None)."""
        raise NotImplementedError

    # -- shared validation ----------------------------------------------------
    @staticmethod
    def _validate(diag, upper, sigma_lesser) -> None:
        N = len(diag)
        if len(upper) != N - 1:
            raise ValueError(f"expected {N - 1} upper blocks, got {len(upper)}")
        B = diag[0].shape[0]
        for i, d in enumerate(diag):
            if d.ndim != 3 or d.shape[0] != B or d.shape[-1] != d.shape[-2]:
                raise ValueError(
                    f"diag[{i}] must be [batch={B}, n, n], got {d.shape}"
                )
        if sigma_lesser is not None:
            if len(sigma_lesser) != N:
                raise ValueError(
                    "sigma_lesser must have one block per diagonal block"
                )
            for i, sl in enumerate(sigma_lesser):
                if sl.shape != diag[i].shape:
                    raise ValueError(
                        f"sigma_lesser[{i}] shape {sl.shape} != "
                        f"diag shape {diag[i].shape}"
                    )

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


_REGISTRY: Dict[str, Callable[[], RGFKernel]] = {}


def register_kernel(name: str, factory: Callable[[], RGFKernel]) -> None:
    """Register a kernel factory under ``name`` (last wins)."""
    _REGISTRY[name] = factory


def available_kernels() -> Tuple[str, ...]:
    """Names of all currently registered kernels (built-in + custom).

    ``numba`` appears only when the numba package is importable.
    """
    return tuple(_REGISTRY)


def get_kernel(name: Optional[str] = None) -> RGFKernel:
    """Instantiate a kernel by name (``None`` → :func:`default_rgf_kernel`)."""
    if isinstance(name, RGFKernel):
        return name
    if name is None:
        name = default_rgf_kernel()
    if name not in _REGISTRY:
        hint = (
            " (the numba kernel requires the optional numba package, "
            "which is not installed)"
            if name == "numba" and name in RGF_KERNELS
            else ""
        )
        raise KernelError(
            f"unknown RGF kernel {name!r}; expected one of "
            f"{available_kernels()}{hint}"
        )
    return _REGISTRY[name]()


from .reference import ReferenceKernel  # noqa: E402
from .numpy_opt import NumpyKernel  # noqa: E402
from .csrmm import CsrmmKernel  # noqa: E402
from .compiled import HAVE_NUMBA, NumbaKernel  # noqa: E402

register_kernel("reference", ReferenceKernel)
register_kernel("numpy", NumpyKernel)
register_kernel("csrmm", CsrmmKernel)
if HAVE_NUMBA:
    register_kernel("numba", NumbaKernel)
