"""Table-6 CSRMM kernel: sparse coupling-block foldings in the real solver.

The DFT Hamiltonian's inter-slab coupling blocks are sparse — only the
bonds crossing a slab interface populate ``M_{n,n+1}`` (a few percent
fill, see :meth:`repro.negf.DeviceStructure.coupling_block_density` and
:meth:`repro.negf.BlockTridiagonal.upper_densities`).  The paper's
§5.1.2 / Table 6 measures three strategies for the recurring
``F gᴿ E`` product on exactly such operands and finds CSRMM (sparse x
dense, ``gᴿ`` kept dense) ahead by 1.98-4.33x; until this kernel, that
result sat dormant in :mod:`repro.negf.sparse_kernels` as a
microbenchmark.

This kernel extends the factorization-reuse ``numpy`` recursion by
detecting sparse coupling blocks at solve time and routing their
``V† g V`` foldings through
:func:`repro.negf.sparse_kernels.three_matrix_product`, with the
strategy auto-selected per block from size and density
(:func:`repro.negf.sparse_kernels.select_strategy`) — or forced with the
``strategy`` argument, which is how ``bench_rgf_kernels.py`` reproduces
the Table-6 ordering *inside* the solver.

On top of the fold strategies, slab-interface couplings carry
*structured* sparsity: only the last layer of slab ``n`` bonds to the
first layer of slab ``n+1``, so ``V`` is nonzero on a thin
``rsup x csup`` rectangle.  When both supports cover at most half the
block, the backward-pass intermediates ``P = gᴿV`` and ``X = WV†`` are
kept as thin ``n x |csup|`` / ``n x |rsup|`` panels and every backward
product contracts over the support dimension instead of the full block
(an O(n/|sup|) gemm reduction — the dominant win on real devices, where
``|sup|/n = 1/slab_width``).  ω-independent 2-D couplings
build one CSR pair per block; E-dependent 3-D electron couplings share
one sparsity pattern across the batch and rebuild only the ``data``
vector per batch element (O(nnz) each, negligible next to the O(n³)
dense factor products).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np
import scipy.sparse as sp

from ..sparse_kernels import METHODS, select_strategy, three_matrix_product
from .numpy_opt import DenseCoupling, NumpyKernel

__all__ = ["CsrmmKernel", "SparseCoupling"]


class SparseCoupling:
    """A sparse super-diagonal block as per-batch CSR operand pairs.

    The nonzero pattern is the union over the batch (E-dependent data on
    a fixed bond pattern), so ``indptr``/``indices`` are built once and
    only the data vectors vary per batch element.
    """

    kind = "sparse"

    def __init__(self, Vd: np.ndarray, strategy: str, density: float):
        self.strategy = strategy
        self.density = density
        stacked = Vd[None] if Vd.ndim == 2 else Vd
        n, m = stacked.shape[-2:]
        mask = np.any(stacked != 0, axis=0)
        rows, cols = np.nonzero(mask)
        indptr = np.searchsorted(rows, np.arange(n + 1))
        #: per batch element: (V, V†) CSR pair (length 1 for 2-D blocks,
        #: broadcast across the batch)
        self.vd_csr = []
        self.vl_csr = []
        for b in range(stacked.shape[0]):
            v = sp.csr_matrix(
                (stacked[b][mask], cols.copy(), indptr.copy()), shape=(n, m)
            )
            self.vd_csr.append(v)
            self.vl_csr.append(v.conj(copy=True).transpose().tocsr())
        # Interface support: coupling blocks of a slab-decomposed device
        # populate only the rows of the last layer of slab n and the
        # columns of the first layer of slab n+1.  When both supports are
        # small, the backward-pass intermediates P = gᴿV and X = WV† live
        # on thin column spaces, and the recursion projects onto them
        # (see ``NumpyKernel._solve``).
        self.rsup = np.unique(rows)
        self.csup = np.unique(cols)
        self.projected = (
            2 * self.rsup.size <= n and 2 * self.csup.size <= m
        )
        #: dense interface sub-blocks V[rsup, csup] / V†[csup, rsup],
        #: shape [L, r, c] / [L, c, r] with L = 1 broadcasting for
        #: ω-independent couplings
        sub = stacked[:, self.rsup[:, None], self.csup[None, :]]
        self.vd_sub = np.ascontiguousarray(sub)
        self.vl_sub = np.ascontiguousarray(
            np.conjugate(np.swapaxes(sub, -1, -2))
        )

    def pv(self, g: np.ndarray) -> np.ndarray:
        """Thin ``P̃ = g V`` restricted to the support columns: only
        ``V[rsup, csup]`` is nonzero, so ``g V`` has column support
        ``csup`` and equals ``g[:, rsup] @ V_sub`` there."""
        return g[..., :, self.rsup] @ self.vd_sub

    def _pair(self, b: int) -> Tuple[sp.csr_matrix, sp.csr_matrix]:
        i = b if len(self.vd_csr) > 1 else 0
        return self.vd_csr[i], self.vl_csr[i]

    def fold(self, g: np.ndarray) -> np.ndarray:
        """``V† g V`` through the Table-6 three-matrix product."""
        out = np.empty(
            (g.shape[0], self.vl_csr[0].shape[0], self.vd_csr[0].shape[1]),
            dtype=np.complex128,
        )
        for b in range(g.shape[0]):
            vd, vl = self._pair(b)
            out[b] = three_matrix_product(vl, g[b], vd, self.strategy)
        return out

    def gv(self, g: np.ndarray) -> np.ndarray:
        """``g V`` — dense x CSR (the transposed-CSRMM half-product)."""
        out = np.empty(
            (g.shape[0], g.shape[1], self.vd_csr[0].shape[1]),
            dtype=np.complex128,
        )
        for b in range(g.shape[0]):
            out[b] = g[b] @ self._pair(b)[0]
        return out

    def wv(self, w: np.ndarray) -> np.ndarray:
        """``w V†`` — dense x CSR."""
        out = np.empty(
            (w.shape[0], w.shape[1], self.vl_csr[0].shape[1]),
            dtype=np.complex128,
        )
        for b in range(w.shape[0]):
            out[b] = w[b] @ self._pair(b)[1]
        return out


def _block_density(u: np.ndarray) -> float:
    """Union-over-batch nonzero fraction of one coupling block."""
    mask = np.any(u != 0, axis=0) if u.ndim == 3 else (u != 0)
    return float(np.count_nonzero(mask)) / mask.size


class CsrmmKernel(NumpyKernel):
    """Factorization-reuse recursion + Table-6 sparse foldings.

    ``strategy="auto"`` (the default) picks dense or CSRMM per coupling
    block from its size and exact density; forcing ``"dense"``,
    ``"csrmm"``, or ``"csrgemm"`` applies that Table-6 method to *every*
    block regardless (the in-solver benchmark mode).  The per-block
    choices of the most recent solve are exposed as :attr:`last_plan`
    ``(block_size, density, strategy)`` tuples for tests and benchmarks.
    """

    name = "csrmm"

    def __init__(self, strategy: str = "auto"):
        if strategy != "auto" and strategy not in METHODS:
            raise ValueError(
                f"unknown fold strategy {strategy!r}; expected 'auto' or "
                f"one of {METHODS}"
            )
        self.strategy = strategy
        #: per coupling block of the last solve: (min_dim, density, strategy)
        self.last_plan: Tuple[Tuple[int, float, str], ...] = ()

    def _prepare_couplings(
        self, upper: Sequence[np.ndarray], batch: int
    ) -> List[Union[DenseCoupling, SparseCoupling]]:
        couplings: List[Union[DenseCoupling, SparseCoupling]] = []
        plan = []
        for u in upper:
            density = _block_density(u)
            size = min(u.shape[-2:])
            strat = (
                select_strategy(size, density)
                if self.strategy == "auto"
                else self.strategy
            )
            if strat == "dense":
                couplings.append(DenseCoupling(u))
            else:
                couplings.append(SparseCoupling(u, strat, density))
            plan.append((size, density, strat))
        self.last_plan = tuple(plan)
        return couplings
