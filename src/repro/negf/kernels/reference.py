"""The seed RGF recursion, verbatim — the bit-exactness oracle.

This kernel is the exact recursion body that ``rgf_solve_batched``
carried before the kernel tier existed: per-block inverses formed with
``np.linalg.solve(A, I)`` and every coupling product a dense chained
matmul.  ``rgf_solve`` (the serial path) is a batch-of-1 view of this
kernel, so the serial oracle and the batched reference can never drift;
every other kernel is validated against it to ≤ 1e-10.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..rgf import _H
from . import RGFKernel

__all__ = ["ReferenceKernel"]


class ReferenceKernel(RGFKernel):
    """Per-block ``solve(A, I)`` recursion — the seed hot path."""

    name = "reference"

    def _solve(
        self,
        diag: List[np.ndarray],
        upper: List[np.ndarray],
        sigma_lesser: Optional[Sequence[np.ndarray]],
    ) -> Tuple[List[np.ndarray], List[np.ndarray]]:
        N = len(diag)
        want_lesser = sigma_lesser is not None
        eye = [
            np.broadcast_to(np.eye(d.shape[-1], dtype=np.complex128), d.shape)
            for d in diag
        ]

        # Forward pass: left-connected Green's functions.
        gR: List[np.ndarray] = [np.linalg.solve(diag[0], eye[0])]
        gl: List[np.ndarray] = []
        if want_lesser:
            gl.append(gR[0] @ sigma_lesser[0] @ _H(gR[0]))
        for n in range(1, N):
            Vd = upper[n - 1]  # M_{n-1,n}
            Vl = _H(Vd)  # M_{n,n-1}
            gR.append(np.linalg.solve(diag[n] - Vl @ gR[n - 1] @ Vd, eye[n]))
            if want_lesser:
                folded = Vl @ gl[n - 1] @ Vd
                gl.append(gR[n] @ (sigma_lesser[n] + folded) @ _H(gR[n]))

        # Backward pass: fully-connected diagonal blocks.
        GR: List[Optional[np.ndarray]] = [None] * N
        Gl: List[Optional[np.ndarray]] = [None] * N
        GR[N - 1] = gR[N - 1]
        if want_lesser:
            Gl[N - 1] = gl[N - 1]
        for n in range(N - 2, -1, -1):
            Vd = upper[n]  # M_{n,n+1}
            Vl = _H(Vd)  # M_{n+1,n}
            gRn, gRnH = gR[n], _H(gR[n])
            GR[n] = gRn + gRn @ Vd @ GR[n + 1] @ Vl @ gRn
            if want_lesser:
                gln = gl[n]
                t1 = gRn @ Vd @ Gl[n + 1] @ Vl @ gRnH
                t2 = gRn @ Vd @ GR[n + 1] @ Vl @ gln
                t3 = gln @ Vd @ _H(GR[n + 1]) @ Vl @ gRnH
                Gl[n] = gln + t1 + t2 + t3

        return list(GR), (list(Gl) if want_lesser else [])
