"""Scattering self-energies (paper Eqs. 3-5) — the SSE phase.

Four executable variants of the Σ≷ kernel share one semantics:

* ``reference`` — direct loops over the full 8-D index space (ground
  truth; use for small problems only);
* ``omen`` — OMEN's algorithmic structure: one round per ``(qz, ω)`` pair
  that *recomputes* the ``∇H·G`` products for the shifted Green's
  functions (the 2x flop overhead the paper's Table 3 quantifies);
* ``dace`` — the transformed algorithm of §4.2: ``∇HG`` computed once
  (batched over ``(kz, E)``), then reused by every ``(qz, ω)`` round
  (hand-vectorized numpy);
* ``sdfg`` — the same algorithm, but *executed from the optimized
  graph*: the Fig. 8 → 12 pipeline's final stage is lowered by an SDFG
  execution backend (:mod:`repro.sdfg.backends`, generated numpy code
  by default) and driven directly — the paper's "generated code replaces
  the hand-written kernel" step.  The graph kernel is periodic in
  energy, so the open (zero-padded) energy axis is realized by embedding
  G≷ in a ``NE + Nw - 1`` energy window whose top slots are zero; the
  result matches ``dace``/``reference`` to float tolerance.

Index conventions (physical):

* momentum is periodic — ``kz - qz`` wraps modulo ``Nkz`` (``Nqz <= Nkz``
  on matching grids);
* energy is open — contributions with ``E - ω`` (or ``E + ω``) outside the
  grid are dropped (zero padding).  ``shift_sign=+1`` consumes
  ``G(E - ω)`` (phonon emission), ``shift_sign=-1`` consumes ``G(E + ω)``
  (absorption); the SCBA driver combines both for detailed balance while
  the benchmarks exercise single paper-form calls.

The phonon Green's function enters pre-combined per Eq. (3):
``Dcomb = D_ba - D_bb - D_aa + D_ab`` (:func:`preprocess_phonon_green`).
"""

from __future__ import annotations

from typing import Literal, Optional

import numpy as np

__all__ = [
    "preprocess_phonon_green",
    "sigma_sse",
    "pi_sse",
    "retarded_from_lesser_greater",
    "sse_flop_estimate",
]

Variant = Literal["reference", "omen", "dace", "sdfg"]


def _sdfg_kernel(backend=None):
    """The pipeline-compiled Σ≷ kernel (final fig12s stage only), cached
    per execution backend.  Imported lazily: ``repro.core`` layers on
    top of ``repro.sdfg`` and is only needed when the sdfg variant
    runs."""
    from ..core.recipe import compiled_sse_kernel

    return compiled_sse_kernel(backend)


def preprocess_phonon_green(
    D: np.ndarray, neigh: np.ndarray, rev: np.ndarray
) -> np.ndarray:
    """Combine phonon GF blocks per Eq. (3).

    ``D`` has shape ``[Nqz, Nw, NA, NB+1, N3D, N3D]`` with block 0 the
    on-site ``D_aa`` and block ``1+b`` the bond ``D_{a, neigh[a,b]}``.
    Returns ``Dcomb[q, w, a, b] = D_ba - D_bb - D_aa + D_ab`` of shape
    ``[Nqz, Nw, NA, NB, N3D, N3D]``.
    """
    Nq, Nw, NA, NBp1, N3D, _ = D.shape
    NB = NBp1 - 1
    nb = neigh  # (NA, NB)
    D_ab = D[:, :, :, 1:]  # [q,w,a,b,i,j]
    D_aa = D[:, :, :, :1]  # broadcast over b
    D_bb = D[:, :, nb, 0]  # [q,w,a,b,i,j] via fancy index on atom axis
    # D_ba: at atom nb[a,b], the bond pointing back to a is rev[a,b].
    D_ba = D[:, :, nb, 1 + rev]  # [q,w,a,b,i,j]
    return D_ba - D_bb - D_aa + D_ab


def _shifted_energy_slices(NE: int, w: int, sign: int):
    """Aligned (source, destination) energy slices for a shift of ``w``.

    ``sign=+1``: Σ(E) consumes G(E - w) -> source ``[0, NE-w)`` feeds
    destination ``[w, NE)``.  ``sign=-1``: Σ(E) consumes G(E + w).
    """
    if w == 0:
        return slice(0, NE), slice(0, NE)
    if sign > 0:
        return slice(0, NE - w), slice(w, NE)
    return slice(w, NE), slice(0, NE - w)


def sigma_sse(
    G: np.ndarray,
    dH: np.ndarray,
    Dcomb: np.ndarray,
    neigh: np.ndarray,
    shift_sign: int = +1,
    variant: Variant = "dace",
    backend: Optional[str] = None,
) -> np.ndarray:
    """One Σ≷ evaluation (Eq. 3 / Fig. 5 kernel).

    Parameters
    ----------
    G:
        Electron GF diagonal blocks ``[Nkz, NE, NA, Norb, Norb]``.
    dH:
        Hamiltonian derivative ``[NA, NB, N3D, Norb, Norb]``.
    Dcomb:
        Combined phonon GF ``[Nqz, Nw, NA, NB, N3D, N3D]``.
    neigh:
        ``[NA, NB]`` neighbor indices (the ``f(a, b)`` indirection).
    backend:
        SDFG execution backend for ``variant="sdfg"`` (``"numpy"`` /
        ``"interpreter"``; ``None`` follows ``REPRO_SDFG_BACKEND``).
        Ignored by the other variants.
    """
    if variant == "reference":
        return _sigma_reference(G, dH, Dcomb, neigh, shift_sign)
    if variant == "omen":
        return _sigma_omen(G, dH, Dcomb, neigh, shift_sign)
    if variant == "dace":
        return _sigma_dace(G, dH, Dcomb, neigh, shift_sign)
    if variant == "sdfg":
        return _sigma_sdfg(G, dH, Dcomb, neigh, shift_sign, backend)
    raise ValueError(f"unknown variant {variant!r}")


def _sigma_reference(G, dH, Dcomb, neigh, sign) -> np.ndarray:
    Nkz, NE, NA, No, _ = G.shape
    Nqz, Nw, _, NB, N3D, _ = Dcomb.shape
    Sigma = np.zeros_like(G)
    for k in range(Nkz):
        for E in range(NE):
            for q in range(Nqz):
                for w in range(Nw):
                    Es = E - sign * w
                    if Es < 0 or Es >= NE:
                        continue
                    ks = (k - q) % Nkz
                    for i in range(N3D):
                        for j in range(N3D):
                            for a in range(NA):
                                for b in range(NB):
                                    f = neigh[a, b]
                                    gh = G[ks, Es, f] @ dH[a, b, i]
                                    hd = dH[a, b, j] * Dcomb[q, w, a, b, i, j]
                                    Sigma[k, E, a] += gh @ hd
    return Sigma


def _hd_tensor(dH, Dcomb) -> np.ndarray:
    """``Σ_j dH[a,b,j] * Dcomb[q,w,a,b,i,j]`` -> [q,w,a,b,i,orb,orb]."""
    return np.einsum("qwabij,abjxy->qwabixy", Dcomb, dH, optimize=True)


def _sigma_omen(G, dH, Dcomb, neigh, sign) -> np.ndarray:
    """Per-(qz, ω) rounds, recomputing ∇H·G(E∓ω, kz-qz) every round."""
    Nkz, NE, NA, No, _ = G.shape
    Nqz, Nw, _, NB, N3D, _ = Dcomb.shape
    Sigma = np.zeros_like(G)
    hd = _hd_tensor(dH, Dcomb)
    Gf = G[:, :, neigh]  # [k,E,a,b,No,No]
    for q in range(Nqz):
        Gq = np.roll(Gf, q, axis=0)  # index (k - q) mod Nkz
        for w in range(Nw):
            src, dst = _shifted_energy_slices(NE, w, sign)
            # The OMEN structure recomputes the ∇H·G product each round.
            gh = np.einsum(
                "kEabxy,abiyz->kEabixz", Gq[:, src], dH, optimize=True
            )
            Sigma[:, dst] += np.einsum(
                "kEabixy,abiyz->kEaxz", gh, hd[q, w], optimize=True
            )
    return Sigma


def _sigma_dace(G, dH, Dcomb, neigh, sign) -> np.ndarray:
    """Transformed algorithm: ∇H·G computed once, reused by all rounds."""
    Nkz, NE, NA, No, _ = G.shape
    Nqz, Nw, _, NB, N3D, _ = Dcomb.shape
    Sigma = np.zeros_like(G)
    hd = _hd_tensor(dH, Dcomb)
    Gf = G[:, :, neigh]  # [k,E,a,b,No,No]
    # Fig. 10b-d: the (qz, ω)-independent ∇H·G tensor, batched over (kz, E).
    gh = np.einsum("kEabxy,abiyz->kEabixz", Gf, dH, optimize=True)
    for q in range(Nqz):
        ghq = np.roll(gh, q, axis=0)
        for w in range(Nw):
            src, dst = _shifted_energy_slices(NE, w, sign)
            Sigma[:, dst] += np.einsum(
                "kEabixy,abiyz->kEaxz", ghq[:, src], hd[q, w], optimize=True
            )
    return Sigma


def _sigma_sdfg(G, dH, Dcomb, neigh, sign, backend=None) -> np.ndarray:
    """Σ≷ driven by the compiled Fig. 8 → 12 pipeline (final stage).

    The graph treats both offset axes as periodic; the physical open
    energy axis is recovered exactly by embedding G≷ in a zero-padded
    window of ``NE + Nw - 1`` energy slots: every wrapped read then
    lands in the padding and contributes nothing.  ``shift_sign=-1``
    (absorption, ``G(E + ω)``) is the same kernel on the energy-reversed
    window, with the result reversed back.
    """
    Nkz, NE, NA, No, _ = G.shape
    Nqz, Nw, _, NB, N3D, _ = Dcomb.shape
    NEp = NE + Nw - 1
    Gp = np.zeros((Nkz, NEp, NA, No, No), dtype=np.complex128)
    Gp[:, :NE] = G if sign > 0 else G[:, ::-1]
    dims = dict(
        Nkz=Nkz, NE=NEp, Nqz=Nqz, Nw=Nw, N3D=N3D, NA=NA, NB=NB, Norb=No
    )
    kern = _sdfg_kernel(backend)
    sigma = kern(
        dims, {"G": Gp, "dH": dH, "D": Dcomb}, {"__neigh__": neigh}
    )[:, :NE]
    return sigma if sign > 0 else sigma[:, ::-1]


def pi_sse(
    G_plus: np.ndarray,
    G_minus: np.ndarray,
    dH: np.ndarray,
    neigh: np.ndarray,
    rev: np.ndarray,
    Nqz: int,
    Nw: int,
    variant: Variant = "dace",
) -> np.ndarray:
    """One Π≷ evaluation (Eqs. 4-5).

    ``Π≷[q,w,a,0]`` is the on-site block (Eq. 4, minus sign, summed over
    neighbors) and ``Π≷[q,w,a,1+b]`` the bond block (Eq. 5):

    ``Π≷_ab(ω, qz) = Σ_{kz} Σ_E tr{ ∇iH_ba G≷_aa(E+ω, kz+qz)
    ∇jH_ab G≶_bb(E, kz) }``

    Parameters
    ----------
    G_plus:
        ``G≷`` — shifted to ``(E + ω, kz + qz)`` internally.
    G_minus:
        ``G≶`` — the opposite-sign GF, evaluated at ``(E, kz)``.
    """
    if variant == "reference":
        return _pi_reference(G_plus, G_minus, dH, neigh, rev, Nqz, Nw)
    if variant in ("dace", "omen", "sdfg"):
        # The paper's graph recipe covers Σ≷; Π≷ (Eqs. 4-5) always runs
        # the hand-vectorized kernel, also under the sdfg variant.
        return _pi_vectorized(G_plus, G_minus, dH, neigh, rev, Nqz, Nw)
    raise ValueError(f"unknown variant {variant!r}")


def _pi_reference(Gp, Gm, dH, neigh, rev, Nqz, Nw) -> np.ndarray:
    Nkz, NE, NA, No, _ = Gp.shape
    _, NB, N3D, _, _ = dH.shape
    Pi = np.zeros((Nqz, Nw, NA, NB + 1, N3D, N3D), dtype=np.complex128)
    for q in range(Nqz):
        for w in range(Nw):
            for k in range(Nkz):
                for E in range(NE):
                    if E + w >= NE:
                        continue
                    kp = (k + q) % Nkz
                    for a in range(NA):
                        for b in range(NB):
                            nb = neigh[a, b]
                            r = rev[a, b]
                            for i in range(N3D):
                                for j in range(N3D):
                                    val = np.trace(
                                        dH[nb, r, i]
                                        @ Gp[kp, E + w, a]
                                        @ dH[a, b, j]
                                        @ Gm[k, E, nb]
                                    )
                                    Pi[q, w, a, 1 + b, i, j] += val
                                    Pi[q, w, a, 0, i, j] -= val
    return Pi


def _pi_vectorized(Gp, Gm, dH, neigh, rev, Nqz, Nw) -> np.ndarray:
    Nkz, NE, NA, No, _ = Gp.shape
    _, NB, N3D, _, _ = dH.shape
    Pi = np.zeros((Nqz, Nw, NA, NB + 1, N3D, N3D), dtype=np.complex128)
    dH_ba = dH[neigh, rev]  # [a,b,i,No,No] — ∇H_ba blocks
    Gm_b = Gm[:, :, neigh]  # [k,E,a,b,No,No]
    for q in range(Nqz):
        Gp_q = np.roll(Gp, -q, axis=0)  # index (k + q) mod Nkz
        for w in range(Nw):
            if w >= NE:
                continue
            src_hi = slice(w, NE)  # E + w values
            src_lo = slice(0, NE - w)
            off = np.einsum(
                "abixy,kEayz,abjzu,kEabux->abij",
                dH_ba,
                Gp_q[:, src_hi],
                dH,
                Gm_b[:, src_lo],
                optimize=True,
            )
            Pi[q, w, :, 1:] += off
            Pi[q, w, :, 0] -= off.sum(axis=1)
    return Pi


def retarded_from_lesser_greater(less: np.ndarray, greater: np.ndarray) -> np.ndarray:
    """The paper's retarded approximation ``Σᴿ ≈ (Σ> - Σ<)/2`` [Lake et al.]."""
    return 0.5 * (greater - less)


def sse_flop_estimate(
    Nkz: int, NE: int, Nqz: int, Nw: int, NA: int, NB: int, N3D: int, Norb: int,
    variant: Variant = "dace",
) -> float:
    """Complex-flop estimate matching the §4.3 model structure.

    One complex ``Norb³`` matmul costs ``8 Norb³`` real flops; OMEN performs
    two per (kz,E,qz,ω,i,a,b) point, the transformed variant one plus a
    (qz,ω)-independent term.
    """
    unit = 8.0 * Norb**3 * NA * NB * N3D
    full = unit * Nkz * NE * Nqz * Nw
    if variant == "omen":
        return 2.0 * full
    if variant in ("dace", "sdfg"):
        # The sdfg variant executes the same transformed algorithm
        # (generated from the optimized graph), so the model coincides.
        return full + unit * Nkz * NE
    raise ValueError(f"no flop model for variant {variant!r}")
