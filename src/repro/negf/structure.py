"""Synthetic device structures (stand-in for the paper's Si FinFET slices).

The paper simulates 2-D x-y slices of Si FinFETs whose z direction is
periodic (Fig. 1b): ``NA`` atoms, each with ``NB`` neighbors, partitioned
into ``bnum`` slabs along the transport direction x so that the
Hamiltonian is block tridiagonal.  We generate a rectangular lattice with
the same structural properties:

* atoms live on an ``nx x ny`` grid (``NA = nx * ny``), y periodic
  (mimicking the fin cross-section), x open towards the contacts;
* neighbor lists follow increasing |offset| (so "atoms with neighboring
  indices are very often neighbors in the coupling matrix", §4.1);
* slabs of ``slab_width`` columns form the RGF blocks; the neighbor
  cutoff never exceeds one slab, guaranteeing block tridiagonality.

`networkx` is used to sanity-check connectivity and bipartition quality.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import networkx as nx
import numpy as np

__all__ = ["DeviceStructure", "build_device", "coupling_density_estimate"]

# Relative (dx, dy) neighbor offsets in preference order, nearest first.
# Each ± pair is adjacent so that every even-length prefix is closed under
# negation (symmetric bond sets by construction).
_NEIGHBOR_OFFSETS: Tuple[Tuple[int, int], ...] = (
    (0, 1),
    (0, -1),
    (1, 0),
    (-1, 0),
    (1, 1),
    (-1, -1),
    (1, -1),
    (-1, 1),
)


@dataclass
class DeviceStructure:
    """An atomistic 2-D device slice.

    Attributes
    ----------
    nx, ny:
        Lattice extent: transport direction (x) and cross-section (y,
        periodic).
    slab_width:
        Columns per RGF block.
    positions:
        ``(NA, 2)`` float array of atom coordinates (lattice units).
    neighbors:
        ``(NA, NB)`` int array: ``neighbors[a, b]`` is the atom index of
        the b-th neighbor of atom ``a``.
    neighbor_vectors:
        ``(NA, NB, 3)`` float array of bond vectors ``R_b - R_a`` (the z
        component is 0 for in-plane bonds).
    block_of:
        ``(NA,)`` int array mapping each atom to its RGF block.
    """

    nx: int
    ny: int
    slab_width: int
    positions: np.ndarray
    neighbors: np.ndarray
    neighbor_vectors: np.ndarray
    block_of: np.ndarray

    @property
    def NA(self) -> int:
        return self.nx * self.ny

    @property
    def NB(self) -> int:
        return self.neighbors.shape[1]

    @property
    def bnum(self) -> int:
        return int(self.block_of.max()) + 1

    @property
    def block_sizes(self) -> np.ndarray:
        """Number of atoms per RGF block."""
        return np.bincount(self.block_of, minlength=self.bnum)

    def atoms_in_block(self, i: int) -> np.ndarray:
        return np.nonzero(self.block_of == i)[0]

    # -- derived tables ------------------------------------------------------
    def reverse_neighbor(self) -> np.ndarray:
        """``rev[a, b]`` = index c such that ``neighbors[neighbors[a,b], c] == a``.

        Needed by the SSE preprocessing (``D_ba`` lookups).  -1 when the
        bond is not symmetric (does not happen for generated structures).
        """
        NA, NB = self.neighbors.shape
        rev = np.full((NA, NB), -1, dtype=np.int64)
        for a in range(NA):
            for b in range(NB):
                nb = self.neighbors[a, b]
                back = np.nonzero(self.neighbors[nb] == a)[0]
                if back.size:
                    rev[a, b] = back[0]
        return rev

    def coupling_block_density(self) -> np.ndarray:
        """Nonzero fraction of each super-diagonal coupling block.

        Only bonds crossing a slab interface populate ``M_{n,n+1}``, so
        the coupling blocks are far sparser than the diagonal ones — the
        structural fact behind the paper's §5.1.2 / Table 6 CSRMM
        measurement and the ``csrmm`` RGF kernel's plan.  Each bonded
        cross-interface atom pair contributes one dense ``Norb x Norb``
        sub-block, so the per-orbital density equals the atom-pair
        density (``Norb`` cancels).  Returns ``bnum - 1`` fractions.
        """
        sizes = self.block_sizes
        pairs = [set() for _ in range(self.bnum - 1)]
        NA, NB = self.neighbors.shape
        for a in range(NA):
            ba = int(self.block_of[a])
            for c in self.neighbors[a]:
                bc = int(self.block_of[int(c)])
                if bc == ba + 1:
                    pairs[ba].add((a, int(c)))
        return np.array(
            [
                len(pairs[i]) / (int(sizes[i]) * int(sizes[i + 1]))
                for i in range(self.bnum - 1)
            ]
        )

    def connectivity_graph(self) -> nx.Graph:
        """Undirected bond graph (used for validation/analysis)."""
        g = nx.Graph()
        g.add_nodes_from(range(self.NA))
        NA, NB = self.neighbors.shape
        for a in range(NA):
            for b in range(NB):
                if self.neighbors[a, b] != a:
                    g.add_edge(a, int(self.neighbors[a, b]))
        return g

    def validate(self) -> None:
        """Structural invariants: connectivity + block tridiagonality."""
        g = self.connectivity_graph()
        if not nx.is_connected(g):
            raise ValueError("device structure is disconnected")
        blocks = self.block_of
        for a, nb in g.edges():
            if abs(int(blocks[a]) - int(blocks[nb])) > 1:
                raise ValueError(
                    f"bond {a}-{nb} spans non-adjacent blocks "
                    f"{blocks[a]}..{blocks[nb]} (not block tridiagonal)"
                )


def coupling_density_estimate(ny_rows: int, slab_width: int, NB: int) -> float:
    """Analytic coupling-block density of a generated device, plan-time.

    Each interface-column atom bonds to ``cross`` atoms of the next slab
    (the +x offsets of the ``NB``-neighborhood: 1 for NB=4, 2 for NB=6,
    3 for NB=8), giving ``ny·cross`` nonzero atom pairs in a
    ``(slab·ny) x (slab·ny)`` block — ``cross / (slab² · ny)`` density,
    independent of ``Norb``.  Matches
    :meth:`DeviceStructure.coupling_block_density` exactly on interior
    interfaces; used by the Plan layer to pick an RGF kernel without
    building the device.
    """
    cross = {4: 1, 6: 2, 8: 3}.get(NB)
    if cross is None:
        raise ValueError("NB must be 4, 6 or 8 for the 2-D lattice")
    return cross / (slab_width**2 * ny_rows)


def build_device(
    nx_cols: int = 12,
    ny_rows: int = 4,
    NB: int = 8,
    slab_width: int = 2,
) -> DeviceStructure:
    """Generate a rectangular 2-D device slice.

    ``NB`` caps at the 8-neighborhood of the lattice; edge columns pad
    their missing x-neighbors with additional in-column bonds so that all
    atoms have exactly ``NB`` entries (as the dense [NA, NB] tensors of
    the paper require).
    """
    if nx_cols % slab_width != 0:
        raise ValueError("slab_width must divide nx_cols")
    if NB not in (4, 6, 8):
        # The offset subset must be closed under negation for the bond set
        # to be symmetric, and must contain x-bonds for connectivity:
        # offsets come in ± pairs, so NB is even and at least 4.
        raise ValueError("NB must be 4, 6 or 8 for the 2-D lattice")
    if ny_rows < 3:
        raise ValueError("ny_rows must be at least 3 (periodic y)")

    NA = nx_cols * ny_rows

    def idx(ix: int, iy: int) -> int:
        return ix * ny_rows + (iy % ny_rows)

    positions = np.zeros((NA, 2))
    for ix in range(nx_cols):
        for iy in range(ny_rows):
            positions[idx(ix, iy)] = (ix, iy)

    # Every atom draws from the same offset subset, so the bond *set* is
    # symmetric by construction (the reverse offset is valid whenever the
    # forward one is).  Contact-edge columns have fewer valid offsets and
    # pad their lists by cycling duplicates of their own bonds, which keeps
    # the reverse-neighbor table well defined.
    offsets = _NEIGHBOR_OFFSETS[:NB]
    neighbors = np.zeros((NA, NB), dtype=np.int64)
    vectors = np.zeros((NA, NB, 3))
    for ix in range(nx_cols):
        for iy in range(ny_rows):
            a = idx(ix, iy)
            found: List[Tuple[int, Tuple[int, int]]] = []
            for dx, dy in offsets:
                jx = ix + dx
                if jx < 0 or jx >= nx_cols:
                    continue  # open boundary towards contacts
                found.append((idx(jx, iy + dy), (dx, dy)))
            if not found:  # pragma: no cover - excluded by NB >= 2
                raise ValueError("atom with no neighbors")
            k = 0
            while len(found) < NB:
                found.append(found[k])
                k += 1
            for b, (nb, (dx, dy)) in enumerate(found[:NB]):
                neighbors[a, b] = nb
                # Wrap the periodic y displacement to the nearest image.
                wy = dy - ny_rows if dy > ny_rows // 2 else dy
                vectors[a, b] = (dx, wy, 0.0)

    block_of = np.repeat(np.arange(nx_cols // slab_width), slab_width * ny_rows)

    dev = DeviceStructure(
        nx=nx_cols,
        ny=ny_rows,
        slab_width=slab_width,
        positions=positions,
        neighbors=neighbors,
        neighbor_vectors=vectors,
        block_of=block_of,
    )
    dev.validate()
    return dev
