"""Recursive Green's Function (RGF) solver (paper §2, Svizhenko et al.).

Solves ``M · Gᴿ = I`` and ``G≷ = Gᴿ Σ≷ Gᴬ`` for block-tridiagonal
``M = E·S - H - Σᴿ`` (electrons) or ``M = ω²I - Φ - Πᴿ`` (phonons) in
O(bnum · block³) instead of dense O((bnum·block)³), via one forward
(left-connected) and one backward recursion.

Only the diagonal blocks of Gᴿ/G≷ are produced — exactly what the SSE
phase consumes (§2: "only the diagonal blocks of Σ are retained").  The
solver is validated against dense ``inv``/triple-product references in
``tests/test_rgf.py``.

Conventions: the sub-diagonal blocks are ``M_{n+1,n} = (M_{n,n+1})†``,
which holds for real energies since the retarded self-energies only touch
the diagonal blocks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

__all__ = [
    "RGFResult",
    "BatchedRGFResult",
    "rgf_solve",
    "rgf_solve_batched",
    "dense_reference",
    "block_offsets",
]


def _H(a: np.ndarray) -> np.ndarray:
    """Conjugate transpose of the trailing two axes (batched A†)."""
    return np.conj(np.swapaxes(a, -1, -2))


@dataclass
class RGFResult:
    """Diagonal blocks of the retarded/lesser/greater Green's functions."""

    GR: List[np.ndarray]
    Gl: List[np.ndarray]
    Gg: List[np.ndarray]

    @property
    def bnum(self) -> int:
        return len(self.GR)


def block_offsets(blocks: Sequence[np.ndarray]) -> np.ndarray:
    sizes = [b.shape[0] for b in blocks]
    return np.concatenate(([0], np.cumsum(sizes)))


def rgf_solve(
    diag: Sequence[np.ndarray],
    upper: Sequence[np.ndarray],
    sigma_lesser: Optional[Sequence[np.ndarray]] = None,
) -> RGFResult:
    """Forward/backward RGF over the block-tridiagonal system.

    Parameters
    ----------
    diag:
        ``bnum`` diagonal blocks of ``M`` (boundary and scattering
        self-energies already subtracted).
    upper:
        ``bnum - 1`` super-diagonal blocks ``M_{n,n+1}``.
    sigma_lesser:
        Diagonal blocks of ``Σ<`` (boundary injection + scattering).
        When omitted, only ``Gᴿ`` is computed (``Gl``/``Gg`` empty).
    """
    N = len(diag)
    if len(upper) != N - 1:
        raise ValueError(f"expected {N - 1} upper blocks, got {len(upper)}")
    want_lesser = sigma_lesser is not None
    if want_lesser and len(sigma_lesser) != N:
        raise ValueError("sigma_lesser must have one block per diagonal block")

    eye = [np.eye(b.shape[0], dtype=np.complex128) for b in diag]

    # Forward pass: left-connected Green's functions.
    gR: List[np.ndarray] = [np.linalg.solve(diag[0], eye[0])]
    gl: List[np.ndarray] = []
    if want_lesser:
        gl.append(gR[0] @ sigma_lesser[0] @ gR[0].conj().T)
    for n in range(1, N):
        Vd = upper[n - 1]  # M_{n-1,n}
        Vl = Vd.conj().T  # M_{n,n-1}
        gR.append(np.linalg.solve(diag[n] - Vl @ gR[n - 1] @ Vd, eye[n]))
        if want_lesser:
            folded = Vl @ gl[n - 1] @ Vd
            gl.append(gR[n] @ (sigma_lesser[n] + folded) @ gR[n].conj().T)

    # Backward pass: fully-connected diagonal blocks.
    GR: List[Optional[np.ndarray]] = [None] * N
    Gl: List[Optional[np.ndarray]] = [None] * N
    GR[N - 1] = gR[N - 1]
    if want_lesser:
        Gl[N - 1] = gl[N - 1]
    for n in range(N - 2, -1, -1):
        Vd = upper[n]  # M_{n,n+1}
        Vl = Vd.conj().T  # M_{n+1,n}
        gRn, gRnH = gR[n], gR[n].conj().T
        GR[n] = gRn + gRn @ Vd @ GR[n + 1] @ Vl @ gRn
        if want_lesser:
            gln = gl[n]
            t1 = gRn @ Vd @ Gl[n + 1] @ Vl @ gRnH
            t2 = gRn @ Vd @ GR[n + 1] @ Vl @ gln
            t3 = gln @ Vd @ GR[n + 1].conj().T @ Vl @ gRnH
            Gl[n] = gln + t1 + t2 + t3

    if not want_lesser:
        return RGFResult(GR=list(GR), Gl=[], Gg=[])

    # G> - G< = GR - GA  (fluctuation-dissipation bookkeeping identity).
    Gg = [Gl[n] + GR[n] - GR[n].conj().T for n in range(N)]
    return RGFResult(GR=list(GR), Gl=list(Gl), Gg=Gg)


@dataclass
class BatchedRGFResult:
    """Diagonal GF blocks of a stack of block-tridiagonal systems.

    Each entry of ``GR``/``Gl``/``Gg`` is a ``[batch, ni, ni]`` tensor:
    the i-th diagonal block for every system in the batch.
    """

    GR: List[np.ndarray]
    Gl: List[np.ndarray]
    Gg: List[np.ndarray]

    @property
    def bnum(self) -> int:
        return len(self.GR)

    @property
    def batch(self) -> int:
        return self.GR[0].shape[0]

    def point(self, b: int) -> RGFResult:
        """The per-system view of batch element ``b``."""
        return RGFResult(
            GR=[g[b] for g in self.GR],
            Gl=[g[b] for g in self.Gl],
            Gg=[g[b] for g in self.Gg],
        )


def rgf_solve_batched(
    diag: Sequence[np.ndarray],
    upper: Sequence[np.ndarray],
    sigma_lesser: Optional[Sequence[np.ndarray]] = None,
) -> BatchedRGFResult:
    """RGF over a stack of block-tridiagonal systems at once.

    The batched twin of :func:`rgf_solve`: identical recursions, but every
    block is a ``[batch, ni, nj]`` tensor and the per-block solves and
    products run through NumPy's broadcasted ``linalg.solve``/``@`` —
    one LAPACK/BLAS call per *block index* instead of per grid point.
    This is the paper's observation that the (kz, E) sweep is data
    parallel, applied at the solver level.

    Parameters
    ----------
    diag:
        ``bnum`` stacked diagonal blocks ``[batch, ni, ni]`` of ``M``.
    upper:
        ``bnum - 1`` stacked super-diagonal blocks ``[batch, ni, n_{i+1}]``.
        2-D ``[ni, n_{i+1}]`` entries are allowed and broadcast across the
        batch (e.g. the ω-independent phonon coupling blocks).
    sigma_lesser:
        Stacked diagonal ``Σ<`` blocks ``[batch, ni, ni]``; when omitted
        only ``Gᴿ`` is computed.
    """
    N = len(diag)
    if len(upper) != N - 1:
        raise ValueError(f"expected {N - 1} upper blocks, got {len(upper)}")
    B = diag[0].shape[0]
    for i, d in enumerate(diag):
        if d.ndim != 3 or d.shape[0] != B or d.shape[-1] != d.shape[-2]:
            raise ValueError(
                f"diag[{i}] must be [batch={B}, n, n], got {d.shape}"
            )
    want_lesser = sigma_lesser is not None
    if want_lesser:
        if len(sigma_lesser) != N:
            raise ValueError("sigma_lesser must have one block per diagonal block")
        for i, sl in enumerate(sigma_lesser):
            if sl.shape != diag[i].shape:
                raise ValueError(
                    f"sigma_lesser[{i}] shape {sl.shape} != diag shape {diag[i].shape}"
                )

    eye = [
        np.broadcast_to(np.eye(d.shape[-1], dtype=np.complex128), d.shape)
        for d in diag
    ]

    # Forward pass: left-connected Green's functions.
    gR: List[np.ndarray] = [np.linalg.solve(diag[0], eye[0])]
    gl: List[np.ndarray] = []
    if want_lesser:
        gl.append(gR[0] @ sigma_lesser[0] @ _H(gR[0]))
    for n in range(1, N):
        Vd = upper[n - 1]  # M_{n-1,n}
        Vl = _H(Vd)  # M_{n,n-1}
        gR.append(np.linalg.solve(diag[n] - Vl @ gR[n - 1] @ Vd, eye[n]))
        if want_lesser:
            folded = Vl @ gl[n - 1] @ Vd
            gl.append(gR[n] @ (sigma_lesser[n] + folded) @ _H(gR[n]))

    # Backward pass: fully-connected diagonal blocks.
    GR: List[Optional[np.ndarray]] = [None] * N
    Gl: List[Optional[np.ndarray]] = [None] * N
    GR[N - 1] = gR[N - 1]
    if want_lesser:
        Gl[N - 1] = gl[N - 1]
    for n in range(N - 2, -1, -1):
        Vd = upper[n]  # M_{n,n+1}
        Vl = _H(Vd)  # M_{n+1,n}
        gRn, gRnH = gR[n], _H(gR[n])
        GR[n] = gRn + gRn @ Vd @ GR[n + 1] @ Vl @ gRn
        if want_lesser:
            gln = gl[n]
            t1 = gRn @ Vd @ Gl[n + 1] @ Vl @ gRnH
            t2 = gRn @ Vd @ GR[n + 1] @ Vl @ gln
            t3 = gln @ Vd @ _H(GR[n + 1]) @ Vl @ gRnH
            Gl[n] = gln + t1 + t2 + t3

    if not want_lesser:
        return BatchedRGFResult(GR=list(GR), Gl=[], Gg=[])

    # G> - G< = GR - GA  (fluctuation-dissipation bookkeeping identity).
    Gg = [Gl[n] + GR[n] - _H(GR[n]) for n in range(N)]
    return BatchedRGFResult(GR=list(GR), Gl=list(Gl), Gg=Gg)


def dense_reference(
    diag: Sequence[np.ndarray],
    upper: Sequence[np.ndarray],
    sigma_lesser: Optional[Sequence[np.ndarray]] = None,
):
    """Dense ``inv(M)`` / ``Gᴿ Σ< Gᴬ`` ground truth for validation."""
    offs = block_offsets(diag)
    n = offs[-1]
    M = np.zeros((n, n), dtype=np.complex128)
    for i, b in enumerate(diag):
        M[offs[i] : offs[i + 1], offs[i] : offs[i + 1]] = b
    for i, u in enumerate(upper):
        M[offs[i] : offs[i + 1], offs[i + 1] : offs[i + 2]] = u
        M[offs[i + 1] : offs[i + 2], offs[i] : offs[i + 1]] = u.conj().T
    GR = np.linalg.inv(M)
    if sigma_lesser is None:
        return GR, None
    S = np.zeros_like(M)
    for i, b in enumerate(sigma_lesser):
        S[offs[i] : offs[i + 1], offs[i] : offs[i + 1]] = b
    Gl = GR @ S @ GR.conj().T
    return GR, Gl
