"""Recursive Green's Function (RGF) solver (paper §2, Svizhenko et al.).

Solves ``M · Gᴿ = I`` and ``G≷ = Gᴿ Σ≷ Gᴬ`` for block-tridiagonal
``M = E·S - H - Σᴿ`` (electrons) or ``M = ω²I - Φ - Πᴿ`` (phonons) in
O(bnum · block³) instead of dense O((bnum·block)³), via one forward
(left-connected) and one backward recursion.

Only the diagonal blocks of Gᴿ/G≷ are produced — exactly what the SSE
phase consumes (§2: "only the diagonal blocks of Σ are retained").  The
solver is validated against dense ``inv``/triple-product references in
``tests/test_rgf.py``.

Conventions: the sub-diagonal blocks are ``M_{n+1,n} = (M_{n,n+1})†``,
which holds for real energies since the retarded self-energies only touch
the diagonal blocks.

The recursion bodies themselves live in :mod:`repro.negf.kernels`:
:func:`rgf_solve_batched` dispatches to a pluggable kernel (reference /
factorization-reuse numpy / Table-6 csrmm / compiled numba) and
:func:`rgf_solve` is a batch-of-1 view of the reference kernel, so the
serial oracle and the batched reference can never drift.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

__all__ = [
    "RGFResult",
    "BatchedRGFResult",
    "rgf_solve",
    "rgf_solve_batched",
    "dense_reference",
    "block_offsets",
]


def _H(a: np.ndarray) -> np.ndarray:
    """Conjugate transpose of the trailing two axes (batched A†)."""
    return np.conj(np.swapaxes(a, -1, -2))


@dataclass
class RGFResult:
    """Diagonal blocks of the retarded/lesser/greater Green's functions."""

    GR: List[np.ndarray]
    Gl: List[np.ndarray]
    Gg: List[np.ndarray]

    @property
    def bnum(self) -> int:
        return len(self.GR)


def block_offsets(blocks: Sequence[np.ndarray]) -> np.ndarray:
    sizes = [b.shape[0] for b in blocks]
    return np.concatenate(([0], np.cumsum(sizes)))


def rgf_solve(
    diag: Sequence[np.ndarray],
    upper: Sequence[np.ndarray],
    sigma_lesser: Optional[Sequence[np.ndarray]] = None,
) -> RGFResult:
    """Forward/backward RGF over the block-tridiagonal system.

    Parameters
    ----------
    diag:
        ``bnum`` diagonal blocks of ``M`` (boundary and scattering
        self-energies already subtracted).
    upper:
        ``bnum - 1`` super-diagonal blocks ``M_{n,n+1}``.
    sigma_lesser:
        Diagonal blocks of ``Σ<`` (boundary injection + scattering).
        When omitted, only ``Gᴿ`` is computed (``Gl``/``Gg`` empty).

    Implemented as a batch-of-1 view of the *reference* kernel — the
    stacked ``linalg.solve``/``@`` calls on ``[1, n, n]`` operands run
    the same per-slice LAPACK/BLAS routines as their 2-D forms, so this
    is bit-identical to the historical serial recursion.
    """
    N = len(diag)
    if len(upper) != N - 1:
        raise ValueError(f"expected {N - 1} upper blocks, got {len(upper)}")
    want_lesser = sigma_lesser is not None
    if want_lesser and len(sigma_lesser) != N:
        raise ValueError("sigma_lesser must have one block per diagonal block")

    res = rgf_solve_batched(
        [np.asarray(d)[None] for d in diag],
        [np.asarray(u)[None] for u in upper],
        [np.asarray(s)[None] for s in sigma_lesser] if want_lesser else None,
        kernel="reference",
    )
    return res.point(0)


@dataclass
class BatchedRGFResult:
    """Diagonal GF blocks of a stack of block-tridiagonal systems.

    Each entry of ``GR``/``Gl``/``Gg`` is a ``[batch, ni, ni]`` tensor:
    the i-th diagonal block for every system in the batch.
    """

    GR: List[np.ndarray]
    Gl: List[np.ndarray]
    Gg: List[np.ndarray]

    @property
    def bnum(self) -> int:
        return len(self.GR)

    @property
    def batch(self) -> int:
        return self.GR[0].shape[0]

    def point(self, b: int) -> RGFResult:
        """The per-system view of batch element ``b``."""
        return RGFResult(
            GR=[g[b] for g in self.GR],
            Gl=[g[b] for g in self.Gl],
            Gg=[g[b] for g in self.Gg],
        )


def rgf_solve_batched(
    diag: Sequence[np.ndarray],
    upper: Sequence[np.ndarray],
    sigma_lesser: Optional[Sequence[np.ndarray]] = None,
    kernel=None,
) -> BatchedRGFResult:
    """RGF over a stack of block-tridiagonal systems at once.

    The batched twin of :func:`rgf_solve`: identical recursions, but every
    block is a ``[batch, ni, nj]`` tensor and the per-block solves and
    products run through NumPy's broadcasted ``linalg.solve``/``@`` —
    one LAPACK/BLAS call per *block index* instead of per grid point.
    This is the paper's observation that the (kz, E) sweep is data
    parallel, applied at the solver level.

    Parameters
    ----------
    diag:
        ``bnum`` stacked diagonal blocks ``[batch, ni, ni]`` of ``M``.
    upper:
        ``bnum - 1`` stacked super-diagonal blocks ``[batch, ni, n_{i+1}]``.
        2-D ``[ni, n_{i+1}]`` entries are allowed and broadcast across the
        batch (e.g. the ω-independent phonon coupling blocks).
    sigma_lesser:
        Stacked diagonal ``Σ<`` blocks ``[batch, ni, ni]``; when omitted
        only ``Gᴿ`` is computed.
    kernel:
        Kernel name (see :func:`repro.negf.kernels.available_kernels`),
        an :class:`repro.negf.kernels.RGFKernel` instance, or ``None``
        for the configured default (``REPRO_RGF_KERNEL`` / ``"numpy"``).
    """
    from .kernels import get_kernel

    return get_kernel(kernel).solve(diag, upper, sigma_lesser)


def dense_reference(
    diag: Sequence[np.ndarray],
    upper: Sequence[np.ndarray],
    sigma_lesser: Optional[Sequence[np.ndarray]] = None,
):
    """Dense ``inv(M)`` / ``Gᴿ Σ< Gᴬ`` ground truth for validation."""
    offs = block_offsets(diag)
    n = offs[-1]
    M = np.zeros((n, n), dtype=np.complex128)
    for i, b in enumerate(diag):
        M[offs[i] : offs[i + 1], offs[i] : offs[i + 1]] = b
    for i, u in enumerate(upper):
        M[offs[i] : offs[i + 1], offs[i + 1] : offs[i + 2]] = u
        M[offs[i + 1] : offs[i + 2], offs[i] : offs[i + 1]] = u.conj().T
    GR = np.linalg.inv(M)
    if sigma_lesser is None:
        return GR, None
    S = np.zeros_like(M)
    for i, b in enumerate(sigma_lesser):
        S[offs[i] : offs[i + 1], offs[i] : offs[i + 1]] = b
    Gl = GR @ S @ GR.conj().T
    return GR, Gl
