"""Open boundary conditions: surface Green's functions and lead self-energies.

OMEN computes open boundary conditions with a contour-integral/eigenvalue
solver; the textbook alternative is Sancho-Rubio decimation.  Both are
implemented here and cross-validated:

* :func:`sancho_rubio` — iterative decimation, robust default;
* :func:`transfer_matrix_modes` — companion-linearized quadratic eigenvalue
  problem (the mode/contour approach): selects decaying/outgoing Bloch
  modes and assembles the surface GF, mirroring OMEN's boundary kernel.

For electrons the lead blocks derive from ``E·S - H``; for phonons from
``ω² I - Φ`` (pass ``z = (ω + iη)²`` and the dynamical-matrix blocks).
"""

from __future__ import annotations

from typing import Literal, Tuple

import numpy as np
import scipy.linalg as sla

from .rgf import _H

__all__ = [
    "sancho_rubio",
    "sancho_rubio_batched",
    "transfer_matrix_modes",
    "surface_greens_function",
    "lead_self_energy",
    "lead_self_energy_batched",
]


def sancho_rubio(
    z: complex,
    H00: np.ndarray,
    H01: np.ndarray,
    S00: np.ndarray | None = None,
    S01: np.ndarray | None = None,
    eta: float = 1e-6,
    tol: float = 1e-12,
    max_iter: int = 200,
) -> np.ndarray:
    """Surface Green's function by Sancho-Rubio decimation.

    Solves ``g = (z S00 - H00 - (z S01 - H01) g (z S01 - H01)†)^{-1}``
    for the semi-infinite lead, doubling the decimated cell each step
    (quadratic convergence).
    """
    n = H00.shape[0]
    S00 = np.eye(n) if S00 is None else S00
    S01 = np.zeros_like(H01) if S01 is None else S01
    zc = z + 1j * eta

    eps_s = zc * S00 - H00  # surface block
    eps = eps_s.copy()  # bulk block
    alpha = -(zc * S01 - H01)  # coupling to the next cell
    beta = alpha.conj().T

    for _ in range(max_iter):
        g_bulk = np.linalg.solve(eps, np.eye(n))
        agb = alpha @ g_bulk @ beta
        bga = beta @ g_bulk @ alpha
        eps_s = eps_s - agb
        eps = eps - agb - bga
        alpha = alpha @ g_bulk @ alpha
        beta = beta @ g_bulk @ beta
        if np.linalg.norm(alpha, ord="fro") < tol and np.linalg.norm(
            beta, ord="fro"
        ) < tol:
            break
    else:
        raise RuntimeError("Sancho-Rubio decimation did not converge")
    return np.linalg.solve(eps_s, np.eye(n))


def sancho_rubio_batched(
    z: np.ndarray,
    H00: np.ndarray,
    H01: np.ndarray,
    S00: np.ndarray | None = None,
    S01: np.ndarray | None = None,
    eta: float | np.ndarray = 1e-6,
    tol: float = 1e-12,
    max_iter: int = 200,
    kernel=None,
) -> np.ndarray:
    """Sancho-Rubio decimation for a whole stack of energies at once.

    ``z`` is a 1-D array of ``B`` energies (``eta`` may be a matching
    array, e.g. the frequency-dependent phonon broadening); one decimation
    recursion runs for the entire stack and iterates until *every* entry
    converges.  Post-convergence updates shrink quadratically (the
    coupling norm is already < ``tol``), so each entry agrees with the
    scalar :func:`sancho_rubio` to far better than the 1e-10 engine
    equivalence tolerance.  Returns ``[B, n, n]`` surface GFs.

    ``kernel`` (an :class:`repro.negf.kernels.RGFKernel` or name) routes
    the stacked inverses through the kernel's :meth:`invert` seam; the
    shipped kernels all keep the decimation's ``solve(A, I)`` form (each
    inverse here is consumed once — nothing to reuse), so results are
    bit-identical across them.
    """
    if kernel is not None:
        from .kernels import get_kernel

        inv = get_kernel(kernel).invert
    else:
        inv = None
    n = H00.shape[0]
    S00 = np.eye(n) if S00 is None else S00
    S01 = np.zeros_like(H01) if S01 is None else S01
    z = np.asarray(z, dtype=np.complex128).reshape(-1)
    zc = (z + 1j * np.broadcast_to(np.asarray(eta), z.shape))[:, None, None]

    eps_s = zc * S00 - H00  # surface blocks [B, n, n]
    eps = eps_s.copy()  # bulk blocks
    alpha = -(zc * S01 - H01)  # coupling to the next cell
    beta = _H(alpha)

    eye = np.broadcast_to(np.eye(n, dtype=np.complex128), eps.shape)
    for _ in range(max_iter):
        g_bulk = inv(eps) if inv is not None else np.linalg.solve(eps, eye)
        agb = alpha @ g_bulk @ beta
        bga = beta @ g_bulk @ alpha
        eps_s = eps_s - agb
        eps = eps - agb - bga
        alpha = alpha @ g_bulk @ alpha
        beta = beta @ g_bulk @ beta
        a_norm = np.linalg.norm(alpha, axis=(-2, -1))
        b_norm = np.linalg.norm(beta, axis=(-2, -1))
        if (np.maximum(a_norm, b_norm) < tol).all():
            break
    else:
        raise RuntimeError("batched Sancho-Rubio decimation did not converge")
    return inv(eps_s) if inv is not None else np.linalg.solve(eps_s, eye)


def transfer_matrix_modes(
    z: complex,
    H00: np.ndarray,
    H01: np.ndarray,
    S00: np.ndarray | None = None,
    S01: np.ndarray | None = None,
    eta: float = 1e-6,
) -> np.ndarray:
    """Surface Green's function from the Bloch-mode eigenproblem.

    The lead satisfies ``(A λ² + B λ + A†) ψ = 0`` with
    ``A = z S01 - H01`` and ``B = z S00 - H00`` per period.  Companion
    linearization yields 2n generalized eigenpairs; the n modes with
    |λ| < 1 (decaying into the lead) build the surface Green's function
    ``g = (B + A Φ Λ Φ^{-1})^{-1}`` — the eigen/contour strategy used for
    OMEN's boundary conditions.
    """
    n = H00.shape[0]
    S00 = np.eye(n) if S00 is None else S00
    S01 = np.zeros_like(H01) if S01 is None else S01
    zc = z + 1j * eta

    B = zc * S00 - H00
    C = zc * S01 - H01  # inter-cell block M_{n,n+1}

    # Bulk Bloch equation C†φ + Bλφ + Cλ²φ = 0, linearized as
    # [ -B  -C† ; I  0 ] v = λ [ C  0 ; 0  I ] v  with  v = (λφ, φ).
    zero = np.zeros((n, n), dtype=np.complex128)
    eye = np.eye(n, dtype=np.complex128)
    lhs = np.block([[-B, -C.conj().T], [eye, zero]])
    rhs = np.block([[C, zero], [zero, eye]])
    lam, vec = sla.eig(lhs, rhs)

    finite = np.isfinite(lam)
    lam, vec = lam[finite], vec[:, finite]
    order = np.argsort(np.abs(lam))
    lam, vec = lam[order], vec[:, order]
    # Decaying (and evanescent) modes: |λ| < 1 (η pushes propagating modes
    # slightly inside the unit circle for retarded boundary conditions).
    sel = np.abs(lam) < 1.0
    if sel.sum() < n:  # pragma: no cover - safeguard for degenerate cases
        sel = np.zeros_like(sel)
        sel[:n] = True
    lam_d = lam[sel][:n]
    phi = vec[n:, sel][:, :n]  # bottom half carries φ

    # ψ_{m+1} = F ψ_m for the decaying solution: g = (B + C F)^{-1}.
    F = phi @ np.diag(lam_d) @ np.linalg.pinv(phi)
    return np.linalg.solve(B + C @ F, np.eye(n))


def surface_greens_function(
    z: complex,
    H00: np.ndarray,
    H01: np.ndarray,
    S00: np.ndarray | None = None,
    S01: np.ndarray | None = None,
    eta: float = 1e-6,
    method: Literal["sancho-rubio", "transfer-matrix"] = "sancho-rubio",
) -> np.ndarray:
    """Dispatch between the two boundary solvers."""
    if method == "sancho-rubio":
        return sancho_rubio(z, H00, H01, S00, S01, eta)
    if method == "transfer-matrix":
        return transfer_matrix_modes(z, H00, H01, S00, S01, eta)
    raise ValueError(f"unknown boundary method {method!r}")


def lead_self_energy(
    z: complex,
    H00: np.ndarray,
    H01: np.ndarray,
    side: Literal["left", "right"],
    S00: np.ndarray | None = None,
    S01: np.ndarray | None = None,
    eta: float = 1e-6,
    method: Literal["sancho-rubio", "transfer-matrix"] = "sancho-rubio",
) -> np.ndarray:
    """Retarded boundary self-energy of a semi-infinite lead.

    With ``τ = z S01 - H01`` the bulk inter-cell block (pointing towards
    +x), the right lead gives ``Σ_R = τ g_R τ†`` with ``g_R`` the surface
    GF of the +x-extending chain; the left lead is the mirror image:
    ``Σ_L = τ† g_L τ`` with ``g_L`` from the chain built on ``τ†``.
    """
    S01_eff = np.zeros_like(H01) if S01 is None else S01
    tau = (z + 1j * eta) * S01_eff - H01
    if side == "right":
        g = surface_greens_function(z, H00, H01, S00, S01, eta, method)
        return tau @ g @ tau.conj().T
    if side == "left":
        g = surface_greens_function(
            z,
            H00,
            H01.conj().T,
            S00,
            None if S01 is None else S01.conj().T,
            eta,
            method,
        )
        return tau.conj().T @ g @ tau
    raise ValueError(f"unknown side {side!r}")


def lead_self_energy_batched(
    z: np.ndarray,
    H00: np.ndarray,
    H01: np.ndarray,
    side: Literal["left", "right"],
    S00: np.ndarray | None = None,
    S01: np.ndarray | None = None,
    eta: float | np.ndarray = 1e-6,
    method: Literal["sancho-rubio", "transfer-matrix"] = "sancho-rubio",
    kernel=None,
) -> np.ndarray:
    """Stacked retarded lead self-energies for a batch of energies.

    The Sancho-Rubio path shares one decimation recursion across the whole
    stack (the engine's hot path); the transfer-matrix method has no
    batched dense eigensolver and falls back to a per-point loop.
    ``kernel`` is forwarded to :func:`sancho_rubio_batched`.  Returns
    ``[B, n, n]`` with the same conventions as :func:`lead_self_energy`.
    """
    z = np.asarray(z, dtype=np.complex128).reshape(-1)
    eta_arr = np.broadcast_to(np.asarray(eta, dtype=float), z.shape)
    if method != "sancho-rubio":
        return np.stack(
            [
                lead_self_energy(zi, H00, H01, side, S00, S01, float(ei), method)
                for zi, ei in zip(z, eta_arr)
            ]
        )
    S01_eff = np.zeros_like(H01) if S01 is None else S01
    tau = (z + 1j * eta_arr)[:, None, None] * S01_eff - H01
    if side == "right":
        g = sancho_rubio_batched(z, H00, H01, S00, S01, eta=eta_arr, kernel=kernel)
        return tau @ g @ _H(tau)
    if side == "left":
        g = sancho_rubio_batched(
            z,
            H00,
            H01.conj().T,
            S00,
            None if S01 is None else S01.conj().T,
            eta=eta_arr,
            kernel=kernel,
        )
        return _H(tau) @ g @ tau
    raise ValueError(f"unknown side {side!r}")
