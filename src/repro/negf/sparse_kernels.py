"""Sparse/dense strategies for the RGF 3-matrix product (paper §5.1.2).

A recurring RGF operation multiplies two sparse block-tridiagonal
Hamiltonian blocks with a dense retarded GF block:
``F[n] @ gR[n+1] @ E[n+1]``.  Table 6 compares three strategies:

* ``dense``    — CSR->dense conversion, then two dense GEMMs;
* ``csrmm``    — sparse x dense, then (dense) x sparse (the transposed
  dense-CSR product), keeping ``gR`` dense throughout;
* ``csrgemm``  — all-sparse products, keeping the result (and ``gR``)
  sparse.

On the paper's P100 with cuSPARSE, CSRMM wins by 1.98-4.33x; the same
ordering holds for scipy/MKL on representative sizes and sparsities.
"""

from __future__ import annotations

from typing import Literal, Tuple

import numpy as np
import scipy.sparse as sp

__all__ = [
    "three_matrix_product",
    "generate_rgf_operands",
    "select_strategy",
    "METHODS",
]

METHODS = ("dense", "csrmm", "csrgemm")

#: blocks smaller than this never pay off as sparse (call overhead and
#: the todense conversion both vanish at small n)
_SPARSE_MIN_BLOCK = 48
#: above this fill the CSRMM advantage over two dense GEMMs is gone
_SPARSE_MAX_DENSITY = 0.08


def select_strategy(block_size: int, density: float) -> str:
    """Pick the Table-6 strategy for one coupling block.

    Mirrors the paper's §5.1.2 measurement: ``csrmm`` (sparse x dense,
    ``gR`` kept dense) wins for large, sparse Hamiltonian blocks —
    1.98-4.33x over ``dense`` on the P100, with the same ordering for
    scipy/BLAS — while small or filled blocks are fastest as two dense
    GEMMs.  ``csrgemm`` loses across the whole measured range (the
    sparse-sparse-sparse product re-densifies ``gR``) and is never
    auto-selected.
    """
    if block_size < _SPARSE_MIN_BLOCK or density > _SPARSE_MAX_DENSITY:
        return "dense"
    return "csrmm"


def three_matrix_product(
    F: sp.csr_matrix,
    gR: np.ndarray,
    E: sp.csr_matrix,
    method: Literal["dense", "csrmm", "csrgemm"] = "csrmm",
) -> np.ndarray:
    """Compute ``F @ gR @ E`` with the chosen strategy."""
    if method == "dense":
        return np.asarray(F.todense()) @ gR @ np.asarray(E.todense())
    if method == "csrmm":
        tmp = F @ gR  # CSR x dense -> dense
        return tmp @ E  # dense x CSR (transposed CSRMM) -> dense
    if method == "csrgemm":
        gR_s = sp.csr_matrix(gR)
        out = F @ gR_s @ E
        return np.asarray(out.todense())
    raise ValueError(f"unknown method {method!r}")


def generate_rgf_operands(
    n: int = 768,
    block_density: float = 0.02,
    seed: int = 0,
) -> Tuple[sp.csr_matrix, np.ndarray, sp.csr_matrix]:
    """Representative operands: sparse Hamiltonian blocks, dense gR.

    ``block_density`` mirrors the DFT Hamiltonian fill of
    ``NB·Norb² / (block·Norb)²`` bonds per block (a few percent).
    """
    rng = np.random.default_rng(seed)
    F = sp.random(
        n, n, density=block_density, format="csr", random_state=rng,
        data_rvs=lambda k: rng.standard_normal(k),
    ).astype(np.complex128)
    F = F + 1j * sp.random(
        n, n, density=block_density, format="csr", random_state=rng,
        data_rvs=lambda k: rng.standard_normal(k),
    ).astype(np.complex128)
    E = sp.random(
        n, n, density=block_density, format="csr", random_state=rng,
        data_rvs=lambda k: rng.standard_normal(k),
    ).astype(np.complex128)
    E = E + 1j * sp.random(
        n, n, density=block_density, format="csr", random_state=rng,
        data_rvs=lambda k: rng.standard_normal(k),
    ).astype(np.complex128)
    gR = rng.standard_normal((n, n)) + 1j * rng.standard_normal((n, n))
    return F.tocsr(), gR, E.tocsr()
