"""Quantum-transport substrate: structures, operators, solvers, SSE, SCBA."""

from .boundary import (
    lead_self_energy,
    lead_self_energy_batched,
    sancho_rubio,
    sancho_rubio_batched,
    surface_greens_function,
    transfer_matrix_modes,
)
from .engine import (
    BatchedEngine,
    BoundaryCache,
    GridEngine,
    MultiprocessEngine,
    SerialEngine,
    SpectralGrid,
    make_engine,
)
from .hamiltonian import BlockTridiagonal, HamiltonianModel, build_hamiltonian_model
from .kernels import (
    KernelError,
    RGFKernel,
    available_kernels,
    default_rgf_kernel,
    get_kernel,
    register_kernel,
)
from .rgf import (
    BatchedRGFResult,
    RGFResult,
    block_offsets,
    dense_reference,
    rgf_solve,
    rgf_solve_batched,
)
from .scba import (
    SCBAResult,
    SCBASettings,
    SCBASimulation,
    bose,
    decode_array,
    encode_array,
    fermi,
)
from .sparse_kernels import (
    METHODS,
    generate_rgf_operands,
    select_strategy,
    three_matrix_product,
)
from .sse import (
    pi_sse,
    preprocess_phonon_green,
    retarded_from_lesser_greater,
    sigma_sse,
    sse_flop_estimate,
)
from .structure import DeviceStructure, build_device, coupling_density_estimate

__all__ = [
    "KernelError",
    "RGFKernel",
    "available_kernels",
    "default_rgf_kernel",
    "get_kernel",
    "register_kernel",
    "select_strategy",
    "coupling_density_estimate",
    "lead_self_energy",
    "lead_self_energy_batched",
    "sancho_rubio",
    "sancho_rubio_batched",
    "surface_greens_function",
    "transfer_matrix_modes",
    "BatchedEngine",
    "BoundaryCache",
    "GridEngine",
    "MultiprocessEngine",
    "SerialEngine",
    "SpectralGrid",
    "make_engine",
    "BlockTridiagonal",
    "HamiltonianModel",
    "build_hamiltonian_model",
    "BatchedRGFResult",
    "RGFResult",
    "block_offsets",
    "dense_reference",
    "rgf_solve",
    "rgf_solve_batched",
    "SCBAResult",
    "SCBASettings",
    "SCBASimulation",
    "bose",
    "decode_array",
    "encode_array",
    "fermi",
    "METHODS",
    "generate_rgf_operands",
    "three_matrix_product",
    "pi_sse",
    "preprocess_phonon_green",
    "retarded_from_lesser_greater",
    "sigma_sse",
    "sse_flop_estimate",
    "DeviceStructure",
    "build_device",
]
