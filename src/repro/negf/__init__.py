"""Quantum-transport substrate: structures, operators, solvers, SSE, SCBA."""

from .boundary import (
    lead_self_energy,
    sancho_rubio,
    surface_greens_function,
    transfer_matrix_modes,
)
from .hamiltonian import BlockTridiagonal, HamiltonianModel, build_hamiltonian_model
from .rgf import RGFResult, block_offsets, dense_reference, rgf_solve
from .scba import SCBAResult, SCBASettings, SCBASimulation, bose, fermi
from .sparse_kernels import METHODS, generate_rgf_operands, three_matrix_product
from .sse import (
    pi_sse,
    preprocess_phonon_green,
    retarded_from_lesser_greater,
    sigma_sse,
    sse_flop_estimate,
)
from .structure import DeviceStructure, build_device

__all__ = [
    "lead_self_energy",
    "sancho_rubio",
    "surface_greens_function",
    "transfer_matrix_modes",
    "BlockTridiagonal",
    "HamiltonianModel",
    "build_hamiltonian_model",
    "RGFResult",
    "block_offsets",
    "dense_reference",
    "rgf_solve",
    "SCBAResult",
    "SCBASettings",
    "SCBASimulation",
    "bose",
    "fermi",
    "METHODS",
    "generate_rgf_operands",
    "three_matrix_product",
    "pi_sse",
    "preprocess_phonon_green",
    "retarded_from_lesser_greater",
    "sigma_sse",
    "sse_flop_estimate",
    "DeviceStructure",
    "build_device",
]
