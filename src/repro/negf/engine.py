"""Spectral-grid execution engine: pluggable RGF sweeps over (kz, E)/(qz, ω).

The paper's central observation is that the NEGF solver is an
embarrassingly parallel sweep over momentum-energy grid points whose cost
is dominated by data movement, not FLOPs.  The seed ``SCBASimulation``
instead ran nested Python ``for`` loops over every ``(kz, E)`` electron
and ``(qz, ω)`` phonon point, re-assembling each system and re-deriving
the iteration-invariant boundary self-energies on every Born iteration.

This module turns that sweep into an explicit execution layer:

* :class:`SpectralGrid` — the grid/geometry context (energies, momenta,
  frequencies, atom→block scatter maps) shared by every backend; it also
  memoizes the assembled ``H(kz)/S(kz)/Φ(qz)`` operator blocks, which
  depend only on the structure and momentum — one assembly per momentum
  point serves every Born iteration and every sweep point;
* :class:`BoundaryCache` — memoizes the lead self-energies across SCBA
  iterations (they depend only on the grid point, never on the
  iteration) and exposes solve/hit counters;
* :class:`SerialEngine` — the seed per-point loop, kept as the
  bit-exactness oracle;
* :class:`BatchedEngine` — one stacked block-tridiagonal system per
  momentum row, solved with :func:`repro.negf.rgf.rgf_solve_batched` and
  boundary conditions from the batched Sancho-Rubio recursion;
* :class:`MultiprocessEngine` — the batched rows partitioned onto
  ``(kz, E-chunk)`` ranks via
  :func:`repro.parallel.decomposition.partition_spectral_grid` (an
  :class:`~repro.parallel.decomposition.OmenDecomposition`) and executed
  in a process pool, with a :class:`~repro.parallel.simmpi.SimComm`
  metering the scatter/gather volume.

Backends are selected with ``SCBASettings.engine`` (default from
:func:`repro.config.default_engine`, overridable via ``REPRO_ENGINE``);
``tests/test_engine.py`` pins batched == serial to 1e-10.  Orthogonally
to the backend, the RGF recursion itself is pluggable
(:mod:`repro.negf.kernels`, ``SCBASettings.rgf_kernel`` /
``REPRO_RGF_KERNEL``): the batched backends solve their stacked systems
and boundary decimations through the selected kernel, while
:class:`SerialEngine` stays pinned to the ``reference`` kernel — it is
the oracle everything else is validated against.

Every engine is a context manager: ``close()`` releases backend
resources deterministically (the multiprocess worker pool in
particular), instead of relying on GC/atexit.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import weakref
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from pickle import PicklingError
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..config import EXECUTION_BACKENDS
from ..parallel.decomposition import OmenDecomposition, partition_spectral_grid
from ..parallel.simmpi import SimComm
from ..telemetry import metrics as _metrics
from ..telemetry.spans import trace
from .boundary import lead_self_energy, lead_self_energy_batched
from .kernels import get_kernel
from .rgf import _H, rgf_solve, rgf_solve_batched

__all__ = [
    "SpectralGrid",
    "BoundaryCache",
    "GridEngine",
    "SerialEngine",
    "BatchedEngine",
    "MultiprocessEngine",
    "make_engine",
    "fermi",
    "bose",
]


def fermi(E: np.ndarray, mu: float, kT: float) -> np.ndarray:
    """Fermi-Dirac occupation (numerically safe for large arguments)."""
    x = np.clip((np.asarray(E, dtype=float) - mu) / max(kT, 1e-12), -700, 700)
    return 1.0 / (1.0 + np.exp(x))


def bose(w: np.ndarray, kT: float) -> np.ndarray:
    """Bose-Einstein occupation; ω -> 0 regularized."""
    w = np.maximum(np.asarray(w, dtype=float), 1e-9)
    x = np.clip(w / max(kT, 1e-12), 1e-9, 700)
    return 1.0 / np.expm1(x)


class SpectralGrid:
    """Grid and geometry context of one simulation, shared by all backends.

    Holds the (kz, E) electron and (qz, ω) phonon grids plus the
    atom → (RGF block, orbital slice, vibration slice) scatter map — the
    per-simulation state every engine needs to assemble and distribute
    the spectral sweep.
    """

    def __init__(self, model, settings):
        self.model = model
        self.s = settings
        dev = model.structure
        self.NA = dev.NA
        self.NB = dev.NB
        self.Norb = model.Norb
        self.N3D = model.N3D
        self.energies = np.linspace(settings.e_min, settings.e_max, settings.NE)
        self.dE = self.energies[1] - self.energies[0] if settings.NE > 1 else 1.0
        self.kz_grid = 2.0 * np.pi * np.arange(settings.Nkz) / settings.Nkz - np.pi
        self.qz_grid = self.kz_grid[: settings.Nqz]
        #: phonon frequencies aligned with energy-grid shifts: ω_m = (m+1) dE
        self.omegas = (np.arange(settings.Nw) + 1) * self.dE
        self.rev = dev.reverse_neighbor()
        self.atom_slices = self._build_atom_slices()
        self._el_ops: Dict[int, Tuple] = {}
        self._ph_ops: Dict[int, object] = {}

    # -- assembled operators ---------------------------------------------------
    def electron_operators(self, ik: int):
        """Assembled ``(H(kz), S(kz))`` for ``kz_grid[ik]``, memoized.

        The operators depend only on the structure and the momentum —
        never on bias, temperature, or the Born iteration — so one
        assembly serves every solve and every sweep point routed through
        this grid.  ``SCBASettings.cache_operators=False`` restores the
        per-solve reassembly of the seed (benchmarks only).
        """
        if not getattr(self.s, "cache_operators", True):
            kz = self.kz_grid[ik]
            return (
                self.model.hamiltonian_blocks(kz),
                self.model.overlap_blocks(kz),
            )
        if ik not in self._el_ops:
            kz = self.kz_grid[ik]
            self._el_ops[ik] = (
                self.model.hamiltonian_blocks(kz),
                self.model.overlap_blocks(kz),
            )
        return self._el_ops[ik]

    def phonon_operators(self, iq: int):
        """Assembled ``Φ(qz)`` for ``qz_grid[iq]``, memoized as above."""
        if not getattr(self.s, "cache_operators", True):
            return self.model.dynamical_blocks(self.qz_grid[iq])
        if iq not in self._ph_ops:
            self._ph_ops[iq] = self.model.dynamical_blocks(self.qz_grid[iq])
        return self._ph_ops[iq]

    def _build_atom_slices(self) -> List[Tuple[int, slice, slice]]:
        """Per atom: (block index, orbital slice in block, N3D slice)."""
        dev = self.model.structure
        local = {}
        counters: Dict[int, int] = {}
        for a in range(self.NA):
            blk = int(dev.block_of[a])
            i = counters.get(blk, 0)
            counters[blk] = i + 1
            local[a] = (blk, i)
        out = []
        for a in range(self.NA):
            blk, i = local[a]
            out.append(
                (
                    blk,
                    slice(i * self.Norb, (i + 1) * self.Norb),
                    slice(i * self.N3D, (i + 1) * self.N3D),
                )
            )
        return out


class BoundaryCache:
    """Memoized open-boundary self-energies with solve accounting.

    Lead self-energies depend only on the grid point ``(kz, E)`` /
    ``(qz, ω)`` — never on the Born iteration — yet the seed recomputed
    them on every iteration.  The cache keys on the grid indices and
    counts per-point boundary *solves* (two per point: left + right lead)
    and cache hits, so tests can assert the solver runs exactly once per
    grid point per run.  ``enabled=False`` reproduces the seed behavior
    for benchmarking.
    """

    def __init__(self, settings, enabled: bool = True, kernel=None):
        self.s = settings
        self.enabled = enabled
        #: RGF kernel whose ``invert`` seam the batched decimation uses
        #: (None = the plain ``solve(A, I)`` path)
        self.kernel = kernel
        self._el: Dict[Tuple[int, int], Tuple[np.ndarray, np.ndarray]] = {}
        self._ph: Dict[Tuple[int, int], Tuple[np.ndarray, np.ndarray]] = {}
        #: per-point solver invocations (left + right each count one)
        self.el_solves = 0
        self.ph_solves = 0
        #: per-point (pair) cache hits
        self.el_hits = 0
        self.ph_hits = 0

    # -- electrons -----------------------------------------------------------
    def electron(self, ik: int, iE: int, E: float, H, S):
        """(Σ_L, Σ_R) for one (kz, E) point (per-point solver)."""
        key = (ik, iE)
        if self.enabled and key in self._el:
            self.el_hits += 1
            _metrics.add("boundary.el_hits")
            return self._el[key]
        s = self.s
        with trace("boundary.solve", kind="electron", ik=int(ik), points=1):
            sig_L = lead_self_energy(
                E, H.diag[0], H.upper[0], "left", S.diag[0], S.upper[0],
                eta=s.eta, method=s.boundary_method,
            )
            sig_R = lead_self_energy(
                E, H.diag[-1], H.upper[-1], "right", S.diag[-1], S.upper[-1],
                eta=s.eta, method=s.boundary_method,
            )
        self.el_solves += 2
        _metrics.add("boundary.el_solves", 2)
        if self.enabled:
            self._el[key] = (sig_L, sig_R)
        return sig_L, sig_R

    def electron_row(self, ik: int, e_idx: np.ndarray, E: np.ndarray, H, S):
        """Stacked (Σ_L, Σ_R) for the energies ``E = energies[e_idx]``."""
        return self.electron_row_lazy(ik, e_idx, E, lambda: (H, S))

    def electron_row_lazy(
        self, ik: int, e_idx: np.ndarray, E: np.ndarray, assemble
    ):
        """Stacked (Σ_L, Σ_R); ``assemble() -> (H, S)`` runs only on misses.

        Missing points are filled with one batched Sancho-Rubio recursion
        per lead (the transfer-matrix method falls back to a loop inside
        :func:`lead_self_energy_batched`).  With a warm cache the operator
        blocks are never assembled.
        """
        s = self.s
        missing = [
            j for j, iE in enumerate(e_idx)
            if not (self.enabled and (ik, int(iE)) in self._el)
        ]
        self.el_hits += len(e_idx) - len(missing)
        _metrics.add("boundary.el_hits", len(e_idx) - len(missing))
        if missing:
            with trace(
                "boundary.solve",
                kind="electron",
                ik=int(ik),
                points=len(missing),
            ):
                H, S = assemble()
                z = E[missing]
                sl = lead_self_energy_batched(
                    z, H.diag[0], H.upper[0], "left", S.diag[0], S.upper[0],
                    eta=s.eta, method=s.boundary_method, kernel=self.kernel,
                )
                sr = lead_self_energy_batched(
                    z, H.diag[-1], H.upper[-1], "right",
                    S.diag[-1], S.upper[-1],
                    eta=s.eta, method=s.boundary_method, kernel=self.kernel,
                )
            self.el_solves += 2 * len(missing)
            _metrics.add("boundary.el_solves", 2 * len(missing))
            if not self.enabled:
                return sl, sr
            for j, m in enumerate(missing):
                self._el[(ik, int(e_idx[m]))] = (sl[j], sr[j])
        sig_L = np.stack([self._el[(ik, int(iE))][0] for iE in e_idx])
        sig_R = np.stack([self._el[(ik, int(iE))][1] for iE in e_idx])
        return sig_L, sig_R

    # -- phonons ---------------------------------------------------------------
    @staticmethod
    def _phonon_z_eta(w: np.ndarray, eta: float):
        """The (z, η_eff) convention of the seed phonon boundary call."""
        z = ((np.asarray(w) + 1j * eta) ** 2).real
        eta_eff = np.maximum(eta, 2 * np.asarray(w) * eta)
        return z, eta_eff

    def phonon(self, iq: int, iw: int, w: float, Phi):
        """(Π_L, Π_R) for one (qz, ω) point (per-point solver)."""
        key = (iq, iw)
        if self.enabled and key in self._ph:
            self.ph_hits += 1
            _metrics.add("boundary.ph_hits")
            return self._ph[key]
        s = self.s
        z, eta_eff = self._phonon_z_eta(w, s.eta)
        with trace("boundary.solve", kind="phonon", iq=int(iq), points=1):
            pi_L = lead_self_energy(
                float(z), Phi.diag[0], Phi.upper[0], "left",
                eta=float(eta_eff), method=s.boundary_method,
            )
            pi_R = lead_self_energy(
                float(z), Phi.diag[-1], Phi.upper[-1], "right",
                eta=float(eta_eff), method=s.boundary_method,
            )
        self.ph_solves += 2
        _metrics.add("boundary.ph_solves", 2)
        if self.enabled:
            self._ph[key] = (pi_L, pi_R)
        return pi_L, pi_R

    def phonon_row(self, iq: int, w_idx: np.ndarray, w: np.ndarray, Phi):
        """Stacked (Π_L, Π_R) for the frequencies ``w = omegas[w_idx]``."""
        return self.phonon_row_lazy(iq, w_idx, w, lambda: Phi)

    def phonon_row_lazy(self, iq: int, w_idx: np.ndarray, w: np.ndarray, assemble):
        """Stacked (Π_L, Π_R); ``assemble() -> Φ`` runs only on misses."""
        s = self.s
        missing = [
            j for j, iw in enumerate(w_idx)
            if not (self.enabled and (iq, int(iw)) in self._ph)
        ]
        self.ph_hits += len(w_idx) - len(missing)
        _metrics.add("boundary.ph_hits", len(w_idx) - len(missing))
        if missing:
            with trace(
                "boundary.solve",
                kind="phonon",
                iq=int(iq),
                points=len(missing),
            ):
                Phi = assemble()
                z, eta_eff = self._phonon_z_eta(w[missing], s.eta)
                pl = lead_self_energy_batched(
                    z, Phi.diag[0], Phi.upper[0], "left",
                    eta=eta_eff, method=s.boundary_method, kernel=self.kernel,
                )
                pr = lead_self_energy_batched(
                    z, Phi.diag[-1], Phi.upper[-1], "right",
                    eta=eta_eff, method=s.boundary_method, kernel=self.kernel,
                )
            self.ph_solves += 2 * len(missing)
            _metrics.add("boundary.ph_solves", 2 * len(missing))
            if not self.enabled:
                return pl, pr
            for j, m in enumerate(missing):
                self._ph[(iq, int(w_idx[m]))] = (pl[j], pr[j])
        pi_L = np.stack([self._ph[(iq, int(iw))][0] for iw in w_idx])
        pi_R = np.stack([self._ph[(iq, int(iw))][1] for iw in w_idx])
        return pi_L, pi_R


class GridEngine:
    """Base class of the execution backends.

    A backend consumes per-atom scattering self-energies and produces the
    grid-resolved Green's-function tensors plus contact currents — the
    GF phase of one Born iteration (Fig. 2/6 of the paper).
    """

    name = "base"

    #: backends that ignore ``SCBASettings.rgf_kernel`` pin this instead
    #: (the serial oracle must stay on the reference recursion)
    pinned_kernel: Optional[str] = None

    def __init__(self, grid: SpectralGrid):
        self.grid = grid
        #: resolved RGF kernel instance for this backend's solves
        self.kernel = get_kernel(
            self.pinned_kernel or getattr(grid.s, "rgf_kernel", None)
        )
        self.boundary = BoundaryCache(
            grid.s,
            enabled=getattr(grid.s, "cache_boundary", True),
            kernel=self.kernel,
        )

    def solve_electrons(self, sigma_r, sigma_l, sigma_g):
        """RGF over the (kz, E) grid -> (Gl, Gg, I_left, I_right)."""
        raise NotImplementedError

    def solve_phonons(self, pi_r, pi_l):
        """RGF over the (qz, ω) grid -> (Dl, Dg) bond tensors."""
        raise NotImplementedError

    # -- lifetime --------------------------------------------------------------
    def close(self):
        """Release backend resources (no-op for in-process backends)."""

    def __enter__(self) -> "GridEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # -- result allocation -----------------------------------------------------
    def _alloc_electrons(self):
        g, s = self.grid, self.grid.s
        shape = (s.Nkz, s.NE, g.NA, g.Norb, g.Norb)
        return (
            np.zeros(shape, dtype=np.complex128),
            np.zeros(shape, dtype=np.complex128),
            np.zeros((s.Nkz, s.NE)),
            np.zeros((s.Nkz, s.NE)),
        )

    def _alloc_phonons(self):
        g, s = self.grid, self.grid.s
        shape = (s.Nqz, s.Nw, g.NA, g.NB + 1, g.N3D, g.N3D)
        return (
            np.zeros(shape, dtype=np.complex128),
            np.zeros(shape, dtype=np.complex128),
        )


class SerialEngine(GridEngine):
    """The seed per-point loop — the bit-exactness oracle.

    Identical to the original ``SCBASimulation`` solver loops except that
    the boundary self-energies go through the shared :class:`BoundaryCache`.
    The RGF kernel is pinned to ``reference`` regardless of
    ``SCBASettings.rgf_kernel`` — this backend *is* the oracle the other
    kernels are validated against.
    """

    name = "serial"
    pinned_kernel = "reference"

    # -- electrons -----------------------------------------------------------
    def solve_electrons(self, sigma_r, sigma_l, sigma_g):
        g = self.grid
        Gl, Gg, I_L, I_R = self._alloc_electrons()
        for ik in range(len(g.kz_grid)):
            H, S = g.electron_operators(ik)
            for iE, E in enumerate(g.energies):
                diag, upper, sless, extras = self._electron_system(
                    H, S, E, ik, iE, sigma_r, sigma_l, sigma_g
                )
                res = rgf_solve(diag, upper, sless)
                self._scatter_to_atoms(res, Gl, Gg, ik, iE)
                I_L[ik, iE], I_R[ik, iE] = self._contact_currents(res, extras)
        return Gl, Gg, I_L, I_R

    def _electron_system(self, H, S, E, ik, iE, sigma_r, sigma_l, sigma_g):
        g, s = self.grid, self.grid.s
        diag = []
        for i, (h, sv) in enumerate(zip(H.diag, S.diag)):
            diag.append((E + 1j * s.eta) * sv - h)
        upper = [E * u_s - u_h for u_h, u_s in zip(H.upper, S.upper)]

        sig_L, sig_R = self.boundary.electron(ik, iE, E, H, S)
        diag[0] = diag[0] - sig_L
        diag[-1] = diag[-1] - sig_R

        gam_L = 1j * (sig_L - sig_L.conj().T)
        gam_R = 1j * (sig_R - sig_R.conj().T)
        fL = fermi(E, s.mu_left, s.kT_el)
        fR = fermi(E, s.mu_right, s.kT_el)
        sless = [np.zeros_like(b) for b in diag]
        sless[0] = sless[0] + 1j * fL * gam_L
        sless[-1] = sless[-1] + 1j * fR * gam_R

        if sigma_r is not None:
            for a, (blk, orb, _) in enumerate(g.atom_slices):
                diag[blk][orb, orb] -= sigma_r[ik, iE, a]
                sless[blk][orb, orb] += sigma_l[ik, iE, a]
        extras = dict(gam_L=gam_L, gam_R=gam_R, fL=fL, fR=fR)
        return diag, upper, sless, extras

    def _scatter_to_atoms(self, res, Gl, Gg, ik, iE):
        for a, (blk, orb, _) in enumerate(self.grid.atom_slices):
            Gl[ik, iE, a] = res.Gl[blk][orb, orb]
            Gg[ik, iE, a] = res.Gg[blk][orb, orb]

    def _contact_currents(self, res, extras) -> Tuple[float, float]:
        """Meir-Wingreen integrand at both contacts.

        ``I = Tr[Σ< G> - Σ> G<]`` with the *boundary* self-energies; in the
        ballistic limit ``I_L = -I_R`` (flux conservation).
        """
        gl0, gg0 = res.Gl[0], res.Gg[0]
        glN, ggN = res.Gl[-1], res.Gg[-1]
        gam_L, gam_R = extras["gam_L"], extras["gam_R"]
        fL, fR = extras["fL"], extras["fR"]
        sl_L, sg_L = 1j * fL * gam_L, -1j * (1 - fL) * gam_L
        sl_R, sg_R = 1j * fR * gam_R, -1j * (1 - fR) * gam_R
        i_l = np.trace(sl_L @ gg0 - sg_L @ gl0)
        i_r = np.trace(sl_R @ ggN - sg_R @ glN)
        return float(i_l.real), float(i_r.real)

    # -- phonons ---------------------------------------------------------------
    def solve_phonons(self, pi_r, pi_l):
        g, s = self.grid, self.grid.s
        Dl, Dg = self._alloc_phonons()
        dev = g.model.structure
        for iq in range(len(g.qz_grid)):
            Phi = g.phonon_operators(iq)
            for iw, w in enumerate(g.omegas):
                z = (w + 1j * s.eta) ** 2
                diag = [z * np.eye(b.shape[0]) - b for b in Phi.diag]
                upper = [-u for u in Phi.upper]

                pi_L, pi_R = self.boundary.phonon(iq, iw, w, Phi)
                diag[0] = diag[0] - pi_L
                diag[-1] = diag[-1] - pi_R

                nb = bose(w, s.kT_ph)
                gam_L = 1j * (pi_L - pi_L.conj().T)
                gam_R = 1j * (pi_R - pi_R.conj().T)
                pless = [np.zeros_like(b) for b in diag]
                pless[0] = pless[0] + 1j * nb * gam_L
                pless[-1] = pless[-1] + 1j * nb * gam_R

                if pi_r is not None:
                    self._add_phonon_scattering(diag, pless, pi_r, pi_l, iq, iw)

                res = rgf_solve(diag, upper, pless)
                self._scatter_phonons(res, Dl, Dg, iq, iw, dev)
        return Dl, Dg

    def _add_phonon_scattering(self, diag, pless, pi_r, pi_l, iq, iw):
        """Insert Π self-energy blocks (on-site + intra-slab bonds)."""
        g = self.grid
        dev = g.model.structure
        for a, (blk, _, vib) in enumerate(g.atom_slices):
            diag[blk][vib, vib] -= pi_r[iq, iw, a, 0]
            pless[blk][vib, vib] += pi_l[iq, iw, a, 0]
            for b in range(g.NB):
                c = int(dev.neighbors[a, b])
                blk_c, _, vib_c = g.atom_slices[c]
                if blk_c != blk:
                    continue  # cross-slab bond blocks dropped (see scba doc)
                diag[blk][vib, vib_c] -= pi_r[iq, iw, a, 1 + b]
                pless[blk][vib, vib_c] += pi_l[iq, iw, a, 1 + b]

    def _scatter_phonons(self, res, Dl, Dg, iq, iw, dev):
        g = self.grid
        for a, (blk, _, vib) in enumerate(g.atom_slices):
            Dl[iq, iw, a, 0] = res.Gl[blk][vib, vib]
            Dg[iq, iw, a, 0] = res.Gg[blk][vib, vib]
            for b in range(g.NB):
                c = int(dev.neighbors[a, b])
                blk_c, _, vib_c = g.atom_slices[c]
                if blk_c != blk:
                    continue
                Dl[iq, iw, a, 1 + b] = res.Gl[blk][vib, vib_c]
                Dg[iq, iw, a, 1 + b] = res.Gg[blk][vib, vib_c]


class BatchedEngine(GridEngine):
    """Stacked-tensor backend: one batched RGF solve per momentum row.

    All energies (frequencies) of one kz (qz) become the batch axis of a
    ``[batch, bnum, n, n]`` block-tridiagonal system; assembly, boundary
    conditions, the RGF recursions, the atom scatter, and the contact
    currents are all broadcasted tensor operations.
    """

    name = "batched"

    # -- electrons -----------------------------------------------------------
    def solve_electrons(self, sigma_r, sigma_l, sigma_g):
        g, s = self.grid, self.grid.s
        Gl, Gg, I_L, I_R = self._alloc_electrons()
        e_idx = np.arange(s.NE)
        for ik in range(len(g.kz_grid)):
            sr = None if sigma_r is None else sigma_r[ik]
            sl = None if sigma_l is None else sigma_l[ik]
            with trace("engine.electron_row", ik=ik, batch=s.NE):
                Gl[ik], Gg[ik], I_L[ik], I_R[ik] = self.electron_row(
                    ik, e_idx, sr, sl
                )
        return Gl, Gg, I_L, I_R

    def electron_row(self, ik, e_idx, sigma_r_row, sigma_l_row,
                     boundary_row=None):
        """Solve the stacked electron systems of one kz / energy subset.

        ``sigma_*_row`` are pre-sliced ``[nE, NA, Norb, Norb]`` scattering
        tensors for exactly the ``e_idx`` energies (or None).
        ``boundary_row`` optionally provides precomputed ``(Σ_L, Σ_R)``
        stacks (the multiprocess engine ships them from the parent's
        shared cache); otherwise this engine's own cache is consulted.
        """
        g, s = self.grid, self.grid.s
        e_idx = np.asarray(e_idx)
        _metrics.add("engine.electron_rows")
        _metrics.add("engine.electron_points", len(e_idx))
        E = g.energies[e_idx]
        H, S = g.electron_operators(ik)

        zE = (E + 1j * s.eta)[:, None, None]
        diag = [zE * sv[None] - h[None] for h, sv in zip(H.diag, S.diag)]
        upper = [
            E[:, None, None] * u_s[None] - u_h[None]
            for u_h, u_s in zip(H.upper, S.upper)
        ]

        if boundary_row is None:
            sig_L, sig_R = self.boundary.electron_row(ik, e_idx, E, H, S)
        else:
            sig_L, sig_R = boundary_row
        diag[0] = diag[0] - sig_L
        diag[-1] = diag[-1] - sig_R

        gam_L = 1j * (sig_L - _H(sig_L))
        gam_R = 1j * (sig_R - _H(sig_R))
        fL = fermi(E, s.mu_left, s.kT_el)[:, None, None]
        fR = fermi(E, s.mu_right, s.kT_el)[:, None, None]
        sless = [np.zeros_like(b) for b in diag]
        sless[0] = sless[0] + 1j * fL * gam_L
        sless[-1] = sless[-1] + 1j * fR * gam_R

        if sigma_r_row is not None:
            for a, (blk, orb, _) in enumerate(g.atom_slices):
                diag[blk][:, orb, orb] -= sigma_r_row[:, a]
                sless[blk][:, orb, orb] += sigma_l_row[:, a]

        with trace("rgf.batch", kind="electron", ik=int(ik), batch=len(e_idx)):
            res = rgf_solve_batched(diag, upper, sless, kernel=self.kernel)

        nE = len(e_idx)
        Gl_row = np.zeros((nE, g.NA, g.Norb, g.Norb), dtype=np.complex128)
        Gg_row = np.zeros_like(Gl_row)
        for a, (blk, orb, _) in enumerate(g.atom_slices):
            Gl_row[:, a] = res.Gl[blk][:, orb, orb]
            Gg_row[:, a] = res.Gg[blk][:, orb, orb]

        sl_L, sg_L = 1j * fL * gam_L, -1j * (1 - fL) * gam_L
        sl_R, sg_R = 1j * fR * gam_R, -1j * (1 - fR) * gam_R
        I_L = np.trace(
            sl_L @ res.Gg[0] - sg_L @ res.Gl[0], axis1=-2, axis2=-1
        ).real
        I_R = np.trace(
            sl_R @ res.Gg[-1] - sg_R @ res.Gl[-1], axis1=-2, axis2=-1
        ).real
        return Gl_row, Gg_row, I_L, I_R

    # -- phonons ---------------------------------------------------------------
    def solve_phonons(self, pi_r, pi_l):
        g, s = self.grid, self.grid.s
        Dl, Dg = self._alloc_phonons()
        w_idx = np.arange(s.Nw)
        for iq in range(len(g.qz_grid)):
            pr = None if pi_r is None else pi_r[iq]
            pl = None if pi_l is None else pi_l[iq]
            with trace("engine.phonon_row", iq=iq, batch=s.Nw):
                Dl[iq], Dg[iq] = self.phonon_row(iq, w_idx, pr, pl)
        return Dl, Dg

    def phonon_row(self, iq, w_idx, pi_r_row, pi_l_row,
                   boundary_row=None):
        """Solve the stacked phonon systems of one qz / frequency subset.

        ``pi_*_row`` are pre-sliced ``[nW, NA, NB+1, N3D, N3D]`` scattering
        tensors for exactly the ``w_idx`` frequencies (or None);
        ``boundary_row`` as in :meth:`electron_row`.
        """
        g, s = self.grid, self.grid.s
        w_idx = np.asarray(w_idx)
        _metrics.add("engine.phonon_rows")
        _metrics.add("engine.phonon_points", len(w_idx))
        w = g.omegas[w_idx]
        Phi = g.phonon_operators(iq)
        dev = g.model.structure

        z = ((w + 1j * s.eta) ** 2)[:, None, None]
        diag = [z * np.eye(b.shape[0])[None] - b[None] for b in Phi.diag]
        # ω-independent couplings: 2-D blocks broadcast inside the solver.
        upper = [-u for u in Phi.upper]

        if boundary_row is None:
            pi_L, pi_R = self.boundary.phonon_row(iq, w_idx, w, Phi)
        else:
            pi_L, pi_R = boundary_row
        diag[0] = diag[0] - pi_L
        diag[-1] = diag[-1] - pi_R

        nb = bose(w, s.kT_ph)[:, None, None]
        gam_L = 1j * (pi_L - _H(pi_L))
        gam_R = 1j * (pi_R - _H(pi_R))
        pless = [np.zeros_like(b) for b in diag]
        pless[0] = pless[0] + 1j * nb * gam_L
        pless[-1] = pless[-1] + 1j * nb * gam_R

        if pi_r_row is not None:
            for a, (blk, _, vib) in enumerate(g.atom_slices):
                diag[blk][:, vib, vib] -= pi_r_row[:, a, 0]
                pless[blk][:, vib, vib] += pi_l_row[:, a, 0]
                for b in range(g.NB):
                    c = int(dev.neighbors[a, b])
                    blk_c, _, vib_c = g.atom_slices[c]
                    if blk_c != blk:
                        continue  # cross-slab bond blocks dropped
                    diag[blk][:, vib, vib_c] -= pi_r_row[:, a, 1 + b]
                    pless[blk][:, vib, vib_c] += pi_l_row[:, a, 1 + b]

        with trace("rgf.batch", kind="phonon", iq=int(iq), batch=len(w_idx)):
            res = rgf_solve_batched(diag, upper, pless, kernel=self.kernel)

        nW = len(w_idx)
        Dl_row = np.zeros(
            (nW, g.NA, g.NB + 1, g.N3D, g.N3D), dtype=np.complex128
        )
        Dg_row = np.zeros_like(Dl_row)
        for a, (blk, _, vib) in enumerate(g.atom_slices):
            Dl_row[:, a, 0] = res.Gl[blk][:, vib, vib]
            Dg_row[:, a, 0] = res.Gg[blk][:, vib, vib]
            for b in range(g.NB):
                c = int(dev.neighbors[a, b])
                blk_c, _, vib_c = g.atom_slices[c]
                if blk_c != blk:
                    continue
                Dl_row[:, a, 1 + b] = res.Gl[blk][:, vib, vib_c]
                Dg_row[:, a, 1 + b] = res.Gg[blk][:, vib, vib_c]
        return Dl_row, Dg_row


# -- multiprocess worker state (one BatchedEngine per pool process) ----------
_WORKER_ENGINE: Optional[BatchedEngine] = None


def _engine_worker_init(model, settings):
    global _WORKER_ENGINE
    _WORKER_ENGINE = BatchedEngine(SpectralGrid(model, settings))


def _worker_sync_settings(state: Dict):
    """Refresh the worker's settings from the parent's current values.

    Pool workers pickle the settings object once at pool creation; a
    sweep (``repro.api.Session``) mutates bias/temperature fields on the
    parent's settings between points, so every task ships the current
    field values along.  Only same-grid (non-structural) fields ever
    change while a pool lives, hence plain setattr is sufficient.
    """
    for k, v in state.items():
        setattr(_WORKER_ENGINE.grid.s, k, v)


def _worker_electron_row(state, ik, e_idx, sigma_r_row, sigma_l_row,
                         boundary_row):
    _worker_sync_settings(state)
    return _WORKER_ENGINE.electron_row(
        ik, e_idx, sigma_r_row, sigma_l_row, boundary_row
    )


def _worker_phonon_row(state, iq, w_idx, pi_r_row, pi_l_row, boundary_row):
    _worker_sync_settings(state)
    return _WORKER_ENGINE.phonon_row(
        iq, w_idx, pi_r_row, pi_l_row, boundary_row
    )


def _shutdown_pool(pool):
    pool.shutdown(wait=False, cancel_futures=True)


class MultiprocessEngine(BatchedEngine):
    """Batched rows fanned out over an OmenDecomposition of ranks.

    The (kz, E) grid is partitioned into ``(kz, E-chunk)`` batches via
    :func:`partition_spectral_grid` (and likewise (qz, ω)); each rank's
    stacked system is solved by a :class:`BatchedEngine` living in a
    worker process.  The iteration-invariant boundary self-energies are
    computed once in the parent's shared :class:`BoundaryCache` and
    shipped to the ranks alongside the scattering slices, so the
    memoization invariant (and its counters) hold for this backend too.
    A :class:`SimComm` meters the scatter (boundary + self-energy slices
    out) and gather (GF rows back) volume, mirroring the paper's rank
    accounting.  Falls back to in-process batched rows if the pool
    cannot run (the engine then still produces identical results).
    """

    name = "multiprocess"

    def __init__(self, grid: SpectralGrid, max_workers: Optional[int] = None):
        super().__init__(grid)
        s = grid.s
        self.max_workers = (
            max_workers
            or getattr(s, "max_workers", None)
            or min(8, os.cpu_count() or 1)
        )
        self.el_decomp: OmenDecomposition = partition_spectral_grid(
            s.Nkz, s.NE, max(self.max_workers, s.Nkz)
        )
        self.ph_decomp: OmenDecomposition = partition_spectral_grid(
            s.Nqz, s.Nw, max(self.max_workers, s.Nqz)
        )
        self.comm = SimComm(max(self.el_decomp.P, self.ph_decomp.P))
        self._pool: Optional[ProcessPoolExecutor] = None

    # -- pool management -----------------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            try:
                ctx = mp.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX platforms
                ctx = mp.get_context()
            workers = min(
                self.max_workers, max(self.el_decomp.P, self.ph_decomp.P)
            )
            self._pool = ProcessPoolExecutor(
                max_workers=max(workers, 1),
                mp_context=ctx,
                initializer=_engine_worker_init,
                initargs=(self.grid.model, self.grid.s),
            )
            weakref.finalize(self, _shutdown_pool, self._pool)
        return self._pool

    def close(self):
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    # -- electron sweep --------------------------------------------------------
    def solve_electrons(self, sigma_r, sigma_l, sigma_g):
        g, s = self.grid, self.grid.s
        d = self.el_decomp
        Gl, Gg, I_L, I_R = self._alloc_electrons()
        all_idx = np.arange(s.NE)

        # Boundary rows come from the parent's shared cache (computed on
        # the first Born iteration only) and travel with the work; the
        # operator blocks are only assembled while the cache is cold.
        boundary_rows = {}
        for ik in range(len(g.kz_grid)):
            boundary_rows[ik] = self.boundary.electron_row_lazy(
                ik, all_idx, g.energies,
                lambda ik=ik: g.electron_operators(ik),
            )

        tasks = []  # (rank, ik, esl) bookkeeping per rank batch
        worker_args = []  # electron_row arguments per rank batch
        for rank in range(d.P):
            ik, _ = d.coords(rank)
            esl = d.energy_slice(rank)
            sr = None if sigma_r is None else sigma_r[ik, esl]
            sl = None if sigma_l is None else sigma_l[ik, esl]
            bnd = (boundary_rows[ik][0][esl], boundary_rows[ik][1][esl])
            # Scatter metering: root ships boundary + Σ slices to the rank.
            for arr in (bnd[0], bnd[1], sr, sl):
                if arr is not None:
                    self.comm.sendrecv(0, rank, arr)
            tasks.append((rank, ik, esl))
            worker_args.append((ik, all_idx[esl], sr, sl, bnd))

        results = self._run_tasks(
            _worker_electron_row,
            worker_args,
            lambda args: self.electron_row(*args),
        )
        for (rank, ik, esl), row in zip(tasks, results):
            Gl_row, Gg_row, il, ir = row
            for arr in (Gl_row, Gg_row):  # gather metering: rows come home
                self.comm.sendrecv(rank, 0, arr)
            Gl[ik, esl] = Gl_row
            Gg[ik, esl] = Gg_row
            I_L[ik, esl] = il
            I_R[ik, esl] = ir
        return Gl, Gg, I_L, I_R

    # -- phonon sweep ----------------------------------------------------------
    def solve_phonons(self, pi_r, pi_l):
        g, s = self.grid, self.grid.s
        d = self.ph_decomp
        Dl, Dg = self._alloc_phonons()
        all_idx = np.arange(s.Nw)

        boundary_rows = {}
        for iq in range(len(g.qz_grid)):
            boundary_rows[iq] = self.boundary.phonon_row_lazy(
                iq, all_idx, g.omegas,
                lambda iq=iq: g.phonon_operators(iq),
            )

        tasks = []
        worker_args = []
        for rank in range(d.P):
            iq, _ = d.coords(rank)
            wsl = d.energy_slice(rank)
            pr = None if pi_r is None else pi_r[iq, wsl]
            pl = None if pi_l is None else pi_l[iq, wsl]
            bnd = (boundary_rows[iq][0][wsl], boundary_rows[iq][1][wsl])
            for arr in (bnd[0], bnd[1], pr, pl):
                if arr is not None:
                    self.comm.sendrecv(0, rank, arr)
            tasks.append((rank, iq, wsl))
            worker_args.append((iq, all_idx[wsl], pr, pl, bnd))

        results = self._run_tasks(
            _worker_phonon_row,
            worker_args,
            lambda args: self.phonon_row(*args),
        )
        for (rank, iq, wsl), row in zip(tasks, results):
            Dl_row, Dg_row = row
            for arr in (Dl_row, Dg_row):
                self.comm.sendrecv(rank, 0, arr)
            Dl[iq, wsl] = Dl_row
            Dg[iq, wsl] = Dg_row
        return Dl, Dg

    def _reset_pool(self):
        """Discard a broken pool so the next sweep can start a fresh one."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def _run_tasks(self, worker_fn, arg_lists, inline_fn):
        """Submit all rank batches to the pool.

        Each task carries the parent's *current* settings values (see
        :func:`_worker_sync_settings`) so sweep-mutated fields (bias,
        temperatures) reach the long-lived workers.  Only
        pool-infrastructure failures (the pool cannot start or its
        workers died) degrade to in-process batched rows; genuine
        computation errors raised inside a worker propagate unchanged.
        A broken pool is dropped so later sweeps retry with a fresh one.
        """
        state = dict(vars(self.grid.s))
        try:
            pool = self._ensure_pool()
            futures = [
                pool.submit(worker_fn, state, *args) for args in arg_lists
            ]
        except (OSError, PicklingError, mp.ProcessError, BrokenProcessPool):
            self._reset_pool()
            return [inline_fn(args) for args in arg_lists]
        try:
            return [f.result() for f in futures]
        except BrokenProcessPool:
            # Workers were killed (e.g. fork refused mid-run, OOM): the
            # computation itself is fine — redo it in process.
            self._reset_pool()
            return [inline_fn(args) for args in arg_lists]


_ENGINES = {
    SerialEngine.name: SerialEngine,
    BatchedEngine.name: BatchedEngine,
    MultiprocessEngine.name: MultiprocessEngine,
}


def make_engine(name: str, grid: SpectralGrid) -> GridEngine:
    """Instantiate the execution backend ``name`` for ``grid``."""
    try:
        cls = _ENGINES[name]
    except KeyError:
        raise ValueError(
            f"unknown engine {name!r}; expected one of {EXECUTION_BACKENDS}"
        ) from None
    return cls(grid)
