"""The scattering-self-energy (Σ≷) SDFG — paper Figs. 5 and 8.

Builds the *initial* dataflow representation of Eq. (3): an 8-dimensional
map over ``(kz, E, qz, ω, i, j, a, b)`` whose body performs

1. ``∇HG≷ = G≷[kz - qz, E - ω, f(a, b)] @ ∇H[a, b, i]``,
2. ``∇HD≷ = ∇H[a, b, j] * D≷[qz, ω, a, b, i, j]``,
3. ``Σ≷[kz, E, a] += ∇HG≷ @ ∇HD≷`` (write-conflict resolution: Sum).

Index conventions: the momentum axis ``kz - qz`` and the energy axis
``E - ω`` are both treated as periodic here (negative indices wrap), so
that all transformation stages — which reorganize these accesses — remain
exactly comparable.  The physical kernel in :mod:`repro.negf.sse` instead
zero-pads the energy axis; the dataflow structure is identical.

``D≷`` is assumed to be *preprocessed* to the 4-term combination
``D[l,n] - D[l,l] - D[n,n] + D[n,l]`` of Eq. (3), as stated in §4.2.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..sdfg import (
    SDFG,
    IndirectAccess,
    Map,
    MapEntry,
    MapExit,
    Memlet,
    Range,
    SDFGState,
    Symbol,
    Tasklet,
    symbols,
)

__all__ = [
    "SSE_SYMBOLS",
    "build_sse_sigma_sdfg",
    "sse_sigma_reference",
    "random_sse_inputs",
    "find_map_entry",
]

SSE_SYMBOLS = ("Nkz", "NE", "Nqz", "Nw", "N3D", "NA", "NB", "Norb")


def build_sse_sigma_sdfg(name: str = "sse_sigma") -> SDFG:
    """Construct the Fig. 8 SDFG of the Σ≷ computation."""
    Nkz, NE, Nqz, Nw, N3D, NA, NB, Norb = symbols(" ".join(SSE_SYMBOLS))
    kz, E, qz, w, i, j, a, b = symbols("kz E qz w i j a b")

    sd = SDFG(name)
    for s in SSE_SYMBOLS:
        sd.add_symbol(s)
    sd.add_array("G", (Nkz, NE, NA, Norb, Norb))
    sd.add_array("dH", (NA, NB, N3D, Norb, Norb))
    sd.add_array("D", (Nqz, Nw, NA, NB, N3D, N3D))
    sd.add_array("Sigma", (Nkz, NE, NA, Norb, Norb))
    sd.add_transient("dHG", (Norb, Norb))
    sd.add_transient("dHD", (Norb, Norb))

    st = sd.add_state("sse", is_start=True)
    m = Map(
        "sse",
        ["kz", "E", "qz", "w", "i", "j", "a", "b"],
        Range(
            [
                (0, Nkz - 1),
                (0, NE - 1),
                (0, Nqz - 1),
                (0, Nw - 1),
                (0, N3D - 1),
                (0, N3D - 1),
                (0, NA - 1),
                (0, NB - 1),
            ]
        ),
    )
    me, mx = MapEntry(m), MapExit(m)

    f = IndirectAccess("__neigh__", (a, b))
    orb = (0, Norb - 1, 1)

    t1 = Tasklet(
        "dHG_mult",
        ["g", "h"],
        ["gh"],
        lambda g, h: {"gh": g @ h},
        flops=lambda g, h: 8 * g.shape[-1] ** 3,
        op="xy,yz->xz",
    )
    t2 = Tasklet(
        "dHD_scale",
        ["h", "d"],
        ["hd"],
        lambda h, d: {"hd": h * d},
        flops=lambda h, d: 6 * h.shape[-1] ** 2,
        op="xy,->xy",
    )
    t3 = Tasklet(
        "sigma_acc",
        ["gh", "hd"],
        ["out"],
        lambda gh, hd: {"out": gh @ hd},
        flops=lambda gh, hd: 8 * gh.shape[-1] ** 3,
        op="xy,yz->xz",
    )

    aG = st.add_access("G")
    adH = st.add_access("dH")
    aD = st.add_access("D")
    aS = st.add_access("Sigma")
    an_gh = st.add_access("dHG")
    an_hd = st.add_access("dHD")

    st.add_edge(aG, me, Memlet.full("G", sd.arrays["G"].shape))
    st.add_edge(adH, me, Memlet.full("dH", sd.arrays["dH"].shape))
    st.add_edge(aD, me, Memlet.full("D", sd.arrays["D"].shape))

    st.add_edge(
        me,
        t1,
        Memlet("G", Range([(kz - qz, kz - qz), (E - w, E - w), (f, f), orb, orb])),
        dst_conn="g",
    )
    st.add_edge(
        me,
        t1,
        Memlet("dH", Range([(a, a), (b, b), (i, i), orb, orb])),
        dst_conn="h",
    )
    st.add_edge(
        me,
        t2,
        Memlet("dH", Range([(a, a), (b, b), (j, j), orb, orb])),
        dst_conn="h",
    )
    st.add_edge(
        me,
        t2,
        Memlet("D", Range([(qz, qz), (w, w), (a, a), (b, b), (i, i), (j, j)])),
        dst_conn="d",
    )
    st.add_edge(t1, an_gh, Memlet.full("dHG", (Symbol("Norb"), Symbol("Norb"))), src_conn="gh")
    st.add_edge(an_gh, t3, Memlet.full("dHG", (Symbol("Norb"), Symbol("Norb"))), dst_conn="gh")
    st.add_edge(t2, an_hd, Memlet.full("dHD", (Symbol("Norb"), Symbol("Norb"))), src_conn="hd")
    st.add_edge(an_hd, t3, Memlet.full("dHD", (Symbol("Norb"), Symbol("Norb"))), dst_conn="hd")
    st.add_edge(
        t3,
        mx,
        Memlet("Sigma", Range([(kz, kz), (E, E), (a, a), orb, orb]), wcr="sum"),
        src_conn="out",
    )
    st.add_edge(mx, aS, Memlet.full("Sigma", sd.arrays["Sigma"].shape, wcr="sum"))

    sd.validate()
    return sd


def sse_sigma_reference(
    G: np.ndarray,
    dH: np.ndarray,
    D: np.ndarray,
    neigh_idx: np.ndarray,
) -> np.ndarray:
    """Direct numpy-loop evaluation of the Fig. 5 kernel (ground truth).

    Both offset axes wrap periodically, matching the SDFG conventions.
    """
    Nkz, NE, NA, Norb, _ = G.shape
    Nqz, Nw, _, NB, N3D, _ = D.shape
    Sigma = np.zeros_like(G)
    for k in range(Nkz):
        for E in range(NE):
            for q in range(Nqz):
                for w in range(Nw):
                    for i in range(N3D):
                        for j in range(N3D):
                            for a in range(NA):
                                for b in range(NB):
                                    f = neigh_idx[a, b]
                                    gh = G[(k - q) % Nkz, (E - w) % NE, f] @ dH[a, b, i]
                                    hd = dH[a, b, j] * D[q, w, a, b, i, j]
                                    Sigma[k, E, a] += gh @ hd
    return Sigma


def random_sse_inputs(
    dims: Dict[str, int], seed: int = 0
) -> Tuple[Dict[str, np.ndarray], Dict[str, np.ndarray]]:
    """Random input tensors + a ring-topology neighbor table."""
    rng = np.random.default_rng(seed)
    Nkz, NE = dims["Nkz"], dims["NE"]
    Nqz, Nw = dims["Nqz"], dims["Nw"]
    N3D, NA, NB, Norb = dims["N3D"], dims["NA"], dims["NB"], dims["Norb"]

    def c(*shape):
        return rng.standard_normal(shape) + 1j * rng.standard_normal(shape)

    arrays = {
        "G": c(Nkz, NE, NA, Norb, Norb),
        "dH": c(NA, NB, N3D, Norb, Norb),
        "D": c(Nqz, Nw, NA, NB, N3D, N3D),
        "Sigma": np.zeros((Nkz, NE, NA, Norb, Norb), dtype=np.complex128),
    }
    # b-th neighbor of atom a: the nearby atoms on a ring (periodic chain),
    # mirroring the paper's "atoms with neighboring indices are very often
    # neighbors in the coupling matrix".
    neigh = np.zeros((NA, NB), dtype=np.int64)
    for a in range(NA):
        for b in range(NB):
            off = (b // 2 + 1) * (1 if b % 2 == 0 else -1)
            neigh[a, b] = (a + off) % NA
    tables = {"__neigh__": neigh}
    return arrays, tables


def find_map_entry(
    state: SDFGState, label_substring: str, top_level: bool = False
) -> MapEntry:
    """Locate a map entry whose label contains the given substring."""
    pool = state.top_level_maps() if top_level else [
        n for n in state.graph.nodes if isinstance(n, MapEntry)
    ]
    hits = [n for n in pool if label_substring in n.map.label]
    if len(hits) != 1:
        raise KeyError(
            f"expected exactly one map matching {label_substring!r}, found {len(hits)}"
        )
    return hits[0]
