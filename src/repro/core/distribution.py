"""Deriving the communication-avoiding distribution from the SDFG (§4.1).

This module performs the paper's §4.1 derivation *mechanically*:

1. tile the SSE map over the decomposition dimensions (Fig. 7, left),
2. propagate every tasklet memlet outward through the tiled scope —
   automatic for the affine ``kz - qz`` / ``E - ω`` offsets, via the
   performance engineer's :class:`IndirectionHook` for ``f(a, b)``,
3. read the per-tile data footprints off the propagated memlets, and
4. evaluate them for concrete tile sizes to obtain the per-process
   communication requirements that drive the exhaustive tile search.

The derived footprints are cross-validated against the closed-form §4.1
byte formulas in ``tests/test_distribution.py`` — the demonstration that
the data-centric view *generates* the communication model rather than
assuming it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..config import SimulationParameters
from ..sdfg import (
    Map,
    Memlet,
    Range,
    neighbor_indirection_hook,
    propagate_memlet,
    symbols,
)
from ..sdfg.nodes import MapEntry, Tasklet
from ..sdfg.transformations import MapTiling
from .sse_sdfg import build_sse_sigma_sdfg, find_map_entry

__all__ = ["TileFootprint", "derive_sse_footprints", "footprint_bytes"]

#: Symbolic tile sizes of the decomposed dimensions (energy, atoms).
_TILE_SIZES = {"E": "sE", "a": "sa"}

_COMPLEX = 16


@dataclass
class TileFootprint:
    """Per-tile data requirements of the tiled SSE map.

    Each entry is the propagated memlet of one input/output container:
    its subset covers everything one ``(tE, ta)`` tile touches, so its
    volume is the data that must reside on (or be communicated to) the
    owning process.
    """

    memlets: Dict[str, Memlet]

    def unique_elements(self, name: str, env: Dict[str, int]) -> int:
        """Number of distinct elements of ``name`` the tile accesses."""
        return self.memlets[name].subset.num_elements().evaluate(env)

    def bytes(self, name: str, env: Dict[str, int]) -> int:
        return _COMPLEX * self.unique_elements(name, env)


def derive_sse_footprints() -> TileFootprint:
    """Tile the Σ≷ SDFG map and propagate all memlets through it.

    Returns symbolic per-tile footprints in terms of the problem sizes
    (``Nkz``, ``NE``, ...) and tile sizes (``sE``, ``sa``).
    """
    sd = build_sse_sigma_sdfg()
    st = sd.states[0]
    entry = find_map_entry(st, "sse")

    tiling = MapTiling(
        entry, {k: symbols(v)[0] for k, v in _TILE_SIZES.items()}
    )
    tiling.apply_checked(sd, st)
    inner = entry.map  # the tiled (element) map

    NA, NB = symbols("NA NB")
    hook = neighbor_indirection_hook(NA, NB, atom_param="a")

    tasklets = [n for n in st.scope_children(entry) if isinstance(n, Tasklet)]
    out: Dict[str, Memlet] = {}
    for t in tasklets:
        edges = [
            d["memlet"]
            for _, _, d in list(st.in_edges(t)) + list(st.out_edges(t))
            if d.get("memlet") is not None
        ]
        for mem in edges:
            shape = sd.arrays[mem.data].shape
            prop = propagate_memlet(mem, inner, array_shape=shape, hooks=[hook])
            if mem.data in out:
                sub = out[mem.data].subset.cover_union(prop.subset)
                out[mem.data] = Memlet(
                    mem.data, sub, accesses=out[mem.data].accesses + prop.accesses
                )
            else:
                out[mem.data] = prop
    return TileFootprint(out)


def footprint_bytes(
    p: SimulationParameters,
    TE: int,
    TA: int,
    footprint: Optional[TileFootprint] = None,
) -> Dict[str, int]:
    """Concrete per-tile byte requirements for a (TE, TA) decomposition.

    The tiled map is evaluated at an interior tile (``tE = TE//2``,
    ``ta = TA//2``) so that the symbolic ``Min``/``Max`` clamps resolve to
    the generic (halo-carrying) case.
    """
    fp = footprint or derive_sse_footprints()
    env = dict(
        Nkz=p.Nkz, NE=p.NE, Nqz=p.Nqz, Nw=p.Nw, N3D=p.N3D,
        NA=p.NA, NB=p.NB, Norb=p.Norb,
        sE=p.NE // TE, sa=p.NA // TA,
        tE=TE // 2, ta=TA // 2,
    )
    return {name: fp.bytes(name, env) for name in fp.memlets}
