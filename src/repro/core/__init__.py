"""The paper's primary contribution, reproduced.

* :mod:`repro.core.sse_sdfg` — the Σ≷ scattering-self-energy dataflow
  graph of Figs. 5/8 plus a naive reference kernel;
* :mod:`repro.core.recipe` — the §4.2 transformation pipeline
  (Figs. 9-12) with per-stage equivalence verification;
* :mod:`repro.core.distribution` — the §4.1 communication-avoiding
  decomposition: tiled-map memlet propagation and tile-size search.
"""

from .distribution import TileFootprint, derive_sse_footprints, footprint_bytes
from .recipe import (
    RECIPE_SUMMARY,
    SSE_PIPELINE,
    Stage,
    build_stages,
    compile_sse_pipeline,
    run_stage,
    sse_movement_report,
    verify_stage,
)
from .sse_sdfg import (
    build_sse_sigma_sdfg,
    find_map_entry,
    random_sse_inputs,
    sse_sigma_reference,
)

__all__ = [
    "TileFootprint",
    "derive_sse_footprints",
    "footprint_bytes",
    "Stage",
    "SSE_PIPELINE",
    "RECIPE_SUMMARY",
    "build_stages",
    "compile_sse_pipeline",
    "run_stage",
    "sse_movement_report",
    "verify_stage",
    "build_sse_sigma_sdfg",
    "find_map_entry",
    "random_sse_inputs",
    "sse_sigma_reference",
]
