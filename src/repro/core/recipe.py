"""The paper's SSE transformation recipe (Figs. 8 → 12), as a Pipeline.

The §4.2 sequence of data-centric transformations is declared once, as
data: :data:`SSE_PIPELINE` is an ordered list of
:class:`~repro.sdfg.passes.Pass` objects that select their application
sites through each transformation's ``match()`` pattern enumeration —
no graph-node or map-label lookups.  Everything else derives from that
single declaration:

* :data:`RECIPE_SUMMARY` — the (stage, description) table consumed by
  ``repro.api.Plan``;
* :func:`build_stages` — per-stage snapshots of the transformed SDFG;
* :func:`sse_movement_report` — the §4.1 data-movement model, evaluated
  per stage at concrete dimensions;
* :func:`compile_sse_pipeline` — an interpreter-backed callable of the
  final graph, with every stage verified against
  :func:`~repro.core.sse_sdfg.sse_sigma_reference`.

========  =====================================  ==============
Stage     Transformation                         Paper figure
========  =====================================  ==============
fig8      (initial dataflow)                     Fig. 8
fig9      Map Fission (+ ``j``-reduction)        Fig. 9
fig10b    Redundant-computation removal          Fig. 10b
fig10c    Data-layout transformation             Fig. 10c
fig10d    Multiplication fusion (batched GEMM)   Fig. 10d
fig11c    ω-accumulation GEMM substitution       Fig. 11a-c
fig12a    Map Expansion (hoist ``(a, b)``)       §4.2
fig12     Map Fusion                             Fig. 12
fig12s    Transient shrinking                    Fig. 12 (final)
========  =====================================  ==============
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..sdfg import (
    CompiledPipeline,
    ExpandPass,
    FissionPass,
    FusePass,
    IndirectAccess,
    LayoutPass,
    Memlet,
    Pipeline,
    PipelineReport,
    Range,
    RedundancyPass,
    ShrinkPass,
    Stage,
    Tasklet,
    neighbor_indirection_hook,
    symbols,
)
from ..autotune import (
    BatchTemplate,
    MoveLibrary,
    SearchConfig,
    SearchResult,
)
from ..autotune import autotune as _autotune
from ..sdfg import pipeline as _pipeline_mod
from .sse_sdfg import build_sse_sigma_sdfg, sse_sigma_reference

__all__ = [
    "Stage",
    "SSE_PIPELINE",
    "SSE_BATCH_TEMPLATES",
    "RECIPE_SUMMARY",
    "build_stages",
    "compile_sse_pipeline",
    "compiled_sse_kernel",
    "sse_movement_report",
    "sse_move_library",
    "tuned_sse_search",
    "tuned_sse_pipeline",
    "verify_stage",
    "run_stage",
]

_G_PERM = (2, 0, 1, 3, 4)
_SIGMA_PERM = (2, 0, 1, 3, 4)
_TENSOR_PERM = (3, 4, 2, 0, 1, 5, 6)

#: toy dimensions used for interpreter-backed stage verification
VERIFY_DIMS: Dict[str, int] = dict(
    Nkz=3, NE=4, Nqz=2, Nw=2, N3D=2, NA=5, NB=3, Norb=2
)


def _batched_dhg_code(g, h):
    No = h.shape[-1]
    return {"gh": (g.reshape(-1, No) @ h).reshape(g.shape)}


def _batched_dhg_flops(g, h):
    return 8 * g.shape[0] * g.shape[1] * h.shape[-1] ** 3


def _windowed_sigma_code(gh, hd):
    NE, Nw = gh.shape[0], hd.shape[0]
    idx = (np.arange(NE)[:, None] - np.arange(Nw)[None, :]) % NE
    window = gh[idx]  # (NE, Nw, Norb, Norb)
    return {"out": np.einsum("Ewxy,wyz->Exz", window, hd)}


def _windowed_sigma_flops(gh, hd):
    return 8 * gh.shape[0] * hd.shape[0] * gh.shape[-1] ** 3


def _batched_dhd_code(h, d):
    # dHD[qz, w] = sum_j dH[j] * D[qz, w, j] — the (qz, ω, j) loop nest of
    # the elementwise scaling batched into one contraction per (i, a, b).
    return {"hd": np.einsum("jxy,qwj->qwxy", h, d)}


def _batched_dhd_flops(h, d):
    return 8 * d.shape[0] * d.shape[1] * d.shape[2] * h.shape[-1] ** 2


def _sse_templates() -> Tuple[BatchTemplate, ...]:
    """The SSE batched-operator vocabulary the autotuner may instantiate.

    The first two mirror the hand recipe's fig10d/fig11c substitutions
    (the recipe builds its passes from these same templates); the third,
    ``dhd_contract``, batches the ∇HD≷ scaling over ``(qz, ω, j)`` in one
    move — summing ``j`` *inside* the tasklet removes the write-conflict
    accumulation on ``dHD``, which is what lets the searched pipeline
    fuse without a zero-initializer and beat the hand recipe's modeled
    byte count.
    """
    Nkz, NE, Nqz, Nw, N3D = symbols("Nkz NE Nqz Nw N3D")
    NA, NB, Norb = symbols("NA NB Norb")
    kz, qz, i, a, b = symbols("kz qz i a b")
    orb = (0, Norb - 1, 1)
    f = IndirectAccess("__neigh__", (a, b))

    # Symbolic shapes the template memlets assume (rank gates included):
    # originals for dH and D, the fig10c permuted layouts for the rest.
    dH_layout = (NA, NB, N3D, Norb, Norb)
    D_layout = (Nqz, Nw, NA, NB, N3D, N3D)
    G_layout = (NA, Nkz, NE, Norb, Norb)
    Sigma_layout = (NA, Nkz, NE, Norb, Norb)
    tensor_layout = lambda t4, t5: (NA, NB, N3D, t4, t5, Norb, Norb)

    dhg = BatchTemplate(
        name="dhg_gemm",
        description="Nkz*NE small multiplications fused into one GEMM",
        array="dHG",
        batch_params=("kz", "E"),
        tasklet=Tasklet(
            "dHG_gemm",
            ["g", "h"],
            ["gh"],
            _batched_dhg_code,
            flops=_batched_dhg_flops,
            op="KExy,yz->KExz",
        ),
        in_memlets={
            "g": Memlet(
                "G", Range([(f, f), (0, Nkz - 1), (0, NE - 1), orb, orb])
            ),
            "h": Memlet("dH", Range([(a, a), (b, b), (i, i), orb, orb])),
        },
        out_memlets={
            "gh": Memlet(
                "dHG",
                Range(
                    [
                        (a, a),
                        (b, b),
                        (i, i),
                        (0, Nkz - 1),
                        (0, NE - 1),
                        orb,
                        orb,
                    ]
                ),
            )
        },
        required_layouts={
            "G": G_layout,
            "dH": dH_layout,
            "dHG": tensor_layout(Nkz, NE),
        },
    )
    sigma = BatchTemplate(
        name="sigma_window_gemm",
        description="ω accumulation substituted by a windowed GEMM",
        array="Sigma",
        batch_params=("E", "w"),
        tasklet=Tasklet(
            "sigma_gemm",
            ["gh", "hd"],
            ["out"],
            _windowed_sigma_code,
            flops=_windowed_sigma_flops,
        ),
        in_memlets={
            "gh": Memlet(
                "dHG",
                Range(
                    [
                        (a, a),
                        (b, b),
                        (i, i),
                        (kz - qz, kz - qz),
                        (0, NE - 1),
                        orb,
                        orb,
                    ]
                ),
            ),
            "hd": Memlet(
                "dHD",
                Range(
                    [(a, a), (b, b), (i, i), (qz, qz), (0, Nw - 1), orb, orb]
                ),
            ),
        },
        out_memlets={
            "out": Memlet(
                "Sigma",
                Range([(a, a), (kz, kz), (0, NE - 1), orb, orb]),
                wcr="sum",
            )
        },
        required_layouts={
            "dHG": tensor_layout(Nkz, NE),
            "dHD": tensor_layout(Nqz, Nw),
            "Sigma": Sigma_layout,
        },
    )
    dhd = BatchTemplate(
        name="dhd_contract",
        description="(qz, ω, j) scaling batched into one contraction",
        array="dHD",
        batch_params=("qz", "w", "j"),
        tasklet=Tasklet(
            "dHD_contract",
            ["h", "d"],
            ["hd"],
            _batched_dhd_code,
            flops=_batched_dhd_flops,
        ),
        in_memlets={
            "h": Memlet(
                "dH", Range([(a, a), (b, b), (0, N3D - 1), orb, orb])
            ),
            "d": Memlet(
                "D",
                Range(
                    [
                        (0, Nqz - 1),
                        (0, Nw - 1),
                        (a, a),
                        (b, b),
                        (i, i),
                        (0, N3D - 1),
                    ]
                ),
            ),
        },
        out_memlets={
            # j is consumed inside the contraction: no wcr left on dHD.
            "hd": Memlet(
                "dHD",
                Range(
                    [
                        (a, a),
                        (b, b),
                        (i, i),
                        (0, Nqz - 1),
                        (0, Nw - 1),
                        orb,
                        orb,
                    ]
                ),
            )
        },
        required_layouts={
            "dH": dH_layout,
            "D": D_layout,
            "dHD": tensor_layout(Nqz, Nw),
        },
    )
    return (dhg, sigma, dhd)


#: batched-operator templates shared by the hand recipe and the autotuner
SSE_BATCH_TEMPLATES: Tuple[BatchTemplate, ...] = _sse_templates()


def sse_move_library() -> MoveLibrary:
    """The autotuner move library for the SSE kernel: the batch templates
    above plus the default layout/tile axes of the search space."""
    return MoveLibrary(templates=SSE_BATCH_TEMPLATES)


def _template(name: str) -> BatchTemplate:
    return sse_move_library().template(name)


def _sse_passes() -> List:
    """The Fig. 8 → 12 pass sequence (pure declaration); the two batched
    substitutions are instantiated from :data:`SSE_BATCH_TEMPLATES`."""
    return [
        FissionPass(
            "fig9",
            "Map Fission: one map per computation, expanded transients",
            reduce={"dHD": ["j"]},
        ),
        RedundancyPass(
            "fig10b",
            "(qz, ω) offsets removed from ∇HG≷ producer",
            array="dHG",
            params=("qz", "w"),
        ),
        LayoutPass(
            "fig10c",
            "contiguous (kz, E) layout for G≷, Σ≷ and transients",
            perms={
                "G": _G_PERM,
                "Sigma": _SIGMA_PERM,
                "dHG": _TENSOR_PERM,
                "dHD": _TENSOR_PERM,
            },
        ),
        _template("dhg_gemm").make_pass("fig10d"),
        _template("sigma_window_gemm").make_pass("fig11c"),
        ExpandPass(
            "fig12a", "(a, b) hoisted to outer maps", outer=("a", "b")
        ),
        FusePass(
            "fig12",
            "three scopes fused into a single (a, b) map",
            label="sse_fused",
            params=("a", "b"),
        ),
        ShrinkPass(
            "fig12s",
            "transients shrunk to per-(a, b) blocks",
            arrays=("dHG", "dHD"),
            params=("a", "b"),
        ),
    ]


def _sse_hooks():
    NA, NB = symbols("NA NB")
    return [neighbor_indirection_hook(NA, NB)]


def _sse_reference(arrays, tables):
    return sse_sigma_reference(
        arrays["G"], arrays["dH"], arrays["D"], tables["__neigh__"]
    )


def _sse_inputs(dims, seed: int = 0):
    from .sse_sdfg import random_sse_inputs

    return random_sse_inputs(dims, seed=seed)


#: The Fig. 8 → 12 recipe — THE single declaration everything derives from.
SSE_PIPELINE = Pipeline(
    name="sse_recipe",
    passes=_sse_passes(),
    graph_factory=build_sse_sigma_sdfg,
    initial=("fig8", "initial Σ≷ dataflow"),
    hooks=_sse_hooks,
    make_inputs=_sse_inputs,
    reference=_sse_reference,
)

#: (stage, description) table — *derived* from the pipeline declaration;
#: consumed by ``repro.api.Plan`` and the recipe tests.
RECIPE_SUMMARY: Tuple[Tuple[str, str], ...] = SSE_PIPELINE.summary


def build_stages() -> List[Stage]:
    """Apply the full recipe to a fresh graph; snapshot after every pass."""
    return SSE_PIPELINE.build()


def sse_movement_report(dims: Mapping[str, int]) -> PipelineReport:
    """Per-stage modeled data movement (paper §4.1) at concrete dims."""
    return SSE_PIPELINE.report(dims)


#: the search problem: the untransformed Fig. 8 graph with its hooks,
#: input factory and reference kernel — and *no* recipe knowledge.
SSE_SEARCH_BASE = Pipeline(
    name="sse_search",
    passes=[],
    graph_factory=build_sse_sigma_sdfg,
    initial=("fig8", "initial Σ≷ dataflow"),
    hooks=_sse_hooks,
    make_inputs=_sse_inputs,
    reference=_sse_reference,
)

#: searched results, cached per (dims, resolved search settings)
_TUNED_CACHE: Dict[tuple, SearchResult] = {}


def tuned_sse_search(
    dims: Mapping[str, int],
    strategy: Optional[str] = None,
    beam_width: Optional[int] = None,
    max_moves: Optional[int] = None,
    verify: bool = True,
    trace_path=None,
    library: Optional[MoveLibrary] = None,
) -> SearchResult:
    """Autotune the SSE kernel from the untransformed Fig. 8 graph.

    Runs :func:`repro.autotune.autotune` over :data:`SSE_SEARCH_BASE`
    with :func:`sse_move_library`, minimizing modeled bytes at ``dims``;
    with ``verify`` (default) every stage of the winner is checked
    against :func:`sse_sigma_reference` at :data:`VERIFY_DIMS`.
    ``strategy``/``beam_width``/``max_moves`` default to the
    ``REPRO_AUTOTUNE_*`` knobs; ``library`` (default
    :func:`sse_move_library`) restricts or extends the move space.
    Results are cached per dims and resolved settings (except when
    ``trace_path`` or a custom ``library`` is given — those carry their
    own identity).
    """
    cfg = SearchConfig(
        strategy=strategy,
        beam_width=beam_width,
        max_moves=max_moves,
        verify=verify,
        verify_dims=dict(VERIFY_DIMS),
    ).resolved()
    if library is not None or trace_path is not None:
        return _autotune(
            SSE_SEARCH_BASE,
            library or sse_move_library(),
            dims,
            cfg,
            trace_path,
        )
    key = (
        tuple(sorted(dims.items())),
        cfg.strategy,
        cfg.beam_width,
        cfg.max_moves,
        cfg.escape_depth,
        verify,
    )
    if key not in _TUNED_CACHE:
        _TUNED_CACHE[key] = _autotune(
            SSE_SEARCH_BASE, sse_move_library(), dims, cfg
        )
    return _TUNED_CACHE[key]


def tuned_sse_pipeline(
    dims: Mapping[str, int],
    strategy: Optional[str] = None,
    **kwargs,
) -> Pipeline:
    """The searched SSE pipeline (see :func:`tuned_sse_search`) — the
    autotuned counterpart of :data:`SSE_PIPELINE`, ready for
    ``report``/``compile``."""
    return tuned_sse_search(dims, strategy=strategy, **kwargs).pipeline


def compile_sse_pipeline(
    verify: bool = True,
    seed: int = 0,
    rtol: float = 1e-10,
    atol: float = 1e-10,
    backend: Optional[str] = None,
) -> CompiledPipeline:
    """Compile the recipe into an executable Σ≷ callable.

    ``backend`` selects the execution backend lowering every stage
    (``"numpy"`` generated code / ``"interpreter"``; ``None`` follows
    ``REPRO_SDFG_BACKEND``, default ``numpy``).  With ``verify=True``
    (default), every stage is executed through that backend on random
    :data:`VERIFY_DIMS` inputs and checked against
    :func:`sse_sigma_reference` to the given tolerances.
    """
    return SSE_PIPELINE.compile(
        verify_dims=VERIFY_DIMS if verify else None,
        seed=seed,
        rtol=rtol,
        atol=atol,
        backend=backend,
    )


#: final-stage (fig12s) runners, cached per resolved backend name
_SSE_KERNELS: Dict[str, object] = {}


def compiled_sse_kernel(backend: Optional[str] = None):
    """The fig12s Σ≷ runner for one execution backend, compiled once.

    Unlike :func:`compile_sse_pipeline`, only the *final* stage is
    lowered — the production path (``sigma_sse(variant="sdfg")``) and
    the session cross-checks never execute the intermediate snapshots.
    Returns a callable ``(dims, arrays, tables) -> Sigma`` in the
    original ``[kz, E, a]`` layout; cached per resolved backend name.
    """
    from ..sdfg.backends import default_backend, get_backend
    from ..telemetry import metrics as _metrics
    from ..telemetry.spans import metrics_enabled, trace

    name = backend or default_backend()
    if name not in _SSE_KERNELS:
        stage = SSE_PIPELINE.stages()[-1]
        runner = get_backend(name).compile_stage(stage)

        def kernel(dims, arrays, tables=None, _runner=runner, _name=name):
            with trace("backend.execute", backend=_name, stage=stage.name):
                result, executed = _runner(dims, arrays, tables)
            if metrics_enabled():
                report = executed.report
                _metrics.add("backend.flops", int(report.flops))
                _metrics.add(
                    "backend.element_reads", int(report.element_reads)
                )
                _metrics.add(
                    "backend.element_writes", int(report.element_writes)
                )
            return result

        _SSE_KERNELS[name] = kernel
    return _SSE_KERNELS[name]


def run_stage(
    stage: Stage,
    dims: Dict[str, int],
    arrays: Dict[str, np.ndarray],
    tables: Dict[str, np.ndarray],
    backend: str = "interpreter",
):
    """Execute one stage; returns Σ≷ in the *original* [kz, E, a] layout
    together with an execution-report carrier (see
    :func:`repro.sdfg.pipeline.run_stage`)."""
    return _pipeline_mod.run_stage(stage, dims, arrays, tables, backend)


def verify_stage(
    stage: Stage,
    dims: Dict[str, int],
    arrays: Dict[str, np.ndarray],
    tables: Dict[str, np.ndarray],
    reference: Optional[np.ndarray] = None,
    rtol: float = 1e-10,
    atol: float = 1e-10,
) -> float:
    """Compare a stage against the naive reference; returns the max error."""
    if reference is None:
        reference = sse_sigma_reference(
            arrays["G"], arrays["dH"], arrays["D"], tables["__neigh__"]
        )
    return _pipeline_mod.verify_stage(
        stage, dims, arrays, tables, reference, rtol=rtol, atol=atol
    )
