"""The paper's SSE transformation recipe (Figs. 8 → 12).

Applies, in order, the data-centric transformations of §4.2 to the Σ≷
SDFG, snapshotting the graph after every step:

========  =====================================  ==============
Stage     Transformation                         Paper figure
========  =====================================  ==============
fig8      (initial dataflow)                     Fig. 8
fig9      Map Fission (+ ``j``-reduction)        Fig. 9
fig10b    Redundant-computation removal          Fig. 10b
fig10c    Data-layout transformation             Fig. 10c
fig10d    Multiplication fusion (batched GEMM)   Fig. 10d
fig11c    ω-accumulation GEMM substitution       Fig. 11a-c
fig12a    Map Expansion (hoist ``(a, b)``)       §4.2
fig12     Map Fusion                             Fig. 12
fig12s    Transient shrinking                    Fig. 12 (final)
========  =====================================  ==============

Every stage is independently executable through the SDFG interpreter;
:func:`verify_stage` checks bit-level agreement (up to float tolerance)
with the naive reference kernel.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..sdfg import SDFG, IndirectAccess, Memlet, Range, Tasklet, symbols
from ..sdfg.interpreter import Interpreter
from ..sdfg.transformations import (
    ArrayShrink,
    BatchedOperationSubstitution,
    DataLayoutTransformation,
    MapExpansion,
    MapFission,
    MapFusion,
    apply_layout,
)
from ..sdfg.transformations.redundancy import RedundantComputationRemoval
from .sse_sdfg import build_sse_sigma_sdfg, find_map_entry, sse_sigma_reference

__all__ = [
    "Stage",
    "RECIPE_SUMMARY",
    "build_stages",
    "verify_stage",
    "run_stage",
]

#: The recipe's (stage name, description) table — the single source used
#: by :func:`build_stages` snapshots and by ``repro.api.Plan`` to report
#: which SSE transformations a planned ``sse_variant="dace"`` run applies.
RECIPE_SUMMARY: Tuple[Tuple[str, str], ...] = (
    ("fig8", "initial Σ≷ dataflow"),
    ("fig9", "Map Fission: one map per computation, expanded transients"),
    ("fig10b", "(qz, ω) offsets removed from ∇HG≷ producer"),
    ("fig10c", "contiguous (kz, E) layout for G≷, Σ≷ and transients"),
    ("fig10d", "Nkz*NE small multiplications fused into one GEMM"),
    ("fig11c", "ω accumulation substituted by a windowed GEMM"),
    ("fig12a", "(a, b) hoisted to outer maps"),
    ("fig12", "three scopes fused into a single (a, b) map"),
    ("fig12s", "transients shrunk to per-(a, b) blocks"),
)

_RECIPE_DESCRIPTIONS = dict(RECIPE_SUMMARY)

_G_PERM = (2, 0, 1, 3, 4)
_SIGMA_PERM = (2, 0, 1, 3, 4)
_TENSOR_PERM = (3, 4, 2, 0, 1, 5, 6)


@dataclass
class Stage:
    """A snapshot of the SSE SDFG after one transformation step."""

    name: str
    description: str
    sdfg: SDFG
    input_perms: Dict[str, Tuple[int, ...]] = field(default_factory=dict)
    output_perm: Optional[Tuple[int, ...]] = None

    def __repr__(self) -> str:
        return f"Stage({self.name}: {self.description})"


def _batched_dhg_code(g, h):
    No = h.shape[-1]
    return {"gh": (g.reshape(-1, No) @ h).reshape(g.shape)}


def _batched_dhg_flops(g, h):
    return 8 * g.shape[0] * g.shape[1] * h.shape[-1] ** 3


def _windowed_sigma_code(gh, hd):
    NE, Nw = gh.shape[0], hd.shape[0]
    idx = (np.arange(NE)[:, None] - np.arange(Nw)[None, :]) % NE
    window = gh[idx]  # (NE, Nw, Norb, Norb)
    return {"out": np.einsum("Ewxy,wyz->Exz", window, hd)}


def _windowed_sigma_flops(gh, hd):
    return 8 * gh.shape[0] * hd.shape[0] * gh.shape[-1] ** 3


def build_stages() -> List[Stage]:
    """Apply the full recipe, returning a snapshot after every step."""
    Nkz, NE, Nqz, Nw, N3D, NA, NB, Norb = symbols("Nkz NE Nqz Nw N3D NA NB Norb")
    kz, qz, i, a, b = symbols("kz qz i a b")
    orb = (0, Norb - 1, 1)

    stages: List[Stage] = []
    sd = build_sse_sigma_sdfg()
    layout: Dict[str, Tuple[int, ...]] = {}
    out_perm: Optional[Tuple[int, ...]] = None

    def snap(name: str):
        stages.append(
            Stage(
                name,
                _RECIPE_DESCRIPTIONS[name],
                copy.deepcopy(sd),
                dict(layout),
                out_perm,
            )
        )

    snap("fig8")
    st = sd.states[0]

    # -- Fig. 9: Map Fission ------------------------------------------------
    MapFission(
        find_map_entry(st, "sse"), reduce={"dHD": ["j"]}
    ).apply_checked(sd, st)
    snap("fig9")

    # -- Fig. 10b: redundancy removal ----------------------------------------
    RedundantComputationRemoval(
        find_map_entry(st, "dHG_mult"), "dHG", ["qz", "w"]
    ).apply_checked(sd, st)
    snap("fig10b")

    # -- Fig. 10c: data layout -----------------------------------------------
    DataLayoutTransformation("G", _G_PERM).apply_checked(sd, st)
    DataLayoutTransformation("Sigma", _SIGMA_PERM).apply_checked(sd, st)
    DataLayoutTransformation("dHG", _TENSOR_PERM).apply_checked(sd, st)
    DataLayoutTransformation("dHD", _TENSOR_PERM).apply_checked(sd, st)
    layout = {"G": _G_PERM}
    out_perm = _SIGMA_PERM
    snap("fig10c")

    # -- Fig. 10d: multiplication fusion (batched GEMM over kz, E) -----------
    f = IndirectAccess("__neigh__", (a, b))
    t1b = Tasklet(
        "dHG_gemm",
        ["g", "h"],
        ["gh"],
        _batched_dhg_code,
        flops=_batched_dhg_flops,
    )
    BatchedOperationSubstitution(
        find_map_entry(st, "dHG_mult"),
        ["kz", "E"],
        t1b,
        in_memlets={
            "g": Memlet("G", Range([(f, f), (0, Nkz - 1), (0, NE - 1), orb, orb])),
            "h": Memlet("dH", Range([(a, a), (b, b), (i, i), orb, orb])),
        },
        out_memlets={
            "gh": Memlet(
                "dHG",
                Range(
                    [(a, a), (b, b), (i, i), (0, Nkz - 1), (0, NE - 1), orb, orb]
                ),
            )
        },
    ).apply_checked(sd, st)
    snap("fig10d")

    # -- Fig. 11: ω-accumulation as GEMM ---------------------------------------
    t3b = Tasklet(
        "sigma_gemm",
        ["gh", "hd"],
        ["out"],
        _windowed_sigma_code,
        flops=_windowed_sigma_flops,
    )
    BatchedOperationSubstitution(
        find_map_entry(st, "sigma_acc"),
        ["E", "w"],
        t3b,
        in_memlets={
            "gh": Memlet(
                "dHG",
                Range(
                    [(a, a), (b, b), (i, i), (kz - qz, kz - qz), (0, NE - 1), orb, orb]
                ),
            ),
            "hd": Memlet(
                "dHD",
                Range([(a, a), (b, b), (i, i), (qz, qz), (0, Nw - 1), orb, orb]),
            ),
        },
        out_memlets={
            "out": Memlet(
                "Sigma",
                Range([(a, a), (kz, kz), (0, NE - 1), orb, orb]),
                wcr="sum",
            )
        },
    ).apply_checked(sd, st)
    snap("fig11c")

    # -- §4.2: hoist (a, b) and fuse -------------------------------------------
    for label in ("dHG_mult", "dHD_scale", "sigma_acc"):
        MapExpansion(find_map_entry(st, label), ["a", "b"]).apply_checked(sd, st)
    snap("fig12a")

    MapFusion(
        [
            find_map_entry(st, "dHG_mult", top_level=True),
            find_map_entry(st, "dHD_scale", top_level=True),
            find_map_entry(st, "sigma_acc", top_level=True),
        ],
        label="sse_fused",
    ).apply_checked(sd, st)
    snap("fig12")

    ArrayShrink("dHG", [0, 1], ["a", "b"]).apply_checked(sd, st)
    ArrayShrink("dHD", [0, 1], ["a", "b"]).apply_checked(sd, st)
    snap("fig12s")

    return stages


def run_stage(
    stage: Stage,
    dims: Dict[str, int],
    arrays: Dict[str, np.ndarray],
    tables: Dict[str, np.ndarray],
) -> Tuple[np.ndarray, Interpreter]:
    """Execute one stage; returns Σ≷ in the *original* [kz, E, a] layout."""
    inputs = apply_layout(
        {k: v for k, v in arrays.items() if k in ("G", "dH", "D")},
        stage.input_perms,
    )
    interp = Interpreter(stage.sdfg)
    store = interp.run(dims, inputs, tables=tables)
    sigma = store["Sigma"]
    if stage.output_perm is not None:
        inv = np.argsort(stage.output_perm)
        sigma = np.transpose(sigma, inv)
    return sigma, interp


def verify_stage(
    stage: Stage,
    dims: Dict[str, int],
    arrays: Dict[str, np.ndarray],
    tables: Dict[str, np.ndarray],
    reference: Optional[np.ndarray] = None,
    rtol: float = 1e-10,
    atol: float = 1e-10,
) -> float:
    """Compare a stage against the naive reference; returns the max error."""
    if reference is None:
        reference = sse_sigma_reference(
            arrays["G"], arrays["dH"], arrays["D"], tables["__neigh__"]
        )
    sigma, _ = run_stage(stage, dims, arrays, tables)
    err = float(np.max(np.abs(sigma - reference)))
    if not np.allclose(sigma, reference, rtol=rtol, atol=atol):
        raise AssertionError(f"stage {stage.name!r} deviates: max err {err:.3e}")
    return err
