"""Service health introspection over ``SchedulerService.stats()``.

The scheduler's :meth:`~repro.service.SchedulerService.stats` is a raw
(JSON-serializable) dict; this module turns it into an operational
verdict:

* queue depth and queue-latency percentiles (p50/p95/max, from the
  scheduler's bounded latency reservoir) against thresholds;
* per-pool utilization — committed modeled flops vs the pool's
  Table-3-priced capacity — plus the fleet aggregate;
* failure and cache counters, per-tenant job breakdowns;
* one :func:`service_health` verdict: ``ok`` or ``degraded`` with the
  reasons spelled out.

Works from a live :class:`~repro.service.SchedulerService` *or* from a
previously serialized stats dict (``python -m repro.observe health
stats.json``), so the verdict can run out-of-process.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["HealthReport", "service_health", "tenant_breakdown"]

#: default thresholds; any can be overridden per call
DEFAULT_THRESHOLDS: Dict[str, float] = {
    "max_queued": 100,  # jobs sitting unprocessed
    "max_latency_p95_s": 60.0,  # queue latency tail
    "max_failed_fraction": 0.0,  # any failure degrades by default
    "max_pool_utilization": 1.0,  # committed flops vs modeled capacity
}


@dataclass
class HealthReport:
    """The verdict plus everything it was derived from."""

    status: str  # "ok" | "degraded"
    reasons: List[str]
    details: Dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "status": self.status,
            "reasons": list(self.reasons),
            "details": dict(self.details),
        }

    def to_markdown(self) -> str:
        lines = ["## Service health", "",
                 f"- verdict: **{self.status.upper()}**"]
        for reason in self.reasons:
            lines.append(f"  - {reason}")
        d = self.details
        lat = d.get("queue_latency_s") or {}
        lines.append(
            f"- queue: depth {d.get('queued', 0)}, latency "
            f"p50 {_fmt(lat.get('p50'))} / p95 {_fmt(lat.get('p95'))} / "
            f"max {_fmt(lat.get('max'))} s over {lat.get('count', 0)} jobs"
        )
        lines.append(
            f"- jobs: {d.get('jobs', {})}, cache: {d.get('cache', {})}"
        )
        pools = d.get("pools", [])
        if pools:
            lines += ["", "| pool | utilization | committed flops "
                      "| capacity flops | jobs |", "|---|---:|---:|---:|---:|"]
            for p in pools:
                lines.append(
                    f"| {p['pool_id']} | {100 * p['utilization']:.1f}% "
                    f"| {p['committed_flops']:.3e} "
                    f"| {p['capacity_flops']:.3e} | {len(p['jobs'])} |"
                )
        tenants = d.get("tenants", {})
        if tenants:
            lines += ["", "| tenant | jobs | done | cached | failed |",
                      "|---|---:|---:|---:|---:|"]
            for tenant, t in sorted(tenants.items()):
                lines.append(
                    f"| {tenant} | {t['jobs']} | {t['done']} "
                    f"| {t['cached']} | {t['failed']} |"
                )
        return "\n".join(lines)


def _fmt(v: Optional[float]) -> str:
    return "—" if v is None else f"{v:.4f}"


def tenant_breakdown(jobs) -> Dict[str, Dict[str, int]]:
    """Per-tenant job/cache counters from a job list (live service)."""
    out: Dict[str, Dict[str, int]] = {}
    for job in jobs:
        t = out.setdefault(
            job.tenant, {"jobs": 0, "done": 0, "cached": 0, "failed": 0}
        )
        t["jobs"] += 1
        if job.state == "DONE":
            t["done"] += 1
        elif job.state == "CACHED":
            t["cached"] += 1
        elif job.state == "FAILED":
            t["failed"] += 1
    return out


def service_health(
    stats: Optional[Dict[str, Any]] = None,
    service=None,
    **thresholds: float,
) -> HealthReport:
    """The single ok/degraded verdict with reasons.

    Pass a live ``service`` (preferred — adds per-tenant counters from
    the job list when the stats block lacks them) or a serialized
    ``stats`` dict.  Thresholds default to :data:`DEFAULT_THRESHOLDS`.
    """
    if stats is None:
        if service is None:
            raise ValueError("service_health needs stats=... or service=...")
        stats = service.stats()
    limits = {**DEFAULT_THRESHOLDS, **thresholds}
    reasons: List[str] = []

    # queue depth + latency tail
    queued = stats.get("queued", 0)
    if queued > limits["max_queued"]:
        reasons.append(
            f"queue depth {queued} exceeds {limits['max_queued']:.0f}"
        )
    latency = stats.get("queue_latency_s") or {}
    p95 = latency.get("p95")
    if p95 is not None and p95 > limits["max_latency_p95_s"]:
        reasons.append(
            f"queue latency p95 {p95:.3f}s exceeds "
            f"{limits['max_latency_p95_s']:.1f}s"
        )

    # failures
    jobs = stats.get("jobs", {})
    total = sum(jobs.values())
    failed = jobs.get("FAILED", 0)
    if total and failed / total > limits["max_failed_fraction"]:
        reasons.append(f"{failed}/{total} jobs FAILED")

    # pool utilization vs modeled-flop capacity
    pools = []
    for p in stats.get("pools", []):
        capacity = p.get("capacity_flops") or 0.0
        committed = p.get("committed_flops") or 0.0
        utilization = (committed / capacity) if capacity else 0.0
        pools.append({**p, "utilization": utilization})
        if utilization > limits["max_pool_utilization"]:
            reasons.append(
                f"pool {p.get('pool_id')} overcommitted: "
                f"{100 * utilization:.0f}% of modeled capacity "
                f"(oversize admission)"
            )

    tenants = stats.get("tenants")
    if tenants is None and service is not None:
        tenants = tenant_breakdown(service.jobs())

    details = dict(stats)
    details["pools"] = pools
    if tenants is not None:
        details["tenants"] = tenants
    details["thresholds"] = limits
    return HealthReport(
        status="degraded" if reasons else "ok",
        reasons=reasons,
        details=details,
    )
