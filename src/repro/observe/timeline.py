"""Per-rank timeline analysis of distributed-runtime traces.

Reconstructs what each rank *did* from the Chrome-trace events the
telemetry layer exports (:func:`repro.telemetry.export.chrome_trace_events`
or a saved ``.trace.json``): the driver's phase windows
(``runtime.solve_gf`` / ``runtime.sse_exchange`` /
``runtime.residual_allreduce`` / ``runtime.gather``) intersected with
every rank track's measured busy (``runtime.exec`` + nested rank spans)
and idle (``runtime.wait``) intervals.  Both transports produce the same
span vocabulary, so one analysis covers the in-process ``sim`` ranks and
the forked ``pipe`` ranks alike.

Derived quantities (all clipped to the ``runtime.run`` wall window):

* **phase breakdown** — window seconds and per-rank busy/wait per phase;
* **load-imbalance factor** — max over ranks of busy time divided by the
  mean (1.0 = perfectly balanced, the Fig. 13 scaling ideal);
* **idle fractions** — measured ``runtime.wait`` seconds per rank over
  the wall (instrumented at the transport blocking points, not inferred
  by subtraction — the two are asserted to agree in the tests);
* **critical path** — per phase window the slowest rank's busy time
  (driver-only windows and unphased driver gaps count whole), summed: a
  lower bound on the wall achievable with perfect intra-phase overlap;
* **overlap headroom** — how much of the SSE-exchange wall time could be
  hidden by posting phonon-row exchanges during the electron solves:
  ``min(T_exchange, min_r idle_r(solve windows))`` — the quantitative
  input for the ROADMAP's async-runtime item;
* **per-phase comm** — the per-rank §4.1 byte accounting the runtime
  attaches to each phase span (``attrs["comm"]``), re-summed from the
  trace; :func:`repro.telemetry.drift.comm_drift` accepts the result via
  its ``last_comm`` override, closing the trace → model loop.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..parallel.simmpi import CommStats

__all__ = [
    "PHASES",
    "TimelineAnalysis",
    "analyze_events",
    "analyze_tracer",
    "analyze_trace_file",
]

#: driver phase spans, in loop order; short names key the comm accounting
PHASES: Dict[str, str] = {
    "runtime.solve_gf": "solve_gf",
    "runtime.sse_exchange": "sse",
    "runtime.residual_allreduce": "residual",
    "runtime.gather": "gather",
}

_RANK_TRACK = re.compile(r"^rank (\d+)$")

Interval = Tuple[float, float]  # (start_us, end_us)


def _merge(intervals: List[Interval]) -> List[Interval]:
    """Union of intervals (handles the nested exec/rank span double cover)."""
    out: List[Interval] = []
    for start, end in sorted(intervals):
        if end <= start:
            continue
        if out and start <= out[-1][1]:
            out[-1] = (out[-1][0], max(out[-1][1], end))
        else:
            out.append((start, end))
    return out


def _clip(intervals: Sequence[Interval], window: Interval) -> List[Interval]:
    lo, hi = window
    return [
        (max(s, lo), min(e, hi))
        for s, e in intervals
        if min(e, hi) > max(s, lo)
    ]


def _total_us(intervals: Sequence[Interval]) -> float:
    return sum(e - s for s, e in intervals)


@dataclass
class RankActivity:
    """One rank's measured intervals, already merged and wall-clipped."""

    rank: int
    busy: List[Interval] = field(default_factory=list)
    wait: List[Interval] = field(default_factory=list)
    by_method_us: Dict[str, float] = field(default_factory=dict)

    @property
    def busy_us(self) -> float:
        return _total_us(self.busy)

    @property
    def wait_us(self) -> float:
        return _total_us(self.wait)


@dataclass
class TimelineAnalysis:
    """The reconstructed run: wall, phases, ranks, and derived metrics."""

    wall_s: float
    run_args: Dict[str, Any]
    #: per phase short name: seconds / window count / per-rank busy+wait
    phases: Dict[str, Dict[str, Any]]
    #: per rank: busy/wait seconds, coverage, idle fraction, method split
    ranks: Dict[int, Dict[str, Any]]
    imbalance_factor: Optional[float]
    critical_path_s: float
    overlap: Dict[str, Any]
    #: per-phase per-rank byte accounting re-summed from the phase spans
    comm: Dict[str, Dict[str, List[int]]]

    def comm_stats(self) -> Dict[str, CommStats]:
        """The re-derived accounting in the shape ``drift.comm_drift``
        accepts as its ``last_comm`` override."""
        return {
            phase: CommStats.from_dict(d) for phase, d in self.comm.items()
        }

    def to_dict(self) -> Dict[str, Any]:
        return {
            "wall_s": self.wall_s,
            "run_args": dict(self.run_args),
            "phases": {k: dict(v) for k, v in self.phases.items()},
            "ranks": {str(r): dict(v) for r, v in self.ranks.items()},
            "imbalance_factor": self.imbalance_factor,
            "critical_path_s": self.critical_path_s,
            "overlap": dict(self.overlap),
            "comm": {k: dict(v) for k, v in self.comm.items()},
        }

    def to_markdown(self) -> str:
        """A human-readable observatory report (the CLI's output)."""
        lines = ["## Timeline analysis", ""]
        args = ", ".join(f"{k}={v}" for k, v in sorted(self.run_args.items()))
        lines.append(f"- wall: **{self.wall_s:.4f} s** ({args})")
        if self.imbalance_factor is not None:
            lines.append(
                f"- load-imbalance factor (max/mean busy): "
                f"**{self.imbalance_factor:.3f}**"
            )
        lines.append(f"- critical path: **{self.critical_path_s:.4f} s** "
                     f"({100 * self.critical_path_s / self.wall_s:.1f}% of wall)"
                     if self.wall_s else "- critical path: n/a")
        ov = self.overlap
        if ov.get("headroom_s") is not None:
            lines.append(
                f"- overlap headroom: **{ov['headroom_s']:.4f} s** "
                f"({100 * ov['headroom_fraction']:.1f}% of wall) — exchange "
                f"time hideable under the electron solves"
            )
        lines += ["", "| phase | windows | seconds | % wall |",
                  "|---|---:|---:|---:|"]
        for name, ph in self.phases.items():
            pct = 100 * ph["seconds"] / self.wall_s if self.wall_s else 0.0
            lines.append(
                f"| {name} | {ph['windows']} | {ph['seconds']:.4f} "
                f"| {pct:.1f}% |"
            )
        if self.ranks:
            lines += ["", "| rank | busy s | wait s | idle frac | coverage |",
                      "|---:|---:|---:|---:|---:|"]
            for r, info in sorted(self.ranks.items()):
                lines.append(
                    f"| {r} | {info['busy_s']:.4f} | {info['wait_s']:.4f} "
                    f"| {info['idle_fraction']:.3f} "
                    f"| {info['coverage']:.3f} |"
                )
        if self.comm:
            lines += ["", "| phase | bytes (sum over ranks) | messages |",
                      "|---|---:|---:|"]
            for phase, d in self.comm.items():
                lines.append(
                    f"| {phase} | {sum(d['sent_bytes'])} "
                    f"| {sum(d['messages'])} |"
                )
        return "\n".join(lines)


def _tracks(events: Sequence[Dict[str, Any]]) -> Dict[int, str]:
    """pid → track name, from the ``process_name`` metadata events."""
    return {
        ev["pid"]: ev["args"]["name"]
        for ev in events
        if ev.get("ph") == "M" and ev.get("name") == "process_name"
    }


def _accumulate_comm(
    acc: Dict[str, Dict[str, List[int]]], phase: str, comm: Dict[str, Any]
) -> None:
    stats = CommStats.from_dict(comm)
    if phase in acc:
        stats = CommStats.from_dict(acc[phase]) + stats
    acc[phase] = stats.to_dict()


def analyze_events(
    events: Sequence[Dict[str, Any]], run: int = -1
) -> TimelineAnalysis:
    """Analyze one ``runtime.run`` window of a Chrome-trace event array.

    ``run`` indexes the run windows found on the driver track (a resident
    runtime traces one per sweep point); the default is the last.
    """
    tracks = _tracks(events)
    spans = [ev for ev in events if ev.get("ph") == "X"]
    by_track: Dict[str, List[Dict[str, Any]]] = {}
    for ev in spans:
        by_track.setdefault(tracks.get(ev["pid"], "main"), []).append(ev)

    runs = sorted(
        (ev for ev in by_track.get("main", ()) if ev["name"] == "runtime.run"),
        key=lambda ev: ev["ts"],
    )
    if not runs:
        raise ValueError(
            "no 'runtime.run' span in the trace — the timeline analysis "
            "needs a distributed run recorded with REPRO_TELEMETRY=spans "
            "or full"
        )
    run_ev = runs[run]
    wall: Interval = (run_ev["ts"], run_ev["ts"] + run_ev["dur"])
    wall_us = wall[1] - wall[0]

    # -- driver phase windows (+ the attached per-phase comm accounting) ----
    windows: List[Tuple[str, Interval]] = []
    comm: Dict[str, Dict[str, List[int]]] = {}
    for ev in by_track.get("main", ()):
        short = PHASES.get(ev["name"])
        if short is None:
            continue
        iv = _clip([(ev["ts"], ev["ts"] + ev["dur"])], wall)
        if not iv:
            continue
        windows.append((short, iv[0]))
        if isinstance(ev.get("args"), dict) and "comm" in ev["args"]:
            _accumulate_comm(comm, short, ev["args"]["comm"])
    windows.sort(key=lambda w: w[1][0])

    # -- rank activity ------------------------------------------------------
    activities: Dict[int, RankActivity] = {}
    for track, track_events in by_track.items():
        m = _RANK_TRACK.match(track)
        if not m:
            continue
        act = activities.setdefault(int(m.group(1)), RankActivity(int(m.group(1))))
        for ev in track_events:
            iv = _clip([(ev["ts"], ev["ts"] + ev["dur"])], wall)
            if not iv:
                continue
            if ev["name"] == "runtime.wait":
                act.wait.extend(iv)
            else:
                act.busy.extend(iv)
                if ev["name"] == "runtime.exec":
                    method = ev.get("args", {}).get("method", "?")
                    act.by_method_us[method] = (
                        act.by_method_us.get(method, 0.0) + _total_us(iv)
                    )
    for act in activities.values():
        act.busy = _merge(act.busy)
        act.wait = _merge(act.wait)

    # -- phase breakdown ----------------------------------------------------
    phases: Dict[str, Dict[str, Any]] = {}
    busy_in_window: List[float] = []  # per window: slowest rank's busy (µs)
    for short, iv in windows:
        ph = phases.setdefault(
            short, {"seconds": 0.0, "windows": 0, "busy_s": {}, "wait_s": {}}
        )
        ph["seconds"] += (iv[1] - iv[0]) / 1e6
        ph["windows"] += 1
        worst = 0.0
        for rank, act in activities.items():
            b = _total_us(_clip(act.busy, iv))
            w = _total_us(_clip(act.wait, iv))
            ph["busy_s"][rank] = ph["busy_s"].get(rank, 0.0) + b / 1e6
            ph["wait_s"][rank] = ph["wait_s"].get(rank, 0.0) + w / 1e6
            worst = max(worst, b)
        busy_in_window.append(worst if worst > 0.0 else iv[1] - iv[0])
    for ph in phases.values():
        ph["busy_s"] = {r: ph["busy_s"][r] for r in sorted(ph["busy_s"])}
        ph["wait_s"] = {r: ph["wait_s"][r] for r in sorted(ph["wait_s"])}

    # -- per-rank summary + imbalance --------------------------------------
    ranks: Dict[int, Dict[str, Any]] = {}
    for rank in sorted(activities):
        act = activities[rank]
        ranks[rank] = {
            "busy_s": act.busy_us / 1e6,
            "wait_s": act.wait_us / 1e6,
            "idle_fraction": act.wait_us / wall_us if wall_us else 0.0,
            "coverage": (
                (act.busy_us + act.wait_us) / wall_us if wall_us else 0.0
            ),
            "by_method_s": {
                k: v / 1e6 for k, v in sorted(act.by_method_us.items())
            },
        }
    busies = [info["busy_s"] for info in ranks.values()]
    imbalance = None
    if busies and sum(busies) > 0:
        imbalance = max(busies) / (sum(busies) / len(busies))

    # -- critical path ------------------------------------------------------
    # per phase window the slowest rank's busy time; driver-only windows
    # and the unphased driver remainder count whole.  >= max_r busy_r by
    # construction (sum of per-window maxima >= max of per-window sums).
    windows_us = sum(iv[1] - iv[0] for _, iv in windows)
    critical_us = sum(busy_in_window) + max(wall_us - windows_us, 0.0)

    # -- overlap headroom ---------------------------------------------------
    solve_windows = [iv for short, iv in windows if short == "solve_gf"]
    exchange_us = sum(
        iv[1] - iv[0] for short, iv in windows if short == "sse"
    )
    headroom_s = headroom_fraction = None
    idle_in_solve: Dict[int, float] = {}
    if activities and solve_windows:
        for rank, act in activities.items():
            idle_in_solve[rank] = sum(
                _total_us(_clip(act.wait, iv)) for iv in solve_windows
            )
        hideable_us = min(exchange_us, min(idle_in_solve.values()))
        headroom_s = hideable_us / 1e6
        headroom_fraction = hideable_us / wall_us if wall_us else 0.0

    return TimelineAnalysis(
        wall_s=wall_us / 1e6,
        run_args=dict(run_ev.get("args", {})),
        phases=phases,
        ranks=ranks,
        imbalance_factor=imbalance,
        critical_path_s=critical_us / 1e6,
        overlap={
            "exchange_s": exchange_us / 1e6,
            "idle_in_solve_s": {
                r: v / 1e6 for r, v in sorted(idle_in_solve.items())
            },
            "headroom_s": headroom_s,
            "headroom_fraction": headroom_fraction,
        },
        comm=comm,
    )


def analyze_tracer(tracer=None, run: int = -1) -> TimelineAnalysis:
    """Analyze the (global) tracer's currently recorded spans in place."""
    from ..telemetry.export import chrome_trace_events

    return analyze_events(chrome_trace_events(tracer), run=run)


def analyze_trace_file(path, run: int = -1) -> TimelineAnalysis:
    """Analyze a saved ``.trace.json`` (the ``save_trace`` format)."""
    with open(path) as fh:
        return analyze_events(json.load(fh), run=run)
