"""``python -m repro.observe`` — render telemetry into markdown reports.

Subcommands:

* ``trace FILE.trace.json`` — timeline analysis of a saved trace
  (phase breakdown, imbalance, idle fractions, overlap headroom);
* ``ledger`` — distill ``BENCH_*.json`` records into a ledger entry,
  optionally append it to the history, compare against a committed
  baseline, and gate (non-zero exit on regression) — the CI step;
* ``health STATS.json`` — the ok/degraded service verdict from a
  serialized ``SchedulerService.stats()`` dump.

Every subcommand prints markdown; ``--out`` also writes it to a file
(the CI artifact).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .health import service_health
from .ledger import Ledger, compare_entries, load_bench_records, make_entry
from .timeline import analyze_trace_file


def _emit(markdown: str, out: str | None) -> None:
    print(markdown)
    if out:
        Path(out).write_text(markdown + "\n")


def _cmd_trace(args) -> int:
    analysis = analyze_trace_file(args.trace, run=args.run)
    if args.json:
        _emit(json.dumps(analysis.to_dict(), indent=2), args.out)
    else:
        _emit(analysis.to_markdown(), args.out)
    return 0


def _cmd_ledger(args) -> int:
    records = load_bench_records(args.bench_dir)
    if not records:
        print(f"no BENCH_*.json records under {args.bench_dir}",
              file=sys.stderr)
        return 2
    entry = make_entry(records, fast=args.fast, note=args.note)
    sections = []

    if args.update_baseline:
        Path(args.update_baseline).write_text(
            json.dumps(entry, indent=2) + "\n"
        )
        sections.append(
            f"- baseline updated: `{args.update_baseline}` "
            f"({sum(len(m) for m in entry['metrics'].values())} metrics "
            f"from {len(records)} benchmarks)"
        )

    if args.append:
        ledger = Ledger.load(args.append)
        ledger.append(entry)
        ledger.save()
        sections.append(
            f"- ledger `{args.append}`: {len(ledger.entries)} entries"
        )

    failed = False
    if args.baseline:
        with open(args.baseline) as fh:
            baseline = json.load(fh)
        report = compare_entries(entry, baseline)
        sections.append(report.to_markdown())
        failed = args.gate and not report.passed

    if not sections:  # plain distillation
        sections.append("```json\n" + json.dumps(entry, indent=2) + "\n```")
    _emit("\n\n".join(sections), args.out)
    return 1 if failed else 0


def _cmd_health(args) -> int:
    with open(args.stats) as fh:
        stats = json.load(fh)
    report = service_health(stats=stats)
    _emit(report.to_markdown(), args.out)
    if args.gate and not report.ok:
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.observe",
        description="performance-observatory reports over recorded telemetry",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("trace", help="timeline analysis of a .trace.json")
    p.add_argument("trace", help="trace file (save_trace format)")
    p.add_argument("--run", type=int, default=-1,
                   help="which runtime.run window (default: last)")
    p.add_argument("--json", action="store_true",
                   help="emit the raw analysis dict instead of markdown")
    p.add_argument("--out", help="also write the report to this file")
    p.set_defaults(fn=_cmd_trace)

    p = sub.add_parser("ledger", help="benchmark regression ledger / gate")
    p.add_argument("--bench-dir", default="benchmarks",
                   help="directory holding BENCH_*.json records")
    p.add_argument("--fast", action="store_true",
                   help="records come from a REPRO_BENCH_FAST run")
    p.add_argument("--baseline",
                   help="baseline entry JSON to compare against")
    p.add_argument("--gate", action="store_true",
                   help="exit non-zero if the comparison finds a regression")
    p.add_argument("--append", help="append the entry to this LEDGER.json")
    p.add_argument("--update-baseline",
                   help="write the fresh entry as the new baseline file")
    p.add_argument("--note", default="", help="free-form entry annotation")
    p.add_argument("--out", help="also write the report to this file")
    p.set_defaults(fn=_cmd_ledger)

    p = sub.add_parser("health", help="service verdict from a stats dump")
    p.add_argument("stats", help="JSON dump of SchedulerService.stats()")
    p.add_argument("--gate", action="store_true",
                   help="exit non-zero when degraded")
    p.add_argument("--out", help="also write the report to this file")
    p.set_defaults(fn=_cmd_health)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
