"""The benchmark regression ledger over the ``BENCH_*.json`` artifacts.

Every benchmark already writes a machine-stamped JSON record; this module
gives those records a consumer:

* :func:`extract_metrics` distills each record into named scalar metrics
  through the per-file :data:`METRIC_SPECS` (dotted paths with
  ``[key=value]`` list selectors, tolerant of missing paths so FAST- and
  full-shaped records both work), plus derived *model-anchored
  efficiency* metrics — measured seconds joined against the Table-3 flop
  and §4.1 byte counts the records carry (GFLOP/s, effective exchange
  bandwidth);
* :class:`Ledger` persists an append-only history
  (``benchmarks/LEDGER.json``) of such entries, normalized by a
  :func:`machine_fingerprint` of the ``machine_info`` stamp;
* :func:`compare_entries` checks a fresh entry against a committed
  baseline with per-kind tolerances — the CI regression gate.

Metric kinds and gating rules:

========  ========================  =======================================
kind      gated                     regression criterion
========  ========================  =======================================
model     always (same mode)        relative deviation > 1e-9 (exact
                                    model-derived numbers: byte counts,
                                    flop counts, movement reductions)
error     always (same mode)        value above its absolute ceiling
time      same machine + mode only  > 50% slower than baseline
ratio     same machine + mode only  > 40% below baseline (speedups)
info      never                     — (reported only)
========  ========================  =======================================

Cross-machine timing comparisons are recorded but never gated — wall
times on different hosts (or shared CI runners vs a quiet workstation)
are not comparable; the machine-independent model metrics are.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "METRIC_SPECS",
    "MetricCheck",
    "RegressionReport",
    "Ledger",
    "machine_fingerprint",
    "load_bench_records",
    "extract_metrics",
    "make_entry",
    "compare_entries",
]

#: kind → (direction, relative tolerance, gated across machines?)
KINDS: Dict[str, Tuple[str, float, bool]] = {
    "model": ("exact", 1e-9, True),
    "error": ("ceiling", 0.0, True),
    "time": ("lower", 0.50, False),
    "ratio": ("higher", 0.40, False),
    "info": ("none", 0.0, False),
}

#: per-benchmark metric specs: (metric path, kind[, ceiling])
#: paths are dotted keys with ``[k=v,...]`` list selectors
METRIC_SPECS: Dict[str, List[Tuple]] = {
    "engine": [
        ("seconds.seed", "time"),
        ("seconds.batched", "time"),
        ("seconds.multiprocess", "time"),
        ("speedup_vs_seed.batched", "ratio"),
        ("speedup_vs_seed.multiprocess", "ratio"),
    ],
    "api": [
        ("session.seconds", "time"),
        ("independent.seconds", "time"),
        ("speedup", "ratio"),
        ("session.boundary_solves", "model"),
        ("independent.boundary_solves", "model"),
        ("max_current_deviation", "error", 1e-8),
    ],
    "service": [
        ("scheduler.seconds", "time"),
        ("isolated.seconds", "time"),
        ("speedup", "ratio"),
        ("solve_reduction", "model"),
        ("scheduler.boundary_solves", "model"),
        ("scheduler.boundary_solves_saved", "model"),
        ("max_current_deviation", "error", 1e-8),
    ],
    "recipe": [
        ("movement_reduction", "model"),
        ("stages[name=fig8].flops", "model"),
        ("stages[name=fig8].seconds_numpy_backend", "time"),
    ],
    "codegen": [
        ("total_numpy_seconds", "time"),
        ("total_interpreter_seconds", "time"),
        ("total_speedup", "ratio"),
        ("stages[stage=fig8].flops", "model"),
        ("stages[stage=fig8].tasklets", "model"),
    ],
    "rgf": [
        ("table6_in_solver.seconds.csrmm", "time"),
        ("table6_in_solver.speedup_vs_dense.csrmm", "ratio"),
        ("scba_end_to_end.seconds.csrmm", "time"),
        ("scba_end_to_end.speedup_vs_reference.csrmm", "ratio"),
        ("scba_end_to_end.max_err_vs_reference.csrmm", "error", 1e-8),
    ],
    "runtime": [
        ("strong[schedule=omen,P=2].seconds", "time"),
        ("strong[schedule=dace,P=2].seconds", "time"),
        ("strong[schedule=omen,P=2].total_sse_bytes", "model"),
        ("strong[schedule=dace,P=2].total_sse_bytes", "model"),
        ("strong[schedule=omen,P=2].matched", "model"),
        ("strong[schedule=dace,P=2].matched", "model"),
        ("strong[schedule=omen,P=2].max_dev_vs_serial", "error", 1e-8),
        ("strong[schedule=dace,P=2].max_dev_vs_serial", "error", 1e-8),
    ],
    "autotune": [
        ("hand_reduction", "model"),
        ("strategies.greedy.reduction", "model"),
        ("strategies.greedy.final_bytes", "model"),
        ("strategies.greedy.seconds", "time"),
        ("strategies.greedy.max_verify_error", "error", 1e-8),
    ],
    "telemetry": [
        ("seconds.off", "time"),
        ("spans_overhead", "info"),
        # timing-derived ratio: sub-second FAST runs on shared runners
        # make it a scheduling lottery, so it is reported, never gated
        ("full_overhead", "info"),
        ("smoke.clean", "model"),
        ("off_trace_call_ns", "info"),
    ],
    "observe": [
        ("analysis_seconds", "error", 1.0),
        ("scaling[P=2].imbalance_factor", "info"),
        ("scaling[P=2].headroom_fraction", "info"),
        ("scaling[P=4].imbalance_factor", "info"),
        ("scaling[P=4].headroom_fraction", "info"),
    ],
}

_SELECT = re.compile(r"^(\w+)\[(.+)\]$")


def _resolve(record: Any, path: str) -> Optional[float]:
    """Follow a dotted/selector path; None when any segment is missing."""
    node = record
    for segment in path.split("."):
        if node is None:
            return None
        m = _SELECT.match(segment)
        if m:
            key, selector = m.groups()
            items = node.get(key) if isinstance(node, dict) else None
            if not isinstance(items, list):
                return None
            want = dict(pair.split("=", 1) for pair in selector.split(","))
            node = next(
                (
                    item
                    for item in items
                    if isinstance(item, dict)
                    and all(str(item.get(k)) == v for k, v in want.items())
                ),
                None,
            )
        elif isinstance(node, dict):
            node = node.get(segment)
        else:
            return None
    if isinstance(node, bool):
        return 1.0 if node else 0.0
    if isinstance(node, (int, float)):
        return float(node)
    return None


def _efficiency_metrics(name: str, record: Dict) -> Dict[str, float]:
    """Model-anchored efficiency: measured seconds vs modeled flops/bytes."""
    out: Dict[str, float] = {}
    if name == "codegen":
        flops = sum(
            s.get("flops", 0) for s in record.get("stages", ()) or ()
        )
        seconds = record.get("total_numpy_seconds")
        if flops and seconds:
            out["eff.numpy_gflops"] = flops / seconds / 1e9
    if name == "runtime":
        for row in record.get("strong", ()) or ():
            if row.get("seconds") and row.get("total_sse_bytes"):
                key = f"eff.{row['schedule']}_P{row['P']}_MiB_per_s"
                out[key] = row["total_sse_bytes"] / row["seconds"] / 2**20
    if name == "recipe":
        for stage in record.get("stages", ()) or ():
            if stage.get("name") == "fig8" and stage.get(
                "seconds_numpy_backend"
            ):
                out["eff.fig8_gflops"] = (
                    stage.get("flops", 0)
                    / stage["seconds_numpy_backend"]
                    / 1e9
                )
    return out


def extract_metrics(name: str, record: Dict) -> Dict[str, float]:
    """Distill one ``BENCH_<name>.json`` record into named scalars.

    Paths missing from the record (FAST-shaped runs, older files) are
    simply absent from the result — comparison happens on the
    intersection.  Derived ``eff.*`` efficiency metrics ride along as
    kind ``info``.
    """
    out: Dict[str, float] = {}
    for spec in METRIC_SPECS.get(name, ()):
        value = _resolve(record, spec[0])
        if value is not None:
            out[spec[0]] = value
    out.update(_efficiency_metrics(name, record))
    return out


def metric_kind(name: str, metric: str) -> Tuple[str, Optional[float]]:
    """``(kind, ceiling)`` of one metric (``eff.*`` and unknown → info)."""
    for spec in METRIC_SPECS.get(name, ()):
        if spec[0] == metric:
            return spec[1], (spec[2] if len(spec) > 2 else None)
    return "info", None


# --------------------------------------------------------------------------
# Entries and the append-only ledger
# --------------------------------------------------------------------------
def machine_fingerprint(machine: Optional[Dict]) -> Optional[str]:
    """A short stable hash of the ``machine_info`` stamp (None → None)."""
    if not machine:
        return None
    blob = json.dumps(machine, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode()).hexdigest()[:12]


def load_bench_records(bench_dir) -> Dict[str, Dict]:
    """All ``BENCH_<name>.json`` files of a directory, keyed by ``name``."""
    records: Dict[str, Dict] = {}
    for path in sorted(Path(bench_dir).glob("BENCH_*.json")):
        name = path.stem[len("BENCH_"):]
        with open(path) as fh:
            records[name] = json.load(fh)
    return records


def make_entry(
    records: Dict[str, Dict],
    fast: bool = False,
    timestamp: Optional[str] = None,
    note: str = "",
) -> Dict[str, Any]:
    """One ledger entry: fingerprinted, mode-tagged, metric-distilled."""
    machine = next(
        (r["machine"] for r in records.values() if isinstance(r, dict)
         and r.get("machine")),
        None,
    )
    return {
        "timestamp": timestamp
        or datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "mode": "fast" if fast else "full",
        "fingerprint": machine_fingerprint(machine),
        "machine": machine,
        "note": note,
        "metrics": {
            name: extract_metrics(name, record)
            for name, record in sorted(records.items())
        },
    }


@dataclass
class Ledger:
    """Append-only history of benchmark entries (``LEDGER.json``)."""

    path: Path
    entries: List[Dict[str, Any]] = field(default_factory=list)

    @classmethod
    def load(cls, path) -> "Ledger":
        path = Path(path)
        entries: List[Dict[str, Any]] = []
        if path.exists():
            with open(path) as fh:
                entries = json.load(fh)["entries"]
        return cls(path=path, entries=entries)

    def append(self, entry: Dict[str, Any]) -> None:
        self.entries.append(entry)

    def save(self) -> None:
        self.path.write_text(
            json.dumps({"entries": self.entries}, indent=2) + "\n"
        )

    def latest(self) -> Optional[Dict[str, Any]]:
        return self.entries[-1] if self.entries else None


# --------------------------------------------------------------------------
# The regression gate
# --------------------------------------------------------------------------
@dataclass(frozen=True)
class MetricCheck:
    """One metric's fresh-vs-baseline verdict."""

    bench: str
    metric: str
    kind: str
    fresh: Optional[float]
    baseline: Optional[float]
    #: ok / improved / regressed / informational / missing / new
    status: str
    note: str = ""

    @property
    def failed(self) -> bool:
        return self.status == "regressed"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "bench": self.bench,
            "metric": self.metric,
            "kind": self.kind,
            "fresh": self.fresh,
            "baseline": self.baseline,
            "status": self.status,
            "note": self.note,
        }


@dataclass(frozen=True)
class RegressionReport:
    """All checks of one comparison; ``passed`` gates the CI job."""

    checks: Tuple[MetricCheck, ...]
    comparable: bool
    note: str = ""

    @property
    def passed(self) -> bool:
        return not any(c.failed for c in self.checks)

    @property
    def regressions(self) -> Tuple[MetricCheck, ...]:
        return tuple(c for c in self.checks if c.failed)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "passed": self.passed,
            "comparable": self.comparable,
            "note": self.note,
            "checks": [c.to_dict() for c in self.checks],
        }

    def to_markdown(self) -> str:
        lines = ["## Benchmark regression ledger", ""]
        verdict = "PASS" if self.passed else "FAIL"
        lines.append(
            f"- gate: **{verdict}** "
            f"({len(self.regressions)} regression(s), "
            f"{len(self.checks)} metrics checked)"
        )
        if self.note:
            lines.append(f"- {self.note}")
        lines += ["", "| bench | metric | kind | baseline | fresh | status |",
                  "|---|---|---|---:|---:|---|"]
        order = {"regressed": 0, "improved": 1, "ok": 2}
        for c in sorted(
            self.checks, key=lambda c: (order.get(c.status, 3), c.bench)
        ):
            fmt = lambda v: "—" if v is None else f"{v:.6g}"  # noqa: E731
            flag = "**REGRESSED**" if c.failed else c.status
            lines.append(
                f"| {c.bench} | {c.metric} | {c.kind} "
                f"| {fmt(c.baseline)} | {fmt(c.fresh)} | {flag} |"
            )
        return "\n".join(lines)


def _check(
    bench: str, metric: str, kind: str, ceiling: Optional[float],
    fresh: Optional[float], baseline: Optional[float], gate_timing: bool,
) -> MetricCheck:
    direction, tol, always = KINDS[kind]
    if fresh is None:
        return MetricCheck(bench, metric, kind, fresh, baseline, "missing",
                           "metric absent from fresh records")
    if baseline is None:
        return MetricCheck(bench, metric, kind, fresh, baseline, "new",
                           "metric absent from baseline")
    gated = always or gate_timing
    if not gated or direction == "none":
        return MetricCheck(bench, metric, kind, fresh, baseline,
                           "informational", "not gated on this machine")
    if direction == "ceiling":
        limit = ceiling if ceiling is not None else abs(baseline) * 10
        if fresh > limit:
            return MetricCheck(
                bench, metric, kind, fresh, baseline, "regressed",
                f"{fresh:.3g} exceeds ceiling {limit:.3g}",
            )
        return MetricCheck(bench, metric, kind, fresh, baseline, "ok")
    if direction == "exact":
        scale = max(abs(baseline), 1.0)
        if abs(fresh - baseline) / scale > tol:
            return MetricCheck(
                bench, metric, kind, fresh, baseline, "regressed",
                "model-derived value changed",
            )
        return MetricCheck(bench, metric, kind, fresh, baseline, "ok")
    if direction == "lower":  # timing
        if fresh > baseline * (1 + tol):
            return MetricCheck(
                bench, metric, kind, fresh, baseline, "regressed",
                f"{fresh / baseline:.2f}x slower than baseline",
            )
        status = "improved" if fresh < baseline * (1 - tol) else "ok"
        return MetricCheck(bench, metric, kind, fresh, baseline, status)
    # direction == "higher": speedups and reductions
    if fresh < baseline * (1 - tol):
        return MetricCheck(
            bench, metric, kind, fresh, baseline, "regressed",
            f"dropped to {fresh / baseline:.2f}x of baseline",
        )
    status = "improved" if fresh > baseline * (1 + tol) else "ok"
    return MetricCheck(bench, metric, kind, fresh, baseline, status)


def compare_entries(
    fresh: Dict[str, Any], baseline: Dict[str, Any]
) -> RegressionReport:
    """Gate a fresh entry against a baseline entry.

    Mode mismatch (fast vs full workload shapes) makes the whole
    comparison informational; fingerprint mismatch demotes timing/ratio
    metrics to informational while the machine-independent model and
    error metrics stay gated.
    """
    same_mode = fresh.get("mode") == baseline.get("mode")
    same_machine = (
        fresh.get("fingerprint") is not None
        and fresh.get("fingerprint") == baseline.get("fingerprint")
    )
    if not same_mode:
        return RegressionReport(
            checks=(),
            comparable=False,
            note=(
                f"entries not comparable: fresh mode="
                f"{fresh.get('mode')!r} vs baseline mode="
                f"{baseline.get('mode')!r}"
            ),
        )
    checks: List[MetricCheck] = []
    benches = sorted(
        set(fresh.get("metrics", {})) | set(baseline.get("metrics", {}))
    )
    for bench in benches:
        f_metrics = fresh.get("metrics", {}).get(bench, {})
        b_metrics = baseline.get("metrics", {}).get(bench, {})
        for metric in sorted(set(f_metrics) | set(b_metrics)):
            kind, ceiling = metric_kind(bench, metric)
            checks.append(
                _check(
                    bench, metric, kind, ceiling,
                    f_metrics.get(metric), b_metrics.get(metric),
                    gate_timing=same_machine,
                )
            )
    note = "" if same_machine else (
        "different machine fingerprints: timing/ratio metrics reported "
        "but not gated"
    )
    return RegressionReport(
        checks=tuple(checks), comparable=True, note=note
    )
