"""The performance observatory: telemetry analysis and regression gates.

PR 9's telemetry records byte-exact spans, counters, and drift reports at
every layer; this package is their consumer — it turns recorded telemetry
into decisions:

* :mod:`~repro.observe.timeline` — per-rank timeline reconstruction from
  merged rank-tagged spans: phase breakdowns, load-imbalance factor,
  measured idle fractions, the critical path, and the overlap-headroom
  estimate the async-runtime roadmap item needs;
* :mod:`~repro.observe.ledger` — the benchmark regression ledger over the
  ``BENCH_*.json`` artifacts: machine-normalized append-only history,
  model-anchored efficiency, and a tolerance-gated baseline comparison
  (the CI regression gate);
* :mod:`~repro.observe.health` — service introspection layered on
  :meth:`~repro.service.SchedulerService.stats`: queue-latency
  percentiles, pool utilization vs modeled-flop capacity, and a single
  ok/degraded verdict.

``python -m repro.observe`` renders any of the three as markdown.
"""

from .health import HealthReport, service_health, tenant_breakdown
from .ledger import (
    Ledger,
    MetricCheck,
    RegressionReport,
    compare_entries,
    extract_metrics,
    load_bench_records,
    make_entry,
    machine_fingerprint,
)
from .timeline import TimelineAnalysis, analyze_events, analyze_trace_file, analyze_tracer

__all__ = [
    "TimelineAnalysis",
    "analyze_events",
    "analyze_tracer",
    "analyze_trace_file",
    "Ledger",
    "MetricCheck",
    "RegressionReport",
    "compare_entries",
    "extract_metrics",
    "load_bench_records",
    "make_entry",
    "machine_fingerprint",
    "HealthReport",
    "service_health",
    "tenant_breakdown",
]
