"""Runtime and scalability prediction (paper Fig. 13 and Table 8).

Combines the flop models (§4.3), the communication-volume models (§4.1)
and the machine models into per-iteration time predictions for both
algorithm variants:

* compute time: ``flops / (P * peak_per_process * phase_efficiency)``
* communication time: ``per-process bytes / effective bandwidth`` plus a
  latency term (``Nqz*Nw`` rounds for OMEN, one alltoallv for DaCe).

The OMEN per-process volume has a P-independent ``D≷/Π≷`` component, so
its communication time *plateaus* under strong scaling — the effect that
dominates Fig. 13 — while the DaCe variant keeps shrinking until the
``NB``/``2Nw`` halo floors are reached.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional

from ..config import SimulationParameters
from .communication import (
    dace_comm_bytes_per_process,
    omen_comm_bytes_per_process,
)
from .distribution import Tiling, search_tiling
from .machine import MachineSpec
from .performance import gf_phase_flops, sse_flops_dace, sse_flops_omen

__all__ = ["PhaseTimes", "predict_times", "strong_scaling", "weak_scaling", "ScalingPoint"]


@dataclass(frozen=True)
class PhaseTimes:
    """Predicted per-iteration times (seconds) of one variant."""

    variant: str
    processes: int
    gf: float
    sse: float
    comm: float
    tiling: Optional[Tiling] = None

    @property
    def compute(self) -> float:
        return self.gf + self.sse

    @property
    def total(self) -> float:
        return self.compute + self.comm


def predict_times(
    machine: MachineSpec,
    p: SimulationParameters,
    processes: int,
    variant: str = "dace",
) -> PhaseTimes:
    """Predict one GF+SSE iteration on ``processes`` ranks."""
    if variant not in ("dace", "omen"):
        raise ValueError(f"unknown variant {variant!r}")
    gf_t = gf_phase_flops(p) / machine.rate("gf", variant, processes)
    if variant == "omen":
        sse_t = sse_flops_omen(p) / machine.rate("sse", "omen", processes)
        # Broadcast rounds serialize: total volume through aggregate bw.
        total_bytes = processes * omen_comm_bytes_per_process(p, processes)
        rounds = p.Nqz * p.Nw
        latency = rounds * machine.alpha * max(1.0, math.log2(processes))
        comm_t = total_bytes / machine.bw_omen + latency
        tiling = None
    else:
        tiling = search_tiling(p, processes)
        sse_t = sse_flops_dace(p) / machine.rate("sse", "dace", processes)
        bytes_pp = dace_comm_bytes_per_process(p, tiling.TE, tiling.TA)
        comm_t = bytes_pp / machine.bw_dace + machine.alpha * processes
    return PhaseTimes(variant, processes, gf_t, sse_t, comm_t, tiling)


@dataclass(frozen=True)
class ScalingPoint:
    """One point of a scaling curve (both variants side by side)."""

    processes: int
    gpus: int
    nkz: int
    dace: PhaseTimes
    omen: Optional[PhaseTimes]

    @property
    def speedup(self) -> Optional[float]:
        if self.omen is None:
            return None
        return self.omen.total / self.dace.total

    @property
    def comm_speedup(self) -> Optional[float]:
        if self.omen is None or self.dace.comm == 0:
            return None
        return self.omen.comm / self.dace.comm


def strong_scaling(
    machine: MachineSpec,
    p: SimulationParameters,
    process_counts: Iterable[int],
    include_omen: bool = True,
) -> List[ScalingPoint]:
    """Fixed problem, growing resources (Fig. 13, left panels)."""
    out = []
    for P in process_counts:
        dace = predict_times(machine, p, P, "dace")
        omen = predict_times(machine, p, P, "omen") if include_omen else None
        gpus = P * machine.gpus_per_node // machine.procs_per_node
        out.append(ScalingPoint(P, gpus, p.Nkz, dace, omen))
    return out


def weak_scaling(
    machine: MachineSpec,
    base: SimulationParameters,
    nkz_list: Iterable[int],
    procs_per_kz: int,
    include_omen: bool = True,
) -> List[ScalingPoint]:
    """Growing momentum grid with proportional resources (Fig. 13, right).

    The GF phase scales with ``Nkz`` and SSE with ``Nkz*Nqz``; ideal weak
    scaling therefore keeps ``P = procs_per_kz * Nkz`` (the paper's
    annotation convention).
    """
    out = []
    for nkz in nkz_list:
        p = base.replace(Nkz=nkz, Nqz=nkz)
        P = procs_per_kz * nkz
        dace = predict_times(machine, p, P, "dace")
        omen = predict_times(machine, p, P, "omen") if include_omen else None
        gpus = P * machine.gpus_per_node // machine.procs_per_node
        out.append(ScalingPoint(P, gpus, nkz, dace, omen))
    return out
