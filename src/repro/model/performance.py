"""Flop-count models for the three QT kernels (paper §4.3, Table 3).

The SSE counts are the paper's exact closed forms:

* OMEN:  ``64 * NA*NB*N3D * Nkz*Nqz*NE*Nw * Norb^3``
* DaCe:  ``32 * NA*NB*N3D * Nkz*Nqz*NE*Nw * Norb^3
          + 32 * NA*NB*N3D * Nkz*NE * Norb^3``

The GF-phase kernels (contour integral + RGF) mix dense and sparse
operations, so the paper measures them with ``nvprof``; we model them as
``c * Nkz * NE * bnum * block^3`` (RGF) and ``c * Nkz * NE * block^3``
(boundary solve on one block), with constants calibrated once against the
paper's own Table 3 (documented in DESIGN.md):

* ``C_RGF  = 45.39``  — ~23 block matrix multiplications per RGF block,
* ``C_CONTOUR = 137.97`` — boundary eigen/contour solve on one block.

Both evaluation structures share L = 35 nm, hence the same ``bnum = 19``;
with it the model reproduces Table 3 and extrapolates to Table 8 within 2%.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import SimulationParameters

__all__ = [
    "C_RGF",
    "C_CONTOUR",
    "sse_flops_omen",
    "sse_flops_dace",
    "rgf_flops",
    "contour_integral_flops",
    "gf_phase_flops",
    "IterationFlops",
    "iteration_flops",
]

#: RGF flop per block: ``C_RGF * block^3`` — calibrated to Table 3.
C_RGF = 45.39

#: Contour-integral flop per (E, kz): ``C_CONTOUR * block^3`` — calibrated.
C_CONTOUR = 137.97


def sse_flops_omen(p: SimulationParameters) -> float:
    """SSE flop count of the original OMEN algorithm (§4.3)."""
    return (
        64.0
        * p.NA
        * p.NB
        * p.N3D
        * p.Nkz
        * p.Nqz
        * p.NE
        * p.Nw
        * p.Norb**3
    )


def sse_flops_dace(p: SimulationParameters) -> float:
    """SSE flop count after the data-centric transformations (§4.3)."""
    shared = p.NA * p.NB * p.N3D * p.Nkz * p.NE * p.Norb**3
    return 32.0 * shared * p.Nqz * p.Nw + 32.0 * shared


def rgf_flops(p: SimulationParameters) -> float:
    """Recursive Green's Function flop count over the (E, kz) grid."""
    block = p.block_size
    return C_RGF * p.Nkz * p.NE * p.bnum * block**3


def contour_integral_flops(p: SimulationParameters) -> float:
    """Open-boundary (contour integral) flop count over the (E, kz) grid."""
    block = p.block_size
    return C_CONTOUR * p.Nkz * p.NE * block**3


def gf_phase_flops(p: SimulationParameters) -> float:
    """Total GF-state flops (boundary conditions + RGF)."""
    return rgf_flops(p) + contour_integral_flops(p)


@dataclass(frozen=True)
class IterationFlops:
    """Single GF+SSE iteration flop breakdown (Table 3 row set)."""

    contour_integral: float
    rgf: float
    sse_omen: float
    sse_dace: float

    @property
    def total_omen(self) -> float:
        return self.contour_integral + self.rgf + self.sse_omen

    @property
    def total_dace(self) -> float:
        return self.contour_integral + self.rgf + self.sse_dace


def iteration_flops(p: SimulationParameters) -> IterationFlops:
    """All Table-3 kernels for one self-consistent Born iteration."""
    return IterationFlops(
        contour_integral=contour_integral_flops(p),
        rgf=rgf_flops(p),
        sse_omen=sse_flops_omen(p),
        sse_dace=sse_flops_dace(p),
    )
