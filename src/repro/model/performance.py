"""Flop-count models for the three QT kernels (paper §4.3, Table 3).

The SSE counts are the paper's exact closed forms:

* OMEN:  ``64 * NA*NB*N3D * Nkz*Nqz*NE*Nw * Norb^3``
* DaCe:  ``32 * NA*NB*N3D * Nkz*Nqz*NE*Nw * Norb^3
          + 32 * NA*NB*N3D * Nkz*NE * Norb^3``

The GF-phase kernels (contour integral + RGF) mix dense and sparse
operations, so the paper measures them with ``nvprof``; we model them as
``c * Nkz * NE * bnum * block^3`` (RGF) and ``c * Nkz * NE * block^3``
(boundary solve on one block), with constants calibrated once against the
paper's own Table 3 (documented in DESIGN.md):

* ``C_RGF  = 45.39``  — ~23 block matrix multiplications per RGF block,
* ``C_CONTOUR = 137.97`` — boundary eigen/contour solve on one block.

Both evaluation structures share L = 35 nm, hence the same ``bnum = 19``;
with it the model reproduces Table 3 and extrapolates to Table 8 within 2%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from ..config import SimulationParameters

__all__ = [
    "C_RGF",
    "C_CONTOUR",
    "sse_flops_omen",
    "sse_flops_dace",
    "rgf_flops",
    "contour_integral_flops",
    "gf_phase_flops",
    "IterationFlops",
    "iteration_flops",
    "tasklet_flops",
    "stage_flops",
]

#: RGF flop per block: ``C_RGF * block^3`` — calibrated to Table 3.
C_RGF = 45.39

#: Contour-integral flop per (E, kz): ``C_CONTOUR * block^3`` — calibrated.
C_CONTOUR = 137.97


def sse_flops_omen(p: SimulationParameters) -> float:
    """SSE flop count of the original OMEN algorithm (§4.3)."""
    return (
        64.0
        * p.NA
        * p.NB
        * p.N3D
        * p.Nkz
        * p.Nqz
        * p.NE
        * p.Nw
        * p.Norb**3
    )


def sse_flops_dace(p: SimulationParameters) -> float:
    """SSE flop count after the data-centric transformations (§4.3)."""
    shared = p.NA * p.NB * p.N3D * p.Nkz * p.NE * p.Norb**3
    return 32.0 * shared * p.Nqz * p.Nw + 32.0 * shared


def rgf_flops(p: SimulationParameters) -> float:
    """Recursive Green's Function flop count over the (E, kz) grid."""
    block = p.block_size
    return C_RGF * p.Nkz * p.NE * p.bnum * block**3


def contour_integral_flops(p: SimulationParameters) -> float:
    """Open-boundary (contour integral) flop count over the (E, kz) grid."""
    block = p.block_size
    return C_CONTOUR * p.Nkz * p.NE * block**3


def gf_phase_flops(p: SimulationParameters) -> float:
    """Total GF-state flops (boundary conditions + RGF)."""
    return rgf_flops(p) + contour_integral_flops(p)


@dataclass(frozen=True)
class IterationFlops:
    """Single GF+SSE iteration flop breakdown (Table 3 row set)."""

    contour_integral: float
    rgf: float
    sse_omen: float
    sse_dace: float

    @property
    def total_omen(self) -> float:
        return self.contour_integral + self.rgf + self.sse_omen

    @property
    def total_dace(self) -> float:
        return self.contour_integral + self.rgf + self.sse_dace


def iteration_flops(p: SimulationParameters) -> IterationFlops:
    """All Table-3 kernels for one self-consistent Born iteration."""
    return IterationFlops(
        contour_integral=contour_integral_flops(p),
        rgf=rgf_flops(p),
        sse_omen=sse_flops_omen(p),
        sse_dace=sse_flops_dace(p),
    )


# -- analytic SDFG-stage flop counts (autotuner roofline) -------------------
#
# The autotuner's roofline report (``repro.autotune.roofline``) pairs the
# §4.1 byte model with an *analytic* flop count per pipeline stage, derived
# from each tasklet's declarative ``op`` annotation (an einsum over the
# non-point dimensions of its memlets).  Complex arithmetic costs: a
# contraction performs one complex multiply-add per index-space point
# (8 real flops), a pure elementwise product one complex multiply
# (6 real flops) — matching the constants the hand-written ``flops``
# callables use, so the analytic count agrees exactly with the
# interpreter-measured count (asserted in ``tests/test_autotune.py``).


class _ShapeOnly:
    """Stand-in operand exposing only ``.shape`` for ``flops`` callables."""

    def __init__(self, shape):
        self.shape = tuple(shape)


def _operand_shape(memlet, env: Mapping[str, int]):
    """The squeezed shape a tasklet sees for one memlet under ``env``:
    symbolically point dimensions are dropped (interpreter semantics),
    slice dimensions contribute their evaluated lengths."""
    shape = []
    sub = memlet.subset
    for i, (b, e, _) in enumerate(sub.dims):
        if b == e:
            continue
        shape.append(int(sub.dim_length(i).evaluate(env)))
    return tuple(shape)


def _einsum_flops(op: str, in_shapes) -> int:
    """Flops of one ``op``-annotated tasklet invocation.

    ``in_shapes`` are the squeezed operand shapes in input-connector
    declaration order (matching the comma-separated subscript groups).
    Cost: 8 flops per point of the union index space when any index is
    contracted away, 6 (one complex multiply) when purely elementwise.
    """
    lhs, rhs = op.split("->")
    groups = lhs.split(",")
    if len(groups) != len(in_shapes):
        raise ValueError(
            f"op {op!r}: {len(groups)} subscript groups for "
            f"{len(in_shapes)} inputs"
        )
    extents: Dict[str, int] = {}
    for sub, shape in zip(groups, in_shapes):
        if len(sub) != len(shape):
            raise ValueError(
                f"op {op!r}: subscript {sub!r} does not match "
                f"operand of rank {len(shape)}"
            )
        for idx, n in zip(sub, shape):
            extents[idx] = n
    volume = 1
    for n in extents.values():
        volume *= n
    contracted = set(extents) - set(rhs)
    return (8 if contracted else 6) * volume


def tasklet_flops(
    state, tasklet, env: Mapping[str, int]
) -> int:
    """Analytic flops of one invocation of ``tasklet`` in ``state``.

    Prefers the declarative ``op`` annotation (``"zero"`` initializers
    cost nothing); falls back to calling the hand-written ``flops``
    callable with shape-only operand stand-ins; op-less, flops-less
    tasklets count zero (the interpreter does the same).
    """
    memlets = {}
    for u, v, d in state.edges():
        mem = d.get("memlet")
        if mem is None or v is not tasklet:
            continue
        conn = d.get("dst_conn")
        if conn is not None:
            memlets[conn] = mem
    if tasklet.op == "zero":
        return 0
    shapes = [
        _operand_shape(memlets[conn], env)
        for conn in tasklet.inputs
        if conn in memlets
    ]
    if tasklet.op is not None and len(shapes) == len(tasklet.inputs):
        try:
            return _einsum_flops(tasklet.op, shapes)
        except ValueError:
            pass  # malformed/mismatched annotation: fall back
    if tasklet.flops is not None:
        operands = {
            conn: _ShapeOnly(shape)
            for conn, shape in zip(tasklet.inputs, shapes)
        }
        return int(tasklet.flops(**operands))
    return 0


def stage_flops(sdfg, env: Mapping[str, int]) -> int:
    """Total analytic flops of one SDFG (pipeline-stage snapshot).

    Each tasklet's per-invocation count is multiplied by the iteration
    volume of its enclosing map scopes, evaluated under ``env``.
    """
    total = 0
    for st in sdfg.states:
        for t in st.tasklets():
            per_call = tasklet_flops(st, t, env)
            if per_call == 0:
                continue
            iters = 1
            for entry in st.scope_chain(t):
                iters *= int(entry.map.range.num_elements().evaluate(env))
            total += per_call * iters
    return total
