"""Performance, communication, machine, and scaling models (§4-5)."""

from .communication import (
    TIB,
    CommVolume,
    comm_volumes,
    dace_comm_bytes_per_process,
    dace_comm_total_bytes,
    omen_comm_bytes_per_process,
    omen_comm_total_bytes,
)
from .distribution import Tiling, factor_pairs, paper_tiling, search_tiling
from .machine import PIZ_DAINT, SUMMIT, MachineSpec
from .performance import (
    C_CONTOUR,
    C_RGF,
    IterationFlops,
    contour_integral_flops,
    gf_phase_flops,
    iteration_flops,
    rgf_flops,
    sse_flops_dace,
    sse_flops_omen,
)
from .scaling import PhaseTimes, ScalingPoint, predict_times, strong_scaling, weak_scaling

__all__ = [
    "TIB",
    "CommVolume",
    "comm_volumes",
    "dace_comm_bytes_per_process",
    "dace_comm_total_bytes",
    "omen_comm_bytes_per_process",
    "omen_comm_total_bytes",
    "Tiling",
    "factor_pairs",
    "paper_tiling",
    "search_tiling",
    "PIZ_DAINT",
    "SUMMIT",
    "MachineSpec",
    "C_CONTOUR",
    "C_RGF",
    "IterationFlops",
    "contour_integral_flops",
    "gf_phase_flops",
    "iteration_flops",
    "rgf_flops",
    "sse_flops_dace",
    "sse_flops_omen",
    "PhaseTimes",
    "ScalingPoint",
    "predict_times",
    "strong_scaling",
    "weak_scaling",
]
