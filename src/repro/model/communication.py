"""SSE communication-volume models (paper §4.1, Tables 4-5).

Closed-form per-process byte counts for the two SSE communication schemes:

**OMEN** (momentum x energy decomposition, ``Nqz*Nw`` rounds of
broadcast + point-to-point):

* each process *receives* ``64 * Nkz*(NE/P) * Nqz*Nw * NA*Norb^2`` bytes of
  electron Green's functions ``G≷``, and
* sends+receives ``64 * Nqz*Nw*NA*NB*N3D^2`` bytes of phonon ``D≷``/``Π≷``.

**DaCe** (communication-avoiding ``TE x TA`` tiles exchanged with
``alltoallv``); each process contributes

* ``64 * Nkz*(NE/TE + 2*Nw)*(NA/TA + NB)*Norb^2`` bytes for ``G≷``/``Σ≷``,
* ``64 * Nqz*Nw*(NA/TA + NB)*NB*N3D^2`` bytes for ``D≷``/``Π≷``.

Summed over all ``P = TE*TA`` processes these reproduce every cell of the
paper's Tables 4 and 5 at the printed precision (verified in
``tests/test_communication_model.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import SimulationParameters

__all__ = [
    "TIB",
    "CommVolume",
    "omen_comm_bytes_per_process",
    "omen_comm_total_bytes",
    "dace_comm_bytes_per_process",
    "dace_comm_total_bytes",
    "comm_volumes",
]

TIB = 1024.0**4


@dataclass(frozen=True)
class CommVolume:
    """Total SSE communication volume of both algorithm variants (bytes)."""

    omen: float
    dace: float

    @property
    def omen_tib(self) -> float:
        return self.omen / TIB

    @property
    def dace_tib(self) -> float:
        return self.dace / TIB

    @property
    def reduction_factor(self) -> float:
        return self.omen / self.dace


def omen_comm_bytes_per_process(p: SimulationParameters, P: int) -> float:
    """Bytes communicated by one process under OMEN's decomposition."""
    g_recv = 64.0 * p.Nkz * (p.NE / P) * p.Nqz * p.Nw * p.NA * p.Norb**2
    d_xchg = 64.0 * p.Nqz * p.Nw * p.NA * p.NB * p.N3D**2
    return g_recv + d_xchg


def omen_comm_total_bytes(p: SimulationParameters, P: int) -> float:
    """Aggregate OMEN SSE volume: the G≷ replication term is P-independent
    in total (each process holds ``NE/P`` energies), while the D≷/Π≷
    broadcast+reduction term grows linearly with P."""
    return P * omen_comm_bytes_per_process(p, P)


def dace_comm_bytes_per_process(
    p: SimulationParameters, TE: int, TA: int
) -> float:
    """Bytes contributed by one process to the alltoallv exchanges."""
    atoms = p.NA / TA + p.NB
    g_term = 64.0 * p.Nkz * (p.NE / TE + 2.0 * p.Nw) * atoms * p.Norb**2
    d_term = 64.0 * p.Nqz * p.Nw * atoms * p.NB * p.N3D**2
    return g_term + d_term


def dace_comm_total_bytes(p: SimulationParameters, TE: int, TA: int) -> float:
    P = TE * TA
    return P * dace_comm_bytes_per_process(p, TE, TA)


def comm_volumes(
    p: SimulationParameters, P: int, TE: int, TA: int
) -> CommVolume:
    """Both variants' totals for the same process count."""
    if TE * TA != P:
        raise ValueError(f"TE*TA = {TE * TA} must equal P = {P}")
    return CommVolume(
        omen=omen_comm_total_bytes(p, P),
        dace=dace_comm_total_bytes(p, TE, TA),
    )
