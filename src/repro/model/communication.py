"""SSE communication-volume models (paper §4.1, Tables 4-5).

Closed-form per-process byte counts for the two SSE communication schemes:

**OMEN** (momentum x energy decomposition, ``Nqz*Nw`` rounds of
broadcast + point-to-point):

* each process *receives* ``64 * Nkz*(NE/P) * Nqz*Nw * NA*Norb^2`` bytes of
  electron Green's functions ``G≷``, and
* sends+receives ``64 * Nqz*Nw*NA*NB*N3D^2`` bytes of phonon ``D≷``/``Π≷``.

**DaCe** (communication-avoiding ``TE x TA`` tiles exchanged with
``alltoallv``); each process contributes

* ``64 * Nkz*(NE/TE + 2*Nw)*(NA/TA + NB)*Norb^2`` bytes for ``G≷``/``Σ≷``,
* ``64 * Nqz*Nw*(NA/TA + NB)*NB*N3D^2`` bytes for ``D≷``/``Π≷``.

Summed over all ``P = TE*TA`` processes these reproduce every cell of the
paper's Tables 4 and 5 at the printed precision (verified in
``tests/test_models.py``).

Two companion models, :func:`omen_exchange_stats` and
:func:`dace_exchange_stats`, instantiate the same §4.1 accounting for the
*executed* schedules (:class:`~repro.parallel.OmenExchange` /
:class:`~repro.parallel.DaceExchange`): exact per-rank sent/received byte
and message counts of one in-loop SSE exchange, including the window
trimming at the zero-padded energy edges, self-owned (free) transfers,
the exact neighbor-closure halos, and the Π≷/D≷ feedback rows.  The
distributed runtime's measured counters must equal them to the byte
(asserted in ``tests/test_runtime.py`` and
``benchmarks/bench_runtime_scaling.py``); the closed forms above are
their upper bounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..config import SimulationParameters
from ..parallel.decomposition import DaceDecomposition, OmenDecomposition
from ..parallel.schedules import default_round_owner
from ..parallel.simmpi import CommStats

__all__ = [
    "TIB",
    "CommVolume",
    "omen_comm_bytes_per_process",
    "omen_comm_total_bytes",
    "dace_comm_bytes_per_process",
    "dace_comm_total_bytes",
    "comm_volumes",
    "omen_exchange_stats",
    "dace_exchange_stats",
    "residual_allreduce_stats",
]

TIB = 1024.0**4


@dataclass(frozen=True)
class CommVolume:
    """Total SSE communication volume of both algorithm variants (bytes)."""

    omen: float
    dace: float

    @property
    def omen_tib(self) -> float:
        return self.omen / TIB

    @property
    def dace_tib(self) -> float:
        return self.dace / TIB

    @property
    def reduction_factor(self) -> float:
        return self.omen / self.dace


def omen_comm_bytes_per_process(p: SimulationParameters, P: int) -> float:
    """Bytes communicated by one process under OMEN's decomposition."""
    g_recv = 64.0 * p.Nkz * (p.NE / P) * p.Nqz * p.Nw * p.NA * p.Norb**2
    d_xchg = 64.0 * p.Nqz * p.Nw * p.NA * p.NB * p.N3D**2
    return g_recv + d_xchg


def omen_comm_total_bytes(p: SimulationParameters, P: int) -> float:
    """Aggregate OMEN SSE volume: the G≷ replication term is P-independent
    in total (each process holds ``NE/P`` energies), while the D≷/Π≷
    broadcast+reduction term grows linearly with P."""
    return P * omen_comm_bytes_per_process(p, P)


def dace_comm_bytes_per_process(
    p: SimulationParameters, TE: int, TA: int
) -> float:
    """Bytes contributed by one process to the alltoallv exchanges."""
    atoms = p.NA / TA + p.NB
    g_term = 64.0 * p.Nkz * (p.NE / TE + 2.0 * p.Nw) * atoms * p.Norb**2
    d_term = 64.0 * p.Nqz * p.Nw * atoms * p.NB * p.N3D**2
    return g_term + d_term


def dace_comm_total_bytes(p: SimulationParameters, TE: int, TA: int) -> float:
    P = TE * TA
    return P * dace_comm_bytes_per_process(p, TE, TA)


def comm_volumes(
    p: SimulationParameters, P: int, TE: int, TA: int
) -> CommVolume:
    """Both variants' totals for the same process count."""
    if TE * TA != P:
        raise ValueError(f"TE*TA = {TE * TA} must equal P = {P}")
    return CommVolume(
        omen=omen_comm_total_bytes(p, P),
        dace=dace_comm_total_bytes(p, TE, TA),
    )


# --------------------------------------------------------------------------
# Exact per-rank models of the executed exchanges (one SSE iteration)
# --------------------------------------------------------------------------
_C128 = 16  # complex128 bytes


def omen_exchange_stats(
    decomp: OmenDecomposition,
    Nqz: int,
    Nw: int,
    NA: int,
    NB: int,
    Norb: int,
    N3D: int = 3,
    owner_of: Optional[Callable[[int, int], int]] = None,
) -> CommStats:
    """Exact per-rank bytes of one :class:`~repro.parallel.OmenExchange`.

    Per round ``(q, w)``: the owner broadcasts the combined ``D≷`` row to
    every other rank; every rank receives its trimmed emission/absorption
    ``G≷`` windows piecewise from their owners (self-owned pieces are
    free); every non-owner rank sends its two full ``Π≷`` partials to the
    owner.  The closed form :func:`omen_comm_bytes_per_process`
    upper-bounds the G≷ term (no edge trimming, no free self-windows).
    """
    P = decomp.P
    NE = decomp.NE
    owner_of = owner_of or default_round_owner(Nw, P)
    stats = CommStats.zeros(P)
    sent, recv, msgs = stats.sent_bytes, stats.recv_bytes, stats.messages

    d_bytes = 2 * NA * NB * N3D * N3D * _C128
    pi_bytes = NA * (NB + 1) * N3D * N3D * _C128
    row_bytes = 2 * NA * Norb * Norb * _C128  # both ≷ per energy row
    for q in range(Nqz):
        for w in range(Nw):
            owner = owner_of(q, w)
            for r in range(P):
                if r != owner:
                    sent[owner] += d_bytes
                    recv[r] += d_bytes
                    msgs[owner] += 1
            for rank in range(P):
                k, _ = decomp.coords(rank)
                esl = decomp.energy_slice(rank)
                ks = (k - q) % decomp.Nkz
                for lo, hi in (
                    (max(0, esl.start - w), max(0, esl.stop - w)),
                    (min(NE, esl.start + w), min(NE, esl.stop + w)),
                ):
                    e = lo
                    while e < hi:
                        piece_owner = decomp.owner_of_energy(ks, e)
                        stop = min(hi, (e // decomp.chunk + 1) * decomp.chunk)
                        if piece_owner != rank:
                            b = (stop - e) * row_bytes
                            sent[piece_owner] += b
                            recv[rank] += b
                            msgs[piece_owner] += 1
                        e = stop
                if rank != owner:
                    sent[rank] += 2 * pi_bytes
                    recv[owner] += 2 * pi_bytes
                    msgs[rank] += 2
    return stats


def dace_exchange_stats(
    gf_decomp: OmenDecomposition,
    sse_decomp: DaceDecomposition,
    neigh: np.ndarray,
    Nqz: int,
    Nw: int,
    Norb: int,
    N3D: int = 3,
    owner_of: Optional[Callable[[int, int], int]] = None,
) -> CommStats:
    """Exact per-rank bytes of one :class:`~repro.parallel.DaceExchange`.

    Phase A redistributes ``G≷`` into TE x TA tiles (halo windows and
    exact neighbor closures); the phonon rows ship tile-sliced from their
    owners; phase C returns the Σ≷ tiles; Π≷ partials travel
    tile-restricted to the row owners.  The closed form
    :func:`dace_comm_bytes_per_process` upper-bounds these (its
    ``NE/TE + 2Nω`` window ignores edge clamping and its ``NA/TA + NB``
    closure is the banded-structure worst case).
    """
    if gf_decomp.P != sse_decomp.P:
        raise ValueError("decompositions disagree on P")
    P = gf_decomp.P
    NB = neigh.shape[1]
    owner_of = owner_of or default_round_owner(Nw, P)
    stats = CommStats.zeros(P)
    sent, recv, msgs = stats.sent_bytes, stats.recv_bytes, stats.messages

    windows = [sse_decomp.energy_window(j) for j in range(P)]
    etiles = [sse_decomp.energy_tile(j) for j in range(P)]
    closures = [sse_decomp.atom_closure(j, neigh) for j in range(P)]
    a_tile = sse_decomp.a_tile

    # Phase A: GF rows -> halo windows x atom closures.
    for i in range(P):
        esl = gf_decomp.energy_slice(i)
        for j in range(P):
            win = windows[j]
            n = min(esl.stop, win.stop) - max(esl.start, win.start)
            if n > 0 and i != j:
                b = 2 * n * len(closures[j]) * Norb * Norb * _C128
                sent[i] += b
                recv[j] += b
                msgs[i] += 1

    # Combined D≷ rows, tile-sliced, from their owners (one block per pair).
    rows_per_owner = np.zeros(P, dtype=np.int64)
    for q in range(Nqz):
        for w in range(Nw):
            rows_per_owner[owner_of(q, w)] += 1
    d_row_bytes = 2 * a_tile * NB * N3D * N3D * _C128
    for o in range(P):
        if rows_per_owner[o] == 0:
            continue
        for j in range(P):
            if j != o:
                b = int(rows_per_owner[o]) * d_row_bytes
                sent[o] += b
                recv[j] += b
                msgs[o] += 1

    # Phase C: Σ≷ tiles back to the GF layout.
    for j in range(P):
        et = etiles[j]
        for i in range(P):
            esl = gf_decomp.energy_slice(i)
            m = min(esl.stop, et.stop) - max(esl.start, et.start)
            if m > 0 and j != i:
                b = 2 * m * a_tile * Norb * Norb * _C128
                sent[j] += b
                recv[i] += b
                msgs[j] += 1

    # Π≷ partials, tile-restricted, to the row owners (two per row).
    pi_row_bytes = a_tile * (NB + 1) * N3D * N3D * _C128
    for j in range(P):
        for q in range(Nqz):
            for w in range(Nw):
                o = owner_of(q, w)
                if j != o:
                    sent[j] += 2 * pi_row_bytes
                    recv[o] += 2 * pi_row_bytes
                    msgs[j] += 2
    return stats


def residual_allreduce_stats(P: int, n_checks: int) -> CommStats:
    """Bytes of the Born-residual allreduce: 2 float64 per rank per check."""
    stats = CommStats.zeros(P)
    if P > 1 and n_checks > 0:
        stats.sent_bytes[1:] = 16 * n_checks
        stats.recv_bytes[1:] = 16 * n_checks
        stats.messages[1:] = n_checks
        stats.sent_bytes[0] = 16 * n_checks * (P - 1)
        stats.recv_bytes[0] = 16 * n_checks * (P - 1)
        stats.messages[0] = n_checks * (P - 1)
    return stats
