"""Machine models of the two evaluation platforms (paper §5).

Parameters are taken from the paper's hardware description and calibrated
once against its own measurements (documented per field):

* **Piz Daint** — 5,704 Cray XC50 nodes, 1x NVIDIA P100 (4.7 Tflop/s DP),
  Aries interconnect, 2 processes/node (one full-scale config uses 1).
* **Summit** — 4,608 nodes, 6x NVIDIA V100 (7.8 Tflop/s DP each), dual-rail
  EDR InfiniBand fat tree, 6 processes/node (7 cores each).

Efficiencies: Summit GF 44.5% / SSE 6.2% of peak are *quoted by the paper*
(§5.2.1); the OMEN-variant degradations are derived from Table 7
(SSE: 9.97x slower at 2x the flops -> ~20% of the DaCe-variant efficiency;
GF: 111.25/144.14 -> 77%).  Effective alltoallv bandwidths are fitted to
the paper's Table 8 communication column and Fig. 13 communication curves.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MachineSpec", "PIZ_DAINT", "SUMMIT"]


@dataclass(frozen=True)
class MachineSpec:
    """A supercomputer abstraction for the performance/scaling models."""

    name: str
    nodes: int
    gpus_per_node: int
    #: double-precision peak of one node (flop/s)
    peak_node_flops: float
    procs_per_node: int
    #: GF-phase efficiency (fraction of node peak), DaCe variant
    eff_gf_dace: float
    #: SSE-phase efficiency, DaCe variant
    eff_sse_dace: float
    #: GF-phase efficiency, original OMEN
    eff_gf_omen: float
    #: SSE-phase efficiency, original OMEN
    eff_sse_omen: float
    #: effective alltoallv bandwidth per process (B/s), DaCe schedule —
    #: the alltoallv parallelizes over every NIC
    bw_dace: float
    #: effective *aggregate* bandwidth (B/s) for OMEN's broadcast + p2p
    #: rounds — the per-(qz, ω) broadcasts serialize at their roots, so the
    #: schedule moves its total volume through a root/bisection-limited
    #: resource rather than scaling with P
    bw_omen: float
    #: per-message latency (s)
    alpha: float = 10e-6

    @property
    def peak_proc_flops(self) -> float:
        return self.peak_node_flops / self.procs_per_node

    def peak_system_flops(self) -> float:
        return self.nodes * self.peak_node_flops

    def rate(self, phase: str, variant: str, processes: int) -> float:
        """Aggregate compute rate (flop/s) of `processes` ranks."""
        eff = {
            ("gf", "dace"): self.eff_gf_dace,
            ("sse", "dace"): self.eff_sse_dace,
            ("gf", "omen"): self.eff_gf_omen,
            ("sse", "omen"): self.eff_sse_omen,
        }[(phase, variant)]
        return processes * self.peak_proc_flops * eff


#: Piz Daint (Cray XC50, P100).  GF runs at ~100% of the P100 DP peak
#: (Table 7: 0.548 Pflop in 111.25 s on one node), SSE-DaCe at 24%,
#: SSE-OMEN at 4.8% (Table 7 ratio analysis).  Effective alltoallv
#: bandwidth fitted to the Fig. 13a communication curves; the OMEN
#: broadcast+p2p pattern is a further ~5.5x less efficient (fits the
#: paper's 417x communication-time improvement at a 74x volume reduction).
PIZ_DAINT = MachineSpec(
    name="Piz Daint",
    nodes=5704,
    gpus_per_node=1,
    peak_node_flops=4.7e12,
    procs_per_node=2,
    eff_gf_dace=1.00,
    eff_sse_dace=0.24,
    eff_gf_omen=0.77,
    eff_sse_omen=0.048,
    bw_dace=30e6,
    bw_omen=13e9,
)

#: Summit (IBM AC922, 6x V100).  GF 44.5% and SSE 6.2% efficiencies are
#: the paper's own quoted full-scale numbers; bandwidth fitted to Table 8's
#: communication column (44 s at Nkz=11 on 1,852 nodes).
SUMMIT = MachineSpec(
    name="Summit",
    nodes=4608,
    gpus_per_node=6,
    peak_node_flops=6 * 7.8e12,
    procs_per_node=6,
    eff_gf_dace=0.445,
    eff_sse_dace=0.062,
    eff_gf_omen=0.445 * 0.77,
    eff_sse_omen=0.062 * 0.20,
    bw_dace=39e6,
    bw_omen=55e9,
)
