"""Optimal tile-size selection (paper §4.1).

"An optimal communication scheme can subsequently be found by minimizing
these expressions.  For this work, we perform exhaustive search over the
feasible tile sizes.  Since the combinations ... are in the order of 10^6
for most simulation parameters and number of processes, the search
completes in just a few seconds."

:func:`search_tiling` enumerates every factorization ``P = TE * TA`` (and
optionally near-factorizations) and returns the volume-minimizing tiling
of the energy and atom dimensions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from ..config import SimulationParameters
from .communication import dace_comm_total_bytes

__all__ = ["Tiling", "factor_pairs", "search_tiling", "paper_tiling"]


@dataclass(frozen=True)
class Tiling:
    """A (TE, TA) decomposition of the (energy, atom) dimensions."""

    TE: int
    TA: int
    total_bytes: float

    @property
    def processes(self) -> int:
        return self.TE * self.TA


def factor_pairs(P: int) -> List[Tuple[int, int]]:
    """All ordered factorizations ``P = TE * TA``."""
    out = []
    d = 1
    while d * d <= P:
        if P % d == 0:
            out.append((d, P // d))
            if d != P // d:
                out.append((P // d, d))
        d += 1
    return sorted(out)


def search_tiling(
    p: SimulationParameters,
    P: int,
    max_TE: Optional[int] = None,
    max_TA: Optional[int] = None,
    divisors_only: bool = False,
) -> Tiling:
    """Exhaustively search the feasible (TE, TA) factorizations of P.

    Feasibility: a tile must contain at least one energy point and one
    atom (``TE <= NE``, ``TA <= NA``), and may be further constrained by
    the caller (e.g. whole RGF blocks per atom tile).

    ``divisors_only=True`` additionally requires ``TE | NE`` and
    ``TA | NA`` — the executable
    :class:`~repro.parallel.decomposition.DaceDecomposition` of the
    distributed runtime tiles without remainders, so its tile search runs
    in this mode.
    """
    max_TE = min(max_TE or p.NE, p.NE)
    max_TA = min(max_TA or p.NA, p.NA)
    best: Optional[Tiling] = None
    for TE, TA in factor_pairs(P):
        if TE > max_TE or TA > max_TA:
            continue
        if divisors_only and (p.NE % TE or p.NA % TA):
            continue
        vol = dace_comm_total_bytes(p, TE, TA)
        if best is None or vol < best.total_bytes:
            best = Tiling(TE, TA, vol)
    if best is None:
        raise ValueError(
            f"no feasible (TE, TA) factorization of P={P} with "
            f"TE<={max_TE}, TA<={max_TA}"
            + (" dividing NE/NA evenly" if divisors_only else "")
        )
    return best


def paper_tiling(p: SimulationParameters, P: int, TE: int) -> Tiling:
    """The fixed tilings the paper reports (TE given, TA = P/TE)."""
    if P % TE != 0:
        raise ValueError(f"TE={TE} does not divide P={P}")
    TA = P // TE
    return Tiling(TE, TA, dace_comm_total_bytes(p, TE, TA))
