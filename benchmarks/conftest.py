"""Shared fixtures for the benchmark harness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.report import drain
from repro.negf import (
    SCBASettings,
    SCBASimulation,
    build_device,
    build_hamiltonian_model,
    preprocess_phonon_green,
)


@pytest.fixture(scope="session")
def single_node_workload():
    """A scaled-down single-node GF+SSE workload (Table 7 analogue)."""
    dev = build_device(nx_cols=8, ny_rows=4, NB=6, slab_width=2)
    model = build_hamiltonian_model(dev, Norb=3)
    st = SCBASettings(
        NE=24, Nkz=3, Nqz=3, Nw=4, e_min=-1.5, e_max=1.5, eta=1e-3
    )
    sim = SCBASimulation(model, st)
    Gl, Gg, _, _ = sim.solve_electrons(None, None, None)
    Dl, Dg = sim.solve_phonons(None, None)
    rev = dev.reverse_neighbor()
    Dcl = preprocess_phonon_green(Dl, dev.neighbors, rev)
    return dict(dev=dev, model=model, sim=sim, Gl=Gl, Gg=Gg, Dcl=Dcl)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Re-emit the paper-comparison tables after the benchmark summary."""
    lines = drain()
    if lines:
        terminalreporter.write_line("")
        terminalreporter.write_sep("=", "paper comparison tables")
        for block in lines:
            for line in block.splitlines():
                terminalreporter.write_line(line)
