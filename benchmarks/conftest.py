"""Shared fixtures for the benchmark harness."""

from __future__ import annotations

import json
import os
import platform
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.analysis.report import drain
from repro.negf import (
    SCBASettings,
    SCBASimulation,
    build_device,
    build_hamiltonian_model,
    preprocess_phonon_green,
)


def _collect_machine_info() -> dict:
    info = {
        "platform": platform.platform(),
        "processor": platform.processor() or None,
        "cpu_count": os.cpu_count(),
        "python": sys.version.split()[0],
        "numpy": np.__version__,
    }
    try:
        cfg = np.show_config(mode="dicts")
        blas = cfg.get("Build Dependencies", {}).get("blas", {})
        info["blas"] = {k: blas.get(k) for k in ("name", "version")}
    except (TypeError, AttributeError, KeyError):  # older numpy layouts
        info["blas"] = None
    return info


@pytest.fixture(scope="session")
def machine_info() -> dict:
    """Host record stamped into every ``BENCH_*.json`` so numbers stay
    comparable over time (shared by all BENCH-writing benchmarks).

    A fixture rather than an importable helper: fixture lookup is
    conftest-directory-scoped, so it stays unambiguous when ``tests/``
    and ``benchmarks/`` are collected in one pytest invocation."""
    return _collect_machine_info()


@pytest.fixture(scope="session")
def bench_writer(machine_info):
    """The one place benchmark records get stamped and written.

    ``write(name, record, fast)`` stamps the shared ``machine_info``
    block and writes ``BENCH_<name>.json``:

    * to this directory (the committed artifact) only on **full** runs,
      preserving the REPRO_BENCH_FAST contract that CI smoke runs never
      touch the committed records;
    * to ``$REPRO_BENCH_OUT`` (when set) on **every** run — the fresh,
      FAST-shaped records the regression-ledger gate
      (:mod:`repro.observe.ledger`) compares against the committed
      baseline in CI.

    Returns the stamped record.
    """

    def write(name: str, record: dict, fast: bool) -> dict:
        if "machine" not in record:
            record = {"machine": machine_info, **record}
        payload = json.dumps(record, indent=2) + "\n"
        out_dir = os.environ.get("REPRO_BENCH_OUT", "").strip()
        if out_dir:
            fresh = Path(out_dir)
            fresh.mkdir(parents=True, exist_ok=True)
            (fresh / f"BENCH_{name}.json").write_text(payload)
        if not fast:
            committed = Path(__file__).resolve().parent
            (committed / f"BENCH_{name}.json").write_text(payload)
        return record

    return write


@pytest.fixture(scope="session")
def single_node_workload():
    """A scaled-down single-node GF+SSE workload (Table 7 analogue)."""
    dev = build_device(nx_cols=8, ny_rows=4, NB=6, slab_width=2)
    model = build_hamiltonian_model(dev, Norb=3)
    st = SCBASettings(
        NE=24, Nkz=3, Nqz=3, Nw=4, e_min=-1.5, e_max=1.5, eta=1e-3
    )
    sim = SCBASimulation(model, st)
    Gl, Gg, _, _ = sim.solve_electrons(None, None, None)
    Dl, Dg = sim.solve_phonons(None, None)
    rev = dev.reverse_neighbor()
    Dcl = preprocess_phonon_green(Dl, dev.neighbors, rev)
    return dict(dev=dev, model=model, sim=sim, Gl=Gl, Gg=Gg, Dcl=Dcl)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Re-emit the paper-comparison tables after the benchmark summary."""
    lines = drain()
    if lines:
        terminalreporter.write_line("")
        terminalreporter.write_sep("=", "paper comparison tables")
        for block in lines:
            for line in block.splitlines():
                terminalreporter.write_line(line)
