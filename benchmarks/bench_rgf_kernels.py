"""RGF kernel tier: Table-6 fold strategies in the solver + SCBA speedup.

Two measurements, emitted together as ``BENCH_rgf.json``:

* **Part A — Table 6 inside the real solver.**  The paper's §5.1.2
  benchmarks three strategies (dense, CSRMM, CSRGEMM) for the recurring
  ``F gᴿ E`` product on sparse coupling operands and finds CSRMM ahead.
  Until this tier that result lived in the
  :mod:`repro.negf.sparse_kernels` microbenchmark; here each strategy is
  *forced* on every coupling block of a full batched RGF solve over
  device-style operands (sparse interface couplings, dense diagonal
  blocks) and timed end to end through ``CsrmmKernel.solve``.

* **Part B — end-to-end SCBA speedup.**  A medium device/grid
  (128-orbital blocks, interface coupling density 1/128) run to a fixed
  Born iteration count with each registered kernel, against the seed's
  ``np.linalg.solve(A, I)`` recursion (the ``reference`` kernel) on the
  same batched engine.  Acceptance: the best kernel is >= 1.5x.

Setting ``REPRO_BENCH_FAST=1`` (the CI smoke mode) shrinks both parts,
keeps only completion/equivalence-level assertions, and leaves the
committed ``BENCH_rgf.json`` record untouched.
"""

import json
import os
import time
from pathlib import Path

import numpy as np


from repro.analysis import render_table
from repro.analysis.report import report
from repro.negf import (
    SCBASettings,
    SCBASimulation,
    available_kernels,
    build_device,
    build_hamiltonian_model,
    get_kernel,
)
from repro.negf.kernels.csrmm import CsrmmKernel

#: CI smoke mode: tiny operands, relaxed assertions, no JSON record.
FAST = os.environ.get("REPRO_BENCH_FAST", "").strip() not in ("", "0")

_OUT = Path(__file__).resolve().parent / "BENCH_rgf.json"

# -- Part A: forced fold strategies on device-style operands -----------------

#: batch x blocks x block size of the in-solver Table-6 run
A_SHAPE = (4, 4, 32) if FAST else (16, 8, 128)
STRATEGIES = ["dense", "csrmm", "csrgemm"]

# -- Part B: end-to-end SCBA -------------------------------------------------

#: medium device: 128-orbital blocks (ny_rows*slab_width*Norb), bnum=6
B_DEVICE = (
    dict(nx_cols=6, ny_rows=3, NB=4, slab_width=2, Norb=2)
    if FAST
    else dict(nx_cols=24, ny_rows=8, NB=4, slab_width=4, Norb=4)
)
B_GRID = (
    dict(NE=6, Nkz=2, Nqz=2, Nw=2, max_iterations=2)
    if FAST
    else dict(NE=16, Nkz=2, Nqz=1, Nw=2, max_iterations=5)
)


def _device_operands(batch, bnum, n, seed=0):
    """Batched block-tridiagonal operands shaped like a real device row:
    dense well-conditioned diagonal blocks, sparse interface couplings
    (last-layer rows x first-layer columns, 1/slab_width support)."""
    rng = np.random.default_rng(seed)
    sup = n // 4

    def mat(*shape):
        return rng.standard_normal(shape) + 1j * rng.standard_normal(shape)

    diag = [
        mat(batch, n, n) + (2.5 * n) * np.eye(n) - 1j * np.eye(n)
        for _ in range(bnum)
    ]
    mask = np.zeros((n, n), dtype=bool)
    mask[-sup:, :sup] = rng.random((sup, sup)) < 0.5
    mask[-1, 0] = True
    upper = [mat(n, n) * mask for _ in range(bnum - 1)]  # ω-independent
    sless = [(lambda a: a - np.conjugate(np.swapaxes(a, -1, -2)))(
        mat(batch, n, n)
    ) for _ in range(bnum)]
    return diag, upper, sless


def _best_of(fn, repeats):
    fn()  # warm: JIT-free, but touches caches and builds CSR patterns
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run_table6_in_solver() -> dict:
    batch, bnum, n = A_SHAPE
    diag, upper, sless = _device_operands(batch, bnum, n)
    repeats = 1 if FAST else 3
    ref = get_kernel("reference").solve(diag, upper, sless)
    seconds, errors = {}, {}
    for strategy in STRATEGIES:
        kernel = CsrmmKernel(strategy=strategy)
        res = kernel.solve(diag, upper, sless)
        errors[strategy] = float(
            max(np.abs(a - b).max() for a, b in zip(ref.Gl, res.Gl))
        )
        seconds[strategy] = _best_of(
            lambda k=kernel: k.solve(diag, upper, sless), repeats
        )
    dense = seconds["dense"]
    return {
        "operands": {"batch": batch, "bnum": bnum, "block": n,
                     "density": float(np.count_nonzero(upper[0]) / n**2)},
        "seconds": seconds,
        "speedup_vs_dense": {k: dense / v for k, v in seconds.items()},
        "max_err_vs_reference": errors,
    }


def run_scba_kernels() -> dict:
    spec = dict(B_DEVICE)
    norb = spec.pop("Norb")
    dev = build_device(**spec)
    model = build_hamiltonian_model(dev, Norb=norb)
    settings = dict(
        e_min=-1.5, e_max=1.5, eta=1e-3, tolerance=1e-14,
        cache_boundary=True, cache_operators=True, **B_GRID
    )
    seconds, errors = {}, {}
    reference = None
    for kernel in available_kernels():
        s = SCBASettings(engine="batched", rgf_kernel=kernel, **settings)
        with SCBASimulation(model, s) as sim:
            start = time.perf_counter()
            result = sim.run()
            seconds[kernel] = time.perf_counter() - start
        if kernel == "reference":
            reference = result
        errors[kernel] = float(np.abs(result.Gl - reference.Gl).max())
    base = seconds["reference"]
    speedups = {k: base / v for k, v in seconds.items()}
    best = max((k for k in speedups if k != "reference"), key=speedups.get)
    return {
        "device": {**B_DEVICE, "NA": dev.NA, "bnum": dev.bnum},
        "grid": B_GRID,
        "seconds": seconds,
        "speedup_vs_reference": speedups,
        "best_kernel": best,
        "max_err_vs_reference": errors,
    }


def test_rgf_kernels(benchmark, machine_info, bench_writer):
    def run():
        return {
            "machine": machine_info,
            "kernels": list(available_kernels()),
            "table6_in_solver": run_table6_in_solver(),
            "scba_end_to_end": run_scba_kernels(),
        }

    record = benchmark.pedantic(run, rounds=1, iterations=1)
    record = bench_writer("rgf", record, FAST)

    t6 = record["table6_in_solver"]
    scba = record["scba_end_to_end"]
    report(
        render_table(
            f"Table 6 in-solver fold strategies, batch={t6['operands']['batch']}, "
            f"{t6['operands']['bnum']}x{t6['operands']['block']} blocks [seconds]",
            ["strategy", "seconds", "speedup vs dense"],
            [
                [k, f"{t6['seconds'][k]:.3f}",
                 f"{t6['speedup_vs_dense'][k]:.2f}x"]
                for k in STRATEGIES
            ],
        )
    )
    report(
        render_table(
            f"End-to-end SCBA, {scba['grid']['max_iterations']} Born iterations "
            f"on NE={scba['grid']['NE']} [seconds]",
            ["kernel", "seconds", "speedup vs reference"],
            [
                [k, f"{scba['seconds'][k]:.3f}",
                 f"{scba['speedup_vs_reference'][k]:.2f}x"]
                for k in scba["seconds"]
            ],
        )
    )

    # Every kernel reproduced the reference solution on both parts.
    assert all(e <= 1e-10 for e in t6["max_err_vs_reference"].values())
    assert all(e <= 1e-10 for e in scba["max_err_vs_reference"].values())
    if FAST:
        # CI smoke: completion + equivalence only — sub-second timings on
        # shared runners are a scheduling lottery.
        assert all(t > 0 for t in scba["seconds"].values())
        return
    # Table-6 ordering inside the solver: CSRMM beats the dense folds.
    assert t6["seconds"]["csrmm"] <= t6["seconds"]["dense"]
    # ISSUE 6 acceptance: best kernel >= 1.5x end to end over the seed's
    # solve(A, I) recursion.
    assert scba["speedup_vs_reference"][scba["best_kernel"]] >= 1.5
