"""Telemetry overhead: off must be free, full must stay under 10%.

Times the engine hot path — a fixed-iteration dissipative SCBA run at
the README quickstart dimensions — under each ``REPRO_TELEMETRY`` mode
and emits ``BENCH_telemetry.json``:

* **off**  — the instrumentation is a handful of module-level boolean
  checks; its cost is bounded *analytically* from a measured per-call
  ``trace()`` fast-path cost times the number of instrumentation sites
  the full-mode run actually recorded.  Acceptance: <= 1% of the
  baseline wall clock.
* **spans / full** — the recording modes, compared against the off-mode
  wall clock directly.  Acceptance: full <= 10% overhead.

The same session also serves as the CI telemetry smoke: a 2-rank
distributed SCBA run captured in ``full`` mode writes
``telemetry_smoke.trace.json`` (rank-tagged, opens in Perfetto) and its
drift report — measured comm bytes vs the §4.1 exchange models, executed
flops vs the Table-3 analytic counts — must reconcile cleanly.

Setting ``REPRO_BENCH_FAST=1`` (the CI smoke mode) shrinks the workload,
keeps completion-level assertions plus the drift check (model agreement
is exact at any size; wall-clock ratios on shared runners are not), and
leaves the committed ``BENCH_telemetry.json`` record untouched.
"""

import json
import os
import time
from pathlib import Path

from repro import telemetry
from repro.analysis import render_table
from repro.analysis.report import report
from repro.negf import (
    SCBASettings,
    SCBASimulation,
    build_device,
    build_hamiltonian_model,
)
from repro.telemetry import capture, configure, timeit, trace
from repro.telemetry.drift import comm_drift, sse_flops_drift

#: CI smoke mode: tiny grid, relaxed assertions, no JSON record.
FAST = os.environ.get("REPRO_BENCH_FAST", "").strip() not in ("", "0")

#: README quickstart device/grid, run to a fixed Born iteration count.
DEVICE = (
    dict(nx_cols=6, ny_rows=3, NB=4, slab_width=2)
    if FAST
    else dict(nx_cols=12, ny_rows=4, NB=6, slab_width=2)
)
NORB = 2
GRID = (
    dict(NE=8, Nkz=2, Nqz=2, Nw=2, e_min=-1.5, e_max=1.5,
         coupling=0.25, mixing=0.6, max_iterations=2, tolerance=0.0)
    if FAST
    else dict(NE=20, Nkz=2, Nqz=2, Nw=3, e_min=-1.5, e_max=1.5,
              coupling=0.25, mixing=0.6, max_iterations=3, tolerance=0.0)
)
REPEATS = 1 if FAST else 3

_OUT = Path(__file__).resolve().parent / "BENCH_telemetry.json"
_TRACE = Path(__file__).resolve().parent / "telemetry_smoke.trace.json"


def _run_once(model) -> None:
    with SCBASimulation(model, SCBASettings(**GRID)) as sim:
        sim.run()


def _off_call_cost_ns(calls: int = 20000) -> float:
    """Measured per-call cost of the disabled ``trace()`` fast path."""
    configure("off")
    t0 = time.perf_counter()
    for _ in range(calls):
        with trace("bench.noop", i=0):
            pass
    return (time.perf_counter() - t0) / calls * 1e9


def run_overhead() -> dict:
    model = build_hamiltonian_model(build_device(**DEVICE), Norb=NORB)
    _run_once(model)  # warm the boundary/operator caches for every mode

    previous = configure("off")
    try:
        seconds = {}
        events = metrics_ops = 0
        for mode in ("off", "spans", "full"):
            configure(mode)
            telemetry.get_tracer().clear()
            telemetry.get_registry().reset()
            seconds[mode] = timeit(
                lambda: _run_once(model), repeats=REPEATS
            ).best
            if mode == "full":
                snap = telemetry.telemetry_snapshot()
                events = len(snap["trace"])
                metrics_ops = len(snap["metrics"])
        per_call_ns = _off_call_cost_ns()
        # Every recorded full-mode event was one trace() call that, in
        # off mode, costs one fast-path check — an upper bound on what
        # the disabled instrumentation adds to the baseline run.
        off_overhead = events * per_call_ns * 1e-9 / seconds["off"]
    finally:
        configure(previous)
        telemetry.get_tracer().clear()
        telemetry.get_registry().reset()
    return {
        "device": {**DEVICE, "Norb": NORB},
        "grid": GRID,
        "repeats": REPEATS,
        "seconds": seconds,
        "full_events": events,
        "full_metrics": metrics_ops,
        "off_trace_call_ns": per_call_ns,
        "off_overhead_bound": off_overhead,
        "spans_overhead": seconds["spans"] / seconds["off"] - 1.0,
        "full_overhead": seconds["full"] / seconds["off"] - 1.0,
    }


def run_drift_smoke() -> dict:
    """2-rank distributed run: rank-tagged trace + clean drift report."""
    model = build_hamiltonian_model(
        build_device(nx_cols=6, ny_rows=3, NB=4, slab_width=2), Norb=2
    )
    settings = SCBASettings(
        runtime="sim", ranks=2, schedule="omen",
        NE=12, Nkz=2, Nqz=2, Nw=2, e_min=-1.5, e_max=1.5,
        coupling=0.2, mixing=0.5, max_iterations=3, tolerance=0.0,
    )
    with capture("full") as cap:
        with SCBASimulation(model, settings) as sim:
            sim.run()
            drift = comm_drift(sim) + sse_flops_drift()
    cap.save(_TRACE)
    tracks = {
        e["args"]["name"] for e in cap.events if e["name"] == "process_name"
    }
    return {
        "trace_events": len(cap.events),
        "tracks": sorted(tracks),
        "drift": drift.to_dict(),
        "clean": drift.clean,
    }


def test_telemetry_overhead(benchmark, bench_writer):
    record = benchmark.pedantic(run_overhead, rounds=1, iterations=1)
    record["smoke"] = run_drift_smoke()
    record = bench_writer("telemetry", record, FAST)

    report(
        render_table(
            f"Telemetry overhead, quickstart-dim SCBA "
            f"({GRID['max_iterations']} Born iterations) [seconds]",
            ["mode", "seconds", "overhead vs off"],
            [
                ["off", f"{record['seconds']['off']:.3f}",
                 f"{record['off_overhead_bound'] * 100:.3f}% (bound)"],
                ["spans", f"{record['seconds']['spans']:.3f}",
                 f"{record['spans_overhead'] * 100:.1f}%"],
                ["full", f"{record['seconds']['full']:.3f}",
                 f"{record['full_overhead'] * 100:.1f}%"],
            ],
        )
    )

    # The smoke run must produce a rank-tagged trace and reconcile
    # cleanly against the analytic models — exact at any problem size.
    smoke = record["smoke"]
    assert smoke["clean"], f"drift report not clean: {smoke['drift']}"
    assert smoke["tracks"] == ["main", "rank 0", "rank 1"]
    assert _TRACE.exists() and smoke["trace_events"] > 0

    # Off-mode instrumentation cost: bounded analytically at <= 1%.
    assert record["off_overhead_bound"] <= 0.01

    if FAST:
        # CI smoke: completion only — sub-second wall-clock ratios on
        # shared runners are a scheduling lottery.
        assert all(t > 0 for t in record["seconds"].values())
        return
    # Recording modes: full telemetry stays within 10% of the baseline.
    assert record["full_overhead"] <= 0.10
