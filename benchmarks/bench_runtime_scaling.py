"""Distributed SCBA runtime: scaling + measured-vs-modeled communication.

A Fig. 13-style study of the rank-parallel Born loop (ISSUE 5):

* **strong scaling** — a fixed (Nkz, NE) spectral grid distributed over
  P in {2, 4, 8} ranks, for both SSE schedules;
* **weak scaling** — the energy grid grows with the rank count
  (NE/P fixed), the paper's Fig. 13 weak-scaling axis.

For every configuration the per-rank SSE bytes metered by the SimComm
transport are asserted **equal** to the closed-form §4.1 exchange models
(:func:`repro.model.communication.omen_exchange_stats` /
``dace_exchange_stats``) — the measured-vs-modeled validation of the
communication model — and the distributed result is checked against the
serial ``SCBASimulation`` to <= 1e-10 (the CI smoke criterion at 2 and
4 ranks).

Emits ``BENCH_runtime.json`` next to this file with the per-rank byte
records.  ``REPRO_BENCH_FAST=1`` (the CI smoke mode) shrinks the study
and leaves the committed record untouched.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.analysis import render_table
from repro.analysis.report import report
from repro.config import validate_parameters
from repro.model.communication import (
    dace_comm_bytes_per_process,
    dace_exchange_stats,
    omen_comm_bytes_per_process,
    omen_exchange_stats,
    residual_allreduce_stats,
)
from repro.negf import (
    SCBASettings,
    SCBASimulation,
    build_device,
    build_hamiltonian_model,
)

#: CI smoke mode: tiny grids, correctness-level assertions, no JSON record.
FAST = os.environ.get("REPRO_BENCH_FAST", "").strip() not in ("", "0")

BASE = dict(Nkz=2, Nqz=2, Nw=3, e_min=-1.5, e_max=1.5, eta=1e-3,
            coupling=0.2, mixing=0.5, max_iterations=2, tolerance=0.0)
STRONG_NE = 12 if FAST else 24
STRONG_P = [2, 4] if FAST else [2, 4, 8]
WEAK = [(2, 12), (4, 24)] if FAST else [(2, 12), (4, 24), (8, 48)]
SCHEDULES = ["omen", "dace"]

_OUT = Path(__file__).resolve().parent / "BENCH_runtime.json"


def _settings(NE: int, P: int, schedule: str, runtime="sim") -> SCBASettings:
    return SCBASettings(
        runtime=runtime, ranks=P, schedule=schedule, NE=NE, **BASE
    )


def _serial_reference(model, NE: int):
    with SCBASimulation(
        model, SCBASettings(runtime="serial", NE=NE, **BASE)
    ) as sim:
        return sim.run()


def _run_config(model, schedule: str, P: int, NE: int, reference=None):
    """One distributed run: timing, exact byte validation, equivalence."""
    dev = model.structure
    with SCBASimulation(model, _settings(NE, P, schedule)) as sim:
        t0 = time.perf_counter()
        res = sim.run()
        seconds = time.perf_counter() - t0
        rt = sim._runtime
        if schedule == "omen":
            per_iter = omen_exchange_stats(
                rt.gf_decomp, BASE["Nqz"], BASE["Nw"],
                dev.NA, dev.NB, model.Norb, model.N3D,
            )
        else:
            per_iter = dace_exchange_stats(
                rt.gf_decomp, rt.sse_decomp, dev.neighbors,
                BASE["Nqz"], BASE["Nw"], model.Norb, model.N3D,
            )
        measured = sim.last_comm["sse"]
        modeled = per_iter.scaled(rt.n_sse_iterations)
        matched = measured.matches(modeled)
        residual_ok = sim.last_comm["residual"].matches(
            residual_allreduce_stats(P, len(res.history))
        )
        tiling = (
            {"TE": rt.sse_decomp.TE, "TA": rt.sse_decomp.TA}
            if rt.sse_decomp is not None
            else {}
        )

    # Closed-form §4.1 upper bound per process, for context.
    params = validate_parameters(
        Nkz=BASE["Nkz"], Nqz=BASE["Nqz"], NE=NE, Nw=BASE["Nw"],
        NA=dev.NA, NB=dev.NB, Norb=model.Norb, N3D=3, bnum=dev.bnum,
    )
    if schedule == "omen":
        bound = omen_comm_bytes_per_process(params, P)
    else:
        bound = dace_comm_bytes_per_process(
            params, tiling["TE"], tiling["TA"]
        )

    max_dev = None
    if reference is not None:
        max_dev = float(
            max(
                np.max(np.abs(res.Gl - reference.Gl)),
                np.max(np.abs(res.Sigma_l - reference.Sigma_l)),
                np.max(np.abs(res.current_left - reference.current_left)),
            )
        )
    return {
        "schedule": schedule,
        "P": P,
        "NE": NE,
        **tiling,
        "seconds": seconds,
        "sse_iterations": rt.n_sse_iterations,
        "measured": measured.to_dict(),
        "modeled": modeled.to_dict(),
        "matched": matched,
        "residual_matched": residual_ok,
        "total_sse_bytes": measured.total_bytes,
        "max_bytes_per_rank": measured.max_per_rank(),
        "model_bound_per_process": bound,
        "max_dev_vs_serial": max_dev,
    }


def run_runtime_scaling() -> dict:
    dev = build_device(nx_cols=8, ny_rows=4, NB=6, slab_width=2)
    model = build_hamiltonian_model(dev, Norb=2)

    strong_ref = _serial_reference(model, STRONG_NE)
    strong = [
        _run_config(model, schedule, P, STRONG_NE, reference=strong_ref)
        for schedule in SCHEDULES
        for P in STRONG_P
    ]
    weak_refs = {NE: _serial_reference(model, NE) for _, NE in WEAK}
    weak = [
        _run_config(model, schedule, P, NE, reference=weak_refs[NE])
        for schedule in SCHEDULES
        for P, NE in WEAK
    ]
    return {
        "device": {"NA": dev.NA, "NB": dev.NB, "bnum": dev.bnum, "Norb": 2},
        "grid": {**BASE, "NE_strong": STRONG_NE},
        "strong": strong,
        "weak": weak,
    }


def test_runtime_scaling(benchmark, bench_writer):
    record = benchmark.pedantic(run_runtime_scaling, rounds=1, iterations=1)
    record = bench_writer("runtime", record, FAST)

    for panel in ("strong", "weak"):
        report(
            render_table(
                f"Distributed SCBA runtime, {panel} scaling "
                f"[2 Born iterations, SimComm transport]",
                ["schedule", "P", "NE", "seconds", "SSE MiB moved",
                 "max MiB/rank", "bytes==model", "dev vs serial"],
                [
                    [r["schedule"], r["P"], r["NE"], f"{r['seconds']:.3f}",
                     f"{r['total_sse_bytes'] / 2**20:.2f}",
                     f"{r['max_bytes_per_rank'] / 2**20:.2f}",
                     str(r["matched"]),
                     f"{r['max_dev_vs_serial']:.2e}"]
                    for r in record[panel]
                ],
            )
        )

    for r in record["strong"] + record["weak"]:
        # ISSUE 5 acceptance: measured per-rank bytes equal the closed-form
        # §4.1 exchange model exactly, and the distributed result matches
        # the serial SCBASimulation to <= 1e-10.
        assert r["matched"], f"{r['schedule']} P={r['P']}: bytes != model"
        assert r["residual_matched"]
        assert r["max_dev_vs_serial"] <= 1e-10

    # The communication-avoiding schedule must move less than OMEN at the
    # largest strong-scaling rank count.
    largest = max(STRONG_P)
    by_schedule = {
        r["schedule"]: r["total_sse_bytes"]
        for r in record["strong"]
        if r["P"] == largest
    }
    assert by_schedule["dace"] < by_schedule["omen"]

    # OMEN's volume grows with P (the D≷/Π≷ broadcast+reduce term) while
    # the per-rank share shrinks under the dace tiling — Fig. 13's shape.
    omen_strong = [r for r in record["strong"] if r["schedule"] == "omen"]
    assert omen_strong[-1]["total_sse_bytes"] > omen_strong[0]["total_sse_bytes"]
