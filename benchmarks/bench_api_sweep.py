"""Sweep-level reuse: Session bias sweep vs independent per-point runs.

Runs the 7-point ballistic FinFET I-V bias sweep twice:

* ``session``     — one :class:`repro.api.Session` executing the sweep as
  a workload axis, sharing the Hamiltonian model, spectral grid,
  assembled operators, and boundary cache across all bias points;
* ``independent`` — seven separate ``SCBASimulation.run()`` calls, the
  pre-facade pattern of ``examples/finfet_iv_curve.py``.

Asserts the ISSUE 2 acceptance criteria: identical terminal currents to
≤ 1e-10 while the session performs *strictly fewer* boundary solves and
Hamiltonian assemblies.  Emits ``BENCH_api.json`` next to this file;
``REPRO_BENCH_FAST=1`` (the CI smoke mode) runs the same comparison and
assertions but leaves the committed JSON record untouched.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.analysis import render_table
from repro.analysis.report import report
from repro.api import DeviceSpec, GridSpec, PhysicsSpec, Session, SweepAxis, Workload
from repro.negf import SCBASettings, SCBASimulation

#: bias sweep of the acceptance criterion: 7 points, ballistic transport
BIASES = tuple(np.linspace(0.0, 0.6, 7))

#: CI smoke mode: same run + assertions, no JSON record rewrite
FAST = os.environ.get("REPRO_BENCH_FAST", "").strip() not in ("", "0")

_OUT = Path(__file__).resolve().parent / "BENCH_api.json"


def _workload() -> Workload:
    return Workload(
        name="bench_api_sweep",
        device=DeviceSpec(nx_cols=8, ny_rows=4, NB=6, slab_width=2, Norb=2),
        grid=GridSpec(e_min=-1.6, e_max=1.6, NE=40, Nkz=3, Nqz=3, Nw=3, eta=1e-6),
        physics=PhysicsSpec(transport="ballistic", kT_el=0.05),
        sweeps=(SweepAxis("bias", BIASES),),
    )


def _run_session(w: Workload) -> dict:
    start = time.perf_counter()
    with Session(w.compile(engine="batched")) as session:
        sweep = session.run()
    elapsed = time.perf_counter() - start
    r = sweep.reuse
    return {
        "seconds": elapsed,
        "currents": list(sweep.currents_left),
        "boundary_solves": r["boundary_el_solves"] + r["boundary_ph_solves"],
        "assemblies": r["assemblies_H"] + r["assemblies_S"] + r["assemblies_Phi"],
    }


def _run_independent(w: Workload) -> dict:
    model = w.device.build()  # shared, as in the legacy example
    start = time.perf_counter()
    currents, solves = [], 0
    for pt in w.sweep_points():
        with SCBASimulation(model, SCBASettings(**pt.settings)) as sim:
            res = sim.run(ballistic=True)
        currents.append(res.total_current_left)
        cache = sim.engine.boundary
        solves += cache.el_solves + cache.ph_solves
    elapsed = time.perf_counter() - start
    return {
        "seconds": elapsed,
        "currents": currents,
        "boundary_solves": solves,
        "assemblies": model.total_assemblies,
    }


def run_sweep_comparison() -> dict:
    w = _workload()
    session = _run_session(w)
    independent = _run_independent(w)
    dev = float(
        np.abs(
            np.asarray(session["currents"]) - np.asarray(independent["currents"])
        ).max()
    )
    return {
        "workload": w.to_dict(),
        "session": {k: v for k, v in session.items() if k != "currents"},
        "independent": {
            k: v for k, v in independent.items() if k != "currents"
        },
        "max_current_deviation": dev,
        "speedup": independent["seconds"] / session["seconds"],
    }


def test_api_sweep_reuse(benchmark, bench_writer):
    record = benchmark.pedantic(run_sweep_comparison, rounds=1, iterations=1)
    record = bench_writer("api", record, FAST)

    rows = [
        [
            label,
            f"{record[label]['seconds']:.3f}",
            str(record[label]["boundary_solves"]),
            str(record[label]["assemblies"]),
        ]
        for label in ("session", "independent")
    ]
    report(
        render_table(
            f"Session sweep vs {len(BIASES)} independent runs "
            "(7-point ballistic I-V)",
            ["path", "seconds", "boundary solves", "operator assemblies"],
            rows,
        )
    )

    # ISSUE 2 acceptance: numerically equivalent ...
    assert record["max_current_deviation"] <= 1e-10
    # ... with strictly fewer boundary solves and Hamiltonian assemblies.
    assert (
        record["session"]["boundary_solves"]
        < record["independent"]["boundary_solves"]
    )
    assert record["session"]["assemblies"] < record["independent"]["assemblies"]
