"""Execution backends head-to-head: interpreter vs generated numpy code.

Runs every stage of the Fig. 8 → 12 SSE pipeline through both registered
SDFG execution backends on identical inputs, asserts bit-level agreement
to 1e-10 (the backend-equivalence smoke CI runs in fast mode), and — in
full mode — records wall times to ``BENCH_codegen.json`` and asserts the
ISSUE acceptance: generated code at least **50x** faster than
interpretation over the whole pipeline at toy dims.

A second, larger dimension set is timed through the numpy backend only,
demonstrating that code generation makes paper-shaped grids reachable
where the interpreter is hopeless (the interpreter is extrapolated from
its per-tasklet cost, not run).

``REPRO_BENCH_FAST=1`` keeps the committed JSON record untouched and
skips the wall-clock assertions; the equivalence checks always run.
"""

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.analysis.report import report
from repro.core import SSE_PIPELINE
from repro.core.sse_sdfg import random_sse_inputs
from repro.sdfg import get_backend

FAST = os.environ.get("REPRO_BENCH_FAST", "").strip() not in ("", "0")

_DIMS = dict(Nkz=3, NE=6, Nqz=2, Nw=2, N3D=2, NA=6, NB=3, Norb=2)
#: medium dims: far beyond interpreter reach, ~a second of generated code
_MEDIUM_DIMS = dict(Nkz=5, NE=64, Nqz=5, Nw=8, N3D=3, NA=16, NB=6, Norb=4)

_OUT = Path(__file__).resolve().parent / "BENCH_codegen.json"

_ARRAYS, _TABLES = random_sse_inputs(_DIMS)


def _time(fn, *args, repeat=3):
    best = np.inf
    out = None
    for _ in range(1 if FAST else repeat):
        t0 = time.perf_counter()
        out = fn(*args)
        best = min(best, time.perf_counter() - t0)
    return out, best


def test_backend_equivalence_and_speedup(bench_writer):
    """Every stage agrees across backends; generated code is >= 50x
    faster than interpretation over the pipeline (full mode only)."""
    interp = get_backend("interpreter")
    numpy_be = get_backend("numpy")
    rows = []
    tot = {"interpreter": 0.0, "numpy": 0.0}
    for stage in SSE_PIPELINE.stages():
        ri = interp.compile_stage(stage)
        rn = numpy_be.compile_stage(stage)
        (out_i, exec_i), t_i = _time(ri, _DIMS, _ARRAYS, _TABLES)
        (out_n, exec_n), t_n = _time(rn, _DIMS, _ARRAYS, _TABLES)
        assert np.allclose(out_i, out_n, rtol=1e-10, atol=1e-10), stage.name
        # ExecutionReport parity: analytic == instrumented counters.
        assert (
            exec_n.report.tasklet_invocations
            == exec_i.report.tasklet_invocations
        )
        assert exec_n.report.flops == exec_i.report.flops
        tot["interpreter"] += t_i
        tot["numpy"] += t_n
        rows.append(
            {
                "stage": stage.name,
                "interpreter_seconds": t_i,
                "numpy_seconds": t_n,
                "speedup": t_i / max(t_n, 1e-12),
                "tasklets": exec_i.report.tasklet_invocations,
                "flops": exec_i.report.flops,
                "generated_lines": len(rn.source.splitlines()),
            }
        )

    # Larger dims through generated code only (interpreter extrapolated
    # from its measured per-tasklet cost at toy dims).
    med_arrays, med_tables = random_sse_inputs(_MEDIUM_DIMS)
    final = SSE_PIPELINE.stages()[-1]
    rn = numpy_be.compile_stage(final)
    (out_m, exec_m), t_m = _time(rn, _MEDIUM_DIMS, med_arrays, med_tables)
    toy_final = rows[-1]
    per_tasklet = toy_final["interpreter_seconds"] / max(
        toy_final["tasklets"], 1
    )
    interp_estimate = per_tasklet * exec_m.report.tasklet_invocations

    speedup = tot["interpreter"] / max(tot["numpy"], 1e-12)
    record = {
        "toy_dims": dict(_DIMS),
        "stages": rows,
        "total_interpreter_seconds": tot["interpreter"],
        "total_numpy_seconds": tot["numpy"],
        "total_speedup": speedup,
        "medium_dims": dict(_MEDIUM_DIMS),
        "medium_numpy_seconds": t_m,
        "medium_interpreter_seconds_estimated": interp_estimate,
    }
    record = bench_writer("codegen", record, FAST)

    report("\nSDFG execution backends (interpreter vs generated numpy):")
    for r in rows:
        report(
            f"  {r['stage']:8s}: {r['interpreter_seconds']*1e3:9.1f} ms -> "
            f"{r['numpy_seconds']*1e3:7.2f} ms  ({r['speedup']:7.1f}x)"
        )
    report(
        f"  total: {tot['interpreter']*1e3:.0f} ms -> "
        f"{tot['numpy']*1e3:.1f} ms ({speedup:.0f}x); medium dims "
        f"fig12s: {t_m*1e3:.0f} ms generated vs ~{interp_estimate:.0f} s "
        f"interpreted (estimate)"
    )

    if not FAST:
        # ISSUE acceptance: >= 50x over the pipeline at toy dims.
        assert speedup >= 50.0, speedup
        # Paper-shaped dims are reachable: generated code finishes in
        # seconds where even the overhead-only interpreter lower bound
        # (toy per-tasklet cost x medium invocation count — the real
        # interpreter additionally pays for the larger blocks) is worse.
        assert t_m < 10.0
        assert interp_estimate > t_m


def test_generated_source_is_recorded():
    """The numpy backend attaches inspectable source for every stage."""
    numpy_be = get_backend("numpy")
    for stage in SSE_PIPELINE.stages():
        src = numpy_be.compile_stage(stage).source
        assert "def run(dims, arrays, tables=None):" in src
        assert "np.einsum" in src or "_tasklets" in src
