"""Table 3 — single-iteration computational load (Pflop count).

Regenerates the paper's kernel flop counts (contour integral, RGF,
SSE-OMEN, SSE-DaCe) for the 4,864-atom structure at Nkz in {3..11} and
prints them next to the paper's values.
"""

from repro.analysis import render_table, table3_rows
from repro.analysis.report import report


def test_table3_flop_counts(benchmark):
    rows = benchmark(table3_rows)
    body = []
    for r in rows:
        p = r["paper"]
        body.append(
            [
                r["nkz"],
                r["ci"], p["ci"],
                r["rgf"], p["rgf"],
                r["sse_omen"], p["omen"],
                r["sse_dace"], p["dace"],
            ]
        )
    report(
        render_table(
            "Table 3: single-iteration Pflop (ours vs paper)",
            ["Nkz", "CI", "(paper)", "RGF", "(paper)",
             "SSE-OMEN", "(paper)", "SSE-DaCe", "(paper)"],
            body,
        )
    )
    for r in rows:
        p = r["paper"]
        assert abs(r["ci"] - p["ci"]) / p["ci"] < 0.01
        assert abs(r["rgf"] - p["rgf"]) / p["rgf"] < 0.01
        assert abs(r["sse_omen"] - p["omen"]) / p["omen"] < 0.01
        assert abs(r["sse_dace"] - p["dace"]) / p["dace"] < 0.02
