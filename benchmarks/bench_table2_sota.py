"""Table 2 — state-of-the-art quantum transport simulators (static survey)."""

from repro.analysis import STATE_OF_THE_ART, render_table
from repro.analysis.report import report


def test_table2_state_of_the_art(benchmark):
    rows = benchmark(lambda: STATE_OF_THE_ART)
    body = [
        [
            c.name,
            c.tb_gf_e,
            c.tb_gf_ph,
            c.tb_gf_sse,
            c.dft_gf_e,
            c.dft_gf_ph,
            c.dft_gf_sse,
            c.max_cores,
            "yes" if c.gpus else "no",
        ]
        for c in rows
    ]
    report(
        render_table(
            "Table 2: maximum computed atoms (orders of magnitude)",
            ["tool", "TB GFe", "TB GFph", "TB SSE", "DFT GFe", "DFT GFph",
             "DFT SSE", "cores", "GPUs"],
            body,
            digits=0,
        )
    )
    assert rows[-1].name == "This work"
    assert rows[-1].dft_gf_sse == 10_000
