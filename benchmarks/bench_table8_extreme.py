"""Table 8 — Summit performance on 10,240 atoms (model prediction).

GF/SSE Pflop counts and per-phase times for the extreme-scale runs; the
flop columns come from the calibrated §4.3 models, the time columns from
the Summit machine model (44.5% GF / 6.2% SSE efficiency, fitted
alltoallv bandwidth).
"""

from repro.analysis import render_table, table8_rows
from repro.analysis.report import report


def test_table8_extreme_scale(benchmark):
    rows = benchmark(table8_rows)
    body = []
    for r in rows:
        p = r["paper"]
        body.append(
            [
                r["nkz"], r["nodes"],
                r["gf_pflop"], p["gf_pflop"],
                r["gf_t"], p["gf_t"],
                r["sse_pflop"], p["sse_pflop"],
                r["sse_t"], p["sse_t"],
                r["comm_t"], p["comm_t"],
            ]
        )
    report(
        render_table(
            "Table 8: Summit, 10,240 atoms (ours vs paper)",
            ["Nkz", "nodes", "GF Pflop", "(paper)", "GF s", "(paper)",
             "SSE Pflop", "(paper)", "SSE s", "(paper)", "comm s", "(paper)"],
            body,
            digits=1,
        )
    )
    for r in rows:
        p = r["paper"]
        assert abs(r["gf_pflop"] - p["gf_pflop"]) / p["gf_pflop"] < 0.03
        assert abs(r["sse_pflop"] - p["sse_pflop"]) / p["sse_pflop"] < 0.01
        assert abs(r["gf_t"] - p["gf_t"]) / p["gf_t"] < 0.10
        assert abs(r["sse_t"] - p["sse_t"]) / p["sse_t"] < 0.10
        # Communication model: right order of magnitude and trend.
        assert 0.3 < r["comm_t"] / p["comm_t"] < 1.5
