"""Fig. 13 — strong and weak scaling on Piz Daint and Summit.

Regenerates the four panels' series (computation and communication time
per iteration for the original OMEN and the DaCe variant).  Shape checks:

* the DaCe variant outperforms OMEN by >10x at scale (paper: up to 16.3x
  on Piz Daint, 24.5x on Summit),
* communication improves by 1-2 orders of magnitude (417x / 79.7x),
* the DaCe strong-scaling efficiency stays high then degrades (paper:
  99.8% -> 74% on Piz Daint).
"""

from repro.analysis import fig13_series, render_table
from repro.analysis.report import report


def test_fig13_scaling(benchmark):
    series = benchmark(fig13_series)
    for name, panels in series.items():
        strong, weak = panels["strong"], panels["weak"]
        report(
            render_table(
                f"Fig. 13 ({name}) strong scaling, Nkz=7 [seconds/iteration]",
                ["P", "GPUs", "DaCe comp", "DaCe comm", "OMEN comp",
                 "OMEN comm", "speedup", "comm speedup", "DaCe eff"],
                [
                    [r["P"], r["gpus"], r["dace_comp"], r["dace_comm"],
                     r["omen_comp"], r["omen_comm"], r["speedup"],
                     r["comm_speedup"], r["dace_efficiency"]]
                    for r in strong
                ],
            )
        )
        report(
            render_table(
                f"Fig. 13 ({name}) weak scaling [seconds/iteration]",
                ["Nkz", "P", "DaCe comp", "DaCe comm", "OMEN comp",
                 "OMEN comm", "speedup"],
                [
                    [r["nkz"], r["P"], r["dace_comp"], r["dace_comm"],
                     r["omen_comp"], r["omen_comm"], r["speedup"]]
                    for r in weak
                ],
            )
        )

    # --- shape assertions ----------------------------------------------------
    daint = series["piz-daint"]["strong"]
    summit = series["summit"]["strong"]
    assert max(r["speedup"] for r in daint) > 10
    assert max(r["speedup"] for r in summit) > 10
    assert max(r["comm_speedup"] for r in daint) > 100
    assert max(r["comm_speedup"] for r in summit) > 30
    # OMEN communication plateaus under strong scaling; DaCe keeps shrinking.
    assert daint[-1]["omen_comm"] > 0.8 * daint[0]["omen_comm"]
    assert daint[-1]["dace_comm"] < daint[0]["dace_comm"]
    # DaCe strong-scaling efficiency degrades gracefully.
    assert daint[0]["dace_efficiency"] > 0.95
    assert 0.4 < daint[-1]["dace_efficiency"] < 1.0
