"""Engine backends: serial vs batched vs multiprocess grid sweeps.

Times ``N_SWEEPS`` spectral-grid sweeps — the GF phase of successive Born
iterations — on a Fig.-13-style grid (NE=64, Nkz=4) for four
configurations:

* ``seed``         — the per-point loop with the seed's per-iteration
  boundary recomputation (``engine="serial", cache_boundary=False``);
* ``serial``       — per-point loop + boundary memoization;
* ``batched``      — stacked ``[batch, bnum, n, n]`` tensor systems;
* ``multiprocess`` — batched rows over an OmenDecomposition process pool.

Emits ``BENCH_engine.json`` next to this file and asserts the acceptance
criterion of ISSUE 1: the batched backend beats the seed per-point loop
by >= 3x wall clock.

Setting ``REPRO_BENCH_FAST=1`` (the CI smoke mode) shrinks the grid,
keeps only the correctness-level speedup assertions, and leaves the
committed ``BENCH_engine.json`` record untouched.
"""

import json
import os
import time
from pathlib import Path

from repro.analysis import render_table
from repro.analysis.report import report
from repro.negf import (
    SCBASettings,
    SCBASimulation,
    build_device,
    build_hamiltonian_model,
)

#: CI smoke mode: tiny grid, relaxed assertions, no JSON record.
FAST = os.environ.get("REPRO_BENCH_FAST", "").strip() not in ("", "0")

#: Fig.-13-style spectral grid (scaled to CI size): NE >= 64, Nkz >= 4.
GRID = (
    dict(NE=16, Nkz=2, Nqz=2, Nw=3, e_min=-1.5, e_max=1.5, eta=1e-3)
    if FAST
    else dict(NE=64, Nkz=4, Nqz=4, Nw=6, e_min=-1.5, e_max=1.5, eta=1e-3)
)
#: GF sweeps timed per backend (successive Born iterations).
N_SWEEPS = 2 if FAST else 4

BACKENDS = [
    ("seed", "serial", False),
    ("serial", "serial", True),
    ("batched", "batched", True),
    ("multiprocess", "multiprocess", True),
]

_OUT = Path(__file__).resolve().parent / "BENCH_engine.json"


def _time_backend(model, engine: str, cache_boundary: bool) -> float:
    # The "seed" row also disables operator caching: it reproduces the
    # original per-iteration reassembly + boundary recomputation.
    settings = SCBASettings(
        engine=engine, cache_boundary=cache_boundary,
        cache_operators=cache_boundary, **GRID
    )
    with SCBASimulation(model, settings) as sim:
        start = time.perf_counter()
        for _ in range(N_SWEEPS):
            sim.solve_electrons(None, None, None)
            sim.solve_phonons(None, None)
        return time.perf_counter() - start


def run_engine_comparison() -> dict:
    dev = build_device(nx_cols=8, ny_rows=4, NB=6, slab_width=2)
    model = build_hamiltonian_model(dev, Norb=2)
    timings = {
        label: _time_backend(model, engine, cache)
        for label, engine, cache in BACKENDS
    }
    seed = timings["seed"]
    return {
        "grid": {**GRID, "NA": dev.NA, "bnum": dev.bnum, "Norb": 2},
        "n_sweeps": N_SWEEPS,
        "seconds": timings,
        "speedup_vs_seed": {k: seed / v for k, v in timings.items()},
    }


def test_engine_backends(benchmark, bench_writer):
    record = benchmark.pedantic(run_engine_comparison, rounds=1, iterations=1)
    record = bench_writer("engine", record, FAST)

    report(
        render_table(
            f"Engine backends, {N_SWEEPS} GF sweeps on NE={GRID['NE']}, "
            f"Nkz={GRID['Nkz']} [seconds]",
            ["backend", "seconds", "speedup vs seed"],
            [
                [k, f"{record['seconds'][k]:.3f}",
                 f"{record['speedup_vs_seed'][k]:.2f}x"]
                for k, _, _ in BACKENDS
            ],
        )
    )

    if FAST:
        # CI smoke: every backend completed a full sweep end to end.
        # (No wall-clock assertions — sub-second timings on shared CI
        # runners are a scheduling lottery; the >= 3x criterion below is
        # asserted only in the full local run.)
        assert all(t > 0 for t in record["seconds"].values())
        return
    # Boundary memoization alone must already pay off.
    assert record["speedup_vs_seed"]["serial"] > 1.1
    # ISSUE 1 acceptance: batched >= 3x over the seed per-point loop.
    assert record["speedup_vs_seed"]["batched"] >= 3.0
