"""Engine backends: serial vs batched vs multiprocess grid sweeps.

Times ``N_SWEEPS`` spectral-grid sweeps — the GF phase of successive Born
iterations — on a Fig.-13-style grid (NE=64, Nkz=4) for four
configurations:

* ``seed``         — the per-point loop with the seed's per-iteration
  boundary recomputation (``engine="serial", cache_boundary=False``);
* ``serial``       — per-point loop + boundary memoization;
* ``batched``      — stacked ``[batch, bnum, n, n]`` tensor systems;
* ``multiprocess`` — batched rows over an OmenDecomposition process pool.

Emits ``BENCH_engine.json`` next to this file and asserts the acceptance
criterion of ISSUE 1: the batched backend beats the seed per-point loop
by >= 3x wall clock.
"""

import json
import time
from pathlib import Path

from repro.analysis import render_table
from repro.analysis.report import report
from repro.negf import (
    SCBASettings,
    SCBASimulation,
    build_device,
    build_hamiltonian_model,
)

#: Fig.-13-style spectral grid (scaled to CI size): NE >= 64, Nkz >= 4.
GRID = dict(NE=64, Nkz=4, Nqz=4, Nw=6, e_min=-1.5, e_max=1.5, eta=1e-3)
#: GF sweeps timed per backend (successive Born iterations).
N_SWEEPS = 4

BACKENDS = [
    ("seed", "serial", False),
    ("serial", "serial", True),
    ("batched", "batched", True),
    ("multiprocess", "multiprocess", True),
]

_OUT = Path(__file__).resolve().parent / "BENCH_engine.json"


def _time_backend(model, engine: str, cache_boundary: bool) -> float:
    settings = SCBASettings(
        engine=engine, cache_boundary=cache_boundary, **GRID
    )
    sim = SCBASimulation(model, settings)
    start = time.perf_counter()
    for _ in range(N_SWEEPS):
        sim.solve_electrons(None, None, None)
        sim.solve_phonons(None, None)
    return time.perf_counter() - start


def run_engine_comparison() -> dict:
    dev = build_device(nx_cols=8, ny_rows=4, NB=6, slab_width=2)
    model = build_hamiltonian_model(dev, Norb=2)
    timings = {
        label: _time_backend(model, engine, cache)
        for label, engine, cache in BACKENDS
    }
    seed = timings["seed"]
    return {
        "grid": {**GRID, "NA": dev.NA, "bnum": dev.bnum, "Norb": 2},
        "n_sweeps": N_SWEEPS,
        "seconds": timings,
        "speedup_vs_seed": {k: seed / v for k, v in timings.items()},
    }


def test_engine_backends(benchmark):
    record = benchmark.pedantic(run_engine_comparison, rounds=1, iterations=1)
    _OUT.write_text(json.dumps(record, indent=2) + "\n")

    report(
        render_table(
            f"Engine backends, {N_SWEEPS} GF sweeps on NE={GRID['NE']}, "
            f"Nkz={GRID['Nkz']} [seconds]",
            ["backend", "seconds", "speedup vs seed"],
            [
                [k, f"{record['seconds'][k]:.3f}",
                 f"{record['speedup_vs_seed'][k]:.2f}x"]
                for k, _, _ in BACKENDS
            ],
        )
    )

    # Boundary memoization alone must already pay off.
    assert record["speedup_vs_seed"]["serial"] > 1.1
    # ISSUE 1 acceptance: batched >= 3x over the seed per-point loop.
    assert record["speedup_vs_seed"]["batched"] >= 3.0
