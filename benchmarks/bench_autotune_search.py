"""Autotuner — search quality, cost, and roofline model agreement.

Runs the movement-model-guided search (``repro.autotune``) from the
untransformed Fig. 8 SDFG and checks the ISSUE acceptance bar: at the
paper's Table-1 dimensions the greedy search must rediscover at least
the hand recipe's ~677x movement reduction (it finds 700x: batching the
(qz, ω, j) contraction drops the ∇HD≷ write-conflict accumulation the
hand recipe pays for), and every winning stage must verify against the
reference kernel with an *exact* analytic-vs-executed flop agreement.

Emits ``BENCH_autotune.json`` next to this file: search wall time and
candidate counts for both strategies, the winning move sequence, and the
per-stage modeled-vs-measured roofline record.  ``REPRO_BENCH_FAST=1``
(the CI smoke mode) keeps the committed JSON untouched and runs only the
toy-dims smoke: the searched pipeline must match or beat the hand
recipe's modeled bytes.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.analysis.report import report
from repro.autotune import MoveLibrary, roofline_report
from repro.core.recipe import (
    SSE_BATCH_TEMPLATES,
    VERIFY_DIMS,
    sse_movement_report,
    tuned_sse_search,
)

#: CI smoke mode: no JSON record, toy-dims search only.
FAST = os.environ.get("REPRO_BENCH_FAST", "").strip() not in ("", "0")

_TOY_DIMS = dict(VERIFY_DIMS)
#: Table-1 structure (PAPER_STRUCTURE_4864) the search optimizes for.
_PAPER_DIMS = dict(Nkz=7, NE=706, Nqz=7, Nw=70, NA=4864, NB=34, Norb=12, N3D=3)

_OUT = Path(__file__).resolve().parent / "BENCH_autotune.json"


def test_greedy_smoke_matches_hand_recipe_at_toy_dims():
    """CI smoke: the searched pipeline moves no more modeled bytes than
    the hand Fig. 8 -> 12 recipe (template-core move space, toy dims)."""
    lib = MoveLibrary(
        templates=SSE_BATCH_TEMPLATES, tile_sizes=(), generic_layouts=False
    )
    res = tuned_sse_search(_TOY_DIMS, library=lib)
    hand = sse_movement_report(_TOY_DIMS)
    assert (
        res.report.stages[-1].total_bytes
        <= hand.stages[-1].total_bytes
    )
    assert max(res.verification.values()) <= 1e-10
    report(
        f"\nAutotune smoke (toy dims): searched "
        f"{res.report.stages[-1].total_bytes} B <= hand "
        f"{hand.stages[-1].total_bytes} B "
        f"({res.evaluations} candidates)"
    )


@pytest.mark.skipif(FAST, reason="full-space paper-dims search")
def test_autotune_paper_dims_and_roofline(bench_writer):
    """Acceptance: >= the hand recipe's 677x at paper dims, strictly
    fewer modeled bytes, and exact per-stage flops-model agreement."""
    t0 = time.time()
    greedy = tuned_sse_search(_PAPER_DIMS)
    t_greedy = time.time() - t0
    t0 = time.time()
    beam = tuned_sse_search(_PAPER_DIMS, strategy="beam")
    t_beam = time.time() - t0
    hand = sse_movement_report(_PAPER_DIMS)

    assert greedy.total_reduction >= 677
    assert greedy.total_reduction >= hand.total_reduction
    assert (
        greedy.report.stages[-1].total_bytes
        < hand.stages[-1].total_bytes
    )
    assert max(greedy.verification.values()) <= 1e-10

    # Roofline validation of every winning stage: modeled bytes/flops at
    # paper dims, execution + verification at toy dims.
    roof = roofline_report(
        greedy.pipeline,
        model_dims=_PAPER_DIMS,
        measure_dims=_TOY_DIMS,
        repeats=3,
    )
    assert roof.agreement == 0.0
    assert all(s.verify_error <= 1e-10 for s in roof.stages)

    record = {
        "paper_dims": dict(_PAPER_DIMS),
        "measure_dims": dict(_TOY_DIMS),
        "hand_reduction": hand.total_reduction,
        "strategies": {
            "greedy": {
                "seconds": t_greedy,
                "evaluations": greedy.evaluations,
                "moves": [m.to_dict() for m in greedy.moves],
                "reduction": greedy.total_reduction,
                "final_bytes": greedy.report.stages[-1].total_bytes,
                "max_verify_error": max(greedy.verification.values()),
            },
            "beam": {
                "seconds": t_beam,
                "evaluations": beam.evaluations,
                "moves": [m.to_dict() for m in beam.moves],
                "reduction": beam.total_reduction,
                "final_bytes": beam.report.stages[-1].total_bytes,
                "max_verify_error": max(beam.verification.values()),
            },
        },
        "roofline": roof.to_dict(),
    }
    record = bench_writer("autotune", record, FAST)

    report("\nAutotune vs hand recipe (paper dims):")
    report(
        f"  hand  : {hand.total_reduction:7.1f}x "
        f"({hand.stages[-1].total_bytes} B)"
    )
    for name, res, dt in (("greedy", greedy, t_greedy), ("beam", beam, t_beam)):
        report(
            f"  {name:6s}: {res.total_reduction:7.1f}x "
            f"({res.report.stages[-1].total_bytes} B), "
            f"{len(res.moves)} moves, {res.evaluations} candidates, "
            f"{dt:.1f}s"
        )
    report(
        f"  roofline: flops agreement exact on all "
        f"{len(roof.stages)} stages"
    )
