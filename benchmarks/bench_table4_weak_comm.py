"""Table 4 — weak scaling of SSE communication volume (TiB).

P = 256·Nkz processes; the DaCe variant uses the paper's tiling
(TE = Nkz) next to the exhaustive-search optimum (§4.1).
"""

from repro.analysis import render_table, table4_rows
from repro.analysis.report import report


def test_table4_weak_scaling_volume(benchmark):
    rows = benchmark(table4_rows)
    body = []
    for r in rows:
        p = r["paper"]
        body.append(
            [
                r["nkz"], r["P"],
                r["omen_tib"], p["omen"],
                r["dace_tib"], p["dace"],
                f"TE={r['search_TE']},TA={r['search_TA']}",
                r["search_tib"],
            ]
        )
    report(
        render_table(
            "Table 4: weak-scaling SSE communication volume [TiB]",
            ["Nkz", "P", "OMEN", "(paper)", "DaCe", "(paper)",
             "search tiling", "search TiB"],
            body,
        )
    )
    for r in rows:
        p = r["paper"]
        assert abs(r["omen_tib"] - p["omen"]) / p["omen"] < 0.005
        assert abs(r["dace_tib"] - p["dace"]) / p["dace"] < 0.01
        # The exhaustive search may only improve on the paper's tiling.
        assert r["search_tib"] <= r["dace_tib"] * 1.0001
