"""Ablation — interpreted SSE SDFG runtime across transformation stages.

Executes the Σ≷ SDFG at the first (Fig. 8) and last (Fig. 12) recipe
stages through the interpreter on identical inputs: the transformation
sequence should shrink both runtime and tasklet invocations by more than
an order of magnitude even at toy scale, and the flop counters should
show the ~2x reduction of §4.3.
"""

import pytest

from repro.core import build_stages, random_sse_inputs, run_stage
from repro.analysis.report import report

_DIMS = dict(Nkz=3, NE=6, Nqz=2, Nw=2, N3D=2, NA=6, NB=3, Norb=2)
_STAGES = {s.name: s for s in build_stages()}
_ARRAYS, _TABLES = random_sse_inputs(_DIMS)
_STATS = {}


@pytest.mark.parametrize("stage_name", ["fig8", "fig9", "fig10d", "fig12s"])
def test_recipe_stage_runtime(benchmark, stage_name):
    stage = _STAGES[stage_name]

    def run():
        return run_stage(stage, _DIMS, _ARRAYS, _TABLES)

    sigma, interp = benchmark.pedantic(run, rounds=1, iterations=1)
    _STATS[stage_name] = dict(
        time=benchmark.stats.stats.min,
        tasklets=interp.report.tasklet_invocations,
        flops=interp.report.flops,
    )
    if len(_STATS) == 4:
        first, last = _STATS["fig8"], _STATS["fig12s"]
        report("\nRecipe ablation (interpreted):")
        for k, v in _STATS.items():
            report(
                f"  {k:8s}: {v['time']*1e3:9.1f} ms, "
                f"{v['tasklets']:7d} tasklets, {v['flops']:10d} flops"
            )
        assert first["tasklets"] / last["tasklets"] > 10
        assert first["time"] / last["time"] > 3
        # §4.3: relative to the fissioned (OMEN-structured) graph, the
        # remaining transformations halve the dominant flop term:
        # 2·X·NqzNw  ->  X·NqzNw + X.
        omen_like = _STATS["fig9"]["flops"]
        nqw = _DIMS["Nqz"] * _DIMS["Nw"]
        expected = 2.0 * nqw / (nqw + 1.0)
        measured = omen_like / last["flops"]
        assert abs(measured - expected) / expected < 0.25
        # The initial 8-D map additionally carries the j-redundant ∇H·G
        # products, so the end-to-end flop reduction is even larger.
        assert first["flops"] / last["flops"] > 2.0
