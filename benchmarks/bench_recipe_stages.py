"""Ablation — the SSE pipeline across transformation stages.

Executes the Σ≷ SDFG at every recipe stage through the interpreter on
identical inputs and models the per-stage data movement (paper §4.1) at
the paper's Table-1 dimensions: the transformation sequence should
shrink runtime and tasklet invocations by more than an order of
magnitude even at toy scale, halve the dominant flop term (§4.3), and
cut modeled bytes-moved by two to three orders of magnitude.

Emits ``BENCH_recipe.json`` next to this file: per-stage wall time
(interpreter *and* generated-numpy execution backend), tasklet/flop
counters, and modeled bytes moved + transient footprint at paper
dimensions.  ``REPRO_BENCH_FAST=1`` (the CI smoke mode) keeps the
committed JSON record untouched and skips the wall-clock assertions.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.analysis.report import report
from repro.core import SSE_PIPELINE, build_stages, run_stage, sse_movement_report
from repro.core.sse_sdfg import random_sse_inputs
from repro.sdfg import get_backend

#: CI smoke mode: no JSON record, no wall-clock assertions.
FAST = os.environ.get("REPRO_BENCH_FAST", "").strip() not in ("", "0")

_DIMS = dict(Nkz=3, NE=6, Nqz=2, Nw=2, N3D=2, NA=6, NB=3, Norb=2)
#: Table-1 structure (PAPER_STRUCTURE_4864) for the movement model.
_PAPER_DIMS = dict(Nkz=7, NE=706, Nqz=7, Nw=70, NA=4864, NB=34, Norb=12, N3D=3)
_STAGES = {s.name: s for s in build_stages()}
_ARRAYS, _TABLES = random_sse_inputs(_DIMS)
_STATS = {}

_OUT = Path(__file__).resolve().parent / "BENCH_recipe.json"
_TIMED = ["fig8", "fig9", "fig10d", "fig12s"]

_MOVEMENT = None


def _movement():
    global _MOVEMENT
    if _MOVEMENT is None:
        _MOVEMENT = sse_movement_report(_PAPER_DIMS)
    return _MOVEMENT


def test_movement_reduction_at_paper_dims():
    """ISSUE acceptance: net data-movement reduction fig8 -> fig12s at
    paper dimensions, and the shrink stage collapses the footprint.
    Independent of the timing parametrization (runs under -k/-x too)."""
    movement = _movement()
    assert movement.stages[0].name == "fig8"
    assert movement.stages[-1].name == "fig12s"
    assert movement.stages[0].total_bytes > movement.stages[-1].total_bytes
    assert movement.total_reduction > 100
    shrink = movement.stage("fig12s")
    fused = movement.stage("fig12")
    assert shrink.transient_bytes < fused.transient_bytes / 1000


@pytest.mark.parametrize("stage_name", _TIMED)
def test_recipe_stage_runtime(benchmark, stage_name, bench_writer):
    stage = _STAGES[stage_name]

    def run():
        return run_stage(stage, _DIMS, _ARRAYS, _TABLES)

    sigma, interp = benchmark.pedantic(run, rounds=1, iterations=1)
    # The generated-numpy backend on the same stage and inputs.
    runner = get_backend("numpy").compile_stage(stage)
    runner(_DIMS, _ARRAYS, _TABLES)  # compile/warm outside the timing
    t0 = time.perf_counter()
    sigma_np, _ = runner(_DIMS, _ARRAYS, _TABLES)
    t_np = time.perf_counter() - t0
    import numpy as np

    assert np.allclose(sigma, sigma_np, rtol=1e-10, atol=1e-10)
    _STATS[stage_name] = dict(
        time=benchmark.stats.stats.min,
        time_numpy=t_np,
        tasklets=interp.report.tasklet_invocations,
        flops=interp.report.flops,
    )
    if len(_STATS) < len(_TIMED):
        return

    movement = _movement()
    record = {
        "pipeline": SSE_PIPELINE.name,
        "toy_dims": dict(_DIMS),
        "paper_dims": dict(_PAPER_DIMS),
        "stages": [
            {
                "name": s.name,
                "description": s.description,
                "modeled_bytes_moved": s.total_bytes,
                "transient_bytes": s.transient_bytes,
                **(
                    {
                        "seconds": _STATS[s.name]["time"],
                        "seconds_numpy_backend": _STATS[s.name]["time_numpy"],
                        "tasklets": _STATS[s.name]["tasklets"],
                        "flops": _STATS[s.name]["flops"],
                    }
                    if s.name in _STATS
                    else {}
                ),
            }
            for s in movement.stages
        ],
        "movement_reduction": movement.total_reduction,
    }
    record = bench_writer("recipe", record, FAST)

    first, last = _STATS["fig8"], _STATS["fig12s"]
    report("\nRecipe ablation (interpreted + generated + modeled movement):")
    for k, v in _STATS.items():
        report(
            f"  {k:8s}: {v['time']*1e3:9.1f} ms interp / "
            f"{v['time_numpy']*1e3:7.2f} ms numpy, "
            f"{v['tasklets']:7d} tasklets, {v['flops']:10d} flops"
        )
    report(
        f"  modeled movement at paper dims: "
        f"{movement.stages[0].total_bytes / 2**50:.1f} PiB -> "
        f"{movement.stages[-1].total_bytes / 2**40:.1f} TiB "
        f"({movement.total_reduction:.0f}x)"
    )

    assert first["tasklets"] / last["tasklets"] > 10
    if not FAST:
        assert first["time"] / last["time"] > 3
    # §4.3: relative to the fissioned (OMEN-structured) graph, the
    # remaining transformations halve the dominant flop term:
    # 2·X·NqzNw  ->  X·NqzNw + X.
    omen_like = _STATS["fig9"]["flops"]
    nqw = _DIMS["Nqz"] * _DIMS["Nw"]
    expected = 2.0 * nqw / (nqw + 1.0)
    measured = omen_like / last["flops"]
    assert abs(measured - expected) / expected < 0.25
    # The initial 8-D map additionally carries the j-redundant ∇H·G
    # products, so the end-to-end flop reduction is even larger.
    assert first["flops"] / last["flops"] > 2.0
