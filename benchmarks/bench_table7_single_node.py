"""Table 7 — single-node runtime of the three algorithm variants (measured).

A scaled-down GF+SSE workload runs through the naive-Python, the
OMEN-structured, and the DaCe-transformed SSE kernels.  The paper (one
Piz Daint node, 1/112 of the Nkz=3 load) reports GF/SSE seconds of
OMEN 144.1/965.5, Python 1342.8/30560.1, DaCe 111.3/96.8 — i.e. the
transformed kernel beats the OMEN structure by ~10x and naive Python by
~300x on SSE.  Shape check here: Python ≫ OMEN > DaCe.
"""

import pytest

from repro.negf import sigma_sse
from repro.analysis.report import report

_TIMES = {}


@pytest.mark.parametrize("variant", ["reference", "omen", "dace"])
def test_table7_sse_variants(benchmark, single_node_workload, variant):
    w = single_node_workload
    out = benchmark.pedantic(
        sigma_sse,
        args=(w["Gl"], w["model"].dH, w["Dcl"], w["dev"].neighbors, +1, variant),
        rounds=1 if variant == "reference" else 3,
        iterations=1,
    )
    _TIMES[variant] = benchmark.stats.stats.min
    assert out.shape == w["Gl"].shape
    if len(_TIMES) == 3:
        py, om, da = _TIMES["reference"], _TIMES["omen"], _TIMES["dace"]
        report(
            f"\nTable 7 (SSE phase, scaled down): Python {py*1e3:.1f} ms, "
            f"OMEN {om*1e3:.1f} ms, DaCe {da*1e3:.1f} ms | "
            f"Python/DaCe = {py/da:.1f}x, OMEN/DaCe = {om/da:.2f}x"
        )
        # Ordering must reproduce the paper's Table 7.
        assert py > om > da
        assert py / da > 30  # naive Python is orders of magnitude slower
