"""Performance observatory: timeline-analysis cost + scaling diagnostics.

Two questions about the :mod:`repro.observe` layer itself:

* **analysis cost** — distilling a captured 4-rank quickstart trace into
  a :class:`~repro.observe.TimelineAnalysis` (phase breakdown, critical
  path, imbalance, overlap headroom) must cost <= 1 s, so the
  observatory is cheap enough to run after every distributed smoke;
* **scaling diagnostics** — the measured load-imbalance factor
  (max/mean rank busy) and overlap-headroom fraction at P in {2, 4, 8}
  ranks of the README quickstart workload.  The headroom numbers are the
  quantitative input for the ROADMAP async-runtime item: how much of the
  SSE exchange an overlapped runtime could actually hide.

Every run also re-checks the acceptance reconciliation: per-rank
wait+exec coverage of the run window within 1%, and critical path >=
max per-rank busy.  Emits ``BENCH_observe.json`` via the shared
``bench_writer`` fixture.  ``REPRO_BENCH_FAST=1`` drops P=8 and keeps
the committed record untouched.
"""

import os

from repro.analysis import render_table
from repro.analysis.report import report
from repro.negf import (
    SCBASettings,
    SCBASimulation,
    build_device,
    build_hamiltonian_model,
)
from repro.observe import analyze_events
from repro.telemetry import capture, timeit

#: CI smoke mode: P in {2, 4} only, no committed JSON record.
FAST = os.environ.get("REPRO_BENCH_FAST", "").strip() not in ("", "0")

#: README quickstart device/grid; NE*Nkz = 16 points splits evenly
#: across every rank count in the study.
DEVICE = dict(nx_cols=6, ny_rows=3, NB=4, slab_width=2)
NORB = 2
GRID = dict(NE=8, Nkz=2, Nqz=2, Nw=2, e_min=-1.5, e_max=1.5,
            coupling=0.2, mixing=0.5, max_iterations=2, tolerance=0.0)
RANKS = [2, 4] if FAST else [2, 4, 8]
ANALYSIS_P = 4  # the trace whose analysis cost is timed


def _capture_run(model, P: int):
    settings = SCBASettings(runtime="sim", ranks=P, schedule="omen", **GRID)
    with capture("spans") as cap:
        with SCBASimulation(model, settings) as sim:
            sim.run()
    return cap.events


def run_observatory() -> dict:
    model = build_hamiltonian_model(build_device(**DEVICE), Norb=NORB)

    scaling = []
    analysis_seconds = None
    for P in RANKS:
        events = _capture_run(model, P)
        timing = timeit(lambda: analyze_events(events), repeats=1)
        analysis = timing.result
        if P == ANALYSIS_P:
            analysis_seconds = timing.best
        worst_coverage = min(
            r["coverage"] for r in analysis.ranks.values()
        )
        max_busy = max(r["busy_s"] for r in analysis.ranks.values())
        scaling.append({
            "P": P,
            "trace_events": len(events),
            "wall_s": analysis.wall_s,
            "imbalance_factor": analysis.imbalance_factor,
            "critical_path_s": analysis.critical_path_s,
            "max_rank_busy_s": max_busy,
            "worst_rank_coverage": worst_coverage,
            "headroom_s": analysis.overlap["headroom_s"],
            "headroom_fraction": analysis.overlap["headroom_fraction"],
        })
    return {
        "device": {**DEVICE, "Norb": NORB},
        "grid": GRID,
        "ranks": RANKS,
        "analysis_P": ANALYSIS_P,
        "analysis_seconds": analysis_seconds,
        "scaling": scaling,
    }


def test_observatory(benchmark, bench_writer):
    record = benchmark.pedantic(run_observatory, rounds=1, iterations=1)
    record = bench_writer("observe", record, FAST)

    report(
        render_table(
            "Performance observatory, quickstart SCBA on the sim "
            "transport [timeline analytics]",
            ["P", "wall s", "imbalance", "critical path s",
             "headroom s", "headroom %", "coverage"],
            [
                [r["P"], f"{r['wall_s']:.3f}",
                 f"{r['imbalance_factor']:.3f}",
                 f"{r['critical_path_s']:.3f}",
                 f"{r['headroom_s']:.3f}",
                 f"{100 * r['headroom_fraction']:.1f}",
                 f"{r['worst_rank_coverage']:.4f}"]
                for r in record["scaling"]
            ],
        )
    )

    # ISSUE 10 acceptance: analyzing the 4-rank quickstart trace costs
    # <= 1 s, and the timeline reconciles with the telemetry it was
    # built from at every rank count.
    assert record["analysis_seconds"] <= 1.0
    for r in record["scaling"]:
        assert r["worst_rank_coverage"] >= 0.99
        assert r["critical_path_s"] >= r["max_rank_busy_s"] - 1e-9
        assert r["critical_path_s"] <= r["wall_s"] * (1 + 1e-6)
        assert r["imbalance_factor"] >= 1.0
        assert 0.0 <= r["headroom_fraction"] <= 1.0
