"""Table 6 — sparse vs dense 3-matrix multiplication in RGF (measured).

``F[n] @ gR[n+1] @ E[n+1]`` with sparse Hamiltonian blocks and a dense
GF block, at representative size/sparsity.  The paper measures (cuSPARSE,
P100): Dense-MM 203.6 ms, CSRMM 47.1 ms, CSRGEMM 93.0 ms — CSRMM wins by
1.98-4.33x.  The same strategy ordering (CSRMM fastest, Dense-MM slowest
or comparable to CSRGEMM) reproduces on scipy/MKL.
"""

import numpy as np
import pytest

from repro.negf import generate_rgf_operands, three_matrix_product

_OPERANDS = generate_rgf_operands(n=768, block_density=0.02, seed=0)
_RESULTS = {}


@pytest.mark.parametrize("method", ["dense", "csrmm", "csrgemm"])
def test_table6_three_matrix_product(benchmark, method):
    F, gR, E = _OPERANDS
    out = benchmark(three_matrix_product, F, gR, E, method)
    _RESULTS[method] = np.asarray(out)
    # All strategies compute the same product.
    ref = _RESULTS.get("csrmm")
    if ref is not None and method != "csrmm":
        assert np.allclose(np.asarray(out), ref, rtol=1e-9, atol=1e-9)
