"""Ablation — *measured* bytes of the executed communication schedules.

Runs both SSE schedules on simulated MPI at a sweep of process counts and
compares the metered receive volumes: the executed-schedule analogue of
Tables 4/5, validating that the closed-form §4.1 models describe what the
schedules actually move (exact for the OMEN G-term, within halo factors
for the rest).
"""

import numpy as np
import pytest

from repro.analysis import render_table
from repro.analysis.report import report
from repro.negf.sse import preprocess_phonon_green
from repro.parallel import (
    DaceDecomposition,
    OmenDecomposition,
    SimComm,
    dace_sse_phase,
    omen_sse_phase,
)


def _ring_inputs(Nkz=2, NE=16, NA=8, NB=4, N3D=2, No=2, Nqz=2, Nw=2, seed=5):
    rng = np.random.default_rng(seed)

    def c(*s):
        return rng.standard_normal(s) + 1j * rng.standard_normal(s)

    neigh = np.zeros((NA, NB), dtype=np.int64)
    for a in range(NA):
        for b in range(NB):
            off = (b // 2 + 1) * (1 if b % 2 == 0 else -1)
            neigh[a, b] = (a + off) % NA
    rev = np.zeros_like(neigh)
    for a in range(NA):
        for b in range(NB):
            rev[a, b] = np.nonzero(neigh[neigh[a, b]] == a)[0][0]
    Dl = c(Nqz, Nw, NA, NB + 1, N3D, N3D)
    Dg = c(Nqz, Nw, NA, NB + 1, N3D, N3D)
    return dict(
        Gl=c(Nkz, NE, NA, No, No),
        Gg=c(Nkz, NE, NA, No, No),
        dH=c(NA, NB, N3D, No, No),
        Dcl=preprocess_phonon_green(Dl, neigh, rev),
        Dcg=preprocess_phonon_green(Dg, neigh, rev),
        neigh=neigh,
        rev=rev,
    )


_DATA = _ring_inputs()
_ROWS = []


@pytest.mark.parametrize("P", [4, 8])
def test_measured_schedule_volumes(benchmark, P):
    d = _DATA
    Nkz = d["Gl"].shape[0]

    def run_both():
        od = OmenDecomposition(Nkz, d["Gl"].shape[1], P)
        c1 = SimComm(P)
        omen_sse_phase(c1, od, d["Gl"], d["Gg"], d["dH"], d["Dcl"], d["Dcg"],
                       d["neigh"], d["rev"])
        dd = DaceDecomposition(
            d["Gl"].shape[1], d["Gl"].shape[2], TE=P // 2, TA=2,
            Nw=d["Dcl"].shape[1],
        )
        c2 = SimComm(P)
        dace_sse_phase(c2, od, dd, d["Gl"], d["Gg"], d["dH"], d["Dcl"],
                       d["Dcg"], d["neigh"], d["rev"])
        return c1.stats.total_bytes, c2.stats.total_bytes

    omen_b, dace_b = benchmark.pedantic(run_both, rounds=1, iterations=1)
    _ROWS.append([P, omen_b, dace_b, omen_b / dace_b])
    assert omen_b > dace_b  # communication avoidance, measured
    if len(_ROWS) == 2:
        report(
            render_table(
                "Measured schedule volumes (bytes received)",
                ["P", "OMEN", "DaCe", "ratio"],
                _ROWS,
            )
        )
