"""Scheduler throughput: shared rank pools vs isolated per-tenant runs.

Six tenants submit single-point ballistic workloads of the same device
on the same spectral grid — the classic multi-tenant pattern where every
job is structurally identical but physically distinct (different bias),
plus one exact duplicate.  The batch runs twice:

* ``scheduler`` — one :class:`repro.service.SchedulerService` drain:
  jobs are priced, bin-packed onto shared pools (here one pool, by
  structural affinity), executed against a common warm boundary cache,
  and the duplicate is served from the content-addressed result cache;
* ``isolated``  — one :class:`repro.api.Session` per workload, the
  pre-service pattern: every tenant pays the full boundary bill.

Asserts the ISSUE 7 acceptance criteria: identical currents to ≤ 1e-10
while the scheduler performs strictly fewer boundary solves in strictly
less wall time.  Emits ``BENCH_service.json`` next to this file;
``REPRO_BENCH_FAST=1`` (the CI smoke mode) runs the same comparison and
assertions on a smaller grid and leaves the committed record untouched.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.analysis import render_table
from repro.analysis.report import report
from repro.api import DeviceSpec, GridSpec, PhysicsSpec, Session, Workload
from repro.service import ResultCache, SchedulerService

FAST = os.environ.get("REPRO_BENCH_FAST", "").strip() not in ("", "0")

_OUT = Path(__file__).resolve().parent / "BENCH_service.json"

#: (tenant, bias) batch: six distinct points + one duplicate of the first
TENANT_BIASES = (
    ("alice", 0.00),
    ("bob", 0.10),
    ("carol", 0.20),
    ("dave", 0.30),
    ("erin", 0.40),
    ("frank", 0.50),
    ("alice-again", 0.00),
)


def _workload(tenant: str, bias: float) -> Workload:
    ne = 8 if FAST else 40
    return Workload(
        name=f"svc-{tenant}",
        device=DeviceSpec(nx_cols=8, ny_rows=4, NB=6, slab_width=2, Norb=2),
        grid=GridSpec(e_min=-1.6, e_max=1.6, NE=ne, Nkz=3, Nqz=3, Nw=3,
                      eta=1e-6),
        physics=PhysicsSpec(transport="ballistic", kT_el=0.05,
                            mu_left=bias / 2, mu_right=-bias / 2),
    )


def _run_scheduler(batch) -> dict:
    start = time.perf_counter()
    with SchedulerService(cache=ResultCache(max_entries=32)) as svc:
        jobs = [svc.submit(w, tenant=t) for t, w in batch]
        svc.drain()
        currents = [j.result.currents_left[0] for j in jobs]
        stats = svc.stats()
    return {
        "seconds": time.perf_counter() - start,
        "currents": currents,
        "boundary_solves": stats["boundary_solves"],
        "boundary_solves_saved": stats["boundary_solves_saved"],
        "cache_hits": stats["cache"]["hits"],
        "pools": len(stats["pools"]),
        "jobs": stats["jobs"],
    }


def _run_isolated(batch) -> dict:
    start = time.perf_counter()
    currents, solves = [], 0
    for _, w in batch:
        with Session(w.compile(engine="batched")) as session:
            sweep = session.run()
        currents.append(sweep.currents_left[0])
        solves += sweep.boundary_solves
    return {
        "seconds": time.perf_counter() - start,
        "currents": currents,
        "boundary_solves": solves,
    }


def run_throughput_comparison() -> dict:
    batch = [(t, _workload(t, b)) for t, b in TENANT_BIASES]
    scheduler = _run_scheduler(batch)
    isolated = _run_isolated(batch)
    dev = float(
        np.abs(
            np.asarray(scheduler["currents"])
            - np.asarray(isolated["currents"])
        ).max()
    )
    return {
        "tenants": [t for t, _ in TENANT_BIASES],
        "grid_NE": 8 if FAST else 40,
        "scheduler": {
            k: v for k, v in scheduler.items() if k != "currents"
        },
        "isolated": {k: v for k, v in isolated.items() if k != "currents"},
        "max_current_deviation": dev,
        "speedup": isolated["seconds"] / scheduler["seconds"],
        "solve_reduction": (
            isolated["boundary_solves"] / scheduler["boundary_solves"]
        ),
    }


def test_service_throughput(benchmark, bench_writer):
    record = benchmark.pedantic(
        run_throughput_comparison, rounds=1, iterations=1
    )
    record = bench_writer("service", record, FAST)

    rows = [
        [
            label,
            f"{record[label]['seconds']:.3f}",
            str(record[label]["boundary_solves"]),
        ]
        for label in ("scheduler", "isolated")
    ]
    report(
        render_table(
            f"Scheduler ({len(TENANT_BIASES)} mixed-tenant jobs, shared "
            "pools) vs isolated sessions",
            ["path", "seconds", "boundary solves"],
            rows,
        )
    )

    # ISSUE 7 acceptance: numerically equivalent ...
    assert record["max_current_deviation"] <= 1e-10
    # ... strictly fewer boundary solves AND strictly less wall time.
    assert (
        record["scheduler"]["boundary_solves"]
        < record["isolated"]["boundary_solves"]
    )
    assert record["scheduler"]["seconds"] < record["isolated"]["seconds"]
    # the duplicate tenant resolved from the result cache
    assert record["scheduler"]["cache_hits"] >= 1
    assert record["scheduler"]["jobs"].get("CACHED", 0) == 1
