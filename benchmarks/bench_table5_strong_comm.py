"""Table 5 — strong scaling of SSE communication volume (TiB).

Fixed Nkz = 7 workload with growing process counts; TE = 7, TA = P/7.
"""

from repro.analysis import render_table, table5_rows
from repro.analysis.report import report


def test_table5_strong_scaling_volume(benchmark):
    rows = benchmark(table5_rows)
    body = [
        [r["P"], r["omen_tib"], r["paper"]["omen"], r["dace_tib"], r["paper"]["dace"]]
        for r in rows
    ]
    report(
        render_table(
            "Table 5: strong-scaling SSE communication volume [TiB]",
            ["P", "OMEN", "(paper)", "DaCe", "(paper)"],
            body,
        )
    )
    for r in rows:
        p = r["paper"]
        assert abs(r["omen_tib"] - p["omen"]) / p["omen"] < 0.005
        assert abs(r["dace_tib"] - p["dace"]) / p["dace"] < 0.01
    # Two-orders-of-magnitude reduction, growing with P (§5.1.1).
    ratios = [r["omen_tib"] / r["dace_tib"] for r in rows]
    assert ratios[0] > 70
    assert ratios == sorted(ratios) or max(ratios) / min(ratios) < 1.6
