"""Smoke tests: the fast example scripts run end to end."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

_EXAMPLES = Path(__file__).resolve().parent.parent / "examples"
_SRC = Path(__file__).resolve().parent.parent / "src"


def _run(name: str, timeout: int = 240) -> str:
    # Prepend src/ so the examples also run under a bare `pytest` (the
    # ini-file pythonpath does not reach subprocesses).
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(_SRC)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    proc = subprocess.run(
        [sys.executable, str(_EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
        env=env,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    return proc.stdout


def test_examples_present():
    names = {p.name for p in _EXAMPLES.glob("*.py")}
    assert {
        "quickstart.py",
        "finfet_iv_curve.py",
        "self_heating.py",
        "communication_planning.py",
        "sdfg_transformations.py",
        "distributed_runtime.py",
        "scheduler_service.py",
        "autotune_recipe.py",
    } <= names


def test_sdfg_transformations_example():
    out = _run("sdfg_transformations.py")
    assert "fig12s" in out
    assert "speedup" in out


def test_communication_planning_example():
    out = _run("communication_planning.py")
    assert "optimal tiling" in out
    assert "Min(Nkz" in out or "skz" in out
    # The workload now enters through the facade: the compiled plan of
    # the paper_4864 scenario is printed before the machine planning.
    assert "plan[paper_4864]" in out
    assert "NA=4864" in out


def test_finfet_iv_example():
    out = _run("finfet_iv_curve.py")
    assert "plan[finfet_iv]" in out
    assert "ballistic transport sane" in out
    # Sweep-level reuse: boundary solves reported once per grid point.
    assert "boundary solves: 120 (= 2 x Nkz x NE = 120)" in out


def test_distributed_runtime_example():
    out = _run("distributed_runtime.py")
    assert "runtime: P=4 ranks" in out
    assert "bytes==model" in out
    assert "distributed runtime sane" in out


def test_autotune_recipe_example():
    out = _run("autotune_recipe.py")
    # The search must rediscover at least the hand recipe's reduction
    # and every winning stage must carry an exact flops-model agreement.
    assert "autotune[greedy]" in out
    assert "x less movement" in out
    assert "worst |measured/modeled - 1| = 0.0e+00" in out


def test_scheduler_service_example():
    out = _run("scheduler_service.py")
    assert "CACHED" in out
    assert "boundary solves saved: 40" in out
    assert "scheduler service sane" in out


@pytest.mark.slow
def test_quickstart_example():
    out = _run("quickstart.py", timeout=400)
    assert "dissipative: converged=True" in out
    assert "plan[quickstart]" in out
    assert "max dev vs serial" in out
