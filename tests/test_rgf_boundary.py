"""RGF solver vs dense references, and open-boundary solvers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.negf import (
    block_offsets,
    dense_reference,
    lead_self_energy,
    rgf_solve,
    sancho_rubio,
    surface_greens_function,
    transfer_matrix_modes,
)


def random_system(sizes, seed=0, eta=0.05, with_injection=True):
    rng = np.random.default_rng(seed)

    def herm(n):
        m = rng.standard_normal((n, n)) + 1j * rng.standard_normal((n, n))
        return m + m.conj().T

    E = 0.2
    diag, upper, sless = [], [], []
    for i, s in enumerate(sizes):
        d = E * np.eye(s) - herm(s) + 1j * eta * np.eye(s)
        diag.append(d)
        if with_injection and i in (0, len(sizes) - 1):
            g = rng.standard_normal((s, s)) + 1j * rng.standard_normal((s, s))
            sless.append(1j * (g @ g.conj().T) * 0.4)
        else:
            sless.append(np.zeros((s, s), dtype=complex))
    for i in range(len(sizes) - 1):
        upper.append(
            rng.standard_normal((sizes[i], sizes[i + 1]))
            + 1j * rng.standard_normal((sizes[i], sizes[i + 1]))
        )
    return diag, upper, sless


class TestRGF:
    @pytest.mark.parametrize("sizes", [[3], [2, 2], [3, 4, 2], [2, 5, 3, 4, 2]])
    def test_matches_dense(self, sizes):
        diag, upper, sless = random_system(sizes)
        res = rgf_solve(diag, upper, sless)
        GRd, Gld = dense_reference(diag, upper, sless)
        offs = block_offsets(diag)
        for i in range(len(sizes)):
            sl = slice(offs[i], offs[i + 1])
            assert np.allclose(res.GR[i], GRd[sl, sl], atol=1e-12)
            assert np.allclose(res.Gl[i], Gld[sl, sl], atol=1e-12)

    def test_retarded_only_mode(self):
        diag, upper, _ = random_system([3, 3, 3])
        res = rgf_solve(diag, upper)
        assert res.Gl == [] and res.Gg == []
        GRd, _ = dense_reference(diag, upper)
        assert np.allclose(res.GR[0], GRd[:3, :3])

    def test_greater_identity(self):
        """G> - G< = GR - GA on every diagonal block."""
        diag, upper, sless = random_system([3, 2, 4])
        res = rgf_solve(diag, upper, sless)
        for i in range(3):
            lhs = res.Gg[i] - res.Gl[i]
            rhs = res.GR[i] - res.GR[i].conj().T
            assert np.allclose(lhs, rhs, atol=1e-12)

    def test_lesser_antihermitian(self):
        """G< is anti-Hermitian when σ< is (physical injection)."""
        diag, upper, sless = random_system([3, 3])
        res = rgf_solve(diag, upper, sless)
        for g in res.Gl:
            assert np.abs(g + g.conj().T).max() < 1e-12

    def test_spectral_positive(self):
        """i(GR - GA) is PSD (spectral function) on diagonal blocks."""
        diag, upper, sless = random_system([4, 4, 4])
        res = rgf_solve(diag, upper, sless)
        for g in res.GR:
            A = 1j * (g - g.conj().T)
            assert np.linalg.eigvalsh(A)[0] > -1e-10

    def test_wrong_upper_count_raises(self):
        diag, upper, sless = random_system([3, 3])
        with pytest.raises(ValueError):
            rgf_solve(diag, [], sless)

    def test_wrong_sigma_count_raises(self):
        diag, upper, sless = random_system([3, 3])
        with pytest.raises(ValueError):
            rgf_solve(diag, upper, sless[:1])

    @given(
        nblocks=st.integers(1, 5),
        size=st.integers(1, 4),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_matches_dense(self, nblocks, size, seed):
        sizes = [size] * nblocks
        diag, upper, sless = random_system(sizes, seed=seed)
        res = rgf_solve(diag, upper, sless)
        GRd, Gld = dense_reference(diag, upper, sless)
        offs = block_offsets(diag)
        for i in range(nblocks):
            sl = slice(offs[i], offs[i + 1])
            assert np.allclose(res.GR[i], GRd[sl, sl], atol=1e-10)
            assert np.allclose(res.Gl[i], Gld[sl, sl], atol=1e-10)


class TestBoundary:
    def test_1d_chain_analytic(self):
        """Single orbital chain: g = (E-ε ± sqrt((E-ε)²-4t²)) / 2t²."""
        t, eps, E = 0.7, 0.1, 0.4
        H00 = np.array([[eps]], dtype=complex)
        H01 = np.array([[t]], dtype=complex)
        g = sancho_rubio(E, H00, H01, eta=1e-9)
        # Self-consistency: g = 1 / (E - eps - t² g)
        resid = g[0, 0] - 1.0 / (E - eps - t**2 * g[0, 0])
        assert abs(resid) < 1e-6

    @pytest.mark.parametrize("E", [-0.8, 0.0, 0.4, 1.2])
    def test_methods_agree_electrons(self, small_model, E):
        H = small_model.hamiltonian_blocks(0.3)
        S = small_model.overlap_blocks(0.3)
        g1 = surface_greens_function(
            E, H.diag[0], H.upper[0], S.diag[0], S.upper[0], 1e-5, "sancho-rubio"
        )
        g2 = surface_greens_function(
            E, H.diag[0], H.upper[0], S.diag[0], S.upper[0], 1e-5, "transfer-matrix"
        )
        assert np.abs(g1 - g2).max() < 1e-7

    def test_methods_agree_phonons(self, small_model):
        Phi = small_model.dynamical_blocks(0.5)
        w2 = 0.9
        g1 = surface_greens_function(
            w2, Phi.diag[0], Phi.upper[0], eta=1e-5, method="sancho-rubio"
        )
        g2 = surface_greens_function(
            w2, Phi.diag[0], Phi.upper[0], eta=1e-5, method="transfer-matrix"
        )
        assert np.abs(g1 - g2).max() < 1e-6

    @pytest.mark.parametrize("side", ["left", "right"])
    def test_gamma_positive(self, small_model, side):
        H = small_model.hamiltonian_blocks(0.0)
        S = small_model.overlap_blocks(0.0)
        sig = lead_self_energy(
            0.3, H.diag[0], H.upper[0], side, S.diag[0], S.upper[0], eta=1e-6
        )
        gam = 1j * (sig - sig.conj().T)
        assert np.linalg.eigvalsh(gam)[0] > -1e-8

    def test_unknown_method_raises(self, small_model):
        H = small_model.hamiltonian_blocks(0.0)
        with pytest.raises(ValueError):
            surface_greens_function(0.1, H.diag[0], H.upper[0], method="beyn")

    def test_unknown_side_raises(self, small_model):
        H = small_model.hamiltonian_blocks(0.0)
        with pytest.raises(ValueError):
            lead_self_energy(0.1, H.diag[0], H.upper[0], "top")

    def test_retarded_analyticity(self, small_model):
        """Larger η gives a smoother (smaller-norm) surface GF."""
        H = small_model.hamiltonian_blocks(0.0)
        g_sharp = sancho_rubio(0.4, H.diag[0], H.upper[0], eta=1e-6)
        g_soft = sancho_rubio(0.4, H.diag[0], H.upper[0], eta=0.1)
        assert np.abs(g_soft).max() <= np.abs(g_sharp).max() + 1.0
