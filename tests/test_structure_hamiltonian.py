"""Device structures and synthetic operator construction."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.negf import build_device, build_hamiltonian_model


class TestStructure:
    def test_basic_counts(self, small_device):
        assert small_device.NA == 18
        assert small_device.NB == 4
        assert small_device.bnum == 3

    def test_block_sizes_uniform(self, small_device):
        assert (small_device.block_sizes == 6).all()

    def test_neighbors_are_symmetric(self, small_device):
        rev = small_device.reverse_neighbor()
        assert (rev >= 0).all()

    def test_reverse_neighbor_roundtrip(self, small_device):
        n, rev = small_device.neighbors, small_device.reverse_neighbor()
        for a in range(small_device.NA):
            for b in range(small_device.NB):
                assert n[n[a, b], rev[a, b]] == a

    def test_no_self_neighbors(self, small_device):
        for a in range(small_device.NA):
            assert (small_device.neighbors[a] != a).all()

    def test_connectivity(self, small_device):
        g = small_device.connectivity_graph()
        assert nx.is_connected(g)

    def test_block_tridiagonality(self, small_device):
        small_device.validate()  # raises on cross-block bonds

    def test_bond_vectors_match_offsets(self, small_device):
        v = small_device.neighbor_vectors
        assert np.abs(v[:, :, 0]).max() <= 1  # transport offsets are ±1
        assert (v[:, :, 2] == 0).all()  # in-plane bonds

    def test_slab_width_must_divide(self):
        with pytest.raises(ValueError):
            build_device(nx_cols=7, ny_rows=3, NB=4, slab_width=2)

    def test_nb_bounds(self):
        for bad in (2, 3, 5, 7, 9):
            with pytest.raises(ValueError):
                build_device(nx_cols=4, ny_rows=3, NB=bad)

    def test_min_rows(self):
        with pytest.raises(ValueError):
            build_device(nx_cols=4, ny_rows=2, NB=4)

    @given(
        nx_cols=st.integers(2, 6).map(lambda v: 2 * v),
        ny=st.integers(3, 5),
        nb=st.sampled_from([4, 6, 8]),
    )
    @settings(max_examples=20, deadline=None)
    def test_generated_structures_are_valid(self, nx_cols, ny, nb):
        dev = build_device(nx_cols=nx_cols, ny_rows=ny, NB=nb, slab_width=2)
        dev.validate()
        assert (dev.reverse_neighbor() >= 0).all()


class TestHamiltonian:
    @pytest.mark.parametrize("kz", [0.0, 0.7, -2.1, np.pi])
    def test_hermiticity(self, small_model, kz):
        H = small_model.hamiltonian_blocks(kz).to_dense()
        assert np.abs(H - H.conj().T).max() < 1e-12

    def test_kz_periodicity(self, small_model):
        H1 = small_model.hamiltonian_blocks(0.3).to_dense()
        H2 = small_model.hamiltonian_blocks(0.3 + 2 * np.pi).to_dense()
        assert np.allclose(H1, H2)

    def test_kz_dependence_nontrivial(self, small_model):
        H1 = small_model.hamiltonian_blocks(0.0).to_dense()
        H2 = small_model.hamiltonian_blocks(1.5).to_dense()
        assert np.abs(H1 - H2).max() > 1e-3

    def test_overlap_positive_definite(self, small_model):
        S = small_model.overlap_blocks(0.5).to_dense()
        ev = np.linalg.eigvalsh(S)
        assert ev[0].real > 0

    def test_dynamical_psd_at_gamma(self, small_model):
        Phi = small_model.dynamical_blocks(0.0).to_dense()
        ev = np.linalg.eigvalsh(Phi)
        assert ev[0].real > -1e-10  # acoustic sum rule -> PSD

    def test_dynamical_gap_away_from_gamma(self, small_model):
        ev = np.linalg.eigvalsh(small_model.dynamical_blocks(1.2).to_dense())
        assert ev[0].real > 1e-3  # z-springs open a gap

    def test_dynamical_hermitian(self, small_model):
        Phi = small_model.dynamical_blocks(0.8).to_dense()
        assert np.abs(Phi - Phi.conj().T).max() < 1e-12

    def test_dh_bond_antisymmetry(self, small_model):
        """∇H_ba = -(∇H_ab)† for shared bonds (direction reversal)."""
        dev = small_model.structure
        rev = dev.reverse_neighbor()
        for a in range(dev.NA):
            for b in range(dev.NB):
                c, r = int(dev.neighbors[a, b]), int(rev[a, b])
                lhs = small_model.dH[c, r]
                rhs = -np.conj(np.transpose(small_model.dH[a, b], (0, 2, 1)))
                assert np.allclose(lhs, rhs)

    def test_block_tridiagonal_shape(self, small_model):
        H = small_model.hamiltonian_blocks(0.0)
        assert H.bnum == small_model.structure.bnum
        assert H.n == small_model.structure.NA * small_model.Norb
        for i, u in enumerate(H.upper):
            assert u.shape == (H.diag[i].shape[0], H.diag[i + 1].shape[0])

    def test_lower_is_upper_dagger(self, small_model):
        H = small_model.hamiltonian_blocks(0.4)
        assert np.allclose(H.lower(0), H.upper[0].conj().T)

    def test_to_dense_matches_blocks(self, small_model):
        H = small_model.hamiltonian_blocks(0.0)
        dense = H.to_dense()
        n0 = H.diag[0].shape[0]
        assert np.allclose(dense[:n0, :n0], H.diag[0])
        assert np.allclose(dense[:n0, n0 : n0 + H.upper[0].shape[1]], H.upper[0])

    def test_determinism(self, small_device):
        m1 = build_hamiltonian_model(small_device, Norb=2, seed=9)
        m2 = build_hamiltonian_model(small_device, Norb=2, seed=9)
        assert np.array_equal(m1.onsite, m2.onsite)
        assert np.array_equal(m1.hopping, m2.hopping)
