"""The Pass/Pipeline/CompiledPipeline API and its movement accounting."""

import copy
import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    RECIPE_SUMMARY,
    SSE_PIPELINE,
    build_stages,
    compile_sse_pipeline,
    sse_movement_report,
)
from repro.core.sse_sdfg import (
    build_sse_sigma_sdfg,
    random_sse_inputs,
    sse_sigma_reference,
)
from repro.sdfg import PipelineReport, measure_movement
from repro.sdfg.passes import FissionPass, PassError, RedundancyPass
from repro.sdfg.transformations import (
    ArrayShrink,
    BatchedOperationSubstitution,
    DataLayoutTransformation,
    MapExpansion,
    MapFission,
    MapFusion,
    MapTiling,
    Transformation,
)
from repro.sdfg.transformations.redundancy import RedundantComputationRemoval

_DIMS = dict(Nkz=3, NE=4, Nqz=2, Nw=2, N3D=2, NA=5, NB=3, Norb=2)
_PAPER_DIMS = dict(Nkz=7, NE=706, Nqz=7, Nw=70, NA=4864, NB=34, Norb=12, N3D=3)


@pytest.fixture(scope="module")
def stages():
    return {s.name: s for s in build_stages()}


@pytest.fixture(scope="module")
def data():
    arrays, tables = random_sse_inputs(_DIMS, seed=3)
    ref = sse_sigma_reference(
        arrays["G"], arrays["dH"], arrays["D"], tables["__neigh__"]
    )
    return arrays, tables, ref


# -- site enumeration: match() for every transformation -------------------------


class TestMatch:
    def _state(self, stage):
        return stage.sdfg, stage.sdfg.states[0]

    def test_base_match_not_implemented(self, stages):
        sd, st = self._state(stages["fig8"])
        with pytest.raises(NotImplementedError):
            Transformation.match(sd, st)

    def test_map_fission(self, stages):
        sd, st = self._state(stages["fig8"])
        sites = MapFission.match(sd, st)
        assert len(sites) == 1
        s = sites[0]
        assert s.scope == "sse"
        assert s.arrays == ("dHD", "dHG")
        assert s.params == ("kz", "E", "qz", "w", "i", "j", "a", "b")
        # After fission no multi-tasklet scope remains.
        sd2, st2 = self._state(stages["fig9"])
        assert MapFission.match(sd2, st2) == []

    def test_redundancy(self, stages):
        sd, st = self._state(stages["fig9"])
        sites = RedundantComputationRemoval.match(sd, st)
        assert len(sites) == 1
        s = sites[0]
        assert s.arrays == ("dHG",)
        # Only the offset params whose kept partner spans the full axis.
        assert set(s.params) == {"qz", "w"}

    def test_redundancy_gone_after_removal(self, stages):
        sd, st = self._state(stages["fig10b"])
        assert RedundantComputationRemoval.match(sd, st) == []

    def test_data_layout(self, stages):
        sd, st = self._state(stages["fig10b"])
        sites = DataLayoutTransformation.match(sd, st)
        arrays = {a for s in sites for a in s.arrays}
        assert {"G", "dH", "D", "Sigma", "dHG", "dHD"} <= arrays

    def test_batching(self, stages):
        sd, st = self._state(stages["fig10c"])
        sites = BatchedOperationSubstitution.match(sd, st)
        by_out = {s.arrays: s for s in sites}
        assert ("dHG",) in by_out and ("Sigma",) in by_out
        assert {"kz", "E"} <= set(by_out[("dHG",)].params)

    def test_map_expansion(self, stages):
        sd, st = self._state(stages["fig11c"])
        sites = MapExpansion.match(sd, st)
        assert len(sites) == 3
        assert all({"a", "b"} <= set(s.params) for s in sites)

    def test_map_fusion(self, stages):
        sd, st = self._state(stages["fig12a"])
        sites = MapFusion.match(sd, st)
        assert len(sites) == 1
        s = sites[0]
        assert s.params == ("a", "b")
        assert len(s.nodes) == 3
        # Topological order: the Σ consumer comes last.
        assert "sigma" in s.nodes[-1].map.label

    def test_map_fusion_groups_by_signature(self, stages):
        # After fission, dHG_mult and sigma_acc share (kz,E,qz,w,i,a,b)
        # while dHD_scale differs — exactly one group of two is offered.
        sd, st = self._state(stages["fig9"])
        sites = MapFusion.match(sd, st)
        assert len(sites) == 1
        assert len(sites[0].nodes) == 2
        assert set(sites[0].params) == {"kz", "E", "qz", "w", "i", "a", "b"}

    def test_array_shrink(self, stages):
        sd, st = self._state(stages["fig12"])
        sites = ArrayShrink.match(sd, st)
        by_arr = {s.arrays[0]: s for s in sites}
        assert set(by_arr) == {"dHG", "dHD"}
        # (a, b) are bound by the common fused scope; the i dimension is
        # bound by *different* inner maps at producer and consumer and
        # must not be offered for shrinking.
        assert by_arr["dHG"].params == ("a", "b")
        assert by_arr["dHG"].dims == (0, 1)

    def test_map_tiling(self, stages):
        sd, st = self._state(stages["fig8"])
        sites = MapTiling.match(sd, st)
        assert len(sites) == 1
        assert set(sites[0].params) == {"kz", "E", "qz", "w", "i", "j", "a", "b"}

    def test_site_serializes(self, stages):
        sd, st = self._state(stages["fig8"])
        d = MapFission.match(sd, st)[0].to_dict()
        json.dumps(d)  # plain data, no graph nodes
        assert d["transformation"] == "MapFission"
        assert "nodes" not in d


# -- pass selection ---------------------------------------------------------------


class TestPassSelection:
    def test_no_site_raises(self, stages):
        sd = copy.deepcopy(stages["fig9"].sdfg)
        with pytest.raises(PassError, match="found 0"):
            FissionPass("x", "no multi-tasklet scope left").run(
                sd, sd.states[0]
            )

    def test_wrong_array_raises(self, stages):
        sd = copy.deepcopy(stages["fig9"].sdfg)
        with pytest.raises(PassError):
            RedundancyPass("x", "d", array="nope", params=("qz",)).run(
                sd, sd.states[0]
            )


# -- the recipe as a pipeline declaration ----------------------------------------


class TestRecipePipeline:
    def test_summary_is_derived(self):
        assert RECIPE_SUMMARY == SSE_PIPELINE.summary
        assert [n for n, _ in RECIPE_SUMMARY] == [
            "fig8", "fig9", "fig10b", "fig10c", "fig10d", "fig11c",
            "fig12a", "fig12", "fig12s",
        ]
        # Descriptions live only on the passes — no duplicate table.
        from repro.core import recipe

        assert not hasattr(recipe, "_RECIPE_DESCRIPTIONS")

    def test_pipeline_to_dict_is_declarative(self):
        d = SSE_PIPELINE.to_dict()
        json.dumps(d)
        assert [p["stage"] for p in d["passes"]] == [
            n for n, _ in RECIPE_SUMMARY[1:]
        ]
        assert d["passes"][0]["reduce"] == {"dHD": ["j"]}

    def test_build_is_repeatable_and_independent(self):
        a = build_stages()
        b = build_stages()
        assert [s.name for s in a] == [s.name for s in b]
        assert a[0].sdfg is not b[0].sdfg

    def test_compiled_pipeline_verifies_every_stage(self):
        compiled = compile_sse_pipeline()
        assert compiled.verified
        assert set(compiled.verification) == set(
            n for n, _ in RECIPE_SUMMARY
        )
        assert max(compiled.verification.values()) <= 1e-10

    def test_compiled_pipeline_is_callable(self, data):
        arrays, tables, ref = data
        compiled = compile_sse_pipeline(verify=False)
        sigma = compiled(_DIMS, arrays, tables)
        assert np.allclose(sigma, ref, rtol=1e-10, atol=1e-10)

    def test_two_layout_passes_compose(self, data):
        # A reusable pipeline may re-permute an array it already moved:
        # the caller-facing perms must compose, not overwrite.
        import repro.sdfg.pipeline as plmod
        from repro.sdfg import LayoutPass, Pipeline

        arrays, tables, ref = data
        p1, p2 = (2, 0, 1, 3, 4), (1, 0, 2, 3, 4)
        pipe = Pipeline(
            "layout_twice",
            passes=[
                LayoutPass("l1", "first perm", perms={"G": p1, "Sigma": p1}),
                LayoutPass("l2", "second perm", perms={"G": p2, "Sigma": p2}),
            ],
            graph_factory=build_sse_sigma_sdfg,
            initial=("g0", "initial"),
        )
        final = pipe.build()[-1]
        composed = tuple(p1[i] for i in p2)
        assert final.input_perms["G"] == composed
        assert final.output_perm == composed
        assert plmod.verify_stage(
            final, _DIMS, arrays, tables, ref
        ) <= 1e-10

    def test_verify_stage_detects_corruption(self, data):
        import repro.sdfg.pipeline as plmod

        arrays, tables, ref = data
        final = SSE_PIPELINE.build()[-1]
        with pytest.raises(AssertionError, match="deviates"):
            plmod.verify_stage(final, _DIMS, arrays, tables, ref + 1.0)


# -- movement accounting -----------------------------------------------------------


class TestMovement:
    @pytest.fixture(scope="class")
    def report(self):
        return sse_movement_report(_PAPER_DIMS)

    def test_net_reduction_at_paper_dims(self, report):
        assert report.stages[0].name == "fig8"
        assert report.stages[-1].name == "fig12s"
        assert report.stages[0].total_bytes > report.stages[-1].total_bytes
        assert report.total_reduction > 100

    def test_fission_removes_j_redundancy(self, report):
        # Fig. 9 drops the j-redundant ∇H·G work: 4x less movement.
        r = report.stage("fig8").total_bytes / report.stage("fig9").total_bytes
        assert r > 2

    def test_gemm_substitution_dominates(self, report):
        # Fig. 11c collapses the per-(qz, ω) re-reads of ∇HG≷.
        assert (
            report.stage("fig10d").total_bytes
            > 10 * report.stage("fig11c").total_bytes
        )

    def test_shrink_collapses_footprint_not_traffic(self, report):
        fused, shrunk = report.stage("fig12"), report.stage("fig12s")
        assert shrunk.transient_bytes < fused.transient_bytes / 1000
        assert shrunk.total_bytes == fused.total_bytes

    def test_movement_scales_with_dims(self):
        small = sse_movement_report(_DIMS)
        big = sse_movement_report({**_DIMS, "NE": 2 * _DIMS["NE"]})
        assert big.stages[0].total_bytes > small.stages[0].total_bytes

    def test_measure_movement_initial_graph(self):
        sd = build_sse_sigma_sdfg()
        moved = measure_movement(sd, _DIMS, SSE_PIPELINE.hooks())
        # Every container of the Fig. 8 kernel is moved.
        assert set(moved) == {"G", "dH", "D", "Sigma", "dHG", "dHD"}
        n_iters = (
            _DIMS["Nkz"] * _DIMS["NE"] * _DIMS["Nqz"] * _DIMS["Nw"]
            * _DIMS["N3D"] ** 2 * _DIMS["NA"] * _DIMS["NB"]
        )
        no2 = _DIMS["Norb"] ** 2
        # G is read once per iteration as an Norb x Norb block (16 B/elem).
        assert moved["G"] == n_iters * no2 * 16

    def test_report_json_round_trip(self, report):
        text = report.to_json()
        back = PipelineReport.from_json(text)
        assert back.to_dict() == report.to_dict()
        assert back.stage("fig12s").transient_bytes == report.stage(
            "fig12s"
        ).transient_bytes
        # Derived per-stage fields are serialized and survive the trip.
        stages = back.to_dict()["stages"]
        assert [s["index"] for s in stages] == list(range(len(stages)))
        assert stages[0]["reduction_vs_previous"] == 1.0
        for i, s in enumerate(stages[1:], start=1):
            assert s["reduction_vs_previous"] == pytest.approx(
                report.reduction_vs_previous(i)
            )
        # Fig. 11c is the big per-stage win of the recipe.
        by_name = {s["name"]: s for s in stages}
        assert by_name["fig11c"]["reduction_vs_previous"] > 10

    def test_report_describe_mentions_stages(self, report):
        text = report.describe()
        assert "fig8" in text and "fig12s" in text and "x less" in text
        assert "x vs prev" in text


# -- semantics preservation on random dims (hypothesis) ---------------------------


_dims = st.fixed_dictionaries(
    dict(
        Nkz=st.integers(2, 3),
        NE=st.integers(2, 5),
        Nqz=st.integers(1, 2),
        Nw=st.integers(1, 3),
        N3D=st.integers(1, 2),
        NA=st.integers(2, 5),
        NB=st.integers(1, 3),
        Norb=st.integers(1, 3),
    )
).filter(lambda d: d["Nqz"] <= d["Nkz"] and d["Nw"] <= d["NE"])


class TestPipelineProperties:
    @given(dims=_dims, seed=st.integers(0, 4))
    @settings(max_examples=8, deadline=None)
    def test_every_stage_preserves_interpreter_semantics(self, dims, seed):
        import repro.sdfg.pipeline as plmod

        arrays, tables = random_sse_inputs(dims, seed=seed)
        ref = sse_sigma_reference(
            arrays["G"], arrays["dH"], arrays["D"], tables["__neigh__"]
        )
        for stage in SSE_PIPELINE.build():
            if stage.name == "fig8":
                continue  # the full 8-D loop nest is slow; covered elsewhere
            err = plmod.verify_stage(
                stage, dims, arrays, tables, ref, rtol=1e-10, atol=1e-10
            )
            assert err <= 1e-10
