"""Unit tests for symbolic ranges and memlets."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sdfg import Indices, Memlet, Range, symbols
from repro.sdfg.symbolic import Integer, Symbol


class TestRangeConstruction:
    def test_from_shape(self):
        M, N = symbols("M N")
        r = Range.from_shape((M, N))
        assert r.dims[0] == (Integer(0), M - 1, Integer(1))

    def test_from_indices_is_point(self):
        r = Range.from_indices((Symbol("i"), 3))
        assert r.is_point()

    def test_indices_helper(self):
        r = Indices("i", "j")
        assert isinstance(r, Range) and len(r) == 2

    def test_scalar_dim_becomes_point(self):
        r = Range([5])
        assert r.dims[0] == (Integer(5), Integer(5), Integer(1))

    def test_two_tuple_default_step(self):
        r = Range([(0, 9)])
        assert r.dims[0][2] == Integer(1)

    def test_bad_tuple_raises(self):
        with pytest.raises(ValueError):
            Range([(1, 2, 3, 4)])

    def test_equality_and_hash(self):
        a, b = Range([(0, 5)]), Range([(0, 5)])
        assert a == b and hash(a) == hash(b)


class TestRangeQueries:
    def test_dim_length(self):
        N = Symbol("N")
        r = Range([(0, N - 1)])
        assert r.dim_length(0) == N

    def test_dim_length_strided(self):
        r = Range([(0, 9, 2)])
        assert r.dim_length(0).evaluate({}) == 5

    def test_num_elements(self):
        M, N = symbols("M N")
        r = Range.from_shape((M, N))
        assert r.num_elements().evaluate(dict(M=3, N=4)) == 12

    def test_free_symbols(self):
        r = Range([(Symbol("a"), Symbol("b"))])
        assert r.free_symbols == {"a", "b"}

    def test_degenerate_axes(self):
        r = Range([(2, 2), (0, 5)])
        assert r.degenerate_axes({}) == (0,)


class TestRangeAlgebra:
    def test_subs(self):
        i = Symbol("i")
        r = Range([(i, i + 2)]).subs({"i": 4})
        assert r.evaluate({}) == ((4, 6, 1),)

    def test_offset_by(self):
        r = Range([(0, 5)]).offset_by([3])
        assert r.evaluate({}) == ((3, 8, 1),)

    def test_offset_rank_mismatch(self):
        with pytest.raises(ValueError):
            Range([(0, 5)]).offset_by([1, 2])

    def test_cover_union(self):
        a = Range([(0, 5)])
        b = Range([(3, 9)])
        u = a.cover_union(b)
        assert u.evaluate({}) == ((0, 9, 1),)

    def test_cover_union_symbolic(self):
        x = Symbol("x")
        u = Range([(x, x + 1)]).cover_union(Range([(0, 5)]))
        assert u.evaluate(dict(x=3)) == ((0, 5, 1),)

    def test_clamp_to_shape(self):
        r = Range([(-3, 100)]).clamp_to_shape([10])
        assert r.evaluate({}) == ((0, 9, 1),)

    def test_clamp_rank_mismatch(self):
        with pytest.raises(ValueError):
            Range([(0, 5)]).clamp_to_shape([4, 4])


class TestSlices:
    def test_to_slices_basic(self):
        r = Range([(1, 3), (0, 0)])
        assert r.to_slices({}) == (slice(1, 4, 1), slice(0, 1, 1))

    def test_negative_point_wraps(self):
        # index -1 must select the last element, not an empty slice
        r = Range([(-1, -1)])
        arr = np.arange(5)
        assert arr[r.to_slices({})][0] == 4

    def test_negative_point_minus_two(self):
        r = Range([(-2, -2)])
        arr = np.arange(5)
        assert arr[r.to_slices({})][0] == 3

    def test_slice_selects_expected_block(self):
        i = Symbol("i")
        r = Range([(i, i + 1), (0, 2)])
        arr = np.arange(20).reshape(4, 5)
        block = arr[r.to_slices(dict(i=1))]
        assert block.shape == (2, 3)
        assert block[0, 0] == 5


class TestMemlet:
    def test_default_accesses_is_volume(self):
        m = Memlet("A", Range([(0, 3), (0, 1)]))
        assert m.accesses.evaluate({}) == 8

    def test_simple_constructor(self):
        m = Memlet.simple("A", "i", "j")
        assert m.subset.is_point()

    def test_full_constructor(self):
        N = Symbol("N")
        m = Memlet.full("A", (N,))
        assert m.subset.dim_length(0) == N

    def test_bad_wcr_raises(self):
        with pytest.raises(ValueError):
            Memlet("A", Range([(0, 1)]), wcr="xor")

    def test_wcr_function_sum(self):
        m = Memlet("A", Range([(0, 1)]), wcr="sum")
        assert m.wcr_function()(2, 3) == 5

    def test_subs(self):
        m = Memlet.simple("A", Symbol("i")).subs({"i": 7})
        assert m.subset.evaluate({}) == ((7, 7, 1),)

    def test_volume_bytes(self):
        m = Memlet("A", Range([(0, 9)]))
        assert m.volume_bytes({}, 16) == 160

    def test_repr_mentions_wcr(self):
        m = Memlet("A", Range([(0, 1)]), wcr="sum")
        assert "Sum" in repr(m)


# -- property-based -----------------------------------------------------------
@given(
    b=st.integers(0, 20),
    n=st.integers(1, 20),
    s=st.integers(1, 4),
)
@settings(max_examples=60, deadline=None)
def test_dim_length_matches_slice_size(b, n, s):
    e = b + n - 1
    r = Range([(b, e, s)])
    arr = np.zeros(100)
    assert len(arr[r.to_slices({})]) == r.dim_length(0).evaluate({})


@given(
    lo1=st.integers(-10, 10), n1=st.integers(1, 10),
    lo2=st.integers(-10, 10), n2=st.integers(1, 10),
)
@settings(max_examples=60, deadline=None)
def test_cover_union_contains_both(lo1, n1, lo2, n2):
    a = Range([(lo1, lo1 + n1)])
    b = Range([(lo2, lo2 + n2)])
    u = a.cover_union(b)
    (ub, ue, _), = u.evaluate({})
    assert ub <= lo1 and ub <= lo2
    assert ue >= lo1 + n1 and ue >= lo2 + n2
